// Quality runs the answer-quality experiment announced in the paper's
// §VII ("We are currently setting up answer quality experiments"): it
// measures adapted precision and recall (after the paper's ref [13]) of
// ranked probabilistic answers against ground truth, across the rule sets
// of Table I. More rules mean less uncertainty, but the paper warns that
// "reduction should not be pushed too far, because eliminating valid
// possibilities reduces the quality of query answers" — the measured
// recall column shows exactly that trade-off.
//
// Run with: go run ./examples/quality
package main

import (
	"fmt"
	"log"

	imprecise "repro"
	"repro/internal/datagen"
	"repro/internal/quality"
)

func main() {
	pair := datagen.Confusing(12, 1)
	schema := datagen.MovieDTD()
	queries := []string{
		`//movie[.//genre="Horror"]/title`,
		`//movie[some $d in .//director satisfies contains($d,"John")]/title`,
		`//movie/title`,
	}

	fmt.Println("answer quality vs rule set (probability-weighted measures)")
	fmt.Printf("%-36s %-44s %9s %9s %9s\n", "rules", "query", "precision", "recall", "F1")
	// All sets include the title rule: without it the 6×12 candidate
	// component explodes beyond the matching budget (that explosion is
	// itself a paper result; see BenchmarkTableI).
	for _, set := range []imprecise.RuleSet{
		imprecise.SetTitle, imprecise.SetGenreTitle, imprecise.SetGenreTitleYear, imprecise.SetFull,
	} {
		tree, _, err := imprecise.Integrate(pair.A.Tree, pair.B.Tree, imprecise.IntegrationConfig{
			Oracle: imprecise.NewMovieOracle(set),
			Schema: schema,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, qs := range queries {
			q := imprecise.MustCompileQuery(qs)
			res, err := imprecise.EvalQuery(tree, q, imprecise.QueryOptions{})
			if err != nil {
				log.Fatal(err)
			}
			// Ground truth: the same query on the correctly integrated
			// certain catalog.
			truthRes, err := imprecise.EvalQuery(pair.Truth, q, imprecise.QueryOptions{})
			if err != nil {
				log.Fatal(err)
			}
			var truth []string
			for _, a := range truthRes.Answers {
				truth = append(truth, a.Value)
			}
			rep := quality.Evaluate(res.Answers, truth)
			fmt.Printf("%-36s %-44s %9.3f %9.3f %9.3f\n", set, qs, rep.Precision, rep.Recall, rep.F1)
		}
	}
	fmt.Println("\nprecision rises with stronger rules (less noise), while recall")
	fmt.Println("can fall when a rule eliminates a valid possibility.")
}

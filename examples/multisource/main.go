// Multisource demonstrates incremental integration — the paper's
// information cycle applied repeatedly: a database absorbs one source
// after another, uncertainty accumulates only where sources genuinely
// disagree, and the database can be snapshotted to disk and resumed at any
// point. It also shows the expected-count aggregate, which stays exact no
// matter how many possible worlds the database represents.
//
// Run with: go run ./examples/multisource
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	imprecise "repro"
)

const contactsDTD = `
	<!ELEMENT addressbook (person*)>
	<!ELEMENT person (nm, tel?, email?)>
	<!ELEMENT nm (#PCDATA)>
	<!ELEMENT tel (#PCDATA)>
	<!ELEMENT email (#PCDATA)>
`

var sources = []string{
	`<addressbook>
		<person><nm>John</nm><tel>1111</tel></person>
		<person><nm>Mary</nm><tel>3333</tel><email>mary@a.example</email></person>
	</addressbook>`,
	`<addressbook>
		<person><nm>John</nm><tel>2222</tel></person>
		<person><nm>Ada</nm><tel>4444</tel></person>
	</addressbook>`,
	`<addressbook>
		<person><nm>Mary</nm><tel>3333</tel><email>mary@b.example</email></person>
	</addressbook>`,
}

// nameGate: persons with different names are never the same rwo — a
// simple domain rule that keeps the multi-source integration focused on
// genuine conflicts.
func nameGate() imprecise.Rule {
	return imprecise.NewRule("same-name", func(a, b *imprecise.Node) imprecise.Verdict {
		if a.Tag() != "person" {
			return imprecise.Verdict{}
		}
		if imprecise.CertainText(a, "nm") != imprecise.CertainText(b, "nm") {
			return imprecise.Verdict{Decision: imprecise.DecisionCannotMatch, Rule: "same-name"}
		}
		return imprecise.Verdict{}
	})
}

func main() {
	schema := imprecise.MustParseDTD(contactsDTD)
	db, err := imprecise.OpenXMLString(sources[0], imprecise.Config{
		Schema: schema,
		Rules:  []imprecise.Rule{nameGate()},
	})
	if err != nil {
		log.Fatal(err)
	}

	for i, src := range sources[1:] {
		stats, err := db.IntegrateXMLString(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after source %d: %s possible worlds (%d undecided pairs, %d schema-pruned matchings)\n",
			i+2, db.WorldCount(), stats.UndecidedPairs, stats.MatchingsPruned)
	}

	fmt.Println("\nexpected contact counts (exact, all worlds):")
	for _, q := range []string{`//person`, `//person/tel`, `//person/email`} {
		e, err := imprecise.ExpectedCount(db.Tree(), imprecise.MustCompileQuery(q))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  E[count %-16s] = %.3f\n", q, e)
	}

	fmt.Println("\nJohn's phone numbers:")
	res, err := db.Query(`//person[nm="John"]/tel`)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Answers {
		fmt.Printf("  %5.1f%%  %s\n", a.P*100, a.Value)
	}

	// Snapshot the database, reload, and verify it answers identically.
	dir := filepath.Join(os.TempDir(), "imprecise-multisource-demo")
	manifest, err := imprecise.SaveSnapshot(dir, db.Tree(), schema, "after three sources")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot saved to %s (%d nodes, %s worlds)\n", dir, manifest.LogicalNodes, manifest.Worlds)

	snap, err := imprecise.LoadSnapshot(dir)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := imprecise.EvalQuery(snap.Tree, imprecise.MustCompileQuery(`//person[nm="John"]/tel`), imprecise.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reloaded snapshot answers:")
	for _, a := range res2.Answers {
		fmt.Printf("  %5.1f%%  %s\n", a.P*100, a.Value)
	}
}

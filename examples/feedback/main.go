// Feedback demonstrates the information cycle of the paper's Figure 1:
// query answers are judged by the user, judgments are traced back to
// possible worlds, and impossible worlds are removed — the integration
// improves incrementally while the data is being used. (The original demo
// paper lists this mechanism as not yet implemented; this reproduction
// builds it.)
//
// Run with: go run ./examples/feedback
package main

import (
	"fmt"
	"log"

	imprecise "repro"
	"repro/internal/datagen"
)

func main() {
	pair := datagen.Confusing(6, 1)
	db, err := imprecise.Open(pair.A.Tree, imprecise.Config{
		Schema: datagen.MovieDTD(),
		Rules:  imprecise.SetGenreTitle.Rules(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.IntegrateTree(pair.B.Tree); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after integration: %s possible worlds, %d nodes\n\n",
		db.WorldCount(), db.Stats().LogicalNodes)

	const q = `//movie[.//genre="Horror"]/title`
	print := func() {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", q)
		for i, a := range res.Answers {
			if i >= 6 {
				fmt.Printf("  … %d more\n", len(res.Answers)-i)
				break
			}
			fmt.Printf("  %5.1f%%  %s\n", a.P*100, a.Value)
		}
		fmt.Println()
	}
	print()

	// Negative feedback scales to millions of worlds because rejecting an
	// answer conditions the factorized representation in place. The user
	// works down the ranked title list, rejecting spurious low-probability
	// titles, until little uncertainty remains.
	reject := func(qs, noun string, keepAbove float64) {
		for round := 0; round < 20; round++ {
			res, err := db.Query(qs)
			if err != nil {
				log.Fatal(err)
			}
			var victim *imprecise.Answer
			for i := len(res.Answers) - 1; i >= 0; i-- {
				if res.Answers[i].P < keepAbove {
					victim = &res.Answers[i]
					break
				}
			}
			if victim == nil {
				return
			}
			fmt.Printf(">> feedback: %q is NOT a %s in the integrated data\n", victim.Value, noun)
			ev, err := db.Feedback(qs, victim.Value, false)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   worlds %s -> %s (prior probability of that feedback: %.3f)\n",
				ev.WorldsBefore, ev.WorldsAfter, ev.PriorP)
		}
	}
	// The user cleans up spurious low-ranked titles, then director-name
	// variants ("Woo, John" vs "John Woo" — the convention clash between
	// the sources).
	reject(`//movie/title`, "movie title", 0.9)
	reject(`//movie/director`, "director name", 0.9)
	fmt.Println()
	print()

	// Positive feedback couples independent choices and therefore
	// enumerates worlds; it becomes available once rejections have
	// shrunk the world set.
	res, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Answers) > 0 && db.WorldCount().IsInt64() && db.WorldCount().Int64() <= 100000 {
		best := res.Answers[0]
		fmt.Printf(">> feedback: %q IS a horror movie title\n", best.Value)
		ev, err := db.Feedback(q, best.Value, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   worlds %s -> %s\n\n", ev.WorldsBefore, ev.WorldsAfter)
		print()
	}

	fmt.Printf("feedback events applied: %d\n", len(db.FeedbackHistory()))
	fmt.Printf("database certain: %v, %s worlds remain\n", db.IsCertain(), db.WorldCount())
}

// Movies reproduces the paper's §V/§VI movie-metadata scenario on the
// synthetic catalog: an "MPEG-7" source with six franchise sequels is
// integrated with a confusing "IMDB" source (sequels, TV shows, word-order
// variants). The example shows how knowledge rules shrink the integration
// result (Table I) and then runs the paper's two example queries against
// the integrated probabilistic database.
//
// Run with: go run ./examples/movies
package main

import (
	"fmt"
	"log"

	imprecise "repro"
	"repro/internal/datagen"
)

func main() {
	schema := datagen.MovieDTD()

	fmt.Println("== effect of knowledge rules on the integration result ==")
	fmt.Println("   (Table I setup: 2 sequels per franchise on each side, 1 shared rwo each)")
	table1 := datagen.TableISources()
	fmt.Printf("%-36s %12s %22s %10s\n", "rules", "#nodes", "#worlds", "undecided")
	for _, set := range []imprecise.RuleSet{
		imprecise.SetNone, imprecise.SetGenre, imprecise.SetTitle,
		imprecise.SetGenreTitle, imprecise.SetGenreTitleYear,
	} {
		res, stats, err := imprecise.Integrate(table1.A.Tree, table1.B.Tree, imprecise.IntegrationConfig{
			Oracle:        imprecise.NewMovieOracle(set),
			Schema:        schema,
			SkipNormalize: true, // report raw sizes, like the paper
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s %12d %22s %10d\n", set, res.NodeCount(), res.WorldCount(), stats.UndecidedPairs)
	}

	pair := datagen.Confusing(12, 1)

	// Integrate under genre+title rules (year left out keeps the sequel
	// confusion alive, as in the paper's query section).
	fmt.Println("\n== querying the confusing integration (genre+title rules) ==")
	tree, _, err := imprecise.Integrate(pair.A.Tree, pair.B.Tree, imprecise.IntegrationConfig{
		Oracle: imprecise.NewMovieOracle(imprecise.SetGenreTitle),
		Schema: schema,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integrated document: %d nodes, %s possible worlds\n", tree.NodeCount(), tree.WorldCount())

	show := func(q string) {
		res, err := imprecise.EvalQuery(tree, imprecise.MustCompileQuery(q), imprecise.QueryOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s   [%s]\n", q, res.Method)
		for i, a := range res.Answers {
			if i >= 8 {
				fmt.Printf("  … %d more\n", len(res.Answers)-i)
				break
			}
			fmt.Printf("  %3.0f%%  %s\n", a.P*100, a.Value)
		}
	}

	// The paper's first example: horror movies. Even with thousands of
	// possible worlds the ranked answer is short and usable.
	show(`//movie[.//genre="Horror"]/title`)

	// The paper's second example: movies directed by somebody named John.
	// The ranking surfaces a low-probability artifact (a world in which
	// the John Woo movie merged with the De Palma original and kept the
	// shorter title).
	show(`//movie[some $d in .//director satisfies contains($d,"John")]/title`)
}

// Quickstart reproduces the paper's running example (Figure 2): two
// address books both contain a person named John, with different phone
// numbers. Integration cannot tell whether they are the same person, so
// the database keeps all three possible worlds; the DTD knowledge that a
// person has at most one phone rejects the world in which the merged John
// keeps both numbers. Feedback then resolves the uncertainty.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	imprecise "repro"
)

const bookA = `
<addressbook>
	<person><nm>John</nm><tel>1111</tel></person>
</addressbook>`

const bookB = `
<addressbook>
	<person><nm>John</nm><tel>2222</tel></person>
</addressbook>`

const personDTD = `
	<!ELEMENT addressbook (person*)>
	<!ELEMENT person (nm, tel?)>
	<!ELEMENT nm (#PCDATA)>
	<!ELEMENT tel (#PCDATA)>
`

func main() {
	schema, err := imprecise.ParseDTD(personDTD)
	if err != nil {
		log.Fatal(err)
	}
	db, err := imprecise.OpenXMLString(bookA, imprecise.Config{Schema: schema})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== integrating two address books (paper Figure 2) ==")
	stats, err := db.IntegrateXMLString(bookB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("possible worlds: %s (undecided pairs: %d, DTD-pruned matchings: %d)\n\n",
		db.WorldCount(), stats.UndecidedPairs, stats.MatchingsPruned)

	fmt.Println("the integrated probabilistic document:")
	if err := db.ExportXML(os.Stdout, imprecise.EncodeOptions{Indent: "  ", ProbDigits: 3}); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	show := func(label, q string) {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s  (%s)\n", label, q)
		for _, a := range res.Answers {
			fmt.Printf("  %3.0f%%  %s\n", a.P*100, a.Value)
		}
	}
	show("John's phone numbers, ranked by likelihood:", `//person[nm="John"]/tel`)

	fmt.Println("\n== user feedback: \"2222 is wrong\" ==")
	ev, err := db.Feedback(`//person[nm="John"]/tel`, "2222", false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worlds: %s -> %s (the feedback had prior probability %.2f)\n",
		ev.WorldsBefore, ev.WorldsAfter, ev.PriorP)
	show("after feedback:", `//person[nm="John"]/tel`)
	fmt.Printf("\ndatabase certain again: %v\n", db.IsCertain())
}

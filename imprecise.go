// Package imprecise is a from-scratch Go implementation of IMPrECISE —
// "good is good enough" probabilistic XML data integration (de Keijzer &
// van Keulen, ICDE 2008).
//
// IMPrECISE integrates XML documents near-automatically: wherever it
// cannot decide with certainty whether two elements refer to the same
// real-world object, it keeps every possibility in one compact
// probabilistic XML document, prunes nonsense possibilities with simple
// knowledge rules ("The Oracle") and schema (DTD) knowledge, and answers
// queries with ranked, probability-annotated results over the induced
// possible worlds. User feedback on answers removes impossible worlds and
// incrementally sharpens the integration.
//
// # Quick start
//
//	db, _ := imprecise.OpenXML(strings.NewReader(sourceA), imprecise.Config{
//		Schema: imprecise.MustParseDTD(`<!ELEMENT person (nm, tel?)>`),
//	})
//	db.IntegrateXML(strings.NewReader(sourceB))
//	res, _ := db.Query(`//person[nm="John"]/tel`)
//	for _, a := range res.Answers {
//		fmt.Printf("%3.0f%% %s\n", a.P*100, a.Value)
//	}
//
// The package re-exports the stable surface of the internal subsystems;
// see the examples/ directory for runnable end-to-end scenarios and
// DESIGN.md for the architecture.
package imprecise

import (
	"context"
	"io"
	"net/http"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/explain"
	"repro/internal/feedback"
	"repro/internal/integrate"
	"repro/internal/oracle"
	"repro/internal/pxml"
	"repro/internal/query"
	"repro/internal/queryindex"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/xmlcodec"
)

// Database is a probabilistic XML database with near-automatic
// integration (see core.Database).
type Database = core.Database

// Config configures a Database.
type Config = core.Config

// Open creates a database over an initial probabilistic document.
func Open(doc *Tree, cfg Config) (*Database, error) { return core.Open(doc, cfg) }

// OpenXML creates a database from XML text (plain, or carrying the
// probabilistic markers <_prob> and <_poss p="…">).
func OpenXML(r io.Reader, cfg Config) (*Database, error) { return core.OpenXML(r, cfg) }

// OpenXMLString is OpenXML over a string.
func OpenXMLString(src string, cfg Config) (*Database, error) {
	return core.OpenXML(strings.NewReader(src), cfg)
}

// --- probabilistic XML model ---

// Tree is a probabilistic XML document.
type Tree = pxml.Tree

// Node is a node of a probabilistic XML document.
type Node = pxml.Node

// TreeStats summarizes document size (logical/physical nodes, worlds).
type TreeStats = pxml.Stats

// CertainText returns the text of an element's unique certainly-present
// child with the given tag ("" if absent or uncertain) — the usual way
// rules inspect fields.
func CertainText(elem *Node, tag string) string { return pxml.CertainText(elem, tag) }

// CertainTexts returns the texts of all certainly-present children with
// the given tag, in document order.
func CertainTexts(elem *Node, tag string) []string { return pxml.CertainTexts(elem, tag) }

// ElementChildren returns an element's certainly-present child elements
// (children under genuine choice points are skipped).
func ElementChildren(elem *Node) []*Node { return pxml.ElementChildren(elem) }

// DecodeXML parses XML text into a probabilistic document.
func DecodeXML(r io.Reader) (*Tree, error) { return xmlcodec.Decode(r) }

// DecodeXMLString is DecodeXML over a string.
func DecodeXMLString(src string) (*Tree, error) { return xmlcodec.DecodeString(src) }

// EncodeOptions control XML serialization of probabilistic documents.
type EncodeOptions = xmlcodec.EncodeOptions

// EncodeXML writes a probabilistic document as XML with markers.
func EncodeXML(w io.Writer, t *Tree, opts EncodeOptions) error {
	return xmlcodec.Encode(w, t, opts)
}

// --- schema knowledge ---

// Schema is DTD-style cardinality knowledge used to prune impossible
// possibilities during integration.
type Schema = dtd.Schema

// ParseDTD parses <!ELEMENT …> declarations.
func ParseDTD(src string) (*Schema, error) { return dtd.ParseString(src) }

// MustParseDTD is ParseDTD that panics on error.
func MustParseDTD(src string) *Schema { return dtd.MustParse(src) }

// --- the Oracle ---

// Rule is an Oracle knowledge rule deciding whether two elements refer to
// the same real-world object.
type Rule = oracle.Rule

// Verdict is a rule's or the Oracle's decision for an element pair.
type Verdict = oracle.Verdict

// Decision classifies an element pair.
type Decision = oracle.Decision

// Decision values for rule verdicts.
const (
	DecisionUnknown     = oracle.Unknown
	DecisionMustMatch   = oracle.MustMatch
	DecisionCannotMatch = oracle.CannotMatch
)

// RuleSet names the rule bundles of the paper's Table I.
type RuleSet = oracle.RuleSet

// The rule-set constants mirror the rows of the paper's Table I.
const (
	SetNone           = oracle.SetNone
	SetGenre          = oracle.SetGenre
	SetTitle          = oracle.SetTitle
	SetGenreTitle     = oracle.SetGenreTitle
	SetGenreTitleYear = oracle.SetGenreTitleYear
	SetFull           = oracle.SetFull
)

// NewRule builds a custom rule from a function.
func NewRule(name string, fn func(a, b *Node) Verdict) Rule { return oracle.NewRule(name, fn) }

// Oracle is the rule engine deciding element-pair matches.
type Oracle = oracle.Oracle

// OracleOption tunes an Oracle (prior, estimators, strictness).
type OracleOption = oracle.Option

// NewOracle builds an Oracle from rules; the generic deep-equal rule is
// always included.
func NewOracle(rules []Rule, opts ...OracleOption) *Oracle { return oracle.New(rules, opts...) }

// NewMovieOracle builds the Oracle used in the paper's movie experiments:
// the given rule set plus a title-similarity estimator for undecided
// movie pairs.
func NewMovieOracle(s RuleSet, opts ...OracleOption) *Oracle { return oracle.MovieOracle(s, opts...) }

// Paper §V rules.
var (
	// GenreRule is "no typos occur in genres".
	GenreRule = oracle.GenreRule
	// TitleRule is "two movies cannot match if their titles are not
	// sufficiently similar".
	TitleRule = oracle.TitleRule
	// YearRule is "movies of different years cannot match".
	YearRule = oracle.YearRule
	// DirectorRule matches director names up to naming convention.
	DirectorRule = oracle.DirectorRule
)

// ExactLeafRule builds a "no typos occur in <tag>" rule.
func ExactLeafRule(tag string) Rule { return oracle.ExactLeaf(tag) }

// KeyFieldRule builds an "elements with different <field> cannot match"
// rule.
func KeyFieldRule(elemTag, fieldTag string) Rule { return oracle.KeyField(elemTag, fieldTag) }

// SimilarityRule builds an "elements cannot match unless <field> is
// sufficiently similar" rule.
func SimilarityRule(elemTag, fieldTag string, sim func(a, b string) float64, threshold float64) Rule {
	return oracle.Similarity(elemTag, fieldTag, sim, threshold)
}

// --- integration ---

// IntegrationConfig tunes the integration engine.
type IntegrationConfig = integrate.Config

// IntegrationStats reports what an integration run did.
type IntegrationStats = integrate.Stats

// Integrate merges two probabilistic documents directly (without a
// Database). Both must have a single certain root element with the same
// tag.
func Integrate(a, b *Tree, cfg IntegrationConfig) (*Tree, *IntegrationStats, error) {
	return integrate.Integrate(a, b, cfg)
}

// --- querying ---

// Query is a compiled query of the supported XPath subset.
type Query = query.Query

// Answer is one ranked probabilistic answer.
type Answer = query.Answer

// QueryResult is a ranked, probability-annotated answer sequence.
type QueryResult = query.Result

// QueryOptions configure evaluation strategies and budgets.
type QueryOptions = query.Options

// QueryCache is a concurrency-safe LRU cache of compiled queries, for
// callers evaluating the same query strings repeatedly outside a
// Database (which caches internally).
type QueryCache = query.Cache

// QueryCacheStats reports a QueryCache's hit/miss counters.
type QueryCacheStats = query.CacheStats

// NewQueryCache builds a compiled-query cache holding at most capacity
// entries (<= 0 means the default capacity).
func NewQueryCache(capacity int) *QueryCache { return query.NewCache(capacity) }

// CompileQuery parses a query.
func CompileQuery(src string) (*Query, error) { return query.Compile(src) }

// MustCompileQuery is CompileQuery that panics on error.
func MustCompileQuery(src string) *Query { return query.MustCompile(src) }

// QueryMethod names an evaluation strategy.
type QueryMethod = query.Method

// Evaluation strategies for QueryOptions.Method.
const (
	MethodAuto      = query.MethodAuto
	MethodExact     = query.MethodExact
	MethodEnumerate = query.MethodEnumerate
	MethodSample    = query.MethodSample
)

// QueryPlan explains how the engine chose an evaluation strategy.
type QueryPlan = query.Plan

// QueryIndex is an immutable per-tree index the planner consults; a
// Database builds one automatically at every tree swap.
type QueryIndex = queryindex.Index

// BuildQueryIndex indexes a document for planned evaluation outside a
// Database.
func BuildQueryIndex(t *Tree) *QueryIndex { return queryindex.Build(t) }

// QueryResultCache caches fully evaluated results keyed by (tree digest,
// query text, options); a Database maintains one internally.
type QueryResultCache = query.ResultCache

// QueryResultCacheStats reports a result cache's hit/miss counters.
type QueryResultCacheStats = query.ResultCacheStats

// NewQueryResultCache builds a result cache holding at most capacity
// entries (<= 0 means the default capacity).
func NewQueryResultCache(capacity int) *QueryResultCache { return query.NewResultCache(capacity) }

// DatabaseIndexStats reports a Database's index construction work.
type DatabaseIndexStats = core.IndexStats

// EvalQuery evaluates a query over a document with the best applicable
// strategy (the unplanned reference engine; see EvalQueryIndexed for the
// planner).
func EvalQuery(t *Tree, q *Query, opts QueryOptions) (QueryResult, error) {
	return query.Eval(t, q, opts)
}

// EvalQueryIndexed evaluates through the planner: cost-based automatic
// strategy selection against idx (which may be nil), with the explainable
// plan attached to the result. Auto evaluation returns bit-identical
// answers to explicitly requesting the method the plan names.
func EvalQueryIndexed(t *Tree, q *Query, opts QueryOptions, idx *QueryIndex) (QueryResult, error) {
	return query.EvalIndexed(t, q, opts, idx)
}

// EvalQueryIndexedCtx is EvalQueryIndexed with cancellation and per-query
// budgets: evaluation aborts when ctx is canceled, and when
// QueryOptions.TimeBudget or MaxNodeVisits runs out it returns
// ErrQueryBudgetExhausted with the plan's BudgetExhausted flag set.
// QueryOptions.Workers fans evaluation out over a bounded worker pool;
// answers are bit-identical for every worker count.
func EvalQueryIndexedCtx(ctx context.Context, t *Tree, q *Query, opts QueryOptions, idx *QueryIndex) (QueryResult, error) {
	return query.EvalIndexedCtx(ctx, t, q, opts, idx)
}

// ErrQueryBudgetExhausted marks a query aborted by a per-query wall-time
// or node-visit budget.
var ErrQueryBudgetExhausted = query.ErrBudgetExhausted

// QueryExecStats reports how one evaluation ran: resolved worker count,
// pool scheduling, and the budget meter reading.
type QueryExecStats = query.ExecStats

// ExpectedCount returns the expected number of result nodes of the query
// over all possible worlds — exact even on documents whose world count is
// astronomically large.
func ExpectedCount(t *Tree, q *Query) (float64, error) {
	return query.ExpectedCount(t, q, 0)
}

// --- feedback ---

// FeedbackEvent records one processed feedback judgment.
type FeedbackEvent = feedback.Event

// FeedbackOptions bound the conditioning work of feedback processing.
type FeedbackOptions = feedback.Options

// FeedbackJudgment is a user's verdict on an answer (Correct/Incorrect).
type FeedbackJudgment = feedback.Judgment

// Judgment values for FeedbackSession.Apply.
const (
	JudgmentCorrect   = feedback.Correct
	JudgmentIncorrect = feedback.Incorrect
)

// FeedbackSession applies judgments to a document outside a Database.
type FeedbackSession = feedback.Session

// NewFeedbackSession starts a feedback session over a document.
func NewFeedbackSession(t *Tree, opts FeedbackOptions) *FeedbackSession {
	return feedback.NewSession(t, opts)
}

// --- explanation ---

// ExplainReport traces an answer to the choice points it depends on.
type ExplainReport = explain.Report

// ExplainOptions bound the explanation analysis.
type ExplainOptions = explain.Options

// ExplainAnswer reports, per choice point, the answer probability under
// each forced alternative and the posterior of each alternative given the
// answer — which undecided matches an answer hinges on.
func ExplainAnswer(t *Tree, q *Query, value string, opts ExplainOptions) (*ExplainReport, error) {
	return explain.Answer(t, q, value, opts)
}

// --- persistence ---

// Snapshot is a database snapshot loaded from disk.
type Snapshot = store.Snapshot

// Manifest is the metadata of a stored snapshot.
type Manifest = store.Manifest

// SaveSnapshot persists a document (and optional schema) into a
// directory, with integrity metadata.
func SaveSnapshot(dir string, t *Tree, schema *Schema, comment string) (Manifest, error) {
	return store.Save(dir, t, schema, comment)
}

// LoadSnapshot reads a snapshot back, verifying its checksums.
func LoadSnapshot(dir string) (*Snapshot, error) { return store.Load(dir) }

// --- serving ---

// ServerOptions configure the HTTP front end (snapshot directory, body
// limits, request logging).
type ServerOptions = server.Options

// NewHTTPHandler returns an http.Handler exposing db over the
// JSON-over-HTTP API of the `imprecise serve` command: /integrate,
// /query, /feedback, /stats, /worlds, /export, /save, /load, /healthz.
// The handler is safe for concurrent requests; see README.md for the
// endpoint reference.
func NewHTTPHandler(db *Database, opts ServerOptions) http.Handler {
	return server.New(db, opts).Handler()
}

// --- durable multi-database catalog ---

// Catalog is a data directory of named, durable databases: every
// mutation is recorded in a per-database write-ahead op log before it
// becomes visible, a background compactor folds the log into snapshots,
// and OpenCatalog recovers each database (snapshot + log tail) after any
// crash — no clean shutdown required.
type Catalog = catalog.Catalog

// CatalogDB is one named database of a Catalog; CatalogDB.Core exposes
// the journaled Database.
type CatalogDB = catalog.DB

// CatalogOptions configure a Catalog (per-database core config, write-
// ahead segment size, compaction cadence).
type CatalogOptions = catalog.Options

// OpenCatalog opens (creating if needed) the catalog rooted at dir and
// recovers every database inside it.
func OpenCatalog(dir string, opts CatalogOptions) (*Catalog, error) {
	return catalog.Open(dir, opts)
}

// NewCatalogHTTPHandler exposes a catalog over HTTP: every per-database
// verb under /dbs/{name}/…, catalog management on /dbs, and the legacy
// single-database routes aliased to the catalog's default database. A
// catalog handler is also a replication primary: it ships its write-ahead
// logs under /dbs/{name}/wal and serves bootstrap snapshots for replicas.
func NewCatalogHTTPHandler(c *Catalog, opts ServerOptions) http.Handler {
	return server.NewCatalog(c, opts).Handler()
}

// --- replication ---

// Replica is a live read replica: a local follower catalog kept
// converged with a primary server by write-ahead-log shipping (snapshot
// bootstrap, long-poll tailing, divergence detection and resync).
type Replica = replica.Replica

// ReplicaOptions configure a Replica (primary URL, follower catalog
// options, poll/backoff tuning). Catalog.Config must match the
// primary's: shipped ops are re-executed locally.
type ReplicaOptions = replica.Options

// ReplicaStatus reports a replica's per-database lag and sync counters.
type ReplicaStatus = replica.Status

// OpenReplica opens (creating if needed) the follower catalog rooted at
// dir and starts synchronizing it with the primary. Close the replica to
// stop tailing; its durable state resumes from the same position on the
// next OpenReplica.
func OpenReplica(dir string, opts ReplicaOptions) (*Replica, error) {
	return replica.Open(dir, opts)
}

// NewReplicaHTTPHandler exposes a replica over HTTP: every read verb is
// served from the follower's local state, and every mutation is rejected
// with 403 plus the primary's address. POST /promote turns the replica
// into the cluster's primary: the cluster epoch is raised, the old
// primary is fenced (its stale ships rejected with ErrStaleEpoch), and
// mutations start being accepted.
func NewReplicaHTTPHandler(r *Replica, opts ServerOptions) http.Handler {
	return server.NewReplica(r, opts).Handler()
}

// ErrStaleEpoch is returned (wrapped) when a replication record or page
// arrives from a node whose cluster epoch is below the local one — the
// signature of a deposed primary still trying to ship after a failover.
var ErrStaleEpoch = catalog.ErrStaleEpoch

package imprecise_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	imprecise "repro"
)

// TestNewHTTPHandler drives the public HTTP surface end to end: open a
// database, serve it, integrate a second source over the wire, query.
func TestNewHTTPHandler(t *testing.T) {
	db, err := imprecise.OpenXMLString(qsBookA, imprecise.Config{
		Schema: imprecise.MustParseDTD(qsDTD),
	})
	if err != nil {
		t.Fatalf("OpenXMLString: %v", err)
	}
	ts := httptest.NewServer(imprecise.NewHTTPHandler(db, imprecise.ServerOptions{}))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/integrate", "application/xml", strings.NewReader(qsBookB))
	if err != nil {
		t.Fatalf("POST /integrate: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /integrate: status %d, body %s", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/query?q=" + url.QueryEscape(`//person/tel`))
	if err != nil {
		t.Fatalf("GET /query: %v", err)
	}
	defer resp.Body.Close()
	var qr struct {
		Method  string `json:"method"`
		Answers []struct {
			Value string  `json:"value"`
			P     float64 `json:"p"`
		} `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("decode query response: %v", err)
	}
	if len(qr.Answers) != 2 || qr.Method == "" {
		t.Fatalf("query response = %+v", qr)
	}
}

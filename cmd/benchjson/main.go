// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so CI can archive benchmark runs as machine-readable
// artifacts (BENCH_integrate.json, BENCH_query.json, BENCH_store.json,
// BENCH_replication.json, BENCH_codec.json, BENCH_failover.json) and the
// perf trajectory of the hot paths accumulates comparable data points per
// commit. Encoding-split suites (store, replication, codec) carry the
// json/binary sub-benchmark pairs whose ratio gates the binary formats.
//
// Usage:
//
//	go test -run '^$' -bench Integrate -benchtime 1x . | go run ./cmd/benchjson -suite integrate
//	go test -run '^$' -bench 'CodecRoundTrip|SnapshotLoad' -benchtime 20x . | go run ./cmd/benchjson -suite codec
//
// Standard metrics (ns/op, B/op, allocs/op) and custom b.ReportMetric
// units (components, workers, nodes, …) all land in the per-benchmark
// metrics map; environment header lines (goos, goarch, cpu, pkg) are
// captured alongside. The optional -suite flag names the run, so
// artifacts from different bench jobs stay distinguishable after
// download.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Output is the whole converted run.
type Output struct {
	Suite   string            `json:"suite,omitempty"`
	Env     map[string]string `json:"env,omitempty"`
	Results []Result          `json:"results"`
}

func main() {
	suite := flag.String("suite", "", "suite name recorded in the output (e.g. integrate, query)")
	flag.Parse()
	out := Output{Suite: *suite, Env: map[string]string{}, Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				out.Results = append(out.Results, r)
			}
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			out.Env[key] = strings.TrimSpace(val)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one benchmark result line of the form
//
//	BenchmarkName/sub-8   12   3456 ns/op   7.0 components   1.0 workers
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
		}
		r.Metrics[unit] = v
	}
	return r, true
}

// Command imprecise is the command-line front end to the IMPrECISE
// probabilistic XML integration library.
//
// Usage:
//
//	imprecise integrate -a A.xml -b B.xml [-dtd schema.dtd] [-rules genre,title,year,director] [-o out.xml] [-raw]
//	imprecise query     -db doc.xml -q '//movie[.//genre="Horror"]/title' [-top 10]
//	imprecise stats     -db doc.xml
//	imprecise worlds    -db doc.xml [-max 20]
//	imprecise feedback  -db doc.xml -q QUERY -value V -judgment correct|incorrect [-o out.xml]
//	imprecise generate  -scenario table1|confusing|typical [-n 12] [-seed 1] [-dir out]
//	imprecise serve     [-addr :8080] [-db doc.xml] [-dtd schema.dtd] [-rules …] [-snapshots dir]
//
// Documents may be plain XML or probabilistic XML with <_prob>/<_poss>
// markers; output documents use the markers.
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	if err := cli.Run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "imprecise:", err)
		os.Exit(1)
	}
}

// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them side by side with the paper's numbers.
//
// Usage:
//
//	experiments [-exp table1|fig5|typical|q1|q2|quality|ablation|evaluators|all]
//
// Absolute numbers differ from the paper (the original IMDB/MPEG-7
// snapshot is unavailable; the synthetic catalog reproduces the confusion
// structure) — the comparison targets are the orderings, ratios and growth
// shapes. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, fig5, typical, q1, q2, quality, ablation, evaluators, all")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	run("table1", table1)
	run("fig5", fig5)
	run("typical", typical)
	run("q1", func() error { return queryExp("q1", experiments.HorrorQuery) })
	run("q2", func() error { return queryExp("q2", experiments.JohnQuery) })
	run("quality", qualityExp)
	run("ablation", ablation)
	run("evaluators", evaluators)
}

func table1() error {
	fmt.Println("== Table I: effect of rules on uncertainty ==")
	fmt.Println("   (6 sequels vs 6 sequels, one shared rwo per franchise; raw #nodes)")
	rows, err := experiments.Table1()
	if err != nil {
		return err
	}
	fmt.Printf("%-36s %12s %12s %10s %22s\n", "Effective rules", "#nodes", "paper", "undecided", "#worlds")
	base := rows[0].Nodes
	for _, r := range rows {
		fmt.Printf("%-36s %12d %12d %10d %22s   (reduction %.1fx)\n",
			r.Set, r.Nodes, r.PaperNodes, r.Undecided, r.Worlds.String(), float64(base)/float64(r.Nodes))
	}
	return nil
}

func fig5() error {
	fmt.Println("== Figure 5: influence of rules on scalability ==")
	fmt.Println("   (6 MPEG-7 movies vs n confusing IMDB movies; raw #nodes, log-scale in the paper)")
	points, err := experiments.Figure5(experiments.DefaultFigure5Ns(), 1)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %22s %22s\n", "n", "only title rule", "title+year rule")
	byN := map[int]map[string]int64{}
	for _, p := range points {
		if byN[p.N] == nil {
			byN[p.N] = map[string]int64{}
		}
		byN[p.N][p.Set.String()] = p.Nodes
	}
	for _, n := range experiments.DefaultFigure5Ns() {
		fmt.Printf("%6d %22d %22d\n", n,
			byN[n]["Movie title rule"], byN[n]["Genre, movie title and year rule"])
	}
	return nil
}

func typical() error {
	fmt.Println("== Typical conditions (§V): 6 vs 60 movies, 2 shared rwos, all rules ==")
	r, err := experiments.Typical()
	if err != nil {
		return err
	}
	fmt.Printf("measured: %d nodes, %s possible worlds, %d undecided matches\n",
		r.Nodes, r.Worlds.String(), r.Undecided)
	fmt.Println("paper:    ~3500 nodes, 4 possible worlds, 2 undecided matches")
	return nil
}

func queryExp(name, q string) error {
	fmt.Printf("== %s: %s ==\n", name, q)
	doc, err := experiments.QueryDocument()
	if err != nil {
		return err
	}
	r, err := experiments.RunQuery(doc, q)
	if err != nil {
		return err
	}
	fmt.Printf("document: %d nodes, %s possible worlds; evaluator: %s\n", r.Nodes, r.Worlds.String(), r.Method)
	for i, a := range r.Answers {
		if i >= 10 {
			fmt.Printf("  … %d more\n", len(r.Answers)-i)
			break
		}
		fmt.Printf("  %5.1f%%  %s\n", a.P*100, a.Value)
	}
	if name == "q1" {
		fmt.Println("paper: 'Jaws' and 'Jaws 2' at 97% each (33856-world document)")
	} else {
		fmt.Println("paper: 100% Die Hard: With a Vengeance / 96% Mission: Impossible II / 21% Mission: Impossible")
	}
	return nil
}

func qualityExp() error {
	fmt.Println("== Answer quality (§VII, measures of ref [13]) ==")
	rows, err := experiments.Quality()
	if err != nil {
		return err
	}
	fmt.Printf("%-36s %-40s %9s %9s %9s %6s\n", "rules", "query", "precision", "recall", "F1", "AP")
	for _, r := range rows {
		q := r.Query
		if len(q) > 40 {
			q = q[:37] + "..."
		}
		fmt.Printf("%-36s %-40s %9.3f %9.3f %9.3f %6.3f\n",
			r.Set, q, r.Report.Precision, r.Report.Recall, r.Report.F1, r.Report.AveragePrecision)
	}
	return nil
}

func ablation() error {
	fmt.Println("== Ablation: independent-component factorization ==")
	r, err := experiments.Ablation()
	if err != nil {
		return err
	}
	fmt.Printf("factored:   %8d nodes, %s worlds, largest component %d edges, %s\n",
		r.FactoredNodes, r.FactoredWorlds.String(), r.FactoredLargest, r.FactoredElapsed.Round(1000))
	fmt.Printf("monolithic: %8d nodes, %s worlds, largest component %d edges, %s\n",
		r.MonolithicNodes, r.MonolithicWorlds.String(), r.MonolithicLargest, r.MonolithicElapsed.Round(1000))
	fmt.Println("same world distribution; factorization keeps representation size additive across groups")
	return nil
}

func evaluators() error {
	fmt.Println("== Evaluator comparison: exact vs enumerate vs sample ==")
	rows, err := experiments.Evaluators()
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%s  (%s worlds)\n", r.Query, r.Worlds.String())
		fmt.Printf("  exact %-12s enumerate %-12s sample %-12s  Δenum %.2e  Δsample %.3f\n",
			r.ExactElapsed.Round(1000), r.EnumElapsed.Round(1000), r.SampleElapsed.Round(1000),
			r.MaxDeltaEnum, r.MaxDeltaSample)
	}
	return nil
}

var _ = os.Exit

package imprecise_test

import (
	"math"
	"math/big"
	"strings"
	"testing"

	imprecise "repro"
)

const qsBookA = `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`
const qsBookB = `<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`
const qsDTD = `
	<!ELEMENT addressbook (person*)>
	<!ELEMENT person (nm, tel?)>
	<!ELEMENT nm (#PCDATA)>
	<!ELEMENT tel (#PCDATA)>`

// TestPublicAPIQuickstart runs the README quick-start flow end to end
// through the public package only.
func TestPublicAPIQuickstart(t *testing.T) {
	schema, err := imprecise.ParseDTD(qsDTD)
	if err != nil {
		t.Fatalf("ParseDTD: %v", err)
	}
	db, err := imprecise.OpenXMLString(qsBookA, imprecise.Config{Schema: schema})
	if err != nil {
		t.Fatalf("OpenXMLString: %v", err)
	}
	stats, err := db.IntegrateXMLString(qsBookB)
	if err != nil {
		t.Fatalf("IntegrateXMLString: %v", err)
	}
	if stats.UndecidedPairs != 2 {
		t.Fatalf("undecided = %d", stats.UndecidedPairs)
	}
	if db.WorldCount().Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("worlds = %s, want Figure 2's 3", db.WorldCount())
	}
	res, err := db.Query(`//person[nm="John"]/tel`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if math.Abs(res.P("1111")-0.75) > 1e-9 || math.Abs(res.P("2222")-0.75) > 1e-9 {
		t.Fatalf("answers = %v", res.Answers)
	}
	ev, err := db.Feedback(`//person[nm="John"]/tel`, "2222", false)
	if err != nil {
		t.Fatalf("Feedback: %v", err)
	}
	if ev.WorldsAfter.Cmp(big.NewInt(1)) != 0 || !db.IsCertain() {
		t.Fatalf("feedback did not resolve: %s worlds", ev.WorldsAfter)
	}
	var sb strings.Builder
	if err := imprecise.EncodeXML(&sb, db.Tree(), imprecise.EncodeOptions{}); err != nil {
		t.Fatalf("EncodeXML: %v", err)
	}
	if !strings.Contains(sb.String(), "<tel>1111</tel>") {
		t.Fatalf("export = %s", sb.String())
	}
}

func TestPublicAPIDirectIntegration(t *testing.T) {
	a, err := imprecise.DecodeXMLString(qsBookA)
	if err != nil {
		t.Fatalf("DecodeXMLString: %v", err)
	}
	b, err := imprecise.DecodeXMLString(qsBookB)
	if err != nil {
		t.Fatalf("DecodeXMLString: %v", err)
	}
	res, stats, err := imprecise.Integrate(a, b, imprecise.IntegrationConfig{
		Oracle: imprecise.NewOracle(nil),
		Schema: imprecise.MustParseDTD(qsDTD),
	})
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if res.WorldCount().Cmp(big.NewInt(3)) != 0 || stats.MatchingsPruned == 0 {
		t.Fatalf("unexpected integration result: %s worlds, %+v", res.WorldCount(), stats)
	}
}

func TestPublicAPICustomRule(t *testing.T) {
	phoneGate := imprecise.NewRule("phone-prefix", func(a, b *imprecise.Node) imprecise.Verdict {
		if a.Tag() != "person" {
			return imprecise.Verdict{}
		}
		return imprecise.Verdict{Decision: imprecise.DecisionCannotMatch, Rule: "phone-prefix"}
	})
	db, err := imprecise.OpenXMLString(qsBookA, imprecise.Config{
		Schema: imprecise.MustParseDTD(qsDTD),
		Rules:  []imprecise.Rule{phoneGate},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := db.IntegrateXMLString(qsBookB); err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	// The rule forbids all person merges: a single certain union world.
	if db.WorldCount().Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("worlds = %s, want 1", db.WorldCount())
	}
}

func TestPublicAPIRuleSetsAndQueries(t *testing.T) {
	sets := []imprecise.RuleSet{
		imprecise.SetNone, imprecise.SetGenre, imprecise.SetTitle,
		imprecise.SetGenreTitle, imprecise.SetGenreTitleYear, imprecise.SetFull,
	}
	for i, s := range sets {
		if i > 0 && len(s.Rules()) == 0 {
			t.Fatalf("%v has no rules", s)
		}
	}
	o := imprecise.NewMovieOracle(imprecise.SetGenreTitleYear)
	if len(o.Rules()) != 4 {
		t.Fatalf("movie oracle rules = %v", o.Rules())
	}
	q, err := imprecise.CompileQuery(`//movie[.//genre="Horror"]/title`)
	if err != nil {
		t.Fatalf("CompileQuery: %v", err)
	}
	if q.String() == "" {
		t.Fatalf("query string empty")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("MustCompileQuery should panic on junk")
			}
		}()
		imprecise.MustCompileQuery(`junk`)
	}()
}

func TestPublicAPIFeedbackSession(t *testing.T) {
	tr, err := imprecise.DecodeXMLString(
		`<a><_prob><_poss p="0.6"><b>x</b></_poss><_poss p="0.4"><b>y</b></_poss></_prob></a>`)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	s := imprecise.NewFeedbackSession(tr, imprecise.FeedbackOptions{})
	q := imprecise.MustCompileQuery(`//a/b`)
	ev, err := s.Apply(q, "y", imprecise.JudgmentIncorrect)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if math.Abs(ev.PriorP-0.6) > 1e-9 {
		t.Fatalf("prior = %v", ev.PriorP)
	}
	if s.Tree().WorldCount().Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("worlds = %s", s.Tree().WorldCount())
	}
}

// Binary wire encoding of the replication protocol, negotiated per
// request: a follower that speaks it sends "Accept: application/
// x-imprecise-wal", and the primary answers with a stream of codec
// frames instead of one JSON document. Either side may be older than the
// other — a JSON-only follower never sends the Accept header and gets
// JSON; a JSON-only primary ignores the header and answers JSON, which
// the follower detects by Content-Type — so mixed-version pairs always
// converge on a format both ends speak.
//
// WAL page stream (Content-Type application/x-imprecise-wal[2]):
//
//	H frame  page header: database, since, last_seq, digest, epoch
//	I frame  optional (wal2 only): the interned-string table the first
//	         record's strtab delta is based on — the cumulative deltas
//	         of the same-segment records the page skipped
//	R frame  one record, payload = the binary WAL record bytes
//	         (walrecord.go) — the exact bytes the primary's log holds,
//	         shipped without re-encoding
//	E frame  trailer: record count (truncation detector)
//
// Snapshot stream (same Content-Type):
//
//	S frame  header: database, format_version, seq, epoch, digest,
//	         schema, histories (JSON blobs; not hot)
//	I frame  optional (wal2 only): the string table the document's
//	         varint refs resolve against
//	T frame  the document as a pxml arena payload
//	E frame  trailer: frame count
//
// The wal2 media type additionally negotiates flate compression of the
// whole stream through the standard Content-Encoding/Accept-Encoding
// pair ("deflate"): framing is unchanged, the bytes on the wire are a
// raw DEFLATE stream of the frames above.
package replica

import (
	"compress/flate"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/catalog"
	"repro/internal/codec"
	"repro/internal/pxml"
)

// ContentTypeBinary is the original negotiated media type of the binary
// replication wire: self-contained records only, no string-table
// frames. A follower offers it via Accept; a primary that speaks it
// answers with it as the Content-Type.
const ContentTypeBinary = "application/x-imprecise-wal"

// ContentTypeBinary2 is the strtab-capable revision of the binary wire:
// pages may carry an I (string table) frame and records may be WAL v3
// (shared-dictionary) payloads. Note ContentTypeBinary is a substring
// of this value — deliberately, so a new follower's bare wal2 Accept
// still matches an old primary's wal1 Contains check and the pair
// degrades to the v1 wire; negotiators must therefore test for wal2
// BEFORE wal1.
const ContentTypeBinary2 = ContentTypeBinary + "2"

// ContentEncodingDeflate is the Content-Encoding token of the
// compressed binary wire (raw DEFLATE, compress/flate — not gzip, so
// both sides bypass the HTTP transport's transparent handling and the
// negotiation stays explicit).
const ContentEncodingDeflate = "deflate"

// Wire encoding names (per-peer observability and the WireEncoding
// option).
const (
	// WireBinary is the current binary wire (wal2, strtab-capable).
	WireBinary = "binary"
	// WireBinaryFlate is WireBinary with flate compression negotiated on
	// top (observability only; not a WireEncoding option value).
	WireBinaryFlate = "binary+flate"
	// WireBinaryV1 restricts the follower's offer to the original wal1
	// binary wire — the escape hatch, and the way tests pin an
	// old-binary-follower pairing.
	WireBinaryV1 = "binary1"
	WireJSON     = "json"
)

// wireVersion is the revision of the frame payload layouts below.
const wireVersion = 1

// appendPageHeader renders the H frame payload for page.
func appendPageHeader(page *WALPage) []byte {
	var hdr []byte
	hdr = codec.AppendString(hdr, page.Database)
	hdr = codec.AppendUvarint(hdr, page.Since)
	hdr = codec.AppendUvarint(hdr, page.LastSeq)
	hdr = codec.AppendString(hdr, page.Digest)
	hdr = codec.AppendUvarint(hdr, page.Epoch)
	return hdr
}

// EncodeWALPage streams page to w as binary frames, encoding each
// decoded record into its binary payload form. A primary serving its own
// log prefers EncodeRawWALPage, which skips this per-record encode.
func EncodeWALPage(w io.Writer, page *WALPage) error {
	fw := codec.NewFrameWriter(w)
	if err := fw.Write(codec.KindPageHeader, wireVersion, appendPageHeader(page)); err != nil {
		return err
	}
	for i := range page.Records {
		payload, err := catalog.EncodeWALRecord(page.Records[i])
		if err != nil {
			return fmt.Errorf("replica: encoding record %d: %w", page.Records[i].Seq, err)
		}
		if err := fw.Write(codec.KindRecord, wireVersion, payload); err != nil {
			return err
		}
	}
	return fw.Write(codec.KindEnd, wireVersion, codec.AppendUvarint(nil, uint64(len(page.Records))))
}

// EncodeRawWALPage streams a page whose records are raw on-disk payload
// bytes (catalog.RawOpsSince) — the zero-re-encode shipping path. The
// header fields come from page; page.Records is ignored, raws supplies
// the R frames. A JSON-era payload in raws ships as-is too: the decoder
// dispatches per record, so mixed-format logs travel unchanged. prefix
// is the interned-string table the first record's strtab delta assumes
// (RawOpsSince's second result); non-empty, it ships as an I frame
// right after the header.
func EncodeRawWALPage(w io.Writer, page *WALPage, raws []catalog.RawWALRecord, prefix []string) error {
	fw := codec.NewFrameWriter(w)
	if err := fw.Write(codec.KindPageHeader, wireVersion, appendPageHeader(page)); err != nil {
		return err
	}
	if len(prefix) > 0 {
		if err := fw.Write(codec.KindStrTab, codec.StrTabVersion, codec.AppendStrTabPayload(nil, 0, prefix)); err != nil {
			return err
		}
	}
	for i := range raws {
		if err := fw.Write(codec.KindRecord, wireVersion, raws[i].Payload); err != nil {
			return err
		}
	}
	return fw.Write(codec.KindEnd, wireVersion, codec.AppendUvarint(nil, uint64(len(raws))))
}

// DecodeWALPage reads one binary WAL page stream, wal1 or wal2. A
// stream that ends before the E trailer — a connection cut mid-page —
// is an error, never a short page. The page-scoped string table starts
// from the optional I frame and advances through each shared record's
// embedded delta, exactly as the primary's log reader would.
func DecodeWALPage(r io.Reader) (*WALPage, error) {
	fr := codec.NewFrameReader(r, 0)
	f, err := fr.Read()
	if err != nil {
		return nil, fmt.Errorf("replica: reading page header: %w", err)
	}
	if f.Kind != codec.KindPageHeader {
		return nil, fmt.Errorf("%w: page stream starts with frame %q", codec.ErrInvalid, f.Kind)
	}
	hr := codec.NewReader(f.Payload)
	page := &WALPage{Records: []catalog.WALRecord{}}
	page.Database = hr.String()
	page.Since = hr.Uvarint()
	page.LastSeq = hr.Uvarint()
	page.Digest = hr.String()
	page.Epoch = hr.Uvarint()
	if err := hr.Finish(); err != nil {
		return nil, fmt.Errorf("replica: page header: %w", err)
	}
	var tab codec.StrTab
	for {
		f, err := fr.Read()
		if err != nil {
			return nil, fmt.Errorf("replica: page stream cut after %d record(s): %w", len(page.Records), err)
		}
		switch f.Kind {
		case codec.KindStrTab:
			// The prefix table: legal only before the first record (it is
			// what the FIRST record's delta is based on).
			if len(page.Records) > 0 || tab.Len() > 0 {
				return nil, fmt.Errorf("%w: string-table frame after record(s)", codec.ErrInvalid)
			}
			base, entries, err := codec.DecodeStrTabPayload(f.Payload, false)
			if err != nil {
				return nil, fmt.Errorf("replica: page string table: %w", err)
			}
			if err := tab.Apply(base, entries); err != nil {
				return nil, fmt.Errorf("replica: page string table: %w", err)
			}
		case codec.KindRecord:
			rec, err := catalog.DecodeWALRecordShared(f.Payload, &tab)
			if err != nil {
				return nil, fmt.Errorf("replica: record %d of page: %w", len(page.Records)+1, err)
			}
			page.Records = append(page.Records, rec)
		case codec.KindEnd:
			tr := codec.NewReader(f.Payload)
			n := tr.Uvarint()
			if err := tr.Finish(); err != nil {
				return nil, fmt.Errorf("replica: page trailer: %w", err)
			}
			if n != uint64(len(page.Records)) {
				return nil, fmt.Errorf("%w: page trailer says %d records, stream carried %d", codec.ErrInvalid, n, len(page.Records))
			}
			return page, nil
		default:
			return nil, fmt.Errorf("%w: unexpected frame %q in page stream", codec.ErrInvalid, f.Kind)
		}
	}
}

// DecodeWALPageDeflate is DecodeWALPage over a flate-compressed stream
// (Content-Encoding: deflate) — the follower's read half of wire
// compression.
func DecodeWALPageDeflate(r io.Reader) (*WALPage, error) {
	zr := flate.NewReader(r)
	defer zr.Close()
	page, err := DecodeWALPage(zr)
	if err != nil {
		return nil, err
	}
	// The E trailer already proved the page complete; a broken DEFLATE
	// tail after it would be noise, not data loss.
	return page, nil
}

// appendSnapshotHeader renders the S frame payload.
func appendSnapshotHeader(payload *SnapshotPayload) ([]byte, error) {
	var hdr []byte
	hdr = codec.AppendString(hdr, payload.Database)
	hdr = codec.AppendUvarint(hdr, uint64(payload.FormatVersion))
	hdr = codec.AppendUvarint(hdr, payload.Seq)
	hdr = codec.AppendUvarint(hdr, payload.Epoch)
	hdr = codec.AppendString(hdr, payload.Digest)
	hdr = codec.AppendString(hdr, payload.Schema)
	ints, err := marshalHistory(payload.Integrations)
	if err != nil {
		return nil, err
	}
	evs, err := marshalHistory(payload.Feedback)
	if err != nil {
		return nil, err
	}
	hdr = codec.AppendBytes(hdr, ints)
	hdr = codec.AppendBytes(hdr, evs)
	// Pending ingest queue, appended after the original fields; decoders
	// treat it as optional so pre-queue streams still parse.
	pend, err := marshalHistory(payload.Pending)
	if err != nil {
		return nil, err
	}
	hdr = codec.AppendBytes(hdr, pend)
	return hdr, nil
}

// EncodeSnapshot streams payload to w as wal1 binary frames, carrying
// the document as a self-contained pxml arena instead of marker XML —
// the stream an old binary follower understands.
func EncodeSnapshot(w io.Writer, payload *SnapshotPayload, tree *pxml.Tree) error {
	if tree == nil {
		return fmt.Errorf("replica: binary snapshot needs the decoded tree")
	}
	fw := codec.NewFrameWriter(w)
	hdr, err := appendSnapshotHeader(payload)
	if err != nil {
		return err
	}
	if err := fw.Write(codec.KindSnapshotHeader, wireVersion, hdr); err != nil {
		return err
	}
	if err := fw.Write(codec.KindTree, pxml.BinaryVersion, tree.AppendBinary(nil)); err != nil {
		return err
	}
	return fw.Write(codec.KindEnd, wireVersion, codec.AppendUvarint(nil, 2))
}

// EncodeSnapshotShared is EncodeSnapshot on the wal2 wire: the document
// ships as a shared-dictionary arena with its string table in a
// separate I frame — the same split as store v5, so the tree body
// deduplicates repeated tags and text against one dictionary.
func EncodeSnapshotShared(w io.Writer, payload *SnapshotPayload, tree *pxml.Tree) error {
	if tree == nil {
		return fmt.Errorf("replica: binary snapshot needs the decoded tree")
	}
	fw := codec.NewFrameWriter(w)
	hdr, err := appendSnapshotHeader(payload)
	if err != nil {
		return err
	}
	if err := fw.Write(codec.KindSnapshotHeader, wireVersion, hdr); err != nil {
		return err
	}
	var tab codec.SharedStrings
	body := tree.AppendBinaryShared(nil, &tab)
	if err := fw.Write(codec.KindStrTab, codec.StrTabVersion, tab.AppendDelta(nil, 0)); err != nil {
		return err
	}
	if err := fw.Write(codec.KindTree, pxml.BinaryVersionShared, body); err != nil {
		return err
	}
	return fw.Write(codec.KindEnd, wireVersion, codec.AppendUvarint(nil, 3))
}

// marshalHistory renders a history slice as a JSON blob field ("" for
// empty — histories are cold data, not worth a binary layout).
func marshalHistory(v any) ([]byte, error) {
	return json.Marshal(v)
}

// unmarshalHistory fills a history slice from its JSON blob field.
func unmarshalHistory(data []byte, v any) error {
	if len(data) == 0 {
		return nil
	}
	return json.Unmarshal(data, v)
}

// DecodeSnapshot reads one binary snapshot stream (wal1 or wal2),
// returning the payload with TreeValue set (Tree, the XML field, stays
// empty — the bootstrap path prefers the decoded form).
func DecodeSnapshot(r io.Reader) (*SnapshotPayload, error) {
	fr := codec.NewFrameReader(r, 0)
	f, err := fr.Read()
	if err != nil {
		return nil, fmt.Errorf("replica: reading snapshot header: %w", err)
	}
	if f.Kind != codec.KindSnapshotHeader {
		return nil, fmt.Errorf("%w: snapshot stream starts with frame %q", codec.ErrInvalid, f.Kind)
	}
	hr := codec.NewReader(f.Payload)
	payload := &SnapshotPayload{}
	payload.Database = hr.String()
	payload.FormatVersion = int(hr.Uvarint())
	payload.Seq = hr.Uvarint()
	payload.Epoch = hr.Uvarint()
	payload.Digest = hr.String()
	payload.Schema = hr.String()
	ints := hr.Bytes()
	evs := hr.Bytes()
	var pend []byte
	if hr.Len() > 0 {
		pend = hr.Bytes()
	}
	if err := hr.Finish(); err != nil {
		return nil, fmt.Errorf("replica: snapshot header: %w", err)
	}
	if err := unmarshalHistory(ints, &payload.Integrations); err != nil {
		return nil, fmt.Errorf("replica: snapshot integrations: %w", err)
	}
	if err := unmarshalHistory(evs, &payload.Feedback); err != nil {
		return nil, fmt.Errorf("replica: snapshot feedback: %w", err)
	}
	if err := unmarshalHistory(pend, &payload.Pending); err != nil {
		return nil, fmt.Errorf("replica: snapshot pending queue: %w", err)
	}
	f, err = fr.Read()
	if err != nil {
		return nil, fmt.Errorf("replica: snapshot stream cut before document: %w", err)
	}
	var strs []string
	if f.Kind == codec.KindStrTab {
		base, entries, err := codec.DecodeStrTabPayload(f.Payload, false)
		if err != nil || base != 0 {
			return nil, fmt.Errorf("%w: snapshot string table (base %d): %v", codec.ErrInvalid, base, err)
		}
		strs = entries
		if f, err = fr.Read(); err != nil {
			return nil, fmt.Errorf("replica: snapshot stream cut before document: %w", err)
		}
	}
	if f.Kind != codec.KindTree {
		return nil, fmt.Errorf("%w: expected document frame, got %q", codec.ErrInvalid, f.Kind)
	}
	tree, err := pxml.DecodeArenaWith(f.Payload, pxml.DecodeArenaOptions{Strings: strs})
	if err != nil {
		return nil, fmt.Errorf("replica: snapshot document: %w", err)
	}
	payload.TreeValue = tree
	f, err = fr.Read()
	if err != nil {
		return nil, fmt.Errorf("replica: snapshot stream cut before trailer: %w", err)
	}
	if f.Kind != codec.KindEnd {
		return nil, fmt.Errorf("%w: expected trailer frame, got %q", codec.ErrInvalid, f.Kind)
	}
	return payload, nil
}

// DecodeSnapshotDeflate is DecodeSnapshot over a flate-compressed
// stream (Content-Encoding: deflate).
func DecodeSnapshotDeflate(r io.Reader) (*SnapshotPayload, error) {
	zr := flate.NewReader(r)
	defer zr.Close()
	return DecodeSnapshot(zr)
}

// Binary wire encoding of the replication protocol, negotiated per
// request: a follower that speaks it sends "Accept: application/
// x-imprecise-wal", and the primary answers with a stream of codec
// frames instead of one JSON document. Either side may be older than the
// other — a JSON-only follower never sends the Accept header and gets
// JSON; a JSON-only primary ignores the header and answers JSON, which
// the follower detects by Content-Type — so mixed-version pairs always
// converge on a format both ends speak.
//
// WAL page stream (Content-Type application/x-imprecise-wal):
//
//	H frame  page header: database, since, last_seq, digest, epoch
//	R frame  one record, payload = the binary WAL record bytes
//	         (walrecord.go) — the exact bytes the primary's log holds,
//	         shipped without re-encoding
//	E frame  trailer: record count (truncation detector)
//
// Snapshot stream (same Content-Type):
//
//	S frame  header: database, format_version, seq, epoch, digest,
//	         schema, histories (JSON blobs; not hot)
//	T frame  the document as a pxml arena payload
//	E frame  trailer: frame count
package replica

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/catalog"
	"repro/internal/codec"
	"repro/internal/pxml"
)

// ContentTypeBinary is the negotiated media type of the binary
// replication wire. A follower offers it via Accept; a primary that
// speaks it answers with it as the Content-Type.
const ContentTypeBinary = "application/x-imprecise-wal"

// Wire encoding names (per-peer observability and the WireEncoding
// option).
const (
	WireBinary = "binary"
	WireJSON   = "json"
)

// wireVersion is the revision of the frame payload layouts below.
const wireVersion = 1

// appendPageHeader renders the H frame payload for page.
func appendPageHeader(page *WALPage) []byte {
	var hdr []byte
	hdr = codec.AppendString(hdr, page.Database)
	hdr = codec.AppendUvarint(hdr, page.Since)
	hdr = codec.AppendUvarint(hdr, page.LastSeq)
	hdr = codec.AppendString(hdr, page.Digest)
	hdr = codec.AppendUvarint(hdr, page.Epoch)
	return hdr
}

// EncodeWALPage streams page to w as binary frames, encoding each
// decoded record into its binary payload form. A primary serving its own
// log prefers EncodeRawWALPage, which skips this per-record encode.
func EncodeWALPage(w io.Writer, page *WALPage) error {
	fw := codec.NewFrameWriter(w)
	if err := fw.Write(codec.KindPageHeader, wireVersion, appendPageHeader(page)); err != nil {
		return err
	}
	for i := range page.Records {
		payload, err := catalog.EncodeWALRecord(page.Records[i])
		if err != nil {
			return fmt.Errorf("replica: encoding record %d: %w", page.Records[i].Seq, err)
		}
		if err := fw.Write(codec.KindRecord, wireVersion, payload); err != nil {
			return err
		}
	}
	return fw.Write(codec.KindEnd, wireVersion, codec.AppendUvarint(nil, uint64(len(page.Records))))
}

// EncodeRawWALPage streams a page whose records are raw on-disk payload
// bytes (catalog.RawOpsSince) — the zero-re-encode shipping path. The
// header fields come from page; page.Records is ignored, raws supplies
// the R frames. A JSON-era payload in raws ships as-is too: the decoder
// dispatches per record, so mixed-format logs travel unchanged.
func EncodeRawWALPage(w io.Writer, page *WALPage, raws []catalog.RawWALRecord) error {
	fw := codec.NewFrameWriter(w)
	if err := fw.Write(codec.KindPageHeader, wireVersion, appendPageHeader(page)); err != nil {
		return err
	}
	for i := range raws {
		if err := fw.Write(codec.KindRecord, wireVersion, raws[i].Payload); err != nil {
			return err
		}
	}
	return fw.Write(codec.KindEnd, wireVersion, codec.AppendUvarint(nil, uint64(len(raws))))
}

// DecodeWALPage reads one binary WAL page stream. A stream that ends
// before the E trailer — a connection cut mid-page — is an error, never
// a short page.
func DecodeWALPage(r io.Reader) (*WALPage, error) {
	fr := codec.NewFrameReader(r, 0)
	f, err := fr.Read()
	if err != nil {
		return nil, fmt.Errorf("replica: reading page header: %w", err)
	}
	if f.Kind != codec.KindPageHeader {
		return nil, fmt.Errorf("%w: page stream starts with frame %q", codec.ErrInvalid, f.Kind)
	}
	hr := codec.NewReader(f.Payload)
	page := &WALPage{Records: []catalog.WALRecord{}}
	page.Database = hr.String()
	page.Since = hr.Uvarint()
	page.LastSeq = hr.Uvarint()
	page.Digest = hr.String()
	page.Epoch = hr.Uvarint()
	if err := hr.Finish(); err != nil {
		return nil, fmt.Errorf("replica: page header: %w", err)
	}
	for {
		f, err := fr.Read()
		if err != nil {
			return nil, fmt.Errorf("replica: page stream cut after %d record(s): %w", len(page.Records), err)
		}
		switch f.Kind {
		case codec.KindRecord:
			rec, err := catalog.DecodeWALRecord(f.Payload)
			if err != nil {
				return nil, fmt.Errorf("replica: record %d of page: %w", len(page.Records)+1, err)
			}
			page.Records = append(page.Records, rec)
		case codec.KindEnd:
			tr := codec.NewReader(f.Payload)
			n := tr.Uvarint()
			if err := tr.Finish(); err != nil {
				return nil, fmt.Errorf("replica: page trailer: %w", err)
			}
			if n != uint64(len(page.Records)) {
				return nil, fmt.Errorf("%w: page trailer says %d records, stream carried %d", codec.ErrInvalid, n, len(page.Records))
			}
			return page, nil
		default:
			return nil, fmt.Errorf("%w: unexpected frame %q in page stream", codec.ErrInvalid, f.Kind)
		}
	}
}

// EncodeSnapshot streams payload to w as binary frames, carrying the
// document as a pxml arena instead of marker XML.
func EncodeSnapshot(w io.Writer, payload *SnapshotPayload, tree *pxml.Tree) error {
	if tree == nil {
		return fmt.Errorf("replica: binary snapshot needs the decoded tree")
	}
	fw := codec.NewFrameWriter(w)
	var hdr []byte
	hdr = codec.AppendString(hdr, payload.Database)
	hdr = codec.AppendUvarint(hdr, uint64(payload.FormatVersion))
	hdr = codec.AppendUvarint(hdr, payload.Seq)
	hdr = codec.AppendUvarint(hdr, payload.Epoch)
	hdr = codec.AppendString(hdr, payload.Digest)
	hdr = codec.AppendString(hdr, payload.Schema)
	ints, err := marshalHistory(payload.Integrations)
	if err != nil {
		return err
	}
	evs, err := marshalHistory(payload.Feedback)
	if err != nil {
		return err
	}
	hdr = codec.AppendBytes(hdr, ints)
	hdr = codec.AppendBytes(hdr, evs)
	// Pending ingest queue, appended after the original fields; decoders
	// treat it as optional so pre-queue streams still parse.
	pend, err := marshalHistory(payload.Pending)
	if err != nil {
		return err
	}
	hdr = codec.AppendBytes(hdr, pend)
	if err := fw.Write(codec.KindSnapshotHeader, wireVersion, hdr); err != nil {
		return err
	}
	if err := fw.Write(codec.KindTree, pxml.BinaryVersion, tree.AppendBinary(nil)); err != nil {
		return err
	}
	return fw.Write(codec.KindEnd, wireVersion, codec.AppendUvarint(nil, 2))
}

// marshalHistory renders a history slice as a JSON blob field ("" for
// empty — histories are cold data, not worth a binary layout).
func marshalHistory(v any) ([]byte, error) {
	return json.Marshal(v)
}

// unmarshalHistory fills a history slice from its JSON blob field.
func unmarshalHistory(data []byte, v any) error {
	if len(data) == 0 {
		return nil
	}
	return json.Unmarshal(data, v)
}

// DecodeSnapshot reads one binary snapshot stream, returning the payload
// with TreeValue set (Tree, the XML field, stays empty — the bootstrap
// path prefers the decoded form).
func DecodeSnapshot(r io.Reader) (*SnapshotPayload, error) {
	fr := codec.NewFrameReader(r, 0)
	f, err := fr.Read()
	if err != nil {
		return nil, fmt.Errorf("replica: reading snapshot header: %w", err)
	}
	if f.Kind != codec.KindSnapshotHeader {
		return nil, fmt.Errorf("%w: snapshot stream starts with frame %q", codec.ErrInvalid, f.Kind)
	}
	hr := codec.NewReader(f.Payload)
	payload := &SnapshotPayload{}
	payload.Database = hr.String()
	payload.FormatVersion = int(hr.Uvarint())
	payload.Seq = hr.Uvarint()
	payload.Epoch = hr.Uvarint()
	payload.Digest = hr.String()
	payload.Schema = hr.String()
	ints := hr.Bytes()
	evs := hr.Bytes()
	var pend []byte
	if hr.Len() > 0 {
		pend = hr.Bytes()
	}
	if err := hr.Finish(); err != nil {
		return nil, fmt.Errorf("replica: snapshot header: %w", err)
	}
	if err := unmarshalHistory(ints, &payload.Integrations); err != nil {
		return nil, fmt.Errorf("replica: snapshot integrations: %w", err)
	}
	if err := unmarshalHistory(evs, &payload.Feedback); err != nil {
		return nil, fmt.Errorf("replica: snapshot feedback: %w", err)
	}
	if err := unmarshalHistory(pend, &payload.Pending); err != nil {
		return nil, fmt.Errorf("replica: snapshot pending queue: %w", err)
	}
	f, err = fr.Read()
	if err != nil {
		return nil, fmt.Errorf("replica: snapshot stream cut before document: %w", err)
	}
	if f.Kind != codec.KindTree {
		return nil, fmt.Errorf("%w: expected document frame, got %q", codec.ErrInvalid, f.Kind)
	}
	tree, err := pxml.DecodeArena(f.Payload)
	if err != nil {
		return nil, fmt.Errorf("replica: snapshot document: %w", err)
	}
	payload.TreeValue = tree
	f, err = fr.Read()
	if err != nil {
		return nil, fmt.Errorf("replica: snapshot stream cut before trailer: %w", err)
	}
	if f.Kind != codec.KindEnd {
		return nil, fmt.Errorf("%w: expected trailer frame, got %q", codec.ErrInvalid, f.Kind)
	}
	return payload, nil
}

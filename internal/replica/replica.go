// Package replica implements the follower half of IMPrECISE's
// log-shipping replication. A Replica owns a local follower catalog (its
// own data directory, write-ahead logs and compactor) and keeps it
// converged with a primary server over plain HTTP:
//
//   - membership: the primary's database set is polled via GET
//     /replication; local databases are created (bootstrapped from a
//     snapshot) or dropped to match.
//   - bootstrap: a database joins via GET /dbs/{name}/snapshot — the
//     primary state at a known log position, installed through the v2
//     store format (catalog.InstallSnapshot) so it is durable before a
//     single op streams.
//   - tailing: each database long-polls GET /dbs/{name}/wal?since=
//     from its own durable lastApplied and applies the shipped ops
//     through catalog.DB.ApplyReplicated — journaled-then-swapped, so a
//     kill -9 at any instant resumes exactly where the log ends, with
//     re-delivered ops skipped idempotently.
//   - divergence: a 410 from the primary (position compacted away or
//     beyond its log) or a digest mismatch once caught up resets the
//     database from a fresh snapshot.
//
// Failures never kill the loop: every fetch retries with exponential
// backoff, and the replica keeps serving reads from its last converged
// state throughout.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/dtd"
	"repro/internal/xmlcodec"
)

// Options configure a Replica.
type Options struct {
	// Primary is the base URL of the primary server (e.g.
	// "http://primary:8080"). Required.
	Primary string
	// Catalog configures the local follower catalog. Its Config must
	// match the primary's (schema, rules, integration settings): shipped
	// ops are re-executed locally, and determinism across the pair is
	// what makes log shipping converge.
	Catalog catalog.Options
	// Client performs the HTTP requests (nil: a default client; it must
	// not carry a global timeout shorter than PollWait).
	Client *http.Client
	// PollWait is the long-poll wait requested from the primary per WAL
	// fetch (0 means 10s).
	PollWait time.Duration
	// BatchLimit caps records per WAL fetch (0 means the server default).
	BatchLimit int
	// MembershipEvery is the primary database-set poll interval (0 means
	// 3s).
	MembershipEvery time.Duration
	// MinBackoff and MaxBackoff bound the exponential retry backoff after
	// fetch or apply failures (0 means 100ms / 5s).
	MinBackoff, MaxBackoff time.Duration
	// WireEncoding selects what this follower offers the primary: "" or
	// WireBinary sends "Accept: application/x-imprecise-wal2" and reads
	// whichever format the primary answers with (an older primary
	// substring-matches the wal1 media type inside it and serves the v1
	// binary wire; a JSON-only primary ignores the header entirely);
	// WireBinaryV1 offers only the v1 binary wire, simulating an
	// old-binary follower; WireJSON never offers binary — the JSON
	// escape hatch.
	WireEncoding string
	// NoCompression stops the follower from offering flate compression
	// of the binary wire (Accept-Encoding: deflate). Compression is
	// offered by default on the wal2 wire; a primary that does not
	// compress simply answers identity-encoded.
	NoCompression bool
	// Logger receives bootstrap, divergence and error notes; nil disables.
	Logger *log.Logger
}

// DBStatus is the replication state of one followed database.
type DBStatus struct {
	Name string `json:"name"`
	// Epoch is the cluster epoch the local database commits under.
	Epoch uint64 `json:"epoch"`
	// LastApplied is the follower's durable log position; PrimarySeq the
	// primary's position as of the last contact; Lag their distance.
	LastApplied uint64 `json:"last_applied"`
	PrimarySeq  uint64 `json:"primary_seq"`
	Lag         uint64 `json:"lag"`
	CaughtUp    bool   `json:"caught_up"`
	// OpsApplied counts ops applied by this process (not recovery);
	// SnapshotsInstalled counts bootstraps; Divergences counts digest
	// mismatches that forced one.
	OpsApplied         int64  `json:"ops_applied"`
	SnapshotsInstalled int64  `json:"snapshots_installed"`
	Divergences        int64  `json:"divergences"`
	LastError          string `json:"last_error,omitempty"`
}

// Status is a replica's overall replication state (served by the replica
// server under GET /replication).
type Status struct {
	Primary string `json:"primary"`
	// Epoch is the follower catalog's cluster epoch.
	Epoch       uint64    `json:"epoch"`
	Connected   bool      `json:"connected"`
	LastContact time.Time `json:"last_contact,omitzero"`
	// WireEncoding is the encoding the last replication fetch negotiated
	// with the primary ("binary" or "json"; empty before first contact).
	WireEncoding string     `json:"wire_encoding,omitempty"`
	LastError    string     `json:"last_error,omitempty"`
	Databases    []DBStatus `json:"databases"`
}

// errGone marks a 410 from the primary: the requested log position is not
// incrementally servable and the follower must resynchronize.
var errGone = errors.New("replica: log position gone on primary")

// Replica is a live follower: a local catalog plus the sync loops keeping
// it converged with a primary.
type Replica struct {
	opts    Options
	primary string
	client  *http.Client
	cat     *catalog.Catalog

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu          sync.Mutex
	tailers     map[string]*tailer
	connected   bool
	lastContact time.Time
	lastErr     string
	stopped     bool
	// wireEnc is the encoding the last replication fetch actually came
	// back in — the negotiated result, not the offer.
	wireEnc string
}

// tailer is the per-database sync goroutine's handle and status. Its
// context is derived from the replica's and canceled when the database
// leaves the primary, so a drop interrupts even an in-flight long-poll.
type tailer struct {
	name   string
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	st     DBStatus // guarded by Replica.mu
}

// Open opens (creating if needed) the follower catalog rooted at dir —
// recovering every database from its snapshot and write-ahead tail, like
// any catalog open — and starts synchronizing it with the primary.
func Open(dir string, opts Options) (*Replica, error) {
	if opts.Primary == "" {
		return nil, errors.New("replica: primary URL required")
	}
	u, err := url.Parse(opts.Primary)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("replica: invalid primary URL %q (want http[s]://host[:port])", opts.Primary)
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 10 * time.Second
	}
	if opts.MembershipEvery <= 0 {
		opts.MembershipEvery = 3 * time.Second
	}
	if opts.MinBackoff <= 0 {
		opts.MinBackoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	switch opts.WireEncoding {
	case "", WireBinary, WireBinaryV1, WireJSON:
	default:
		return nil, fmt.Errorf("replica: unknown wire encoding %q (want %q, %q or %q)", opts.WireEncoding, WireBinary, WireBinaryV1, WireJSON)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	cat, err := catalog.Open(dir, opts.Catalog)
	if err != nil {
		return nil, err
	}
	r := &Replica{
		opts:    opts,
		primary: normalizeBase(opts.Primary),
		client:  client,
		cat:     cat,
		tailers: map[string]*tailer{},
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	r.wg.Add(1)
	go r.membershipLoop()
	return r, nil
}

// normalizeBase strips a trailing slash so path joins stay canonical.
func normalizeBase(u string) string {
	for len(u) > 1 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// Catalog returns the follower catalog the replica serves reads from.
func (r *Replica) Catalog() *catalog.Catalog { return r.cat }

// Primary returns the base URL of the node currently followed. It can
// change at runtime: when the followed node reports it was itself
// demoted (or is a replica pointing elsewhere), the membership loop
// chases its primary pointer.
func (r *Replica) Primary() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.primary
}

// repoint swaps the followed URL after the current one disclosed a newer
// primary.
func (r *Replica) repoint(u string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.primary = u
}

// StopSync permanently stops the membership and tailer loops, leaving
// the follower catalog open and exactly at the durable lastApplied of
// every database. It is the first half of promotion: the catalog stops
// following before it starts leading. Safe to call more than once.
func (r *Replica) StopSync() {
	r.mu.Lock()
	r.stopped = true
	r.mu.Unlock()
	r.cancel()
	r.wg.Wait()
}

// Close stops the sync loops and closes the follower catalog. The
// on-disk state stays exactly at the durable lastApplied of every
// database; a later Open resumes tailing from there.
func (r *Replica) Close() error {
	r.StopSync()
	return r.cat.Close()
}

// Status snapshots the replica's replication state, databases in the
// catalog's sorted name order.
func (r *Replica) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		Primary:      r.primary,
		Epoch:        r.cat.Epoch(),
		Connected:    r.connected,
		LastContact:  r.lastContact,
		WireEncoding: r.wireEnc,
		LastError:    r.lastErr,
		Databases:    []DBStatus{},
	}
	for _, name := range r.cat.Names() {
		if t, ok := r.tailers[name]; ok {
			st.Databases = append(st.Databases, t.st)
		}
	}
	return st
}

// WaitCaughtUp fetches the primary's positions once and blocks until the
// local catalog has every primary database applied at least that far (or
// ctx ends). It is the test and scripting barrier for "the follower has
// converged on everything committed before this call".
func (r *Replica) WaitCaughtUp(ctx context.Context) error {
	ps, err := r.fetchPrimaryStatus(ctx)
	if err != nil {
		return err
	}
	for {
		behind := ""
		for _, pdb := range ps.Databases {
			// Two watermarks: LastSeq is the durable journal position
			// (advanced by the append under ApplyOp), AppliedSeq the last
			// swap actually published to readers. The append lands first, so
			// checking LastSeq alone could declare "caught up" inside the
			// journaled-but-not-yet-visible window of the final op.
			db, err := r.cat.Get(pdb.Name)
			if err != nil || db.LastSeq() < pdb.LastSeq || db.Core().AppliedSeq() < pdb.LastSeq {
				behind = pdb.Name
				break
			}
		}
		if behind == "" {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("replica: %w waiting for %q to catch up", ctx.Err(), behind)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// --- membership ---

// membershipLoop keeps the local database set matching the primary's,
// starting a tailer per primary database and dropping local databases the
// primary no longer has.
func (r *Replica) membershipLoop() {
	defer r.wg.Done()
	backoff := r.opts.MinBackoff
	for {
		ps, err := r.fetchPrimaryStatus(r.ctx)
		if err != nil {
			r.noteDisconnect(err)
			if !r.sleep(backoff) {
				return
			}
			backoff = r.growBackoff(backoff)
			continue
		}
		backoff = r.opts.MinBackoff
		r.reconcile(ps)
		if !r.sleep(r.opts.MembershipEvery) {
			return
		}
	}
}

// reconcile applies one primary membership observation.
func (r *Replica) reconcile(ps *PrimaryStatus) {
	want := map[string]bool{}
	for _, pdb := range ps.Databases {
		want[pdb.Name] = true
	}
	r.mu.Lock()
	r.connected = true
	r.lastContact = time.Now()
	r.lastErr = ""
	for _, pdb := range ps.Databases {
		if t, ok := r.tailers[pdb.Name]; ok {
			// Refresh positions for running tailers too: their own WAL
			// poll may be parked long-polling an idle primary, and the
			// membership report is just as authoritative about lag.
			if db, err := r.cat.Get(pdb.Name); err == nil {
				t.st.LastApplied = db.LastSeq()
				t.st.Epoch = db.Epoch()
			}
			if pdb.LastSeq > t.st.PrimarySeq {
				t.st.PrimarySeq = pdb.LastSeq
			}
			t.st.Lag = 0
			if t.st.PrimarySeq > t.st.LastApplied {
				t.st.Lag = t.st.PrimarySeq - t.st.LastApplied
			}
			t.st.CaughtUp = t.st.Lag == 0
			continue
		}
		ctx, cancel := context.WithCancel(r.ctx)
		t := &tailer{
			name:   pdb.Name,
			ctx:    ctx,
			cancel: cancel,
			done:   make(chan struct{}),
			st:     DBStatus{Name: pdb.Name, PrimarySeq: pdb.LastSeq},
		}
		r.tailers[pdb.Name] = t
		r.wg.Add(1)
		go r.runTailer(t)
	}
	var dropped []*tailer
	for name, t := range r.tailers {
		if !want[name] {
			delete(r.tailers, name)
			dropped = append(dropped, t)
		}
	}
	r.mu.Unlock()
	for _, t := range dropped {
		t.cancel()
		<-t.done
		if err := r.cat.Drop(t.name); err != nil && !errors.Is(err, catalog.ErrNotFound) {
			r.logf("replica: dropping %s: %v", t.name, err)
		} else {
			r.logf("replica: dropped %s (no longer on primary)", t.name)
		}
	}
	// Local leftovers with no tailer (e.g. from a previous run against a
	// different primary) are dropped too: the primary's set is the truth.
	for _, name := range r.cat.Names() {
		r.mu.Lock()
		_, tracked := r.tailers[name]
		r.mu.Unlock()
		if !tracked && !want[name] {
			if err := r.cat.Drop(name); err == nil {
				r.logf("replica: dropped local-only database %s", name)
			}
		}
	}
}

func (r *Replica) noteDisconnect(err error) {
	r.mu.Lock()
	r.connected = false
	r.lastErr = err.Error()
	r.mu.Unlock()
}

// --- per-database tailing ---

// runTailer is the sync loop of one database: bootstrap if missing, then
// long-poll tail, with backoff on errors and snapshot resync on gaps or
// divergence.
func (r *Replica) runTailer(t *tailer) {
	defer r.wg.Done()
	defer close(t.done)
	defer t.cancel()
	backoff := r.opts.MinBackoff
	for {
		if t.ctx.Err() != nil {
			return
		}
		err := r.tailOnce(t)
		if err == nil {
			backoff = r.opts.MinBackoff
			continue
		}
		if t.ctx.Err() != nil {
			return
		}
		r.setDBError(t, err)
		select {
		case <-t.ctx.Done():
			return
		case <-time.After(backoff):
		}
		backoff = r.growBackoff(backoff)
	}
}

// tailOnce performs one fetch-and-apply round for t's database.
func (r *Replica) tailOnce(t *tailer) error {
	db, err := r.cat.Get(t.name)
	if errors.Is(err, catalog.ErrNotFound) {
		db, err = r.bootstrap(t)
	}
	if err != nil {
		return err
	}
	since := db.LastSeq()
	localEpoch := db.Epoch()
	page, err := r.fetchWAL(t.ctx, t.name, since, localEpoch)
	if errors.Is(err, errGone) {
		// The primary compacted past us, or reset below us: full resync.
		r.logf("replica: %s: position %d gone on primary, resynchronizing from snapshot", t.name, since)
		_, err = r.bootstrap(t)
		return err
	}
	if err != nil {
		return err
	}
	if page.Epoch < localEpoch {
		// The serving node is a deposed primary still answering under its
		// old term. Nothing it says may land here — and crucially this
		// must NOT trigger a snapshot resync, which would overwrite
		// promoted state with stale state. Fail the round and retry; the
		// stale node steps down once it learns of the new epoch.
		return fmt.Errorf("%w: %s: page at epoch %d, local epoch is %d", catalog.ErrStaleEpoch, t.name, page.Epoch, localEpoch)
	}
	applied := int64(0)
	for _, rec := range page.Records {
		ok, err := db.ApplyReplicated(rec)
		if errors.Is(err, catalog.ErrReplicaGap) {
			r.logf("replica: %s: %v, resynchronizing from snapshot", t.name, err)
			_, err = r.bootstrap(t)
			return err
		}
		if err != nil {
			return err
		}
		if ok {
			applied++
		}
	}
	last := db.LastSeq()
	r.mu.Lock()
	t.st.LastApplied = last
	t.st.Epoch = db.Epoch()
	t.st.PrimarySeq = page.LastSeq
	t.st.Lag = 0
	if page.LastSeq > last {
		t.st.Lag = page.LastSeq - last
	}
	t.st.CaughtUp = t.st.Lag == 0
	t.st.OpsApplied += applied
	t.st.LastError = ""
	r.lastContact = time.Now()
	r.mu.Unlock()
	// Only a caught-up follower can compare digests: the pair
	// (page.LastSeq, page.Digest) is consistent, so at equal positions
	// the trees must be structurally identical.
	if last == page.LastSeq && page.Digest != "" {
		if local := DigestString(db.Core().Tree()); local != page.Digest {
			r.mu.Lock()
			t.st.Divergences++
			r.mu.Unlock()
			r.logf("replica: %s: DIVERGED at seq %d (local digest %s, primary %s), resynchronizing from snapshot",
				t.name, last, local, page.Digest)
			_, err := r.bootstrap(t)
			return err
		}
	}
	return nil
}

// bootstrap installs a fresh primary snapshot for t's database — the join
// and divergence-recovery path.
func (r *Replica) bootstrap(t *tailer) (*catalog.DB, error) {
	payload, err := r.fetchSnapshot(t.ctx, t.name)
	if err != nil {
		return nil, err
	}
	// Never install a snapshot from an older epoch than anything this
	// catalog already holds: a deposed primary's state must not replace a
	// promoted one's, even through the resync path.
	if local := r.cat.Epoch(); payload.Epoch < local {
		return nil, fmt.Errorf("%w: %s: snapshot at epoch %d, local epoch is %d", catalog.ErrStaleEpoch, t.name, payload.Epoch, local)
	}
	tree := payload.TreeValue
	if tree == nil {
		tree, err = xmlcodec.DecodeString(payload.Tree)
		if err != nil {
			return nil, fmt.Errorf("replica: %s: bad snapshot document: %w", t.name, err)
		}
	}
	var schema *dtd.Schema
	if payload.Schema != "" {
		schema, err = dtd.ParseString(payload.Schema)
		if err != nil {
			return nil, fmt.Errorf("replica: %s: bad snapshot schema: %w", t.name, err)
		}
	}
	db, err := r.cat.InstallSnapshot(t.name, catalog.BootstrapSnapshot{
		Seq:          payload.Seq,
		Epoch:        payload.Epoch,
		Tree:         tree,
		Schema:       schema,
		Integrations: payload.Integrations,
		Feedback:     payload.Feedback,
		Pending:      payload.Pending,
		Comment:      "replicated from " + r.Primary(),
	})
	if err != nil {
		return nil, err
	}
	if payload.Digest != "" {
		if local := DigestString(db.Core().Tree()); local != payload.Digest {
			return nil, fmt.Errorf("replica: %s: installed snapshot digest %s does not match primary %s",
				t.name, local, payload.Digest)
		}
	}
	r.mu.Lock()
	t.st.SnapshotsInstalled++
	t.st.LastApplied = payload.Seq
	t.st.Epoch = db.Epoch()
	if t.st.PrimarySeq < payload.Seq {
		t.st.PrimarySeq = payload.Seq
	}
	t.st.Lag = t.st.PrimarySeq - t.st.LastApplied
	t.st.CaughtUp = t.st.Lag == 0
	r.mu.Unlock()
	r.logf("replica: %s: installed snapshot at seq %d (%d node(s))", t.name, payload.Seq, tree.NodeCount())
	return db, nil
}

func (r *Replica) setDBError(t *tailer, err error) {
	r.mu.Lock()
	t.st.LastError = err.Error()
	r.mu.Unlock()
	r.logf("replica: %s: %v", t.name, err)
}

// --- HTTP plumbing ---

// fetchPrimaryStatus reads the primary's role and database positions.
func (r *Replica) fetchPrimaryStatus(ctx context.Context) (*PrimaryStatus, error) {
	var ps PrimaryStatus
	if err := r.getJSON(ctx, "/replication", nil, 30*time.Second, &ps); err != nil {
		return nil, err
	}
	// Only a catalog-mode primary is an acceptable sync source. Anything
	// else must fail the round, NOT return an empty database set:
	// reconcile treats the primary's set as authoritative and would drop
	// every local follower database over a transient misconfiguration
	// (e.g. the primary restarted without -data). A followed node that
	// stopped being the primary but discloses its successor (a demoted
	// ex-primary, or a replica that was promoted elsewhere) re-points this
	// follower at the successor; the next round syncs from there.
	switch ps.Role {
	case "primary":
	case "demoted":
		// The followed node was deposed and discloses its successor: chase
		// the pointer so surviving followers converge on the new primary.
		// A plain "replica" role deliberately does NOT re-point — chaining
		// followers off healthy replicas stays an error, so replication
		// trees remain rooted at primaries.
		if ps.Primary != "" && normalizeBase(ps.Primary) != r.Primary() {
			next := normalizeBase(ps.Primary)
			r.logf("replica: %s reports role %q, re-pointing at its primary %s", r.Primary(), ps.Role, next)
			r.repoint(next)
			return nil, fmt.Errorf("replica: followed node stepped down, now following %s", next)
		}
		return nil, fmt.Errorf("replica: primary %s was demoted and names no successor — wait or re-point manually", r.Primary())
	case "replica":
		return nil, fmt.Errorf("replica: primary %s is itself a %s of another node — chain followers off primaries only", r.Primary(), ps.Role)
	default:
		return nil, fmt.Errorf("replica: %s reports role %q — a follower needs a catalog-mode primary (serve -data)", r.Primary(), ps.Role)
	}
	return &ps, nil
}

// offersBinary reports whether this follower advertises the binary wire.
func (r *Replica) offersBinary() bool {
	return r.opts.WireEncoding != WireJSON
}

// acceptValue is the Accept header this follower sends when offering
// binary: the wal2 media type by default (which an old primary
// substring-matches down to wal1), or exactly wal1 when pinned to the
// v1 wire.
func (r *Replica) acceptValue() string {
	if r.opts.WireEncoding == WireBinaryV1 {
		return ContentTypeBinary
	}
	return ContentTypeBinary2
}

// offersDeflate reports whether this follower advertises wire
// compression: wal2 offers only (the v1 wire predates compression, and
// a pinned-v1 follower is simulating a build that never sent the
// header).
func (r *Replica) offersDeflate() bool {
	return r.opts.WireEncoding != WireBinaryV1 && !r.opts.NoCompression
}

// isBinary reports whether a response came back in the binary wire
// format (the primary's half of the negotiation). Matches wal1 and
// wal2 alike — wal1 is a prefix of wal2.
func isBinary(resp *http.Response) bool {
	return strings.HasPrefix(resp.Header.Get("Content-Type"), ContentTypeBinary)
}

// isDeflate reports whether the response body is flate-compressed.
func isDeflate(resp *http.Response) bool {
	return resp.Header.Get("Content-Encoding") == ContentEncodingDeflate
}

// binaryWireName names the encoding a binary response actually
// negotiated, for Status reporting.
func binaryWireName(resp *http.Response) string {
	switch {
	case isDeflate(resp):
		return WireBinaryFlate
	case strings.HasPrefix(resp.Header.Get("Content-Type"), ContentTypeBinary2):
		return WireBinary
	default:
		return WireBinaryV1
	}
}

// noteWire records the encoding the last fetch actually negotiated.
func (r *Replica) noteWire(enc string) {
	r.mu.Lock()
	r.wireEnc = enc
	r.mu.Unlock()
}

// fetchWAL long-polls one page of the primary's op log past since. The
// follower's own epoch rides along so a deposed primary learns of its
// deposition from the very followers it tries to keep shipping to.
func (r *Replica) fetchWAL(ctx context.Context, name string, since, epoch uint64) (*WALPage, error) {
	q := url.Values{
		"since": {strconv.FormatUint(since, 10)},
		"wait":  {strconv.FormatInt(r.opts.PollWait.Milliseconds(), 10)},
		"epoch": {strconv.FormatUint(epoch, 10)},
	}
	if r.opts.BatchLimit > 0 {
		q.Set("limit", strconv.Itoa(r.opts.BatchLimit))
	}
	path := "/dbs/" + url.PathEscape(name) + "/wal"
	resp, cancel, err := r.get(ctx, path, q, r.opts.PollWait+15*time.Second, r.offersBinary())
	if err != nil {
		return nil, err
	}
	defer cancel()
	defer resp.Body.Close()
	if isBinary(resp) {
		var page *WALPage
		if isDeflate(resp) {
			page, err = DecodeWALPageDeflate(resp.Body)
		} else {
			page, err = DecodeWALPage(resp.Body)
		}
		if err != nil {
			return nil, err
		}
		r.noteWire(binaryWireName(resp))
		return page, nil
	}
	var page WALPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, fmt.Errorf("replica: GET %s: decoding page: %w", path, err)
	}
	r.noteWire(WireJSON)
	return &page, nil
}

// fetchSnapshot reads the primary's full state for one database.
func (r *Replica) fetchSnapshot(ctx context.Context, name string) (*SnapshotPayload, error) {
	path := "/dbs/" + url.PathEscape(name) + "/snapshot"
	resp, cancel, err := r.get(ctx, path, nil, 60*time.Second, r.offersBinary())
	if err != nil {
		return nil, err
	}
	defer cancel()
	defer resp.Body.Close()
	if isBinary(resp) {
		var payload *SnapshotPayload
		if isDeflate(resp) {
			payload, err = DecodeSnapshotDeflate(resp.Body)
		} else {
			payload, err = DecodeSnapshot(resp.Body)
		}
		if err != nil {
			return nil, err
		}
		r.noteWire(binaryWireName(resp))
		return payload, nil
	}
	var payload SnapshotPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, fmt.Errorf("replica: GET %s: decoding snapshot: %w", path, err)
	}
	r.noteWire(WireJSON)
	return &payload, nil
}

// getJSON performs one GET against the primary and decodes the JSON
// body, mapping 410 to errGone and other non-200s to descriptive errors.
func (r *Replica) getJSON(ctx context.Context, path string, q url.Values, timeout time.Duration, v any) error {
	resp, cancel, err := r.get(ctx, path, q, timeout, false)
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// get performs one GET against the primary, optionally offering the
// binary wire, mapping 410 to errGone and other non-200s to descriptive
// errors. On success the caller owns the body and must invoke cancel
// (the request timeout's) after draining it.
func (r *Replica) get(ctx context.Context, path string, q url.Values, timeout time.Duration, offerBinary bool) (*http.Response, context.CancelFunc, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	u := r.Primary() + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if offerBinary {
		req.Header.Set("Accept", r.acceptValue())
		if r.offersDeflate() {
			// Setting Accept-Encoding explicitly also disables the
			// transport's transparent gzip — deliberate: the binary wire's
			// compression is negotiated here, not underneath us.
			req.Header.Set("Accept-Encoding", ContentEncodingDeflate)
		}
	}
	resp, err := r.client.Do(req)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if resp.StatusCode == http.StatusGone {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		cancel()
		return nil, nil, fmt.Errorf("%w (%s)", errGone, path)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		cancel()
		return nil, nil, fmt.Errorf("replica: GET %s: %s: %s", path, resp.Status, firstLine(body))
	}
	return resp, cancel, nil
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}

// --- loop helpers ---

// sleep waits d or until the replica closes; false means closing.
func (r *Replica) sleep(d time.Duration) bool {
	select {
	case <-r.ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

func (r *Replica) growBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > r.opts.MaxBackoff {
		d = r.opts.MaxBackoff
	}
	return d
}

func (r *Replica) logf(format string, args ...any) {
	if r.opts.Logger != nil {
		r.opts.Logger.Printf(format, args...)
	}
}

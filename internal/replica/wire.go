// Wire types of the replication protocol. They live in this package —
// not internal/server — so both halves of the protocol (the primary's
// HTTP handlers and the follower's client loop) marshal and unmarshal the
// exact same structs and cannot drift apart.
package replica

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/feedback"
	"repro/internal/integrate"
	"repro/internal/pxml"
	"repro/internal/store"
)

// WALPage is the body of GET /dbs/{name}/wal?since=S — one page of the
// primary's committed op log past S, plus the primary's current position
// for lag and divergence accounting.
type WALPage struct {
	Database string `json:"database"`
	// Since echoes the request's position.
	Since uint64 `json:"since"`
	// LastSeq and Digest are a consistent (applied sequence, tree digest)
	// pair of the serving node at response time. A follower whose
	// lastApplied reaches LastSeq must hold a tree with this digest;
	// anything else is divergence.
	LastSeq uint64 `json:"last_seq"`
	Digest  string `json:"digest"`
	// Epoch is the cluster epoch the serving node commits under. A page
	// from an epoch below the follower's own is stale — the sender was
	// deposed — and must be rejected, never resynced from.
	Epoch uint64 `json:"epoch"`
	// Records are the shipped ops, oldest first, starting at Since+1. An
	// empty page means the follower is caught up (the long-poll wait
	// expired without new commits).
	Records []catalog.WALRecord `json:"records"`
}

// SnapshotPayload is the body of GET /dbs/{name}/snapshot — the full
// state a follower bootstraps from, mirroring the v2 store snapshot
// format field for field (document as marker XML, schema as DTD text,
// manifest histories, log position): installing it on the follower goes
// straight through store.SaveWith.
type SnapshotPayload struct {
	Database string `json:"database"`
	// FormatVersion is the store snapshot format this payload mirrors.
	FormatVersion int `json:"format_version"`
	// Seq is the primary log position the state reflects; tailing resumes
	// at Seq+1.
	Seq uint64 `json:"seq"`
	// Epoch is the cluster epoch the state was committed under.
	Epoch uint64 `json:"epoch"`
	// Digest is the structural digest of Tree (16 hex digits); the
	// follower verifies its installed tree against it.
	Digest string `json:"digest"`
	// Tree is the document as probabilistic-marker XML.
	Tree string `json:"tree"`
	// Schema is the DTD knowledge ("" when none).
	Schema string `json:"schema,omitempty"`
	// Integrations and Feedback are the session histories at Seq.
	Integrations []integrate.Stats `json:"integrations,omitempty"`
	Feedback     []feedback.Event  `json:"feedback,omitempty"`
	// Pending is the primary's ingest queue at Seq (accepted but not yet
	// integrated sources); the follower needs it to resolve apply-queued
	// records past Seq.
	Pending []store.PendingDoc `json:"pending,omitempty"`

	// TreeValue is the decoded document when the payload traveled the
	// binary wire (Tree stays empty then); the bootstrap path prefers it
	// over re-parsing the XML.
	TreeValue *pxml.Tree `json:"-"`
}

// PrimaryStatus is the body GET /replication returns on a primary (and,
// role aside, on a standalone server): the membership and per-database
// positions a follower synchronizes against.
type PrimaryStatus struct {
	Role string `json:"role"`
	// Epoch is the node's cluster epoch — the fencing term its commits
	// are stamped with.
	Epoch uint64 `json:"epoch"`
	// Primary is the URL of the node this one believes is the primary:
	// empty on a primary itself, the upstream on a replica, and the
	// promoted successor on a demoted ex-primary. Followers polling a
	// non-primary chase this pointer to re-point after a promotion.
	Primary   string            `json:"primary,omitempty"`
	Databases []PrimaryDBStatus `json:"databases"`
	// Peers maps follower hosts to the wire encoding their last
	// replication fetch negotiated ("binary" or "json").
	Peers map[string]string `json:"peers,omitempty"`
}

// PrimaryDBStatus is one database row of PrimaryStatus.
type PrimaryDBStatus struct {
	Name string `json:"name"`
	// LastSeq and Digest are the consistent (applied sequence, digest)
	// pair of the database's current tree.
	LastSeq uint64 `json:"last_seq"`
	Digest  string `json:"digest"`
	// SnapshotSeq and TailOps describe the on-disk durability position.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	TailOps     uint64 `json:"tail_ops"`
	// Epoch is the cluster epoch the database commits under.
	Epoch uint64 `json:"epoch"`
}

// DigestString renders a tree's structural digest in the protocol's wire
// form (16 hex digits), shared so both ends format it identically.
func DigestString(t *pxml.Tree) string {
	return fmt.Sprintf("%016x", t.Digest())
}

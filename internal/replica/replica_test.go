package replica_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/pxml"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/xmlcodec"
)

const (
	abA = `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`
	abB = `<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`
	abC = `<addressbook><person><nm>Mary</nm><tel>3333</tel></person></addressbook>`
)

func mustDecode(t *testing.T, src string) *pxml.Tree {
	t.Helper()
	tree, err := xmlcodec.DecodeString(src)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// fastOptions tunes the replica loops for test latency.
func fastOptions(primary string) replica.Options {
	return replica.Options{
		Primary:         primary,
		Catalog:         catalog.Options{RootTag: "addressbook"},
		PollWait:        200 * time.Millisecond,
		MembershipEvery: 25 * time.Millisecond,
		MinBackoff:      10 * time.Millisecond,
		MaxBackoff:      100 * time.Millisecond,
	}
}

// startPrimary boots a catalog-mode HTTP server over a fresh data dir.
func startPrimary(t *testing.T) (*catalog.Catalog, *httptest.Server) {
	t.Helper()
	cat, err := catalog.Open(t.TempDir(), catalog.Options{RootTag: "addressbook"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewCatalog(cat, server.Options{}).Handler())
	t.Cleanup(func() { ts.Close(); cat.Close() })
	return cat, ts
}

func waitCaughtUp(t *testing.T, rep *replica.Replica) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rep.WaitCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}
}

func assertConverged(t *testing.T, primary, follower *core.Database) {
	t.Helper()
	pt, ft := primary.Tree(), follower.Tree()
	if !pxml.Equal(pt.Root(), ft.Root()) {
		t.Fatal("follower tree is not pxml.Equal to the primary's")
	}
	if pt.WorldCount().Cmp(ft.WorldCount()) != 0 {
		t.Fatalf("world counts differ: primary %s, follower %s", pt.WorldCount(), ft.WorldCount())
	}
	// JSON form: time.Time's monotonic reading (present on the primary,
	// absent after the op's wire round trip) must not count as a diff.
	pfb, _ := json.Marshal(primary.FeedbackHistory())
	ffb, _ := json.Marshal(follower.FeedbackHistory())
	if string(pfb) != string(ffb) {
		t.Fatalf("feedback histories differ:\nprimary  %s\nfollower %s", pfb, ffb)
	}
	if len(primary.IntegrationHistory()) != len(follower.IntegrationHistory()) {
		t.Fatal("integration history lengths differ")
	}
}

// TestReplicationEndToEnd is the acceptance scenario over real HTTP: a
// follower started empty against a live primary converges (snapshot
// bootstrap + tail), keeps converging while the primary takes writes,
// serves reads from its own server while rejecting mutations with 403 +
// primary address, and resumes from its durable lastApplied after a
// restart without re-bootstrapping.
func TestReplicationEndToEnd(t *testing.T) {
	cat, ts := startPrimary(t)
	pdb, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pdb.Core().IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}

	followerDir := t.TempDir()
	rep, err := replica.Open(followerDir, fastOptions(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, rep)
	fdb, err := rep.Catalog().Get("x")
	if err != nil {
		t.Fatal(err)
	}
	assertConverged(t, pdb.Core(), fdb.Core())

	// The primary keeps taking writes; the replica keeps serving reads
	// from its current state and converges on the new position.
	if _, err := pdb.Core().IntegrateXMLString(abB); err != nil {
		t.Fatal(err)
	}
	if _, err := pdb.Core().Feedback(`//person[nm="John"]/tel`, "2222", false); err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(server.NewReplica(rep, server.Options{}).Handler())
	defer rts.Close()
	// Reads are served locally (whatever position the follower is at).
	resp, err := http.Get(rts.URL + "/dbs/x/query?q=" + "%2F%2Fperson%2Ftel")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replica query status %d", resp.StatusCode)
	}
	// Mutations are 403 with the primary's address.
	resp, err = http.Post(rts.URL+"/dbs/x/integrate", "application/xml", strings.NewReader(abC))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica integrate status %d, want 403 (body %s)", resp.StatusCode, body)
	}
	var ro struct {
		Error   string `json:"error"`
		Primary string `json:"primary"`
	}
	if err := json.Unmarshal(body, &ro); err != nil || ro.Primary != ts.URL {
		t.Fatalf("403 body %s (err %v), want primary %q", body, err, ts.URL)
	}

	waitCaughtUp(t, rep)
	assertConverged(t, pdb.Core(), fdb.Core())

	// Replica status reflects the convergence.
	st := rep.Status()
	if !st.Connected || len(st.Databases) != 1 || !st.Databases[0].CaughtUp {
		t.Fatalf("replica status %+v", st)
	}
	snapshotsBefore := st.Databases[0].SnapshotsInstalled
	if snapshotsBefore < 1 {
		t.Fatalf("expected at least one bootstrap snapshot, got %d", snapshotsBefore)
	}

	// Kill the replica, keep writing on the primary, restart: the
	// follower must resume tailing from its durable lastApplied without
	// another snapshot bootstrap.
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pdb.Core().IntegrateXMLString(abC); err != nil {
		t.Fatal(err)
	}
	rep2, err := replica.Open(followerDir, fastOptions(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	waitCaughtUp(t, rep2)
	fdb2, err := rep2.Catalog().Get("x")
	if err != nil {
		t.Fatal(err)
	}
	assertConverged(t, pdb.Core(), fdb2.Core())
	st = rep2.Status()
	if n := st.Databases[0].SnapshotsInstalled; n != 0 {
		t.Fatalf("restarted replica installed %d snapshot(s); want 0 (tail resume from durable lastApplied)", n)
	}
	if st.Databases[0].OpsApplied == 0 {
		t.Fatal("restarted replica applied no ops")
	}
}

// TestReplicationMembership: databases created and dropped on the primary
// appear and disappear on the follower.
func TestReplicationMembership(t *testing.T) {
	cat, ts := startPrimary(t)
	if _, err := cat.Create("a"); err != nil {
		t.Fatal(err)
	}
	rep, err := replica.Open(t.TempDir(), fastOptions(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitCaughtUp(t, rep)
	if _, err := rep.Catalog().Get("a"); err != nil {
		t.Fatalf("database a not replicated: %v", err)
	}

	if _, err := cat.Create("b"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Drop("a"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, errA := rep.Catalog().Get("a")
		_, errB := rep.Catalog().Get("b")
		if errA != nil && errB == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("membership did not converge: a err %v, b err %v", errA, errB)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicationDivergenceResync: a follower that forked from the
// primary's history (a forged op at the next sequence) must detect the
// divergence via the digest check once positions align and resynchronize
// from a snapshot automatically.
func TestReplicationDivergenceResync(t *testing.T) {
	cat, ts := startPrimary(t)
	pdb, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pdb.Core().IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	rep, err := replica.Open(t.TempDir(), fastOptions(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitCaughtUp(t, rep)
	fdb, err := rep.Catalog().Get("x")
	if err != nil {
		t.Fatal(err)
	}

	// Fork the follower: the primary's next op (seq 2) is an integrate of
	// abB, but the follower receives a forged replace instead. Positions
	// then align while the trees differ — exactly what digest comparison
	// must catch.
	forged := core.Op{Kind: core.OpReplace, Tree: abC}
	if _, err := fdb.ApplyReplicated(catalog.WALRecord{Seq: 2, Op: forged}); err != nil {
		t.Fatal(err)
	}
	if _, err := pdb.Core().IntegrateXMLString(abB); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		fdb, err := rep.Catalog().Get("x")
		if err == nil && fdb.LastSeq() == pdb.LastSeq() &&
			pxml.Equal(fdb.Core().Tree().Root(), pdb.Core().Tree().Root()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("diverged follower did not resynchronize")
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := rep.Status()
	if st.Databases[0].Divergences == 0 && st.Databases[0].SnapshotsInstalled < 2 {
		t.Fatalf("expected a recorded divergence or resync, got %+v", st.Databases[0])
	}
}

// TestReplicaOfReplicaRejected: pointing a follower at another replica is
// refused, keeping replication trees rooted at primaries.
func TestReplicaOfReplicaRejected(t *testing.T) {
	_, ts := startPrimary(t)
	rep, err := replica.Open(t.TempDir(), fastOptions(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	rts := httptest.NewServer(server.NewReplica(rep, server.Options{}).Handler())
	defer rts.Close()

	rep2, err := replica.Open(t.TempDir(), fastOptions(rts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := rep2.Status()
		if !st.Connected && strings.Contains(st.LastError, "itself a replica") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica-of-replica was not rejected: %+v", rep2.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicaOfStandaloneKeepsData: pointing a follower (with existing
// replicated state) at a non-catalog server must fail the sync round —
// NOT treat the empty database set as authoritative and drop every
// local database.
func TestReplicaOfStandaloneKeepsData(t *testing.T) {
	cat, ts := startPrimary(t)
	pdb, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pdb.Core().IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rep, err := replica.Open(dir, fastOptions(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, rep)
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}

	// A standalone (no -data) server at the primary's address.
	tree, err := core.Open(mustDecode(t, "<addressbook/>"), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sts := httptest.NewServer(server.New(tree, server.Options{}).Handler())
	defer sts.Close()
	rep2, err := replica.Open(dir, fastOptions(sts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := rep2.Status()
		if !st.Connected && strings.Contains(st.LastError, `"standalone"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standalone primary was not rejected: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The replicated database survived the misconfiguration.
	if _, err := rep2.Catalog().Get("x"); err != nil {
		t.Fatalf("local database dropped after syncing against a standalone server: %v", err)
	}
}

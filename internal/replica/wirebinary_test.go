package replica_test

import (
	"bytes"
	"compress/flate"
	"encoding/json"
	"math/big"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/feedback"
	"repro/internal/integrate"
	"repro/internal/pxml"
	"repro/internal/replica"
)

// wireTrees collects the document(s) an op carries, decoding the XML
// representation when that is what survived the round trip.
func wireTrees(t *testing.T, op core.Op) []*pxml.Tree {
	t.Helper()
	var out []*pxml.Tree
	out = append(out, op.SourceTrees...)
	for _, s := range op.Sources {
		out = append(out, mustDecode(t, s))
	}
	if op.TreeValue != nil {
		out = append(out, op.TreeValue)
	} else if op.Tree != "" {
		out = append(out, mustDecode(t, op.Tree))
	}
	return out
}

// TestWALPageBinaryRoundTrip drives a page of mixed-representation
// records through the binary wire stream and back.
func TestWALPageBinaryRoundTrip(t *testing.T) {
	when := time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC)
	page := &replica.WALPage{
		Database: "x",
		Since:    3,
		LastSeq:  6,
		Digest:   "00c0ffee00c0ffee",
		Epoch:    2,
		Records: []catalog.WALRecord{
			{Seq: 4, Epoch: 1, Op: core.Op{Kind: core.OpIntegrate, SourceTrees: []*pxml.Tree{mustDecode(t, abA)}}},
			{Seq: 5, Epoch: 2, Op: core.Op{Kind: core.OpFeedback, Query: "//person/tel", Value: "1111", Correct: true, When: when}},
			{Seq: 6, Epoch: 2, Op: core.Op{Kind: core.OpReplace, Tree: abB}},
		},
	}
	var buf bytes.Buffer
	if err := replica.EncodeWALPage(&buf, page); err != nil {
		t.Fatal(err)
	}
	got, err := replica.DecodeWALPage(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Database != page.Database || got.Since != page.Since ||
		got.LastSeq != page.LastSeq || got.Digest != page.Digest || got.Epoch != page.Epoch {
		t.Fatalf("page header round trip = %+v", got)
	}
	if len(got.Records) != len(page.Records) {
		t.Fatalf("%d records round-tripped to %d", len(page.Records), len(got.Records))
	}
	for i, rec := range got.Records {
		want := page.Records[i]
		if rec.Seq != want.Seq || rec.Epoch != want.Epoch || rec.Op.Kind != want.Op.Kind {
			t.Fatalf("record %d = %+v", i, rec)
		}
		wt, gt := wireTrees(t, want.Op), wireTrees(t, rec.Op)
		if len(wt) != len(gt) {
			t.Fatalf("record %d: %d trees became %d", i, len(wt), len(gt))
		}
		for j := range wt {
			if !pxml.Equal(wt[j].Root(), gt[j].Root()) {
				t.Fatalf("record %d tree %d differs after round trip", i, j)
			}
		}
	}
	if fb := got.Records[1].Op; fb.Query != "//person/tel" || fb.Value != "1111" || !fb.Correct || !fb.When.Equal(when) {
		t.Fatalf("feedback record round trip = %+v", fb)
	}
}

// TestRawWALPageRoundTrip: the zero-re-encode primary path — raw
// payload bytes straight off the log, one binary-era and one JSON-era —
// produces a stream the standard decoder reads back record by record.
func TestRawWALPageRoundTrip(t *testing.T) {
	binRec := catalog.WALRecord{Seq: 4, Epoch: 1,
		Op: core.Op{Kind: core.OpReplace, TreeValue: mustDecode(t, abA)}}
	binPayload, err := catalog.EncodeWALRecord(binRec)
	if err != nil {
		t.Fatal(err)
	}
	jsonRec := catalog.WALRecord{Seq: 5, Epoch: 1,
		Op: core.Op{Kind: core.OpIntegrate, Sources: []string{abB}}}
	jsonPayload, err := json.Marshal(jsonRec)
	if err != nil {
		t.Fatal(err)
	}
	raws := []catalog.RawWALRecord{
		{Seq: 4, Epoch: 1, Payload: binPayload},
		{Seq: 5, Epoch: 1, Payload: jsonPayload},
	}
	page := &replica.WALPage{Database: "x", Since: 3, LastSeq: 5, Digest: "d", Epoch: 1}
	var buf bytes.Buffer
	if err := replica.EncodeRawWALPage(&buf, page, raws, nil); err != nil {
		t.Fatal(err)
	}
	got, err := replica.DecodeWALPage(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Database != "x" || got.LastSeq != 5 || len(got.Records) != 2 {
		t.Fatalf("raw page round trip = %+v", got)
	}
	if r := got.Records[0]; r.Seq != 4 || r.Op.Kind != core.OpReplace ||
		r.Op.TreeValue == nil || !pxml.Equal(r.Op.TreeValue.Root(), mustDecode(t, abA).Root()) {
		t.Fatalf("binary-era raw record = %+v", r)
	}
	if r := got.Records[1]; r.Seq != 5 || r.Op.Kind != core.OpIntegrate ||
		len(r.Op.Sources) != 1 || r.Op.Sources[0] != abB {
		t.Fatalf("JSON-era raw record = %+v", r)
	}
}

// TestRawWALPagePrefixRoundTrip: a v3 raw record whose strtab delta is
// based past records the page does not ship decodes only because the
// page opens with the prefix I frame; without the prefix, the same
// payload must be rejected, never misread.
func TestRawWALPagePrefixRoundTrip(t *testing.T) {
	var shared codec.SharedStrings
	// A record the follower already has: its strings are interned, so the
	// shipped record's delta is based past them.
	skipped := catalog.WALRecord{Seq: 3, Epoch: 1,
		Op: core.Op{Kind: core.OpReplace, TreeValue: mustDecode(t, abA)}}
	if _, err := catalog.EncodeWALRecordShared(skipped, &shared); err != nil {
		t.Fatal(err)
	}
	prefix := append([]string(nil), shared.Strings()...)
	if len(prefix) == 0 {
		t.Fatal("skipped record interned no strings")
	}
	rec := catalog.WALRecord{Seq: 4, Epoch: 1,
		Op: core.Op{Kind: core.OpReplace, TreeValue: mustDecode(t, abC)}}
	payload, err := catalog.EncodeWALRecordShared(rec, &shared)
	if err != nil {
		t.Fatal(err)
	}
	raws := []catalog.RawWALRecord{{Seq: 4, Epoch: 1, Payload: payload}}
	page := &replica.WALPage{Database: "x", Since: 3, LastSeq: 4, Digest: "d", Epoch: 1}

	var buf bytes.Buffer
	if err := replica.EncodeRawWALPage(&buf, page, raws, prefix); err != nil {
		t.Fatal(err)
	}
	got, err := replica.DecodeWALPage(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 1 {
		t.Fatalf("round trip carried %d records", len(got.Records))
	}
	if r := got.Records[0]; r.Seq != 4 || r.Op.TreeValue == nil ||
		!pxml.Equal(r.Op.TreeValue.Root(), mustDecode(t, abC).Root()) {
		t.Fatalf("prefixed raw record = %+v", r)
	}

	// The same stream without the prefix frame desynchronizes the page
	// table: decode must fail.
	var bare bytes.Buffer
	if err := replica.EncodeRawWALPage(&bare, page, raws, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := replica.DecodeWALPage(bytes.NewReader(bare.Bytes())); err == nil {
		t.Fatal("mid-table record decoded without its prefix frame")
	}
}

// TestWALPageDeflateRoundTrip: the compressed wire — a flate stream
// around the standard page — decodes identically and is smaller for a
// redundant page, and every truncation of the compressed stream errors.
func TestWALPageDeflateRoundTrip(t *testing.T) {
	page := &replica.WALPage{Database: "x", Since: 0, LastSeq: 3, Digest: "d", Epoch: 1}
	for i := 1; i <= 3; i++ {
		page.Records = append(page.Records, catalog.WALRecord{Seq: uint64(i), Epoch: 1,
			Op: core.Op{Kind: core.OpIntegrate, SourceTrees: []*pxml.Tree{mustDecode(t, abA)}}})
	}
	var raw bytes.Buffer
	if err := replica.EncodeWALPage(&raw, page); err != nil {
		t.Fatal(err)
	}
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(raw.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= raw.Len() {
		t.Fatalf("redundant page did not compress: %d vs %d raw bytes", comp.Len(), raw.Len())
	}
	got, err := replica.DecodeWALPageDeflate(bytes.NewReader(comp.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != 3 || len(got.Records) != 3 {
		t.Fatalf("compressed round trip = %+v", got)
	}
	// A flate stream is self-terminating: a cut past the final block still
	// decompresses completely, so truncation must yield either an error or
	// the full page — never a silently shortened one (the E trailer count
	// guards the content).
	for cut := 0; cut < comp.Len(); cut++ {
		p, err := replica.DecodeWALPageDeflate(bytes.NewReader(comp.Bytes()[:cut]))
		if err == nil && (p.LastSeq != 3 || len(p.Records) != 3) {
			t.Fatalf("compressed stream cut at byte %d decoded as a partial page: %+v", cut, p)
		}
	}
}

// FuzzDecompressPage: arbitrary bytes fed to the compressed-wire
// decoders must error or produce a valid page — never panic, never hang.
func FuzzDecompressPage(f *testing.F) {
	page := &replica.WALPage{Database: "x", Since: 0, LastSeq: 1, Digest: "d", Epoch: 1,
		Records: []catalog.WALRecord{{Seq: 1, Epoch: 1,
			Op: core.Op{Kind: core.OpReplace, Tree: abA}}}}
	var raw bytes.Buffer
	if err := replica.EncodeWALPage(&raw, page); err != nil {
		f.Fatal(err)
	}
	var comp bytes.Buffer
	fw, _ := flate.NewWriter(&comp, flate.BestSpeed)
	fw.Write(raw.Bytes())
	fw.Close()
	f.Add(comp.Bytes())
	f.Add(raw.Bytes()) // uncompressed bytes on the compressed path
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		replica.DecodeWALPageDeflate(bytes.NewReader(data))
		replica.DecodeSnapshotDeflate(bytes.NewReader(data))
	})
}

// TestWALPageEmpty: a caught-up page (no records) is a legal stream.
func TestWALPageEmpty(t *testing.T) {
	page := &replica.WALPage{Database: "x", Since: 9, LastSeq: 9, Digest: "0", Epoch: 1}
	var buf bytes.Buffer
	if err := replica.EncodeWALPage(&buf, page); err != nil {
		t.Fatal(err)
	}
	got, err := replica.DecodeWALPage(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 0 || got.LastSeq != 9 {
		t.Fatalf("empty page round trip = %+v", got)
	}
}

// TestWALPageTruncationRejected: a connection cut at ANY byte of the
// stream must surface as an error, never as a short-but-accepted page —
// that is what the E trailer exists for.
func TestWALPageTruncationRejected(t *testing.T) {
	page := &replica.WALPage{
		Database: "x", Since: 0, LastSeq: 2, Digest: "d", Epoch: 1,
		Records: []catalog.WALRecord{
			{Seq: 1, Epoch: 1, Op: core.Op{Kind: core.OpIntegrate, SourceTrees: []*pxml.Tree{mustDecode(t, abA)}}},
			{Seq: 2, Epoch: 1, Op: core.Op{Kind: core.OpIntegrate, SourceTrees: []*pxml.Tree{mustDecode(t, abB)}}},
		},
	}
	var buf bytes.Buffer
	if err := replica.EncodeWALPage(&buf, page); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := replica.DecodeWALPage(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("stream cut at byte %d decoded as a full page", cut)
		}
	}
}

// TestWALPageTrailerMismatch: a trailer whose count disagrees with the
// records actually carried is rejected.
func TestWALPageTrailerMismatch(t *testing.T) {
	var buf bytes.Buffer
	fw := codec.NewFrameWriter(&buf)
	var hdr []byte
	hdr = codec.AppendString(hdr, "x")
	hdr = codec.AppendUvarint(hdr, 0)
	hdr = codec.AppendUvarint(hdr, 0)
	hdr = codec.AppendString(hdr, "d")
	hdr = codec.AppendUvarint(hdr, 1)
	if err := fw.Write(codec.KindPageHeader, 1, hdr); err != nil {
		t.Fatal(err)
	}
	if err := fw.Write(codec.KindEnd, 1, codec.AppendUvarint(nil, 5)); err != nil {
		t.Fatal(err)
	}
	_, err := replica.DecodeWALPage(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "trailer") {
		t.Fatalf("forged trailer count: err = %v", err)
	}
}

// TestSnapshotBinaryRoundTrip sends a full bootstrap payload — document,
// schema, histories — through the binary stream and back.
func TestSnapshotBinaryRoundTrip(t *testing.T) {
	tree := mustDecode(t, abC)
	when := time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC)
	payload := &replica.SnapshotPayload{
		Database:      "x",
		FormatVersion: 4,
		Seq:           7,
		Epoch:         2,
		Digest:        replica.DigestString(tree),
		Schema:        "<!ELEMENT addressbook (person*)>",
		Integrations:  []integrate.Stats{{OracleCalls: 3, Components: 1}},
		Feedback: []feedback.Event{{Query: "//q", Value: "v", PriorP: 0.5,
			WorldsBefore: big.NewInt(4), WorldsAfter: big.NewInt(2), When: when}},
	}
	var buf bytes.Buffer
	if err := replica.EncodeSnapshot(&buf, payload, tree); err != nil {
		t.Fatal(err)
	}
	got, err := replica.DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Database != "x" || got.FormatVersion != 4 || got.Seq != 7 || got.Epoch != 2 ||
		got.Digest != payload.Digest || got.Schema != payload.Schema {
		t.Fatalf("snapshot header round trip = %+v", got)
	}
	if got.Tree != "" {
		t.Fatalf("binary snapshot filled the XML field: %q", got.Tree)
	}
	if got.TreeValue == nil || !pxml.Equal(got.TreeValue.Root(), tree.Root()) {
		t.Fatal("snapshot document differs after round trip")
	}
	if replica.DigestString(got.TreeValue) != payload.Digest {
		t.Fatal("decoded document digest mismatch")
	}
	if len(got.Integrations) != 1 || got.Integrations[0].OracleCalls != 3 {
		t.Fatalf("integrations = %+v", got.Integrations)
	}
	if len(got.Feedback) != 1 || got.Feedback[0].WorldsBefore.Cmp(big.NewInt(4)) != 0 ||
		!got.Feedback[0].When.Equal(when) {
		t.Fatalf("feedback = %+v", got.Feedback)
	}

	if err := replica.EncodeSnapshot(&bytes.Buffer{}, payload, nil); err == nil {
		t.Fatal("EncodeSnapshot accepted a nil tree")
	}
}

// TestSnapshotSharedRoundTrip: the wal2 bootstrap stream — dictionary I
// frame + shared-index document — decodes to the same tree through the
// one DecodeSnapshot entry point and rejects every truncation.
func TestSnapshotSharedRoundTrip(t *testing.T) {
	tree := mustDecode(t, abC)
	payload := &replica.SnapshotPayload{
		Database:      "x",
		FormatVersion: 5,
		Seq:           7,
		Epoch:         2,
		Digest:        replica.DigestString(tree),
		Schema:        "<!ELEMENT addressbook (person*)>",
	}
	var buf bytes.Buffer
	if err := replica.EncodeSnapshotShared(&buf, payload, tree); err != nil {
		t.Fatal(err)
	}
	got, err := replica.DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Database != "x" || got.Seq != 7 || got.Epoch != 2 || got.Schema != payload.Schema {
		t.Fatalf("shared snapshot header round trip = %+v", got)
	}
	if got.TreeValue == nil || !pxml.Equal(got.TreeValue.Root(), tree.Root()) {
		t.Fatal("shared snapshot document differs after round trip")
	}
	if replica.DigestString(got.TreeValue) != payload.Digest {
		t.Fatal("decoded document digest mismatch")
	}
	for cut := 0; cut < buf.Len(); cut++ {
		if _, err := replica.DecodeSnapshot(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("shared stream cut at byte %d decoded as a full snapshot", cut)
		}
	}
}

// TestSnapshotTruncationRejected: every cut of the snapshot stream is an
// error — a half-received bootstrap must never install.
func TestSnapshotTruncationRejected(t *testing.T) {
	tree := mustDecode(t, abA)
	payload := &replica.SnapshotPayload{Database: "x", FormatVersion: 4, Seq: 1, Epoch: 1, Digest: replica.DigestString(tree)}
	var buf bytes.Buffer
	if err := replica.EncodeSnapshot(&buf, payload, tree); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := replica.DecodeSnapshot(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("stream cut at byte %d decoded as a full snapshot", cut)
		}
	}
}

// primaryStatus fetches GET /replication from a test server.
func primaryStatus(t *testing.T, url string) replica.PrimaryStatus {
	t.Helper()
	resp, err := http.Get(url + "/replication")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ps replica.PrimaryStatus
	if err := json.NewDecoder(resp.Body).Decode(&ps); err != nil {
		t.Fatal(err)
	}
	return ps
}

// peerEncoding returns the single negotiated encoding the primary
// recorded for its follower(s), failing on none or a mix.
func peerEncoding(t *testing.T, ps replica.PrimaryStatus) string {
	t.Helper()
	if len(ps.Peers) == 0 {
		t.Fatalf("primary recorded no peers: %+v", ps)
	}
	enc := ""
	for _, e := range ps.Peers {
		if enc != "" && e != enc {
			t.Fatalf("mixed peer encodings: %+v", ps.Peers)
		}
		enc = e
	}
	return enc
}

// TestReplicationWireNegotiationBinary: a current follower against a
// current primary negotiates the binary wire for both the snapshot
// bootstrap and the WAL tail, converges, and both ends report the
// negotiated encoding.
func TestReplicationWireNegotiationBinary(t *testing.T) {
	cat, ts := startPrimary(t)
	pdb, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pdb.Core().IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	rep, err := replica.Open(t.TempDir(), fastOptions(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitCaughtUp(t, rep)
	fdb, err := rep.Catalog().Get("x")
	if err != nil {
		t.Fatal(err)
	}
	assertConverged(t, pdb.Core(), fdb.Core())

	// The tail keeps flowing in binary: more writes, including a
	// feedback op whose timestamp must survive the binary round trip.
	if _, err := pdb.Core().IntegrateXMLString(abB); err != nil {
		t.Fatal(err)
	}
	if _, err := pdb.Core().Feedback(`//person[nm="John"]/tel`, "2222", false); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, rep)
	assertConverged(t, pdb.Core(), fdb.Core())

	// A current pair converges on the compressed wal2 wire by default.
	if st := rep.Status(); st.WireEncoding != replica.WireBinaryFlate {
		t.Fatalf("replica negotiated %q, want %q", st.WireEncoding, replica.WireBinaryFlate)
	}
	if enc := peerEncoding(t, primaryStatus(t, ts.URL)); enc != replica.WireBinaryFlate {
		t.Fatalf("primary recorded peer encoding %q, want %q", enc, replica.WireBinaryFlate)
	}
}

// TestReplicationWireNegotiationMixedVersions: one primary feeding three
// generations of follower at once — a current one (compressed wal2), a
// binary-v1 one (what an older build sends), and a wal2-no-compression
// one — each negotiates its own wire and all three converge on the same
// document and histories.
func TestReplicationWireNegotiationMixedVersions(t *testing.T) {
	cat, ts := startPrimary(t)
	pdb, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pdb.Core().IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		mut  func(*replica.Options)
		want string
	}{
		{"current", func(o *replica.Options) {}, replica.WireBinaryFlate},
		{"binary1", func(o *replica.Options) { o.WireEncoding = replica.WireBinaryV1 }, replica.WireBinaryV1},
		{"uncompressed", func(o *replica.Options) { o.NoCompression = true }, replica.WireBinary},
	}
	var reps []*replica.Replica
	for _, v := range variants {
		opts := fastOptions(ts.URL)
		v.mut(&opts)
		rep, err := replica.Open(t.TempDir(), opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		defer rep.Close()
		reps = append(reps, rep)
	}
	// More traffic after the bootstrap, so every follower also exercises
	// its WAL tail path.
	if _, err := pdb.Core().IntegrateXMLString(abB); err != nil {
		t.Fatal(err)
	}
	if _, err := pdb.Core().Feedback(`//person[nm="John"]/tel`, "2222", false); err != nil {
		t.Fatal(err)
	}
	for i, v := range variants {
		waitCaughtUp(t, reps[i])
		fdb, err := reps[i].Catalog().Get("x")
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		assertConverged(t, pdb.Core(), fdb.Core())
		if st := reps[i].Status(); st.WireEncoding != v.want {
			t.Fatalf("%s follower negotiated %q, want %q", v.name, st.WireEncoding, v.want)
		}
	}
}

// TestReplicationWireJSONFallback: a follower configured JSON-only (an
// old build, as far as the primary can tell: it never sends the Accept
// header) still bootstraps and tails from a binary-capable primary, and
// both ends report the JSON fallback.
func TestReplicationWireJSONFallback(t *testing.T) {
	cat, ts := startPrimary(t)
	pdb, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pdb.Core().IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	opts := fastOptions(ts.URL)
	opts.WireEncoding = replica.WireJSON
	rep, err := replica.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	waitCaughtUp(t, rep)
	fdb, err := rep.Catalog().Get("x")
	if err != nil {
		t.Fatal(err)
	}
	assertConverged(t, pdb.Core(), fdb.Core())

	// The primary's log holds binary records (default WAL encoding); the
	// JSON wire path must portably re-encode them, trees included.
	if _, err := pdb.Core().IntegrateXMLString(abB); err != nil {
		t.Fatal(err)
	}
	if _, err := pdb.Core().Feedback(`//person[nm="John"]/tel`, "2222", false); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, rep)
	assertConverged(t, pdb.Core(), fdb.Core())

	if st := rep.Status(); st.WireEncoding != replica.WireJSON {
		t.Fatalf("replica negotiated %q, want %q", st.WireEncoding, replica.WireJSON)
	}
	if enc := peerEncoding(t, primaryStatus(t, ts.URL)); enc != replica.WireJSON {
		t.Fatalf("primary recorded peer encoding %q, want %q", enc, replica.WireJSON)
	}
}

// Package quality implements answer-quality measures for uncertain data,
// after de Keijzer & van Keulen, "Quality measures in uncertain data
// management" (SUM 2007) — the paper's ref [13], used in §VII to "measure
// answer quality with adapted precision and recall measures".
//
// Classical precision/recall treat an answer as either retrieved or not.
// For probabilistic answers each value carries a probability, so the
// adapted measures weigh answers by their probability mass: an answer
// ranked 97% contributes 0.97 of a hit (or of a false positive).
package quality

import (
	"math"
	"sort"

	"repro/internal/query"
)

// Report aggregates the quality of one ranked probabilistic answer list
// against a ground-truth answer set.
type Report struct {
	// Precision is probability-weighted precision: the expected fraction
	// of reported answer mass that is correct:
	// Σ_{a∈truth} P(a) / Σ_a P(a).
	Precision float64
	// Recall is probability-weighted recall: expected fraction of the
	// truth retrieved: Σ_{a∈truth} P(a) / |truth|.
	Recall float64
	// F1 is the harmonic mean of Precision and Recall.
	F1 float64
	// ClassicalPrecision and ClassicalRecall ignore probabilities and
	// treat every reported answer as fully retrieved.
	ClassicalPrecision float64
	ClassicalRecall    float64
	// AveragePrecision is the ranked-retrieval AP: the mean of precision-
	// at-rank over the ranks of correct answers (in probability order),
	// the standard single-number summary of ranking quality.
	AveragePrecision float64
	// Retrieved and Relevant report the set sizes.
	Retrieved int
	Relevant  int
}

// Evaluate scores a ranked answer list against the truth set.
func Evaluate(answers []query.Answer, truth []string) Report {
	truthSet := make(map[string]bool, len(truth))
	for _, t := range truth {
		truthSet[t] = true
	}
	r := Report{Retrieved: len(answers), Relevant: len(truthSet)}

	var massTotal, massCorrect float64
	correct := 0
	for _, a := range answers {
		massTotal += a.P
		if truthSet[a.Value] {
			massCorrect += a.P
			correct++
		}
	}
	if massTotal > 0 {
		r.Precision = massCorrect / massTotal
	} else if len(truthSet) == 0 {
		r.Precision = 1
	}
	if len(truthSet) > 0 {
		r.Recall = massCorrect / float64(len(truthSet))
		r.ClassicalRecall = float64(correct) / float64(len(truthSet))
	} else {
		r.Recall = 1
		r.ClassicalRecall = 1
	}
	if len(answers) > 0 {
		r.ClassicalPrecision = float64(correct) / float64(len(answers))
	} else if len(truthSet) == 0 {
		r.ClassicalPrecision = 1
	}
	if r.Precision+r.Recall > 0 {
		r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
	}
	r.AveragePrecision = averagePrecision(answers, truthSet)
	return r
}

func averagePrecision(answers []query.Answer, truth map[string]bool) float64 {
	if len(truth) == 0 {
		return 1
	}
	ranked := make([]query.Answer, len(answers))
	copy(ranked, answers)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].P > ranked[j].P })
	hits := 0
	sum := 0.0
	for i, a := range ranked {
		if truth[a.Value] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(truth))
}

// PrecisionAtK is classical precision over the top-k ranked answers.
func PrecisionAtK(answers []query.Answer, truth []string, k int) float64 {
	if k <= 0 {
		return 0
	}
	truthSet := make(map[string]bool, len(truth))
	for _, t := range truth {
		truthSet[t] = true
	}
	if k > len(answers) {
		k = len(answers)
	}
	if k == 0 {
		if len(truthSet) == 0 {
			return 1
		}
		return 0
	}
	correct := 0
	for _, a := range answers[:k] {
		if truthSet[a.Value] {
			correct++
		}
	}
	return float64(correct) / float64(k)
}

// RecallAtK is classical recall over the top-k ranked answers.
func RecallAtK(answers []query.Answer, truth []string, k int) float64 {
	truthSet := make(map[string]bool, len(truth))
	for _, t := range truth {
		truthSet[t] = true
	}
	if len(truthSet) == 0 {
		return 1
	}
	if k > len(answers) {
		k = len(answers)
	}
	correct := 0
	for _, a := range answers[:k] {
		if truthSet[a.Value] {
			correct++
		}
	}
	return float64(correct) / float64(len(truthSet))
}

// ExpectedJaccard is the expected Jaccard overlap between the reported
// answer set and the truth under independence of answer events: a compact
// set-similarity score in [0,1].
func ExpectedJaccard(answers []query.Answer, truth []string) float64 {
	truthSet := make(map[string]bool, len(truth))
	for _, t := range truth {
		truthSet[t] = true
	}
	inter := 0.0
	union := float64(len(truthSet))
	for _, a := range answers {
		if truthSet[a.Value] {
			inter += a.P
		} else {
			union += a.P
		}
	}
	if union == 0 {
		return 1
	}
	return inter / union
}

// Close reports whether two quality values are equal within tolerance;
// convenience for experiment assertions.
func Close(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

package quality_test

import (
	"math"
	"testing"

	"repro/internal/quality"
	"repro/internal/query"
)

func ans(pairs ...any) []query.Answer {
	var out []query.Answer
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, query.Answer{Value: pairs[i].(string), P: pairs[i+1].(float64)})
	}
	return out
}

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEvaluatePerfectAnswers(t *testing.T) {
	r := quality.Evaluate(ans("Jaws", 1.0, "Jaws 2", 1.0), []string{"Jaws", "Jaws 2"})
	if !close(r.Precision, 1) || !close(r.Recall, 1) || !close(r.F1, 1) {
		t.Fatalf("perfect answers: %+v", r)
	}
	if !close(r.ClassicalPrecision, 1) || !close(r.ClassicalRecall, 1) || !close(r.AveragePrecision, 1) {
		t.Fatalf("classical measures: %+v", r)
	}
}

func TestEvaluateWeightedMeasures(t *testing.T) {
	// The paper's second example: Die Hard (100%, correct), M:I II (96%,
	// correct), M:I (21%, incorrect artifact).
	answers := ans("Die Hard: With a Vengeance", 1.0, "Mission: Impossible II", 0.96, "Mission: Impossible", 0.21)
	truth := []string{"Die Hard: With a Vengeance", "Mission: Impossible II"}
	r := quality.Evaluate(answers, truth)
	wantPrec := (1.0 + 0.96) / (1.0 + 0.96 + 0.21)
	if !close(r.Precision, wantPrec) {
		t.Fatalf("Precision = %v, want %v", r.Precision, wantPrec)
	}
	if !close(r.Recall, (1.0+0.96)/2) {
		t.Fatalf("Recall = %v", r.Recall)
	}
	if !close(r.ClassicalPrecision, 2.0/3) || !close(r.ClassicalRecall, 1) {
		t.Fatalf("classical: %+v", r)
	}
	// The low-probability artifact ranks last, so AP stays 1.
	if !close(r.AveragePrecision, 1) {
		t.Fatalf("AP = %v", r.AveragePrecision)
	}
	if r.Retrieved != 3 || r.Relevant != 2 {
		t.Fatalf("sizes: %+v", r)
	}
}

func TestEvaluateRankingSensitivity(t *testing.T) {
	// An incorrect answer ranked first hurts average precision.
	good := quality.Evaluate(ans("right", 0.9, "wrong", 0.1), []string{"right"})
	bad := quality.Evaluate(ans("wrong", 0.9, "right", 0.1), []string{"right"})
	if !(good.AveragePrecision > bad.AveragePrecision) {
		t.Fatalf("AP should punish bad ranking: good=%v bad=%v", good.AveragePrecision, bad.AveragePrecision)
	}
	if !close(bad.AveragePrecision, 0.5) {
		t.Fatalf("bad AP = %v, want 0.5", bad.AveragePrecision)
	}
	// Probability-weighted precision is ranking-independent but
	// mass-sensitive.
	if !close(good.Precision, 0.9) || !close(bad.Precision, 0.1) {
		t.Fatalf("weighted precision: good=%v bad=%v", good.Precision, bad.Precision)
	}
}

func TestEvaluateEmptyCases(t *testing.T) {
	r := quality.Evaluate(nil, nil)
	if !close(r.Precision, 1) || !close(r.Recall, 1) || !close(r.ClassicalPrecision, 1) {
		t.Fatalf("empty/empty should be perfect: %+v", r)
	}
	r = quality.Evaluate(nil, []string{"missing"})
	if !close(r.Recall, 0) || !close(r.F1, 0) {
		t.Fatalf("no answers: %+v", r)
	}
	r = quality.Evaluate(ans("spurious", 0.5), nil)
	if !close(r.Precision, 0) {
		t.Fatalf("all spurious: %+v", r)
	}
}

func TestPrecisionRecallAtK(t *testing.T) {
	answers := ans("a", 0.9, "b", 0.8, "c", 0.7)
	truth := []string{"a", "c", "d"}
	if got := quality.PrecisionAtK(answers, truth, 1); !close(got, 1) {
		t.Fatalf("P@1 = %v", got)
	}
	if got := quality.PrecisionAtK(answers, truth, 2); !close(got, 0.5) {
		t.Fatalf("P@2 = %v", got)
	}
	if got := quality.PrecisionAtK(answers, truth, 3); !close(got, 2.0/3) {
		t.Fatalf("P@3 = %v", got)
	}
	if got := quality.PrecisionAtK(answers, truth, 10); !close(got, 2.0/3) {
		t.Fatalf("P@10 (clamped) = %v", got)
	}
	if got := quality.PrecisionAtK(answers, truth, 0); got != 0 {
		t.Fatalf("P@0 = %v", got)
	}
	if got := quality.RecallAtK(answers, truth, 1); !close(got, 1.0/3) {
		t.Fatalf("R@1 = %v", got)
	}
	if got := quality.RecallAtK(answers, truth, 3); !close(got, 2.0/3) {
		t.Fatalf("R@3 = %v", got)
	}
	if got := quality.RecallAtK(answers, nil, 3); !close(got, 1) {
		t.Fatalf("R@k empty truth = %v", got)
	}
}

func TestExpectedJaccard(t *testing.T) {
	if got := quality.ExpectedJaccard(ans("a", 1.0), []string{"a"}); !close(got, 1) {
		t.Fatalf("identical = %v", got)
	}
	got := quality.ExpectedJaccard(ans("a", 0.5, "x", 0.5), []string{"a", "b"})
	// inter = 0.5, union = 2 + 0.5 = 2.5.
	if !close(got, 0.2) {
		t.Fatalf("jaccard = %v, want 0.2", got)
	}
	if got := quality.ExpectedJaccard(nil, nil); !close(got, 1) {
		t.Fatalf("empty = %v", got)
	}
}

func TestClose(t *testing.T) {
	if !quality.Close(0.5, 0.5001, 0.001) || quality.Close(0.5, 0.6, 0.001) {
		t.Fatalf("Close broken")
	}
}

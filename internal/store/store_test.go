package store_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"math/big"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dtd"
	"repro/internal/feedback"
	"repro/internal/integrate"
	"repro/internal/pxml"
	"repro/internal/pxmltest"
	"repro/internal/store"
	"repro/internal/xmlcodec"
)

// manifestOf reads the committed manifest back, so tests can locate the
// content-addressed payload files.
func manifestOf(t *testing.T, dir string) store.Manifest {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	var m store.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("decode manifest: %v", err)
	}
	return m
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tree := pxmltest.Fig2Tree()
	schema := dtd.MustParse(`
		<!ELEMENT addressbook (person*)>
		<!ELEMENT person (nm, tel?)>
		<!ELEMENT nm (#PCDATA)>
		<!ELEMENT tel (#PCDATA)>
	`)
	m, err := store.Save(dir, tree, schema, "figure 2 database")
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if m.Worlds != "3" || m.LogicalNodes != tree.NodeCount() || !m.HasSchema {
		t.Fatalf("manifest = %+v", m)
	}
	if m.FormatVersion != store.FormatVersion || m.DocumentFile == "" {
		t.Fatalf("v2 manifest fields missing: %+v", m)
	}
	snap, err := store.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !pxml.Equal(snap.Tree.Root(), tree.Root()) {
		t.Fatalf("loaded tree differs:\n%s\nvs\n%s", snap.Tree, tree)
	}
	if snap.Schema == nil || snap.Schema.MaxOccurs("person", "tel") != 1 {
		t.Fatalf("schema lost: %v", snap.Schema)
	}
	if snap.Manifest.Comment != "figure 2 database" {
		t.Fatalf("comment = %q", snap.Manifest.Comment)
	}
}

func TestSaveWithoutSchemaRemovesStaleFile(t *testing.T) {
	dir := t.TempDir()
	tree := pxmltest.Fig2Tree()
	schema := dtd.MustParse(`<!ELEMENT addressbook ANY>`)
	if _, err := store.Save(dir, tree, schema, ""); err != nil {
		t.Fatalf("Save with schema: %v", err)
	}
	if _, err := store.Save(dir, tree, nil, ""); err != nil {
		t.Fatalf("Save without schema: %v", err)
	}
	snap, err := store.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if snap.Schema != nil {
		t.Fatalf("stale schema resurrected")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "schema") {
			t.Fatalf("schema file still present: %s", e.Name())
		}
	}
}

func TestLoadDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	if _, err := store.Save(dir, pxmltest.Fig2Tree(), nil, ""); err != nil {
		t.Fatalf("Save: %v", err)
	}
	docPath := filepath.Join(dir, manifestOf(t, dir).DocumentFile)
	data, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "1111", "9999", 1)
	if err := os.WriteFile(docPath, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = store.Load(dir)
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := store.Load(t.TempDir()); err == nil {
		t.Fatalf("empty dir should fail")
	}
	// Bad manifest JSON.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(dir); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("bad manifest: %v", err)
	}
	// Wrong version.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "manifest.json"),
		[]byte(`{"format_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(dir2); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("version check: %v", err)
	}
	// Manifest ok but document missing.
	dir3 := t.TempDir()
	if _, err := store.Save(dir3, pxmltest.Fig2Tree(), nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir3, manifestOf(t, dir3).DocumentFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(dir3); err == nil {
		t.Fatalf("missing document should fail")
	}
	// Schema promised but missing.
	dir4 := t.TempDir()
	schema := dtd.MustParse(`<!ELEMENT a ANY>`)
	if _, err := store.Save(dir4, pxmltest.Fig2Tree(), schema, ""); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir4, manifestOf(t, dir4).SchemaFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(dir4); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("missing schema: %v", err)
	}
	// A manifest escaping the snapshot directory is corrupt, not a
	// traversal primitive.
	dir5 := t.TempDir()
	bad := `{"format_version": 2, "document_file": "../outside.xml", "document_sha256": "00"}`
	if err := os.WriteFile(filepath.Join(dir5, "manifest.json"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(dir5); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("escaping document_file: %v", err)
	}
}

func TestSaveRejectsNilAndInvalid(t *testing.T) {
	if _, err := store.Save(t.TempDir(), nil, nil, ""); err == nil {
		t.Fatalf("nil tree should fail")
	}
}

func TestSaveLoadManyRandomTrees(t *testing.T) {
	dir := t.TempDir()
	cfg := pxmltest.DefaultGenConfig()
	cfg.AllowEmptyAlt = false
	rng := newRng()
	for i := 0; i < 20; i++ {
		tree := pxmltest.RandomTree(rng, cfg)
		if _, err := store.Save(dir, tree, nil, ""); err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
		snap, err := store.Load(dir)
		if err != nil {
			t.Fatalf("Load %d: %v", i, err)
		}
		if !pxml.Equal(snap.Tree.Root(), tree.Root()) {
			t.Fatalf("round trip %d differs", i)
		}
	}
}

// TestLoadFormatV1 keeps backward compatibility: snapshots written by the
// previous release (fixed filenames, no histories) still load.
func TestLoadFormatV1(t *testing.T) {
	dir := t.TempDir()
	tree := pxmltest.Fig2Tree()
	doc, err := xmlcodec.EncodeString(tree, xmlcodec.EncodeOptions{Indent: " ", KeepTrivial: true})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(doc))
	m := map[string]any{
		"format_version":  1,
		"saved_at":        time.Now().UTC().Format(time.RFC3339),
		"document_sha256": hex.EncodeToString(sum[:]),
		"logical_nodes":   tree.NodeCount(),
		"worlds":          tree.WorldCount().String(),
		"has_schema":      false,
	}
	mdata, _ := json.Marshal(m)
	if err := os.WriteFile(filepath.Join(dir, "document.xml"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), mdata, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Load(dir)
	if err != nil {
		t.Fatalf("Load v1: %v", err)
	}
	if !pxml.Equal(snap.Tree.Root(), tree.Root()) {
		t.Fatalf("v1 round trip differs")
	}
}

// TestTornSaveLoadsStale is the crash-safety property of the v2 layout: a
// save interrupted after writing the new payload but before committing the
// manifest leaves the directory loading as the previous snapshot — stale,
// never ErrCorrupt.
func TestTornSaveLoadsStale(t *testing.T) {
	dir := t.TempDir()
	old := pxmltest.Fig2Tree()
	if _, err := store.Save(dir, old, nil, "generation 1"); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Simulate the torn second save: the new content-addressed document
	// landed on disk, the manifest rename did not.
	if err := os.WriteFile(filepath.Join(dir, "document-aaaaaaaaaaaa.xml"),
		[]byte("<addressbook><person><nm>Torn</nm></person></addressbook>"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Load(dir)
	if err != nil {
		t.Fatalf("Load after torn save: %v", err)
	}
	if !pxml.Equal(snap.Tree.Root(), old.Root()) || snap.Manifest.Comment != "generation 1" {
		t.Fatalf("torn save did not load the previous snapshot")
	}
}

// TestHistoriesRoundTrip persists the session state the v2 manifest
// carries: log position, integration statistics and feedback events.
func TestHistoriesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ints := []integrate.Stats{{OracleCalls: 7, MustPairs: 2, UndecidedPairs: 1}}
	evs := []feedback.Event{{
		Query:        `//person/tel`,
		Value:        "2222",
		Judgment:     feedback.Incorrect,
		PriorP:       0.5,
		WorldsBefore: big.NewInt(3),
		WorldsAfter:  big.NewInt(1),
		When:         time.Date(2026, 7, 30, 12, 0, 0, 0, time.UTC),
	}}
	_, err := store.SaveWith(dir, pxmltest.Fig2Tree(), nil, store.SaveOptions{
		Comment:      "with state",
		LogSeq:       42,
		Integrations: ints,
		Feedback:     evs,
	})
	if err != nil {
		t.Fatalf("SaveWith: %v", err)
	}
	snap, err := store.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	m := snap.Manifest
	if m.LogSeq != 42 {
		t.Fatalf("LogSeq = %d", m.LogSeq)
	}
	if len(m.Integrations) != 1 || m.Integrations[0] != ints[0] {
		t.Fatalf("integrations = %+v", m.Integrations)
	}
	if len(m.Feedback) != 1 {
		t.Fatalf("feedback = %+v", m.Feedback)
	}
	got := m.Feedback[0]
	if got.Query != evs[0].Query || got.Judgment != feedback.Incorrect ||
		got.WorldsBefore.Cmp(big.NewInt(3)) != 0 || got.WorldsAfter.Cmp(big.NewInt(1)) != 0 ||
		!got.When.Equal(evs[0].When) {
		t.Fatalf("feedback event mangled: %+v", got)
	}
}

func newRng() *rand.Rand { return rand.New(rand.NewSource(31)) }

package store_test

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/pxml"
	"repro/internal/pxmltest"
	"repro/internal/store"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tree := pxmltest.Fig2Tree()
	schema := dtd.MustParse(`
		<!ELEMENT addressbook (person*)>
		<!ELEMENT person (nm, tel?)>
		<!ELEMENT nm (#PCDATA)>
		<!ELEMENT tel (#PCDATA)>
	`)
	m, err := store.Save(dir, tree, schema, "figure 2 database")
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if m.Worlds != "3" || m.LogicalNodes != tree.NodeCount() || !m.HasSchema {
		t.Fatalf("manifest = %+v", m)
	}
	snap, err := store.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !pxml.Equal(snap.Tree.Root(), tree.Root()) {
		t.Fatalf("loaded tree differs:\n%s\nvs\n%s", snap.Tree, tree)
	}
	if snap.Schema == nil || snap.Schema.MaxOccurs("person", "tel") != 1 {
		t.Fatalf("schema lost: %v", snap.Schema)
	}
	if snap.Manifest.Comment != "figure 2 database" {
		t.Fatalf("comment = %q", snap.Manifest.Comment)
	}
}

func TestSaveWithoutSchemaRemovesStaleFile(t *testing.T) {
	dir := t.TempDir()
	tree := pxmltest.Fig2Tree()
	schema := dtd.MustParse(`<!ELEMENT addressbook ANY>`)
	if _, err := store.Save(dir, tree, schema, ""); err != nil {
		t.Fatalf("Save with schema: %v", err)
	}
	if _, err := store.Save(dir, tree, nil, ""); err != nil {
		t.Fatalf("Save without schema: %v", err)
	}
	snap, err := store.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if snap.Schema != nil {
		t.Fatalf("stale schema resurrected")
	}
	if _, err := os.Stat(filepath.Join(dir, "schema.dtd")); !os.IsNotExist(err) {
		t.Fatalf("schema file still present: %v", err)
	}
}

func TestLoadDetectsTampering(t *testing.T) {
	dir := t.TempDir()
	if _, err := store.Save(dir, pxmltest.Fig2Tree(), nil, ""); err != nil {
		t.Fatalf("Save: %v", err)
	}
	docPath := filepath.Join(dir, "document.xml")
	data, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "1111", "9999", 1)
	if err := os.WriteFile(docPath, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = store.Load(dir)
	if !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := store.Load(t.TempDir()); err == nil {
		t.Fatalf("empty dir should fail")
	}
	// Bad manifest JSON.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(dir); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("bad manifest: %v", err)
	}
	// Wrong version.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "manifest.json"),
		[]byte(`{"format_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(dir2); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("version check: %v", err)
	}
	// Manifest ok but document missing.
	dir3 := t.TempDir()
	if _, err := store.Save(dir3, pxmltest.Fig2Tree(), nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir3, "document.xml")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(dir3); err == nil {
		t.Fatalf("missing document should fail")
	}
	// Schema promised but missing.
	dir4 := t.TempDir()
	schema := dtd.MustParse(`<!ELEMENT a ANY>`)
	if _, err := store.Save(dir4, pxmltest.Fig2Tree(), schema, ""); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir4, "schema.dtd")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(dir4); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("missing schema: %v", err)
	}
}

func TestSaveRejectsNilAndInvalid(t *testing.T) {
	if _, err := store.Save(t.TempDir(), nil, nil, ""); err == nil {
		t.Fatalf("nil tree should fail")
	}
}

func TestSaveLoadManyRandomTrees(t *testing.T) {
	dir := t.TempDir()
	cfg := pxmltest.DefaultGenConfig()
	cfg.AllowEmptyAlt = false
	rng := newRng()
	for i := 0; i < 20; i++ {
		tree := pxmltest.RandomTree(rng, cfg)
		if _, err := store.Save(dir, tree, nil, ""); err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
		snap, err := store.Load(dir)
		if err != nil {
			t.Fatalf("Load %d: %v", i, err)
		}
		if !pxml.Equal(snap.Tree.Root(), tree.Root()) {
			t.Fatalf("round trip %d differs", i)
		}
	}
}

func newRng() *rand.Rand { return rand.New(rand.NewSource(31)) }

//go:build !unix

package store

import "errors"

// mmapAvailable: no mapping primitive on this platform; Load always
// takes the read-whole fallback.
const mmapAvailable = false

func mmapFile(path string) ([]byte, error) {
	return nil, errors.New("store: mmap unavailable on this platform")
}

// Package store persists probabilistic databases to disk — the durable-
// storage role MonetDB plays for the original IMPrECISE prototype. A
// snapshot is a directory holding the probabilistic document (marker XML),
// the schema knowledge (DTD), and a JSON manifest with integrity metadata,
// so a long-running integrate/query/feedback session can be resumed.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dtd"
	"repro/internal/pxml"
	"repro/internal/xmlcodec"
)

const (
	// FormatVersion identifies the snapshot layout; bumped on breaking
	// changes.
	FormatVersion = 1

	manifestFile = "manifest.json"
	documentFile = "document.xml"
	schemaFile   = "schema.dtd"
)

// Manifest is the snapshot metadata.
type Manifest struct {
	FormatVersion int       `json:"format_version"`
	SavedAt       time.Time `json:"saved_at"`
	// DocumentSHA256 is the checksum of document.xml, verified on load.
	DocumentSHA256 string `json:"document_sha256"`
	// LogicalNodes and Worlds record the size at save time (Worlds as a
	// decimal string; it can exceed every integer type).
	LogicalNodes int64  `json:"logical_nodes"`
	Worlds       string `json:"worlds"`
	HasSchema    bool   `json:"has_schema"`
	// Comment is free-form (e.g. the integration history).
	Comment string `json:"comment,omitempty"`
}

// Snapshot is the in-memory form of a stored database.
type Snapshot struct {
	Tree     *pxml.Tree
	Schema   *dtd.Schema // nil when none was stored
	Manifest Manifest
}

// ErrCorrupt is returned when a snapshot fails its integrity checks.
var ErrCorrupt = errors.New("store: snapshot corrupt")

// Save writes the document (and optional schema) into dir, creating it if
// needed. Existing snapshot files are overwritten atomically (write to
// temp, rename).
func Save(dir string, tree *pxml.Tree, schema *dtd.Schema, comment string) (Manifest, error) {
	if tree == nil {
		return Manifest{}, errors.New("store: nil tree")
	}
	if err := tree.Validate(); err != nil {
		return Manifest{}, fmt.Errorf("store: refusing to save invalid document: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, err
	}
	doc, err := xmlcodec.EncodeString(tree, xmlcodec.EncodeOptions{Indent: " ", KeepTrivial: true})
	if err != nil {
		return Manifest{}, err
	}
	sum := sha256.Sum256([]byte(doc))
	m := Manifest{
		FormatVersion:  FormatVersion,
		SavedAt:        time.Now().UTC(),
		DocumentSHA256: hex.EncodeToString(sum[:]),
		LogicalNodes:   tree.NodeCount(),
		Worlds:         tree.WorldCount().String(),
		HasSchema:      schema != nil,
		Comment:        comment,
	}
	if err := writeAtomic(filepath.Join(dir, documentFile), []byte(doc)); err != nil {
		return Manifest{}, err
	}
	if schema != nil {
		if err := writeAtomic(filepath.Join(dir, schemaFile), []byte(schema.String())); err != nil {
			return Manifest{}, err
		}
	} else {
		// Stale schema files from previous saves must not resurrect.
		if err := os.Remove(filepath.Join(dir, schemaFile)); err != nil && !os.IsNotExist(err) {
			return Manifest{}, err
		}
	}
	mdata, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Manifest{}, err
	}
	if err := writeAtomic(filepath.Join(dir, manifestFile), mdata); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// Load reads a snapshot back, verifying the checksum and format version.
func Load(dir string) (*Snapshot, error) {
	mdata, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(mdata, &m); err != nil {
		return nil, fmt.Errorf("%w: bad manifest: %v", ErrCorrupt, err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("store: unsupported format version %d (want %d)", m.FormatVersion, FormatVersion)
	}
	doc, err := os.ReadFile(filepath.Join(dir, documentFile))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(doc)
	if hex.EncodeToString(sum[:]) != m.DocumentSHA256 {
		return nil, fmt.Errorf("%w: document checksum mismatch", ErrCorrupt)
	}
	tree, err := xmlcodec.DecodeString(string(doc))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if got := tree.NodeCount(); got != m.LogicalNodes {
		return nil, fmt.Errorf("%w: node count %d differs from manifest %d", ErrCorrupt, got, m.LogicalNodes)
	}
	snap := &Snapshot{Tree: tree, Manifest: m}
	if m.HasSchema {
		sdata, err := os.ReadFile(filepath.Join(dir, schemaFile))
		if err != nil {
			return nil, fmt.Errorf("%w: schema missing: %v", ErrCorrupt, err)
		}
		schema, err := dtd.ParseString(string(sdata))
		if err != nil {
			return nil, fmt.Errorf("%w: bad schema: %v", ErrCorrupt, err)
		}
		snap.Schema = schema
	}
	return snap, nil
}

func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

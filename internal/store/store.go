// Package store persists probabilistic databases to disk — the durable-
// storage role MonetDB plays for the original IMPrECISE prototype. A
// snapshot is a directory holding the probabilistic document (a binary
// flat-arena frame since format v4; marker XML before), the schema
// knowledge (DTD), and a JSON manifest with integrity metadata, so a
// long-running integrate/query/feedback session can be resumed.
//
// # Durability
//
// Format v2 made a snapshot crash-safe. The document and schema are
// written under content-addressed names (document-<sha>.bin), each file is
// fsynced before and the directory after its rename, and the manifest —
// the only file referencing them — is written last. A save torn by a
// crash therefore leaves the previous manifest pointing at the previous
// (still present) files: Load returns the stale-but-consistent old
// snapshot instead of ErrCorrupt. The manifest also carries the write-
// ahead-log sequence number the snapshot corresponds to and the session
// histories (integration statistics, feedback events), so a restart
// resumes with intact /stats counters.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/codec"
	"repro/internal/dtd"
	"repro/internal/feedback"
	"repro/internal/integrate"
	"repro/internal/pxml"
	"repro/internal/xmlcodec"
)

const (
	// FormatVersion identifies the snapshot layout; bumped on breaking
	// changes. The full ladder, every rung still loadable:
	//
	//	v1  fixed filenames (document.xml), no histories
	//	v2  content-addressed XML documents, histories in the manifest
	//	v3  v2 plus the cluster epoch in the manifest
	//	v4  binary documents (document-<sha>.bin: a CRC-32C codec frame
	//	    holding the pxml flat arena encoding); manifest still JSON
	//	v5  zero-copy binary documents: a strtab frame (the document's
	//	    interned strings) followed by a shared-table arena frame whose
	//	    tag/text fields are indices into it. Load maps the file and
	//	    decodes without copying strings.
	//
	// Saves default to v5; SaveOptions.Encoding == "xml" writes the v3
	// layout for peers or tooling that cannot read binary documents.
	FormatVersion = 5

	// formatVersionV2 is the pre-epoch content-addressed layout; identical
	// to v3 except the manifest never carries an epoch.
	formatVersionV2 = 2
	// formatVersionV3 is the XML layout with the epoch — what
	// SaveOptions.Encoding "xml" still writes.
	formatVersionV3 = 3
	// formatVersionV4 is the self-contained binary layout (one document
	// frame with a local string table).
	formatVersionV4 = 4

	// EncodingBinary and EncodingXML are the SaveOptions.Encoding values.
	EncodingBinary = "binary"
	EncodingXML    = "xml"

	manifestFile = "manifest.json"
	// Legacy v1 filenames; v2 names are content-addressed.
	legacyDocumentFile = "document.xml"
	legacySchemaFile   = "schema.dtd"
)

// Manifest is the snapshot metadata.
type Manifest struct {
	FormatVersion int       `json:"format_version"`
	SavedAt       time.Time `json:"saved_at"`
	// DocumentFile and SchemaFile name the content-addressed payload
	// files inside the snapshot directory (v2; empty in v1 manifests).
	DocumentFile string `json:"document_file,omitempty"`
	SchemaFile   string `json:"schema_file,omitempty"`
	// DocumentSHA256 is the checksum of the document file, verified on
	// load.
	DocumentSHA256 string `json:"document_sha256"`
	// TreeDigest is the structural digest (pxml.Tree.Digest, 16 hex
	// digits) of the saved document, verified on load when present. It
	// catches what the byte checksum cannot: a document file that decodes
	// to a different tree than the one saved (codec drift), and it lets
	// replication compare a snapshot against a primary position without
	// decoding.
	TreeDigest string `json:"tree_digest,omitempty"`
	// LogicalNodes and Worlds record the size at save time (Worlds as a
	// decimal string; it can exceed every integer type).
	LogicalNodes int64  `json:"logical_nodes"`
	Worlds       string `json:"worlds"`
	HasSchema    bool   `json:"has_schema"`
	// Comment is free-form (e.g. the integration history).
	Comment string `json:"comment,omitempty"`
	// LogSeq is the write-ahead-log sequence number this snapshot
	// reflects: recovery replays only log entries with a higher sequence.
	LogSeq uint64 `json:"log_seq,omitempty"`
	// Epoch is the cluster epoch in force when the snapshot was taken.
	// Absent (0) in v1/v2 manifests; recovery resumes at the highest of
	// this and the last write-ahead-log record's epoch.
	Epoch uint64 `json:"epoch,omitempty"`
	// Integrations and Feedback persist the session histories, so stats
	// counters survive a save/load round trip or a crash recovery.
	Integrations []integrate.Stats `json:"integrations,omitempty"`
	Feedback     []feedback.Event  `json:"feedback,omitempty"`
	// Pending persists the ingest queue: sources accepted but not yet
	// integrated at save time. Keeping them in the snapshot means log
	// compaction can truncate the enqueue records a later apply record
	// will refer back to. Unknown to older readers (ignored), absent for
	// older writers — no format version bump needed.
	Pending []PendingDoc `json:"pending,omitempty"`
}

// PendingDoc is one ingest-queue entry in snapshot form: a ticket and
// its source documents as XML strings (small by construction — queue
// depth is bounded — so the self-describing form wins over a payload
// file per entry).
type PendingDoc struct {
	Ticket  string   `json:"ticket"`
	Sources []string `json:"sources"`
}

// Snapshot is the in-memory form of a stored database.
type Snapshot struct {
	Tree     *pxml.Tree
	Schema   *dtd.Schema // nil when none was stored
	Manifest Manifest
}

// ErrCorrupt is returned when a snapshot fails its integrity checks.
var ErrCorrupt = errors.New("store: snapshot corrupt")

// SaveOptions carries the v2 metadata a snapshot can embed beyond the
// document itself.
type SaveOptions struct {
	// Comment is free-form.
	Comment string
	// LogSeq records the write-ahead-log position the snapshot reflects.
	LogSeq uint64
	// Epoch records the cluster epoch in force at save time.
	Epoch uint64
	// Integrations and Feedback are the session histories to persist.
	Integrations []integrate.Stats
	Feedback     []feedback.Event
	// Pending is the ingest queue to persist (see Manifest.Pending).
	Pending []PendingDoc
	// Encoding selects the document payload format: "" or "binary" for
	// the v4 flat-arena frame, "xml" for the v3-compatible marker-XML
	// layout (the escape hatch for readers without binary support).
	Encoding string
}

// Save writes the document (and optional schema) into dir, creating it if
// needed. It is shorthand for SaveWith with only a comment.
func Save(dir string, tree *pxml.Tree, schema *dtd.Schema, comment string) (Manifest, error) {
	return SaveWith(dir, tree, schema, SaveOptions{Comment: comment})
}

// saveLocks serializes snapshot writes per directory within this
// process. Two concurrent saves into the same directory could otherwise
// interleave so that one save's stale-file cleanup deletes the payload
// the other save's committed manifest references; saves into different
// directories (e.g. the compactors of separate catalog databases) stay
// independent.
var (
	saveLocksMu sync.Mutex
	saveLocks   = map[string]*sync.Mutex{}
)

func saveLock(dir string) *sync.Mutex {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	saveLocksMu.Lock()
	defer saveLocksMu.Unlock()
	mu := saveLocks[dir]
	if mu == nil {
		mu = &sync.Mutex{}
		saveLocks[dir] = mu
	}
	return mu
}

// SaveWith writes a full v2 snapshot into dir, creating it if needed.
// Payload files are content-addressed and fsynced, and the manifest is
// written (and fsynced) last, so a save interrupted at any point leaves
// the directory loading as the previous snapshot.
func SaveWith(dir string, tree *pxml.Tree, schema *dtd.Schema, opts SaveOptions) (Manifest, error) {
	mu := saveLock(dir)
	mu.Lock()
	defer mu.Unlock()
	if tree == nil {
		return Manifest{}, errors.New("store: nil tree")
	}
	if err := tree.Validate(); err != nil {
		return Manifest{}, fmt.Errorf("store: refusing to save invalid document: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, err
	}
	var (
		doc     []byte
		version int
		ext     string
	)
	switch opts.Encoding {
	case "", EncodingBinary:
		// v5: the document's strings travel once, in a strtab frame the
		// arena frame's tag/text indices resolve against; Load decodes
		// both zero-copy from the mapped file.
		var tab codec.SharedStrings
		body := tree.AppendBinaryShared(nil, &tab)
		doc = codec.AppendFrame(nil, codec.KindStrTab, codec.StrTabVersion, tab.AppendDelta(nil, 0))
		doc = codec.AppendFrame(doc, codec.KindDocument, pxml.BinaryVersionShared, body)
		version, ext = FormatVersion, "bin"
	case EncodingXML:
		s, err := xmlcodec.EncodeString(tree, xmlcodec.EncodeOptions{Indent: " ", KeepTrivial: true})
		if err != nil {
			return Manifest{}, err
		}
		doc, version, ext = []byte(s), formatVersionV3, "xml"
	default:
		return Manifest{}, fmt.Errorf("store: unknown encoding %q (want %q or %q)", opts.Encoding, EncodingBinary, EncodingXML)
	}
	sum := sha256.Sum256(doc)
	m := Manifest{
		FormatVersion:  version,
		SavedAt:        time.Now().UTC(),
		DocumentFile:   fmt.Sprintf("document-%s.%s", hex.EncodeToString(sum[:6]), ext),
		DocumentSHA256: hex.EncodeToString(sum[:]),
		TreeDigest:     fmt.Sprintf("%016x", tree.Digest()),
		LogicalNodes:   tree.NodeCount(),
		Worlds:         tree.WorldCount().String(),
		HasSchema:      schema != nil,
		Comment:        opts.Comment,
		LogSeq:         opts.LogSeq,
		Epoch:          opts.Epoch,
		Integrations:   opts.Integrations,
		Feedback:       opts.Feedback,
		Pending:        opts.Pending,
	}
	if err := writeAtomic(filepath.Join(dir, m.DocumentFile), doc); err != nil {
		return Manifest{}, err
	}
	if schema != nil {
		stext := schema.String()
		ssum := sha256.Sum256([]byte(stext))
		m.SchemaFile = fmt.Sprintf("schema-%s.dtd", hex.EncodeToString(ssum[:6]))
		if err := writeAtomic(filepath.Join(dir, m.SchemaFile), []byte(stext)); err != nil {
			return Manifest{}, err
		}
	}
	mdata, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Manifest{}, err
	}
	// The manifest rename is the commit point: everything it references
	// is already durable, and until it lands Load keeps returning the
	// previous snapshot.
	if err := writeAtomic(filepath.Join(dir, manifestFile), mdata); err != nil {
		return Manifest{}, err
	}
	cleanupStale(dir, m)
	return m, nil
}

// cleanupStale removes payload files no longer referenced by the committed
// manifest (earlier content-addressed versions and the legacy v1 names).
// Failures are ignored: stale files cost space, never correctness.
func cleanupStale(dir string, m Manifest) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		stale := name == legacyDocumentFile || name == legacySchemaFile ||
			((strings.HasPrefix(name, "document-") || strings.HasPrefix(name, "schema-")) &&
				name != m.DocumentFile && name != m.SchemaFile)
		if stale {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}

// LoadOptions tunes Load.
type LoadOptions struct {
	// DisableMMap forces the read-whole fallback for v5 documents; the
	// IMPRECISE_NO_MMAP environment variable (any non-empty value) does
	// the same process-wide, so CI can exercise the fallback everywhere.
	DisableMMap bool
}

// ReadManifest reads and parses a snapshot manifest without touching the
// payload files — the O(manifest) stat path for listing databases.
func ReadManifest(dir string) (Manifest, error) {
	mdata, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("store: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(mdata, &m); err != nil {
		return Manifest{}, fmt.Errorf("%w: bad manifest: %v", ErrCorrupt, err)
	}
	return m, nil
}

// Stats are the process-wide storage counters /stats surfaces.
type Stats struct {
	// MMapLoads and FallbackLoads count v5 document opens by path taken.
	MMapLoads     uint64 `json:"mmap_loads"`
	FallbackLoads uint64 `json:"fallback_loads"`
	// MappedFiles and MappedBytes describe the currently pinned mappings.
	MappedFiles uint64 `json:"mapped_files"`
	MappedBytes uint64 `json:"mapped_bytes"`
}

// mappedRegistry pins every mapping for the process lifetime. Unmapping
// would require proving no live tree holds a string view into the file,
// and delta integration deliberately splices loaded nodes into successor
// trees — so mappings are never released, only counted. A process maps
// one file per database generation it loads; compaction churn is bounded
// by snapshot cadence, not op rate.
var mappedRegistry struct {
	mu    sync.Mutex
	maps  [][]byte
	stats Stats
}

// StoreStats returns a copy of the process-wide storage counters.
func StoreStats() Stats {
	mappedRegistry.mu.Lock()
	defer mappedRegistry.mu.Unlock()
	return mappedRegistry.stats
}

// openDocument returns the document file's bytes, via mmap when allowed
// and available, else a whole-file read. Zero-copy decoding is safe over
// both: a mapping is pinned in mappedRegistry, and a heap buffer is kept
// alive by the decoded strings' own interior pointers.
func openDocument(path string, disableMMap bool) ([]byte, error) {
	useMMap := mmapAvailable && !disableMMap && os.Getenv("IMPRECISE_NO_MMAP") == ""
	if useMMap {
		if data, err := mmapFile(path); err == nil {
			mappedRegistry.mu.Lock()
			mappedRegistry.maps = append(mappedRegistry.maps, data)
			mappedRegistry.stats.MMapLoads++
			mappedRegistry.stats.MappedFiles++
			mappedRegistry.stats.MappedBytes += uint64(len(data))
			mappedRegistry.mu.Unlock()
			return data, nil
		}
		// Map failure (exotic filesystem, resource limit) degrades to the
		// portable path, never to a load error.
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	mappedRegistry.mu.Lock()
	mappedRegistry.stats.FallbackLoads++
	mappedRegistry.mu.Unlock()
	return data, nil
}

// Load reads a snapshot back, verifying the checksum and format version.
// Every ladder rung from format v1 up is understood.
func Load(dir string) (*Snapshot, error) {
	return LoadWith(dir, LoadOptions{})
}

// LoadWith is Load under explicit options.
func LoadWith(dir string, opts LoadOptions) (*Snapshot, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	docFile, schemaFile := m.DocumentFile, m.SchemaFile
	switch m.FormatVersion {
	case 1:
		docFile, schemaFile = legacyDocumentFile, legacySchemaFile
	case formatVersionV2, formatVersionV3, formatVersionV4, FormatVersion:
		if docFile == "" || docFile != filepath.Base(docFile) || (m.HasSchema && (schemaFile == "" || schemaFile != filepath.Base(schemaFile))) {
			return nil, fmt.Errorf("%w: manifest references invalid payload file", ErrCorrupt)
		}
	default:
		return nil, fmt.Errorf("store: unsupported format version %d (want <= %d)", m.FormatVersion, FormatVersion)
	}
	var tree *pxml.Tree
	if m.FormatVersion >= FormatVersion {
		tree, err = loadDocumentV5(filepath.Join(dir, docFile), &m, opts)
		if err != nil {
			return nil, err
		}
	} else {
		doc, err := os.ReadFile(filepath.Join(dir, docFile))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		sum := sha256.Sum256(doc)
		if hex.EncodeToString(sum[:]) != m.DocumentSHA256 {
			return nil, fmt.Errorf("%w: document checksum mismatch", ErrCorrupt)
		}
		if m.FormatVersion == formatVersionV4 {
			// v4: one CRC-framed sequential read into the node arena.
			// DecodeArena enforces every Validate invariant itself.
			frame, rest, err := codec.ParseFrame(doc)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			if frame.Kind != codec.KindDocument || len(rest) != 0 {
				return nil, fmt.Errorf("%w: document file is not a single document frame", ErrCorrupt)
			}
			tree, err = pxml.DecodeArena(frame.Payload)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		} else {
			tree, err = xmlcodec.DecodeString(string(doc))
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			if err := tree.Validate(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		}
		if got := tree.NodeCount(); got != m.LogicalNodes {
			return nil, fmt.Errorf("%w: node count %d differs from manifest %d", ErrCorrupt, got, m.LogicalNodes)
		}
		// Older manifests carry no digest; when present it must match the
		// decoded tree structurally.
		if m.TreeDigest != "" {
			if got := fmt.Sprintf("%016x", tree.Digest()); got != m.TreeDigest {
				return nil, fmt.Errorf("%w: tree digest %s differs from manifest %s", ErrCorrupt, got, m.TreeDigest)
			}
		}
	}
	snap := &Snapshot{Tree: tree, Manifest: m}
	if m.HasSchema {
		sdata, err := os.ReadFile(filepath.Join(dir, schemaFile))
		if err != nil {
			return nil, fmt.Errorf("%w: schema missing: %v", ErrCorrupt, err)
		}
		schema, err := dtd.ParseString(string(sdata))
		if err != nil {
			return nil, fmt.Errorf("%w: bad schema: %v", ErrCorrupt, err)
		}
		snap.Schema = schema
	}
	return snap, nil
}

// loadDocumentV5 opens and decodes a v5 document: mmap (or read) the
// file, verify its checksum, then decode the strtab and arena frames
// zero-copy — node strings stay views into the backing buffer. The
// digest and node-count cross-checks against the manifest run inside the
// decoder (trailer compare and its own bottom-up count), so nothing here
// walks the tree: a v5 load allocates the node arena and little else.
func loadDocumentV5(path string, m *Manifest, opts LoadOptions) (*pxml.Tree, error) {
	doc, err := openDocument(path, opts.DisableMMap)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(doc)
	if hex.EncodeToString(sum[:]) != m.DocumentSHA256 {
		return nil, fmt.Errorf("%w: document checksum mismatch", ErrCorrupt)
	}
	sframe, rest, err := codec.ParseFrame(doc)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if sframe.Kind != codec.KindStrTab {
		return nil, fmt.Errorf("%w: v5 document starts with frame %q, want strtab", ErrCorrupt, sframe.Kind)
	}
	base, strs, err := codec.DecodeStrTabPayload(sframe.Payload, true)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if base != 0 {
		return nil, fmt.Errorf("%w: v5 document strtab based at %d, want 0", ErrCorrupt, base)
	}
	dframe, rest, err := codec.ParseFrame(rest)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if dframe.Kind != codec.KindDocument || len(rest) != 0 {
		return nil, fmt.Errorf("%w: v5 document is not strtab+document frames", ErrCorrupt)
	}
	darena := pxml.DecodeArenaOptions{
		Strings:       strs,
		ZeroCopy:      true,
		ExpectLogical: m.LogicalNodes,
	}
	if m.TreeDigest != "" {
		want, err := strconv.ParseUint(m.TreeDigest, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad manifest tree digest %q", ErrCorrupt, m.TreeDigest)
		}
		darena.ExpectDigest = &want
	}
	tree, err := pxml.DecodeArenaWith(dframe.Payload, darena)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return tree, nil
}

// writeAtomic writes data under path via a unique temp file in the same
// directory, fsyncs it, renames it into place, and fsyncs the directory,
// so the file is either absent/previous or complete after a crash — never
// half-written.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems refuse fsync on directories (EINVAL); that is a
	// durability gap we cannot close, not an error to fail the save on.
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}

package store_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/pxml"
	"repro/internal/pxmltest"
	"repro/internal/store"
	"repro/internal/xmlcodec"
)

// writeVersionDir writes dir as the given snapshot format version would
// have been written by the release that introduced it.
func writeVersionDir(t *testing.T, dir string, tree *pxml.Tree, version int) {
	t.Helper()
	switch version {
	case 1:
		doc, err := xmlcodec.EncodeString(tree, xmlcodec.EncodeOptions{Indent: " ", KeepTrivial: true})
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256([]byte(doc))
		m := map[string]any{
			"format_version":  1,
			"saved_at":        time.Now().UTC().Format(time.RFC3339),
			"document_sha256": hex.EncodeToString(sum[:]),
			"logical_nodes":   tree.NodeCount(),
			"worlds":          tree.WorldCount().String(),
			"has_schema":      false,
		}
		mdata, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "document.xml"), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), mdata, 0o644); err != nil {
			t.Fatal(err)
		}
	case 2, 3:
		if _, err := store.SaveWith(dir, tree, nil, store.SaveOptions{Encoding: store.EncodingXML}); err != nil {
			t.Fatal(err)
		}
		if version == 2 {
			// v2 is v3 without the epoch key and with the older version
			// stamp.
			mPath := filepath.Join(dir, "manifest.json")
			raw, err := os.ReadFile(mPath)
			if err != nil {
				t.Fatal(err)
			}
			var m map[string]any
			if err := json.Unmarshal(raw, &m); err != nil {
				t.Fatal(err)
			}
			m["format_version"] = 2
			delete(m, "epoch")
			raw, err = json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(mPath, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	case 4:
		// The v4 release wrote one self-contained document frame; Save
		// has moved on to v5, so write the old layout by hand.
		doc := codec.AppendFrame(nil, codec.KindDocument, pxml.BinaryVersion, tree.AppendBinary(nil))
		sum := sha256.Sum256(doc)
		m := store.Manifest{
			FormatVersion:  4,
			SavedAt:        time.Now().UTC(),
			DocumentFile:   "document-" + hex.EncodeToString(sum[:6]) + ".bin",
			DocumentSHA256: hex.EncodeToString(sum[:]),
			TreeDigest:     fmt.Sprintf("%016x", tree.Digest()),
			LogicalNodes:   tree.NodeCount(),
			Worlds:         tree.WorldCount().String(),
		}
		mdata, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, m.DocumentFile), doc, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), mdata, 0o644); err != nil {
			t.Fatal(err)
		}
	case 5:
		if _, err := store.SaveWith(dir, tree, nil, store.SaveOptions{}); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown version %d", version)
	}
}

// TestFormatLadderCompat loads every snapshot format version ever written
// and proves an old directory continues in binary: load, save (defaults
// to v4), load again.
func TestFormatLadderCompat(t *testing.T) {
	tree := pxmltest.Fig2Tree()
	for _, version := range []int{1, 2, 3, 4, 5} {
		dir := t.TempDir()
		writeVersionDir(t, dir, tree, version)
		snap, err := store.Load(dir)
		if err != nil {
			t.Fatalf("v%d: Load: %v", version, err)
		}
		if !pxml.Equal(snap.Tree.Root(), tree.Root()) {
			t.Fatalf("v%d: loaded tree differs", version)
		}
		if snap.Manifest.FormatVersion != version {
			t.Fatalf("v%d: manifest says v%d", version, snap.Manifest.FormatVersion)
		}
		// Continue in binary: the next save upgrades the directory.
		if _, err := store.SaveWith(dir, snap.Tree, snap.Schema, store.SaveOptions{}); err != nil {
			t.Fatalf("v%d: re-save: %v", version, err)
		}
		again, err := store.Load(dir)
		if err != nil {
			t.Fatalf("v%d: reload after upgrade: %v", version, err)
		}
		if again.Manifest.FormatVersion != store.FormatVersion {
			t.Fatalf("v%d: upgrade left manifest at v%d", version, again.Manifest.FormatVersion)
		}
		if !pxml.Equal(again.Tree.Root(), tree.Root()) {
			t.Fatalf("v%d: upgraded tree differs", version)
		}
		if filepath.Ext(again.Manifest.DocumentFile) != ".bin" {
			t.Fatalf("v%d: upgraded document file %q not binary", version, again.Manifest.DocumentFile)
		}
	}
}

// TestXMLEscapeHatch pins the Encoding "xml" escape hatch to the v3
// layout, and rejects unknown encodings.
func TestXMLEscapeHatch(t *testing.T) {
	dir := t.TempDir()
	tree := pxmltest.Fig2Tree()
	m, err := store.SaveWith(dir, tree, nil, store.SaveOptions{Encoding: store.EncodingXML, Epoch: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.FormatVersion != 3 || filepath.Ext(m.DocumentFile) != ".xml" {
		t.Fatalf("xml save wrote %q at v%d", m.DocumentFile, m.FormatVersion)
	}
	snap, err := store.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !pxml.Equal(snap.Tree.Root(), tree.Root()) || snap.Manifest.Epoch != 7 {
		t.Fatal("xml snapshot did not round trip")
	}
	if _, err := store.SaveWith(dir, tree, nil, store.SaveOptions{Encoding: "protobuf"}); err == nil {
		t.Fatal("unknown encoding accepted")
	}
}

// TestBinaryDocumentTamper: flipping any byte of the binary document file
// must be caught (by the SHA-256 in the manifest, the frame CRC, or the
// arena digest) — never load silently wrong.
func TestBinaryDocumentTamper(t *testing.T) {
	dir := t.TempDir()
	tree := pxmltest.Fig2Tree()
	m, err := store.SaveWith(dir, tree, nil, store.SaveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	docPath := filepath.Join(dir, m.DocumentFile)
	orig, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(orig); i += 7 {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x20
		if err := os.WriteFile(docPath, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Load(dir); err == nil {
			t.Fatalf("byte flip at %d loaded successfully", i)
		}
	}
}

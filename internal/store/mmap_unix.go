//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapAvailable reports whether this platform can map snapshot files at
// all; the portable fallback (mmap_other.go) reports false.
const mmapAvailable = true

// mmapFile maps path read-only. The mapping is returned to the caller to
// pin for the process lifetime (see mappedRegistry): decoded trees hold
// string views into it, and delta integration can splice their nodes
// into successor trees, so no unmap point is ever provably safe.
func mmapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return []byte{}, nil
	}
	if int64(int(size)) != size {
		return nil, syscall.EFBIG
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

package store_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pxml"
	"repro/internal/pxmltest"
	"repro/internal/store"
)

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// TestLoadMMapAndFallbackAgree proves the two v5 open paths decode the
// same tree, and that DisableMMap really takes the read path (visible in
// the counters).
func TestLoadMMapAndFallbackAgree(t *testing.T) {
	dir := t.TempDir()
	tree := pxmltest.Fig2Tree()
	if _, err := store.SaveWith(dir, tree, nil, store.SaveOptions{}); err != nil {
		t.Fatal(err)
	}

	before := store.StoreStats()
	mapped, err := store.LoadWith(dir, store.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	read, err := store.LoadWith(dir, store.LoadOptions{DisableMMap: true})
	if err != nil {
		t.Fatal(err)
	}
	after := store.StoreStats()

	if !pxml.Equal(mapped.Tree.Root(), read.Tree.Root()) {
		t.Fatal("mmap and fallback loads decoded different trees")
	}
	if !pxml.Equal(mapped.Tree.Root(), tree.Root()) {
		t.Fatal("loaded tree differs from saved")
	}
	if after.FallbackLoads-before.FallbackLoads < 1 {
		t.Fatalf("DisableMMap load not counted as fallback: %+v → %+v", before, after)
	}
	// The first load took either path depending on platform/env; both
	// paths together must account for exactly two loads.
	total := (after.MMapLoads - before.MMapLoads) + (after.FallbackLoads - before.FallbackLoads)
	if total != 2 {
		t.Fatalf("two loads counted as %d", total)
	}
}

// TestReadManifestOnly proves the quick stat path never opens payload
// files: it works even when the document file is corrupt.
func TestReadManifestOnly(t *testing.T) {
	dir := t.TempDir()
	tree := pxmltest.Fig2Tree()
	saved, err := store.SaveWith(dir, tree, nil, store.SaveOptions{Comment: "quick", LogSeq: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload: a full Load must now fail…
	docPath := filepath.Join(dir, saved.DocumentFile)
	if err := writeFile(docPath, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(dir); err == nil {
		t.Fatal("Load succeeded over corrupt document")
	}
	// …while ReadManifest still answers from the manifest alone.
	m, err := store.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.FormatVersion != store.FormatVersion || m.LogSeq != 42 || m.Comment != "quick" {
		t.Fatalf("manifest = %+v", m)
	}
	if m.LogicalNodes != tree.NodeCount() || m.Worlds != tree.WorldCount().String() {
		t.Fatalf("manifest sizes = %d nodes %s worlds", m.LogicalNodes, m.Worlds)
	}
}

// Package worlds provides possible-world semantics over probabilistic XML
// documents: exact enumeration, probability accounting, and seeded
// Monte-Carlo sampling.
//
// A possible world is obtained by independently committing every reachable
// choice point (ProbNode) to one of its alternatives. The probability of a
// world is the product of the chosen alternatives' probabilities. Worlds
// are materialized as certain pxml documents (every choice point trivial),
// so that all downstream machinery — queries, validation, statistics —
// works unchanged on them.
package worlds

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"

	"repro/internal/pxml"
)

// World is one fully determined state of the represented real world.
type World struct {
	// Elements are the document elements of this world, as certain
	// subtrees (all remaining choice points trivial).
	Elements []*pxml.Node
	// P is the world's probability.
	P float64
}

// Tree materializes the world as a certain probabilistic document.
func (w World) Tree() *pxml.Tree {
	return pxml.MustTree(pxml.Certain(w.Elements...))
}

// ErrTooManyWorlds is returned by enumeration helpers when the document
// represents more worlds than the caller's limit.
var ErrTooManyWorlds = errors.New("worlds: too many possible worlds")

// Enumerate calls fn for every possible world of the document, in a
// deterministic order. Enumeration stops early if fn returns false.
// The world probabilities passed to fn sum to 1 over a full enumeration.
func Enumerate(t *pxml.Tree, fn func(World) bool) {
	enumProbList([]*pxml.Node{t.Root()}, func(elems []*pxml.Node, p float64) bool {
		out := make([]*pxml.Node, len(elems))
		copy(out, elems)
		return fn(World{Elements: out, P: p})
	})
}

// Collect enumerates all worlds into a slice, refusing documents with more
// than max worlds (use Enumerate or Sample for those).
func Collect(t *pxml.Tree, max int) ([]World, error) {
	wc := t.WorldCount()
	if wc.Cmp(big.NewInt(int64(max))) > 0 {
		return nil, fmt.Errorf("%w: %s > %d", ErrTooManyWorlds, wc.String(), max)
	}
	var ws []World
	Enumerate(t, func(w World) bool {
		ws = append(ws, w)
		return true
	})
	return ws, nil
}

// enumProbList enumerates joint materializations of a list of independent
// choice points. fn receives a scratch slice of certain elements (valid
// only during the call) and the joint probability; it returns false to stop
// the whole enumeration.
func enumProbList(probs []*pxml.Node, fn func([]*pxml.Node, float64) bool) bool {
	scratch := make([]*pxml.Node, 0, 8)
	var rec func(i int, p float64) bool
	rec = func(i int, p float64) bool {
		if i == len(probs) {
			return fn(scratch, p)
		}
		prob := probs[i]
		for _, poss := range prob.Children() {
			ok := enumElemList(poss.Children(), func(elems []*pxml.Node, ep float64) bool {
				mark := len(scratch)
				scratch = append(scratch, elems...)
				cont := rec(i+1, p*poss.Prob()*ep)
				scratch = scratch[:mark]
				return cont
			})
			if !ok {
				return false
			}
		}
		return true
	}
	return rec(0, 1)
}

// enumElemList enumerates joint materializations of a sequence of element
// nodes (e.g. the contents of one possibility). Each element may itself
// contain nested choice points.
func enumElemList(elems []*pxml.Node, fn func([]*pxml.Node, float64) bool) bool {
	out := make([]*pxml.Node, len(elems))
	var rec func(i int, p float64) bool
	rec = func(i int, p float64) bool {
		if i == len(elems) {
			return fn(out, p)
		}
		return enumElem(elems[i], func(e *pxml.Node, ep float64) bool {
			out[i] = e
			return rec(i+1, p*ep)
		})
	}
	return rec(0, 1)
}

// enumElem enumerates the certain materializations of one element.
func enumElem(e *pxml.Node, fn func(*pxml.Node, float64) bool) bool {
	if e.IsLeaf() {
		return fn(e, 1)
	}
	return enumProbList(e.Children(), func(kids []*pxml.Node, p float64) bool {
		probKids := make([]*pxml.Node, 0, 1)
		if len(kids) > 0 {
			cp := make([]*pxml.Node, len(kids))
			copy(cp, kids)
			probKids = append(probKids, pxml.Certain(cp...))
		}
		return fn(pxml.NewElem(e.Tag(), e.Text(), probKids...), p)
	})
}

// Sample draws one world at random, committing each choice point according
// to its alternatives' probabilities. The returned probability is the
// world's exact probability. The rng must not be nil.
func Sample(t *pxml.Tree, rng *rand.Rand) World {
	elems, p := sampleProbList([]*pxml.Node{t.Root()}, rng)
	return World{Elements: elems, P: p}
}

func sampleProbList(probs []*pxml.Node, rng *rand.Rand) ([]*pxml.Node, float64) {
	var out []*pxml.Node
	p := 1.0
	for _, prob := range probs {
		poss := pick(prob.Children(), rng)
		p *= poss.Prob()
		for _, e := range poss.Children() {
			se, sp := sampleElem(e, rng)
			out = append(out, se)
			p *= sp
		}
	}
	return out, p
}

func sampleElem(e *pxml.Node, rng *rand.Rand) (*pxml.Node, float64) {
	if e.IsLeaf() {
		return e, 1
	}
	kids, p := sampleProbList(e.Children(), rng)
	if len(kids) == 0 {
		return pxml.NewLeaf(e.Tag(), e.Text()), p
	}
	return pxml.NewElem(e.Tag(), e.Text(), pxml.Certain(kids...)), p
}

func pick(poss []*pxml.Node, rng *rand.Rand) *pxml.Node {
	if len(poss) == 1 {
		return poss[0]
	}
	r := rng.Float64()
	acc := 0.0
	for _, p := range poss {
		acc += p.Prob()
		if r < acc {
			return p
		}
	}
	return poss[len(poss)-1]
}

// TotalProbability sums the probabilities of all worlds; it should be 1
// within floating-point error for any valid document. Exposed for tests
// and diagnostics; cost is exponential in the number of choice points.
func TotalProbability(t *pxml.Tree) float64 {
	sum := 0.0
	Enumerate(t, func(w World) bool {
		sum += w.P
		return true
	})
	return sum
}

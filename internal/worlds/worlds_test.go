package worlds_test

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pxml"
	"repro/internal/pxmltest"
	"repro/internal/worlds"
)

// worldKey gives a canonical string for a world's content, for comparing
// enumerations against expectations.
func worldKey(w worlds.World) string {
	parts := make([]string, len(w.Elements))
	for i, e := range w.Elements {
		parts[i] = pxml.Sketch(e)
	}
	return strings.Join(parts, "|")
}

func TestEnumerateFig2YieldsThreeWorlds(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	ws, err := worlds.Collect(tr, 10)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(ws) != 3 {
		t.Fatalf("worlds = %d, want 3", len(ws))
	}
	var total float64
	type summary struct {
		phones  []string
		persons int
		p       float64
	}
	var sums []summary
	for _, w := range ws {
		total += w.P
		if len(w.Elements) != 1 || w.Elements[0].Tag() != "addressbook" {
			t.Fatalf("world root = %v", w.Elements)
		}
		wt := w.Tree()
		if err := wt.Validate(); err != nil {
			t.Fatalf("world tree invalid: %v", err)
		}
		if !wt.IsCertain() {
			t.Fatalf("world not certain:\n%s", wt)
		}
		var phones []string
		persons := 0
		pxml.Walk(w.Elements[0], func(n *pxml.Node) bool {
			if n.Kind() == pxml.KindElem && n.Tag() == "person" {
				persons++
			}
			if n.Kind() == pxml.KindElem && n.Tag() == "tel" {
				phones = append(phones, n.Text())
			}
			return true
		})
		sort.Strings(phones)
		sums = append(sums, summary{phones, persons, w.P})
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("world probabilities sum to %v", total)
	}
	// Expected: {1111} p=0.3, {2222} p=0.3, {1111,2222} p=0.4.
	found := map[string]float64{}
	for _, s := range sums {
		found[strings.Join(s.phones, ",")] = s.p
		if len(s.phones) == 2 && s.persons != 2 {
			t.Fatalf("two-phone world should have two persons, got %d", s.persons)
		}
		if len(s.phones) == 1 && s.persons != 1 {
			t.Fatalf("one-phone world should have one person, got %d", s.persons)
		}
	}
	if math.Abs(found["1111"]-0.3) > 1e-9 || math.Abs(found["2222"]-0.3) > 1e-9 || math.Abs(found["1111,2222"]-0.4) > 1e-9 {
		t.Fatalf("world probabilities = %v", found)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	count := 0
	worlds.Enumerate(tr, func(w worlds.World) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("enumeration visited %d worlds after early stop, want 2", count)
	}
}

func TestCollectRefusesTooMany(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	_, err := worlds.Collect(tr, 2)
	if err == nil {
		t.Fatalf("expected ErrTooManyWorlds")
	}
	if !strings.Contains(err.Error(), "too many") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestEnumerationMatchesWorldCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := pxmltest.DefaultGenConfig()
	for i := 0; i < 30; i++ {
		tr := pxmltest.RandomTree(rng, cfg)
		want := tr.WorldCount()
		if !want.IsInt64() || want.Int64() > 5000 {
			continue
		}
		var n int64
		total := 0.0
		worlds.Enumerate(tr, func(w worlds.World) bool {
			n++
			total += w.P
			return true
		})
		if n != want.Int64() {
			t.Fatalf("tree %d: enumerated %d worlds, count says %s\n%s", i, n, want, tr)
		}
		if math.Abs(total-1) > 1e-6 {
			t.Fatalf("tree %d: world probabilities sum to %v", i, total)
		}
	}
}

func TestEnumeratedWorldsAreDistinct(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	seen := map[string]bool{}
	worlds.Enumerate(tr, func(w worlds.World) bool {
		k := worldKey(w)
		if seen[k] {
			t.Fatalf("duplicate world enumerated:\n%s", k)
		}
		seen[k] = true
		return true
	})
}

func TestSampleMatchesEnumeration(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	rng := rand.New(rand.NewSource(1234))
	freq := map[string]int{}
	probs := map[string]float64{}
	const n = 20000
	for i := 0; i < n; i++ {
		w := worlds.Sample(tr, rng)
		k := worldKey(w)
		freq[k]++
		probs[k] = w.P
	}
	if len(freq) != 3 {
		t.Fatalf("sampling found %d distinct worlds, want 3", len(freq))
	}
	for k, f := range freq {
		got := float64(f) / n
		if math.Abs(got-probs[k]) > 0.02 {
			t.Fatalf("world sampled with frequency %v but probability %v", got, probs[k])
		}
	}
}

func TestSampleProbabilityIsExact(t *testing.T) {
	// The probability attached to a sampled world must equal the world's
	// true probability from enumeration.
	tr := pxmltest.Fig2Tree()
	byKey := map[string]float64{}
	worlds.Enumerate(tr, func(w worlds.World) bool {
		byKey[worldKey(w)] = w.P
		return true
	})
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		w := worlds.Sample(tr, rng)
		want, ok := byKey[worldKey(w)]
		if !ok {
			t.Fatalf("sampled world not among enumerated worlds")
		}
		if math.Abs(w.P-want) > 1e-9 {
			t.Fatalf("sampled world P = %v, enumerated %v", w.P, want)
		}
	}
}

func TestTotalProbabilityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := pxmltest.RandomTree(rng, pxmltest.DefaultGenConfig())
		if wc := tr.WorldCount(); !wc.IsInt64() || wc.Int64() > 3000 {
			return true
		}
		return math.Abs(worlds.TotalProbability(tr)-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSampledWorldsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		tr := pxmltest.RandomTree(rng, pxmltest.DefaultGenConfig())
		w := worlds.Sample(tr, rng)
		wt := w.Tree()
		if err := wt.Validate(); err != nil {
			t.Fatalf("sampled world invalid: %v", err)
		}
		if !wt.IsCertain() {
			t.Fatalf("sampled world not certain")
		}
		if w.P <= 0 || w.P > 1 {
			t.Fatalf("sampled world probability %v out of range", w.P)
		}
	}
}

package xmlcodec_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xmlcodec"
)

// TestDecodeNeverPanics feeds the decoder assembled XML-ish soup: it must
// return a tree or an error, never panic.
func TestDecodeNeverPanics(t *testing.T) {
	fragments := []string{
		"<a>", "</a>", "<_prob>", "</_prob>", `<_poss p="0.5">`, "</_poss>",
		`<_poss p="1">`, "<b/>", "text", "&amp;", "&bogus;", `<a x="1">`,
		"<", ">", `"`, "<?pi?>", "<!--c-->", "]]>", "<![CDATA[x]]>",
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 4000; i++ {
		var sb strings.Builder
		n := 1 + rng.Intn(10)
		for j := 0; j < n; j++ {
			sb.WriteString(fragments[rng.Intn(len(fragments))])
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode(%q) panicked: %v", src, r)
				}
			}()
			tr, err := xmlcodec.DecodeString(src)
			if err == nil {
				// Whatever decodes must be a valid probabilistic document
				// and must re-encode.
				if verr := tr.Validate(); verr != nil {
					t.Fatalf("Decode(%q) produced invalid tree: %v", src, verr)
				}
				if _, eerr := xmlcodec.EncodeString(tr, xmlcodec.EncodeOptions{}); eerr != nil {
					t.Fatalf("re-encode of %q failed: %v", src, eerr)
				}
			}
		}()
	}
}

func TestDecodeRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(60))
		for j := range buf {
			buf[j] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode(%q) panicked: %v", buf, r)
				}
			}()
			_, _ = xmlcodec.DecodeString(string(buf))
		}()
	}
}

func TestEncodeProbDigitsRounding(t *testing.T) {
	tr, err := xmlcodec.DecodeString(
		`<a><_prob><_poss p="0.333333333333"><b/></_poss><_poss p="0.666666666667"><c/></_poss></_prob></a>`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := xmlcodec.EncodeString(tr, xmlcodec.EncodeOptions{ProbDigits: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `p="0.333"`) || !strings.Contains(out, `p="0.667"`) {
		t.Fatalf("rounded output:\n%s", out)
	}
	// Rounded probabilities still parse back into a valid document
	// (within the model's epsilon the sums stay at 1).
	if _, err := xmlcodec.DecodeString(out); err == nil {
		// Accept either outcome: with 3 digits 0.333+0.667 = 1 exactly.
		return
	}
}

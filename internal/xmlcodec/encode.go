package xmlcodec

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/pxml"
)

// EncodeOptions control the textual form produced by Encode.
type EncodeOptions struct {
	// Indent, when non-empty, pretty-prints with the given unit.
	Indent string
	// KeepTrivial keeps <_prob>/<_poss p="1"> markers around certain
	// content. The default omits them, producing plain XML for certain
	// documents. Round-trips are exact with KeepTrivial set.
	KeepTrivial bool
	// Probabilities are formatted with this precision (significant
	// digits); zero means full precision.
	ProbDigits int
}

// Encode writes the document as XML with probabilistic markers.
func Encode(w io.Writer, t *pxml.Tree, opts EncodeOptions) error {
	bw := bufio.NewWriter(w)
	e := &encoder{w: bw, opts: opts}
	root := t.Root()
	// The root choice point must leave exactly one document element in
	// every serialization; if the root is a genuine choice point or holds
	// multiple elements, wrap in a synthetic document element would change
	// the data, so reject instead.
	if len(root.Children()) == 1 && len(root.Child(0).Children()) == 1 {
		e.writeElem(root.Child(0).Child(0), 0)
	} else {
		return syntaxErrf("document root must be a single certain element (wrap alternatives in an element first)")
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// EncodeString renders the document to a string, panicking on writer
// errors (impossible with strings.Builder) and returning encoding errors.
func EncodeString(t *pxml.Tree, opts EncodeOptions) (string, error) {
	var b strings.Builder
	if err := Encode(&b, t, opts); err != nil {
		return "", err
	}
	return b.String(), nil
}

type encoder struct {
	w    *bufio.Writer
	opts EncodeOptions
	err  error
}

func (e *encoder) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func (e *encoder) indent(depth int) {
	if e.opts.Indent == "" || e.err != nil {
		return
	}
	if _, err := e.w.WriteString("\n"); err != nil {
		e.err = err
		return
	}
	for i := 0; i < depth; i++ {
		if _, err := e.w.WriteString(e.opts.Indent); err != nil {
			e.err = err
			return
		}
	}
}

func (e *encoder) escape(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		e.err = err
	}
	return b.String()
}

func (e *encoder) formatProb(p float64) string {
	if e.opts.ProbDigits > 0 {
		return strconv.FormatFloat(p, 'g', e.opts.ProbDigits, 64)
	}
	return strconv.FormatFloat(p, 'g', -1, 64)
}

// writeElem writes a regular element. Attribute children (tag starting with
// AttrPrefix) that are certain become XML attributes again.
func (e *encoder) writeElem(n *pxml.Node, depth int) {
	if depth > 0 {
		e.indent(depth)
	}
	tag := n.Tag()
	var attrs []string
	var content []*pxml.Node
	for _, prob := range n.Children() {
		if a, ok := certainAttr(prob); ok {
			attrs = append(attrs, fmt.Sprintf(` %s="%s"`, strings.TrimPrefix(a.Tag(), AttrPrefix), e.escape(a.Text())))
			continue
		}
		content = append(content, prob)
	}
	if len(content) == 0 && n.Text() == "" {
		e.printf("<%s%s/>", tag, strings.Join(attrs, ""))
		return
	}
	e.printf("<%s%s>", tag, strings.Join(attrs, ""))
	if n.Text() != "" {
		e.printf("%s", e.escape(n.Text()))
	}
	hadChildren := false
	for _, prob := range content {
		hadChildren = true
		e.writeProb(prob, depth+1)
	}
	if hadChildren {
		e.indent(depth)
	}
	e.printf("</%s>", tag)
}

// certainAttr reports whether a prob child is a trivial choice holding a
// single attribute leaf.
func certainAttr(prob *pxml.Node) (*pxml.Node, bool) {
	if len(prob.Children()) != 1 {
		return nil, false
	}
	poss := prob.Child(0)
	if len(poss.Children()) != 1 {
		return nil, false
	}
	el := poss.Child(0)
	if strings.HasPrefix(el.Tag(), AttrPrefix) && el.IsLeaf() {
		return el, true
	}
	return nil, false
}

func (e *encoder) writeProb(n *pxml.Node, depth int) {
	trivial := len(n.Children()) == 1 && n.Child(0).Prob() >= 1-pxml.ProbEpsilon
	if trivial && !e.opts.KeepTrivial {
		for _, el := range n.Child(0).Children() {
			e.writeElem(el, depth)
		}
		return
	}
	e.indent(depth)
	e.printf("<%s>", ProbTag)
	for _, poss := range n.Children() {
		e.writePoss(poss, depth+1)
	}
	e.indent(depth)
	e.printf("</%s>", ProbTag)
}

func (e *encoder) writePoss(n *pxml.Node, depth int) {
	e.indent(depth)
	if len(n.Children()) == 0 {
		e.printf(`<%s p="%s"/>`, PossTag, e.formatProb(n.Prob()))
		return
	}
	e.printf(`<%s p="%s">`, PossTag, e.formatProb(n.Prob()))
	for _, el := range n.Children() {
		e.writeElem(el, depth+1)
	}
	e.indent(depth)
	e.printf("</%s>", PossTag)
}

package xmlcodec_test

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pxml"
	"repro/internal/pxmltest"
	"repro/internal/xmlcodec"
)

func TestDecodePlainXML(t *testing.T) {
	tr, err := xmlcodec.DecodeString(`
		<addressbook>
			<person><nm>John</nm><tel>1111</tel></person>
			<person><nm>Mary</nm><tel>3333</tel></person>
		</addressbook>`)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("decoded tree invalid: %v", err)
	}
	if !tr.IsCertain() {
		t.Fatalf("plain XML should decode to a certain tree")
	}
	if tr.WorldCount().Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("world count = %s", tr.WorldCount())
	}
	book := tr.RootElements()[0]
	if book.Tag() != "addressbook" {
		t.Fatalf("root tag = %q", book.Tag())
	}
	persons := pxml.ElementChildren(book)
	if len(persons) != 2 {
		t.Fatalf("persons = %d", len(persons))
	}
	if pxml.CertainText(persons[0], "nm") != "John" || pxml.CertainText(persons[1], "tel") != "3333" {
		t.Fatalf("person contents wrong:\n%s", tr)
	}
}

func TestDecodeTextAndEntities(t *testing.T) {
	tr, err := xmlcodec.DecodeString(`<movie><title>Jaws &amp; Jaws 2 &lt;uncut&gt;</title></movie>`)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	title := pxml.CertainText(tr.RootElements()[0], "title")
	if title != "Jaws & Jaws 2 <uncut>" {
		t.Fatalf("title = %q", title)
	}
}

func TestDecodeAttributesBecomeAttrElements(t *testing.T) {
	tr, err := xmlcodec.DecodeString(`<movie id="m1" lang="en"><title>Jaws</title></movie>`)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	movie := tr.RootElements()[0]
	if got := pxml.CertainText(movie, "@id"); got != "m1" {
		t.Fatalf("@id = %q", got)
	}
	if got := pxml.CertainText(movie, "@lang"); got != "en" {
		t.Fatalf("@lang = %q", got)
	}
}

func TestDecodeProbabilisticMarkers(t *testing.T) {
	tr, err := xmlcodec.DecodeString(`
		<person>
			<nm>John</nm>
			<_prob>
				<_poss p="0.5"><tel>1111</tel></_poss>
				<_poss p="0.5"><tel>2222</tel></_poss>
			</_prob>
		</person>`)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if tr.IsCertain() {
		t.Fatalf("tree with genuine choice point reported certain")
	}
	if tr.WorldCount().Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("world count = %s, want 2", tr.WorldCount())
	}
}

func TestDecodeEmptyAlternative(t *testing.T) {
	tr, err := xmlcodec.DecodeString(`
		<person>
			<_prob>
				<_poss p="0.8"><tel>1111</tel></_poss>
				<_poss p="0.2"/>
			</_prob>
		</person>`)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if tr.WorldCount().Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("world count = %s, want 2 (tel present / absent)", tr.WorldCount())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", ``, "empty document"},
		{"malformed", `<a><b></a>`, "xmlcodec"},
		{"root marker", `<_prob/>`, "document element may not be"},
		{"poss outside prob", `<a><_poss p="1"/></a>`, "outside"},
		{"prob with text", `<a><_prob>hello</_prob></a>`, "text inside"},
		{"prob with elem", `<a><_prob><b/></_prob></a>`, "may only contain"},
		{"prob empty", `<a><_prob></_prob></a>`, "without alternatives"},
		{"poss missing p", `<a><_prob><_poss/></_prob></a>`, "requires attribute p"},
		{"poss bad p", `<a><_prob><_poss p="oops"/></_prob></a>`, "oops"},
		{"poss zero p", `<a><_prob><_poss p="0"/></_prob></a>`, "out of range"},
		{"poss big p", `<a><_prob><_poss p="1.5"/></_prob></a>`, "out of range"},
		{"poss extra attr", `<a><_prob><_poss p="1" q="2"/></_prob></a>`, "not allowed"},
		{"prob attr", `<a><_prob x="1"><_poss p="1"/></_prob></a>`, "takes no attributes"},
		{"poss nested poss", `<a><_prob><_poss p="1"><_poss p="1"/></_poss></_prob></a>`, "may not directly contain"},
		{"probs sum wrong", `<a><_prob><_poss p="0.5"/><_poss p="0.1"/></_prob></a>`, "sum"},
		{"poss text", `<a><_prob><_poss p="1">txt</_poss></_prob></a>`, "text inside"},
		{"two roots", `<a/><b/>`, "xmlcodec"},
		{"text after root", `<a/>extra`, "xmlcodec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := xmlcodec.DecodeString(tc.in)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing %q", err.Error(), tc.want)
			}
		})
	}
}

func TestEncodeCertainProducesPlainXML(t *testing.T) {
	tr, err := xmlcodec.DecodeString(`<addressbook><person><nm>John</nm></person></addressbook>`)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	out, err := xmlcodec.EncodeString(tr, xmlcodec.EncodeOptions{})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if strings.Contains(out, xmlcodec.ProbTag) {
		t.Fatalf("certain document should not contain markers: %s", out)
	}
	if !strings.Contains(out, "<nm>John</nm>") {
		t.Fatalf("output = %s", out)
	}
}

func TestEncodeEscapesText(t *testing.T) {
	tr := pxml.CertainTree(pxml.NewElem("m", "", pxml.Certain(pxml.NewLeaf("t", `a<b>&"c`))))
	out, err := xmlcodec.EncodeString(tr, xmlcodec.EncodeOptions{})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if strings.Contains(out, "<b>") {
		t.Fatalf("unescaped text in output: %s", out)
	}
	back, err := xmlcodec.DecodeString(out)
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if got := pxml.CertainText(back.RootElements()[0], "t"); got != `a<b>&"c` {
		t.Fatalf("round-tripped text = %q", got)
	}
}

func TestEncodeAttrElementsBecomeAttributes(t *testing.T) {
	tr, err := xmlcodec.DecodeString(`<movie id="m1"><title>Jaws</title></movie>`)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	out, err := xmlcodec.EncodeString(tr, xmlcodec.EncodeOptions{})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !strings.Contains(out, `id="m1"`) {
		t.Fatalf("attribute not restored: %s", out)
	}
}

func TestEncodeFig2ContainsMarkers(t *testing.T) {
	out, err := xmlcodec.EncodeString(pxmltest.Fig2Tree(), xmlcodec.EncodeOptions{Indent: "  "})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for _, want := range []string{"<_prob>", `<_poss p="0.6">`, `<_poss p="0.4">`, `p="0.5"`, "<tel>1111</tel>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEncodeRejectsMultiRootChoice(t *testing.T) {
	root := pxml.NewProb(
		pxml.NewPoss(0.5, pxml.NewLeaf("a", "")),
		pxml.NewPoss(0.5, pxml.NewLeaf("b", "")),
	)
	tr := pxml.MustTree(root)
	if _, err := xmlcodec.EncodeString(tr, xmlcodec.EncodeOptions{}); err == nil {
		t.Fatalf("expected error for uncertain document element")
	}
}

func TestRoundTripExactWithKeepTrivial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := pxmltest.DefaultGenConfig()
	cfg.AllowEmptyAlt = false // empty leaves re-decode as leaf without text distinction
	for i := 0; i < 40; i++ {
		tr := pxmltest.RandomTree(rng, cfg)
		out, err := xmlcodec.EncodeString(tr, xmlcodec.EncodeOptions{KeepTrivial: true, Indent: " "})
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		back, err := xmlcodec.DecodeString(out)
		if err != nil {
			t.Fatalf("Decode round trip %d: %v\n%s", i, err, out)
		}
		if !pxml.Equal(tr.Root(), back.Root()) {
			t.Fatalf("round trip %d not exact:\nwant\n%s\ngot\n%s\nxml\n%s", i, tr, back, out)
		}
	}
}

func TestRoundTripCompactPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := pxmltest.RandomTree(rng, pxmltest.DefaultGenConfig())
		out, err := xmlcodec.EncodeString(tr, xmlcodec.EncodeOptions{})
		if err != nil {
			return false
		}
		back, err := xmlcodec.DecodeString(out)
		if err != nil {
			return false
		}
		if back.Validate() != nil {
			return false
		}
		// Compact form may regroup trivial wrappers, but world count and
		// deep content must be preserved.
		if tr.WorldCount().Cmp(back.WorldCount()) != 0 {
			return false
		}
		return pxml.DeepEqualElems(tr.RootElements()[0], back.RootElements()[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeIndentIsStable(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	a, err := xmlcodec.EncodeString(tr, xmlcodec.EncodeOptions{Indent: "  ", ProbDigits: 4})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	b, err := xmlcodec.EncodeString(tr, xmlcodec.EncodeOptions{Indent: "  ", ProbDigits: 4})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if a != b {
		t.Fatalf("encoding not deterministic")
	}
	if !strings.Contains(a, "\n") {
		t.Fatalf("indented output should be multi-line")
	}
}

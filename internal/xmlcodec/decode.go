// Package xmlcodec converts between textual XML and the probabilistic XML
// model of package pxml. It replaces the shredding/serialization role that
// MonetDB/XQuery plays for the original IMPrECISE prototype.
//
// Plain XML documents parse to certain probabilistic trees. Probabilistic
// documents are written — and read back — using two marker elements:
//
//	<_prob> ... </_prob>            a choice point
//	<_poss p="0.4"> ... </_poss>    one alternative with its probability
//
// Attributes of regular elements are represented as child leaf elements
// whose tag is the attribute name prefixed with "@" (the model itself has
// no attributes; this keeps attribute data queryable like any element).
package xmlcodec

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/pxml"
)

// Marker element names used in the textual representation of probabilistic
// documents.
const (
	ProbTag = "_prob"
	PossTag = "_poss"
	// AttrPrefix prefixes element tags that represent XML attributes.
	AttrPrefix = "@"
)

// SyntaxError reports a structural problem in the probabilistic markup.
type SyntaxError struct {
	Msg string
}

func (e *SyntaxError) Error() string { return "xmlcodec: " + e.Msg }

func syntaxErrf(format string, args ...any) error {
	return &SyntaxError{Msg: fmt.Sprintf(format, args...)}
}

// Decode parses an XML document — plain or with probabilistic markers —
// into a probabilistic tree. The document element becomes the single
// certain root element of the tree.
func Decode(r io.Reader) (*pxml.Tree, error) {
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, syntaxErrf("empty document")
		}
		if err != nil {
			return nil, fmt.Errorf("xmlcodec: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if name(t.Name) == ProbTag || name(t.Name) == PossTag {
				return nil, syntaxErrf("document element may not be a %s marker", name(t.Name))
			}
			elem, err := decodeElem(dec, t)
			if err != nil {
				return nil, err
			}
			if err := skipTrailing(dec); err != nil {
				return nil, err
			}
			// Hash-cons the decoded document: repeated subtrees (common in
			// catalog-shaped sources) collapse into shared nodes, which
			// shrinks memory and makes summary/index work proportional to
			// physical — not logical — size.
			return pxml.InternTree(pxml.CertainTree(elem)), nil
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return nil, syntaxErrf("text outside document element")
			}
		case xml.ProcInst, xml.Comment, xml.Directive:
			// ignore
		}
	}
}

// DecodeString is Decode over a string.
func DecodeString(s string) (*pxml.Tree, error) {
	return Decode(strings.NewReader(s))
}

func skipTrailing(dec *xml.Decoder) error {
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("xmlcodec: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			return syntaxErrf("multiple document elements")
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return syntaxErrf("text after document element")
			}
		default:
			_ = t
		}
	}
}

func name(n xml.Name) string {
	if n.Space != "" {
		return n.Space + ":" + n.Local
	}
	return n.Local
}

// decodeElem parses the contents of a regular element, whose start tag has
// already been consumed, up to and including its end tag.
func decodeElem(dec *xml.Decoder, start xml.StartElement) (*pxml.Node, error) {
	tag := name(start.Name)
	var probKids []*pxml.Node
	for _, a := range start.Attr {
		if isNamespaceDecl(a) {
			continue
		}
		probKids = append(probKids, pxml.Certain(pxml.NewLeaf(AttrPrefix+name(a.Name), a.Value)))
	}
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlcodec: in <%s>: %w", tag, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch name(t.Name) {
			case ProbTag:
				prob, err := decodeProb(dec, t)
				if err != nil {
					return nil, err
				}
				probKids = append(probKids, prob)
			case PossTag:
				return nil, syntaxErrf("<%s> outside <%s> in <%s>", PossTag, ProbTag, tag)
			default:
				kid, err := decodeElem(dec, t)
				if err != nil {
					return nil, err
				}
				probKids = append(probKids, pxml.Certain(kid))
			}
		case xml.CharData:
			text.Write(t)
		case xml.EndElement:
			return pxml.NewElem(tag, strings.TrimSpace(text.String()), probKids...), nil
		}
	}
}

// decodeProb parses a <_prob> marker into a ProbNode.
func decodeProb(dec *xml.Decoder, start xml.StartElement) (*pxml.Node, error) {
	if len(start.Attr) != 0 && !allNamespaceDecls(start.Attr) {
		return nil, syntaxErrf("<%s> takes no attributes", ProbTag)
	}
	var poss []*pxml.Node
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlcodec: in <%s>: %w", ProbTag, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if name(t.Name) != PossTag {
				return nil, syntaxErrf("<%s> may only contain <%s>, found <%s>", ProbTag, PossTag, name(t.Name))
			}
			p, err := decodePoss(dec, t)
			if err != nil {
				return nil, err
			}
			poss = append(poss, p)
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return nil, syntaxErrf("text inside <%s>", ProbTag)
			}
		case xml.EndElement:
			if len(poss) == 0 {
				return nil, syntaxErrf("<%s> without alternatives", ProbTag)
			}
			tree := pxml.CertainTree(pxml.NewElem("_check", "", pxml.NewProb(poss...)))
			if err := tree.Validate(); err != nil {
				return nil, syntaxErrf("invalid choice point: %v", err)
			}
			return pxml.NewProb(poss...), nil
		}
	}
}

// decodePoss parses a <_poss p="..."> marker into a PossNode.
func decodePoss(dec *xml.Decoder, start xml.StartElement) (*pxml.Node, error) {
	prob := -1.0
	for _, a := range start.Attr {
		if isNamespaceDecl(a) {
			continue
		}
		if name(a.Name) != "p" {
			return nil, syntaxErrf("<%s> attribute %q not allowed", PossTag, name(a.Name))
		}
		v, err := strconv.ParseFloat(a.Value, 64)
		if err != nil {
			return nil, syntaxErrf("<%s p=%q>: %v", PossTag, a.Value, err)
		}
		prob = v
	}
	if prob < 0 {
		return nil, syntaxErrf("<%s> requires attribute p", PossTag)
	}
	if prob == 0 || prob > 1 {
		return nil, syntaxErrf("<%s p=%g>: probability out of range (0,1]", PossTag, prob)
	}
	var elems []*pxml.Node
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlcodec: in <%s>: %w", PossTag, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch name(t.Name) {
			case ProbTag, PossTag:
				return nil, syntaxErrf("<%s> may not directly contain <%s>", PossTag, name(t.Name))
			default:
				kid, err := decodeElem(dec, t)
				if err != nil {
					return nil, err
				}
				elems = append(elems, kid)
			}
		case xml.CharData:
			if strings.TrimSpace(string(t)) != "" {
				return nil, syntaxErrf("text inside <%s>", PossTag)
			}
		case xml.EndElement:
			return pxml.NewPoss(prob, elems...), nil
		}
	}
}

func isNamespaceDecl(a xml.Attr) bool {
	return a.Name.Local == "xmlns" || a.Name.Space == "xmlns"
}

func allNamespaceDecls(attrs []xml.Attr) bool {
	for _, a := range attrs {
		if !isNamespaceDecl(a) {
			return false
		}
	}
	return true
}

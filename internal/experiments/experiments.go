// Package experiments reproduces every table and figure of the paper's
// evaluation (§V–§VI) on the synthetic catalog. The same code backs the
// bench harness (bench_test.go) and the experiments command
// (cmd/experiments); EXPERIMENTS.md records paper-vs-measured output.
//
// Node counts are taken from the raw (unnormalized) integration result,
// matching what the original system stores; the paper reports sizes in
// units of 100 nodes ("#nodes (x100)").
package experiments

import (
	"fmt"
	"math/big"
	"time"

	"repro/internal/datagen"
	"repro/internal/integrate"
	"repro/internal/oracle"
	"repro/internal/pxml"
	"repro/internal/quality"
	"repro/internal/query"
)

// integrateRaw runs one integration with movie-domain defaults.
func integrateRaw(pair datagen.Pair, set oracle.RuleSet, truncate bool) (*pxml.Tree, *integrate.Stats, error) {
	return integrate.Integrate(pair.A.Tree, pair.B.Tree, integrate.Config{
		Oracle:              oracle.MovieOracle(set),
		Schema:              datagen.MovieDTD(),
		SkipNormalize:       true,
		TruncateOnExplosion: truncate,
	})
}

// --- Table I ---

// Table1Row is one row of the paper's Table I: the effect of rules on
// uncertainty.
type Table1Row struct {
	Set        oracle.RuleSet
	Nodes      int64
	Worlds     *big.Int
	Undecided  int
	PaperNodes int64 // the paper's "#nodes (x100)" column, times 100
}

// paperTable1 is Table I of the paper (×100 units expanded).
var paperTable1 = map[oracle.RuleSet]int64{
	oracle.SetNone:           1395800,
	oracle.SetGenre:          601500,
	oracle.SetTitle:          24300,
	oracle.SetGenreTitle:     15400,
	oracle.SetGenreTitleYear: 2900,
}

// Table1 integrates the Table I scenario (two sequels per franchise per
// source, one shared rwo each) under each rule set.
func Table1() ([]Table1Row, error) {
	pair := datagen.TableISources()
	sets := []oracle.RuleSet{
		oracle.SetNone, oracle.SetGenre, oracle.SetTitle,
		oracle.SetGenreTitle, oracle.SetGenreTitleYear,
	}
	rows := make([]Table1Row, 0, len(sets))
	for _, set := range sets {
		res, stats, err := integrateRaw(pair, set, false)
		if err != nil {
			return nil, fmt.Errorf("table1 %v: %w", set, err)
		}
		rows = append(rows, Table1Row{
			Set:        set,
			Nodes:      res.NodeCount(),
			Worlds:     res.WorldCount(),
			Undecided:  stats.UndecidedPairs,
			PaperNodes: paperTable1[set],
		})
	}
	return rows, nil
}

// --- Figure 5 ---

// Fig5Point is one measurement of the scalability experiment: integrating
// 6 MPEG-7 movies with a growing number of confusing IMDB movies.
type Fig5Point struct {
	N     int
	Set   oracle.RuleSet
	Nodes int64
}

// Figure5Sets are the two series the paper plots.
var Figure5Sets = []oracle.RuleSet{oracle.SetTitle, oracle.SetGenreTitleYear}

// Figure5 sweeps the IMDB-source size for both rule series.
func Figure5(ns []int, seed int64) ([]Fig5Point, error) {
	var out []Fig5Point
	for _, n := range ns {
		pair := datagen.Confusing(n, seed)
		for _, set := range Figure5Sets {
			res, _, err := integrateRaw(pair, set, false)
			if err != nil {
				return nil, fmt.Errorf("fig5 n=%d %v: %w", n, set, err)
			}
			out = append(out, Fig5Point{N: n, Set: set, Nodes: res.NodeCount()})
		}
	}
	return out, nil
}

// DefaultFigure5Ns mirrors the paper's x axis (0..60 IMDB movies).
func DefaultFigure5Ns() []int { return []int{0, 6, 12, 18, 24, 30, 36, 42, 48, 54, 60} }

// --- typical conditions (§V text) ---

// TypicalResult captures the paper's "typical situation" numbers: 6 vs 60
// movies with 2 shared rwos integrate to ~3500 nodes, 4 possible worlds
// and 2 undecided matches.
type TypicalResult struct {
	Nodes     int64
	Worlds    *big.Int
	Undecided int
}

// Typical runs the typical-conditions integration with the full rule set.
func Typical() (TypicalResult, error) {
	pair := datagen.Typical(6, 60, 2, 3)
	res, stats, err := integrateRaw(pair, oracle.SetFull, false)
	if err != nil {
		return TypicalResult{}, err
	}
	return TypicalResult{
		Nodes:     res.NodeCount(),
		Worlds:    res.WorldCount(),
		Undecided: stats.UndecidedPairs,
	}, nil
}

// --- the §VI query experiments ---

// QueryExperiment is a query evaluated against the confusing integration.
type QueryExperiment struct {
	Query   string
	Worlds  *big.Int
	Nodes   int64
	Method  query.Method
	Answers []query.Answer
}

// QueryDocument builds the integrated document the paper queries: a
// confusing integration retaining sequel confusion (genre and title rules,
// no year rule).
func QueryDocument() (*pxml.Tree, error) {
	pair := datagen.Confusing(12, 1)
	res, _, err := integrate.Integrate(pair.A.Tree, pair.B.Tree, integrate.Config{
		Oracle: oracle.MovieOracle(oracle.SetGenreTitle),
		Schema: datagen.MovieDTD(),
	})
	return res, err
}

// HorrorQuery is the paper's first example query.
const HorrorQuery = `//movie[.//genre="Horror"]/title`

// JohnQuery is the paper's second example query.
const JohnQuery = `//movie[some $d in .//director satisfies contains($d,"John")]/title`

// RunQuery evaluates one of the §VI queries on a prebuilt document.
func RunQuery(doc *pxml.Tree, src string) (QueryExperiment, error) {
	q, err := query.Compile(src)
	if err != nil {
		return QueryExperiment{}, err
	}
	res, err := query.Eval(doc, q, query.Options{})
	if err != nil {
		return QueryExperiment{}, err
	}
	return QueryExperiment{
		Query:   src,
		Worlds:  doc.WorldCount(),
		Nodes:   doc.NodeCount(),
		Method:  res.Method,
		Answers: res.Answers,
	}, nil
}

// --- answer quality (§VII, ref [13]) ---

// QualityRow is one (rule set, query) quality measurement.
type QualityRow struct {
	Set     oracle.RuleSet
	Query   string
	Report  quality.Report
	Answers int
}

// QualitySets are the rule sets compared in the quality experiment (all
// include the title rule; without it the candidate component explodes).
var QualitySets = []oracle.RuleSet{
	oracle.SetTitle, oracle.SetGenreTitle, oracle.SetGenreTitleYear, oracle.SetFull,
}

// Quality measures probability-weighted precision/recall of the ranked
// answers against the ground-truth catalog, across rule sets.
func Quality() ([]QualityRow, error) {
	pair := datagen.Confusing(12, 1)
	queries := []string{HorrorQuery, JohnQuery, `//movie/title`}
	var rows []QualityRow
	for _, set := range QualitySets {
		tree, _, err := integrate.Integrate(pair.A.Tree, pair.B.Tree, integrate.Config{
			Oracle: oracle.MovieOracle(set),
			Schema: datagen.MovieDTD(),
		})
		if err != nil {
			return nil, fmt.Errorf("quality %v: %w", set, err)
		}
		for _, qs := range queries {
			q := query.MustCompile(qs)
			res, err := query.Eval(tree, q, query.Options{})
			if err != nil {
				return nil, err
			}
			truthRes, err := query.Eval(pair.Truth, q, query.Options{})
			if err != nil {
				return nil, err
			}
			truth := make([]string, 0, len(truthRes.Answers))
			for _, a := range truthRes.Answers {
				truth = append(truth, a.Value)
			}
			rows = append(rows, QualityRow{
				Set:     set,
				Query:   qs,
				Report:  quality.Evaluate(res.Answers, truth),
				Answers: len(res.Answers),
			})
		}
	}
	return rows, nil
}

// --- ablation: component factorization (DESIGN E8) ---

// AblationResult compares integration with and without independent-
// component factorization.
type AblationResult struct {
	FactoredNodes     int64
	MonolithicNodes   int64
	FactoredWorlds    *big.Int
	MonolithicWorlds  *big.Int
	FactoredElapsed   time.Duration
	MonolithicElapsed time.Duration
	FactoredLargest   int
	MonolithicLargest int
}

// Ablation runs the factorization ablation on a typical catalog, where
// shared rwos form several independent match groups.
func Ablation() (AblationResult, error) {
	pair := datagen.Typical(6, 12, 4, 5)
	run := func(disable bool) (*pxml.Tree, *integrate.Stats, time.Duration, error) {
		start := time.Now()
		res, stats, err := integrate.Integrate(pair.A.Tree, pair.B.Tree, integrate.Config{
			Oracle:                        oracle.MovieOracle(oracle.SetGenreTitleYear),
			Schema:                        datagen.MovieDTD(),
			SkipNormalize:                 true,
			DisableComponentFactorization: disable,
		})
		return res, stats, time.Since(start), err
	}
	f, fs, fd, err := run(false)
	if err != nil {
		return AblationResult{}, err
	}
	m, ms, md, err := run(true)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		FactoredNodes:     f.NodeCount(),
		MonolithicNodes:   m.NodeCount(),
		FactoredWorlds:    f.WorldCount(),
		MonolithicWorlds:  m.WorldCount(),
		FactoredElapsed:   fd,
		MonolithicElapsed: md,
		FactoredLargest:   fs.LargestComponent,
		MonolithicLargest: ms.LargestComponent,
	}, nil
}

// --- evaluator comparison (DESIGN E9) ---

// EvaluatorResult compares the three query evaluation strategies.
type EvaluatorResult struct {
	Query         string
	Worlds        *big.Int
	ExactElapsed  time.Duration
	EnumElapsed   time.Duration
	SampleElapsed time.Duration
	// MaxDeltaEnum is the worst |P_exact − P_enumerate| across answers
	// (should be ≈ 0); MaxDeltaSample the worst sampling error.
	MaxDeltaEnum   float64
	MaxDeltaSample float64
}

// Evaluators runs all three strategies on an enumerable confusing
// integration and reports agreement and latency.
func Evaluators() ([]EvaluatorResult, error) {
	pair := datagen.Confusing(6, 1)
	tree, _, err := integrate.Integrate(pair.A.Tree, pair.B.Tree, integrate.Config{
		Oracle: oracle.MovieOracle(oracle.SetGenreTitleYear),
		Schema: datagen.MovieDTD(),
	})
	if err != nil {
		return nil, err
	}
	var out []EvaluatorResult
	for _, qs := range []string{HorrorQuery, JohnQuery} {
		q := query.MustCompile(qs)
		r := EvaluatorResult{Query: qs, Worlds: tree.WorldCount()}

		start := time.Now()
		exact, err := query.EvalExact(tree, q, 0)
		if err != nil {
			return nil, err
		}
		r.ExactElapsed = time.Since(start)

		start = time.Now()
		enum, err := query.EvalEnumerate(tree, q, 1000000)
		if err != nil {
			return nil, err
		}
		r.EnumElapsed = time.Since(start)

		start = time.Now()
		sampled := query.EvalSample(tree, q, 20000, 7)
		r.SampleElapsed = time.Since(start)

		r.MaxDeltaEnum = maxDelta(exact, enum)
		r.MaxDeltaSample = maxDelta(exact, sampled)
		out = append(out, r)
	}
	return out, nil
}

func maxDelta(a, b []query.Answer) float64 {
	am := map[string]float64{}
	for _, x := range a {
		am[x.Value] = x.P
	}
	worst := 0.0
	seen := map[string]bool{}
	for _, x := range b {
		d := am[x.Value] - x.P
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
		seen[x.Value] = true
	}
	for v, p := range am {
		if !seen[v] && p > worst {
			worst = p
		}
	}
	return worst
}

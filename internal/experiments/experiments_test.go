package experiments_test

import (
	"math/big"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/oracle"
	"repro/internal/query"
)

// TestTableIShape asserts the paper's Table I qualitative result: every
// added rule reduces the integration size, with a large drop at the title
// rule (the paper's 13958 → 6015 → 243 → 154 → 29, ×100 nodes).
func TestTableIShape(t *testing.T) {
	rows, err := experiments.Table1()
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Nodes >= rows[i-1].Nodes {
			t.Errorf("row %v (%d nodes) not smaller than %v (%d nodes)",
				rows[i].Set, rows[i].Nodes, rows[i-1].Set, rows[i-1].Nodes)
		}
	}
	// The genre rule alone cuts the size by a factor ≈ 2–4 (paper: 2.3).
	genreRatio := float64(rows[0].Nodes) / float64(rows[1].Nodes)
	if genreRatio < 1.5 || genreRatio > 6 {
		t.Errorf("genre-rule reduction = %.2fx, want paper-like 1.5–6x", genreRatio)
	}
	// The title rule changes the regime by orders of magnitude (paper 57x;
	// our catalog separates franchises even more sharply).
	titleRatio := float64(rows[0].Nodes) / float64(rows[2].Nodes)
	if titleRatio < 50 {
		t.Errorf("title-rule reduction = %.2fx, want >= 50x", titleRatio)
	}
	// Undecided pairs fall monotonically too.
	for i := 1; i < len(rows); i++ {
		if rows[i].Undecided > rows[i-1].Undecided {
			t.Errorf("undecided pairs grew from %v to %v", rows[i-1], rows[i])
		}
	}
	// Paper baselines present for the report.
	for _, r := range rows {
		if r.PaperNodes == 0 {
			t.Errorf("missing paper baseline for %v", r.Set)
		}
	}
}

// TestFigure5Shape asserts the scalability figure's qualitative behavior:
// both series grow with the IMDB-source size, and the title-only series
// grows much faster than title+year (the paper's two curves).
func TestFigure5Shape(t *testing.T) {
	ns := []int{0, 12, 24, 36, 48, 60}
	points, err := experiments.Figure5(ns, 1)
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	series := map[oracle.RuleSet][]int64{}
	for _, p := range points {
		series[p.Set] = append(series[p.Set], p.Nodes)
	}
	for set, nodes := range series {
		for i := 1; i < len(nodes); i++ {
			if nodes[i] <= nodes[i-1] {
				t.Errorf("%v series not strictly growing: %v", set, nodes)
				break
			}
		}
	}
	titleOnly := series[oracle.SetTitle]
	withYear := series[oracle.SetGenreTitleYear]
	last := len(ns) - 1
	if titleOnly[last] < 20*withYear[last] {
		t.Errorf("title-only (%d) should dwarf title+year (%d) at n=60",
			titleOnly[last], withYear[last])
	}
	// Title-only growth is superlinear: the node count from n=12 to n=60
	// grows faster than 5x.
	if titleOnly[last] < 5*titleOnly[1] {
		t.Errorf("title-only growth looks linear: %v", titleOnly)
	}
}

// TestTypicalConditions asserts the §V numbers: a typical 6-vs-60
// integration with two shared movies yields exactly 4 possible worlds from
// exactly 2 undecided matches (paper: "only on two occasions 'The Oracle'
// could not make an absolute decision … 4 possible worlds").
func TestTypicalConditions(t *testing.T) {
	r, err := experiments.Typical()
	if err != nil {
		t.Fatalf("Typical: %v", err)
	}
	if r.Undecided != 2 {
		t.Errorf("undecided = %d, want 2", r.Undecided)
	}
	if r.Worlds.Cmp(big.NewInt(4)) != 0 {
		t.Errorf("worlds = %s, want 4", r.Worlds)
	}
	// Size in the low thousands (paper: ~3500 with richer records).
	if r.Nodes < 500 || r.Nodes > 10000 {
		t.Errorf("nodes = %d, want paper-like low thousands", r.Nodes)
	}
}

// TestHorrorQueryShape asserts the first §VI example: the ranked answer
// is short and usable, the two real horror sequels rank at the top with
// very high probability, despite a huge world count.
func TestHorrorQueryShape(t *testing.T) {
	doc, err := experiments.QueryDocument()
	if err != nil {
		t.Fatalf("QueryDocument: %v", err)
	}
	if doc.WorldCount().Cmp(big.NewInt(10000)) <= 0 {
		t.Fatalf("confusing document should have many worlds, got %s", doc.WorldCount())
	}
	r, err := experiments.RunQuery(doc, experiments.HorrorQuery)
	if err != nil {
		t.Fatalf("RunQuery: %v", err)
	}
	if r.Method != query.MethodExact {
		t.Fatalf("method = %v, want exact despite %s worlds", r.Method, r.Worlds)
	}
	byValue := map[string]float64{}
	for _, a := range r.Answers {
		byValue[a.Value] = a.P
	}
	if byValue["Jaws"] < 0.9 || byValue["Jaws 2"] < 0.9 {
		t.Errorf("Jaws/Jaws 2 should rank ≈97%% as in the paper: %v", r.Answers)
	}
	// All answers are Jaws-franchise titles — the ranked answer is usable.
	for _, a := range r.Answers {
		if !strings.Contains(a.Value, "Jaws") {
			t.Errorf("non-horror answer %q (P=%v)", a.Value, a.P)
		}
	}
}

// TestJohnQueryShape asserts the second §VI example: the certain answer at
// 100%, the sequel near the top, and the "II may be a typing mistake"
// artifact present with low probability.
func TestJohnQueryShape(t *testing.T) {
	doc, err := experiments.QueryDocument()
	if err != nil {
		t.Fatalf("QueryDocument: %v", err)
	}
	r, err := experiments.RunQuery(doc, experiments.JohnQuery)
	if err != nil {
		t.Fatalf("RunQuery: %v", err)
	}
	byValue := map[string]float64{}
	for _, a := range r.Answers {
		byValue[a.Value] = a.P
	}
	if p := byValue["Die Hard: With a Vengeance"]; p < 0.999 {
		t.Errorf("P(Die Hard: With a Vengeance) = %v, want 100%% as in the paper", p)
	}
	if p := byValue["Mission: Impossible II"]; p < 0.5 {
		t.Errorf("P(Mission: Impossible II) = %v, want high as in the paper", p)
	}
	artifact := byValue["Mission: Impossible"]
	if artifact <= 0.01 || artifact >= 0.5 {
		t.Errorf("P(Mission: Impossible) = %v, want a low-probability artifact like the paper's 21%%", artifact)
	}
	// Ranking: correct answers above the artifact.
	if !(byValue["Mission: Impossible II"] > artifact) {
		t.Errorf("sequel should outrank the artifact: %v", r.Answers)
	}
}

// TestQualityShape asserts the §VII trade-off: precision never decreases
// when rules are added, and every score stays in [0,1].
func TestQualityShape(t *testing.T) {
	rows, err := experiments.Quality()
	if err != nil {
		t.Fatalf("Quality: %v", err)
	}
	if len(rows) != len(experiments.QualitySets)*3 {
		t.Fatalf("rows = %d", len(rows))
	}
	perQuery := map[string][]float64{}
	for _, r := range rows {
		for name, v := range map[string]float64{
			"precision": r.Report.Precision, "recall": r.Report.Recall,
			"F1": r.Report.F1, "AP": r.Report.AveragePrecision,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%v %s %s = %v out of range", r.Set, r.Query, name, v)
			}
		}
		perQuery[r.Query] = append(perQuery[r.Query], r.Report.Precision)
	}
	for q, precs := range perQuery {
		for i := 1; i < len(precs); i++ {
			if precs[i] < precs[i-1]-0.05 {
				t.Errorf("precision dropped with stronger rules on %s: %v", q, precs)
			}
		}
	}
}

// TestAblationShape asserts that factorization shrinks the representation
// without changing the distribution (world counts equal).
func TestAblationShape(t *testing.T) {
	r, err := experiments.Ablation()
	if err != nil {
		t.Fatalf("Ablation: %v", err)
	}
	if r.FactoredWorlds.Cmp(r.MonolithicWorlds) != 0 {
		t.Errorf("world counts differ: %s vs %s", r.FactoredWorlds, r.MonolithicWorlds)
	}
	if r.FactoredNodes >= r.MonolithicNodes {
		t.Errorf("factorization should reduce nodes: %d vs %d", r.FactoredNodes, r.MonolithicNodes)
	}
	if r.MonolithicLargest <= r.FactoredLargest {
		t.Errorf("monolithic run should have a bigger component: %d vs %d",
			r.MonolithicLargest, r.FactoredLargest)
	}
}

// TestEvaluatorsAgree asserts the three strategies agree: exact equals
// enumeration to float precision, sampling within Monte-Carlo error.
func TestEvaluatorsAgree(t *testing.T) {
	rows, err := experiments.Evaluators()
	if err != nil {
		t.Fatalf("Evaluators: %v", err)
	}
	for _, r := range rows {
		if r.MaxDeltaEnum > 1e-9 {
			t.Errorf("%s: exact vs enumerate delta = %v", r.Query, r.MaxDeltaEnum)
		}
		if r.MaxDeltaSample > 0.05 {
			t.Errorf("%s: sampling delta = %v", r.Query, r.MaxDeltaSample)
		}
	}
}

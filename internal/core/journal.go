// Op journaling: every mutating path of a Database can emit a replayable
// record to an attached Journal (the catalog's per-database write-ahead
// log). Records are emitted under the writer mutex, after the mutation's
// result is computed but before the copy-on-write swap makes it visible —
// so an op is durable before any reader can observe it, and a crash
// between the two is repaired by replay.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dtd"
	"repro/internal/feedback"
	"repro/internal/integrate"
	"repro/internal/pxml"
	"repro/internal/xmlcodec"
)

// OpKind identifies a journaled mutation.
type OpKind string

const (
	// OpIntegrate merges one source document (Sources[0]).
	OpIntegrate OpKind = "integrate"
	// OpBatch merges N source documents atomically (Sources).
	OpBatch OpKind = "batch"
	// OpFeedback applies one judgment (Query, Value, Correct, When).
	OpFeedback OpKind = "feedback"
	// OpNormalize canonicalizes the document.
	OpNormalize OpKind = "normalize"
	// OpReplace swaps the whole document for Tree.
	OpReplace OpKind = "replace"
	// OpLoad installs a snapshot: Tree, optional Schema, and the
	// histories the snapshot carried.
	OpLoad OpKind = "load"
	// OpEnqueue accepts source document(s) into the async ingest queue
	// under Ticket without integrating them yet. The pending queue is
	// journaled state: a crash after the 202 acknowledgement recovers
	// the accepted sources and resumes the queue.
	OpEnqueue OpKind = "enqueue"
	// OpApplyQueued integrates previously enqueued sources (Tickets, in
	// order) in one writer-lock cycle and drops Failed ones. Sources are
	// resolved from the pending queue state, never re-shipped.
	OpApplyQueued OpKind = "apply-queued"
)

// Op is one replayable mutation record. Command-style ops (integrate,
// batch, feedback, normalize) carry their inputs and rely on the engine's
// determinism; state-style ops (replace, load) carry the installed
// document itself, so replay never depends on an external file.
type Op struct {
	Kind OpKind `json:"kind"`
	// Sources is the XML of the integrated source document(s).
	Sources []string `json:"sources,omitempty"`
	// Query, Value, Correct and When describe a feedback judgment; When
	// is recorded so replay reproduces the event timestamp exactly.
	Query   string    `json:"query,omitempty"`
	Value   string    `json:"value,omitempty"`
	Correct bool      `json:"correct,omitempty"`
	When    time.Time `json:"when,omitzero"`
	// Tree and Schema are the installed document (replace/load).
	Tree   string `json:"tree,omitempty"`
	Schema string `json:"schema,omitempty"`
	// Integrations and Events restore the histories a loaded snapshot
	// carried.
	Integrations []integrate.Stats `json:"integrations,omitempty"`
	Events       []feedback.Event  `json:"events,omitempty"`
	// Stats records the per-source integration statistics of an
	// integrate/batch/apply-queued op as they were at commit time.
	// Replay installs these instead of its own recomputed counters: the
	// tree recomputation is deterministic, but the counters depend on
	// how warm the cross-call memo was, and a replay (cold memo, or a
	// follower's own memo state) must still reproduce the original
	// history exactly.
	Stats []integrate.Stats `json:"stats,omitempty"`
	// Ticket names an enqueued source batch (OpEnqueue).
	Ticket string `json:"ticket,omitempty"`
	// Tickets lists the queue entries an OpApplyQueued integrated, in
	// fold order; Failed (with parallel FailedErrors) lists entries it
	// dropped because their integration failed.
	Tickets      []string `json:"tickets,omitempty"`
	Failed       []string `json:"failed,omitempty"`
	FailedErrors []string `json:"failed_errors,omitempty"`

	// SourceTrees and TreeValue are the decoded forms of Sources and
	// Tree. The mutation paths fill them directly (no XML detour), the
	// binary journal/wire encoders carry them as flat arena payloads, and
	// ApplyOp prefers them over re-parsing the strings. They never
	// marshal to JSON; EncodePortable materializes the string fields for
	// encoders that need them.
	SourceTrees []*pxml.Tree `json:"-"`
	TreeValue   *pxml.Tree   `json:"-"`
}

// EncodePortable fills the XML string fields (Sources, Tree) from the
// decoded trees when only the latter are present, so the op can travel
// through JSON encoders (the JSON write-ahead-log mode and the JSON
// replication wire). It is idempotent and leaves already-filled strings
// untouched.
func (op *Op) EncodePortable() error {
	if len(op.Sources) == 0 && len(op.SourceTrees) > 0 {
		op.Sources = make([]string, len(op.SourceTrees))
		for i, t := range op.SourceTrees {
			xml, err := encodeForJournal(t)
			if err != nil {
				return fmt.Errorf("core: encoding source %d: %w", i+1, err)
			}
			op.Sources[i] = xml
		}
	}
	if op.Tree == "" && op.TreeValue != nil {
		xml, err := encodeForJournal(op.TreeValue)
		if err != nil {
			return fmt.Errorf("core: encoding %s tree: %w", op.Kind, err)
		}
		op.Tree = xml
	}
	return nil
}

// Journal receives one record per committed mutation and assigns it a
// strictly increasing sequence number. Record must make the op durable
// before returning: the database treats a successful Record as permission
// to expose the mutation to readers.
type Journal interface {
	Record(op Op) (seq uint64, err error)
}

// EpochJournal is optionally implemented by journals that stamp records
// with a cluster epoch — the fencing term replication uses to reject
// writes from a deposed primary. The catalog's write-ahead log is one.
type EpochJournal interface {
	Journal
	Epoch() uint64
}

// JournalEpoch reports the cluster epoch the attached journal commits
// under, or 0 when no journal is attached or the journal does not track
// epochs (a plain in-memory database).
func (db *Database) JournalEpoch() uint64 {
	db.mu.RLock()
	j := db.journal
	db.mu.RUnlock()
	if ej, ok := j.(EpochJournal); ok {
		return ej.Epoch()
	}
	return 0
}

// SetJournal attaches a journal and seeds the applied-sequence watermark
// (the sequence of the last mutation already reflected in the current
// tree — after recovery, the last replayed record). Passing nil detaches.
// It must not race with in-flight mutations; callers attach before serving
// traffic.
func (db *Database) SetJournal(j Journal, seq uint64) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.commitMu.Lock()
	db.mu.Lock()
	db.journal = j
	db.appliedSeq = seq
	db.mu.Unlock()
	db.commitMu.Unlock()
}

// record journals op. Callers hold commitMu. The returned bool reports
// whether a journal is attached (and therefore whether seq is meaningful).
func (db *Database) record(op Op) (uint64, bool, error) {
	if db.journal == nil {
		return 0, false, nil
	}
	seq, err := db.journal.Record(op)
	if err != nil {
		return 0, true, fmt.Errorf("core: journal %s op: %w", op.Kind, err)
	}
	return seq, true, nil
}

// recordSources journals an integrate/batch op carrying the source trees
// themselves — the journal's encoder picks the representation (binary
// arena or, via EncodePortable, XML) — plus the per-source stats the
// commit installs. Callers hold commitMu.
func (db *Database) recordSources(sources []*pxml.Tree, stats []integrate.Stats) (uint64, bool, error) {
	if db.journal == nil {
		return 0, false, nil
	}
	op := Op{Kind: OpIntegrate, SourceTrees: sources, Stats: stats}
	if len(sources) > 1 {
		op.Kind = OpBatch
	}
	return db.record(op)
}

// recordWithTree journals op carrying the given document. Callers hold
// commitMu.
func (db *Database) recordWithTree(op Op, t *pxml.Tree) (uint64, bool, error) {
	if db.journal == nil {
		return 0, false, nil
	}
	op.TreeValue = t
	return db.record(op)
}

// encodeForJournal renders a tree as marker XML for a journal record. The
// codec round-trips structurally (pxml.Equal), which is what replay
// determinism needs.
func encodeForJournal(t *pxml.Tree) (string, error) {
	return xmlcodec.EncodeString(t, xmlcodec.EncodeOptions{KeepTrivial: true})
}

// decodedTree returns the op's installed document (replace/load),
// preferring the already-decoded form. A tree parsed from the XML string
// is validated here because the string may come from an untrusted log or
// wire; TreeValue producers (mutation paths, the binary decoders) have
// already validated.
func (op *Op) decodedTree() (*pxml.Tree, error) {
	if op.TreeValue != nil {
		return op.TreeValue, nil
	}
	t, err := xmlcodec.DecodeString(op.Tree)
	if err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ApplyOp re-executes one journaled mutation — the replay half of crash
// recovery. It dispatches to the same mutating paths that produced the
// record, so replaying a log prefix reproduces the exact tree and
// histories (integration and feedback engines are deterministic). Callers
// replay with no journal attached, then attach it at the recovered
// sequence.
func (db *Database) ApplyOp(op Op) error {
	switch op.Kind {
	case OpIntegrate, OpBatch:
		trees := op.SourceTrees
		if len(trees) == 0 {
			if len(op.Sources) == 0 {
				return errors.New("core: replay: op has no sources")
			}
			trees = make([]*pxml.Tree, len(op.Sources))
			for i, src := range op.Sources {
				t, err := xmlcodec.DecodeString(src)
				if err != nil {
					return fmt.Errorf("core: replay source %d: %w", i+1, err)
				}
				trees[i] = t
			}
		}
		// Recorded stats (when the log carries them) are installed in
		// place of the recomputed counters; see integrateSources.
		recorded := op.Stats
		if len(recorded) != len(trees) {
			recorded = nil
		}
		_, _, err := db.integrateSources(trees, recorded)
		return err
	case OpFeedback:
		_, err := db.feedbackAt(op.Query, op.Value, op.Correct, op.When)
		return err
	case OpNormalize:
		_, _, err := db.Normalize()
		return err
	case OpReplace:
		t, err := op.decodedTree()
		if err != nil {
			return fmt.Errorf("core: replay replace: %w", err)
		}
		return db.ReplaceTree(t)
	case OpLoad:
		t, err := op.decodedTree()
		if err != nil {
			return fmt.Errorf("core: replay load: %w", err)
		}
		var schema *dtd.Schema
		if op.Schema != "" {
			schema, err = dtd.ParseString(op.Schema)
			if err != nil {
				return fmt.Errorf("core: replay load schema: %w", err)
			}
		}
		return db.installSnapshot(t, schema, op.Integrations, op.Events)
	case OpEnqueue:
		return db.applyEnqueueOp(op)
	case OpApplyQueued:
		return db.applyQueuedOp(op)
	default:
		return fmt.Errorf("core: replay: unknown op kind %q", op.Kind)
	}
}

// SnapshotView is a consistent cut of everything a durable snapshot must
// capture: the document, its schema, the session histories, and the
// journal sequence of the last mutation the tree reflects.
type SnapshotView struct {
	Tree         *pxml.Tree
	Schema       *dtd.Schema
	Integrations []integrate.Stats
	Events       []feedback.Event
	// Pending is the async ingest queue at Seq: accepted-but-unapplied
	// sources. A snapshot that dropped them would lose acknowledged
	// writes whose enqueue record compaction discards.
	Pending []PendingSource
	// Seq is the journal sequence the tree corresponds to; a recovery
	// from this snapshot replays only records with a higher sequence.
	Seq uint64
}

// View returns a consistent SnapshotView. Because the applied sequence is
// advanced inside the same critical section as the tree swap (and the
// pending-queue updates), the tree, queue and sequence can never disagree
// — the compactor relies on that.
func (db *Database) View() SnapshotView {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return SnapshotView{
		Tree:         db.tree,
		Schema:       db.schema,
		Integrations: append([]integrate.Stats(nil), db.integrations...),
		Events:       append([]feedback.Event(nil), db.events...),
		Pending:      append([]PendingSource(nil), db.pending...),
		Seq:          db.appliedSeq,
	}
}

// AppliedSeq returns the journal sequence of the last mutation the
// current tree reflects — an O(1) read for health and replication
// reporting (View copies the histories too; this does not).
func (db *Database) AppliedSeq() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.appliedSeq
}

// TreeSeq returns the current tree and the journal sequence it reflects
// as one consistent pair, without the history copies View makes. The
// log-shipping hot path reads this once per commit per connected
// follower; separate Tree() and AppliedSeq() calls could straddle a
// swap and pair a tree with the wrong sequence.
func (db *Database) TreeSeq() (*pxml.Tree, uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tree, db.appliedSeq
}

// RestoreHistories installs previously persisted session histories (from
// a snapshot manifest), so stats counters survive a restart. It is called
// during recovery, before the write-ahead tail is replayed.
func (db *Database) RestoreHistories(ints []integrate.Stats, evs []feedback.Event) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.mu.Lock()
	db.integrations = append([]integrate.Stats(nil), ints...)
	db.events = append([]feedback.Event(nil), evs...)
	db.mu.Unlock()
}

package core_test

import (
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/pxml"
	"repro/internal/xmlcodec"
)

const bookC = `<addressbook><person><nm>Mary</nm><tel>3333</tel></person></addressbook>`

func decodeTree(t *testing.T, src string) *pxml.Tree {
	t.Helper()
	tr, err := xmlcodec.DecodeString(src)
	if err != nil {
		t.Fatalf("DecodeString: %v", err)
	}
	return tr
}

// TestIntegrateBatchMatchesSequentialFold checks that one batch produces
// exactly the document (and history) that folding the sources in one at a
// time would.
func TestIntegrateBatchMatchesSequentialFold(t *testing.T) {
	batched := openBookA(t)
	statsList, result, err := batched.IntegrateBatch([]*pxml.Tree{decodeTree(t, bookB), decodeTree(t, bookC)})
	if err != nil {
		t.Fatalf("IntegrateBatch: %v", err)
	}
	if len(statsList) != 2 {
		t.Fatalf("stats for %d sources, want 2", len(statsList))
	}
	if !pxml.Equal(result.Root(), batched.Tree().Root()) {
		t.Fatalf("returned tree is not the installed tree")
	}
	if got := len(batched.IntegrationHistory()); got != 2 {
		t.Fatalf("history length = %d, want 2", got)
	}

	sequential := openBookA(t)
	if _, err := sequential.IntegrateXML(strings.NewReader(bookB)); err != nil {
		t.Fatalf("IntegrateXML B: %v", err)
	}
	if _, err := sequential.IntegrateXML(strings.NewReader(bookC)); err != nil {
		t.Fatalf("IntegrateXML C: %v", err)
	}
	if !pxml.Equal(batched.Tree().Root(), sequential.Tree().Root()) {
		t.Fatalf("batch result differs from sequential fold:\nbatch:\n%s\nsequential:\n%s",
			batched.Tree(), sequential.Tree())
	}
}

// TestIntegrateBatchIsAtomic checks all-or-nothing semantics: a failing
// source (here one with a mismatched root tag) leaves the database content
// and history untouched, even when earlier sources integrated fine.
func TestIntegrateBatchIsAtomic(t *testing.T) {
	db := openBookA(t)
	before := db.Tree()
	_, _, err := db.IntegrateBatch([]*pxml.Tree{
		decodeTree(t, bookB),
		decodeTree(t, `<catalog><movie><title>Jaws</title></movie></catalog>`),
	})
	if err == nil {
		t.Fatalf("batch with a mismatched root should fail")
	}
	if !strings.Contains(err.Error(), "source 2 of 2") {
		t.Fatalf("error should name the failing source: %v", err)
	}
	if db.Tree() != before {
		t.Fatalf("failed batch must not touch the document")
	}
	if got := len(db.IntegrationHistory()); got != 0 {
		t.Fatalf("failed batch recorded %d history entries", got)
	}
}

// TestIntegrateBatchXMLRejectsMalformedBeforeIntegrating checks that a
// malformed source fails the whole batch during decoding, before any
// integration work.
func TestIntegrateBatchXMLRejectsMalformedBeforeIntegrating(t *testing.T) {
	db := openBookA(t)
	before := db.Tree()
	_, _, err := db.IntegrateBatchXML([]io.Reader{
		strings.NewReader(bookB),
		strings.NewReader(`<addressbook><person>`),
	})
	if err == nil {
		t.Fatalf("malformed source should fail the batch")
	}
	if db.Tree() != before || len(db.IntegrationHistory()) != 0 {
		t.Fatalf("failed batch must not touch the database")
	}
	if _, _, err := db.IntegrateBatch(nil); err == nil {
		t.Fatalf("empty batch should be an error")
	}
}

// TestIntegrateBatchServesReadersThroughout hammers reads while a batch
// is in flight: queries must always see a consistent snapshot (never an
// intermediate fold state is *observable* as corruption — world counts
// are either pre-batch or post-batch values).
func TestIntegrateBatchServesReadersThroughout(t *testing.T) {
	db := openBookA(t)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Query(`//person/tel`); err != nil {
					t.Errorf("Query during batch: %v", err)
					return
				}
				if err := db.Tree().Validate(); err != nil {
					t.Errorf("invalid snapshot observed: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		if _, _, err := db.IntegrateBatch([]*pxml.Tree{decodeTree(t, bookB), decodeTree(t, bookC)}); err != nil {
			t.Fatalf("IntegrateBatch round %d: %v", i, err)
		}
	}
	close(stop)
	readers.Wait()
}

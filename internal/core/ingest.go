// Async ingest: a bounded per-database FIFO queue that takes integration
// off the request path. Enqueue accepts source documents in O(1) — it
// journals an enqueue record and returns a ticket — and a single
// integrator goroutine (StartIngest) drains the queue, batching every
// source pending at drain time into one writer-lock cycle and one
// journal record.
//
// Crash safety: the pending queue is journaled database state. An
// enqueue advances the applied sequence like any mutation, snapshots
// capture the queue (SnapshotView.Pending), and the apply record names
// its tickets instead of re-shipping sources — so replaying any log
// prefix reproduces exactly the accepted-but-unapplied set, and every
// acknowledged source is integrated exactly once no matter where a crash
// lands.
//
// Locking: Enqueue takes only commitMu (journal append + state update),
// never writeMu — accepting a source never waits behind a long-running
// integration. The drainer is a normal writer: writeMu for the fold,
// commitMu for the commit.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/integrate"
	"repro/internal/pxml"
	"repro/internal/queryindex"
	"repro/internal/store"
	"repro/internal/xmlcodec"
)

// ErrQueueFull is returned by Enqueue when the ingest queue already holds
// IngestDepth accepted-but-unapplied entries. Callers should retry after
// backing off (the HTTP layer maps it to 429 + Retry-After).
var ErrQueueFull = errors.New("core: ingest queue full")

// ErrQueueDisabled is returned by Enqueue when the database was opened
// without an ingest queue (Config.IngestDepth == 0).
var ErrQueueDisabled = errors.New("core: ingest queue disabled")

// ErrUnknownTicket is returned by TicketStatus for tickets the database
// has no record of (never issued, or finished beyond the retention
// window / before the last snapshot).
var ErrUnknownTicket = errors.New("core: unknown ingest ticket")

// ticketRetention bounds how many finished (applied/failed) ticket
// statuses are kept for lookup; older ones are evicted FIFO.
const ticketRetention = 4096

// PendingSource is one accepted-but-unapplied ingest queue entry: the
// source document(s) of a single ticket, applied atomically.
type PendingSource struct {
	Ticket string
	Trees  []*pxml.Tree
}

// TicketState is the lifecycle state of an ingest ticket.
type TicketState string

const (
	// TicketPending means accepted and journaled, not yet integrated.
	TicketPending TicketState = "pending"
	// TicketApplied means integrated into the document.
	TicketApplied TicketState = "applied"
	// TicketFailed means integration failed; the entry was dropped and
	// Error carries the reason.
	TicketFailed TicketState = "failed"
)

// TicketStatus reports the state of one ingest ticket.
type TicketStatus struct {
	Ticket string      `json:"ticket"`
	State  TicketState `json:"state"`
	// Error is the integration failure, for failed tickets.
	Error string `json:"error,omitempty"`
	// Seq is the journal sequence of the apply record, once applied.
	Seq uint64 `json:"seq,omitempty"`
}

// IngestStats is an observability snapshot of the queue.
type IngestStats struct {
	// Enabled reports whether the database was opened with a queue.
	Enabled bool `json:"enabled"`
	// Capacity is the configured depth bound; Depth the current fill.
	Capacity int `json:"capacity"`
	Depth    int `json:"depth"`
	// Accepted, Applied and Failed count tickets over the database's
	// lifetime (restored counts resume after recovery replay).
	Accepted int64 `json:"accepted"`
	Applied  int64 `json:"applied"`
	Failed   int64 `json:"failed"`
}

// IngestStats reports the queue counters.
func (db *Database) IngestStats() IngestStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return IngestStats{
		Enabled:  db.cfg.IngestDepth > 0,
		Capacity: db.cfg.IngestDepth,
		Depth:    len(db.pending),
		Accepted: db.accepted,
		Applied:  db.applied,
		Failed:   db.failed,
	}
}

// PendingCount returns the current queue depth.
func (db *Database) PendingCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.pending)
}

// TicketStatus looks up an ingest ticket. Finished tickets are retained
// for a bounded window; beyond it (or after a snapshot-truncated restart)
// the lookup reports ErrUnknownTicket.
func (db *Database) TicketStatus(ticket string) (TicketStatus, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st, ok := db.statuses[ticket]
	if !ok {
		return TicketStatus{}, ErrUnknownTicket
	}
	return *st, nil
}

// Enqueue accepts source document(s) into the ingest queue as one atomic
// entry and returns its ticket. The entry is journaled before the ticket
// is issued, so an acknowledged source survives a crash; it is integrated
// later by the drain goroutine (StartIngest), in acceptance order.
// Enqueue never waits behind a running integration; when the queue holds
// IngestDepth entries it fails fast with ErrQueueFull.
func (db *Database) Enqueue(trees []*pxml.Tree) (string, error) {
	if db.cfg.IngestDepth <= 0 {
		return "", ErrQueueDisabled
	}
	if len(trees) == 0 {
		return "", errors.New("core: empty enqueue")
	}
	for i, t := range trees {
		if t == nil {
			return "", fmt.Errorf("core: enqueue source %d is nil", i+1)
		}
	}
	db.commitMu.Lock()
	if depth := len(db.pending); depth >= db.cfg.IngestDepth {
		db.commitMu.Unlock()
		return "", fmt.Errorf("%w: %d entries pending", ErrQueueFull, depth)
	}
	db.ticketSeq++
	ticket := "t" + strconv.FormatUint(db.ticketSeq, 10)
	seq, journaled, err := db.record(Op{Kind: OpEnqueue, SourceTrees: trees, Ticket: ticket})
	if err != nil {
		db.ticketSeq--
		db.commitMu.Unlock()
		return "", err
	}
	db.mu.Lock()
	db.pending = append(db.pending, PendingSource{Ticket: ticket, Trees: trees})
	db.statuses[ticket] = &TicketStatus{Ticket: ticket, State: TicketPending}
	db.accepted++
	if journaled {
		db.appliedSeq = seq
	}
	db.mu.Unlock()
	db.commitMu.Unlock()
	db.wakeDrainer()
	return ticket, nil
}

// StartIngest launches the drain goroutine. It is a no-op when the queue
// is disabled or the drainer is already running. Entries recovered into
// the queue by a restart begin draining immediately. Only nodes that may
// mutate (standalone or primary role) should start it — a follower's
// queue advances through replicated apply records instead.
func (db *Database) StartIngest() {
	if db.cfg.IngestDepth <= 0 {
		return
	}
	db.mu.Lock()
	if db.drainWake != nil {
		db.mu.Unlock()
		return
	}
	wake := make(chan struct{}, 1)
	stop := make(chan struct{})
	done := make(chan struct{})
	db.drainWake, db.drainStop, db.drainDone = wake, stop, done
	db.mu.Unlock()
	go db.drainLoop(wake, stop, done)
	db.wakeDrainer()
}

// StopIngest stops the drain goroutine and waits for it to finish its
// current cycle. Pending entries stay queued (and journaled); a later
// StartIngest resumes them. It is a no-op when not running.
func (db *Database) StopIngest() {
	db.mu.Lock()
	stop, done := db.drainStop, db.drainDone
	db.drainWake, db.drainStop, db.drainDone = nil, nil, nil
	db.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// IngestRunning reports whether the drain goroutine is active.
func (db *Database) IngestRunning() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.drainWake != nil
}

func (db *Database) wakeDrainer() {
	db.mu.RLock()
	wake := db.drainWake
	db.mu.RUnlock()
	if wake != nil {
		select {
		case wake <- struct{}{}:
		default: // a wake-up is already queued
		}
	}
}

func (db *Database) drainLoop(wake <-chan struct{}, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-wake:
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			progressed, err := db.drainOnce()
			if err != nil {
				// Journal trouble: the batch stays pending. Back off so a
				// persistently failing log does not spin the drainer.
				select {
				case <-stop:
					return
				case <-time.After(200 * time.Millisecond):
				}
				continue
			}
			if !progressed {
				break
			}
		}
	}
}

// drainOnce integrates every entry pending at call time in one
// writer-lock cycle. Entries whose integration fails are dropped from
// the queue with their error recorded; the rest fold into the document
// left to right and land with a single swap and a single journal record.
// It reports whether it consumed any entries; an error means the commit
// could not be journaled and nothing changed.
func (db *Database) drainOnce() (bool, error) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.mu.RLock()
	batch := append([]PendingSource(nil), db.pending...)
	db.mu.RUnlock()
	if len(batch) == 0 {
		return false, nil
	}
	// The fold runs on snapshots outside every lock readers use; new
	// enqueues may append behind the batch concurrently and are simply
	// left for the next cycle.
	cur := db.Tree()
	var (
		applied    []string
		failed     []string
		failedErrs []string
		statsList  []integrate.Stats
	)
	for _, entry := range batch {
		next, entryStats, err := db.foldIntegrate(cur, entry.Trees)
		if err != nil {
			failed = append(failed, entry.Ticket)
			failedErrs = append(failedErrs, err.Error())
			continue
		}
		cur = next
		applied = append(applied, entry.Ticket)
		statsList = append(statsList, entryStats...)
	}
	var idx *queryindex.Index
	if len(applied) > 0 {
		idx = db.buildIndex(cur)
	}
	op := Op{Kind: OpApplyQueued, Tickets: applied, Failed: failed, FailedErrors: failedErrs, Stats: statsList}
	db.commitMu.Lock()
	seq, journaled, err := db.record(op)
	if err != nil {
		db.commitMu.Unlock()
		return false, err
	}
	db.mu.Lock()
	if len(applied) > 0 {
		db.setTreeLocked(cur, idx)
		db.integrations = append(db.integrations, statsList...)
	}
	if journaled {
		db.appliedSeq = seq
	}
	db.finishBatchLocked(applied, failed, failedErrs, seq)
	db.mu.Unlock()
	db.commitMu.Unlock()
	return true, nil
}

// applyEnqueueOp replays (or, on a follower, applies) an enqueue record:
// the ticket comes from the op, depth limits are not re-checked (the
// entry was already acknowledged), and the drainer is not woken (recovery
// and replication contexts drain under their own control).
func (db *Database) applyEnqueueOp(op Op) error {
	if op.Ticket == "" {
		return errors.New("core: replay: enqueue op without ticket")
	}
	trees, err := op.decodedSources()
	if err != nil {
		return fmt.Errorf("core: replay enqueue %s: %w", op.Ticket, err)
	}
	db.commitMu.Lock()
	seq, journaled, err := db.record(op)
	if err != nil {
		db.commitMu.Unlock()
		return err
	}
	db.mu.Lock()
	db.pending = append(db.pending, PendingSource{Ticket: op.Ticket, Trees: trees})
	db.statuses[op.Ticket] = &TicketStatus{Ticket: op.Ticket, State: TicketPending}
	db.noteTicketLocked(op.Ticket)
	db.accepted++
	if journaled {
		db.appliedSeq = seq
	}
	db.mu.Unlock()
	db.commitMu.Unlock()
	return nil
}

// applyQueuedOp replays (or applies, on a follower) an apply record: the
// named tickets are resolved from the pending queue — their sources were
// journaled by their enqueue records or restored from the snapshot
// manifest — and folded exactly as the original drain cycle folded them.
// The op's recorded Stats are installed in place of the recomputed
// counters (see integrateSources for why).
func (db *Database) applyQueuedOp(op Op) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.mu.RLock()
	byTicket := make(map[string]PendingSource, len(db.pending))
	for _, p := range db.pending {
		byTicket[p.Ticket] = p
	}
	db.mu.RUnlock()
	cur := db.Tree()
	var statsList []integrate.Stats
	sourceCount := 0
	for _, tk := range op.Tickets {
		entry, ok := byTicket[tk]
		if !ok {
			return fmt.Errorf("core: replay: applied ticket %s not in pending queue", tk)
		}
		next, entryStats, err := db.foldIntegrate(cur, entry.Trees)
		if err != nil {
			// The original run applied this entry; a failure here means
			// the replayed state diverged from the recorded one.
			return fmt.Errorf("core: replay: ticket %s no longer integrates: %w", tk, err)
		}
		cur = next
		statsList = append(statsList, entryStats...)
		sourceCount += len(entry.Trees)
	}
	for _, tk := range op.Failed {
		if _, ok := byTicket[tk]; !ok {
			return fmt.Errorf("core: replay: failed ticket %s not in pending queue", tk)
		}
	}
	if len(op.Stats) == sourceCount {
		statsList = append([]integrate.Stats(nil), op.Stats...)
	}
	var idx *queryindex.Index
	if len(op.Tickets) > 0 {
		idx = db.buildIndex(cur)
	}
	db.commitMu.Lock()
	seq, journaled, err := db.record(op)
	if err != nil {
		db.commitMu.Unlock()
		return err
	}
	db.mu.Lock()
	if len(op.Tickets) > 0 {
		db.setTreeLocked(cur, idx)
		db.integrations = append(db.integrations, statsList...)
	}
	if journaled {
		db.appliedSeq = seq
	}
	db.finishBatchLocked(op.Tickets, op.Failed, op.FailedErrors, seq)
	db.mu.Unlock()
	db.commitMu.Unlock()
	return nil
}

// finishBatchLocked removes the named tickets from the pending queue and
// records their final statuses. Callers hold mu.
func (db *Database) finishBatchLocked(applied, failed, failedErrs []string, seq uint64) {
	drop := make(map[string]bool, len(applied)+len(failed))
	for _, tk := range applied {
		drop[tk] = true
	}
	for _, tk := range failed {
		drop[tk] = true
	}
	kept := db.pending[:0]
	for _, p := range db.pending {
		if !drop[p.Ticket] {
			kept = append(kept, p)
		}
	}
	db.pending = kept
	for _, tk := range applied {
		db.finishTicketLocked(tk, TicketApplied, "", seq)
	}
	for i, tk := range failed {
		msg := "integration failed"
		if i < len(failedErrs) {
			msg = failedErrs[i]
		}
		db.finishTicketLocked(tk, TicketFailed, msg, seq)
	}
	db.applied += int64(len(applied))
	db.failed += int64(len(failed))
}

func (db *Database) finishTicketLocked(ticket string, state TicketState, errMsg string, seq uint64) {
	st := db.statuses[ticket]
	if st == nil {
		st = &TicketStatus{Ticket: ticket}
		db.statuses[ticket] = st
	}
	st.State, st.Error, st.Seq = state, errMsg, seq
	db.statusOrder = append(db.statusOrder, ticket)
	for len(db.statusOrder) > ticketRetention {
		old := db.statusOrder[0]
		db.statusOrder = db.statusOrder[1:]
		if s, ok := db.statuses[old]; ok && s.State != TicketPending {
			delete(db.statuses, old)
		}
	}
}

// noteTicketLocked raises the ticket counter past a ticket id issued by a
// previous incarnation, so recovered databases never reissue a live id.
// Callers hold mu (or are in single-threaded recovery).
func (db *Database) noteTicketLocked(ticket string) {
	num, ok := strings.CutPrefix(ticket, "t")
	if !ok {
		return
	}
	n, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return
	}
	if n > db.ticketSeq {
		db.ticketSeq = n
	}
}

// RestorePending installs a snapshot's pending queue (and ticket
// statuses) during recovery, before the write-ahead tail is replayed —
// the queue counterpart of RestoreHistories.
func (db *Database) RestorePending(entries []PendingSource) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.commitMu.Lock()
	db.mu.Lock()
	db.pending = append([]PendingSource(nil), entries...)
	for _, p := range entries {
		db.statuses[p.Ticket] = &TicketStatus{Ticket: p.Ticket, State: TicketPending}
		db.noteTicketLocked(p.Ticket)
	}
	db.accepted += int64(len(entries))
	db.mu.Unlock()
	db.commitMu.Unlock()
}

// EncodePending converts queue entries to their snapshot-manifest form
// (sources as XML strings).
func EncodePending(entries []PendingSource) ([]store.PendingDoc, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	docs := make([]store.PendingDoc, len(entries))
	for i, p := range entries {
		srcs := make([]string, len(p.Trees))
		for j, t := range p.Trees {
			s, err := xmlcodec.EncodeString(t, xmlcodec.EncodeOptions{KeepTrivial: true})
			if err != nil {
				return nil, fmt.Errorf("core: encoding pending %s source %d: %w", p.Ticket, j+1, err)
			}
			srcs[j] = s
		}
		docs[i] = store.PendingDoc{Ticket: p.Ticket, Sources: srcs}
	}
	return docs, nil
}

// DecodePending converts snapshot-manifest queue entries back to their
// in-memory form.
func DecodePending(docs []store.PendingDoc) ([]PendingSource, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	entries := make([]PendingSource, len(docs))
	for i, d := range docs {
		trees := make([]*pxml.Tree, len(d.Sources))
		for j, src := range d.Sources {
			t, err := xmlcodec.DecodeString(src)
			if err != nil {
				return nil, fmt.Errorf("core: decoding pending %s source %d: %w", d.Ticket, j+1, err)
			}
			trees[j] = t
		}
		entries[i] = PendingSource{Ticket: d.Ticket, Trees: trees}
	}
	return entries, nil
}

// decodedSources returns the op's source documents, preferring the
// decoded form (see decodedTree for the validation rationale).
func (op *Op) decodedSources() ([]*pxml.Tree, error) {
	if len(op.SourceTrees) > 0 {
		return op.SourceTrees, nil
	}
	if len(op.Sources) == 0 {
		return nil, errors.New("op has no sources")
	}
	trees := make([]*pxml.Tree, len(op.Sources))
	for i, src := range op.Sources {
		t, err := xmlcodec.DecodeString(src)
		if err != nil {
			return nil, fmt.Errorf("source %d: %w", i+1, err)
		}
		trees[i] = t
	}
	return trees, nil
}

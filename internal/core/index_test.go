package core_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
)

func openFig2DB(t *testing.T) *core.Database {
	t.Helper()
	db, err := core.OpenXML(strings.NewReader(bookA), core.Config{Schema: personDTD})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.IntegrateXMLString(bookB); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestIndexTracksTreeSwaps checks every mutation path installs a fresh
// index whose digest matches the tree it was built for.
func TestIndexTracksTreeSwaps(t *testing.T) {
	db, err := core.OpenXML(strings.NewReader(bookA), core.Config{Schema: personDTD})
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		if got, want := db.Index().Digest(), db.Tree().Digest(); got != want {
			t.Fatalf("%s: index digest %#x != tree digest %#x", stage, got, want)
		}
	}
	check("open")
	builds := db.IndexStats().Builds
	if builds != 1 {
		t.Fatalf("open: builds = %d, want 1", builds)
	}

	if _, err := db.IntegrateXMLString(bookB); err != nil {
		t.Fatal(err)
	}
	check("integrate")

	if _, err := db.Feedback(`//person[nm="John"]/tel`, "2222", false); err != nil {
		t.Fatal(err)
	}
	check("feedback")

	if _, _, err := db.Normalize(); err != nil {
		t.Fatal(err)
	}
	check("normalize")

	if err := db.ReplaceTree(db.Tree()); err != nil {
		t.Fatal(err)
	}
	check("replace")

	st := db.IndexStats()
	if st.Builds < 5 {
		t.Fatalf("index builds = %d, want one per mutation (>= 5)", st.Builds)
	}
	if st.Tags == 0 || st.Elements == 0 {
		t.Fatalf("index stats describe no document: %+v", st)
	}
}

// TestResultCacheServesRepeatsAndInvalidates checks repeat queries hit
// the result cache and mutations invalidate it by tree identity.
func TestResultCacheServesRepeatsAndInvalidates(t *testing.T) {
	db := openFig2DB(t)
	const q = `//person[nm="John"]/tel`

	first, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Plan == nil || first.Plan.CacheHit {
		t.Fatalf("first evaluation claims a cache hit: %+v", first.Plan)
	}
	second, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Plan == nil || !second.Plan.CacheHit {
		t.Fatalf("repeat evaluation not served from cache: %+v", second.Plan)
	}
	if len(first.Answers) != len(second.Answers) {
		t.Fatalf("cached answers differ: %v vs %v", first.Answers, second.Answers)
	}
	stats := db.ResultCacheStats()
	if stats.Hits < 1 || stats.Misses < 1 {
		t.Fatalf("result cache stats = %+v", stats)
	}

	// Feedback swaps the tree; the next evaluation must be fresh (and
	// reflect the conditioned document).
	if _, err := db.Feedback(q, "2222", false); err != nil {
		t.Fatal(err)
	}
	third, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if third.Plan == nil || third.Plan.CacheHit {
		t.Fatalf("post-mutation evaluation served stale cache: %+v", third.Plan)
	}
	if p := third.P("2222"); p > 1e-9 {
		t.Fatalf("rejected answer still has p=%g after feedback", p)
	}
}

// TestQueryEvalRejectsNegativeBudgets pins the satellite bugfix at the
// database layer: negative budgets are explicit errors, not defaults.
func TestQueryEvalRejectsNegativeBudgets(t *testing.T) {
	db := openFig2DB(t)
	for _, opts := range []query.Options{
		{Samples: -1},
		{EnumWorldLimit: -2},
		{LocalWorldLimit: -3},
	} {
		_, err := db.QueryEval(`//person/nm`, opts)
		if !errors.Is(err, query.ErrBadOptions) {
			t.Fatalf("QueryEval(%+v) = %v, want ErrBadOptions", opts, err)
		}
	}
}

// TestQueryMethodsAgreeThroughDatabase evaluates the same query with all
// explicit methods through the database and checks the auto choice equals
// its explicit counterpart bit for bit.
func TestQueryMethodsAgreeThroughDatabase(t *testing.T) {
	db := openFig2DB(t)
	const q = `//person[nm="John"]/tel`
	auto, err := db.QueryEval(q, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Plan == nil || auto.Plan.Method != auto.Method {
		t.Fatalf("auto plan/method mismatch: %+v vs %q", auto.Plan, auto.Method)
	}
	explicit, err := db.QueryEval(q, query.Options{Method: auto.Method})
	if err != nil {
		t.Fatal(err)
	}
	if len(auto.Answers) != len(explicit.Answers) {
		t.Fatalf("answer counts differ")
	}
	for i := range auto.Answers {
		if auto.Answers[i] != explicit.Answers[i] {
			t.Fatalf("answer %d differs: %+v vs %+v", i, auto.Answers[i], explicit.Answers[i])
		}
	}
}

package core_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/query"
)

// TestQuerySingleflightAccounting: N concurrent identical cold queries on a
// fresh database evaluate exactly once. Timing decides whether a given
// caller collapses onto the in-flight evaluation or hits the cache after it
// publishes, but the invariant misses==1 && hits+collapses==N-1 holds
// either way.
func TestQuerySingleflightAccounting(t *testing.T) {
	db := openBookA(t)
	if _, err := db.IntegrateXML(strings.NewReader(bookB)); err != nil {
		t.Fatalf("IntegrateXML: %v", err)
	}

	const clients = 16
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = db.QueryEval(`//person/tel`, query.Options{Workers: 2})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	st := db.ResultCacheStats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single execution)", st.Misses)
	}
	if st.Hits+st.Collapses != clients-1 {
		t.Fatalf("hits=%d collapses=%d, want hits+collapses=%d", st.Hits, st.Collapses, clients-1)
	}
	qs := db.QueryStats()
	if qs.Started != clients || qs.Active != 0 {
		t.Fatalf("query stats = %+v, want started=%d active=0", qs, clients)
	}
}

// TestQueryEvalCtxCanceled: a pre-canceled request context aborts the
// evaluation with ctx.Err() and is counted as a canceled query.
func TestQueryEvalCtxCanceled(t *testing.T) {
	db := openBookA(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryEvalCtx(ctx, `//person/tel`, query.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := db.QueryStats().Canceled; got < 1 {
		t.Fatalf("canceled = %d, want >= 1", got)
	}
}

// TestQueryBudgetAbortCounted: exhausting the node-visit budget surfaces
// ErrBudgetExhausted and increments the budget-abort counter.
func TestQueryBudgetAbortCounted(t *testing.T) {
	db := openBookA(t)
	if _, err := db.IntegrateXML(strings.NewReader(bookB)); err != nil {
		t.Fatalf("IntegrateXML: %v", err)
	}
	_, err := db.QueryEvalCtx(context.Background(), `//person/tel`, query.Options{MaxNodeVisits: 1})
	if !errors.Is(err, query.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if got := db.QueryStats().BudgetAborts; got < 1 {
		t.Fatalf("budget aborts = %d, want >= 1", got)
	}
}

package core_test

import (
	"math"
	"math/big"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/pxml"
	"repro/internal/query"
	"repro/internal/xmlcodec"
)

var personDTD = dtd.MustParse(`
	<!ELEMENT addressbook (person*)>
	<!ELEMENT person (nm, tel?)>
	<!ELEMENT nm (#PCDATA)>
	<!ELEMENT tel (#PCDATA)>
`)

const bookA = `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`
const bookB = `<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`

func openBookA(t *testing.T) *core.Database {
	t.Helper()
	db, err := core.OpenXML(strings.NewReader(bookA), core.Config{Schema: personDTD})
	if err != nil {
		t.Fatalf("OpenXML: %v", err)
	}
	return db
}

func TestEndToEndLifecycle(t *testing.T) {
	db := openBookA(t)
	if !db.IsCertain() {
		t.Fatalf("fresh database should be certain")
	}
	stats, err := db.IntegrateXML(strings.NewReader(bookB))
	if err != nil {
		t.Fatalf("IntegrateXML: %v", err)
	}
	if stats.UndecidedPairs == 0 {
		t.Fatalf("integration should report undecided pairs")
	}
	if got := db.WorldCount(); got.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("worlds = %s, want 3 (Figure 2)", got)
	}
	if len(db.IntegrationHistory()) != 1 {
		t.Fatalf("history = %d", len(db.IntegrationHistory()))
	}

	res, err := db.Query(`//person/tel`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("answers = %v", res.Answers)
	}

	// Feedback: 2222 is wrong; the database becomes certain.
	ev, err := db.Feedback(`//person/tel`, "2222", false)
	if err != nil {
		t.Fatalf("Feedback: %v", err)
	}
	if ev.WorldsAfter.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("worlds after feedback = %s", ev.WorldsAfter)
	}
	if !db.IsCertain() {
		t.Fatalf("database should be certain after feedback")
	}
	if len(db.FeedbackHistory()) != 1 {
		t.Fatalf("feedback history = %d", len(db.FeedbackHistory()))
	}
	res, err = db.Query(`//person/tel`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if math.Abs(res.P("1111")-1) > 1e-9 || res.P("2222") != 0 {
		t.Fatalf("answers after feedback = %v", res.Answers)
	}
	if err := db.ValidateAgainstSchema(); err != nil {
		t.Fatalf("schema validation: %v", err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := core.Open(nil, core.Config{}); err == nil {
		t.Fatalf("nil doc should error")
	}
	if _, err := core.OpenXML(strings.NewReader(`<a><b></a>`), core.Config{}); err == nil {
		t.Fatalf("malformed XML should error")
	}
	if _, err := core.OpenXML(strings.NewReader(``), core.Config{}); err == nil {
		t.Fatalf("empty XML should error")
	}
}

func TestQueryErrors(t *testing.T) {
	db := openBookA(t)
	if _, err := db.Query(`not a query`); err == nil {
		t.Fatalf("bad query should error")
	}
	if _, err := db.Feedback(`not a query`, "x", false); err == nil {
		t.Fatalf("bad feedback query should error")
	}
}

func TestIntegrateErrors(t *testing.T) {
	db := openBookA(t)
	if _, err := db.IntegrateXML(strings.NewReader(`<catalog/>`)); err == nil {
		t.Fatalf("root tag mismatch should error")
	}
	if _, err := db.IntegrateXML(strings.NewReader(`broken<`)); err == nil {
		t.Fatalf("broken XML should error")
	}
	// Failed integration leaves the database untouched.
	if !db.IsCertain() || db.WorldCount().Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("database changed after failed integration")
	}
}

func TestExportRoundTrip(t *testing.T) {
	db := openBookA(t)
	if _, err := db.IntegrateXML(strings.NewReader(bookB)); err != nil {
		t.Fatalf("integrate: %v", err)
	}
	var sb strings.Builder
	if err := db.ExportXML(&sb, xmlcodec.EncodeOptions{Indent: "  "}); err != nil {
		t.Fatalf("ExportXML: %v", err)
	}
	back, err := xmlcodec.DecodeString(sb.String())
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if back.WorldCount().Cmp(db.WorldCount()) != 0 {
		t.Fatalf("world count changed over export: %s vs %s", back.WorldCount(), db.WorldCount())
	}
}

func TestNormalizeReportsSizes(t *testing.T) {
	db := openBookA(t)
	if _, err := db.IntegrateXML(strings.NewReader(bookB)); err != nil {
		t.Fatalf("integrate: %v", err)
	}
	before, after, err := db.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if before < after {
		t.Fatalf("normalization grew the document: %d -> %d", before, after)
	}
}

func TestStatsAndOracleAccessors(t *testing.T) {
	db := openBookA(t)
	s := db.Stats()
	if s.LogicalNodes == 0 || s.Worlds.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if db.Oracle() == nil || len(db.Oracle().Rules()) == 0 {
		t.Fatalf("oracle missing")
	}
	if db.Tree() == nil {
		t.Fatalf("tree missing")
	}
}

func TestSequentialIntegrations(t *testing.T) {
	// Integrating a third source into an uncertain database: uncertainty
	// is preserved and new certain data is added.
	db := openBookA(t)
	if _, err := db.IntegrateXML(strings.NewReader(bookB)); err != nil {
		t.Fatalf("first integrate: %v", err)
	}
	bookC := `<addressbook><person><nm>Mary</nm><tel>3333</tel></person></addressbook>`
	neverMatch := core.Config{}
	_ = neverMatch
	if _, err := db.IntegrateXML(strings.NewReader(bookC)); err != nil {
		t.Fatalf("second integrate: %v", err)
	}
	// Mary is certain; the John uncertainty persists.
	res, err := db.Query(`//person[nm="Mary"]/tel`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if math.Abs(res.P("3333")-1) > 1e-6 {
		t.Fatalf("P(3333) = %v, want ~1; answers %v", res.P("3333"), res.Answers)
	}
	if db.WorldCount().Cmp(big.NewInt(1)) <= 0 {
		t.Fatalf("uncertainty lost after second integration")
	}
}

func TestQueryCompiled(t *testing.T) {
	db := openBookA(t)
	q := query.MustCompile(`//person/nm`)
	res, err := db.QueryCompiled(q)
	if err != nil {
		t.Fatalf("QueryCompiled: %v", err)
	}
	if math.Abs(res.P("John")-1) > 1e-9 {
		t.Fatalf("P(John) = %v", res.P("John"))
	}
}

func TestOpenValidatesDocument(t *testing.T) {
	// Construct an invalid tree by bypassing public constructors is not
	// possible here; instead check Open accepts a valid probabilistic doc.
	tr, err := xmlcodec.DecodeString(
		`<a><_prob><_poss p="0.5"><b/></_poss><_poss p="0.5"/></_prob></a>`)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	db, err := core.Open(tr, core.Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if db.IsCertain() {
		t.Fatalf("uncertain doc reported certain")
	}
	var n *pxml.Tree = db.Tree()
	if n == nil {
		t.Fatalf("tree nil")
	}
}

package core_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pxml"
)

const (
	jSrcA = `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`
	jSrcB = `<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`
)

// memJournal records ops in memory and can be told to fail.
type memJournal struct {
	ops  []core.Op
	seq  uint64
	fail error
}

func (j *memJournal) Record(op core.Op) (uint64, error) {
	if j.fail != nil {
		return 0, j.fail
	}
	j.seq++
	j.ops = append(j.ops, op)
	return j.seq, nil
}

func openJournaled(t *testing.T) (*core.Database, *memJournal) {
	t.Helper()
	db, err := core.OpenXML(strings.NewReader(jSrcA), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	j := &memJournal{}
	db.SetJournal(j, 0)
	return db, j
}

// TestJournalReplayReproducesState replays a journal into a fresh
// database and compares everything observable.
func TestJournalReplayReproducesState(t *testing.T) {
	db, j := openJournaled(t)
	if _, err := db.IntegrateXMLString(jSrcB); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Normalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Feedback(`//person[nm="John"]/tel`, "2222", false); err != nil {
		t.Fatal(err)
	}
	if got := db.View().Seq; got != 3 {
		t.Fatalf("View().Seq = %d, want 3", got)
	}

	replica, err := core.OpenXML(strings.NewReader(jSrcA), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range j.ops {
		if err := replica.ApplyOp(op); err != nil {
			t.Fatalf("ApplyOp %d (%s): %v", i, op.Kind, err)
		}
	}
	if !pxml.Equal(replica.Tree().Root(), db.Tree().Root()) {
		t.Fatalf("replayed tree differs:\n%s\nvs\n%s", replica.Tree(), db.Tree())
	}
	a, b := db.FeedbackHistory(), replica.FeedbackHistory()
	if len(a) != 1 || len(b) != 1 || !a[0].When.Equal(b[0].When) || a[0].PriorP != b[0].PriorP {
		t.Fatalf("replayed feedback history differs: %+v vs %+v", a, b)
	}
	ia, ib := db.IntegrationHistory(), replica.IntegrationHistory()
	if len(ia) != len(ib) || ia[0] != ib[0] {
		t.Fatalf("replayed integration history differs: %+v vs %+v", ia, ib)
	}
}

// TestJournalFailureAbortsMutation pins the write-ahead contract: if the
// journal cannot make an op durable, the op must not happen.
func TestJournalFailureAbortsMutation(t *testing.T) {
	db, j := openJournaled(t)
	before := db.Tree()
	j.fail = errors.New("disk full")

	if _, err := db.IntegrateXMLString(jSrcB); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("integrate with failing journal: %v", err)
	}
	if db.Tree() != before {
		t.Fatalf("integrate swapped the tree despite journal failure")
	}
	if len(db.IntegrationHistory()) != 0 {
		t.Fatalf("integration history grew despite journal failure")
	}
	if err := db.ReplaceTree(before); err == nil {
		t.Fatalf("replace with failing journal should fail")
	}

	// Heal the journal: the database must be fully usable, and the
	// aborted feedback below must leave no half-applied session state.
	j.fail = nil
	if _, err := db.IntegrateXMLString(jSrcB); err != nil {
		t.Fatalf("integrate after heal: %v", err)
	}
	j.fail = errors.New("disk full again")
	worlds := db.WorldCount()
	if _, err := db.Feedback(`//person[nm="John"]/tel`, "2222", false); err == nil {
		t.Fatalf("feedback with failing journal should fail")
	}
	if db.WorldCount().Cmp(worlds) != 0 {
		t.Fatalf("feedback conditioned the tree despite journal failure")
	}
	j.fail = nil
	if _, err := db.Feedback(`//person[nm="John"]/tel`, "2222", false); err != nil {
		t.Fatalf("feedback after heal: %v", err)
	}
	if db.FeedbackCount() != 1 {
		t.Fatalf("feedback count = %d", db.FeedbackCount())
	}
}

// Package core ties the IMPrECISE subsystems together into the database
// module of the paper's §IV architecture: probabilistic XML storage at the
// bottom, data integration with "The Oracle" in the middle, and
// probabilistic querying plus user feedback on top.
//
// # Concurrency
//
// A Database is safe for concurrent use. It relies on the immutability of
// pxml nodes: every mutation (IntegrateTree, Feedback, Normalize,
// ReplaceTree, LoadSnapshot) builds a new tree and installs it with a
// copy-on-write pointer swap, so readers (Query, Stats, ExportXML, …)
// snapshot the current tree under a read lock and then work entirely on
// that immutable snapshot without holding any lock. Reads therefore never
// block behind a long-running integration; they simply observe the
// pre-mutation document until the swap lands. Mutations are serialized
// among themselves by a separate writer mutex, so two concurrent
// integrations cannot lose each other's result.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/big"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dtd"
	"repro/internal/feedback"
	"repro/internal/integrate"
	"repro/internal/oracle"
	"repro/internal/pxml"
	"repro/internal/query"
	"repro/internal/queryindex"
	"repro/internal/store"
	"repro/internal/xmlcodec"
)

// Config configures a Database.
type Config struct {
	// Schema is the DTD knowledge used to reject impossible
	// possibilities. Optional.
	Schema *dtd.Schema
	// Rules are the Oracle's knowledge rules (the generic deep-equal rule
	// is always added).
	Rules []oracle.Rule
	// OracleOptions tune the Oracle (prior, estimators, strictness).
	OracleOptions []oracle.Option
	// Integration tunes the integration engine. Its Oracle, Schema and
	// Memo fields are overwritten from this Config.
	Integration integrate.Config
	// MemoEntries caps the cross-call integration memo (verdicts and
	// pair merges reused across integrations). 0 means the default cap
	// (integrate.DefaultMemoEntries); a negative value disables the memo
	// entirely, making every integration cold.
	MemoEntries int
	// IngestDepth bounds the async ingest queue (Enqueue): how many
	// accepted-but-unapplied sources the database holds before pushing
	// back with ErrQueueFull. 0 disables the queue (Enqueue refuses);
	// the synchronous integration paths are unaffected either way.
	IngestDepth int
	// Query sets default evaluation options.
	Query query.Options
	// Feedback bounds the conditioning work of feedback processing.
	Feedback feedback.Options
	// QueryCacheSize caps the compiled-query LRU cache (0 means
	// query.DefaultCacheCapacity).
	QueryCacheSize int
	// ResultCacheSize caps the evaluated-result LRU cache (0 means
	// query.DefaultResultCacheCapacity).
	ResultCacheSize int
}

// Database is a probabilistic XML database with near-automatic
// integration. It is safe for concurrent use: see the package
// documentation for the copy-on-write locking discipline.
type Database struct {
	// writeMu serializes tree mutations end to end, so each mutation
	// reads a settled tree, computes its successor outside mu, and swaps.
	// Enqueue does NOT take it (accepting a source must not wait behind a
	// long-running integration); it only takes commitMu below.
	writeMu sync.Mutex
	// commitMu orders the commit step of every mutation: the journal
	// append and the snapshot update run as one atomic unit under it, so
	// journal sequence order always equals in-memory apply order even
	// though Enqueue commits without holding writeMu. Lock order:
	// writeMu → commitMu → mu.
	commitMu sync.Mutex
	// mu guards the snapshot fields below. Readers hold it only long
	// enough to copy pointers; never during tree traversal.
	mu   sync.RWMutex
	tree *pxml.Tree
	// index is the immutable query index of tree. It is built outside mu
	// (by the mutation that produced the tree) and installed in the same
	// critical section as the tree swap, so a reader always sees a
	// matching (tree, index) pair and queries never rebuild it.
	index        *queryindex.Index
	schema       *dtd.Schema
	session      *feedback.Session
	integrations []integrate.Stats
	// events mirrors session.History() so readers can list feedback
	// without touching the session (which only writers may access).
	events []feedback.Event
	// indexBuilds / indexBuildLast / indexBuildTotal track index
	// construction work for /stats.
	indexBuilds     int64
	indexBuildLast  time.Duration
	indexBuildTotal time.Duration

	// journal receives one replayable record per mutation (see
	// journal.go); appliedSeq is the sequence of the last journaled
	// mutation the current tree reflects, advanced inside the same mu
	// critical section as the tree swap. journal itself is only touched
	// under commitMu.
	journal    Journal
	appliedSeq uint64

	// Async ingest queue state (see ingest.go). pending is journaled
	// database state — enqueuing advances appliedSeq like any mutation,
	// and View captures it so snapshots never drop an accepted source.
	pending   []PendingSource
	ticketSeq uint64
	statuses  map[string]*TicketStatus
	// statusOrder retains finished tickets FIFO for bounded lookback.
	statusOrder []string
	accepted    int64
	applied     int64
	failed      int64
	// drain* control the single integrator goroutine (StartIngest).
	drainWake chan struct{}
	drainStop chan struct{}
	drainDone chan struct{}

	// memo carries oracle verdicts and pair merges across integrations;
	// nil when Config.MemoEntries < 0. Purged by feedback, normalize,
	// replace and snapshot load (the mutations that can invalidate
	// cached decisions).
	memo *integrate.Memo

	// Immutable after Open.
	oracle  *oracle.Oracle
	cfg     Config
	queries *query.Cache
	results *query.ResultCache

	// Query concurrency accounting (see QueryRuntimeStats): a gauge of
	// in-flight evaluations plus counters for early aborts and worker
	// pool scheduling, all updated lock-free on the query path.
	queryActive       atomic.Int64
	queryStarted      atomic.Int64
	queryCanceled     atomic.Int64
	queryBudgetAborts atomic.Int64
	queryPooledTasks  atomic.Int64
	queryInlineTasks  atomic.Int64
}

// Open creates a database over an initial document.
func Open(doc *pxml.Tree, cfg Config) (*Database, error) {
	if doc == nil {
		return nil, errors.New("core: nil document")
	}
	if err := doc.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid document: %w", err)
	}
	db := &Database{
		tree:     doc,
		schema:   cfg.Schema,
		oracle:   oracle.New(cfg.Rules, cfg.OracleOptions...),
		cfg:      cfg,
		queries:  query.NewCache(cfg.QueryCacheSize),
		results:  query.NewResultCache(cfg.ResultCacheSize),
		statuses: make(map[string]*TicketStatus),
	}
	if cfg.MemoEntries >= 0 {
		db.memo = integrate.NewMemo(cfg.MemoEntries)
	}
	db.index = db.buildIndex(doc)
	db.indexBuilds, db.indexBuildLast, db.indexBuildTotal =
		1, db.index.BuildDuration(), db.index.BuildDuration()
	db.session = feedback.NewSession(doc, cfg.Feedback)
	return db, nil
}

// buildIndex constructs the query index for a tree. It runs outside mu —
// index construction is the expensive part of a swap and must never block
// readers — and the caller installs the result together with the tree.
func (db *Database) buildIndex(t *pxml.Tree) *queryindex.Index {
	return queryindex.Build(t)
}

// OpenXML creates a database from an XML document (plain or with
// probabilistic markers).
func OpenXML(r io.Reader, cfg Config) (*Database, error) {
	tree, err := xmlcodec.Decode(r)
	if err != nil {
		return nil, err
	}
	return Open(tree, cfg)
}

// Tree returns the current probabilistic document (an immutable
// snapshot; later mutations swap in a new tree and never touch it).
func (db *Database) Tree() *pxml.Tree {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tree
}

// Schema returns the current DTD knowledge (nil if none).
func (db *Database) Schema() *dtd.Schema {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.schema
}

// Oracle returns the database's rule oracle.
func (db *Database) Oracle() *oracle.Oracle { return db.oracle }

// setTreeLocked swaps the document and its query index in and resets the
// feedback session. Callers must hold writeMu and mu, and must have built
// idx from t outside mu (via buildIndex); keeping the swap plus any
// related state updates in one mu critical section means readers never
// observe a new tree paired with stale sibling state (index, schema,
// histories).
func (db *Database) setTreeLocked(t *pxml.Tree, idx *queryindex.Index) {
	db.tree = t
	db.installIndexLocked(idx)
	db.session = feedback.NewSession(t, db.cfg.Feedback)
	db.events = nil
}

// installIndexLocked records the new index and its build-time statistics.
// The result cache is purged as well: entries are keyed by tree digest so
// stale hits were impossible anyway, but dead entries should not occupy
// capacity. Callers must hold mu.
func (db *Database) installIndexLocked(idx *queryindex.Index) {
	db.index = idx
	db.indexBuilds++
	db.indexBuildLast = idx.BuildDuration()
	db.indexBuildTotal += idx.BuildDuration()
	db.results.Purge()
}

// IntegrateTree integrates another document into the database. The
// database content becomes the probabilistic integration of the current
// document (source A) and the new one (source B).
func (db *Database) IntegrateTree(other *pxml.Tree) (*integrate.Stats, error) {
	_, stats, err := db.IntegrateTreeResult(other)
	return stats, err
}

// IntegrateTreeResult is IntegrateTree returning also the resulting
// tree, for callers that must report on exactly the document their own
// integration produced (a later writer may have swapped in a newer tree
// by the time Tree() is called).
func (db *Database) IntegrateTreeResult(other *pxml.Tree) (*pxml.Tree, *integrate.Stats, error) {
	statsList, res, err := db.integrateSources([]*pxml.Tree{other}, nil)
	if err != nil {
		return nil, nil, err
	}
	return res, &statsList[0], nil
}

// integrationConfig assembles the engine config for one run: the
// database's oracle, current schema and (when enabled) the cross-call
// memo on top of the opener's tuning.
func (db *Database) integrationConfig() integrate.Config {
	cfg := db.cfg.Integration
	cfg.Oracle = db.oracle
	cfg.Schema = db.Schema()
	cfg.Memo = db.memo
	return cfg
}

// MemoStats reports the cross-call integration memo counters (zero
// values when the memo is disabled).
func (db *Database) MemoStats() integrate.MemoStats { return db.memo.Stats() }

// IntegrateBatch integrates a sequence of documents into the database in
// one writer-lock cycle: the sources fold left-to-right into the current
// document and the final tree is installed with a single pointer swap, so
// concurrent readers observe either the pre-batch document or the fully
// integrated one, never an intermediate state. The batch is atomic — if
// any source fails, the database keeps its pre-batch content and the
// error names the failing source. On success the per-source integration
// statistics and the resulting tree are returned.
func (db *Database) IntegrateBatch(sources []*pxml.Tree) ([]integrate.Stats, *pxml.Tree, error) {
	return db.integrateSources(sources, nil)
}

// integrateSources is the shared integrate/batch mutation. When recorded
// is non-nil (journal replay, replicated apply), it must hold one Stats
// per source: the engine's recomputed tree is installed — integration is
// deterministic, so it is pxml.Equal to the original — but the RECORDED
// stats go into the history and the journal, because a replay runs
// against a differently warmed memo and its recomputed counters would
// not match the original run's.
func (db *Database) integrateSources(sources []*pxml.Tree, recorded []integrate.Stats) ([]integrate.Stats, *pxml.Tree, error) {
	if len(sources) == 0 {
		return nil, nil, errors.New("core: empty integration batch")
	}
	if recorded != nil && len(recorded) != len(sources) {
		return nil, nil, fmt.Errorf("core: %d recorded stats for %d sources", len(recorded), len(sources))
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	// The whole fold runs on snapshots, outside mu: queries keep being
	// served from the pre-batch tree until the single swap below.
	cur, statsList, err := db.foldIntegrate(db.Tree(), sources)
	if err != nil {
		return nil, nil, err
	}
	if recorded != nil {
		statsList = append([]integrate.Stats(nil), recorded...)
	}
	idx := db.buildIndex(cur)
	db.commitMu.Lock()
	seq, journaled, err := db.recordSources(sources, statsList)
	if err != nil {
		db.commitMu.Unlock()
		return nil, nil, err
	}
	db.mu.Lock()
	db.setTreeLocked(cur, idx)
	if journaled {
		db.appliedSeq = seq
	}
	db.integrations = append(db.integrations, statsList...)
	db.mu.Unlock()
	db.commitMu.Unlock()
	return statsList, cur, nil
}

// foldIntegrate folds sources left-to-right into base with the
// database's integration config. Callers hold writeMu (the fold bases on
// a settled tree).
func (db *Database) foldIntegrate(base *pxml.Tree, sources []*pxml.Tree) (*pxml.Tree, []integrate.Stats, error) {
	cfg := db.integrationConfig()
	cur := base
	statsList := make([]integrate.Stats, 0, len(sources))
	for i, src := range sources {
		res, stats, err := integrate.Integrate(cur, src, cfg)
		if err != nil {
			if len(sources) == 1 {
				return nil, nil, err
			}
			return nil, nil, fmt.Errorf("core: batch source %d of %d: %w", i+1, len(sources), err)
		}
		cur = res
		statsList = append(statsList, *stats)
	}
	return cur, statsList, nil
}

// IntegrateBatchXML decodes multiple XML sources and integrates them in
// one writer-lock cycle (see IntegrateBatch). All sources are decoded
// before any integration starts, so a malformed source fails the batch
// without touching the database.
func (db *Database) IntegrateBatchXML(sources []io.Reader) ([]integrate.Stats, *pxml.Tree, error) {
	trees := make([]*pxml.Tree, len(sources))
	for i, r := range sources {
		t, err := xmlcodec.Decode(r)
		if err != nil {
			return nil, nil, fmt.Errorf("core: batch source %d of %d: %w", i+1, len(sources), err)
		}
		trees[i] = t
	}
	return db.IntegrateBatch(trees)
}

// IntegrateXML integrates an XML source into the database.
func (db *Database) IntegrateXML(r io.Reader) (*integrate.Stats, error) {
	tree, err := xmlcodec.Decode(r)
	if err != nil {
		return nil, err
	}
	return db.IntegrateTree(tree)
}

// IntegrateXMLString integrates an XML source given as a string.
func (db *Database) IntegrateXMLString(src string) (*integrate.Stats, error) {
	return db.IntegrateXML(strings.NewReader(src))
}

// IntegrationHistory returns the statistics of every integration run.
func (db *Database) IntegrationHistory() []integrate.Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]integrate.Stats(nil), db.integrations...)
}

// IntegrationCount returns the number of integration runs without
// copying the history (for cheap stats polling).
func (db *Database) IntegrationCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.integrations)
}

// Query compiles and evaluates a query, returning ranked answers.
// Compilation goes through the database's LRU cache, so repeated query
// strings skip parsing; evaluation goes through the planner and the
// result cache (see QueryEval).
func (db *Database) Query(src string) (query.Result, error) {
	return db.QueryEval(src, db.cfg.Query)
}

// QueryCompiled evaluates a compiled query against a snapshot of the
// current document, through the planner and the result cache.
func (db *Database) QueryCompiled(q *query.Query) (query.Result, error) {
	return db.evalCached(context.Background(), q, db.cfg.Query)
}

// DefaultQueryOptions returns the evaluation options the database was
// opened with, as a starting point for per-request overrides via
// QueryEval.
func (db *Database) DefaultQueryOptions() query.Options { return db.cfg.Query }

// QueryEval compiles src through the database's cache and evaluates it
// with the given options instead of the database defaults — for callers
// that override the method, sampling seed or budgets per request.
//
// Evaluation is planned: the per-tree index (installed with the tree at
// every copy-on-write swap) picks the cheapest applicable strategy when
// opts.Method is auto, and whole results are served from an LRU cache
// keyed by (tree digest, query text, options) — correctly invalidated by
// tree identity, since any mutation installs a tree with a new digest.
func (db *Database) QueryEval(src string, opts query.Options) (query.Result, error) {
	return db.QueryEvalCtx(context.Background(), src, opts)
}

// QueryEvalCtx is QueryEval with cancellation and budgets: evaluation
// aborts when ctx is canceled (an HTTP front end passes the request
// context, so abandoned queries stop computing) and when the options'
// TimeBudget/MaxNodeVisits run out. Early aborts are counted in
// QueryRuntimeStats.
func (db *Database) QueryEvalCtx(ctx context.Context, src string, opts query.Options) (query.Result, error) {
	q, err := db.queries.Compile(src)
	if err != nil {
		return query.Result{}, err
	}
	return db.evalCached(ctx, q, opts)
}

// evalCached evaluates a compiled query against a consistent
// (tree, index) snapshot, going through the result cache's singleflight:
// concurrent identical cold queries run one evaluation and share the
// result.
func (db *Database) evalCached(ctx context.Context, q *query.Query, opts query.Options) (query.Result, error) {
	if err := opts.Validate(); err != nil {
		return query.Result{}, err
	}
	db.queryStarted.Add(1)
	db.queryActive.Add(1)
	defer db.queryActive.Add(-1)
	// Read the purge generation before the snapshot: if a swap (and its
	// purge) lands anywhere after this point, the conditional insert
	// inside Do is dropped, so a slow evaluation can never re-insert an
	// entry for a retired document.
	gen := db.results.Generation()
	db.mu.RLock()
	tree, idx := db.tree, db.index
	db.mu.RUnlock()
	digest := idx.Digest()
	src := q.String()
	res, outcome, err := db.results.Do(ctx, gen, digest, src, opts, func() (query.Result, error) {
		return query.EvalIndexedCtx(ctx, tree, q, opts, idx)
	})
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			db.queryCanceled.Add(1)
		case errors.Is(err, query.ErrBudgetExhausted):
			db.queryBudgetAborts.Add(1)
		}
		// Budget aborts still carry the plan (BudgetExhausted set) for
		// explain; pass the partial result through with the error.
		return res, err
	}
	if outcome == query.DoExecuted {
		db.queryPooledTasks.Add(res.Exec.PooledTasks)
		db.queryInlineTasks.Add(res.Exec.InlineTasks)
	}
	if outcome != query.DoExecuted && res.Plan != nil {
		// Flag results served without running an evaluation (a cache hit
		// or a collapsed concurrent execution) on a copy; the cached
		// result stays pristine.
		pl := *res.Plan
		pl.CacheHit = true
		res.Plan = &pl
	}
	return res, nil
}

// QueryRuntimeStats reports query-path concurrency accounting: how many
// evaluations are in flight right now, how many ever started, how many
// aborted early (client cancellation vs. budget exhaustion), and how the
// parallel executors' fan-out units were scheduled (pool goroutine vs.
// inline on a saturated pool). Singleflight collapses live in
// ResultCacheStats.
type QueryRuntimeStats struct {
	Active       int64 `json:"active"`
	Started      int64 `json:"started"`
	Canceled     int64 `json:"canceled"`
	BudgetAborts int64 `json:"budget_aborts"`
	PooledTasks  int64 `json:"pooled_tasks"`
	InlineTasks  int64 `json:"inline_tasks"`
}

// QueryStats returns a snapshot of the query concurrency counters.
func (db *Database) QueryStats() QueryRuntimeStats {
	return QueryRuntimeStats{
		Active:       db.queryActive.Load(),
		Started:      db.queryStarted.Load(),
		Canceled:     db.queryCanceled.Load(),
		BudgetAborts: db.queryBudgetAborts.Load(),
		PooledTasks:  db.queryPooledTasks.Load(),
		InlineTasks:  db.queryInlineTasks.Load(),
	}
}

// QueryCacheStats reports the compiled-query cache counters.
func (db *Database) QueryCacheStats() query.CacheStats {
	return db.queries.Stats()
}

// ResultCacheStats reports the evaluated-result cache counters.
func (db *Database) ResultCacheStats() query.ResultCacheStats {
	return db.results.Stats()
}

// Index returns the current document's query index (an immutable
// snapshot, consistent with the tree the same instant Tree() would have
// returned).
func (db *Database) Index() *queryindex.Index {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.index
}

// IndexStats summarizes query-index construction work: how many indexes
// the database has built (one per installed tree) and how long the builds
// took.
type IndexStats struct {
	// Builds counts index constructions (one per tree swap, plus the
	// initial document).
	Builds int64
	// LastBuild and TotalBuild are wall-clock construction times.
	LastBuild  time.Duration
	TotalBuild time.Duration
	// Tags and Elements describe the current index.
	Tags     int
	Elements int
}

// IndexStats reports index build statistics for /stats.
func (db *Database) IndexStats() IndexStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return IndexStats{
		Builds:     db.indexBuilds,
		LastBuild:  db.indexBuildLast,
		TotalBuild: db.indexBuildTotal,
		Tags:       db.index.NumTags(),
		Elements:   db.index.Elements(),
	}
}

// Feedback applies a user judgment on a query answer, removing worlds
// that contradict it. The paper's demo left this unimplemented; here it
// updates the database in place.
func (db *Database) Feedback(querySrc, value string, correct bool) (feedback.Event, error) {
	return db.feedbackAt(querySrc, value, correct, time.Time{})
}

// feedbackAt is Feedback with an explicit event timestamp (zero means
// now); journal replay passes the recorded time so recovered histories
// match the originals exactly.
func (db *Database) feedbackAt(querySrc, value string, correct bool, when time.Time) (feedback.Event, error) {
	q, err := db.queries.Compile(querySrc)
	if err != nil {
		return feedback.Event{}, err
	}
	j := feedback.Incorrect
	if correct {
		j = feedback.Correct
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	// The session's conditioning builds a new tree; queries keep reading
	// the old one until the swap below.
	ev, err := db.session.ApplyAt(q, value, j, when)
	if err != nil {
		return ev, err
	}
	// Index the conditioned tree outside mu, then swap tree and index
	// together (unlike setTreeLocked this keeps the running session).
	nt := db.session.Tree()
	idx := db.buildIndex(nt)
	db.commitMu.Lock()
	seq, journaled, err := db.record(Op{Kind: OpFeedback, Query: querySrc, Value: value, Correct: correct, When: ev.When})
	if err != nil {
		db.commitMu.Unlock()
		// The session already advanced; rebuild it over the still-current
		// tree so the aborted judgment leaves no trace.
		db.session = feedback.NewSession(db.Tree(), db.cfg.Feedback)
		return feedback.Event{}, err
	}
	db.mu.Lock()
	db.tree = nt
	db.installIndexLocked(idx)
	if journaled {
		db.appliedSeq = seq
	}
	db.events = append(db.events, ev)
	db.mu.Unlock()
	db.commitMu.Unlock()
	// Conditioning changed what the accumulated tree means; cached
	// verdicts and merges may no longer reflect it.
	db.memo.Purge()
	return ev, nil
}

// FeedbackHistory returns the feedback events applied since the last
// integration. Like the other read accessors it never blocks behind an
// in-flight mutation.
func (db *Database) FeedbackHistory() []feedback.Event {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]feedback.Event(nil), db.events...)
}

// FeedbackCount returns the number of feedback events since the last
// integration without copying the history.
func (db *Database) FeedbackCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.events)
}

// Stats reports the size measures of the current document.
func (db *Database) Stats() pxml.Stats { return db.Tree().CollectStats() }

// WorldCount returns the number of possible worlds of the current
// document.
func (db *Database) WorldCount() *big.Int { return db.Tree().WorldCount() }

// IsCertain reports whether all uncertainty has been resolved.
func (db *Database) IsCertain() bool { return db.Tree().IsCertain() }

// Normalize canonicalizes the current document (merging duplicate
// possibilities), returning the size before and after.
func (db *Database) Normalize() (before, after int64, err error) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	t := db.Tree()
	before = t.NodeCount()
	nt, err := t.Normalize()
	if err != nil {
		return before, before, err
	}
	idx := db.buildIndex(nt)
	db.commitMu.Lock()
	seq, journaled, err := db.record(Op{Kind: OpNormalize})
	if err != nil {
		db.commitMu.Unlock()
		return before, before, err
	}
	db.mu.Lock()
	db.setTreeLocked(nt, idx)
	if journaled {
		db.appliedSeq = seq
	}
	db.mu.Unlock()
	db.commitMu.Unlock()
	db.memo.Purge()
	return before, nt.NodeCount(), nil
}

// ReplaceTree swaps the entire document for a new one, discarding the
// feedback session and integration history. It backs the server's
// replace-mode integrate and snapshot loading.
func (db *Database) ReplaceTree(t *pxml.Tree) error {
	if t == nil {
		return errors.New("core: nil document")
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("core: invalid document: %w", err)
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	idx := db.buildIndex(t)
	db.commitMu.Lock()
	seq, journaled, err := db.recordWithTree(Op{Kind: OpReplace}, t)
	if err != nil {
		db.commitMu.Unlock()
		return err
	}
	db.mu.Lock()
	db.setTreeLocked(t, idx)
	if journaled {
		db.appliedSeq = seq
	}
	db.integrations = nil
	db.mu.Unlock()
	db.commitMu.Unlock()
	db.memo.Purge()
	return nil
}

// SaveSnapshot persists the current document, schema and session
// histories into dir via the store package, returning the written
// manifest. The snapshot records the journal position it reflects, so a
// catalog recovery replays only the log tail beyond it.
func (db *Database) SaveSnapshot(dir, comment string) (store.Manifest, error) {
	v := db.View()
	pending, err := EncodePending(v.Pending)
	if err != nil {
		return store.Manifest{}, err
	}
	return store.SaveWith(dir, v.Tree, v.Schema, store.SaveOptions{
		Comment:      comment,
		LogSeq:       v.Seq,
		Integrations: v.Integrations,
		Feedback:     v.Events,
		Pending:      pending,
	})
}

// LoadSnapshot replaces the database content with a snapshot read from
// dir. A schema stored in the snapshot replaces the current schema; a
// snapshot without one keeps it. Histories persisted in the snapshot
// manifest are restored, so stats counters survive a save/load cycle.
func (db *Database) LoadSnapshot(dir string) (*store.Snapshot, error) {
	snap, err := store.Load(dir)
	if err != nil {
		return nil, err
	}
	if err := db.installSnapshot(snap.Tree, snap.Schema, snap.Manifest.Integrations, snap.Manifest.Feedback); err != nil {
		return nil, err
	}
	return snap, nil
}

// installSnapshot swaps in a snapshot's document, schema and histories as
// one journaled mutation (shared by LoadSnapshot and OpLoad replay).
func (db *Database) installSnapshot(t *pxml.Tree, schema *dtd.Schema, ints []integrate.Stats, evs []feedback.Event) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	idx := db.buildIndex(t)
	op := Op{Kind: OpLoad, Integrations: ints, Events: evs}
	if schema != nil {
		op.Schema = schema.String()
	}
	db.commitMu.Lock()
	seq, journaled, err := db.recordWithTree(op, t)
	if err != nil {
		db.commitMu.Unlock()
		return err
	}
	db.mu.Lock()
	db.setTreeLocked(t, idx)
	db.integrations = append([]integrate.Stats(nil), ints...)
	db.events = append([]feedback.Event(nil), evs...)
	if schema != nil {
		db.schema = schema
	}
	if journaled {
		db.appliedSeq = seq
	}
	db.mu.Unlock()
	db.commitMu.Unlock()
	// The snapshot may carry a different schema; cached decisions made
	// under the old one must not leak past the load.
	db.memo.Purge()
	return nil
}

// ExportXML writes the current document as XML with probabilistic
// markers.
func (db *Database) ExportXML(w io.Writer, opts xmlcodec.EncodeOptions) error {
	return xmlcodec.Encode(w, db.Tree(), opts)
}

// ValidateAgainstSchema checks the current document against the
// configured schema (every possible world's cardinality bounds).
func (db *Database) ValidateAgainstSchema() error {
	db.mu.RLock()
	tree, schema := db.tree, db.schema
	db.mu.RUnlock()
	if schema == nil {
		return nil
	}
	return schema.ValidateTree(tree)
}

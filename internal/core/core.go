// Package core ties the IMPrECISE subsystems together into the database
// module of the paper's §IV architecture: probabilistic XML storage at the
// bottom, data integration with "The Oracle" in the middle, and
// probabilistic querying plus user feedback on top.
package core

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"strings"

	"repro/internal/dtd"
	"repro/internal/feedback"
	"repro/internal/integrate"
	"repro/internal/oracle"
	"repro/internal/pxml"
	"repro/internal/query"
	"repro/internal/xmlcodec"
)

// Config configures a Database.
type Config struct {
	// Schema is the DTD knowledge used to reject impossible
	// possibilities. Optional.
	Schema *dtd.Schema
	// Rules are the Oracle's knowledge rules (the generic deep-equal rule
	// is always added).
	Rules []oracle.Rule
	// OracleOptions tune the Oracle (prior, estimators, strictness).
	OracleOptions []oracle.Option
	// Integration tunes the integration engine. Its Oracle and Schema
	// fields are overwritten from this Config.
	Integration integrate.Config
	// Query sets default evaluation options.
	Query query.Options
	// Feedback bounds the conditioning work of feedback processing.
	Feedback feedback.Options
}

// Database is a probabilistic XML database with near-automatic
// integration. It is not safe for concurrent mutation; concurrent queries
// against an unchanging database are safe (the tree is immutable).
type Database struct {
	tree   *pxml.Tree
	oracle *oracle.Oracle
	cfg    Config

	integrations []integrate.Stats
	session      *feedback.Session
}

// Open creates a database over an initial document.
func Open(doc *pxml.Tree, cfg Config) (*Database, error) {
	if doc == nil {
		return nil, errors.New("core: nil document")
	}
	if err := doc.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid document: %w", err)
	}
	db := &Database{
		tree:   doc,
		oracle: oracle.New(cfg.Rules, cfg.OracleOptions...),
		cfg:    cfg,
	}
	db.session = feedback.NewSession(doc, cfg.Feedback)
	return db, nil
}

// OpenXML creates a database from an XML document (plain or with
// probabilistic markers).
func OpenXML(r io.Reader, cfg Config) (*Database, error) {
	tree, err := xmlcodec.Decode(r)
	if err != nil {
		return nil, err
	}
	return Open(tree, cfg)
}

// Tree returns the current probabilistic document.
func (db *Database) Tree() *pxml.Tree { return db.tree }

// Oracle returns the database's rule oracle.
func (db *Database) Oracle() *oracle.Oracle { return db.oracle }

// setTree swaps the document and resets the feedback session to it.
func (db *Database) setTree(t *pxml.Tree) {
	db.tree = t
	db.session = feedback.NewSession(t, db.cfg.Feedback)
}

// IntegrateTree integrates another document into the database. The
// database content becomes the probabilistic integration of the current
// document (source A) and the new one (source B).
func (db *Database) IntegrateTree(other *pxml.Tree) (*integrate.Stats, error) {
	cfg := db.cfg.Integration
	cfg.Oracle = db.oracle
	cfg.Schema = db.cfg.Schema
	res, stats, err := integrate.Integrate(db.tree, other, cfg)
	if err != nil {
		return nil, err
	}
	db.setTree(res)
	db.integrations = append(db.integrations, *stats)
	return stats, nil
}

// IntegrateXML integrates an XML source into the database.
func (db *Database) IntegrateXML(r io.Reader) (*integrate.Stats, error) {
	tree, err := xmlcodec.Decode(r)
	if err != nil {
		return nil, err
	}
	return db.IntegrateTree(tree)
}

// IntegrateXMLString integrates an XML source given as a string.
func (db *Database) IntegrateXMLString(src string) (*integrate.Stats, error) {
	return db.IntegrateXML(strings.NewReader(src))
}

// IntegrationHistory returns the statistics of every integration run.
func (db *Database) IntegrationHistory() []integrate.Stats {
	return append([]integrate.Stats(nil), db.integrations...)
}

// Query compiles and evaluates a query, returning ranked answers.
func (db *Database) Query(src string) (query.Result, error) {
	q, err := query.Compile(src)
	if err != nil {
		return query.Result{}, err
	}
	return db.QueryCompiled(q)
}

// QueryCompiled evaluates a compiled query.
func (db *Database) QueryCompiled(q *query.Query) (query.Result, error) {
	return query.Eval(db.tree, q, db.cfg.Query)
}

// Feedback applies a user judgment on a query answer, removing worlds
// that contradict it. The paper's demo left this unimplemented; here it
// updates the database in place.
func (db *Database) Feedback(querySrc, value string, correct bool) (feedback.Event, error) {
	q, err := query.Compile(querySrc)
	if err != nil {
		return feedback.Event{}, err
	}
	j := feedback.Incorrect
	if correct {
		j = feedback.Correct
	}
	ev, err := db.session.Apply(q, value, j)
	if err != nil {
		return ev, err
	}
	db.tree = db.session.Tree()
	return ev, nil
}

// FeedbackHistory returns the feedback events applied since the last
// integration.
func (db *Database) FeedbackHistory() []feedback.Event {
	return db.session.History()
}

// Stats reports the size measures of the current document.
func (db *Database) Stats() pxml.Stats { return db.tree.CollectStats() }

// WorldCount returns the number of possible worlds of the current
// document.
func (db *Database) WorldCount() *big.Int { return db.tree.WorldCount() }

// IsCertain reports whether all uncertainty has been resolved.
func (db *Database) IsCertain() bool { return db.tree.IsCertain() }

// Normalize canonicalizes the current document (merging duplicate
// possibilities), returning the size before and after.
func (db *Database) Normalize() (before, after int64, err error) {
	before = db.tree.NodeCount()
	nt, err := db.tree.Normalize()
	if err != nil {
		return before, before, err
	}
	db.setTree(nt)
	return before, nt.NodeCount(), nil
}

// ExportXML writes the current document as XML with probabilistic
// markers.
func (db *Database) ExportXML(w io.Writer, opts xmlcodec.EncodeOptions) error {
	return xmlcodec.Encode(w, db.tree, opts)
}

// ValidateAgainstSchema checks the current document against the
// configured schema (every possible world's cardinality bounds).
func (db *Database) ValidateAgainstSchema() error {
	if db.cfg.Schema == nil {
		return nil
	}
	return db.cfg.Schema.ValidateTree(db.tree)
}

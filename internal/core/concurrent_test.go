package core_test

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/xmlcodec"
)

// TestConcurrentReadsDuringMutation hammers the read surface (Query,
// Stats, WorldCount, ExportXML, IsCertain) from many goroutines while
// integrations, feedback and normalization run. Under -race this proves
// the copy-on-write locking discipline: readers work on immutable tree
// snapshots and never observe a half-swapped state.
func TestConcurrentReadsDuringMutation(t *testing.T) {
	db := openBookA(t)
	const readers = 8
	const readsPerReader = 50

	var wg sync.WaitGroup

	// Writer: integrations, feedback and normalization, serialized among
	// themselves by the database's writer lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			src := bookB
			if i%2 == 1 {
				src = fmt.Sprintf(`<addressbook><person><nm>P%d</nm><tel>%d</tel></person></addressbook>`, i, 5000+i)
			}
			if _, err := db.IntegrateXML(strings.NewReader(src)); err != nil {
				t.Errorf("integrate %d: %v", i, err)
				return
			}
			// Feedback may legitimately fail once the judged value is
			// already conditioned away; only data races are the target.
			_, _ = db.Feedback(`//person/tel`, "2222", false)
			if i%3 == 2 {
				if _, _, err := db.Normalize(); err != nil {
					t.Errorf("normalize %d: %v", i, err)
					return
				}
			}
		}
	}()

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				switch i % 5 {
				case 0:
					if _, err := db.Query(`//person/nm`); err != nil {
						t.Errorf("query: %v", err)
						return
					}
				case 1:
					if s := db.Stats(); s.LogicalNodes == 0 {
						t.Errorf("empty stats during mutation")
						return
					}
				case 2:
					if db.WorldCount().Sign() <= 0 {
						t.Errorf("non-positive world count")
						return
					}
				case 3:
					if err := db.ExportXML(io.Discard, xmlcodec.EncodeOptions{}); err != nil {
						t.Errorf("export: %v", err)
						return
					}
				case 4:
					db.IsCertain()
					db.IntegrationHistory()
					db.FeedbackHistory()
					db.QueryCacheStats()
				}
			}
		}(g)
	}
	wg.Wait()

	// The database still behaves after the storm.
	if _, err := db.Query(`//person/nm`); err != nil {
		t.Fatalf("query after concurrency storm: %v", err)
	}
	if err := db.Tree().Validate(); err != nil {
		t.Fatalf("tree invalid after concurrency storm: %v", err)
	}
}

// TestConcurrentIntegrations checks that racing writers serialize: every
// integration lands, none is lost to a stale-snapshot swap.
func TestConcurrentIntegrations(t *testing.T) {
	db := openBookA(t)
	const writers = 4
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := fmt.Sprintf(`<addressbook><person><nm>Writer%d</nm><tel>%d</tel></person></addressbook>`, g, 9000+g)
			if _, err := db.IntegrateXMLString(src); err != nil {
				t.Errorf("writer %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if got := len(db.IntegrationHistory()); got != writers {
		t.Fatalf("integration history = %d, want %d", got, writers)
	}
	// Every writer's person must be present in the final document.
	for g := 0; g < writers; g++ {
		res, err := db.Query(fmt.Sprintf(`//person[nm="Writer%d"]/tel`, g))
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		if len(res.Answers) == 0 {
			t.Fatalf("writer %d's integration was lost", g)
		}
	}
}

// TestSnapshotRoundTripThroughDatabase exercises the SaveSnapshot /
// LoadSnapshot methods backing the server's persistence endpoints.
func TestSnapshotRoundTripThroughDatabase(t *testing.T) {
	db := openBookA(t)
	if _, err := db.IntegrateXML(strings.NewReader(bookB)); err != nil {
		t.Fatalf("integrate: %v", err)
	}
	dir := t.TempDir()
	m, err := db.SaveSnapshot(dir, "test")
	if err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if m.Worlds != "3" || !m.HasSchema {
		t.Fatalf("manifest = %+v", m)
	}
	if _, err := db.Feedback(`//person/tel`, "2222", false); err != nil {
		t.Fatalf("feedback: %v", err)
	}
	if !db.IsCertain() {
		t.Fatalf("feedback should have resolved all uncertainty")
	}
	snap, err := db.LoadSnapshot(dir)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	if snap.Schema == nil {
		t.Fatalf("snapshot lost the schema")
	}
	if db.WorldCount().Int64() != 3 {
		t.Fatalf("restore failed: %s worlds", db.WorldCount())
	}
	if db.Schema() == nil {
		t.Fatalf("database lost the schema after load")
	}
}

// TestReplaceTree exercises the replace-mode swap behind the server's
// /integrate?mode=replace.
func TestReplaceTree(t *testing.T) {
	db := openBookA(t)
	if _, err := db.IntegrateXML(strings.NewReader(bookB)); err != nil {
		t.Fatalf("integrate: %v", err)
	}
	nt, err := xmlcodec.DecodeString(`<addressbook><person><nm>Solo</nm></person></addressbook>`)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := db.ReplaceTree(nt); err != nil {
		t.Fatalf("ReplaceTree: %v", err)
	}
	if !db.IsCertain() || len(db.IntegrationHistory()) != 0 {
		t.Fatalf("replace did not reset state")
	}
	if err := db.ReplaceTree(nil); err == nil {
		t.Fatalf("nil replace should error")
	}
}

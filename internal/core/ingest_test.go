package core_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pxml"
)

// waitTicket polls until the ticket reaches a terminal state.
func waitTicket(t *testing.T, db *core.Database, ticket string) core.TicketStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := db.TicketStatus(ticket)
		if err != nil {
			t.Fatalf("ticket %s: %v", ticket, err)
		}
		if st.State != core.TicketPending {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("ticket %s still pending after 10s", ticket)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEnqueueDisabledWithoutQueue(t *testing.T) {
	db, err := core.OpenXML(strings.NewReader(bookA), core.Config{Schema: personDTD})
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.Enqueue([]*pxml.Tree{decodeTree(t, bookB)})
	if !errors.Is(err, core.ErrQueueDisabled) {
		t.Fatalf("want ErrQueueDisabled, got %v", err)
	}
}

// TestEnqueueBackpressureAtExactDepth: with no drainer running, the
// queue accepts exactly IngestDepth sources and refuses the next with
// ErrQueueFull.
func TestEnqueueBackpressureAtExactDepth(t *testing.T) {
	const depth = 3
	db, err := core.OpenXML(strings.NewReader(bookA), core.Config{Schema: personDTD, IngestDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < depth; i++ {
		if _, err := db.Enqueue([]*pxml.Tree{decodeTree(t, bookB)}); err != nil {
			t.Fatalf("enqueue %d/%d: %v", i+1, depth, err)
		}
	}
	_, err = db.Enqueue([]*pxml.Tree{decodeTree(t, bookB)})
	if !errors.Is(err, core.ErrQueueFull) {
		t.Fatalf("want ErrQueueFull at depth %d, got %v", depth, err)
	}
	iq := db.IngestStats()
	if iq.Depth != depth || iq.Accepted != depth {
		t.Fatalf("queue stats after backpressure: %+v", iq)
	}
}

// TestAsyncIngestMatchesSync: the queued path must land on the exact
// tree the synchronous path produces — same sources, same order.
func TestAsyncIngestMatchesSync(t *testing.T) {
	sources := []string{
		bookB,
		`<addressbook><person><nm>Carol</nm><tel>5555</tel></person></addressbook>`,
		`<addressbook><person><nm>Dave</nm></person></addressbook>`,
	}

	sync, err := core.OpenXML(strings.NewReader(bookA), core.Config{Schema: personDTD})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range sources {
		if _, err := sync.IntegrateXMLString(src); err != nil {
			t.Fatalf("sync integrate: %v", err)
		}
	}

	async, err := core.OpenXML(strings.NewReader(bookA), core.Config{Schema: personDTD, IngestDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	async.StartIngest()
	defer async.StopIngest()
	var tickets []string
	for _, src := range sources {
		ticket, err := async.Enqueue([]*pxml.Tree{decodeTree(t, src)})
		if err != nil {
			t.Fatalf("enqueue: %v", err)
		}
		tickets = append(tickets, ticket)
	}
	for _, ticket := range tickets {
		st := waitTicket(t, async, ticket)
		if st.State != core.TicketApplied {
			t.Fatalf("ticket %s: state %q error %q", ticket, st.State, st.Error)
		}
	}
	if !pxml.Equal(sync.Tree().Root(), async.Tree().Root()) {
		t.Fatal("async ingest result differs from sync integration")
	}
	if sync.WorldCount().Cmp(async.WorldCount()) != 0 {
		t.Fatalf("world counts differ: sync %s, async %s", sync.WorldCount(), async.WorldCount())
	}
	iq := async.IngestStats()
	if iq.Applied != int64(len(sources)) || iq.Failed != 0 || iq.Depth != 0 {
		t.Fatalf("queue stats after drain: %+v", iq)
	}
	if async.IntegrationCount() != len(sources) {
		t.Fatalf("integration history: got %d entries, want %d", async.IntegrationCount(), len(sources))
	}
}

// TestAsyncIngestFailureIsolated: a bad source fails its own ticket
// without poisoning the batch around it.
func TestAsyncIngestFailureIsolated(t *testing.T) {
	db, err := core.OpenXML(strings.NewReader(bookA), core.Config{Schema: personDTD, IngestDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	good1, err := db.Enqueue([]*pxml.Tree{decodeTree(t, bookB)})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := db.Enqueue([]*pxml.Tree{decodeTree(t, `<library><book/></library>`)})
	if err != nil {
		t.Fatal(err)
	}
	good2, err := db.Enqueue([]*pxml.Tree{decodeTree(t, `<addressbook><person><nm>Eve</nm></person></addressbook>`)})
	if err != nil {
		t.Fatal(err)
	}
	db.StartIngest()
	defer db.StopIngest()

	if st := waitTicket(t, db, good1); st.State != core.TicketApplied {
		t.Fatalf("good1: %+v", st)
	}
	if st := waitTicket(t, db, bad); st.State != core.TicketFailed || st.Error == "" {
		t.Fatalf("bad ticket should fail with an error: %+v", st)
	}
	if st := waitTicket(t, db, good2); st.State != core.TicketApplied {
		t.Fatalf("good2 after failed ticket: %+v", st)
	}
	iq := db.IngestStats()
	if iq.Applied != 2 || iq.Failed != 1 {
		t.Fatalf("queue stats: %+v", iq)
	}
}

func TestTicketStatusUnknown(t *testing.T) {
	db, err := core.OpenXML(strings.NewReader(bookA), core.Config{Schema: personDTD, IngestDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.TicketStatus("t999"); !errors.Is(err, core.ErrUnknownTicket) {
		t.Fatalf("want ErrUnknownTicket, got %v", err)
	}
}

// TestMemoPurgedByFeedbackAndNormalize: mutations that rewrite node
// identity drop the cross-call memo so stale verdicts cannot leak into
// later integrations.
func TestMemoPurgedByFeedbackAndNormalize(t *testing.T) {
	db, err := core.OpenXML(strings.NewReader(bookA), core.Config{Schema: personDTD})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.IntegrateXMLString(bookB); err != nil {
		t.Fatal(err)
	}
	if db.MemoStats().Entries == 0 {
		t.Fatalf("integration should populate the memo: %+v", db.MemoStats())
	}
	before := db.MemoStats().Purges
	if _, _, err := db.Normalize(); err != nil {
		t.Fatal(err)
	}
	if got := db.MemoStats(); got.Purges <= before || got.Entries != 0 {
		t.Fatalf("normalize did not purge the memo: %+v", got)
	}
}

// TestSustainedIngestKeepsReadsConsistent is the -race smoke: enqueues
// stream in while readers query; every observed tree must be a committed
// prefix of the integration sequence, and the final tree must match the
// synchronous fold of all sources.
func TestSustainedIngestKeepsReadsConsistent(t *testing.T) {
	const n = 24
	sources := make([]string, n)
	for i := range sources {
		sources[i] = fmt.Sprintf(
			"<addressbook><person><nm>Q%d</nm><tel>%04d</tel></person></addressbook>", i, i)
	}

	sync, err := core.OpenXML(strings.NewReader(bookA), core.Config{Schema: personDTD})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range sources {
		if _, err := sync.IntegrateXMLString(src); err != nil {
			t.Fatal(err)
		}
	}

	db, err := core.OpenXML(strings.NewReader(bookA), core.Config{Schema: personDTD, IngestDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	db.StartIngest()
	defer db.StopIngest()

	stopReads := make(chan struct{})
	readsDone := make(chan error, 1)
	go func() {
		defer close(readsDone)
		for {
			select {
			case <-stopReads:
				return
			default:
			}
			if _, err := db.Query(`//person[nm]`); err != nil {
				readsDone <- fmt.Errorf("concurrent query: %w", err)
				return
			}
			_ = db.Tree().WorldCount()
		}
	}()

	var last string
	for _, src := range sources {
		for {
			ticket, err := db.Enqueue([]*pxml.Tree{decodeTree(t, src)})
			if err == nil {
				last = ticket
				break
			}
			if !errors.Is(err, core.ErrQueueFull) {
				t.Fatalf("enqueue: %v", err)
			}
			time.Sleep(time.Millisecond) // backpressure: let the drainer catch up
		}
	}
	if st := waitTicket(t, db, last); st.State != core.TicketApplied {
		t.Fatalf("final ticket: %+v", st)
	}
	close(stopReads)
	if err := <-readsDone; err != nil {
		t.Fatal(err)
	}
	if !pxml.Equal(sync.Tree().Root(), db.Tree().Root()) {
		t.Fatal("sustained async ingest diverged from the synchronous fold")
	}
}

package codec

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 300)
	b = AppendUvarint(b, math.MaxUint64)
	b = AppendUint64(b, 0xDEADBEEF)
	b = AppendFloat64(b, 1.0/3.0)
	b = AppendString(b, "héllo")
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendString(b, "")
	r := NewReader(b)
	if v := r.Uvarint(); v != 0 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := r.Uvarint(); v != 300 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := r.Uvarint(); v != math.MaxUint64 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := r.Uint64(); v != 0xDEADBEEF {
		t.Fatalf("uint64 = %x", v)
	}
	if v := r.Float64(); v != 1.0/3.0 {
		t.Fatalf("float64 = %v", v)
	}
	if v := r.String(); v != "héllo" {
		t.Fatalf("string = %q", v)
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", v)
	}
	if v := r.String(); v != "" {
		t.Fatalf("string = %q", v)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderBounds(t *testing.T) {
	cases := map[string][]byte{
		"empty byte":           {},
		"truncated uint64":     {1, 2, 3},
		"unterminated uvarint": {0x80, 0x80},
		"length past end":      AppendUvarint(nil, 100),
		"huge length":          AppendUvarint(nil, math.MaxUint64),
	}
	for name, data := range cases {
		r := NewReader(data)
		switch name {
		case "empty byte":
			r.Byte()
		case "truncated uint64":
			r.Uint64()
		case "unterminated uvarint":
			r.Uvarint()
		default:
			r.Bytes()
		}
		if r.Err() == nil {
			t.Errorf("%s: no error", name)
		}
		if !errors.Is(r.Err(), ErrInvalid) {
			t.Errorf("%s: error %v not ErrInvalid", name, r.Err())
		}
	}
	// The first error sticks; later reads stay zero without panicking.
	r := NewReader(nil)
	r.Byte()
	first := r.Err()
	if r.Uvarint() != 0 || r.String() != "" || r.Uint64() != 0 {
		t.Fatal("reads after error returned non-zero")
	}
	if r.Err() != first {
		t.Fatal("later failure replaced the first error")
	}
	// Finish rejects unconsumed input.
	r = NewReader([]byte{1, 2})
	r.Byte()
	if err := r.Finish(); err == nil {
		t.Fatal("Finish accepted trailing bytes")
	}
}

func TestStringTable(t *testing.T) {
	var st StringTable
	a := st.Intern("alpha")
	b := st.Intern("beta")
	if again := st.Intern("alpha"); again != a {
		t.Fatalf("re-intern gave %d, want %d", again, a)
	}
	if a == b {
		t.Fatal("distinct strings share an index")
	}
	data := st.AppendTo(nil)
	r := NewReader(data)
	list := r.StringTable()
	if r.Err() != nil || len(list) != 2 || list[a] != "alpha" || list[b] != "beta" {
		t.Fatalf("table round trip = %v (%v)", list, r.Err())
	}
	// Forged count: claims more entries than bytes remain.
	r = NewReader(AppendUvarint(nil, 1<<40))
	if r.StringTable(); r.Err() == nil {
		t.Fatal("forged table count accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("the payload")
	data := AppendFrame(nil, KindDocument, 1, payload)
	data = AppendFrame(data, KindEnd, 2, nil)
	f, rest, err := ParseFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindDocument || f.Version != 1 || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("frame = %+v", f)
	}
	f, rest, err = ParseFrame(rest)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindEnd || f.Version != 2 || len(f.Payload) != 0 {
		t.Fatalf("frame = %+v", f)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left", len(rest))
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	valid := AppendFrame(nil, KindRecord, 1, []byte("abcdefgh"))
	for cut := 0; cut < len(valid); cut++ {
		if _, _, err := ParseFrame(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x01
		f, _, err := ParseFrame(mut)
		if err != nil {
			continue
		}
		// The CRC covers kind, version and payload; only a flip confined
		// to the length prefix could theoretically survive, and then the
		// CRC position moves so it still fails. Reaching here means the
		// flip produced a self-consistent frame, which must not happen
		// for single-bit flips.
		t.Fatalf("bit flip at %d accepted as %+v", i, f)
	}
}

func TestFrameStream(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	payloads := [][]byte{[]byte("one"), {}, []byte(strings.Repeat("x", 100_000))}
	for i, p := range payloads {
		if err := fw.Write(KindRecord, byte(i), p); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf, 0)
	for i, p := range payloads {
		f, err := fr.Read()
		if err != nil {
			t.Fatal(err)
		}
		if f.Kind != KindRecord || f.Version != byte(i) || !bytes.Equal(f.Payload, p) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("clean end = %v, want io.EOF", err)
	}
}

func TestFrameStreamTruncation(t *testing.T) {
	full := AppendFrame(nil, KindRecord, 1, []byte("payload"))
	for cut := 1; cut < len(full); cut++ {
		fr := NewFrameReader(bytes.NewReader(full[:cut]), 0)
		_, err := fr.Read()
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if err == io.EOF {
			t.Fatalf("truncation at %d read as clean end", cut)
		}
	}
	// A declared length beyond the limit must fail before allocating.
	huge := []byte{FrameMagic, KindRecord, 1}
	huge = AppendUvarint(huge, 1<<40)
	fr := NewFrameReader(bytes.NewReader(huge), 0)
	if _, err := fr.Read(); err == nil || !errors.Is(err, ErrInvalid) {
		t.Fatalf("oversized frame = %v", err)
	}
	fr = NewFrameReader(bytes.NewReader(full), 4)
	if _, err := fr.Read(); err == nil {
		t.Fatal("frame beyond custom limit accepted")
	}
}

func FuzzParseFrame(f *testing.F) {
	f.Add(AppendFrame(nil, KindDocument, 1, []byte("payload")))
	f.Add(AppendFrame(nil, KindEnd, 1, nil))
	f.Add([]byte{FrameMagic, KindRecord, 1, 0xFF, 0xFF})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, rest, err := ParseFrame(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatal("rest grew")
		}
		// Re-encoding an accepted frame yields a frame that parses back
		// identically. (Byte equality is not guaranteed: the length
		// prefix tolerates non-minimal varints.)
		enc := AppendFrame(nil, frame.Kind, frame.Version, frame.Payload)
		again, rest2, err := ParseFrame(enc)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-encode failed to parse: %v", err)
		}
		if again.Kind != frame.Kind || again.Version != frame.Version || !bytes.Equal(again.Payload, frame.Payload) {
			t.Fatal("re-encode parsed differently")
		}
		// The streaming reader agrees with the contiguous parser.
		fr := NewFrameReader(bytes.NewReader(data), 0)
		sf, err := fr.Read()
		if err != nil {
			t.Fatalf("stream reader rejected what ParseFrame accepted: %v", err)
		}
		if sf.Kind != frame.Kind || sf.Version != frame.Version || !bytes.Equal(sf.Payload, frame.Payload) {
			t.Fatal("stream reader decoded a different frame")
		}
	})
}

package codec

import (
	"strings"
	"testing"
)

func TestSharedStringsInternTruncate(t *testing.T) {
	var tab SharedStrings
	if got := tab.Intern("movie"); got != 0 {
		t.Fatalf("first intern = %d, want 0", got)
	}
	if got := tab.Intern("title"); got != 1 {
		t.Fatalf("second intern = %d, want 1", got)
	}
	if got := tab.Intern("movie"); got != 0 {
		t.Fatalf("re-intern = %d, want 0", got)
	}
	mark := tab.Len()
	tab.Intern("year")
	tab.Intern("genre")
	tab.Truncate(mark)
	if tab.Len() != 2 {
		t.Fatalf("after truncate Len = %d, want 2", tab.Len())
	}
	// A rolled-back string must get a fresh index on re-intern, not a
	// stale one from the deleted map entry.
	if got := tab.Intern("year"); got != 2 {
		t.Fatalf("re-intern after truncate = %d, want 2", got)
	}
}

func TestStrTabDeltaRoundTrip(t *testing.T) {
	var enc SharedStrings
	enc.Intern("movie")
	enc.Intern("title")
	first := enc.AppendDelta(nil, 0)
	mark := enc.Len()
	enc.Intern("year")
	second := enc.AppendDelta(nil, mark)

	var dec StrTab
	for _, payload := range [][]byte{first, second} {
		base, entries, err := DecodeStrTabPayload(payload, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.Apply(base, entries); err != nil {
			t.Fatal(err)
		}
	}
	if dec.Len() != 3 || dec.Strings()[2] != "year" {
		t.Fatalf("replayed table = %q", dec.Strings())
	}

	// Replaying the second delta again must be refused (base mismatch)…
	base, entries, err := DecodeStrTabPayload(second, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Apply(base, entries); err == nil {
		t.Fatal("replayed delta accepted")
	}
	// …but a base-0 delta resets the table unconditionally.
	if err := dec.Apply(0, []string{"fresh"}); err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 1 || dec.Strings()[0] != "fresh" {
		t.Fatalf("after reset table = %q", dec.Strings())
	}
}

func TestStrTabZeroCopyAliases(t *testing.T) {
	payload := AppendStrTabPayload(nil, 0, []string{"alpha", "beta"})
	_, entries, err := DecodeStrTabPayload(payload, true)
	if err != nil {
		t.Fatal(err)
	}
	if entries[0] != "alpha" || entries[1] != "beta" {
		t.Fatalf("zero-copy entries = %q", entries)
	}
	// Empty strings must be safe in zero-copy mode (no &b[0] on nil).
	payload = AppendStrTabPayload(nil, 0, []string{"", "x"})
	_, entries, err = DecodeStrTabPayload(payload, true)
	if err != nil {
		t.Fatal(err)
	}
	if entries[0] != "" || entries[1] != "x" {
		t.Fatalf("zero-copy empty entry = %q", entries)
	}
}

func TestStrTabRejectsForgedCount(t *testing.T) {
	payload := AppendUvarint(nil, 0)
	payload = AppendUvarint(payload, 1<<40) // entry count far beyond the bytes present
	if _, _, err := DecodeStrTabPayload(payload, false); err == nil {
		t.Fatal("forged count accepted")
	}
	// Trailing garbage after the declared entries is an error too.
	payload = AppendStrTabPayload(nil, 0, []string{"a"})
	payload = append(payload, 0xFF)
	if _, _, err := DecodeStrTabPayload(payload, false); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func FuzzDecodeStrTab(f *testing.F) {
	f.Add(AppendStrTabPayload(nil, 0, []string{"movie", "title", strings.Repeat("x", 300)}))
	f.Add(AppendStrTabPayload(nil, 7, []string{""}))
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic or allocate unboundedly; on success the
		// result must re-encode to an equivalent payload.
		base, entries, err := DecodeStrTabPayload(data, false)
		if err != nil {
			return
		}
		re := AppendStrTabPayload(nil, base, entries)
		b2, e2, err := DecodeStrTabPayload(re, true)
		if err != nil {
			t.Fatalf("re-encoded payload rejected: %v", err)
		}
		if b2 != base || len(e2) != len(entries) {
			t.Fatalf("round trip changed shape: base %d→%d, %d→%d entries", base, b2, len(entries), len(e2))
		}
		for i := range entries {
			if entries[i] != e2[i] {
				t.Fatalf("entry %d changed: %q → %q", i, entries[i], e2[i])
			}
		}
	})
}

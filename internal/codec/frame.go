// CRC-32C frames: the self-describing envelope every binary payload in
// the system travels in. A frame names its kind (what the payload is)
// and version (which revision of that payload layout), carries a
// uvarint-prefixed payload, and ends in a CRC-32C (Castagnoli) checksum
// of kind, version and payload — so a decoder can tell truncation and
// bit rot from data it merely does not understand.
//
// Layout (little endian):
//
//	[magic 0xC6] [kind 1B] [version 1B] [uvarint payload length]
//	[payload] [CRC-32C 4B over kind|version|payload]
package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// FrameMagic is the first byte of every frame. It is deliberately not
// printable ASCII, so a JSON payload (which starts with '{' or a space)
// can never be confused for a frame.
const FrameMagic = 0xC6

// Registered frame kinds. The registry is global across formats so a
// payload routed to the wrong decoder is rejected by kind, not
// misparsed.
const (
	// KindDocument is a pxml document in flat arena form (store v4
	// snapshot documents).
	KindDocument byte = 'D'
	// KindRecord is one write-ahead-log record payload, in exactly the
	// encoding the WAL frames on disk (wire replication ships these).
	KindRecord byte = 'R'
	// KindPageHeader opens a streamed WAL page (database, positions,
	// digest, epoch).
	KindPageHeader byte = 'H'
	// KindSnapshotHeader opens a streamed snapshot bootstrap (manifest
	// metadata and histories).
	KindSnapshotHeader byte = 'S'
	// KindTree is a pxml document in flat arena form inside a snapshot
	// stream.
	KindTree byte = 'T'
	// KindEnd closes a stream; its payload is the uvarint count of the
	// frames that preceded it, so a truncated stream is detectable even
	// at a frame boundary.
	KindEnd byte = 'E'
	// KindStrTab is an interned-string-table delta (strtab.go): the
	// shared dictionary that store v5 documents, WAL v3 records, and
	// compressed replication pages resolve their varint string refs
	// against.
	KindStrTab byte = 'I'
)

// MaxFramePayload bounds a single frame payload (matches the WAL's
// per-record limit). A declared length beyond it is treated as garbage,
// not an allocation request.
const MaxFramePayload = 256 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func frameCRC(kind, version byte, payload []byte) uint32 {
	crc := crc32.Update(0, crcTable, []byte{kind, version})
	return crc32.Update(crc, crcTable, payload)
}

// Frame is one decoded frame. Payload aliases the decode input for
// ParseFrame and is freshly allocated for FrameReader.
type Frame struct {
	Kind    byte
	Version byte
	Payload []byte
}

// AppendFrame appends a frame carrying payload.
func AppendFrame(dst []byte, kind, version byte, payload []byte) []byte {
	dst = append(dst, FrameMagic, kind, version)
	dst = AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, frameCRC(kind, version, payload))
}

// ParseFrame decodes one frame from the front of data, returning it and
// the bytes that follow. The payload aliases data.
func ParseFrame(data []byte) (Frame, []byte, error) {
	r := NewReader(data)
	if m := r.Byte(); r.Err() == nil && m != FrameMagic {
		return Frame{}, nil, fmt.Errorf("%w: bad frame magic 0x%02x", ErrInvalid, m)
	}
	kind := r.Byte()
	version := r.Byte()
	n := r.Uvarint()
	if r.Err() != nil {
		return Frame{}, nil, r.Err()
	}
	if n > MaxFramePayload {
		return Frame{}, nil, fmt.Errorf("%w: frame payload of %d bytes exceeds the %d byte limit", ErrInvalid, n, MaxFramePayload)
	}
	if n+4 > uint64(r.Len()) {
		return Frame{}, nil, fmt.Errorf("%w: truncated frame (%d payload bytes declared, %d present)", ErrInvalid, n, r.Len())
	}
	off := len(data) - r.Len()
	payload := data[off : off+int(n) : off+int(n)]
	sum := binary.LittleEndian.Uint32(data[off+int(n):])
	if frameCRC(kind, version, payload) != sum {
		return Frame{}, nil, fmt.Errorf("%w: frame checksum mismatch", ErrInvalid)
	}
	return Frame{Kind: kind, Version: version, Payload: payload}, data[off+int(n)+4:], nil
}

// FrameWriter writes frames to a stream. It buffers one frame at a time
// and reuses the buffer across writes.
type FrameWriter struct {
	w   io.Writer
	buf []byte
}

// NewFrameWriter returns a FrameWriter over w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w}
}

// Write emits one frame. The frame is handed to the underlying writer in
// a single Write call, so chunked HTTP responses flush whole frames.
func (fw *FrameWriter) Write(kind, version byte, payload []byte) error {
	fw.buf = AppendFrame(fw.buf[:0], kind, version, payload)
	_, err := fw.w.Write(fw.buf)
	return err
}

// FrameReader reads frames from a stream. A clean end between frames is
// io.EOF; an end inside a frame is io.ErrUnexpectedEOF. Declared payload
// lengths beyond max (MaxFramePayload when max <= 0) are rejected before
// any allocation.
type FrameReader struct {
	r   *bufio.Reader
	max uint64
}

// NewFrameReader returns a FrameReader over r.
func NewFrameReader(r io.Reader, max int) *FrameReader {
	if max <= 0 {
		max = MaxFramePayload
	}
	return &FrameReader{r: bufio.NewReader(r), max: uint64(max)}
}

// Read decodes the next frame. The returned payload is freshly
// allocated and owned by the caller.
func (fr *FrameReader) Read() (Frame, error) {
	m, err := fr.r.ReadByte()
	if err != nil {
		return Frame{}, err // io.EOF here is a clean stream end
	}
	if m != FrameMagic {
		return Frame{}, fmt.Errorf("%w: bad frame magic 0x%02x", ErrInvalid, m)
	}
	var hdr [2]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return Frame{}, unexpected(err)
	}
	n, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return Frame{}, unexpected(err)
	}
	if n > fr.max {
		return Frame{}, fmt.Errorf("%w: frame payload of %d bytes exceeds the %d byte limit", ErrInvalid, n, fr.max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return Frame{}, unexpected(err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(fr.r, sum[:]); err != nil {
		return Frame{}, unexpected(err)
	}
	if frameCRC(hdr[0], hdr[1], payload) != binary.LittleEndian.Uint32(sum[:]) {
		return Frame{}, fmt.Errorf("%w: frame checksum mismatch", ErrInvalid)
	}
	return Frame{Kind: hdr[0], Version: hdr[1], Payload: payload}, nil
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

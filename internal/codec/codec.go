// Package codec is the shared binary encoding layer for every hot-path
// format in the system: snapshot documents (internal/store), write-ahead
// log records (internal/catalog), and the replication wire
// (internal/replica, internal/server). It provides
//
//   - append-style primitives: unsigned varints, fixed 64-bit values,
//     and length-prefixed strings/byte blobs;
//   - a bounds-checked Reader with a sticky error, whose every declared
//     length is capped against the input actually remaining — arbitrary
//     bytes can make it fail, never allocate unboundedly or panic;
//   - a string table for interning repeated tags and values once per
//     payload;
//   - CRC-32C-protected, versioned frames (frame.go) in both
//     contiguous-buffer and streaming (io.Reader/io.Writer) forms.
//
// Formats built on the package stay mutually recognizable: each frame
// names its kind and version, so a decoder can reject what it does not
// understand instead of misreading it.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrInvalid is the base error for every decoding failure: truncated
// input, a declared length exceeding the bytes present, a checksum
// mismatch, or an unknown frame kind/version.
var ErrInvalid = errors.New("codec: invalid data")

// AppendUvarint appends v in unsigned-varint form.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendUint64 appends v as 8 fixed little-endian bytes.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendFloat64 appends the IEEE-754 bits of f as 8 little-endian bytes.
func AppendFloat64(dst []byte, f float64) []byte {
	return AppendUint64(dst, math.Float64bits(f))
}

// AppendBytes appends b with a uvarint length prefix.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendString appends s with a uvarint length prefix.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Reader decodes the primitives from a byte slice. Every read is bounds
// checked against the bytes remaining; the first failure sticks (all
// later reads return zero values) and is reported by Err and Finish.
// A Reader never panics and never allocates more than the input's own
// length: declared sizes beyond the remaining bytes are rejected, not
// trusted.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a Reader over data. The Reader aliases data; Bytes
// returns subslices of it.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrInvalid, fmt.Sprintf(format, args...), r.off)
	}
}

// Err returns the first decoding failure, or nil.
func (r *Reader) Err() error { return r.err }

// Len reports the bytes not yet consumed.
func (r *Reader) Len() int {
	if r.err != nil {
		return 0
	}
	return len(r.data) - r.off
}

// Finish returns the sticky error if any, and otherwise fails unless the
// input was consumed exactly.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes after payload", ErrInvalid, len(r.data)-r.off)
	}
	return nil
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail("truncated byte")
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

// Uint64 reads 8 fixed little-endian bytes.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.data)-r.off < 8 {
		r.fail("truncated uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

// Float64 reads 8 little-endian bytes as IEEE-754 bits.
func (r *Reader) Float64() float64 {
	return math.Float64frombits(r.Uint64())
}

// Bytes reads a uvarint-length-prefixed blob. The returned slice aliases
// the Reader's input; callers that outlive the input must copy. A length
// exceeding the remaining bytes is a decoding error, never an allocation.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("declared length %d exceeds %d remaining bytes", n, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return b
}

// String reads a uvarint-length-prefixed string (one copy).
func (r *Reader) String() string {
	return string(r.Bytes())
}

// StringTable interns strings for one payload: Intern returns a stable
// dense index (first come, first numbered), AppendTo serializes the table
// as a uvarint count followed by length-prefixed entries.
type StringTable struct {
	index map[string]uint64
	list  []string
}

// Intern returns the table index for s, adding it on first sight.
func (t *StringTable) Intern(s string) uint64 {
	if i, ok := t.index[s]; ok {
		return i
	}
	if t.index == nil {
		t.index = make(map[string]uint64)
	}
	i := uint64(len(t.list))
	t.index[s] = i
	t.list = append(t.list, s)
	return i
}

// Len reports the number of interned strings.
func (t *StringTable) Len() int { return len(t.list) }

// AppendTo serializes the table.
func (t *StringTable) AppendTo(dst []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(t.list)))
	for _, s := range t.list {
		dst = AppendString(dst, s)
	}
	return dst
}

// StringTable reads a table serialized by StringTable.AppendTo. The
// declared entry count is capped against the remaining input (each entry
// costs at least one byte), so a forged count cannot force a huge
// allocation.
func (r *Reader) StringTable() []string {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("string table declares %d entries with %d bytes remaining", n, len(r.data)-r.off)
		return nil
	}
	list := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		list = append(list, r.String())
		if r.err != nil {
			return nil
		}
	}
	return list
}

// Shared string interning: one dictionary of tag/text strings that many
// payloads reference by dense varint index instead of re-spelling.
//
// Two sides cooperate:
//
//   - SharedStrings is the append side. An encoder interns strings while
//     building payloads; the entries added since a known base travel as a
//     strtab *delta* ahead of (or inside) the payload that needs them.
//     Truncate rolls back a failed append, keeping the in-memory table in
//     lockstep with what durably reached disk.
//   - StrTab is the decode side. It replays deltas with Apply: a delta
//     based at 0 resets the table (a segment or page boundary), a delta
//     based exactly at the current length appends, anything else is a
//     desynchronization error, never a misread.
//
// Delta payload layout (also the KindStrTab frame payload):
//
//	[uvarint base] [uvarint count] [count × length-prefixed entries]
//
// The base is the table length the entries extend; a decoder holding a
// table of a different length must refuse the delta.
package codec

import (
	"fmt"
	"unsafe"
)

// StrTabVersion is the revision of the strtab delta payload layout.
const StrTabVersion = 1

// maxStrTabEntries caps a table's size; a table needs one entry per
// distinct string, so real workloads sit orders of magnitude below this.
const maxStrTabEntries = 1 << 26

// SharedStrings is the append-side interning table: strings get dense
// indices in first-sight order, and the entries past any remembered base
// form a delta for the decode side. Not safe for concurrent use.
type SharedStrings struct {
	index map[string]uint64
	list  []string
}

// Intern returns the table index for s, adding it on first sight.
func (t *SharedStrings) Intern(s string) uint64 {
	if i, ok := t.index[s]; ok {
		return i
	}
	if t.index == nil {
		t.index = make(map[string]uint64)
	}
	i := uint64(len(t.list))
	t.index[s] = i
	t.list = append(t.list, s)
	return i
}

// Len reports the number of interned strings.
func (t *SharedStrings) Len() int { return len(t.list) }

// Strings returns the interned strings in index order. The slice aliases
// the table; callers must not modify it and must not hold it across
// Intern/Truncate/Reset.
func (t *SharedStrings) Strings() []string { return t.list }

// Truncate discards every entry at index n and beyond, rolling the table
// back to length n. It is the undo for Intern calls made while building
// a payload that then failed to commit.
func (t *SharedStrings) Truncate(n int) {
	for _, s := range t.list[min(n, len(t.list)):] {
		delete(t.index, s)
	}
	t.list = t.list[:min(n, len(t.list))]
}

// Reset empties the table (a segment rotation: the next delta is based
// at 0 and the new segment is self-contained).
func (t *SharedStrings) Reset() { t.Truncate(0) }

// AppendDelta appends the delta payload covering entries [base, Len).
func (t *SharedStrings) AppendDelta(dst []byte, base int) []byte {
	return AppendStrTabPayload(dst, uint64(base), t.list[min(base, len(t.list)):])
}

// StrTab is the decode-side table: a replay of the append side built by
// applying deltas in order.
type StrTab struct {
	list []string
}

// Apply merges one decoded delta. A base of 0 resets the table — the
// encoder started a fresh table at a segment or page boundary — and a
// base equal to the current length appends. Any other base means the
// decoder missed or replayed a delta; Apply refuses rather than misalign
// every later string reference.
func (t *StrTab) Apply(base uint64, entries []string) error {
	switch {
	case base == 0:
		t.list = append(t.list[:0:0], entries...)
	case base == uint64(len(t.list)):
		t.list = append(t.list, entries...)
	default:
		return fmt.Errorf("%w: strtab delta based at %d, table holds %d entries", ErrInvalid, base, len(t.list))
	}
	return nil
}

// Len reports the number of entries replayed so far.
func (t *StrTab) Len() int { return len(t.list) }

// Strings returns the replayed table in index order. The slice aliases
// the StrTab; callers must not modify it.
func (t *StrTab) Strings() []string { return t.list }

// Reset empties the table (a segment boundary on the replay side).
func (t *StrTab) Reset() { t.list = t.list[:0] }

// AppendStrTabPayload appends a strtab delta payload: entries extending a
// table of length base.
func AppendStrTabPayload(dst []byte, base uint64, entries []string) []byte {
	dst = AppendUvarint(dst, base)
	dst = AppendUvarint(dst, uint64(len(entries)))
	for _, s := range entries {
		dst = AppendString(dst, s)
	}
	return dst
}

// DecodeStrTabPayload decodes one strtab delta payload. With zeroCopy the
// returned entries are unsafe views into payload — valid only while the
// backing buffer lives and is never modified (an mmap'd store document, a
// buffer pinned by the caller); without it every entry is a fresh copy.
// The declared entry count is capped against the bytes present, so forged
// counts cannot force large allocations.
func DecodeStrTabPayload(payload []byte, zeroCopy bool) (base uint64, entries []string, err error) {
	r := NewReader(payload)
	base = r.Uvarint()
	n := r.Uvarint()
	if r.Err() == nil && (n > uint64(r.Len()) || n > maxStrTabEntries) {
		return 0, nil, fmt.Errorf("%w: strtab declares %d entries with %d bytes remaining", ErrInvalid, n, r.Len())
	}
	if base > maxStrTabEntries {
		return 0, nil, fmt.Errorf("%w: strtab base %d beyond table cap", ErrInvalid, base)
	}
	entries = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		if zeroCopy {
			entries = append(entries, unsafeString(r.Bytes()))
		} else {
			entries = append(entries, r.String())
		}
	}
	if err := r.Finish(); err != nil {
		return 0, nil, fmt.Errorf("strtab payload: %w", err)
	}
	return base, entries, nil
}

// DecodeStrTabDelta decodes a delta from the front of a payload stream
// (a Reader mid-record), without requiring it to end there.
func DecodeStrTabDelta(r *Reader, zeroCopy bool) (base uint64, entries []string, err error) {
	base = r.Uvarint()
	n := r.Uvarint()
	if r.Err() != nil {
		return 0, nil, r.Err()
	}
	if n > uint64(r.Len()) || n > maxStrTabEntries {
		return 0, nil, fmt.Errorf("%w: strtab declares %d entries with %d bytes remaining", ErrInvalid, n, r.Len())
	}
	if base > maxStrTabEntries {
		return 0, nil, fmt.Errorf("%w: strtab base %d beyond table cap", ErrInvalid, base)
	}
	entries = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		if zeroCopy {
			entries = append(entries, unsafeString(r.Bytes()))
		} else {
			entries = append(entries, r.String())
		}
	}
	if r.Err() != nil {
		return 0, nil, r.Err()
	}
	return base, entries, nil
}

// StringTableView reads a table serialized by StringTable.AppendTo, like
// Reader.StringTable, but the returned entries alias the Reader's input
// instead of copying — valid only while the backing buffer lives and is
// never modified.
func (r *Reader) StringTableView() []string {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail("string table declares %d entries with %d bytes remaining", n, len(r.data)-r.off)
		return nil
	}
	list := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		list = append(list, unsafeString(r.Bytes()))
		if r.err != nil {
			return nil
		}
	}
	return list
}

// unsafeString views b as a string without copying. The result is valid
// exactly as long as b's backing array lives unmodified; zero-copy
// decoders confine it to buffers with a pinned lifetime (mmap'd files,
// whole-file reads retained by the decoded tree).
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

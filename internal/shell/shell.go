// Package shell implements the interactive demonstration front end — the
// role §VII of the paper describes: load sources, configure the Oracle
// with a few simple knowledge rules, integrate with varying degrees of
// confusion, query the result, and feed answers back. It reads commands
// from any reader and writes to any writer, so it is fully testable and
// works both interactively and scripted.
package shell

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/explain"
	"repro/internal/feedback"
	"repro/internal/integrate"
	"repro/internal/oracle"
	"repro/internal/pxml"
	"repro/internal/query"
	"repro/internal/queryindex"
	"repro/internal/store"
	"repro/internal/worlds"
	"repro/internal/xmlcodec"
)

// Shell holds the interactive session state.
type Shell struct {
	tree   *pxml.Tree
	schema *dtd.Schema
	// index is the query index of tree; it is rebuilt lazily whenever
	// the tree's digest no longer matches (load, integrate, feedback,
	// normalize all swap the tree).
	index     *queryindex.Index
	ruleSpec  string
	lastQuery *query.Query
	// lastQuerySrc is the text of lastQuery, needed when judging answers
	// through a catalog database (whose API is string-based).
	lastQuerySrc string
	// cat/db are set when a durable catalog is attached (data/use):
	// mutations then run through db's journaled core and tree mirrors it.
	cat *catalog.Catalog
	db  *catalog.DB
	out io.Writer
}

// ensureIndex returns the query index for the current tree, rebuilding it
// after any mutation (detected by digest mismatch, an O(1) check).
func (s *Shell) ensureIndex() *queryindex.Index {
	if s.index == nil || s.index.Digest() != s.tree.Digest() {
		s.index = queryindex.Build(s.tree)
	}
	return s.index
}

// New creates a shell writing to out.
func New(out io.Writer) *Shell {
	return &Shell{out: out}
}

// Run reads commands line by line until EOF or "quit". Errors of
// individual commands are printed, not fatal.
func (s *Shell) Run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(s.out, `IMPrECISE demonstration shell — type "help" for commands`)
	for {
		fmt.Fprint(s.out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(s.out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := s.Execute(line); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
		}
	}
}

// Execute runs one command line.
func (s *Shell) Execute(line string) error {
	cmd, rest := splitCommand(line)
	switch cmd {
	case "help":
		s.help()
		return nil
	case "load":
		return s.load(rest)
	case "loadxml":
		return s.loadXML(rest)
	case "dtd":
		return s.loadDTD(rest)
	case "dtdinline":
		return s.loadDTDInline(rest)
	case "rules":
		return s.setRules(rest)
	case "integrate":
		return s.integrate(rest)
	case "integratexml":
		return s.integrateXML(rest)
	case "query":
		return s.query(rest)
	case "plan":
		return s.plan(rest)
	case "feedback":
		return s.feedback(rest)
	case "explain":
		return s.explain(rest)
	case "stats":
		return s.stats()
	case "worlds":
		return s.worlds(rest)
	case "normalize":
		return s.normalize()
	case "export":
		return s.export(rest)
	case "save":
		return s.save(rest)
	case "open":
		return s.open(rest)
	case "data":
		return s.data(rest)
	case "dbs":
		return s.listDBs()
	case "use":
		return s.use(rest)
	case "wal":
		return s.walCmd(rest)
	case "promote":
		return s.promote(rest)
	case "demo":
		return s.demo()
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func splitCommand(line string) (string, string) {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return line, ""
	}
	return line[:i], strings.TrimSpace(line[i+1:])
}

func (s *Shell) help() {
	fmt.Fprint(s.out, `commands:
  load <file>             load a document (plain or probabilistic XML)
  loadxml <xml>           load a document given inline
  dtd <file>              load DTD knowledge
  dtdinline <dtd text>    load DTD knowledge given inline
  rules <r1,r2,...>       set domain rules: genre, title, year, director
  integrate <file>        integrate another source into the database
  integratexml <xml>      integrate an inline source
  query <xpath>           evaluate a query, ranked answers (the planner
                          picks exact/enumerate/sample automatically)
  plan <xpath>            evaluate like query, but show the evaluation
                          plan (chosen method, pruning, cost estimates)
  feedback <correct|incorrect> <value>
                          judge an answer of the last query
  explain <value>         trace an answer of the last query to the choice
                          points it depends on
  stats                   size and uncertainty measures
  worlds [n]              list up to n possible worlds (default 5)
  normalize               canonicalize the document
  export <file>           write the document as probabilistic XML
  save <dir>              persist document + schema as a snapshot
  open <dir>              load a snapshot saved with save
  data <dir>              attach a durable multi-database catalog
                          (recovers every database from snapshot + WAL)
  dbs                     list the attached catalog's databases
  use <name>              switch to (or create) a catalog database; from
                          then on mutations are write-ahead logged
  wal [n]                 show the last n ops of the active database's
                          write-ahead log (default 10)
  promote <url> [advertise-url]
                          promote the replica server at url to primary
                          (raises the cluster epoch, fences the old one)
  demo                    run the built-in Figure-2 walkthrough
  quit                    leave
`)
}

func (s *Shell) needTree() error {
	if s.tree == nil {
		return fmt.Errorf("no document loaded (use load or loadxml)")
	}
	return nil
}

// setDocument installs a full document: directly in bare mode, through
// the journaled ReplaceTree when a catalog database is active (so the
// load survives a crash like any other mutation).
func (s *Shell) setDocument(t *pxml.Tree) error {
	if s.db != nil {
		if err := s.db.Core().ReplaceTree(t); err != nil {
			return err
		}
		s.tree = s.db.Core().Tree()
		return nil
	}
	s.tree = t
	return nil
}

func (s *Shell) load(path string) error {
	if path == "" {
		return fmt.Errorf("usage: load <file>")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := xmlcodec.Decode(f)
	if err != nil {
		return err
	}
	if err := s.setDocument(t); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "loaded %s: %d nodes, %s worlds\n", path, t.NodeCount(), t.WorldCount())
	return nil
}

func (s *Shell) loadXML(src string) error {
	t, err := xmlcodec.DecodeString(src)
	if err != nil {
		return err
	}
	if err := s.setDocument(t); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "loaded inline document: %d nodes, %s worlds\n", t.NodeCount(), t.WorldCount())
	return nil
}

func (s *Shell) loadDTD(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	schema, err := dtd.ParseString(string(data))
	if err != nil {
		return err
	}
	s.schema = schema
	fmt.Fprintf(s.out, "schema loaded: %d element types\n", len(schema.Tags()))
	return nil
}

func (s *Shell) loadDTDInline(src string) error {
	schema, err := dtd.ParseString(src)
	if err != nil {
		return err
	}
	s.schema = schema
	fmt.Fprintf(s.out, "schema loaded: %d element types\n", len(schema.Tags()))
	return nil
}

func (s *Shell) setRules(spec string) error {
	if _, err := rulesFromSpec(spec); err != nil {
		return err
	}
	s.ruleSpec = spec
	fmt.Fprintf(s.out, "rules: %s\n", specOrNone(spec))
	return nil
}

func specOrNone(spec string) string {
	if spec == "" {
		return "(generic only)"
	}
	return spec
}

func rulesFromSpec(spec string) ([]oracle.Rule, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	var rules []oracle.Rule
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case "genre":
			rules = append(rules, oracle.GenreRule())
		case "title":
			rules = append(rules, oracle.TitleRule())
		case "year":
			rules = append(rules, oracle.YearRule())
		case "director":
			rules = append(rules, oracle.DirectorRule())
		case "":
		default:
			return nil, fmt.Errorf("unknown rule %q", name)
		}
	}
	return rules, nil
}

func (s *Shell) integrate(path string) error {
	if err := s.needTree(); err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	other, err := xmlcodec.Decode(f)
	if err != nil {
		return err
	}
	return s.integrateTree(other)
}

func (s *Shell) integrateXML(src string) error {
	if err := s.needTree(); err != nil {
		return err
	}
	other, err := xmlcodec.DecodeString(src)
	if err != nil {
		return err
	}
	return s.integrateTree(other)
}

func (s *Shell) integrateTree(other *pxml.Tree) error {
	if s.db != nil {
		// Journaled path: the catalog database's own oracle/schema (set
		// when the catalog was attached) drive the integration.
		stats, err := s.db.Core().IntegrateTree(other)
		if err != nil {
			return err
		}
		res := s.db.Core().Tree()
		s.tree = res
		fmt.Fprintf(s.out, "integrated: %d nodes, %s worlds, %d undecided pairs, %d matchings pruned by schema\n",
			res.NodeCount(), res.WorldCount(), stats.UndecidedPairs, stats.MatchingsPruned)
		return nil
	}
	rules, err := rulesFromSpec(s.ruleSpec)
	if err != nil {
		return err
	}
	res, stats, err := integrate.Integrate(s.tree, other, integrate.Config{
		Oracle: oracle.New(rules, oracle.WithEstimator("movie", oracle.TitleEstimator())),
		Schema: s.schema,
	})
	if err != nil {
		return err
	}
	s.tree = res
	fmt.Fprintf(s.out, "integrated: %d nodes, %s worlds, %d undecided pairs, %d matchings pruned by schema\n",
		res.NodeCount(), res.WorldCount(), stats.UndecidedPairs, stats.MatchingsPruned)
	return nil
}

func (s *Shell) query(src string) error {
	_, err := s.runQuery(src, false)
	return err
}

// plan evaluates like query but prints the planner's reasoning first.
func (s *Shell) plan(src string) error {
	_, err := s.runQuery(src, true)
	return err
}

func (s *Shell) runQuery(src string, explain bool) (query.Result, error) {
	if err := s.needTree(); err != nil {
		return query.Result{}, err
	}
	q, err := query.Compile(src)
	if err != nil {
		return query.Result{}, err
	}
	var res query.Result
	if s.db != nil {
		// Catalog databases evaluate through their own planner, index and
		// result caches.
		res, err = s.db.Core().QueryCompiled(q)
	} else {
		res, err = query.EvalIndexed(s.tree, q, query.Options{}, s.ensureIndex())
	}
	if err != nil {
		return query.Result{}, err
	}
	s.lastQuery = q
	s.lastQuerySrc = src
	fmt.Fprintf(s.out, "[%s]\n", res.Method)
	if explain && res.Plan != nil {
		pl := res.Plan
		fmt.Fprintf(s.out, "  plan: method=%s indexed=%v pruned=%.0f%% worlds=%s workers=%d\n",
			pl.Method, pl.Indexed, pl.PrunedFraction*100, pl.EstimatedWorlds, pl.Workers)
		if pl.AnchorTag != "" {
			fmt.Fprintf(s.out, "  anchor: <%s> local-world bound %s\n", pl.AnchorTag, pl.AnchorWorldBound)
		}
		fmt.Fprintf(s.out, "  reason: %s\n", pl.Reason)
	}
	for i, a := range res.Answers {
		if i >= 15 {
			fmt.Fprintf(s.out, "  … %d more\n", len(res.Answers)-i)
			break
		}
		fmt.Fprintf(s.out, "  %5.1f%%  %s\n", a.P*100, a.Value)
	}
	if len(res.Answers) == 0 {
		fmt.Fprintln(s.out, "  (no answers)")
	}
	return res, nil
}

func (s *Shell) feedback(rest string) error {
	if err := s.needTree(); err != nil {
		return err
	}
	if s.lastQuery == nil {
		return fmt.Errorf("no previous query to judge")
	}
	verdict, value := splitCommand(rest)
	var j feedback.Judgment
	switch verdict {
	case "correct":
		j = feedback.Correct
	case "incorrect":
		j = feedback.Incorrect
	default:
		return fmt.Errorf("usage: feedback <correct|incorrect> <value>")
	}
	if value == "" {
		return fmt.Errorf("usage: feedback <correct|incorrect> <value>")
	}
	if s.db != nil {
		ev, err := s.db.Core().Feedback(s.lastQuerySrc, value, j == feedback.Correct)
		if err != nil {
			return err
		}
		s.tree = s.db.Core().Tree()
		fmt.Fprintf(s.out, "feedback applied: worlds %s -> %s (prior %.4g)\n",
			ev.WorldsBefore, ev.WorldsAfter, ev.PriorP)
		return nil
	}
	session := feedback.NewSession(s.tree, feedback.Options{})
	ev, err := session.Apply(s.lastQuery, value, j)
	if err != nil {
		return err
	}
	s.tree = session.Tree()
	fmt.Fprintf(s.out, "feedback applied: worlds %s -> %s (prior %.4g)\n",
		ev.WorldsBefore, ev.WorldsAfter, ev.PriorP)
	return nil
}

func (s *Shell) explain(value string) error {
	if err := s.needTree(); err != nil {
		return err
	}
	if s.lastQuery == nil {
		return fmt.Errorf("no previous query to explain")
	}
	if value == "" {
		return fmt.Errorf("usage: explain <value>")
	}
	report, err := explain.Answer(s.tree, s.lastQuery, value, explain.Options{})
	if err != nil {
		return err
	}
	fmt.Fprint(s.out, report.Format())
	return nil
}

func (s *Shell) stats() error {
	if err := s.needTree(); err != nil {
		return err
	}
	st := s.tree.CollectStats()
	fmt.Fprintf(s.out, "nodes: %d logical (%d physical), choice points: %d, worlds: %s, certain: %v\n",
		st.LogicalNodes, st.PhysicalNodes, s.tree.ChoicePoints(), st.Worlds, s.tree.IsCertain())
	if s.db != nil {
		ds := s.db.Stats()
		fmt.Fprintf(s.out, "durability: db %s, wal seq %d (%d op(s) past snapshot), %d compaction(s)\n",
			s.db.Name(), ds.WAL.LastSeq, ds.TailOps, ds.Compactions)
		c := s.db.Core()
		ms := c.MemoStats()
		fmt.Fprintf(s.out, "integrate memo: %d entries (cap %d), %d hits, %d misses\n",
			ms.Entries, ms.Capacity, ms.Hits, ms.Misses)
		qs := c.QueryStats()
		rc := c.ResultCacheStats()
		fmt.Fprintf(s.out, "query exec: %d active, %d started, %d canceled, %d budget aborts, %d collapses, %d pooled/%d inline tasks\n",
			qs.Active, qs.Started, qs.Canceled, qs.BudgetAborts, rc.Collapses, qs.PooledTasks, qs.InlineTasks)
		if iq := c.IngestStats(); iq.Enabled || iq.Depth > 0 {
			fmt.Fprintf(s.out, "ingest queue: %d pending (cap %d), %d accepted, %d applied, %d failed\n",
				iq.Depth, iq.Capacity, iq.Accepted, iq.Applied, iq.Failed)
		}
	}
	return nil
}

func (s *Shell) worlds(rest string) error {
	if err := s.needTree(); err != nil {
		return err
	}
	max := 5
	if rest != "" {
		v, err := strconv.Atoi(rest)
		if err != nil || v <= 0 {
			return fmt.Errorf("usage: worlds [n]")
		}
		max = v
	}
	n := 0
	worlds.Enumerate(s.tree, func(w worlds.World) bool {
		n++
		fmt.Fprintf(s.out, "--- world %d (p=%.4g) ---\n", n, w.P)
		for _, e := range w.Elements {
			fmt.Fprint(s.out, pxml.Sketch(e))
		}
		return n < max
	})
	return nil
}

func (s *Shell) normalize() error {
	if err := s.needTree(); err != nil {
		return err
	}
	if s.db != nil {
		before, after, err := s.db.Core().Normalize()
		if err != nil {
			return err
		}
		s.tree = s.db.Core().Tree()
		fmt.Fprintf(s.out, "normalized: %d -> %d nodes\n", before, after)
		return nil
	}
	before := s.tree.NodeCount()
	nt, err := s.tree.Normalize()
	if err != nil {
		return err
	}
	s.tree = nt
	fmt.Fprintf(s.out, "normalized: %d -> %d nodes\n", before, nt.NodeCount())
	return nil
}

func (s *Shell) export(path string) error {
	if err := s.needTree(); err != nil {
		return err
	}
	if path == "" {
		return fmt.Errorf("usage: export <file>")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := xmlcodec.Encode(f, s.tree, xmlcodec.EncodeOptions{Indent: "  "}); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "written: %s\n", path)
	return nil
}

func (s *Shell) save(dir string) error {
	if err := s.needTree(); err != nil {
		return err
	}
	if dir == "" {
		return fmt.Errorf("usage: save <dir>")
	}
	var (
		m   store.Manifest
		err error
	)
	if s.db != nil {
		// Histories ride along in the manifest of a catalog database.
		m, err = s.db.Core().SaveSnapshot(dir, "saved from shell")
	} else {
		m, err = store.Save(dir, s.tree, s.schema, "saved from shell")
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "saved: %s (%d nodes, %s worlds)\n", dir, m.LogicalNodes, m.Worlds)
	return nil
}

func (s *Shell) open(dir string) error {
	if dir == "" {
		return fmt.Errorf("usage: open <dir>")
	}
	if s.db != nil {
		// Journaled restore: the active database swaps to the snapshot.
		snap, err := s.db.Core().LoadSnapshot(dir)
		if err != nil {
			return err
		}
		s.tree = s.db.Core().Tree()
		s.schema = s.db.Core().Schema()
		fmt.Fprintf(s.out, "opened: %s into %s (%d nodes, %s worlds)\n",
			dir, s.db.Name(), snap.Manifest.LogicalNodes, snap.Manifest.Worlds)
		return nil
	}
	snap, err := store.Load(dir)
	if err != nil {
		return err
	}
	s.tree = snap.Tree
	s.schema = snap.Schema
	fmt.Fprintf(s.out, "opened: %s (%d nodes, %s worlds, saved %s)\n",
		dir, snap.Manifest.LogicalNodes, snap.Manifest.Worlds,
		snap.Manifest.SavedAt.Format("2006-01-02 15:04:05"))
	return nil
}

// data attaches a durable catalog, recovering every database inside it.
// Rules and DTD knowledge set before the attach become the catalog's
// integration configuration.
func (s *Shell) data(dir string) error {
	if dir == "" {
		return fmt.Errorf("usage: data <dir>")
	}
	rules, err := rulesFromSpec(s.ruleSpec)
	if err != nil {
		return err
	}
	opts := catalog.Options{Config: core.Config{Schema: s.schema, Rules: rules}}
	// Open the new catalog before detaching the old one, so a failed
	// attach (locked or unreadable directory) leaves the session intact.
	// The one exception is re-attaching the same directory, where our
	// own single-process lock forces the close to come first.
	if s.cat != nil && sameDir(s.cat.Dir(), dir) {
		s.detachCatalog()
	}
	cat, err := catalog.Open(dir, opts)
	if err != nil {
		return err
	}
	if s.cat != nil {
		s.detachCatalog()
	}
	s.cat, s.db = cat, nil
	names := cat.Names()
	fmt.Fprintf(s.out, "attached: %s (%d database(s))\n", dir, len(names))
	for _, n := range names {
		fmt.Fprintf(s.out, "  %s\n", n)
	}
	fmt.Fprintln(s.out, `select one with "use <name>"`)
	return nil
}

// detachCatalog closes the attached catalog and clears every piece of
// state that belonged to it. A tree mirrored from one of its databases
// must not survive as a bare-mode document: the user would keep
// mutating it believing the writes are journaled.
func (s *Shell) detachCatalog() {
	if s.db != nil {
		s.tree, s.index = nil, nil
	}
	s.cat.Close()
	s.cat, s.db = nil, nil
	s.lastQuery, s.lastQuerySrc = nil, ""
}

// sameDir reports whether two paths name the same directory.
func sameDir(a, b string) bool {
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	if errA != nil || errB != nil {
		return a == b
	}
	return aa == bb
}

func (s *Shell) listDBs() error {
	if s.cat == nil {
		return fmt.Errorf("no catalog attached (use data <dir>)")
	}
	dbs := s.cat.List()
	if len(dbs) == 0 {
		fmt.Fprintln(s.out, "(no databases)")
		return nil
	}
	for _, db := range dbs {
		marker := " "
		if db == s.db {
			marker = "*"
		}
		c := db.Core()
		fmt.Fprintf(s.out, "%s %-20s %6d nodes  %8s worlds  %d integrations, %d feedback\n",
			marker, db.Name(), c.Tree().NodeCount(), c.WorldCount(),
			c.IntegrationCount(), c.FeedbackCount())
	}
	return nil
}

// use switches the shell onto a catalog database (creating it if
// needed); every mutation from here on is write-ahead logged.
func (s *Shell) use(name string) error {
	if s.cat == nil {
		return fmt.Errorf("no catalog attached (use data <dir>)")
	}
	if name == "" {
		return fmt.Errorf("usage: use <name>")
	}
	db, err := s.cat.Get(name)
	if err != nil {
		db, err = s.cat.Create(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "created database %s\n", name)
	}
	s.db = db
	s.tree = db.Core().Tree()
	// The last query belongs to the previous database; judging its
	// answers against this one would condition the wrong document.
	s.lastQuery, s.lastQuerySrc = nil, ""
	if sch := db.Core().Schema(); sch != nil {
		s.schema = sch
	}
	fmt.Fprintf(s.out, "using %s: %d nodes, %s worlds, %d integrations, %d feedback\n",
		name, s.tree.NodeCount(), s.tree.WorldCount(),
		db.Core().IntegrationCount(), db.Core().FeedbackCount())
	return nil
}

// walCmd lists the tail of the active catalog database's write-ahead log
// — the records a follower would be shipped next.
// promote asks a running replica server (over HTTP) to take over as
// primary: POST /promote raises the cluster epoch and fences the old
// primary. The shell stays attached to whatever catalog it had — this is
// a cluster-operations command, not a local-state one.
func (s *Shell) promote(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("usage: promote <url> [advertise-url]")
	}
	advertise := ""
	if len(fields) == 2 {
		advertise = fields[1]
	}
	body, err := json.Marshal(map[string]string{"advertise_url": advertise})
	if err != nil {
		return err
	}
	u := strings.TrimRight(fields[0], "/") + "/promote"
	resp, err := http.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("promote: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("promote: POST %s: %s: %s", u, resp.Status, strings.TrimSpace(string(raw)))
	}
	var pr struct {
		Role       string `json:"role"`
		Epoch      uint64 `json:"epoch"`
		OldPrimary string `json:"old_primary"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return fmt.Errorf("promote: decoding response: %w", err)
	}
	fmt.Fprintf(s.out, "promoted: role %s, epoch %d\n", pr.Role, pr.Epoch)
	if pr.OldPrimary != "" {
		fmt.Fprintf(s.out, "fencing old primary %s\n", pr.OldPrimary)
	}
	return nil
}

func (s *Shell) walCmd(rest string) error {
	if s.db == nil {
		return fmt.Errorf("no catalog database selected (use data <dir>, then use <name>)")
	}
	n := 10
	if rest != "" {
		v, err := strconv.Atoi(rest)
		if err != nil || v <= 0 {
			return fmt.Errorf("usage: wal [n]")
		}
		n = v
	}
	last := s.db.LastSeq()
	var since uint64
	if uint64(n) < last {
		since = last - uint64(n)
	}
	recs, err := s.db.OpsSince(since, n)
	if errors.Is(err, catalog.ErrSeqGone) && since < last {
		// The requested window starts below the oldest on-disk record;
		// fall back to the snapshot position (always servable) so the
		// still-available tail is shown rather than nothing.
		snap := s.db.Stats().SnapshotSeq
		fmt.Fprintf(s.out, "(records through seq %d are compacted into the snapshot)\n", snap)
		if snap <= since {
			return nil
		}
		recs, err = s.db.OpsSince(snap, n)
	}
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Fprintf(s.out, "(log empty at seq %d)\n", last)
		return nil
	}
	for _, rec := range recs {
		detail := ""
		switch rec.Op.Kind {
		case core.OpIntegrate, core.OpBatch:
			detail = fmt.Sprintf("%d source(s)", len(rec.Op.Sources))
		case core.OpFeedback:
			verdict := "incorrect"
			if rec.Op.Correct {
				verdict = "correct"
			}
			detail = fmt.Sprintf("%s %q on %s", verdict, rec.Op.Value, rec.Op.Query)
		case core.OpReplace, core.OpLoad:
			detail = fmt.Sprintf("%d byte document", len(rec.Op.Tree))
		}
		fmt.Fprintf(s.out, "%6d  %-10s %s\n", rec.Seq, rec.Op.Kind, detail)
	}
	return nil
}

// demo replays the paper's Figure-2 walkthrough inside the shell.
func (s *Shell) demo() error {
	script := []string{
		`dtdinline <!ELEMENT addressbook (person*)> <!ELEMENT person (nm, tel?)> <!ELEMENT nm (#PCDATA)> <!ELEMENT tel (#PCDATA)>`,
		`loadxml <addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`,
		`integratexml <addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`,
		`stats`,
		`query //person[nm="John"]/tel`,
		`feedback incorrect 2222`,
		`query //person[nm="John"]/tel`,
		`stats`,
	}
	for _, line := range script {
		fmt.Fprintf(s.out, ">> %s\n", line)
		if err := s.Execute(line); err != nil {
			return err
		}
	}
	return nil
}

// Tags lists the known commands, for completion and tests.
func Tags() []string {
	cmds := []string{
		"help", "load", "loadxml", "dtd", "dtdinline", "rules", "integrate",
		"integratexml", "query", "plan", "feedback", "explain", "stats",
		"worlds", "normalize", "export", "save", "open", "data", "dbs",
		"use", "wal", "demo", "quit",
	}
	sort.Strings(cmds)
	return cmds
}

package shell_test

import (
	"strings"
	"testing"
)

// TestShellPlanCommand checks the plan command evaluates like query but
// prints the planner's reasoning, and that the index follows tree swaps.
func TestShellPlanCommand(t *testing.T) {
	out := exec(t,
		`loadxml <addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`,
		`integratexml <addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`,
		`plan //person[nm="John"]/tel`,
	)
	for _, want := range []string{"[exact]", "plan: method=exact indexed=true", "reason:", "1111"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plan output missing %q:\n%s", want, out)
		}
	}
}

// TestShellQueryAfterMutationReplans checks a query after feedback uses a
// fresh index (digest tracking) and reflects the conditioned document.
func TestShellQueryAfterMutationReplans(t *testing.T) {
	out := exec(t,
		`loadxml <addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`,
		`integratexml <addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`,
		`query //person[nm="John"]/tel`,
		`feedback incorrect 2222`,
		`plan //person[nm="John"]/tel`,
	)
	if !strings.Contains(out, "feedback applied") {
		t.Fatalf("feedback missing:\n%s", out)
	}
	// After rejecting 2222, the final plan run must not rank it anymore.
	tail := out[strings.LastIndex(out, "plan: method"):]
	if strings.Contains(tail, "2222") {
		t.Fatalf("rejected answer still ranked after replan:\n%s", out)
	}
	if !strings.Contains(tail, "100.0%  1111") {
		t.Fatalf("surviving answer not certain after feedback:\n%s", out)
	}
}

// TestShellPlanRequiresQuery pins usage errors.
func TestShellPlanRequiresQuery(t *testing.T) {
	if err := execErr(t, `plan //a`); err == nil {
		t.Fatal("plan without a document should fail")
	}
}

package shell_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/shell"
)

func exec(t *testing.T, lines ...string) string {
	t.Helper()
	var out strings.Builder
	sh := shell.New(&out)
	for _, line := range lines {
		if err := sh.Execute(line); err != nil {
			t.Fatalf("execute %q: %v\n%s", line, err, out.String())
		}
	}
	return out.String()
}

func execErr(t *testing.T, lines ...string) error {
	t.Helper()
	var out strings.Builder
	sh := shell.New(&out)
	var err error
	for _, line := range lines {
		if err = sh.Execute(line); err != nil {
			return err
		}
	}
	return nil
}

func TestShellDemoWalkthrough(t *testing.T) {
	out := exec(t, "demo")
	for _, want := range []string{
		"worlds: 3",
		"75.0%  1111",
		"75.0%  2222",
		"feedback applied: worlds 3 -> 1",
		"certain: true",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("demo output missing %q:\n%s", want, out)
		}
	}
}

func TestShellInlineLifecycle(t *testing.T) {
	out := exec(t,
		`dtdinline <!ELEMENT addressbook (person*)> <!ELEMENT person (nm, tel?)> <!ELEMENT nm (#PCDATA)> <!ELEMENT tel (#PCDATA)>`,
		`loadxml <addressbook><person><nm>Ann</nm><tel>5</tel></person></addressbook>`,
		`integratexml <addressbook><person><nm>Ann</nm><tel>6</tel></person></addressbook>`,
		`worlds 10`,
		`normalize`,
		`stats`,
	)
	if !strings.Contains(out, "world 3") {
		t.Fatalf("expected three worlds:\n%s", out)
	}
	if !strings.Contains(out, "schema loaded: 4 element types") {
		t.Fatalf("schema output:\n%s", out)
	}
}

func TestShellRules(t *testing.T) {
	out := exec(t, "rules genre,title,year")
	if !strings.Contains(out, "rules: genre,title,year") {
		t.Fatalf("rules output:\n%s", out)
	}
	if err := execErr(t, "rules bogus"); err == nil {
		t.Fatalf("bogus rule should fail")
	}
}

func TestShellFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.xml")
	if err := os.WriteFile(src, []byte(`<a><b>x</b></a>`), 0o644); err != nil {
		t.Fatal(err)
	}
	exp := filepath.Join(dir, "out.xml")
	out := exec(t,
		"load "+src,
		"export "+exp,
	)
	if !strings.Contains(out, "loaded") || !strings.Contains(out, "written") {
		t.Fatalf("output:\n%s", out)
	}
	if _, err := os.Stat(exp); err != nil {
		t.Fatalf("export missing: %v", err)
	}
}

func TestShellErrors(t *testing.T) {
	cases := [][]string{
		{"bogus"},
		{"query //a"},                          // no document
		{"integratexml <a/>"},                  // no document
		{"stats"},                              // no document
		{"loadxml <a/>", "feedback correct x"}, // no previous query
		{"loadxml not xml"},
		{"load /does/not/exist.xml"},
		{"dtd /does/not/exist.dtd"},
		{"dtdinline <!BROKEN>"},
		{"loadxml <a/>", "query ["},
		{"loadxml <a/>", "worlds notanumber"},
		{"loadxml <a/>", "export"},
		{"load"},
		{"loadxml <a><b>1</b></a>", "query //a/b", "feedback maybe 1"},
		{"loadxml <a><b>1</b></a>", "query //a/b", "feedback correct"},
	}
	for _, lines := range cases {
		if err := execErr(t, lines...); err == nil {
			t.Errorf("command sequence %v should fail", lines)
		}
	}
}

func TestShellRunLoop(t *testing.T) {
	in := strings.NewReader(`
# comment lines and blanks are skipped

help
loadxml <a><b>1</b></a>
query //a/b
quit
`)
	var out strings.Builder
	sh := shell.New(&out)
	if err := sh.Run(in); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, want := range []string{"commands:", "100.0%  1"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("run output missing %q:\n%s", want, out.String())
		}
	}
}

func TestShellRunReportsErrorsButContinues(t *testing.T) {
	in := strings.NewReader("nonsense\nloadxml <a/>\nstats\n")
	var out strings.Builder
	sh := shell.New(&out)
	if err := sh.Run(in); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.Contains(out.String(), "error:") || !strings.Contains(out.String(), "worlds: 1") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestShellFeedbackFlow(t *testing.T) {
	out := exec(t,
		`loadxml <a><_prob><_poss p="0.5"><b>x</b></_poss><_poss p="0.5"><b>y</b></_poss></_prob></a>`,
		`query //a/b`,
		`feedback incorrect y`,
		`query //a/b`,
	)
	if !strings.Contains(out, "worlds 2 -> 1") {
		t.Fatalf("feedback output:\n%s", out)
	}
	if strings.Count(out, "100.0%  x") != 1 {
		t.Fatalf("query after feedback:\n%s", out)
	}
}

func TestShellExplain(t *testing.T) {
	out := exec(t,
		`loadxml <a><_prob><_poss p="0.3"><b>x</b></_poss><_poss p="0.7"><b>y</b></_poss></_prob></a>`,
		`query //a/b`,
		`explain x`,
	)
	for _, want := range []string{`P(//a/b = "x") = 0.3000`, "influence", "P(alt|answer)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	if err := execErr(t, "loadxml <a/>", "explain x"); err == nil {
		t.Fatalf("explain without query should fail")
	}
	if err := execErr(t, "loadxml <a><b>1</b></a>", "query //a/b", "explain"); err == nil {
		t.Fatalf("explain without value should fail")
	}
	if err := execErr(t, "loadxml <a><b>1</b></a>", "query //a/b", "explain nope"); err == nil {
		t.Fatalf("explain of impossible value should fail")
	}
}

func TestShellSaveOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	out := exec(t,
		`dtdinline <!ELEMENT addressbook (person*)> <!ELEMENT person (nm, tel?)> <!ELEMENT nm (#PCDATA)> <!ELEMENT tel (#PCDATA)>`,
		`loadxml <addressbook><person><nm>Ann</nm><tel>5</tel></person></addressbook>`,
		`integratexml <addressbook><person><nm>Ann</nm><tel>6</tel></person></addressbook>`,
		"save "+dir,
	)
	if !strings.Contains(out, "saved: ") {
		t.Fatalf("save output:\n%s", out)
	}
	// A fresh shell restores document and schema.
	out2 := exec(t,
		"open "+dir,
		"stats",
		`query //person/tel`,
	)
	if !strings.Contains(out2, "worlds: 3") || !strings.Contains(out2, "75.0%  5") {
		t.Fatalf("open output:\n%s", out2)
	}
	if err := execErr(t, "open /does/not/exist"); err == nil {
		t.Fatalf("open missing dir should fail")
	}
	if err := execErr(t, "loadxml <a/>", "save"); err == nil {
		t.Fatalf("save without dir should fail")
	}
}

func TestTagsSorted(t *testing.T) {
	tags := shell.Tags()
	if len(tags) < 10 {
		t.Fatalf("tags = %v", tags)
	}
	for i := 1; i < len(tags); i++ {
		if tags[i] < tags[i-1] {
			t.Fatalf("tags not sorted: %v", tags)
		}
	}
}

package shell_test

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/shell"
)

// TestShellCatalogLifecycle drives the durable-catalog commands: attach,
// create via use, journaled mutations, switch databases, re-attach the
// same directory and find everything recovered.
func TestShellCatalogLifecycle(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	sh := shell.New(&out)
	script := []string{
		`dtdinline <!ELEMENT addressbook (person*)> <!ELEMENT person (nm, tel?)> <!ELEMENT nm (#PCDATA)> <!ELEMENT tel (#PCDATA)>`,
		`data ` + dir,
		`use movies`,
		`loadxml <addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`,
		`integratexml <addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`,
		`query //person[nm="John"]/tel`,
		`feedback incorrect 2222`,
		`use books`,
		`loadxml <addressbook><person><nm>Ann</nm></person></addressbook>`,
		`dbs`,
		`stats`,
		// Re-attach: closes the catalog, reopens and recovers it.
		`data ` + dir,
		`use movies`,
		`query //person[nm="John"]/tel`,
	}
	for _, line := range script {
		if err := sh.Execute(line); err != nil {
			t.Fatalf("execute %q: %v\n%s", line, err, out.String())
		}
	}
	got := out.String()
	for _, want := range []string{
		"created database movies",
		"feedback applied: worlds 3 -> 1",
		"created database books",
		"movies", "books", // dbs listing
		"durability: db books",
		"using movies: ", // after re-attach
		"1 integrations, 1 feedback",
		"100.0%  1111", // the conditioned answer survived the restart
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	tail := got[strings.LastIndex(got, "using movies"):]
	if strings.Contains(tail, "2222") {
		t.Fatalf("rejected answer resurrected after recovery:\n%s", tail)
	}
}

// TestShellFailedAttachKeepsSession pins that `data` on an unopenable
// directory (here: locked by another catalog) leaves the current
// attachment fully usable.
func TestShellFailedAttachKeepsSession(t *testing.T) {
	mine, locked := t.TempDir(), t.TempDir()
	blocker, err := catalog.Open(locked, catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Close()

	var out strings.Builder
	sh := shell.New(&out)
	for _, line := range []string{
		`data ` + mine,
		`use movies`,
		`loadxml <addressbook><person><nm>Ann</nm></person></addressbook>`,
	} {
		if err := sh.Execute(line); err != nil {
			t.Fatalf("execute %q: %v", line, err)
		}
	}
	if err := sh.Execute(`data ` + locked); err == nil {
		t.Fatalf("attaching a locked directory should fail")
	}
	// The old session survived: still attached, still journaled.
	if err := sh.Execute(`stats`); err != nil {
		t.Fatalf("stats after failed attach: %v", err)
	}
	if !strings.Contains(out.String(), "durability: db movies") {
		t.Fatalf("session lost after failed attach:\n%s", out.String())
	}
}

// TestShellCatalogErrors pins the guidance errors.
func TestShellCatalogErrors(t *testing.T) {
	var out strings.Builder
	sh := shell.New(&out)
	if err := sh.Execute("dbs"); err == nil || !strings.Contains(err.Error(), "no catalog attached") {
		t.Fatalf("dbs without catalog: %v", err)
	}
	if err := sh.Execute("use x"); err == nil || !strings.Contains(err.Error(), "no catalog attached") {
		t.Fatalf("use without catalog: %v", err)
	}
	if err := sh.Execute("data"); err == nil {
		t.Fatalf("data without dir should fail")
	}
	if err := sh.Execute("data " + t.TempDir()); err != nil {
		t.Fatalf("data: %v", err)
	}
	if err := sh.Execute("use"); err == nil {
		t.Fatalf("use without name should fail")
	}
	if err := sh.Execute("use ../evil"); err == nil {
		t.Fatalf("use with escaping name should fail")
	}
}

// TestShellWALCommand: `wal` lists the journaled tail of the active
// database and guides the user outside catalog mode.
func TestShellWALCommand(t *testing.T) {
	var out strings.Builder
	sh := shell.New(&out)
	if err := sh.Execute("wal"); err == nil || !strings.Contains(err.Error(), "no catalog database") {
		t.Fatalf("wal without catalog: %v", err)
	}
	for _, line := range []string{
		`data ` + t.TempDir(),
		`use movies`,
		`loadxml <addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`,
		`integratexml <addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`,
		`query //person[nm="John"]/tel`,
		`feedback incorrect 2222`,
		`wal`,
	} {
		if err := sh.Execute(line); err != nil {
			t.Fatalf("execute %q: %v\n%s", line, err, out.String())
		}
	}
	got := out.String()
	for _, want := range []string{"replace", "integrate", "feedback", `incorrect "2222"`} {
		if !strings.Contains(got, want) {
			t.Fatalf("wal output missing %q:\n%s", want, got)
		}
	}
	if err := sh.Execute("wal x"); err == nil {
		t.Fatalf("wal with bad count should fail")
	}
}

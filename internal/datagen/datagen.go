// Package datagen generates the synthetic movie catalogs that stand in for
// the paper's data sources (an IMDB snapshot and an MPEG-7 document, both
// unavailable). It reproduces the structure the experiments depend on:
//
//   - franchises with sequels and TV shows whose titles confuse matching
//     ("Mission: Impossible", "Impossible Mission", "Jaws", "Die Hard" —
//     the paper's §V setup),
//   - two naming conventions for directors ("John Woo" vs "Woo, John"),
//     so cross-source elements "never match exactly",
//   - a typical (non-confusing) catalog with a controlled number of shared
//     real-world objects,
//   - ground truth (which entries denote the same rwo) for quality
//     measurements.
//
// All generation is deterministic given the seed.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/dtd"
	"repro/internal/pxml"
)

// Movie is one catalog entry. ID identifies the real-world object; two
// entries with the same ID denote the same movie (ground truth only — the
// ID is never written into the generated XML).
type Movie struct {
	ID        string
	Title     string
	Year      int
	Genres    []string
	Directors []string
}

// Convention selects a source's formatting habits.
type Convention int

const (
	// ConvMPEG7 writes directors as "First Last" and drops punctuation
	// from titles.
	ConvMPEG7 Convention = iota
	// ConvIMDB writes directors as "Last, First" and uses official
	// titles.
	ConvIMDB
)

// Source is one data source: its movies and their XML rendering.
type Source struct {
	Movies []Movie
	Tree   *pxml.Tree
}

// Pair is a two-source integration scenario with ground truth.
type Pair struct {
	A, B Source
	// SharedIDs are the rwo IDs present in both sources.
	SharedIDs []string
	// Truth is the correctly integrated certain catalog: one entry per
	// rwo, fields unioned, official (IMDB) conventions.
	Truth *pxml.Tree
}

// MovieDTD is the schema knowledge used in all movie experiments: a movie
// has one title, at most one year, any number of genres and at least one
// director.
func MovieDTD() *dtd.Schema {
	return dtd.MustParse(`
		<!ELEMENT catalog (movie*)>
		<!ELEMENT movie (title, year?, genre*, director+)>
		<!ELEMENT title (#PCDATA)>
		<!ELEMENT year (#PCDATA)>
		<!ELEMENT genre (#PCDATA)>
		<!ELEMENT director (#PCDATA)>
	`)
}

// franchise describes one confusing title family.
type franchise struct {
	key       string
	baseTitle string
	altBase   string // word-order variant used for TV shows
	genres    []string
	directors []string
	real      []Movie
}

var franchises = []franchise{
	{
		key:       "jaws",
		baseTitle: "Jaws",
		altBase:   "Jaws",
		genres:    []string{"Horror", "Thriller", "Adventure", "Drama", "Mystery"},
		directors: []string{"Steven Spielberg", "Jeannot Szwarc", "Joe Alves", "Joseph Sargent"},
		real: []Movie{
			{ID: "jaws-1", Title: "Jaws", Year: 1975, Genres: []string{"Horror", "Thriller", "Adventure"}, Directors: []string{"Steven Spielberg"}},
			{ID: "jaws-2", Title: "Jaws 2", Year: 1978, Genres: []string{"Horror", "Thriller", "Drama"}, Directors: []string{"Jeannot Szwarc"}},
			{ID: "jaws-3", Title: "Jaws 3-D", Year: 1983, Genres: []string{"Horror", "Mystery", "Adventure"}, Directors: []string{"Joe Alves"}},
			{ID: "jaws-4", Title: "Jaws: The Revenge", Year: 1987, Genres: []string{"Horror", "Drama"}, Directors: []string{"Joseph Sargent"}},
		},
	},
	{
		key:       "diehard",
		baseTitle: "Die Hard",
		altBase:   "Hard Die",
		genres:    []string{"Action", "Thriller", "Crime", "Drama", "Adventure"},
		directors: []string{"John McTiernan", "Renny Harlin"},
		real: []Movie{
			{ID: "dh-1", Title: "Die Hard", Year: 1988, Genres: []string{"Action", "Thriller", "Crime"}, Directors: []string{"John McTiernan"}},
			{ID: "dh-2", Title: "Die Hard 2", Year: 1990, Genres: []string{"Action", "Adventure", "Drama"}, Directors: []string{"Renny Harlin"}},
			{ID: "dh-3", Title: "Die Hard: With a Vengeance", Year: 1995, Genres: []string{"Action", "Thriller", "Crime"}, Directors: []string{"John McTiernan"}},
		},
	},
	{
		key:       "mi",
		baseTitle: "Mission: Impossible",
		altBase:   "Impossible Mission",
		genres:    []string{"Action", "Adventure", "Thriller", "Spy", "Mystery"},
		directors: []string{"Brian De Palma", "John Woo", "Bruce Geller"},
		real: []Movie{
			{ID: "mi-1", Title: "Mission: Impossible", Year: 1996, Genres: []string{"Action", "Adventure", "Spy"}, Directors: []string{"Brian De Palma"}},
			{ID: "mi-2", Title: "Mission: Impossible II", Year: 2000, Genres: []string{"Action", "Thriller", "Spy"}, Directors: []string{"John Woo"}},
			{ID: "mi-tv", Title: "Mission: Impossible (TV Series)", Year: 1966, Genres: []string{"Action", "Mystery"}, Directors: []string{"Bruce Geller"}},
		},
	},
}

var romans = []string{"", " II", " III", " IV", " V", " VI", " VII", " VIII", " IX", " X"}
var variantSuffixes = []string{"", " (TV)", ": The Series", " Returns", ": Reloaded", " - The Beginning", ": Legacy"}

// confusingVariants generates an endless deterministic stream of
// franchise-title variants beyond the real entries: sequels, TV shows and
// word-order swaps, exactly the "sequels, TV-shows, etc." the paper selects
// to stress the integration.
func confusingVariants(f franchise, n int, rng *rand.Rand) []Movie {
	var out []Movie
	year := 1960
	for i := 0; len(out) < n; i++ {
		base := f.baseTitle
		if i%3 == 2 {
			base = f.altBase
		}
		title := base + romans[i%len(romans)] + variantSuffixes[(i/2)%len(variantSuffixes)]
		year += 1 + rng.Intn(3)
		// Two to three genres drawn from the franchise pool, varying
		// across entries so that genre comparisons are informative.
		start := rng.Intn(len(f.genres))
		count := 2 + rng.Intn(2)
		var g []string
		for k := 0; k < count; k++ {
			g = append(g, f.genres[(start+k)%len(f.genres)])
		}
		d := f.directors[rng.Intn(len(f.directors))]
		out = append(out, Movie{
			ID:        fmt.Sprintf("%s-var-%d", f.key, i),
			Title:     title,
			Year:      year,
			Genres:    append([]string(nil), g...),
			Directors: []string{d},
		})
	}
	return out
}

// Confusing builds the paper's §V stress scenario: source A is an "MPEG-7"
// catalog with two sequels per franchise (6 movies), source B an "IMDB"
// catalog with nB franchise-confusing entries (sequels, TV shows, variant
// word orders). One movie per franchise is shared between the sources (as
// long as nB admits it).
func Confusing(nB int, seed int64) Pair {
	rng := rand.New(rand.NewSource(seed))
	// A: first two real entries per franchise.
	var aMovies []Movie
	for _, f := range franchises {
		aMovies = append(aMovies, f.real[0], f.real[1])
	}
	// B: interleave franchises; per franchise the real entries come first
	// (so shared rwos appear as soon as capacity allows), then synthetic
	// variants.
	perFranchise := make([][]Movie, len(franchises))
	for i, f := range franchises {
		pool := append([]Movie(nil), f.real...)
		pool = append(pool, confusingVariants(f, nB, rng)...)
		perFranchise[i] = pool
	}
	var bMovies []Movie
	for i := 0; len(bMovies) < nB; i++ {
		fi := i % len(franchises)
		idx := i / len(franchises)
		if idx < len(perFranchise[fi]) {
			bMovies = append(bMovies, perFranchise[fi][idx])
		}
	}
	return buildPair(aMovies, bMovies)
}

// TableISources builds the Table I scenario: "2 'Mission Impossible'
// sequels, 2 'Die Hard' sequels, and 2 'Jaws' sequels for which only 1
// each refers to the same rwo as in the other source".
func TableISources() Pair {
	var aMovies, bMovies []Movie
	for _, f := range franchises {
		aMovies = append(aMovies, f.real[0], f.real[1])
		bMovies = append(bMovies, f.real[0], f.real[2])
	}
	return buildPair(aMovies, bMovies)
}

// The two filler vocabularies are word-disjoint, so titles drawn from
// different pools can never be similar enough to become match candidates:
// cross-source confusion in the typical scenario is limited to the
// deliberately shared movies.
var fillerPools = [2]struct{ adjectives, nouns []string }{
	{
		adjectives: []string{"Silent", "Golden", "Broken", "Crimson", "Hidden", "Distant", "Burning", "Frozen", "Lonely", "Electric"},
		nouns:      []string{"River", "Harvest", "Empire", "Garden", "Signal", "Horizon", "Mirror", "Station", "Voyage", "Canyon"},
	},
	{
		adjectives: []string{"Velvet", "Scarlet", "Midnight", "Wandering", "Forgotten", "Luminous", "Restless", "Hollow", "Painted", "Savage"},
		nouns:      []string{"Orchard", "Tides", "Lantern", "Meridian", "Summit", "Harbor", "Quarry", "Monsoon", "Citadel", "Prairie"},
	},
}

var fillerGenres = [][]string{{"Drama"}, {"Comedy"}, {"Drama", "Romance"}, {"Documentary"}, {"Crime", "Drama"}, {"Western"}}
var fillerDirectors = []string{
	"Ava Lindqvist", "Marco Benedetti", "Sofia Almeida", "Henrik Olsen", "Carla Moreno",
	"Tomas Novak", "Ingrid Bauer", "Pedro Casals", "Yuki Tanaka", "Omar Haddad",
}

// Typical builds the paper's "typical situation": nA movies from the
// MPEG-7 source against nB movies from the IMDB source, of which `shared`
// refer to the same rwos. Titles of distinct movies are clearly different,
// so simple rules can make almost all decisions; shared movies differ only
// in conventions, which keeps them undecided (the paper's "two occasions").
// Source sizes are limited to 100 movies each (the filler vocabulary).
func Typical(nA, nB, shared int, seed int64) Pair {
	if shared > nA || shared > nB {
		panic("datagen: shared exceeds source size")
	}
	if nA > 100 || nB > 100 {
		panic("datagen: typical sources limited to 100 movies")
	}
	rng := rand.New(rand.NewSource(seed))
	mk := func(pool, i, id int) Movie {
		p := fillerPools[pool]
		adj := p.adjectives[i%len(p.adjectives)]
		noun := p.nouns[(i/len(p.adjectives))%len(p.nouns)]
		return Movie{
			ID:        fmt.Sprintf("typ-%d", id),
			Title:     adj + " " + noun,
			Year:      1950 + (id*7)%56,
			Genres:    append([]string(nil), fillerGenres[id%len(fillerGenres)]...),
			Directors: []string{fillerDirectors[id%len(fillerDirectors)]},
		}
	}
	var aMovies, bMovies []Movie
	for i := 0; i < shared; i++ {
		m := mk(0, i, i)
		aMovies = append(aMovies, m)
		bMovies = append(bMovies, m)
	}
	// A fillers continue pool 0 beyond the shared combinations; B fillers
	// use the disjoint pool 1.
	for i := shared; len(aMovies) < nA; i++ {
		aMovies = append(aMovies, mk(0, i, 1000+i))
	}
	for i := 0; len(bMovies) < nB; i++ {
		bMovies = append(bMovies, mk(1, i, 2000+i))
	}
	shuffle(rng, bMovies)
	return buildPair(aMovies, bMovies)
}

func shuffle(rng *rand.Rand, ms []Movie) {
	for i := len(ms) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		ms[i], ms[j] = ms[j], ms[i]
	}
}

func buildPair(aMovies, bMovies []Movie) Pair {
	aIDs := map[string]bool{}
	for _, m := range aMovies {
		aIDs[m.ID] = true
	}
	var shared []string
	bIDs := map[string]bool{}
	for _, m := range bMovies {
		if aIDs[m.ID] && !bIDs[m.ID] {
			shared = append(shared, m.ID)
		}
		bIDs[m.ID] = true
	}
	sort.Strings(shared)
	// Ground truth: one movie per rwo, official conventions, fields from
	// the union of both occurrences (identical here by construction).
	seen := map[string]bool{}
	var truth []Movie
	for _, m := range append(append([]Movie(nil), aMovies...), bMovies...) {
		if seen[m.ID] {
			continue
		}
		seen[m.ID] = true
		truth = append(truth, m)
	}
	return Pair{
		A:         Source{Movies: aMovies, Tree: CatalogTree(aMovies, ConvMPEG7)},
		B:         Source{Movies: bMovies, Tree: CatalogTree(bMovies, ConvIMDB)},
		SharedIDs: shared,
		Truth:     CatalogTree(truth, ConvIMDB),
	}
}

// CatalogTree renders movies as a certain probabilistic document with the
// given source convention.
func CatalogTree(movies []Movie, conv Convention) *pxml.Tree {
	elems := make([]*pxml.Node, len(movies))
	for i, m := range movies {
		elems[i] = MovieElem(m, conv)
	}
	return pxml.CertainTree(pxml.NewElem("catalog", "", pxml.Certain(elems...)))
}

// MovieElem renders one movie element with the given convention.
func MovieElem(m Movie, conv Convention) *pxml.Node {
	kids := []*pxml.Node{
		pxml.Certain(pxml.NewLeaf("title", FormatTitle(m.Title, conv))),
	}
	if m.Year > 0 {
		kids = append(kids, pxml.Certain(pxml.NewLeaf("year", fmt.Sprintf("%d", m.Year))))
	}
	for _, g := range m.Genres {
		kids = append(kids, pxml.Certain(pxml.NewLeaf("genre", g)))
	}
	for _, d := range m.Directors {
		kids = append(kids, pxml.Certain(pxml.NewLeaf("director", FormatDirector(d, conv))))
	}
	return pxml.NewElem("movie", "", kids...)
}

// surnameParticles are kept with the family name when inverting, so
// "Brian De Palma" becomes "De Palma, Brian".
var surnameParticles = map[string]bool{
	"de": true, "De": true, "van": true, "Van": true, "von": true, "Von": true,
	"la": true, "La": true, "le": true, "Le": true, "del": true, "Del": true, "Di": true, "di": true,
}

// FormatDirector renders a person name in the source's convention:
// ConvIMDB writes "Last, First" (keeping surname particles with the last
// name).
func FormatDirector(name string, conv Convention) string {
	if conv != ConvIMDB {
		return name
	}
	parts := strings.Fields(name)
	if len(parts) < 2 {
		return name
	}
	split := len(parts) - 1
	for split > 1 && surnameParticles[parts[split-1]] {
		split--
	}
	last := strings.Join(parts[split:], " ")
	first := strings.Join(parts[:split], " ")
	return last + ", " + first
}

// FormatTitle renders a title in the source's convention: ConvMPEG7 drops
// punctuation ("Mission Impossible II").
func FormatTitle(title string, conv Convention) string {
	if conv != ConvMPEG7 {
		return title
	}
	title = strings.ReplaceAll(title, ":", "")
	title = strings.ReplaceAll(title, " - ", " ")
	return strings.Join(strings.Fields(title), " ")
}

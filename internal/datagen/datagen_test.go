package datagen_test

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/pxml"
	"repro/internal/query"
)

func TestConventions(t *testing.T) {
	if got := datagen.FormatDirector("John Woo", datagen.ConvIMDB); got != "Woo, John" {
		t.Fatalf("IMDB director = %q", got)
	}
	if got := datagen.FormatDirector("John Woo", datagen.ConvMPEG7); got != "John Woo" {
		t.Fatalf("MPEG7 director = %q", got)
	}
	if got := datagen.FormatDirector("Madonna", datagen.ConvIMDB); got != "Madonna" {
		t.Fatalf("single-name director = %q", got)
	}
	if got := datagen.FormatTitle("Mission: Impossible II", datagen.ConvMPEG7); got != "Mission Impossible II" {
		t.Fatalf("MPEG7 title = %q", got)
	}
	if got := datagen.FormatTitle("Mission: Impossible II", datagen.ConvIMDB); got != "Mission: Impossible II" {
		t.Fatalf("IMDB title = %q", got)
	}
}

func TestTableISources(t *testing.T) {
	p := datagen.TableISources()
	if len(p.A.Movies) != 6 || len(p.B.Movies) != 6 {
		t.Fatalf("sizes = %d, %d, want 6 each", len(p.A.Movies), len(p.B.Movies))
	}
	if len(p.SharedIDs) != 3 {
		t.Fatalf("shared = %v, want one per franchise", p.SharedIDs)
	}
	if err := p.A.Tree.Validate(); err != nil {
		t.Fatalf("A invalid: %v", err)
	}
	if err := p.B.Tree.Validate(); err != nil {
		t.Fatalf("B invalid: %v", err)
	}
	if err := datagen.MovieDTD().ValidateElement(p.A.Tree.RootElements()[0]); err != nil {
		t.Fatalf("A violates movie DTD: %v", err)
	}
	if err := datagen.MovieDTD().ValidateElement(p.B.Tree.RootElements()[0]); err != nil {
		t.Fatalf("B violates movie DTD: %v", err)
	}
}

func TestConfusingScenario(t *testing.T) {
	p := datagen.Confusing(12, 1)
	if len(p.B.Movies) != 12 {
		t.Fatalf("B size = %d", len(p.B.Movies))
	}
	if len(p.SharedIDs) == 0 {
		t.Fatalf("confusing scenario should share rwos")
	}
	// All B titles belong to a franchise vocabulary — that is the point.
	for _, m := range p.B.Movies {
		low := strings.ToLower(m.Title)
		if !strings.Contains(low, "jaws") && !strings.Contains(low, "hard") &&
			!strings.Contains(low, "mission") && !strings.Contains(low, "impossible") {
			t.Fatalf("non-confusing title in B: %q", m.Title)
		}
	}
	// The query experiments need these entries present.
	res, err := query.Eval(p.B.Tree, query.MustCompile(`//movie/title`), query.Options{})
	if err != nil {
		t.Fatalf("eval titles: %v", err)
	}
	for _, want := range []string{"Die Hard: With a Vengeance", "Mission: Impossible", "Mission: Impossible II", "Jaws", "Jaws 2"} {
		if res.P(want) != 1 {
			t.Fatalf("B(12) missing title %q; titles: %v", want, res.Answers)
		}
	}
	// Horror classification for the Jaws movies (paper's first query).
	hres, err := query.Eval(p.A.Tree, query.MustCompile(`//movie[genre="Horror"]/title`), query.Options{})
	if err != nil {
		t.Fatalf("eval horror: %v", err)
	}
	if hres.P("Jaws") != 1 || hres.P("Jaws 2") != 1 {
		t.Fatalf("A horror titles = %v", hres.Answers)
	}
}

func TestConfusingDeterministic(t *testing.T) {
	p1 := datagen.Confusing(30, 7)
	p2 := datagen.Confusing(30, 7)
	if !pxml.Equal(p1.B.Tree.Root(), p2.B.Tree.Root()) {
		t.Fatalf("same seed should reproduce the same catalog")
	}
	p3 := datagen.Confusing(30, 8)
	if pxml.Equal(p1.B.Tree.Root(), p3.B.Tree.Root()) {
		t.Fatalf("different seeds should differ")
	}
}

func TestConfusingGrowsMonotonically(t *testing.T) {
	for _, n := range []int{0, 1, 6, 20, 60} {
		p := datagen.Confusing(n, 1)
		if len(p.B.Movies) != n {
			t.Fatalf("Confusing(%d) B size = %d", n, len(p.B.Movies))
		}
		if err := p.B.Tree.Validate(); err != nil {
			t.Fatalf("Confusing(%d) B invalid: %v", n, err)
		}
	}
}

func TestTypicalScenario(t *testing.T) {
	p := datagen.Typical(6, 60, 2, 3)
	if len(p.A.Movies) != 6 || len(p.B.Movies) != 60 {
		t.Fatalf("sizes = %d, %d", len(p.A.Movies), len(p.B.Movies))
	}
	if len(p.SharedIDs) != 2 {
		t.Fatalf("shared = %v", p.SharedIDs)
	}
	// Distinct movies must have clearly distinct titles.
	titles := map[string]string{}
	for _, m := range append(append([]datagen.Movie(nil), p.A.Movies...), p.B.Movies...) {
		if prev, ok := titles[m.Title]; ok && prev != m.ID {
			t.Fatalf("title %q used by two rwos %s and %s", m.Title, prev, m.ID)
		}
		titles[m.Title] = m.ID
	}
	// Truth has one entry per rwo.
	res, err := query.Eval(p.Truth, query.MustCompile(`//movie/title`), query.Options{})
	if err != nil {
		t.Fatalf("truth eval: %v", err)
	}
	if len(res.Answers) != 64 {
		t.Fatalf("truth titles = %d, want 64 (6+60−2)", len(res.Answers))
	}
}

func TestTypicalSharedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	datagen.Typical(2, 2, 5, 1)
}

func TestMovieElemFields(t *testing.T) {
	m := datagen.Movie{ID: "x", Title: "T: X", Year: 1999,
		Genres: []string{"A", "B"}, Directors: []string{"John Woo", "Brian De Palma"}}
	e := datagen.MovieElem(m, datagen.ConvIMDB)
	if pxml.CertainText(e, "title") != "T: X" || pxml.CertainText(e, "year") != "1999" {
		t.Fatalf("fields wrong: %s", pxml.Sketch(e))
	}
	if got := pxml.CertainTexts(e, "genre"); len(got) != 2 {
		t.Fatalf("genres = %v", got)
	}
	if got := pxml.CertainTexts(e, "director"); got[0] != "Woo, John" || got[1] != "De Palma, Brian" {
		t.Fatalf("directors = %v", got)
	}
	// No year.
	e2 := datagen.MovieElem(datagen.Movie{Title: "T", Directors: []string{"D"}}, datagen.ConvIMDB)
	if pxml.CertainChild(e2, "year") != nil {
		t.Fatalf("year should be absent")
	}
}

package dtd_test

import (
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/pxml"
	"repro/internal/pxmltest"
	"repro/internal/xmlcodec"
)

const movieDTD = `
	<!-- movie catalog -->
	<!ELEMENT catalog (movie*)>
	<!ELEMENT movie (title, year?, genre*, director+)>
	<!ELEMENT title (#PCDATA)>
	<!ELEMENT year (#PCDATA)>
	<!ELEMENT genre (#PCDATA)>
	<!ELEMENT director (#PCDATA)>
	<!ELEMENT meta EMPTY>
	<!ELEMENT blob ANY>
`

func TestParseAndString(t *testing.T) {
	s, err := dtd.ParseString(movieDTD)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out := s.String()
	for _, want := range []string{
		"<!ELEMENT movie (title, year?, genre*, director+)>",
		"<!ELEMENT title (#PCDATA)>",
		"<!ELEMENT meta EMPTY>",
		"<!ELEMENT blob ANY>",
		"<!ELEMENT catalog (movie*)>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
	// Round trip.
	s2, err := dtd.ParseString(out)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if s2.String() != out {
		t.Fatalf("round trip changed schema:\n%s\nvs\n%s", out, s2.String())
	}
}

func TestOccursQueries(t *testing.T) {
	s := dtd.MustParse(movieDTD)
	cases := []struct {
		parent, child string
		min, max      int
	}{
		{"movie", "title", 1, 1},
		{"movie", "year", 0, 1},
		{"movie", "genre", 0, dtd.Unbounded},
		{"movie", "director", 1, dtd.Unbounded},
		{"movie", "bogus", 0, 0},
		{"catalog", "movie", 0, dtd.Unbounded},
		{"undeclared", "anything", 0, dtd.Unbounded},
		{"blob", "anything", 0, dtd.Unbounded},
		{"title", "sub", 0, 0},
		{"meta", "sub", 0, 0},
	}
	for _, tc := range cases {
		if got := s.MaxOccurs(tc.parent, tc.child); got != tc.max {
			t.Errorf("MaxOccurs(%s,%s) = %d, want %d", tc.parent, tc.child, got, tc.max)
		}
		if got := s.MinOccurs(tc.parent, tc.child); got != tc.min {
			t.Errorf("MinOccurs(%s,%s) = %d, want %d", tc.parent, tc.child, got, tc.min)
		}
	}
}

func TestCheckCounts(t *testing.T) {
	s := dtd.MustParse(movieDTD)
	ok := map[string]int{"title": 1, "genre": 3, "director": 2}
	if err := s.CheckCounts("movie", ok, true); err != nil {
		t.Fatalf("valid counts rejected: %v", err)
	}
	if err := s.CheckCounts("movie", map[string]int{"title": 2, "director": 1}, false); err == nil {
		t.Fatalf("two titles should violate")
	}
	if err := s.CheckCounts("movie", map[string]int{"title": 1, "year": 2, "director": 1}, false); err == nil {
		t.Fatalf("two years should violate")
	}
	// Min enforcement only with requireMin.
	missing := map[string]int{"title": 1}
	if err := s.CheckCounts("movie", missing, false); err != nil {
		t.Fatalf("missing director should pass without requireMin: %v", err)
	}
	if err := s.CheckCounts("movie", missing, true); err == nil {
		t.Fatalf("missing director should fail with requireMin")
	}
	// Unknown child tags.
	if err := s.CheckCounts("movie", map[string]int{"title": 1, "director": 1, "oops": 1}, false); err == nil {
		t.Fatalf("undeclared child should violate")
	}
	// PCDATA and EMPTY forbid children.
	if err := s.CheckCounts("title", map[string]int{"x": 1}, false); err == nil {
		t.Fatalf("PCDATA with children should violate")
	}
	// ANY and undeclared allow everything.
	if err := s.CheckCounts("blob", map[string]int{"x": 99}, false); err != nil {
		t.Fatalf("ANY rejected: %v", err)
	}
	if err := s.CheckCounts("mystery", map[string]int{"x": 99}, false); err != nil {
		t.Fatalf("undeclared rejected: %v", err)
	}
}

func TestCountsErrorMessage(t *testing.T) {
	s := dtd.MustParse(movieDTD)
	err := s.CheckCounts("movie", map[string]int{"title": 3, "director": 1}, false)
	ce, ok := err.(*dtd.CountsError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ce.Parent != "movie" || ce.Child != "title" || ce.Count != 3 || ce.Max != 1 {
		t.Fatalf("CountsError = %+v", ce)
	}
	if !strings.Contains(ce.Error(), "movie") || !strings.Contains(ce.Error(), "title") {
		t.Fatalf("message = %q", ce.Error())
	}
	err = s.CheckCounts("catalog", map[string]int{"movie": 1000000}, false)
	if err != nil {
		t.Fatalf("unbounded field rejected: %v", err)
	}
}

func TestValidateElement(t *testing.T) {
	s := dtd.MustParse(movieDTD)
	good, err := xmlcodec.DecodeString(
		`<catalog><movie><title>Jaws</title><year>1975</year><genre>Horror</genre><director>Spielberg</director></movie></catalog>`)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := s.ValidateElement(good.RootElements()[0]); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	bad, _ := xmlcodec.DecodeString(
		`<catalog><movie><title>Jaws</title><title>Jaws 2</title><director>S</director></movie></catalog>`)
	if err := s.ValidateElement(bad.RootElements()[0]); err == nil {
		t.Fatalf("two titles should be rejected")
	}
	noDirector, _ := xmlcodec.DecodeString(`<catalog><movie><title>Jaws</title></movie></catalog>`)
	if err := s.ValidateElement(noDirector.RootElements()[0]); err == nil {
		t.Fatalf("missing director should be rejected")
	}
	textInSeq, _ := xmlcodec.DecodeString(`<movie>stray<title>Jaws</title><director>S</director></movie>`)
	if err := s.ValidateElement(textInSeq.RootElements()[0]); err == nil {
		t.Fatalf("text in sequence element should be rejected")
	}
	if err := s.ValidateElement(pxml.NewPoss(1)); err == nil {
		t.Fatalf("non-element should be rejected")
	}
	uncertain := pxmltest.Fig2Tree().RootElements()[0]
	if err := s.ValidateElement(uncertain); err == nil {
		t.Fatalf("uncertain element should be rejected by ValidateElement")
	}
}

func TestValidateTree(t *testing.T) {
	s := dtd.MustParse(`
		<!ELEMENT addressbook (person*)>
		<!ELEMENT person (nm, tel?)>
		<!ELEMENT nm (#PCDATA)>
		<!ELEMENT tel (#PCDATA)>
	`)
	if err := s.ValidateTree(pxmltest.Fig2Tree()); err != nil {
		t.Fatalf("figure-2 tree should satisfy person(nm, tel?): %v", err)
	}
	// A person with two certain phones violates in every world.
	bad := pxml.CertainTree(pxml.NewElem("addressbook", "",
		pxml.Certain(pxml.NewElem("person", "",
			pxml.Certain(pxml.NewLeaf("nm", "John")),
			pxml.Certain(pxml.NewLeaf("tel", "1")),
			pxml.Certain(pxml.NewLeaf("tel", "2")),
		))))
	if err := s.ValidateTree(bad); err == nil {
		t.Fatalf("two certain phones should be rejected")
	}
	// Two phones in mutually exclusive alternatives are fine.
	okTree := pxml.CertainTree(pxml.NewElem("addressbook", "",
		pxml.Certain(pxml.NewElem("person", "",
			pxml.Certain(pxml.NewLeaf("nm", "John")),
			pxml.NewProb(
				pxml.NewPoss(0.5, pxml.NewLeaf("tel", "1")),
				pxml.NewPoss(0.5, pxml.NewLeaf("tel", "2")),
			),
		))))
	if err := s.ValidateTree(okTree); err != nil {
		t.Fatalf("exclusive phones rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"garbage", `<!ATTLIST a>`, "expected <!ELEMENT"},
		{"unterminated", `<!ELEMENT a (b)`, "unterminated"},
		{"unterminated comment", `<!-- hi`, "unterminated comment"},
		{"no model", `<!ELEMENT a>`, "needs a name"},
		{"bad name", `<!ELEMENT 1a (b)>`, "invalid element name"},
		{"bad model", `<!ELEMENT a b>`, "must be parenthesized"},
		{"empty model", `<!ELEMENT a ()>`, "empty content model"},
		{"empty field", `<!ELEMENT a (b,,c)>`, "empty field"},
		{"alternation", `<!ELEMENT a (b|c)>`, "not supported"},
		{"group", `<!ELEMENT a ((b,c))>`, "not supported"},
		{"bad field", `<!ELEMENT a (b, 2c)>`, "invalid field name"},
		{"dup field", `<!ELEMENT a (b, b)>`, "repeated"},
		{"dup element", `<!ELEMENT a (b)> <!ELEMENT a (c)>`, "duplicate declaration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := dtd.ParseString(tc.in)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing %q", err, tc.want)
			}
		})
	}
}

func TestParseErrorLineNumbers(t *testing.T) {
	_, err := dtd.ParseString("<!ELEMENT a (b)>\n\n<!BOGUS>")
	pe, ok := err.(*dtd.ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 {
		t.Fatalf("line = %d, want 3", pe.Line)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	dtd.MustParse("<!NOPE>")
}

func TestBuilderAPI(t *testing.T) {
	s := dtd.NewSchema().
		Declare("person", dtd.Seq(dtd.Req("nm"), dtd.Opt("tel"), dtd.Many("email"), dtd.Some("addr"))).
		Declare("nm", dtd.PCDATA())
	if s.MaxOccurs("person", "tel") != 1 || s.MinOccurs("person", "addr") != 1 {
		t.Fatalf("builder cardinalities wrong")
	}
	m := s.Model("person")
	if m == nil || m.Kind != dtd.ModelSeq || len(m.Fields) != 4 {
		t.Fatalf("model = %+v", m)
	}
	if _, ok := m.Field("nope"); ok {
		t.Fatalf("unknown field found")
	}
	if f, ok := m.Field("email"); !ok || f.Max != dtd.Unbounded {
		t.Fatalf("email field = %+v %v", f, ok)
	}
}

package dtd

import (
	"fmt"
	"io"
	"strings"
)

// ParseError reports a syntax error in a DTD document with its line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("dtd: line %d: %s", e.Line, e.Msg)
}

// Parse reads element declarations from DTD text. Comments (<!-- -->) and
// blank lines are ignored; anything else must be an <!ELEMENT> declaration.
func Parse(r io.Reader) (*Schema, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dtd: %w", err)
	}
	return ParseString(string(data))
}

// ParseString is Parse over a string.
func ParseString(src string) (*Schema, error) {
	s := NewSchema()
	line := 1
	rest := src
	for {
		// Skip whitespace and comments.
		for {
			trimmed := strings.TrimLeft(rest, " \t\r\n")
			line += strings.Count(rest[:len(rest)-len(trimmed)], "\n")
			rest = trimmed
			if strings.HasPrefix(rest, "<!--") {
				end := strings.Index(rest, "-->")
				if end < 0 {
					return nil, &ParseError{Line: line, Msg: "unterminated comment"}
				}
				line += strings.Count(rest[:end+3], "\n")
				rest = rest[end+3:]
				continue
			}
			break
		}
		if rest == "" {
			return s, nil
		}
		if !strings.HasPrefix(rest, "<!ELEMENT") {
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("expected <!ELEMENT, found %q", firstToken(rest))}
		}
		end := strings.Index(rest, ">")
		if end < 0 {
			return nil, &ParseError{Line: line, Msg: "unterminated declaration"}
		}
		decl := rest[len("<!ELEMENT"):end]
		declLine := line
		line += strings.Count(rest[:end+1], "\n")
		rest = rest[end+1:]

		tag, model, err := parseDecl(decl, declLine)
		if err != nil {
			return nil, err
		}
		if _, dup := s.models[tag]; dup {
			return nil, &ParseError{Line: declLine, Msg: fmt.Sprintf("duplicate declaration of %q", tag)}
		}
		s.Declare(tag, model)
	}
}

// MustParse parses DTD text, panicking on error; for statically known DTDs.
func MustParse(src string) *Schema {
	s, err := ParseString(src)
	if err != nil {
		panic(err)
	}
	return s
}

func firstToken(s string) string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return ""
	}
	if len(fields[0]) > 20 {
		return fields[0][:20]
	}
	return fields[0]
}

func parseDecl(decl string, line int) (string, *ContentModel, error) {
	decl = strings.TrimSpace(decl)
	fields := strings.Fields(decl)
	if len(fields) < 2 {
		return "", nil, &ParseError{Line: line, Msg: "declaration needs a name and a content model"}
	}
	tag := fields[0]
	if !validName(tag) {
		return "", nil, &ParseError{Line: line, Msg: fmt.Sprintf("invalid element name %q", tag)}
	}
	spec := strings.TrimSpace(decl[len(tag):])
	switch strings.ToUpper(spec) {
	case "EMPTY":
		return tag, Empty(), nil
	case "ANY":
		return tag, Any(), nil
	}
	if !strings.HasPrefix(spec, "(") || !strings.HasSuffix(spec, ")") {
		return "", nil, &ParseError{Line: line, Msg: fmt.Sprintf("content model %q must be parenthesized, EMPTY or ANY", spec)}
	}
	inner := strings.TrimSpace(spec[1 : len(spec)-1])
	if inner == "#PCDATA" {
		return tag, PCDATA(), nil
	}
	if inner == "" {
		return "", nil, &ParseError{Line: line, Msg: "empty content model"}
	}
	var model ContentModel
	model.Kind = ModelSeq
	seen := make(map[string]bool)
	for _, part := range strings.Split(inner, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return "", nil, &ParseError{Line: line, Msg: "empty field in content model"}
		}
		f := Field{Min: 1, Max: 1}
		switch part[len(part)-1] {
		case '?':
			f.Min, f.Max = 0, 1
			part = strings.TrimSpace(part[:len(part)-1])
		case '*':
			f.Min, f.Max = 0, Unbounded
			part = strings.TrimSpace(part[:len(part)-1])
		case '+':
			f.Min, f.Max = 1, Unbounded
			part = strings.TrimSpace(part[:len(part)-1])
		}
		if strings.Contains(part, "|") || strings.Contains(part, "(") {
			return "", nil, &ParseError{Line: line, Msg: fmt.Sprintf("alternation/groups not supported: %q", part)}
		}
		if !validName(part) {
			return "", nil, &ParseError{Line: line, Msg: fmt.Sprintf("invalid field name %q", part)}
		}
		if seen[part] {
			return "", nil, &ParseError{Line: line, Msg: fmt.Sprintf("field %q repeated in content model", part)}
		}
		seen[part] = true
		f.Tag = part
		model.Fields = append(model.Fields, f)
	}
	return tag, &model, nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '@':
		case (r >= '0' && r <= '9') || r == '-' || r == '.' || r == ':':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Package dtd implements the schema-knowledge subset IMPrECISE needs: per
// element content models with child cardinalities, parsed from a DTD-like
// syntax. During probabilistic integration the content model is what lets
// the system reject impossible possibilities — the paper's example being a
// DTD that allows one phone number per person, which rules out the world in
// which a merged person keeps both phones.
//
// Supported declarations:
//
//	<!ELEMENT movie (title, year?, genre*, director+)>
//	<!ELEMENT title (#PCDATA)>
//	<!ELEMENT meta EMPTY>
//	<!ELEMENT anything ANY>
//
// Alternation and nested groups are not supported; integration only needs
// cardinality bounds. Elements without a declaration are treated as ANY.
package dtd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pxml"
)

// Unbounded marks a field with no upper occurrence limit.
const Unbounded = -1

// Field is one child slot of a content model.
type Field struct {
	Tag string
	Min int // 0 or 1
	Max int // 1 or Unbounded
}

// Kind of content model.
type ModelKind uint8

const (
	// ModelSeq is a sequence of fields with cardinalities.
	ModelSeq ModelKind = iota
	// ModelPCDATA is text-only content.
	ModelPCDATA
	// ModelEmpty forbids all content.
	ModelEmpty
	// ModelAny allows anything.
	ModelAny
)

// ContentModel describes the allowed children of one element type.
type ContentModel struct {
	Kind   ModelKind
	Fields []Field // ModelSeq only
	byTag  map[string]int
}

func (m *ContentModel) index() {
	m.byTag = make(map[string]int, len(m.Fields))
	for i, f := range m.Fields {
		m.byTag[f.Tag] = i
	}
}

// Field returns the field for a child tag, if declared.
func (m *ContentModel) Field(tag string) (Field, bool) {
	if m == nil || m.Kind != ModelSeq {
		return Field{}, false
	}
	i, ok := m.byTag[tag]
	if !ok {
		return Field{}, false
	}
	return m.Fields[i], true
}

// Schema maps element tags to content models.
type Schema struct {
	models map[string]*ContentModel
}

// NewSchema returns an empty schema; all elements default to ANY.
func NewSchema() *Schema {
	return &Schema{models: make(map[string]*ContentModel)}
}

// Model returns the content model for an element tag, or nil if the tag is
// undeclared (meaning ANY).
func (s *Schema) Model(tag string) *ContentModel {
	if s == nil {
		return nil
	}
	return s.models[tag]
}

// Declare adds or replaces the content model of an element type.
func (s *Schema) Declare(tag string, m *ContentModel) *Schema {
	m.index()
	s.models[tag] = m
	return s
}

// Seq builds a sequence content model; use Req, Opt, Many, Some for fields.
func Seq(fields ...Field) *ContentModel {
	return &ContentModel{Kind: ModelSeq, Fields: fields}
}

// Req declares exactly one occurrence.
func Req(tag string) Field { return Field{Tag: tag, Min: 1, Max: 1} }

// Opt declares zero or one occurrence (DTD '?').
func Opt(tag string) Field { return Field{Tag: tag, Min: 0, Max: 1} }

// Many declares zero or more occurrences (DTD '*').
func Many(tag string) Field { return Field{Tag: tag, Min: 0, Max: Unbounded} }

// Some declares one or more occurrences (DTD '+').
func Some(tag string) Field { return Field{Tag: tag, Min: 1, Max: Unbounded} }

// PCDATA is the text-only content model.
func PCDATA() *ContentModel { return &ContentModel{Kind: ModelPCDATA} }

// Empty is the empty content model.
func Empty() *ContentModel { return &ContentModel{Kind: ModelEmpty} }

// Any is the unconstrained content model.
func Any() *ContentModel { return &ContentModel{Kind: ModelAny} }

// MaxOccurs returns the maximum number of childTag children a parentTag
// element may have: 0 (not allowed), a positive bound, or Unbounded.
// Undeclared parents and ANY models return Unbounded.
func (s *Schema) MaxOccurs(parentTag, childTag string) int {
	m := s.Model(parentTag)
	if m == nil || m.Kind == ModelAny {
		return Unbounded
	}
	if m.Kind == ModelPCDATA || m.Kind == ModelEmpty {
		return 0
	}
	f, ok := m.Field(childTag)
	if !ok {
		return 0
	}
	return f.Max
}

// MinOccurs returns the minimum number of childTag children required.
func (s *Schema) MinOccurs(parentTag, childTag string) int {
	m := s.Model(parentTag)
	if m == nil || m.Kind != ModelSeq {
		return 0
	}
	f, ok := m.Field(childTag)
	if !ok {
		return 0
	}
	return f.Min
}

// CountsError reports a cardinality violation.
type CountsError struct {
	Parent string
	Child  string
	Count  int
	Min    int
	Max    int
}

func (e *CountsError) Error() string {
	max := fmt.Sprintf("%d", e.Max)
	if e.Max == Unbounded {
		max = "unbounded"
	}
	return fmt.Sprintf("dtd: element <%s> has %d <%s> children, allowed [%d, %s]",
		e.Parent, e.Count, e.Child, e.Min, max)
}

// CheckCounts validates a hypothetical child-tag multiset against the
// parent's content model. This is the integration-time check: it is order
// insensitive, and only Max bounds are enforced strictly (integration never
// removes children, so Min violations would already exist in a source).
// Set requireMin to also enforce lower bounds (document validation).
func (s *Schema) CheckCounts(parentTag string, counts map[string]int, requireMin bool) error {
	m := s.Model(parentTag)
	if m == nil || m.Kind == ModelAny {
		return nil
	}
	switch m.Kind {
	case ModelPCDATA, ModelEmpty:
		for tag, n := range counts {
			if n > 0 {
				return &CountsError{Parent: parentTag, Child: tag, Count: n, Min: 0, Max: 0}
			}
		}
		return nil
	}
	// Deterministic error selection: check declared fields in order, then
	// undeclared tags sorted.
	for _, f := range m.Fields {
		n := counts[f.Tag]
		if f.Max != Unbounded && n > f.Max {
			return &CountsError{Parent: parentTag, Child: f.Tag, Count: n, Min: f.Min, Max: f.Max}
		}
		if requireMin && n < f.Min {
			return &CountsError{Parent: parentTag, Child: f.Tag, Count: n, Min: f.Min, Max: f.Max}
		}
	}
	var extras []string
	for tag, n := range counts {
		if n == 0 {
			continue
		}
		if _, ok := m.Field(tag); !ok {
			extras = append(extras, tag)
		}
	}
	if len(extras) > 0 {
		sort.Strings(extras)
		return &CountsError{Parent: parentTag, Child: extras[0], Count: counts[extras[0]], Min: 0, Max: 0}
	}
	return nil
}

// ValidateElement validates one element of a certain document against the
// schema, recursively. Children under genuine choice points are rejected —
// use ValidateTree for probabilistic documents.
func (s *Schema) ValidateElement(elem *pxml.Node) error {
	if elem.Kind() != pxml.KindElem {
		return fmt.Errorf("dtd: ValidateElement on %v node", elem.Kind())
	}
	counts := make(map[string]int)
	kids := pxml.ElementChildren(elem)
	for _, prob := range elem.Children() {
		if len(prob.Children()) != 1 {
			return fmt.Errorf("dtd: element <%s> has an uncertain child; validate per world", elem.Tag())
		}
	}
	for _, k := range kids {
		counts[k.Tag()]++
	}
	if err := s.CheckCounts(elem.Tag(), counts, true); err != nil {
		return err
	}
	if m := s.Model(elem.Tag()); m != nil {
		switch m.Kind {
		case ModelEmpty:
			if elem.Text() != "" {
				return fmt.Errorf("dtd: EMPTY element <%s> has text %q", elem.Tag(), elem.Text())
			}
		case ModelSeq:
			if elem.Text() != "" {
				return fmt.Errorf("dtd: element <%s> has text %q but a sequence model", elem.Tag(), elem.Text())
			}
		}
	}
	for _, k := range kids {
		if err := s.ValidateElement(k); err != nil {
			return err
		}
	}
	return nil
}

// ValidateTree validates every possible world of a probabilistic document
// structurally, without enumerating worlds: for each element it checks that
// in every combination of its choice points the child counts can stay
// within bounds, conservatively using per-alternative maxima. A nil error
// guarantees that no world violates a Max bound; Min bounds are checked
// only for certain children (a world may drop optional content).
func (s *Schema) ValidateTree(t *pxml.Tree) error {
	var firstErr error
	pxml.WalkUnique(t.Root(), func(n *pxml.Node) bool {
		if firstErr != nil {
			return false
		}
		if n.Kind() != pxml.KindElem {
			return true
		}
		maxCounts := make(map[string]int)
		for _, prob := range n.Children() {
			// Worst-case contribution of this choice point per tag.
			worst := make(map[string]int)
			for _, poss := range prob.Children() {
				local := make(map[string]int)
				for _, el := range poss.Children() {
					local[el.Tag()]++
				}
				for tag, c := range local {
					if c > worst[tag] {
						worst[tag] = c
					}
				}
			}
			for tag, c := range worst {
				maxCounts[tag] += c
			}
		}
		if err := s.CheckCounts(n.Tag(), maxCounts, false); err != nil {
			firstErr = fmt.Errorf("dtd: possible world violation under <%s>: %w", n.Tag(), err)
		}
		return true
	})
	return firstErr
}

// Tags returns the declared element tags, sorted.
func (s *Schema) Tags() []string {
	tags := make([]string, 0, len(s.models))
	for t := range s.models {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}

// String renders the schema back in DTD syntax, deterministically.
func (s *Schema) String() string {
	var b strings.Builder
	for _, tag := range s.Tags() {
		m := s.models[tag]
		b.WriteString("<!ELEMENT ")
		b.WriteString(tag)
		b.WriteString(" ")
		switch m.Kind {
		case ModelPCDATA:
			b.WriteString("(#PCDATA)")
		case ModelEmpty:
			b.WriteString("EMPTY")
		case ModelAny:
			b.WriteString("ANY")
		case ModelSeq:
			b.WriteString("(")
			for i, f := range m.Fields {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(f.Tag)
				switch {
				case f.Min == 0 && f.Max == 1:
					b.WriteString("?")
				case f.Min == 0 && f.Max == Unbounded:
					b.WriteString("*")
				case f.Min == 1 && f.Max == Unbounded:
					b.WriteString("+")
				}
			}
			b.WriteString(")")
		}
		b.WriteString(">\n")
	}
	return b.String()
}

// Package feedback implements the user-feedback loop of the IMPrECISE
// information cycle (paper Figure 1 and §VII): users judge ranked query
// answers, the judgments are traced back to possible worlds, and data
// belonging to impossible worlds is removed from the database —
// "incrementally improving the integration result". The demo paper lists
// this mechanism as not yet implemented; this package builds it on the
// conditioning machinery of the query processor.
package feedback

import (
	"fmt"
	"math/big"
	"time"

	"repro/internal/pxml"
	"repro/internal/query"
)

// Judgment is a user's verdict on one query answer.
type Judgment int

const (
	// Correct confirms the answer: some world must produce it.
	Correct Judgment = iota
	// Incorrect rejects the answer: no world may produce it.
	Incorrect
)

// String names the judgment.
func (j Judgment) String() string {
	if j == Correct {
		return "correct"
	}
	return "incorrect"
}

// Event records one processed feedback item.
type Event struct {
	Query    string
	Value    string
	Judgment Judgment
	// PriorP is the probability the event had before conditioning; low
	// prior-probability feedback removes a lot of uncertainty.
	PriorP float64
	// WorldsBefore and WorldsAfter measure the reduction.
	WorldsBefore, WorldsAfter *big.Int
	When                      time.Time
}

// Options bound the conditioning work.
type Options struct {
	// LocalWorldLimit bounds anchor-subtree enumeration for rejections.
	LocalWorldLimit int
	// GlobalWorldLimit bounds whole-document enumeration for
	// confirmations.
	GlobalWorldLimit int
	// Now supplies timestamps (for tests); nil means time.Now.
	Now func() time.Time
}

// Session applies feedback events to a probabilistic database, keeping a
// history. Sessions are not safe for concurrent use.
type Session struct {
	tree    *pxml.Tree
	opts    Options
	history []Event
}

// NewSession starts a feedback session over a document.
func NewSession(t *pxml.Tree, opts Options) *Session {
	return &Session{tree: t, opts: opts}
}

// Tree returns the current (conditioned) document.
func (s *Session) Tree() *pxml.Tree { return s.tree }

// History returns the processed events.
func (s *Session) History() []Event { return s.history }

// Apply processes one judgment on a query answer and updates the
// document. Rejections use exact factorized conditioning; confirmations
// require world enumeration within Options.GlobalWorldLimit.
func (s *Session) Apply(q *query.Query, value string, j Judgment) (Event, error) {
	return s.ApplyAt(q, value, j, time.Time{})
}

// ApplyAt is Apply with an explicit event timestamp (the zero time means
// Options.Now / time.Now). Write-ahead-log replay uses it to reproduce a
// recorded event bit for bit, timestamp included.
func (s *Session) ApplyAt(q *query.Query, value string, j Judgment, when time.Time) (Event, error) {
	before := s.tree.WorldCount()
	var (
		nt  *pxml.Tree
		p   float64
		err error
	)
	switch j {
	case Incorrect:
		nt, p, err = query.ConditionAbsent(s.tree, q, value, s.opts.LocalWorldLimit)
	case Correct:
		nt, p, err = query.ConditionPresent(s.tree, q, value, s.opts.GlobalWorldLimit)
	default:
		return Event{}, fmt.Errorf("feedback: unknown judgment %d", j)
	}
	if err != nil {
		return Event{}, fmt.Errorf("feedback: %s %q on %s: %w", j, value, q, err)
	}
	if when.IsZero() {
		now := time.Now
		if s.opts.Now != nil {
			now = s.opts.Now
		}
		when = now()
	}
	ev := Event{
		Query:        q.String(),
		Value:        value,
		Judgment:     j,
		PriorP:       p,
		WorldsBefore: before,
		WorldsAfter:  nt.WorldCount(),
		When:         when,
	}
	s.tree = nt
	s.history = append(s.history, ev)
	return ev, nil
}

// UncertaintyReduction summarizes the session: the factor by which the
// world count shrank since the session started. It returns 1 for an empty
// history.
func (s *Session) UncertaintyReduction() *big.Float {
	if len(s.history) == 0 {
		return big.NewFloat(1)
	}
	first := new(big.Float).SetInt(s.history[0].WorldsBefore)
	last := new(big.Float).SetInt(s.history[len(s.history)-1].WorldsAfter)
	if last.Sign() == 0 {
		return big.NewFloat(0)
	}
	return new(big.Float).Quo(first, last)
}

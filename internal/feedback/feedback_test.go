package feedback_test

import (
	"math"
	"math/big"
	"testing"
	"time"

	"repro/internal/feedback"
	"repro/internal/pxmltest"
	"repro/internal/query"
)

func fixedNow() time.Time {
	return time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC)
}

func TestSessionRejectAnswer(t *testing.T) {
	s := feedback.NewSession(pxmltest.Fig2Tree(), feedback.Options{Now: fixedNow})
	q := query.MustCompile(`//person/tel`)
	ev, err := s.Apply(q, "2222", feedback.Incorrect)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if math.Abs(ev.PriorP-0.3) > 1e-9 {
		t.Fatalf("prior = %v, want 0.3", ev.PriorP)
	}
	if ev.WorldsBefore.Cmp(big.NewInt(3)) != 0 || ev.WorldsAfter.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("worlds %s -> %s, want 3 -> 1", ev.WorldsBefore, ev.WorldsAfter)
	}
	if ev.Judgment != feedback.Incorrect || ev.Value != "2222" || ev.Query != q.String() {
		t.Fatalf("event = %+v", ev)
	}
	if !ev.When.Equal(fixedNow()) {
		t.Fatalf("timestamp = %v", ev.When)
	}
	res, err := query.Eval(s.Tree(), q, query.Options{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if res.P("2222") != 0 || math.Abs(res.P("1111")-1) > 1e-9 {
		t.Fatalf("answers after feedback = %v", res.Answers)
	}
	if len(s.History()) != 1 {
		t.Fatalf("history = %d", len(s.History()))
	}
	red, _ := s.UncertaintyReduction().Float64()
	if math.Abs(red-3) > 1e-9 {
		t.Fatalf("reduction = %v, want 3", red)
	}
}

func TestSessionConfirmAnswer(t *testing.T) {
	s := feedback.NewSession(pxmltest.Fig2Tree(), feedback.Options{})
	q := query.MustCompile(`//person/tel`)
	ev, err := s.Apply(q, "1111", feedback.Correct)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if math.Abs(ev.PriorP-0.7) > 1e-9 {
		t.Fatalf("prior = %v, want 0.7", ev.PriorP)
	}
	res, err := query.Eval(s.Tree(), q, query.Options{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if math.Abs(res.P("1111")-1) > 1e-9 {
		t.Fatalf("P(1111) = %v after confirmation", res.P("1111"))
	}
}

func TestSessionSequentialFeedbackConverges(t *testing.T) {
	// Confirm 1111, then reject 2222: only the one-person 1111 world
	// remains... actually after confirming 1111 the remaining worlds are
	// {1111} and {1111,2222}; rejecting 2222 leaves exactly {1111}.
	s := feedback.NewSession(pxmltest.Fig2Tree(), feedback.Options{})
	q := query.MustCompile(`//person/tel`)
	if _, err := s.Apply(q, "1111", feedback.Correct); err != nil {
		t.Fatalf("confirm: %v", err)
	}
	ev, err := s.Apply(q, "2222", feedback.Incorrect)
	if err != nil {
		t.Fatalf("reject: %v", err)
	}
	if ev.WorldsAfter.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("worlds after = %s, want 1", ev.WorldsAfter)
	}
	if !s.Tree().IsCertain() {
		t.Fatalf("database should be certain after full feedback:\n%s", s.Tree())
	}
	if len(s.History()) != 2 {
		t.Fatalf("history = %d", len(s.History()))
	}
}

func TestSessionContradictionKeepsState(t *testing.T) {
	s := feedback.NewSession(pxmltest.Fig2Tree(), feedback.Options{})
	q := query.MustCompile(`//person/nm`)
	_, err := s.Apply(q, "John", feedback.Incorrect)
	if err == nil {
		t.Fatalf("rejecting a certain answer should error")
	}
	if len(s.History()) != 0 {
		t.Fatalf("failed feedback must not be recorded")
	}
	// The tree is unchanged and still queryable.
	res, err := query.Eval(s.Tree(), query.MustCompile(`//person/tel`), query.Options{})
	if err != nil || len(res.Answers) != 2 {
		t.Fatalf("tree damaged after failed feedback: %v %v", res.Answers, err)
	}
}

func TestUncertaintyReductionEmptyHistory(t *testing.T) {
	s := feedback.NewSession(pxmltest.Fig2Tree(), feedback.Options{})
	red, _ := s.UncertaintyReduction().Float64()
	if red != 1 {
		t.Fatalf("empty-history reduction = %v", red)
	}
}

func TestJudgmentString(t *testing.T) {
	if feedback.Correct.String() != "correct" || feedback.Incorrect.String() != "incorrect" {
		t.Fatalf("judgment strings wrong")
	}
}

package explain_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/explain"
	"repro/internal/integrate"
	"repro/internal/oracle"
	"repro/internal/pxmltest"
	"repro/internal/query"
	"repro/internal/xmlcodec"
)

func TestExplainFig2Answer(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	q := query.MustCompile(`//person/tel`)
	r, err := explain.Answer(tr, q, "2222", explain.Options{})
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if math.Abs(r.P-0.7) > 1e-9 {
		t.Fatalf("P = %v, want 0.7", r.P)
	}
	if len(r.Choices) != 2 {
		t.Fatalf("choices = %d, want 2 (merge choice and phone choice)", len(r.Choices))
	}
	// Two choice points affect the answer. The phone value choice:
	// forcing tel=1111 leaves P(2222) = 0.4 (separate world only),
	// forcing tel=2222 gives 1 — influence 0.6. The merge choice: merged
	// forces 0.5, separate forces 1 — influence 0.5. So the phone choice
	// ranks first.
	top := r.Choices[0]
	if len(top.Alternatives) != 2 {
		t.Fatalf("alternatives = %d", len(top.Alternatives))
	}
	for _, c := range r.Choices {
		for _, a := range c.Alternatives {
			if a.Posterior < -1e-9 || a.Posterior > 1+1e-9 {
				t.Fatalf("posterior out of range: %+v", a)
			}
		}
	}
	if math.Abs(top.Influence-0.6) > 1e-9 {
		t.Fatalf("top influence = %v, want 0.6", top.Influence)
	}
	if math.Abs(r.Choices[1].Influence-0.5) > 1e-9 {
		t.Fatalf("second influence = %v, want 0.5", r.Choices[1].Influence)
	}
	pg := map[float64]bool{}
	for _, a := range top.Alternatives {
		pg[math.Round(a.PAnswer*1000)/1000] = true
	}
	if !pg[0.4] || !pg[1] {
		t.Fatalf("P(answer|alt) of the phone choice = %+v, want {0.4, 1}", top.Alternatives)
	}
	// Posteriors sum to 1 across each choice point's alternatives.
	for _, c := range r.Choices {
		sum := 0.0
		for _, a := range c.Alternatives {
			sum += a.Posterior
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posteriors of %s sum to %v", c.Path, sum)
		}
	}
}

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestExplainIndependentChoiceHasNoInfluence(t *testing.T) {
	// A document with two independent choices; the query touches only one.
	tr, err := xmlcodec.DecodeString(`
		<r>
			<_prob><_poss p="0.5"><a>x</a></_poss><_poss p="0.5"><a>y</a></_poss></_prob>
			<_prob><_poss p="0.5"><b>1</b></_poss><_poss p="0.5"><b>2</b></_poss></_prob>
		</r>`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := explain.Answer(tr, query.MustCompile(`//a`), "x", explain.Options{})
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if len(r.Choices) != 1 {
		t.Fatalf("only the a-choice should be reported: %+v", r.Choices)
	}
	if !strings.Contains(r.Choices[0].Alternatives[0].Summary, "<a>") {
		t.Fatalf("summary = %q", r.Choices[0].Alternatives[0].Summary)
	}
}

func TestExplainNoAnswer(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	_, err := explain.Answer(tr, query.MustCompile(`//person/tel`), "9999", explain.Options{})
	if !errors.Is(err, explain.ErrNoAnswer) {
		t.Fatalf("err = %v", err)
	}
}

func TestExplainCertainAnswer(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	r, err := explain.Answer(tr, query.MustCompile(`//person/nm`), "John", explain.Options{})
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if !close(r.P, 1) {
		t.Fatalf("P = %v", r.P)
	}
	if len(r.Choices) != 0 {
		t.Fatalf("certain answer should not depend on choices: %+v", r.Choices)
	}
	if !strings.Contains(r.Format(), "does not depend") {
		t.Fatalf("format = %q", r.Format())
	}
}

func TestExplainMovieArtifact(t *testing.T) {
	// The paper's §VI artifact: explain why 'Mission: Impossible' shows up
	// as a John movie. The influential choice must involve the MI merge.
	pair := datagen.Confusing(12, 1)
	tree, _, err := integrate.Integrate(pair.A.Tree, pair.B.Tree, integrate.Config{
		Oracle: oracle.MovieOracle(oracle.SetGenreTitle),
		Schema: datagen.MovieDTD(),
	})
	if err != nil {
		t.Fatalf("integrate: %v", err)
	}
	q := query.MustCompile(`//movie[some $d in .//director satisfies contains($d,"John")]/title`)
	r, err := explain.Answer(tree, q, "Mission: Impossible", explain.Options{MaxChoices: 200})
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if r.P <= 0.01 || r.P >= 0.5 {
		t.Fatalf("artifact P = %v", r.P)
	}
	if len(r.Choices) == 0 {
		t.Fatalf("artifact should depend on choices")
	}
	out := r.Format()
	if !strings.Contains(out, "influence") {
		t.Fatalf("format:\n%s", out)
	}
	// The most influential choice point should change the artifact's
	// probability substantially.
	if r.Choices[0].Influence < 0.05 {
		t.Fatalf("top influence = %v", r.Choices[0].Influence)
	}
}

func TestExplainMaxChoicesBound(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	r, err := explain.Answer(tr, query.MustCompile(`//person/tel`), "2222", explain.Options{MaxChoices: 1})
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if len(r.Choices) > 1 {
		t.Fatalf("choices = %d, want at most 1", len(r.Choices))
	}
}

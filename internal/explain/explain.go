// Package explain traces probabilistic query answers back to the choice
// points they depend on — the "which worlds is this answer true in?"
// question that underlies the paper's feedback mechanism (feedback on
// answers is traced back to possible worlds). For a given answer value it
// reports, per choice point, the answer probability under each forced
// alternative and the posterior probability of each alternative given the
// answer, ranked by influence. Integrators use it to see which undecided
// matches an implausible answer hinges on.
package explain

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/pxml"
	"repro/internal/query"
)

// AltInfluence describes one alternative of a choice point relative to an
// answer.
type AltInfluence struct {
	// Index is the alternative's position in the choice point.
	Index int
	// Prior is the alternative's unconditioned probability.
	Prior float64
	// PAnswer is P(answer | this alternative chosen).
	PAnswer float64
	// Posterior is P(this alternative | answer), by Bayes.
	Posterior float64
	// Summary sketches the alternative's contents (first line).
	Summary string
}

// ChoiceInfluence describes one choice point's effect on the answer.
type ChoiceInfluence struct {
	// Path locates the choice point: element path from the root with
	// child-choice indexes, e.g. /catalog/movie[3]/choice[0].
	Path string
	// Alternatives lists the per-alternative numbers.
	Alternatives []AltInfluence
	// Influence is the spread max_i PAnswer − min_i PAnswer: 0 means the
	// answer is independent of this choice.
	Influence float64
}

// Report explains one answer.
type Report struct {
	Query string
	Value string
	// P is the answer's probability.
	P float64
	// Choices are the genuine choice points, most influential first.
	Choices []ChoiceInfluence
}

// Options bound the analysis.
type Options struct {
	// MaxChoices bounds how many choice points are analyzed (default 64;
	// the nearest-to-root ones are taken first).
	MaxChoices int
	// LocalWorldLimit is passed to exact evaluation.
	LocalWorldLimit int
	// MinInfluence drops choice points whose influence is below the
	// threshold from the report (default 1e-9).
	MinInfluence float64
}

func (o Options) maxChoices() int {
	if o.MaxChoices > 0 {
		return o.MaxChoices
	}
	return 64
}

func (o Options) minInfluence() float64 {
	if o.MinInfluence > 0 {
		return o.MinInfluence
	}
	return 1e-9
}

// ErrNoAnswer is returned when the value is not a possible answer.
var ErrNoAnswer = errors.New("explain: value is not a possible answer of the query")

// Answer analyzes which choice points an answer depends on.
func Answer(t *pxml.Tree, q *query.Query, value string, opts Options) (*Report, error) {
	baseline, err := evalValue(t, q, value, opts)
	if err != nil {
		return nil, err
	}
	if baseline <= 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoAnswer, value)
	}
	report := &Report{Query: q.String(), Value: value, P: baseline}

	choices := collectChoices(t, opts.maxChoices())
	for _, c := range choices {
		ci := ChoiceInfluence{Path: c.path}
		minP, maxP := 1.0, 0.0
		skip := false
		for i, poss := range c.node.Children() {
			forced, err := forceAlternative(t, c.node, i)
			if err != nil {
				skip = true
				break
			}
			p, err := evalValue(forced, q, value, opts)
			if err != nil {
				skip = true
				break
			}
			ai := AltInfluence{
				Index:   i,
				Prior:   poss.Prob(),
				PAnswer: p,
				Summary: summarize(poss),
			}
			ai.Posterior = ai.Prior * p / baseline
			ci.Alternatives = append(ci.Alternatives, ai)
			if p < minP {
				minP = p
			}
			if p > maxP {
				maxP = p
			}
		}
		if skip {
			continue
		}
		ci.Influence = maxP - minP
		if ci.Influence >= opts.minInfluence() {
			report.Choices = append(report.Choices, ci)
		}
	}
	sort.SliceStable(report.Choices, func(i, j int) bool {
		return report.Choices[i].Influence > report.Choices[j].Influence
	})
	return report, nil
}

func evalValue(t *pxml.Tree, q *query.Query, value string, opts Options) (float64, error) {
	answers, err := query.EvalExact(t, q, opts.LocalWorldLimit)
	if err != nil {
		return 0, err
	}
	for _, a := range answers {
		if a.Value == value {
			return a.P, nil
		}
	}
	return 0, nil
}

type located struct {
	node *pxml.Node
	path string
}

// collectChoices lists genuine choice points breadth-first (nearest to the
// root first), with human-readable paths. Shared nodes are listed once, at
// their first discovered location.
func collectChoices(t *pxml.Tree, max int) []located {
	var out []located
	seen := map[*pxml.Node]bool{}
	type item struct {
		n    *pxml.Node
		path string
	}
	queue := []item{{n: t.Root(), path: ""}}
	for len(queue) > 0 && len(out) < max {
		it := queue[0]
		queue = queue[1:]
		n := it.n
		switch n.Kind() {
		case pxml.KindProb:
			if len(n.Children()) > 1 && !seen[n] {
				seen[n] = true
				out = append(out, located{node: n, path: it.path})
			}
			for i, poss := range n.Children() {
				p := it.path
				if len(n.Children()) > 1 {
					p = fmt.Sprintf("%s⟨alt %d⟩", it.path, i)
				}
				queue = append(queue, item{n: poss, path: p})
			}
		case pxml.KindPoss:
			for _, el := range n.Children() {
				queue = append(queue, item{n: el, path: it.path})
			}
		default:
			base := it.path + "/" + n.Tag()
			ci := 0
			for _, prob := range n.Children() {
				p := base
				if len(prob.Children()) > 1 {
					p = fmt.Sprintf("%s/choice[%d]", base, ci)
					ci++
				}
				queue = append(queue, item{n: prob, path: p})
			}
		}
	}
	return out
}

// forceAlternative returns a tree in which the given choice point is
// committed to alternative i (all occurrences, if the node is shared).
func forceAlternative(t *pxml.Tree, choice *pxml.Node, i int) (*pxml.Tree, error) {
	alt := choice.Child(i)
	replacement := pxml.NewProb(pxml.NewPoss(1, alt.Children()...))
	root := substitute(t.Root(), choice, replacement, map[*pxml.Node]*pxml.Node{})
	return pxml.NewTree(root)
}

func substitute(n, target, replacement *pxml.Node, memo map[*pxml.Node]*pxml.Node) *pxml.Node {
	if n == target {
		return replacement
	}
	if out, ok := memo[n]; ok {
		return out
	}
	kids := n.Children()
	var newKids []*pxml.Node
	for i, k := range kids {
		nk := substitute(k, target, replacement, memo)
		if nk != k && newKids == nil {
			newKids = make([]*pxml.Node, len(kids))
			copy(newKids, kids[:i])
		}
		if newKids != nil {
			newKids[i] = nk
		}
	}
	out := n
	if newKids != nil {
		switch n.Kind() {
		case pxml.KindProb:
			out = pxml.NewProb(newKids...)
		case pxml.KindPoss:
			out = pxml.NewPoss(n.Prob(), newKids...)
		default:
			out = pxml.NewElem(n.Tag(), n.Text(), newKids...)
		}
	}
	memo[n] = out
	return out
}

// summarize renders a possibility's contents as a one-line sketch.
func summarize(poss *pxml.Node) string {
	if len(poss.Children()) == 0 {
		return "(absent)"
	}
	parts := make([]string, 0, len(poss.Children()))
	for _, el := range poss.Children() {
		v := query.StringValue(el)
		if v == "" {
			parts = append(parts, "<"+el.Tag()+">")
		} else if len(v) > 32 {
			parts = append(parts, fmt.Sprintf("<%s>%s…", el.Tag(), v[:29]))
		} else {
			parts = append(parts, fmt.Sprintf("<%s>%s", el.Tag(), v))
		}
	}
	return strings.Join(parts, " ")
}

// Format renders the report as aligned text.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P(%s = %q) = %.4f\n", r.Query, r.Value, r.P)
	if len(r.Choices) == 0 {
		b.WriteString("the answer does not depend on any choice point\n")
		return b.String()
	}
	for _, c := range r.Choices {
		fmt.Fprintf(&b, "choice %s (influence %.4f)\n", c.Path, c.Influence)
		for _, a := range c.Alternatives {
			fmt.Fprintf(&b, "  alt %d  prior %.3f  P(answer|alt) %.3f  P(alt|answer) %.3f  %s\n",
				a.Index, a.Prior, a.PAnswer, a.Posterior, a.Summary)
		}
	}
	return b.String()
}

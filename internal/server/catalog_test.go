package server_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/server"
)

const bookC = `<addressbook><person><nm>Mary</nm><tel>3333</tel></person></addressbook>`

// newCatalogServer serves a catalog rooted at dir.
func newCatalogServer(t *testing.T, dir string) (*httptest.Server, *catalog.Catalog) {
	t.Helper()
	cat, err := catalog.Open(dir, catalog.Options{
		Config:       core.Config{Schema: personDTD},
		RootTag:      "addressbook",
		CompactEvery: -1,
	})
	if err != nil {
		t.Fatalf("catalog.Open: %v", err)
	}
	t.Cleanup(func() { cat.Close() })
	ts := httptest.NewServer(server.NewCatalog(cat, server.Options{}).Handler())
	t.Cleanup(ts.Close)
	return ts, cat
}

func TestCatalogCreateListDrop(t *testing.T) {
	ts, _ := newCatalogServer(t, t.TempDir())

	var created server.CreateDBResponse
	doJSON(t, "POST", ts.URL+"/dbs", "application/json",
		strings.NewReader(`{"name":"movies"}`), http.StatusCreated, &created)
	if created.Name != "movies" {
		t.Fatalf("create = %+v", created)
	}
	// PUT form, duplicate, and invalid names.
	doJSON(t, "PUT", ts.URL+"/dbs/books", "", nil, http.StatusCreated, nil)
	doJSON(t, "POST", ts.URL+"/dbs", "application/json",
		strings.NewReader(`{"name":"movies"}`), http.StatusConflict, nil)
	doJSON(t, "POST", ts.URL+"/dbs", "application/json",
		strings.NewReader(`{"name":"../evil"}`), http.StatusBadRequest, nil)

	var list server.DBListResponse
	doJSON(t, "GET", ts.URL+"/dbs", "", nil, http.StatusOK, &list)
	if len(list.Databases) != 2 || list.Databases[0].Name != "books" || list.Databases[1].Name != "movies" {
		t.Fatalf("list = %+v", list)
	}
	if list.Databases[0].WAL == nil {
		t.Fatalf("listing lacks durability stats")
	}

	doJSON(t, "DELETE", ts.URL+"/dbs/books", "", nil, http.StatusOK, nil)
	doJSON(t, "DELETE", ts.URL+"/dbs/books", "", nil, http.StatusNotFound, nil)
	doJSON(t, "GET", ts.URL+"/dbs/books/stats", "", nil, http.StatusNotFound, nil)
}

func TestCatalogPerDatabaseVerbs(t *testing.T) {
	ts, _ := newCatalogServer(t, t.TempDir())
	doJSON(t, "PUT", ts.URL+"/dbs/x", "", nil, http.StatusCreated, nil)

	var ir server.IntegrateResponse
	doJSON(t, "POST", ts.URL+"/dbs/x/integrate", "application/xml",
		strings.NewReader(bookA), http.StatusOK, &ir)
	doJSON(t, "POST", ts.URL+"/dbs/x/integrate", "application/xml",
		strings.NewReader(bookB), http.StatusOK, &ir)
	if ir.Worlds != "3" {
		t.Fatalf("worlds after B = %s", ir.Worlds)
	}

	var qr server.QueryResponse
	doJSON(t, "GET", ts.URL+"/dbs/x/query?q="+url.QueryEscape(`//person[nm="John"]/tel`),
		"", nil, http.StatusOK, &qr)
	if len(qr.Answers) != 2 {
		t.Fatalf("answers = %+v", qr.Answers)
	}

	var fr server.FeedbackResponse
	doJSON(t, "POST", ts.URL+"/dbs/x/feedback", "application/json",
		strings.NewReader(`{"query":"//person[nm=\"John\"]/tel","value":"2222","correct":false}`),
		http.StatusOK, &fr)
	if fr.WorldsAfter != "1" {
		t.Fatalf("feedback = %+v", fr)
	}

	var st server.StatsResponse
	doJSON(t, "GET", ts.URL+"/dbs/x/stats", "", nil, http.StatusOK, &st)
	if st.Database != "x" || st.Integrations != 2 || st.FeedbackCount != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WAL == nil || st.WAL.LastSeq != 3 || st.WAL.TailOps != 3 {
		t.Fatalf("wal stats = %+v", st.WAL)
	}

	// Databases are isolated: a second database sees none of it.
	doJSON(t, "PUT", ts.URL+"/dbs/y", "", nil, http.StatusCreated, nil)
	var sty server.StatsResponse
	doJSON(t, "GET", ts.URL+"/dbs/y/stats", "", nil, http.StatusOK, &sty)
	if sty.Integrations != 0 || sty.Worlds != "1" {
		t.Fatalf("y stats = %+v", sty)
	}
}

// TestCatalogLegacyAliasAndDefault drives the legacy routes against a
// catalog server: they operate on the auto-created default database.
func TestCatalogLegacyAliasAndDefault(t *testing.T) {
	ts, cat := newCatalogServer(t, t.TempDir())
	var ir server.IntegrateResponse
	doJSON(t, "POST", ts.URL+"/integrate", "application/xml",
		strings.NewReader(bookA), http.StatusOK, &ir)
	var st server.StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", "", nil, http.StatusOK, &st)
	if st.Database != catalog.DefaultName || st.Integrations != 1 || st.WAL == nil {
		t.Fatalf("legacy alias stats = %+v", st)
	}
	// The same database is visible under its /dbs address.
	var st2 server.StatsResponse
	doJSON(t, "GET", ts.URL+"/dbs/default/stats", "", nil, http.StatusOK, &st2)
	if st2.Integrations != 1 {
		t.Fatalf("default stats via /dbs = %+v", st2)
	}
	if names := cat.Names(); len(names) != 1 || names[0] != catalog.DefaultName {
		t.Fatalf("catalog names = %v", names)
	}
}

// TestCatalogSaveLoadConstrained proves /save and /load never accept
// filesystem paths: only simple names inside the server's data root.
func TestCatalogSaveLoadConstrained(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newCatalogServer(t, dir)
	doJSON(t, "PUT", ts.URL+"/dbs/x", "", nil, http.StatusCreated, nil)
	doJSON(t, "POST", ts.URL+"/dbs/x/integrate", "application/xml",
		strings.NewReader(bookA), http.StatusOK, nil)

	var saved server.SnapshotResponse
	doJSON(t, "POST", ts.URL+"/dbs/x/save", "application/json",
		strings.NewReader(`{"name":"exp1"}`), http.StatusOK, &saved)
	if saved.Name != "exp1" {
		t.Fatalf("save = %+v", saved)
	}
	if _, err := os.Stat(filepath.Join(dir, "x", "snapshots", "exp1", "manifest.json")); err != nil {
		t.Fatalf("snapshot not under the data root: %v", err)
	}
	for _, bad := range []string{`../escape`, `/etc/cron.d/x`, `a/b`, `a\b`, `..`} {
		body := fmt.Sprintf(`{"name":%q}`, bad)
		doJSON(t, "POST", ts.URL+"/dbs/x/save", "application/json",
			strings.NewReader(body), http.StatusBadRequest, nil)
		doJSON(t, "POST", ts.URL+"/dbs/x/load", "application/json",
			strings.NewReader(body), http.StatusBadRequest, nil)
	}
	// Nothing escaped: the attempts left no files above the data root.
	if _, err := os.Stat(filepath.Join(dir, "..", "escape")); !os.IsNotExist(err) {
		t.Fatalf("escape attempt materialized: %v", err)
	}
	doJSON(t, "POST", ts.URL+"/dbs/x/integrate", "application/xml",
		strings.NewReader(bookB), http.StatusOK, nil)
	var loaded server.SnapshotResponse
	doJSON(t, "POST", ts.URL+"/dbs/x/load", "application/json",
		strings.NewReader(`{"name":"exp1"}`), http.StatusOK, &loaded)
	if loaded.Worlds != "1" {
		t.Fatalf("load = %+v", loaded)
	}
}

// TestCatalogKillRestartOverHTTP is the acceptance scenario end to end:
// mutate a named database over HTTP, kill without shutdown, reopen the
// catalog and serve it again — /dbs/{name}/stats reports the identical
// document and intact histories.
func TestCatalogKillRestartOverHTTP(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	ts, _ := newCatalogServer(t, data)
	doJSON(t, "PUT", ts.URL+"/dbs/movies", "", nil, http.StatusCreated, nil)
	for _, src := range []string{bookA, bookB, bookC} {
		doJSON(t, "POST", ts.URL+"/dbs/movies/integrate", "application/xml",
			strings.NewReader(src), http.StatusOK, nil)
	}
	doJSON(t, "POST", ts.URL+"/dbs/movies/feedback", "application/json",
		strings.NewReader(`{"query":"//person[nm=\"John\"]/tel","value":"2222","correct":false}`),
		http.StatusOK, nil)
	var before server.StatsResponse
	doJSON(t, "GET", ts.URL+"/dbs/movies/stats", "", nil, http.StatusOK, &before)
	var exported string
	{
		resp, err := http.Get(ts.URL + "/dbs/movies/export")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		exported = string(b)
	}

	// Kill: copy the fsynced disk state while the first server is live.
	killed := filepath.Join(dir, "killed")
	copyTree(t, data, killed)
	ts2, _ := newCatalogServer(t, killed)
	var after server.StatsResponse
	doJSON(t, "GET", ts2.URL+"/dbs/movies/stats", "", nil, http.StatusOK, &after)
	if after.Worlds != before.Worlds || after.LogicalNodes != before.LogicalNodes ||
		after.Integrations != before.Integrations || after.FeedbackCount != before.FeedbackCount {
		t.Fatalf("recovered stats differ:\nbefore %+v\nafter  %+v", before, after)
	}
	if after.WAL == nil || after.WAL.RecoveredOps != 4 {
		t.Fatalf("recovered WAL stats = %+v", after.WAL)
	}
	resp, err := http.Get(ts2.URL + "/dbs/movies/export")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != exported {
		t.Fatalf("recovered export differs from pre-kill export")
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copyTree: %v", err)
	}
}

// TestLegacyServerRejectsCatalogRoutes pins the 503 contract of a
// single-database server.
func TestLegacyServerRejectsCatalogRoutes(t *testing.T) {
	ts, _ := newTestServer(t)
	doJSON(t, "GET", ts.URL+"/dbs", "", nil, http.StatusServiceUnavailable, nil)
	doJSON(t, "PUT", ts.URL+"/dbs/x", "", nil, http.StatusServiceUnavailable, nil)
	doJSON(t, "GET", ts.URL+"/dbs/x/stats", "", nil, http.StatusServiceUnavailable, nil)
	doJSON(t, "DELETE", ts.URL+"/dbs/x", "", nil, http.StatusServiceUnavailable, nil)
}

// TestLegacySaveLoadRejectsPaths pins the path constraint on the legacy
// routes too: absolute paths and traversal are 400s.
func TestLegacySaveLoadRejectsPaths(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, bad := range []string{`../evil`, `/etc/passwd`, `a/b`, `a\b`, `..`, `.`} {
		body := fmt.Sprintf(`{"name":%q}`, bad)
		doJSON(t, "POST", ts.URL+"/save", "application/json",
			strings.NewReader(body), http.StatusBadRequest, nil)
		doJSON(t, "POST", ts.URL+"/load", "application/json",
			strings.NewReader(body), http.StatusBadRequest, nil)
	}
}

// Package server exposes IMPrECISE probabilistic databases over a
// JSON-over-HTTP API — the interactive integration service the paper's
// demo describes: clients POST XML sources to integrate, issue ranked
// probabilistic queries, feed judgments back, and persist/restore
// snapshots. The databases' copy-on-write concurrency discipline means
// query traffic keeps being served from a consistent snapshot while an
// integration is in flight.
//
// A server fronts one bare core.Database (New), a durable multi-database
// catalog (NewCatalog), or a read replica following a primary
// (NewReplica). In catalog mode every database is addressed under
// /dbs/{name}/…, the catalog can be managed over HTTP, and the legacy
// single-database routes below alias to the catalog's "default" database,
// so old clients keep working unchanged.
//
// Catalog-mode servers are replication primaries: they ship their
// write-ahead logs under GET /dbs/{name}/wal (long-poll framed op
// stream), serve bootstrap state under GET /dbs/{name}/snapshot, and
// report positions under GET /replication. A replica server serves every
// read verb from its local follower catalog but rejects mutations with
// 403 plus the primary's address. It exposes the same log-shipping read
// endpoints over its own catalog; the official follower client still
// refuses to sync off a replica, keeping replication trees rooted at
// primaries.
//
// Endpoints (all responses are JSON; errors use {"error": "…"}):
//
//	POST /integrate?mode=merge|replace  XML body -> integration stats
//	POST /integrate/batch               {"sources":["<xml>…",…]} -> per-source stats
//	GET  /query?q=…&top=N&seed=S        ranked answers; method=auto|exact|
//	     &method=M&samples=N&explain=1  enumerate|sample, explain=1 adds
//	     &workers=W&budget_ms=B         the evaluation plan; workers fans
//	                                    evaluation over W goroutines (0 =
//	                                    all CPUs), budget_ms bounds wall
//	                                    time (408 + budget_exhausted)
//	POST /feedback                      {"query","value","correct"} -> event
//	GET  /stats                         document + cache + server statistics
//	                                    (catalog mode: + WAL/compaction)
//	GET  /worlds?max=N                  enumerated possible worlds
//	GET  /export                        the document as probabilistic XML
//	POST /save                          {"name","comment"} -> manifest
//	POST /load                          {"name"} -> manifest
//	GET  /healthz                       liveness probe; ?verbose=1 adds a
//	                                    readiness report (per-db log
//	                                    positions, replication lag)
//	GET  /replication                   role + per-database replication
//	                                    positions / follower lag
//	GET  /wal?since=&limit=&wait=       committed op-log page (catalog
//	                                    mode; long-poll when wait>0;
//	                                    410 when compacted past since)
//	GET  /snapshot                      full-state bootstrap payload
//
// Catalog management (catalog mode; 503 otherwise):
//
//	GET    /dbs                         list databases + durability stats
//	POST   /dbs                         {"name"} -> create (201)
//	PUT    /dbs/{name}                  create (201)
//	DELETE /dbs/{name}                  drop (irreversible)
//	ANY    /dbs/{name}/<verb>           every per-database verb above
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/integrate"
	"repro/internal/pxml"
	"repro/internal/query"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/internal/worlds"
	"repro/internal/xmlcodec"
)

// DefaultMaxBodyBytes caps request bodies when Options.MaxBodyBytes is
// zero (8 MiB — generous for XML sources, small enough to shrug off
// accidental uploads).
const DefaultMaxBodyBytes = 8 << 20

// DefaultMaxWorlds is the ceiling on the number of worlds a single
// /worlds response enumerates; max parameters above it are clamped
// down to it (the parameter's own default is 20).
const DefaultMaxWorlds = 1000

// Options configure a Server.
type Options struct {
	// SnapshotDir is the directory under which /save and /load resolve
	// snapshot names. Empty disables the persistence endpoints (503).
	SnapshotDir string
	// MaxBodyBytes bounds request bodies (0 means DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxWorlds bounds /worlds enumeration (0 means DefaultMaxWorlds).
	MaxWorlds int
	// NoWireCompression stops the server from compressing binary
	// replication responses even when a follower offers deflate
	// (serve -wire-compression=false).
	NoWireCompression bool
	// Logger receives one line per request; nil disables logging.
	Logger *log.Logger
}

// Server is the HTTP front end over one core.Database (legacy mode), a
// durable multi-database catalog, or a read replica's follower catalog.
// A replica server can be promoted to primary at runtime (POST
// /promote) and a primary can step down (POST /stepdown), so the role
// state below is mutable and guarded.
type Server struct {
	db   *core.Database   // legacy single-database mode; nil in catalog mode
	cat  *catalog.Catalog // catalog mode; nil in legacy mode
	rep  *replica.Replica // replica mode; cat is then the follower catalog
	opts Options
	mux  *http.ServeMux

	// roleMu guards the mutable role state: readOnly, primary, promoted
	// and demoted. promoteMu serializes whole promotions (held across the
	// drain + epoch raise, not just the flag flip).
	roleMu    sync.RWMutex
	promoteMu sync.Mutex
	// readOnly rejects every mutating verb with 403 + primary (replica
	// mode, and demoted ex-primaries).
	readOnly bool
	primary  string
	// promoted: this server started as a replica and was promoted; it now
	// serves as a primary over the (former follower) catalog. demoted:
	// this server started as a primary and stepped down after a replica
	// was promoted over it.
	promoted bool
	demoted  bool

	// fencing goroutine bookkeeping (started by a promotion).
	fenceCancel context.CancelFunc
	fenceWG     sync.WaitGroup

	// peerMu guards peers: remote host → the replication wire encoding
	// that host's last /wal or /snapshot fetch negotiated.
	peerMu sync.Mutex
	peers  map[string]string

	// wire counts binary replication pages/snapshots served and their
	// payload vs on-the-wire bytes (replication.go).
	wire wireCounters
}

// target is the database one request operates on: its core plus, in
// catalog mode, the managed wrapper carrying durability stats and
// per-database snapshots.
type target struct {
	core *core.Database
	cdb  *catalog.DB // nil in legacy single-database mode
	name string
}

// New builds a Server over one bare database. The database carries all
// integration knowledge (schema, rules); the server only translates HTTP.
func New(db *core.Database, opts Options) *Server {
	return newServer(db, nil, nil, opts)
}

// NewCatalog builds a Server over a durable multi-database catalog. Each
// database is addressed under /dbs/{name}/…; the legacy single-database
// routes alias to the catalog's default database.
func NewCatalog(cat *catalog.Catalog, opts Options) *Server {
	return newServer(nil, cat, nil, opts)
}

// NewReplica builds a read-replica Server over a live follower. Every
// read verb is served from the follower catalog's local state; every
// mutating verb is rejected with 403 and the primary's address, so
// clients know where to send writes.
func NewReplica(rep *replica.Replica, opts Options) *Server {
	return newServer(nil, rep.Catalog(), rep, opts)
}

func newServer(db *core.Database, cat *catalog.Catalog, rep *replica.Replica, opts Options) *Server {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.MaxWorlds <= 0 {
		opts.MaxWorlds = DefaultMaxWorlds
	}
	s := &Server{db: db, cat: cat, rep: rep, opts: opts, mux: http.NewServeMux(), peers: map[string]string{}}
	if rep != nil {
		s.readOnly = true
		s.primary = rep.Primary()
	}
	// Every per-database verb is registered twice: at the root (legacy
	// alias of the default database) and under /dbs/{name}. Mutating
	// verbs are guarded: a replica rejects them with 403 + primary.
	verbs := []struct {
		pattern  string
		h        func(http.ResponseWriter, *http.Request, target)
		mutating bool
	}{
		{"POST /integrate", s.handleIntegrate, true},
		{"POST /integrate/batch", s.handleIntegrateBatch, true},
		// Ticket lookups are reads, but meaningless on a replica (tickets
		// are issued by the primary's queue and resolve there).
		{"GET /ingest/{ticket}", s.handleIngestTicket, false},
		{"GET /query", s.handleQuery, false},
		{"POST /feedback", s.handleFeedback, true},
		{"GET /stats", s.handleStats, false},
		{"GET /worlds", s.handleWorlds, false},
		{"GET /export", s.handleExport, false},
		// /save writes a server-side snapshot file without touching the
		// database — legal on a replica (local backups of replicated
		// state); /load swaps the document and is a mutation.
		{"POST /save", s.handleSave, false},
		{"POST /load", s.handleLoad, true},
		{"GET /wal", s.handleWAL, false},
		{"GET /snapshot", s.handleSnapshot, false},
	}
	for _, v := range verbs {
		h := v.h
		if v.mutating {
			h = s.guardMutation(h)
		}
		method, path, _ := strings.Cut(v.pattern, " ")
		s.mux.HandleFunc(v.pattern, s.withDefault(h))
		s.mux.HandleFunc(method+" /dbs/{name}"+path, s.withNamed(h))
	}
	s.mux.HandleFunc("GET /dbs", s.handleListDBs)
	s.mux.HandleFunc("POST /dbs", s.handleCreateDB)
	s.mux.HandleFunc("PUT /dbs/{name}", s.handleCreateDB)
	s.mux.HandleFunc("DELETE /dbs/{name}", s.handleDropDB)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /replication", s.handleReplication)
	s.mux.HandleFunc("POST /promote", s.handlePromote)
	s.mux.HandleFunc("POST /stepdown", s.handleStepdown)
	return s
}

// Close stops background work the server may have started (the fencing
// goroutine a promotion spawns). It does not close the underlying
// catalog or replica; their owners do that.
func (s *Server) Close() {
	s.roleMu.Lock()
	cancel := s.fenceCancel
	s.fenceCancel = nil
	s.roleMu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.fenceWG.Wait()
}

// isReadOnly reports whether mutating verbs are currently rejected.
func (s *Server) isReadOnly() bool {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	return s.readOnly
}

// primaryHint is the URL of the node this server believes is the
// primary ("" when it is the primary itself, or does not know).
func (s *Server) primaryHint() string {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	return s.primary
}

// isPromoted reports whether this replica server has been promoted.
func (s *Server) isPromoted() bool {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	return s.promoted
}

// withDefault routes a legacy request to the single database (legacy
// mode) or the catalog's default database. A replica never creates the
// default database — its set is whatever the primary ships — so there the
// alias resolves strictly.
func (s *Server) withDefault(h func(http.ResponseWriter, *http.Request, target)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.db != nil {
			h(w, r, target{core: s.db, name: catalog.DefaultName})
			return
		}
		var (
			db  *catalog.DB
			err error
		)
		if s.isReadOnly() {
			db, err = s.cat.Get(catalog.DefaultName)
			if err != nil {
				writeError(w, http.StatusNotFound, "db %q is not replicated here (address replicated databases under /dbs/{name})", catalog.DefaultName)
				return
			}
		} else if db, err = s.cat.Default(); err != nil {
			writeError(w, http.StatusInternalServerError, "default database: %v", err)
			return
		} else {
			// Default() may have just created the database; a mutation-
			// accepting server owns its queue (idempotent when running).
			db.Core().StartIngest()
		}
		h(w, r, target{core: db.Core(), cdb: db, name: db.Name()})
	}
}

// withNamed routes a /dbs/{name}/… request to the named catalog database.
func (s *Server) withNamed(h func(http.ResponseWriter, *http.Request, target)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		db, ok := s.catalogDB(w, r)
		if !ok {
			return
		}
		h(w, r, target{core: db.Core(), cdb: db, name: db.Name()})
	}
}

// catalogDB resolves {name} against the catalog, writing the error
// response itself when resolution fails.
func (s *Server) catalogDB(w http.ResponseWriter, r *http.Request) (*catalog.DB, bool) {
	if s.cat == nil {
		writeError(w, http.StatusServiceUnavailable, "multi-database catalog is not enabled (start the server with a data directory)")
		return nil, false
	}
	name := r.PathValue("name")
	db, err := s.cat.Get(name)
	if err != nil {
		writeError(w, catalogErrStatus(err), "db %q: %v", name, err)
		return nil, false
	}
	return db, true
}

// catalogErrStatus maps catalog errors onto HTTP statuses.
func catalogErrStatus(err error) int {
	switch {
	case errors.Is(err, catalog.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, catalog.ErrBadName):
		return http.StatusBadRequest
	case errors.Is(err, catalog.ErrExists):
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

// Handler returns the server's routes wrapped in the middleware stack
// (panic recovery, body limits, request logging).
func (s *Server) Handler() http.Handler {
	return chain(s.mux,
		withRequestLog(s.opts.Logger),
		withBodyLimit(s.opts.MaxBodyBytes),
		withRecover(s.opts.Logger),
	)
}

// --- response plumbing ---

// apiError is the uniform JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // headers are out; nothing useful to do on error
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// readJSON decodes a JSON request body into v, rejecting unknown fields
// so client typos surface as 400s instead of silent defaults.
func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// --- handlers ---

// IntegrateResponse reports what an integration run did: the oracle and
// matching counters (embedded, same JSON keys as batch per-source stats)
// plus the resulting document size.
type IntegrateResponse struct {
	Mode string `json:"mode"`
	SourceStats
	// Resulting document size.
	LogicalNodes int64  `json:"logical_nodes"`
	Worlds       string `json:"worlds"`
	ChoicePoints int    `json:"choice_points"`
}

func (s *Server) handleIntegrate(w http.ResponseWriter, r *http.Request, t target) {
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "merge"
	}
	switch v := r.URL.Query().Get("async"); v {
	case "", "0", "false":
	case "1", "true":
		if mode != "merge" {
			writeError(w, http.StatusBadRequest, "integrate: async supports only mode=merge")
			return
		}
		s.handleIntegrateAsync(w, r, t)
		return
	default:
		writeError(w, http.StatusBadRequest, "integrate: bad async parameter %q (0 | 1)", v)
		return
	}
	resp := IntegrateResponse{Mode: mode}
	// result is this request's own resulting document — not t.core.Tree(),
	// which a concurrent writer may have advanced past it already.
	var result *pxml.Tree
	switch mode {
	case "merge":
		other, err := xmlcodec.Decode(r.Body)
		if err != nil {
			writeError(w, statusForBodyError(err, http.StatusUnprocessableEntity), "integrate: %v", err)
			return
		}
		res, stats, err := t.core.IntegrateTreeResult(other)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "integrate: %v", err)
			return
		}
		result = res
		resp.SourceStats = sourceStats(*stats)
	case "replace":
		tree, err := xmlcodec.Decode(r.Body)
		if err != nil {
			writeError(w, statusForBodyError(err, http.StatusUnprocessableEntity), "integrate: %v", err)
			return
		}
		if err := t.core.ReplaceTree(tree); err != nil {
			writeError(w, http.StatusUnprocessableEntity, "integrate: %v", err)
			return
		}
		result = tree
	default:
		writeError(w, http.StatusBadRequest, "integrate: unknown mode %q (merge | replace)", mode)
		return
	}
	resp.LogicalNodes = result.NodeCount()
	resp.Worlds = result.WorldCount().String()
	resp.ChoicePoints = result.ChoicePoints()
	writeJSON(w, http.StatusOK, resp)
}

// EnqueueResponse is the 202 body of POST /integrate?async=1: the ticket
// to poll under GET /ingest/{ticket}.
type EnqueueResponse struct {
	Ticket string `json:"ticket"`
	State  string `json:"state"`
	// StatusPath is the ready-made polling URL for this ticket.
	StatusPath string `json:"status_path"`
}

// handleIntegrateAsync accepts a source into the ingest queue: 202 with a
// ticket on success, 429 + Retry-After when the queue is at capacity, 503
// when the database runs without a queue.
func (s *Server) handleIntegrateAsync(w http.ResponseWriter, r *http.Request, t target) {
	other, err := xmlcodec.Decode(r.Body)
	if err != nil {
		writeError(w, statusForBodyError(err, http.StatusUnprocessableEntity), "integrate: %v", err)
		return
	}
	ticket, err := t.core.Enqueue([]*pxml.Tree{other})
	switch {
	case errors.Is(err, core.ErrQueueFull):
		// The drainer batches everything pending into its next cycle, so
		// one short pause is the honest hint regardless of depth.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "integrate: %v", err)
		return
	case errors.Is(err, core.ErrQueueDisabled):
		writeError(w, http.StatusServiceUnavailable, "integrate: async ingest is disabled (start the server with -ingest-queue)")
		return
	case err != nil:
		writeError(w, http.StatusUnprocessableEntity, "integrate: %v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, EnqueueResponse{
		Ticket:     ticket,
		State:      string(core.TicketPending),
		StatusPath: "/dbs/" + t.name + "/ingest/" + ticket,
	})
}

// handleIngestTicket reports the state of one ingest ticket.
func (s *Server) handleIngestTicket(w http.ResponseWriter, r *http.Request, t target) {
	ticket := r.PathValue("ticket")
	st, err := t.core.TicketStatus(ticket)
	if err != nil {
		writeError(w, http.StatusNotFound, "ingest: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// BatchIntegrateRequest carries multiple XML sources for one atomic batch
// integration.
type BatchIntegrateRequest struct {
	Sources []string `json:"sources"`
}

// SourceStats reports the integration counters of one batch source.
type SourceStats struct {
	OracleCalls         int `json:"oracle_calls"`
	MustPairs           int `json:"must_pairs"`
	CannotPairs         int `json:"cannot_pairs"`
	UndecidedPairs      int `json:"undecided_pairs"`
	MatchingsEnumerated int `json:"matchings_enumerated"`
	MatchingsPruned     int `json:"matchings_pruned"`
	TruncatedComponents int `json:"truncated_components,omitempty"`
	// VerdictMemoHits and MergeMemoHits count oracle decisions and subtree
	// merges answered from the cross-call memo instead of recomputed;
	// SplicedChildren counts top-level components spliced verbatim because
	// the other source never touched them (the delta-integration path).
	VerdictMemoHits int `json:"verdict_memo_hits,omitempty"`
	MergeMemoHits   int `json:"merge_memo_hits,omitempty"`
	SplicedChildren int `json:"spliced_children,omitempty"`
}

func sourceStats(st integrate.Stats) SourceStats {
	return SourceStats{
		OracleCalls:         st.OracleCalls,
		MustPairs:           st.MustPairs,
		CannotPairs:         st.CannotPairs,
		UndecidedPairs:      st.UndecidedPairs,
		MatchingsEnumerated: st.MatchingsEnumerated,
		MatchingsPruned:     st.MatchingsPruned,
		TruncatedComponents: st.TruncatedComponents,
		VerdictMemoHits:     st.VerdictMemoHits,
		MergeMemoHits:       st.MergeMemoHits,
		SplicedChildren:     st.SplicedChildren,
	}
}

// BatchIntegrateResponse reports an atomic batch integration: per-source
// counters plus the size of the document the batch produced.
type BatchIntegrateResponse struct {
	Integrated   int           `json:"integrated"`
	Sources      []SourceStats `json:"sources"`
	LogicalNodes int64         `json:"logical_nodes"`
	Worlds       string        `json:"worlds"`
	ChoicePoints int           `json:"choice_points"`
}

// handleIntegrateBatch integrates N sources in one writer-lock cycle. The
// batch is atomic: either every source integrates and readers observe the
// final document in a single swap, or the database is left untouched.
func (s *Server) handleIntegrateBatch(w http.ResponseWriter, r *http.Request, t target) {
	var req BatchIntegrateRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, statusForBodyError(err, http.StatusBadRequest), "integrate/batch: bad request body: %v", err)
		return
	}
	if len(req.Sources) == 0 {
		writeError(w, http.StatusBadRequest, "integrate/batch: sources must contain at least one XML document")
		return
	}
	readers := make([]io.Reader, len(req.Sources))
	for i, src := range req.Sources {
		readers[i] = strings.NewReader(src)
	}
	statsList, result, err := t.core.IntegrateBatchXML(readers)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "integrate/batch: %v", err)
		return
	}
	resp := BatchIntegrateResponse{
		Integrated:   len(statsList),
		Sources:      make([]SourceStats, 0, len(statsList)),
		LogicalNodes: result.NodeCount(),
		Worlds:       result.WorldCount().String(),
		ChoicePoints: result.ChoicePoints(),
	}
	for _, st := range statsList {
		resp.Sources = append(resp.Sources, sourceStats(st))
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusForBodyError maps request-body read failures (e.g. the body
// limit middleware firing) to 413, everything else to fallback.
func statusForBodyError(err error, fallback int) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return fallback
}

// QueryAnswer is one ranked probabilistic answer.
type QueryAnswer struct {
	Value string  `json:"value"`
	P     float64 `json:"p"`
}

// QueryResponse is a ranked, probability-annotated answer list.
type QueryResponse struct {
	Query string `json:"query"`
	// Method is the evaluation strategy used: exact, enumerate or sample
	// (the planner's choice when method=auto, the default).
	Method  string        `json:"method"`
	Answers []QueryAnswer `json:"answers"`
	// Plan explains the planner's choice; present when explain=1.
	Plan *query.Plan `json:"plan,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, t target) {
	src := r.URL.Query().Get("q")
	if src == "" {
		writeError(w, http.StatusBadRequest, "query: missing q parameter")
		return
	}
	top, err := intParam(r, "top", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	opts := t.core.DefaultQueryOptions()
	if v := r.URL.Query().Get("method"); v != "" {
		// auto (the default) lets the planner choose; an explicit method
		// is used verbatim. Unknown names fail option validation below.
		opts.Method = query.Method(v)
	}
	if v := r.URL.Query().Get("samples"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "query: bad samples parameter %q", v)
			return
		}
		// Negative counts reach option validation, which rejects them
		// with an explicit error (mapped to 400 below).
		opts.Samples = n
	}
	if v := r.URL.Query().Get("seed"); v != "" {
		// An explicit seed — 0 included — pins the Monte-Carlo sampler
		// for reproducible sampled answers.
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "query: bad seed parameter %q", v)
			return
		}
		opts.Seed = query.SeedPtr(n)
	}
	if v := r.URL.Query().Get("workers"); v != "" {
		// 0 means one worker per CPU; 1 forces sequential evaluation.
		// Answers are bit-identical either way — workers only buy speed.
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "query: bad workers parameter %q", v)
			return
		}
		// Negative counts reach option validation (mapped to 400 below).
		opts.Workers = n
	}
	if v := r.URL.Query().Get("budget_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "query: bad budget_ms parameter %q", v)
			return
		}
		opts.TimeBudget = time.Duration(n) * time.Millisecond
	}
	explain := false
	switch v := r.URL.Query().Get("explain"); v {
	case "", "0", "false":
	case "1", "true":
		explain = true
	default:
		writeError(w, http.StatusBadRequest, "query: bad explain parameter %q (0 | 1)", v)
		return
	}
	// The request context rides into evaluation: a client that hangs up
	// aborts its own query instead of leaving it computing to completion
	// (counted under /stats query.canceled).
	res, err := t.core.QueryEvalCtx(r.Context(), src, opts)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The client is gone; 499 (nginx's "client closed request")
			// keeps access logs honest even though nobody reads the body.
			writeError(w, 499, "query: canceled: %v", err)
		case errors.Is(err, query.ErrBudgetExhausted):
			// Surface what the planner attempted: explain=1 gets the plan
			// with budget_exhausted set alongside the error.
			resp := struct {
				Error string      `json:"error"`
				Plan  *query.Plan `json:"plan,omitempty"`
			}{Error: err.Error()}
			if explain {
				resp.Plan = res.Plan
			}
			writeJSON(w, http.StatusRequestTimeout, resp)
		default:
			writeError(w, http.StatusBadRequest, "query: %v", err)
		}
		return
	}
	answers := res.Answers
	if top > 0 {
		answers = res.Top(top)
	}
	resp := QueryResponse{Query: src, Method: string(res.Method), Answers: make([]QueryAnswer, 0, len(answers))}
	for _, a := range answers {
		resp.Answers = append(resp.Answers, QueryAnswer{Value: a.Value, P: a.P})
	}
	if explain {
		resp.Plan = res.Plan
	}
	writeJSON(w, http.StatusOK, resp)
}

// FeedbackRequest is a user judgment on one query answer. Correct is a
// pointer so an omitted field is a 400 rather than a silent (and
// irreversible) "incorrect" judgment.
type FeedbackRequest struct {
	Query   string `json:"query"`
	Value   string `json:"value"`
	Correct *bool  `json:"correct"`
}

// FeedbackResponse reports the conditioning a judgment caused.
type FeedbackResponse struct {
	Query        string  `json:"query"`
	Value        string  `json:"value"`
	Judgment     string  `json:"judgment"`
	PriorP       float64 `json:"prior_p"`
	WorldsBefore string  `json:"worlds_before"`
	WorldsAfter  string  `json:"worlds_after"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request, t target) {
	var req FeedbackRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, statusForBodyError(err, http.StatusBadRequest), "feedback: bad request body: %v", err)
		return
	}
	if req.Query == "" || req.Value == "" || req.Correct == nil {
		writeError(w, http.StatusBadRequest, "feedback: query, value and correct are required")
		return
	}
	ev, err := t.core.Feedback(req.Query, req.Value, *req.Correct)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "feedback: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, FeedbackResponse{
		Query:        ev.Query,
		Value:        ev.Value,
		Judgment:     ev.Judgment.String(),
		PriorP:       ev.PriorP,
		WorldsBefore: ev.WorldsBefore.String(),
		WorldsAfter:  ev.WorldsAfter.String(),
	})
}

// CacheCounters is the uniform hit/miss shape of the cache sections in
// StatsResponse.
type CacheCounters struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Size     int   `json:"size"`
	Capacity int   `json:"capacity"`
}

// IndexStats reports query-index construction work.
type IndexStats struct {
	Builds          int64   `json:"builds"`
	LastBuildMicros float64 `json:"last_build_us"`
	TotalBuildMs    float64 `json:"total_build_ms"`
	Tags            int     `json:"tags"`
	Elements        int     `json:"elements"`
}

// DurabilityStats is the write-ahead-log and compaction section of the
// stats response (catalog mode only).
type DurabilityStats struct {
	// LastSeq is the newest committed op; SnapshotSeq the op the on-disk
	// snapshot reflects; TailOps how many ops recovery would replay.
	LastSeq     uint64 `json:"last_seq"`
	SnapshotSeq uint64 `json:"snapshot_seq"`
	TailOps     uint64 `json:"tail_ops"`
	// Epoch is the cluster epoch commits are stamped with.
	Epoch uint64 `json:"epoch"`
	// Segments / SizeBytes describe the live log on disk.
	Segments  int   `json:"segments"`
	SizeBytes int64 `json:"size_bytes"`
	// Appends / AppendedBytes / Rotations count log writes by this
	// process; Compactions and RecoveredOps count snapshot folds and
	// ops replayed at startup.
	Appends       int64 `json:"appends"`
	AppendedBytes int64 `json:"appended_bytes"`
	Rotations     int64 `json:"rotations"`
	Compactions   int64 `json:"compactions"`
	RecoveredOps  int64 `json:"recovered_ops"`
	// SegmentLimitBytes and CompactEvery surface the tuning knobs the
	// database actually runs with (-wal-segment-bytes, -compact-every).
	SegmentLimitBytes int64 `json:"segment_limit_bytes"`
	CompactEvery      int   `json:"compact_every"`
	// StoreFormat is the on-disk snapshot format version; Encoding the
	// payload format of new log appends (-wal-encoding).
	StoreFormat int    `json:"store_format"`
	Encoding    string `json:"encoding"`
	// StrTabEntries is the size of the live segment's interned-string
	// table (0 when strtab appends are disabled or the segment is fresh).
	StrTabEntries int `json:"strtab_entries"`
}

func durabilityStats(db *catalog.DB) *DurabilityStats {
	st := db.Stats()
	return &DurabilityStats{
		LastSeq:           st.WAL.LastSeq,
		SnapshotSeq:       st.SnapshotSeq,
		TailOps:           st.TailOps,
		Epoch:             st.Epoch,
		Segments:          st.WAL.Segments,
		SizeBytes:         st.WAL.SizeBytes,
		Appends:           st.WAL.Appends,
		AppendedBytes:     st.WAL.AppendedBytes,
		Rotations:         st.WAL.Rotations,
		Compactions:       st.Compactions,
		RecoveredOps:      st.RecoveredOps,
		SegmentLimitBytes: st.WAL.SegmentLimitBytes,
		CompactEvery:      st.CompactEvery,
		StoreFormat:       st.StoreFormat,
		Encoding:          st.WAL.Encoding,
		StrTabEntries:     st.WAL.StrTabEntries,
	}
}

// StoreRuntimeStats is the process-wide zero-copy storage section of
// /stats: how snapshot documents were opened (mmap vs read) and how
// arena decodes ran (zero-copy string views, shared dictionaries).
type StoreRuntimeStats struct {
	MMapLoads     uint64 `json:"mmap_loads"`
	FallbackLoads uint64 `json:"fallback_loads"`
	MappedFiles   uint64 `json:"mapped_files"`
	MappedBytes   uint64 `json:"mapped_bytes"`
	ArenaDecodes  uint64 `json:"arena_decodes"`
	ArenaZeroCopy uint64 `json:"arena_zero_copy"`
	ArenaShared   uint64 `json:"arena_shared"`
}

func storeRuntimeStats() *StoreRuntimeStats {
	ss := store.StoreStats()
	decodes, zeroCopy, shared := pxml.ArenaDecodeStats()
	return &StoreRuntimeStats{
		MMapLoads:     ss.MMapLoads,
		FallbackLoads: ss.FallbackLoads,
		MappedFiles:   ss.MappedFiles,
		MappedBytes:   ss.MappedBytes,
		ArenaDecodes:  decodes,
		ArenaZeroCopy: zeroCopy,
		ArenaShared:   shared,
	}
}

// WireStats is the binary replication wire section of /stats:
// pages/snapshots served and the payload-vs-wire byte gap compression
// bought.
type WireStats struct {
	Pages               int64 `json:"pages"`
	PagesCompressed     int64 `json:"pages_compressed"`
	Snapshots           int64 `json:"snapshots"`
	SnapshotsCompressed int64 `json:"snapshots_compressed"`
	PayloadBytes        int64 `json:"payload_bytes"`
	WireBytes           int64 `json:"wire_bytes"`
}

func (s *Server) wireStats() *WireStats {
	return &WireStats{
		Pages:               s.wire.pages.Load(),
		PagesCompressed:     s.wire.pagesCompressed.Load(),
		Snapshots:           s.wire.snapshots.Load(),
		SnapshotsCompressed: s.wire.snapshotsCompressed.Load(),
		PayloadBytes:        s.wire.payloadBytes.Load(),
		WireBytes:           s.wire.wireBytes.Load(),
	}
}

// StatsResponse summarizes the document, the compiled-query and result
// caches, the query index, the session history counts, and — in catalog
// mode — the database's durability counters.
type StatsResponse struct {
	// Database names the database the stats describe (catalog mode).
	Database      string        `json:"database,omitempty"`
	LogicalNodes  int64         `json:"logical_nodes"`
	PhysicalNodes int64         `json:"physical_nodes"`
	Worlds        string        `json:"worlds"`
	ChoicePoints  int           `json:"choice_points"`
	MaxDepth      int           `json:"max_depth"`
	Certain       bool          `json:"certain"`
	Integrations  int           `json:"integrations"`
	FeedbackCount int           `json:"feedback_events"`
	QueryCache    CacheCounters `json:"query_cache"`
	ResultCache   CacheCounters `json:"result_cache"`
	// Query reports query-path concurrency: in-flight evaluations,
	// early aborts (client disconnects, budget exhaustion), singleflight
	// collapses, and worker-pool scheduling.
	Query QueryRuntime `json:"query"`
	Index IndexStats   `json:"index"`
	// Memo is the cross-call integration memo (oracle verdicts and
	// subtree merges shared across integrations).
	Memo integrate.MemoStats `json:"integrate_memo"`
	// Ingest reports the async ingest queue.
	Ingest core.IngestStats `json:"ingest"`
	// WAL is present in catalog mode only.
	WAL *DurabilityStats `json:"wal,omitempty"`
	// Store reports process-wide zero-copy storage counters (mmap vs
	// read loads, arena decode modes); Wire the binary replication
	// bytes served (catalog mode).
	Store *StoreRuntimeStats `json:"store,omitempty"`
	Wire  *WireStats         `json:"wire,omitempty"`
}

// QueryRuntime is the /stats "query" section: concurrency accounting for
// the parallel query path.
type QueryRuntime struct {
	// Active is the number of evaluations in flight right now; Started
	// counts every evaluation ever begun.
	Active  int64 `json:"active"`
	Started int64 `json:"started"`
	// Canceled counts evaluations aborted by client disconnect (the
	// 499-style early aborts); BudgetAborts those stopped by a per-query
	// wall-time/node-visit budget.
	Canceled     int64 `json:"canceled"`
	BudgetAborts int64 `json:"budget_aborts"`
	// SingleflightCollapses counts queries that waited on an identical
	// in-flight evaluation instead of running their own.
	SingleflightCollapses int64 `json:"singleflight_collapses"`
	// PooledTasks/InlineTasks report worker-pool scheduling: fan-out
	// units run on pool goroutines vs. inline because the pool was
	// saturated.
	PooledTasks int64 `json:"pooled_tasks"`
	InlineTasks int64 `json:"inline_tasks"`
	// CacheShards is the result cache's lock-striping width.
	CacheShards int `json:"cache_shards"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, t target) {
	tr := t.core.Tree()
	st := tr.CollectStats()
	resp := StatsResponse{
		LogicalNodes:  st.LogicalNodes,
		PhysicalNodes: st.PhysicalNodes,
		Worlds:        st.Worlds.String(),
		ChoicePoints:  tr.ChoicePoints(),
		MaxDepth:      st.MaxDepth,
		Certain:       tr.IsCertain(),
		Integrations:  t.core.IntegrationCount(),
		FeedbackCount: t.core.FeedbackCount(),
	}
	cs := t.core.QueryCacheStats()
	resp.QueryCache = CacheCounters{Hits: cs.Hits, Misses: cs.Misses, Size: cs.Size, Capacity: cs.Capacity}
	rs := t.core.ResultCacheStats()
	resp.ResultCache = CacheCounters{Hits: rs.Hits, Misses: rs.Misses, Size: rs.Size, Capacity: rs.Capacity}
	qs := t.core.QueryStats()
	resp.Query = QueryRuntime{
		Active:                qs.Active,
		Started:               qs.Started,
		Canceled:              qs.Canceled,
		BudgetAborts:          qs.BudgetAborts,
		SingleflightCollapses: rs.Collapses,
		PooledTasks:           qs.PooledTasks,
		InlineTasks:           qs.InlineTasks,
		CacheShards:           rs.Shards,
	}
	resp.Memo = t.core.MemoStats()
	resp.Ingest = t.core.IngestStats()
	is := t.core.IndexStats()
	resp.Index = IndexStats{
		Builds:          is.Builds,
		LastBuildMicros: float64(is.LastBuild.Nanoseconds()) / 1e3,
		TotalBuildMs:    float64(is.TotalBuild.Nanoseconds()) / 1e6,
		Tags:            is.Tags,
		Elements:        is.Elements,
	}
	resp.Store = storeRuntimeStats()
	if t.cdb != nil {
		resp.Database = t.name
		resp.WAL = durabilityStats(t.cdb)
		resp.Wire = s.wireStats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// WorldsResponse lists enumerated possible worlds.
type WorldsResponse struct {
	Total string  `json:"total_worlds"`
	Shown int     `json:"shown"`
	List  []World `json:"worlds"`
}

// World is one possible world: its probability and its root elements
// rendered as indented sketches.
type World struct {
	P        float64  `json:"p"`
	Elements []string `json:"elements"`
}

func (s *Server) handleWorlds(w http.ResponseWriter, r *http.Request, t target) {
	max, err := intParam(r, "max", 20)
	if err != nil {
		writeError(w, http.StatusBadRequest, "worlds: %v", err)
		return
	}
	if max <= 0 {
		writeError(w, http.StatusBadRequest, "worlds: max must be positive")
		return
	}
	if max > s.opts.MaxWorlds {
		max = s.opts.MaxWorlds
	}
	tr := t.core.Tree()
	resp := WorldsResponse{Total: tr.WorldCount().String(), List: []World{}}
	worlds.Enumerate(tr, func(wd worlds.World) bool {
		elems := []string{}
		for _, e := range wd.Elements {
			elems = append(elems, pxml.Sketch(e))
		}
		resp.List = append(resp.List, World{P: wd.P, Elements: elems})
		return len(resp.List) < max
	})
	resp.Shown = len(resp.List)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request, t target) {
	w.Header().Set("Content-Type", "application/xml")
	if err := t.core.ExportXML(w, xmlcodec.EncodeOptions{Indent: "  "}); err != nil {
		// Headers may already be out; log-and-abandon is all that's left.
		s.logf("export: %v", err)
	}
}

// SaveRequest names the snapshot to write under the server's snapshot
// directory.
type SaveRequest struct {
	Name    string `json:"name,omitempty"`
	Comment string `json:"comment,omitempty"`
}

// LoadRequest names the snapshot to restore.
type LoadRequest struct {
	Name string `json:"name,omitempty"`
}

// SnapshotResponse reports a save or load, echoing the store manifest.
// It names the snapshot only; server-side paths stay server-side.
type SnapshotResponse struct {
	Name         string `json:"name"`
	SavedAt      string `json:"saved_at"`
	LogicalNodes int64  `json:"logical_nodes"`
	Worlds       string `json:"worlds"`
	HasSchema    bool   `json:"has_schema"`
	Comment      string `json:"comment,omitempty"`
}

// errNoSnapshots is returned when /save or /load is hit on a server
// started without a snapshot directory.
var errNoSnapshots = errors.New("snapshot persistence is not enabled (start the server with a snapshot directory)")

// snapshotDir resolves a client-supplied snapshot name inside the
// configured snapshot directory, rejecting names that would escape it.
func (s *Server) snapshotDir(name string) (resolved, clean string, err error) {
	if s.opts.SnapshotDir == "" {
		return "", "", errNoSnapshots
	}
	if name == "" {
		name = "default"
	}
	if name != filepath.Base(name) || name == ".." || name == "." || strings.ContainsAny(name, `/\`) {
		return "", "", fmt.Errorf("invalid snapshot name %q", name)
	}
	return filepath.Join(s.opts.SnapshotDir, name), name, nil
}

// snapshotNameStatus maps snapshotDir errors: disabled persistence is a
// 503, a bad name a 400.
func snapshotNameStatus(err error) int {
	if errors.Is(err, errNoSnapshots) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func manifestResponse(name string, m store.Manifest) SnapshotResponse {
	return SnapshotResponse{
		Name:         name,
		SavedAt:      m.SavedAt.Format(time.RFC3339),
		LogicalNodes: m.LogicalNodes,
		Worlds:       m.Worlds,
		HasSchema:    m.HasSchema,
		Comment:      m.Comment,
	}
}

func (s *Server) handleSave(w http.ResponseWriter, r *http.Request, t target) {
	var req SaveRequest
	if err := readJSON(r, &req); err != nil && err != io.EOF {
		writeError(w, statusForBodyError(err, http.StatusBadRequest), "save: bad request body: %v", err)
		return
	}
	// Catalog databases save under their own snapshots/ directory; the
	// name is validated by the catalog. Legacy mode resolves against the
	// configured snapshot directory.
	if t.cdb != nil {
		m, err := t.cdb.SaveNamed(req.Name, req.Comment)
		if err != nil {
			writeError(w, catalogErrStatus(err), "save: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, manifestResponse(orDefault(req.Name), m))
		return
	}
	dir, name, err := s.snapshotDir(req.Name)
	if err != nil {
		writeError(w, snapshotNameStatus(err), "save: %v", err)
		return
	}
	m, err := t.core.SaveSnapshot(dir, req.Comment)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "save: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, manifestResponse(name, m))
}

// orDefault mirrors the snapshot-name defaulting the resolvers apply.
func orDefault(name string) string {
	if name == "" {
		return catalog.DefaultName
	}
	return name
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request, t target) {
	var req LoadRequest
	if err := readJSON(r, &req); err != nil && err != io.EOF {
		writeError(w, statusForBodyError(err, http.StatusBadRequest), "load: bad request body: %v", err)
		return
	}
	var (
		snap *store.Snapshot
		name string
		err  error
	)
	if t.cdb != nil {
		name = orDefault(req.Name)
		snap, err = t.cdb.LoadNamed(req.Name)
		if errors.Is(err, catalog.ErrBadName) {
			writeError(w, http.StatusBadRequest, "load: %v", err)
			return
		}
	} else {
		var dir string
		dir, name, err = s.snapshotDir(req.Name)
		if err != nil {
			writeError(w, snapshotNameStatus(err), "load: %v", err)
			return
		}
		snap, err = t.core.LoadSnapshot(dir)
	}
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, store.ErrCorrupt):
			status = http.StatusUnprocessableEntity
		case errors.Is(err, os.ErrNotExist):
			status = http.StatusNotFound
		}
		writeError(w, status, "load: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, manifestResponse(name, snap.Manifest))
}

// --- catalog management ---

// DBInfo is one database in the /dbs listing.
type DBInfo struct {
	Name         string           `json:"name"`
	LogicalNodes int64            `json:"logical_nodes"`
	Worlds       string           `json:"worlds"`
	Integrations int              `json:"integrations"`
	Feedback     int              `json:"feedback_events"`
	WAL          *DurabilityStats `json:"wal,omitempty"`
}

// DBListResponse is the /dbs body.
type DBListResponse struct {
	Databases []DBInfo `json:"databases"`
}

// CreateDBRequest names the database POST /dbs creates.
type CreateDBRequest struct {
	Name string `json:"name"`
}

// CreateDBResponse reports a created database.
type CreateDBResponse struct {
	Name string `json:"name"`
}

// DropDBResponse reports a dropped database.
type DropDBResponse struct {
	Dropped string `json:"dropped"`
}

// requireCatalog writes the 503 for catalog routes in legacy mode.
func (s *Server) requireCatalog(w http.ResponseWriter) bool {
	if s.cat == nil {
		writeError(w, http.StatusServiceUnavailable, "multi-database catalog is not enabled (start the server with a data directory)")
		return false
	}
	return true
}

func (s *Server) handleListDBs(w http.ResponseWriter, r *http.Request) {
	if !s.requireCatalog(w) {
		return
	}
	resp := DBListResponse{Databases: []DBInfo{}}
	for _, db := range s.cat.List() {
		c := db.Core()
		tr := c.Tree()
		resp.Databases = append(resp.Databases, DBInfo{
			Name:         db.Name(),
			LogicalNodes: tr.NodeCount(),
			Worlds:       tr.WorldCount().String(),
			Integrations: c.IntegrationCount(),
			Feedback:     c.FeedbackCount(),
			WAL:          durabilityStats(db),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCreateDB(w http.ResponseWriter, r *http.Request) {
	if !s.requireCatalog(w) {
		return
	}
	if s.isReadOnly() {
		s.writeReadOnly(w, "create db")
		return
	}
	// PUT /dbs/{name} carries the name in the path; POST /dbs in the body.
	name := r.PathValue("name")
	if name == "" {
		var req CreateDBRequest
		if err := readJSON(r, &req); err != nil {
			writeError(w, statusForBodyError(err, http.StatusBadRequest), "create db: bad request body: %v", err)
			return
		}
		name = req.Name
	}
	db, err := s.cat.Create(name)
	if err != nil {
		writeError(w, catalogErrStatus(err), "create db: %v", err)
		return
	}
	// This server accepts mutations (the read-only gate above), so it owns
	// the new database's ingest queue.
	db.Core().StartIngest()
	writeJSON(w, http.StatusCreated, CreateDBResponse{Name: name})
}

func (s *Server) handleDropDB(w http.ResponseWriter, r *http.Request) {
	if !s.requireCatalog(w) {
		return
	}
	if s.isReadOnly() {
		s.writeReadOnly(w, "drop db")
		return
	}
	name := r.PathValue("name")
	if err := s.cat.Drop(name); err != nil {
		writeError(w, catalogErrStatus(err), "drop db: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, DropDBResponse{Dropped: name})
}

// --- helpers ---

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s parameter %q", name, v)
	}
	return n, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf(format, args...)
	}
}

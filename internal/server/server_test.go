package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/server"
	"repro/internal/xmlcodec"
)

var personDTD = dtd.MustParse(`
	<!ELEMENT addressbook (person*)>
	<!ELEMENT person (nm, tel?)>
	<!ELEMENT nm (#PCDATA)>
	<!ELEMENT tel (#PCDATA)>
`)

const bookA = `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`
const bookB = `<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`

func boolPtr(b bool) *bool { return &b }

// newTestServer starts an httptest server over a fresh bookA database
// with snapshots enabled in a temp dir.
func newTestServer(t *testing.T) (*httptest.Server, *core.Database) {
	t.Helper()
	db, err := core.OpenXML(strings.NewReader(bookA), core.Config{Schema: personDTD})
	if err != nil {
		t.Fatalf("OpenXML: %v", err)
	}
	srv := server.New(db, server.Options{SnapshotDir: t.TempDir()})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, db
}

// doJSON performs a request and decodes the JSON response into out.
func doJSON(t *testing.T, method, rawURL, contentType string, body io.Reader, wantStatus int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, rawURL, body)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, rawURL, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d; body %s", method, rawURL, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("bad JSON %q: %v", data, err)
		}
	}
}

func integrateB(t *testing.T, ts *httptest.Server) server.IntegrateResponse {
	t.Helper()
	var resp server.IntegrateResponse
	doJSON(t, "POST", ts.URL+"/integrate", "application/xml", strings.NewReader(bookB), http.StatusOK, &resp)
	return resp
}

func TestIntegrateMerge(t *testing.T) {
	ts, db := newTestServer(t)
	resp := integrateB(t, ts)
	if resp.UndecidedPairs == 0 {
		t.Fatalf("integration should report undecided pairs: %+v", resp)
	}
	if resp.Worlds != "3" {
		t.Fatalf("worlds = %s, want 3 (Figure 2)", resp.Worlds)
	}
	if db.WorldCount().Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("database world count = %s", db.WorldCount())
	}
}

func TestIntegrateReplace(t *testing.T) {
	ts, db := newTestServer(t)
	integrateB(t, ts)
	var resp server.IntegrateResponse
	doJSON(t, "POST", ts.URL+"/integrate?mode=replace", "application/xml",
		strings.NewReader(bookA), http.StatusOK, &resp)
	if resp.Worlds != "1" {
		t.Fatalf("worlds after replace = %s, want 1", resp.Worlds)
	}
	if !db.IsCertain() {
		t.Fatalf("database should be certain after replace")
	}
}

func TestIntegrateErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/integrate", "application/xml",
		strings.NewReader(`broken<`), http.StatusUnprocessableEntity, nil)
	doJSON(t, "POST", ts.URL+"/integrate", "application/xml",
		strings.NewReader(`<catalog/>`), http.StatusUnprocessableEntity, nil)
	doJSON(t, "POST", ts.URL+"/integrate?mode=sideways", "application/xml",
		strings.NewReader(bookB), http.StatusBadRequest, nil)
}

// batchBody builds the JSON body of a /integrate/batch request.
func batchBody(t *testing.T, sources ...string) io.Reader {
	t.Helper()
	body, err := json.Marshal(server.BatchIntegrateRequest{Sources: sources})
	if err != nil {
		t.Fatalf("marshal batch: %v", err)
	}
	return strings.NewReader(string(body))
}

func TestIntegrateBatch(t *testing.T) {
	ts, db := newTestServer(t)
	const bookC = `<addressbook><person><nm>Mary</nm><tel>3333</tel></person></addressbook>`
	var resp server.BatchIntegrateResponse
	doJSON(t, "POST", ts.URL+"/integrate/batch", "application/json",
		batchBody(t, bookB, bookC), http.StatusOK, &resp)
	if resp.Integrated != 2 || len(resp.Sources) != 2 {
		t.Fatalf("batch response = %+v, want 2 sources", resp)
	}
	if resp.Sources[0].UndecidedPairs == 0 {
		t.Fatalf("first source should report undecided pairs: %+v", resp.Sources[0])
	}
	if resp.Worlds != db.WorldCount().String() {
		t.Fatalf("response worlds %s != database worlds %s", resp.Worlds, db.WorldCount())
	}
	if got := db.IntegrationCount(); got != 2 {
		t.Fatalf("integration count = %d, want 2", got)
	}
}

func TestIntegrateBatchErrors(t *testing.T) {
	ts, db := newTestServer(t)
	before := db.Tree()
	// Empty source list.
	doJSON(t, "POST", ts.URL+"/integrate/batch", "application/json",
		batchBody(t), http.StatusBadRequest, nil)
	// Unknown fields are rejected.
	doJSON(t, "POST", ts.URL+"/integrate/batch", "application/json",
		strings.NewReader(`{"source": ["x"]}`), http.StatusBadRequest, nil)
	// A malformed source fails the whole batch atomically.
	doJSON(t, "POST", ts.URL+"/integrate/batch", "application/json",
		batchBody(t, bookB, `broken<`), http.StatusUnprocessableEntity, nil)
	// A root-tag mismatch mid-batch fails it atomically too.
	doJSON(t, "POST", ts.URL+"/integrate/batch", "application/json",
		batchBody(t, bookB, `<catalog/>`), http.StatusUnprocessableEntity, nil)
	if db.Tree() != before || db.IntegrationCount() != 0 {
		t.Fatalf("failed batches must leave the database untouched")
	}
}

func TestQuery(t *testing.T) {
	ts, _ := newTestServer(t)
	integrateB(t, ts)
	var resp server.QueryResponse
	doJSON(t, "GET", ts.URL+"/query?q="+url.QueryEscape(`//person/tel`), "", nil, http.StatusOK, &resp)
	if len(resp.Answers) != 2 {
		t.Fatalf("answers = %+v, want 2", resp.Answers)
	}
	if resp.Method == "" {
		t.Fatalf("missing evaluation method")
	}
	doJSON(t, "GET", ts.URL+"/query?top=1&q="+url.QueryEscape(`//person/tel`), "", nil, http.StatusOK, &resp)
	if len(resp.Answers) != 1 {
		t.Fatalf("top=1 answers = %+v", resp.Answers)
	}
}

func TestQueryErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	doJSON(t, "GET", ts.URL+"/query", "", nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/query?q="+url.QueryEscape(`not a query`), "", nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/query?top=x&q="+url.QueryEscape(`//a`), "", nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/query?seed=x&q="+url.QueryEscape(`//a`), "", nil, http.StatusBadRequest, nil)
}

// TestQuerySeedParameter checks the per-request sampler seed is accepted —
// including the previously unrequestable seed 0 — and does not disturb
// exact evaluation.
func TestQuerySeedParameter(t *testing.T) {
	ts, _ := newTestServer(t)
	integrateB(t, ts)
	for _, seed := range []string{"0", "1", "-3"} {
		var resp server.QueryResponse
		doJSON(t, "GET", ts.URL+"/query?seed="+seed+"&q="+url.QueryEscape(`//person/tel`), "", nil, http.StatusOK, &resp)
		if len(resp.Answers) != 2 {
			t.Fatalf("seed=%s: answers = %+v, want 2", seed, resp.Answers)
		}
	}
}

func TestFeedback(t *testing.T) {
	ts, _ := newTestServer(t)
	integrateB(t, ts)
	body, _ := json.Marshal(server.FeedbackRequest{Query: `//person/tel`, Value: "2222", Correct: boolPtr(false)})
	var resp server.FeedbackResponse
	doJSON(t, "POST", ts.URL+"/feedback", "application/json", strings.NewReader(string(body)), http.StatusOK, &resp)
	if resp.WorldsAfter != "1" {
		t.Fatalf("worlds after feedback = %s, want 1", resp.WorldsAfter)
	}
	if resp.Judgment != "incorrect" {
		t.Fatalf("judgment = %s", resp.Judgment)
	}
	// The rejected answer is gone.
	var qr server.QueryResponse
	doJSON(t, "GET", ts.URL+"/query?q="+url.QueryEscape(`//person/tel`), "", nil, http.StatusOK, &qr)
	if len(qr.Answers) != 1 || qr.Answers[0].Value != "1111" {
		t.Fatalf("answers after feedback = %+v", qr.Answers)
	}
}

func TestFeedbackErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/feedback", "application/json",
		strings.NewReader(`{`), http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/feedback", "application/json",
		strings.NewReader(`{"query":"//a"}`), http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/feedback", "application/json",
		strings.NewReader(`{"query":"//a","value":"x","typo":true}`), http.StatusBadRequest, nil)
	// Omitting "correct" must not silently count as a judgment.
	doJSON(t, "POST", ts.URL+"/feedback", "application/json",
		strings.NewReader(`{"query":"//a","value":"x"}`), http.StatusBadRequest, nil)
}

func TestStats(t *testing.T) {
	ts, _ := newTestServer(t)
	integrateB(t, ts)
	q := ts.URL + "/query?q=" + url.QueryEscape(`//person/nm`)
	doJSON(t, "GET", q, "", nil, http.StatusOK, nil)
	doJSON(t, "GET", q, "", nil, http.StatusOK, nil)
	var resp server.StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", "", nil, http.StatusOK, &resp)
	if resp.Worlds != "3" || resp.Certain {
		t.Fatalf("stats = %+v", resp)
	}
	if resp.Integrations != 1 {
		t.Fatalf("integrations = %d, want 1", resp.Integrations)
	}
	if resp.QueryCache.Hits < 1 {
		t.Fatalf("repeated query did not hit the compiled-query cache: %+v", resp.QueryCache)
	}
}

func TestWorlds(t *testing.T) {
	ts, _ := newTestServer(t)
	integrateB(t, ts)
	var resp server.WorldsResponse
	doJSON(t, "GET", ts.URL+"/worlds?max=2", "", nil, http.StatusOK, &resp)
	if resp.Total != "3" || resp.Shown != 2 || len(resp.List) != 2 {
		t.Fatalf("worlds = %+v", resp)
	}
	for _, w := range resp.List {
		if w.P <= 0 || len(w.Elements) == 0 {
			t.Fatalf("bad world %+v", w)
		}
	}
	doJSON(t, "GET", ts.URL+"/worlds?max=x", "", nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/worlds?max=0", "", nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/worlds?max=-3", "", nil, http.StatusBadRequest, nil)
}

func TestExport(t *testing.T) {
	ts, db := newTestServer(t)
	integrateB(t, ts)
	resp, err := http.Get(ts.URL + "/export")
	if err != nil {
		t.Fatalf("GET /export: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/xml" {
		t.Fatalf("content type = %s", ct)
	}
	back, err := xmlcodec.Decode(resp.Body)
	if err != nil {
		t.Fatalf("exported document does not decode: %v", err)
	}
	if back.WorldCount().Cmp(db.WorldCount()) != 0 {
		t.Fatalf("world count changed over export: %s vs %s", back.WorldCount(), db.WorldCount())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ts, db := newTestServer(t)
	integrateB(t, ts)
	var saved server.SnapshotResponse
	doJSON(t, "POST", ts.URL+"/save", "application/json",
		strings.NewReader(`{"name":"exp1","comment":"after B"}`), http.StatusOK, &saved)
	if saved.Worlds != "3" || saved.Name != "exp1" || !saved.HasSchema {
		t.Fatalf("save response = %+v", saved)
	}

	// Mutate past the snapshot, then restore it.
	body, _ := json.Marshal(server.FeedbackRequest{Query: `//person/tel`, Value: "2222", Correct: boolPtr(false)})
	doJSON(t, "POST", ts.URL+"/feedback", "application/json", strings.NewReader(string(body)), http.StatusOK, nil)
	if db.WorldCount().Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("feedback did not condition the database")
	}
	var loaded server.SnapshotResponse
	doJSON(t, "POST", ts.URL+"/load", "application/json",
		strings.NewReader(`{"name":"exp1"}`), http.StatusOK, &loaded)
	if loaded.Worlds != "3" {
		t.Fatalf("load response = %+v", loaded)
	}
	if db.WorldCount().Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("database not restored: %s worlds", db.WorldCount())
	}
}

func TestSaveLoadErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/save", "application/json",
		strings.NewReader(`{"name":"../evil"}`), http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/load", "application/json",
		strings.NewReader(`{"name":"never-saved"}`), http.StatusNotFound, nil)

	// Persistence disabled: both endpoints 503.
	db, err := core.OpenXML(strings.NewReader(bookA), core.Config{})
	if err != nil {
		t.Fatalf("OpenXML: %v", err)
	}
	bare := httptest.NewServer(server.New(db, server.Options{}).Handler())
	defer bare.Close()
	doJSON(t, "POST", bare.URL+"/save", "application/json", strings.NewReader(`{}`), http.StatusServiceUnavailable, nil)
	doJSON(t, "POST", bare.URL+"/load", "application/json", strings.NewReader(`{}`), http.StatusServiceUnavailable, nil)
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	var resp server.HealthResponse
	doJSON(t, "GET", ts.URL+"/healthz", "", nil, http.StatusOK, &resp)
	if resp.Status != "ok" {
		t.Fatalf("healthz = %+v", resp)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/integrate")
	if err != nil {
		t.Fatalf("GET /integrate: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /integrate status = %d, want 405", resp.StatusCode)
	}
}

func TestBodyLimit(t *testing.T) {
	db, err := core.OpenXML(strings.NewReader(bookA), core.Config{})
	if err != nil {
		t.Fatalf("OpenXML: %v", err)
	}
	ts := httptest.NewServer(server.New(db, server.Options{MaxBodyBytes: 64}).Handler())
	defer ts.Close()
	big := `<addressbook>` + strings.Repeat(`<person><nm>X</nm></person>`, 100) + `</addressbook>`
	doJSON(t, "POST", ts.URL+"/integrate", "application/xml",
		strings.NewReader(big), http.StatusRequestEntityTooLarge, nil)
}

// TestConcurrentQueriesDuringIntegration is the acceptance scenario: the
// server keeps answering /query while /integrate and /feedback requests
// are in flight. Run under -race it also proves the locking discipline.
func TestConcurrentQueriesDuringIntegration(t *testing.T) {
	ts, _ := newTestServer(t)
	const readers = 8
	const queriesPerReader = 30

	var wg sync.WaitGroup
	errs := make(chan error, readers+2)

	// Writer 1: a stream of integrations (alternating sources).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			src := bookB
			if i%2 == 1 {
				src = fmt.Sprintf(`<addressbook><person><nm>P%d</nm><tel>%d</tel></person></addressbook>`, i, 5000+i)
			}
			resp, err := http.Post(ts.URL+"/integrate", "application/xml", strings.NewReader(src))
			if err != nil {
				errs <- fmt.Errorf("integrate: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("integrate status %d", resp.StatusCode)
				return
			}
		}
	}()

	// Writer 2: feedback judgments (some will 422 when the value is
	// already gone — only transport errors are failures).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			body, _ := json.Marshal(server.FeedbackRequest{Query: `//person/tel`, Value: "2222", Correct: boolPtr(false)})
			resp, err := http.Post(ts.URL+"/feedback", "application/json", strings.NewReader(string(body)))
			if err != nil {
				errs <- fmt.Errorf("feedback: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	// Readers: queries and stats must always succeed.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesPerReader; i++ {
				u := ts.URL + "/query?q=" + url.QueryEscape(`//person/nm`)
				if i%5 == 0 {
					u = ts.URL + "/stats"
				}
				resp, err := http.Get(u)
				if err != nil {
					errs <- fmt.Errorf("read: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("read status %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

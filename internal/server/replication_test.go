package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/pxml"
	"repro/internal/replica"
	"repro/internal/xmlcodec"
)

// newPrimaryServer boots a catalog-mode handler over a fresh data dir
// with one database "x" already holding an integration.
func newPrimaryServer(t *testing.T, opts catalog.Options) (*catalog.Catalog, *httptest.Server) {
	t.Helper()
	if opts.RootTag == "" {
		opts.RootTag = "addressbook"
	}
	cat, err := catalog.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewCatalog(cat, Options{}).Handler())
	t.Cleanup(func() { ts.Close(); cat.Close() })
	if _, err := cat.Create("x"); err != nil {
		t.Fatal(err)
	}
	return cat, ts
}

func getJSON(t *testing.T, url string, want int, v any) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != want {
		t.Fatalf("GET %s: status %d, want %d; body %s", url, resp.StatusCode, want, data)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("GET %s: bad JSON %s: %v", url, data, err)
		}
	}
	return data
}

// TestWALEndpoint covers the log-shipping read API: paging, the
// consistent (seq, digest) header, long-poll wakeup, and 410 for
// unservable positions.
func TestWALEndpoint(t *testing.T) {
	cat, ts := newPrimaryServer(t, catalog.Options{})
	db, err := cat.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Core().IntegrateXMLString(abookA); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Core().IntegrateXMLString(abookB); err != nil {
		t.Fatal(err)
	}

	var page replica.WALPage
	getJSON(t, ts.URL+"/dbs/x/wal?since=0", http.StatusOK, &page)
	if page.Database != "x" || page.LastSeq != 2 || len(page.Records) != 2 {
		t.Fatalf("wal page %+v", page)
	}
	if page.Digest != replica.DigestString(db.Core().Tree()) {
		t.Fatalf("wal digest %s does not match the tree", page.Digest)
	}
	if page.Records[0].Seq != 1 || page.Records[0].Op.Kind != core.OpIntegrate {
		t.Fatalf("first record %+v", page.Records[0])
	}

	getJSON(t, ts.URL+"/dbs/x/wal?since=1&limit=1", http.StatusOK, &page)
	if len(page.Records) != 1 || page.Records[0].Seq != 2 {
		t.Fatalf("paged wal %+v", page)
	}

	// Caught-up long-poll returns empty after the wait.
	start := time.Now()
	getJSON(t, ts.URL+"/dbs/x/wal?since=2&wait=80", http.StatusOK, &page)
	if len(page.Records) != 0 {
		t.Fatalf("caught-up poll returned %d records", len(page.Records))
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("long-poll returned immediately; wait was not honored")
	}

	// A commit unblocks a parked long-poll.
	type res struct {
		page replica.WALPage
		dur  time.Duration
	}
	ch := make(chan res, 1)
	go func() {
		start := time.Now()
		var p replica.WALPage
		getJSON(t, ts.URL+"/dbs/x/wal?since=2&wait=10000", http.StatusOK, &p)
		ch <- res{p, time.Since(start)}
	}()
	time.Sleep(30 * time.Millisecond)
	if _, err := db.Core().IntegrateXMLString(abookC); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if len(r.page.Records) != 1 || r.page.Records[0].Seq != 3 {
			t.Fatalf("woken poll %+v", r.page)
		}
		if r.dur > 5*time.Second {
			t.Fatalf("woken poll took %v; the commit did not wake it", r.dur)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("long-poll never returned")
	}

	// Beyond-the-log positions are 410 (the follower must bootstrap).
	getJSON(t, ts.URL+"/dbs/x/wal?since=99", http.StatusGone, nil)
	// Bad parameters are 400.
	getJSON(t, ts.URL+"/dbs/x/wal?since=-1", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/dbs/x/wal?wait=x", http.StatusBadRequest, nil)
}

// TestWALEndpointGoneAfterCompaction: positions compacted out of the log
// are 410, with the snapshot position still servable.
func TestWALEndpointGoneAfterCompaction(t *testing.T) {
	cat, ts := newPrimaryServer(t, catalog.Options{SegmentBytes: 1, CompactEvery: -1})
	db, err := cat.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Core().IntegrateXMLString(abookA); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Core().IntegrateXMLString(abookB); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/dbs/x/wal?since=0", http.StatusGone, nil)
	var page replica.WALPage
	getJSON(t, ts.URL+"/dbs/x/wal?since=2", http.StatusOK, &page)
	if len(page.Records) != 0 {
		t.Fatalf("snapshot-position poll returned %d records", len(page.Records))
	}
}

// TestSnapshotEndpoint: the bootstrap payload round-trips to the
// primary's exact state.
func TestSnapshotEndpoint(t *testing.T) {
	cat, ts := newPrimaryServer(t, catalog.Options{})
	db, err := cat.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Core().IntegrateXMLString(abookA); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Core().IntegrateXMLString(abookB); err != nil {
		t.Fatal(err)
	}
	var payload replica.SnapshotPayload
	getJSON(t, ts.URL+"/dbs/x/snapshot", http.StatusOK, &payload)
	if payload.Database != "x" || payload.Seq != 2 || payload.FormatVersion == 0 {
		t.Fatalf("snapshot payload header %+v", payload)
	}
	tree, err := xmlcodec.DecodeString(payload.Tree)
	if err != nil {
		t.Fatalf("snapshot tree does not decode: %v", err)
	}
	if !pxml.Equal(tree.Root(), db.Core().Tree().Root()) {
		t.Fatal("snapshot tree differs from the live tree")
	}
	if payload.Digest != replica.DigestString(tree) {
		t.Fatalf("snapshot digest %s does not match its tree", payload.Digest)
	}
	if len(payload.Integrations) != 2 {
		t.Fatalf("snapshot carries %d integrations, want 2", len(payload.Integrations))
	}
}

// TestReplicationStatusPrimary: the primary reports role and positions.
func TestReplicationStatusPrimary(t *testing.T) {
	cat, ts := newPrimaryServer(t, catalog.Options{})
	db, err := cat.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Core().IntegrateXMLString(abookA); err != nil {
		t.Fatal(err)
	}
	var ps replica.PrimaryStatus
	getJSON(t, ts.URL+"/replication", http.StatusOK, &ps)
	if ps.Role != "primary" || len(ps.Databases) != 1 {
		t.Fatalf("replication status %+v", ps)
	}
	row := ps.Databases[0]
	if row.Name != "x" || row.LastSeq != 1 || row.Digest == "" {
		t.Fatalf("replication row %+v", row)
	}
}

// TestReplicationStatusStandalone: a bare single-database server still
// answers /replication, with no databases to ship.
func TestReplicationStatusStandalone(t *testing.T) {
	tree, err := xmlcodec.DecodeString("<addressbook/>")
	if err != nil {
		t.Fatal(err)
	}
	db, err := core.Open(tree, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db, Options{}).Handler())
	defer ts.Close()
	var ps replica.PrimaryStatus
	getJSON(t, ts.URL+"/replication", http.StatusOK, &ps)
	if ps.Role != "standalone" || len(ps.Databases) != 0 {
		t.Fatalf("standalone replication status %+v", ps)
	}
	// Log shipping itself needs a catalog.
	getJSON(t, ts.URL+"/wal", http.StatusServiceUnavailable, nil)
	getJSON(t, ts.URL+"/snapshot", http.StatusServiceUnavailable, nil)
}

// TestHealthzVerbose: the bare probe keeps its one-field contract; the
// verbose form reports per-database positions, and on a replica the lag.
func TestHealthzVerbose(t *testing.T) {
	cat, ts := newPrimaryServer(t, catalog.Options{})
	db, err := cat.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Core().IntegrateXMLString(abookA); err != nil {
		t.Fatal(err)
	}

	// Plain probe: exactly the legacy body.
	data := getJSON(t, ts.URL+"/healthz", http.StatusOK, nil)
	var plain map[string]any
	if err := json.Unmarshal(data, &plain); err != nil || len(plain) != 1 || plain["status"] != "ok" {
		t.Fatalf("plain healthz body %s", data)
	}

	var hr HealthResponse
	getJSON(t, ts.URL+"/healthz?verbose=1", http.StatusOK, &hr)
	if hr.Status != "ok" || hr.Role != "primary" || len(hr.Databases) != 1 {
		t.Fatalf("verbose healthz %+v", hr)
	}
	row := hr.Databases[0]
	if row.Name != "x" || row.CommittedSeq != 1 || row.AppliedSeq != 1 || row.TailOps != 1 {
		t.Fatalf("verbose healthz row %+v", row)
	}
	getJSON(t, ts.URL+"/healthz?verbose=2", http.StatusBadRequest, nil)

	// Replica: role, primary address, connection state and lag appear.
	rep, err := replica.Open(t.TempDir(), replica.Options{
		Primary:         ts.URL,
		Catalog:         catalog.Options{RootTag: "addressbook"},
		PollWait:        100 * time.Millisecond,
		MembershipEvery: 20 * time.Millisecond,
		MinBackoff:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	rts := httptest.NewServer(NewReplica(rep, Options{}).Handler())
	defer rts.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var rh HealthResponse
		getJSON(t, rts.URL+"/healthz?verbose=1", http.StatusOK, &rh)
		if rh.Role == "replica" && rh.Primary == ts.URL && rh.Connected != nil && *rh.Connected &&
			len(rh.Databases) == 1 && rh.Databases[0].CommittedSeq == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica verbose healthz never converged: %+v", rh)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicaRejectsMutations: every mutating verb on a replica is 403
// with the primary's address; reads and the root alias behave.
func TestReplicaRejectsMutations(t *testing.T) {
	cat, ts := newPrimaryServer(t, catalog.Options{})
	db, err := cat.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Core().IntegrateXMLString(abookA); err != nil {
		t.Fatal(err)
	}
	rep, err := replica.Open(t.TempDir(), replica.Options{
		Primary:         ts.URL,
		Catalog:         catalog.Options{RootTag: "addressbook"},
		PollWait:        100 * time.Millisecond,
		MembershipEvery: 20 * time.Millisecond,
		MinBackoff:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	rts := httptest.NewServer(NewReplica(rep, Options{}).Handler())
	defer rts.Close()

	// Wait for x to replicate so reads have something to serve.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := rep.Catalog().Get("x"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("x never replicated")
		}
		time.Sleep(10 * time.Millisecond)
	}

	mutations := []struct{ method, path, body string }{
		{"POST", "/dbs/x/integrate", abookB},
		{"POST", "/dbs/x/integrate/batch", `{"sources":["<a/>"]}`},
		{"POST", "/dbs/x/feedback", `{"query":"//a","value":"v","correct":true}`},
		{"POST", "/dbs/x/load", `{"name":"s"}`},
		{"POST", "/dbs", `{"name":"y"}`},
		{"PUT", "/dbs/y", ""},
		{"DELETE", "/dbs/x", ""},
	}
	for _, m := range mutations {
		req, err := http.NewRequest(m.method, rts.URL+m.path, strings.NewReader(m.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var ro ReadOnlyError
		err = json.NewDecoder(resp.Body).Decode(&ro)
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s %s: status %d, want 403", m.method, m.path, resp.StatusCode)
		}
		if err != nil || ro.Primary != ts.URL {
			t.Fatalf("%s %s: body primary %q (err %v), want %q", m.method, m.path, ro.Primary, err, ts.URL)
		}
		if resp.Header.Get("Location") != ts.URL {
			t.Fatalf("%s %s: Location %q, want %q", m.method, m.path, resp.Header.Get("Location"), ts.URL)
		}
	}

	// Reads work, stats carry the replicated database.
	var sr StatsResponse
	getJSON(t, rts.URL+"/dbs/x/stats", http.StatusOK, &sr)
	if sr.Database != "x" || sr.WAL == nil || sr.WAL.LastSeq != 1 {
		t.Fatalf("replica stats %+v", sr)
	}
	// The legacy root alias never creates "default" on a replica.
	getJSON(t, rts.URL+"/query?q=%2F%2Fperson", http.StatusNotFound, nil)
	if _, err := rep.Catalog().Get(catalog.DefaultName); err == nil {
		t.Fatal("root alias created the default database on a replica")
	}
}

// TestStatsExposesKnobs: the tuning knobs land in /stats.
func TestStatsExposesKnobs(t *testing.T) {
	cat, ts := newPrimaryServer(t, catalog.Options{SegmentBytes: 12345, CompactEvery: 7})
	if _, err := cat.Get("x"); err != nil {
		t.Fatal(err)
	}
	var sr StatsResponse
	getJSON(t, ts.URL+"/dbs/x/stats", http.StatusOK, &sr)
	if sr.WAL == nil || sr.WAL.SegmentLimitBytes != 12345 || sr.WAL.CompactEvery != 7 {
		t.Fatalf("stats knobs %+v", sr.WAL)
	}
}

const (
	abookA = `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`
	abookB = `<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`
	abookC = `<addressbook><person><nm>Mary</nm><tel>3333</tel></person></addressbook>`
)

package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
)

// TestQueryWorkersParameter: workers= selects the per-request fan-out;
// bad values are options errors, not crashes.
func TestQueryWorkersParameter(t *testing.T) {
	ts, _ := newTestServer(t)
	integrateB(t, ts)
	for _, w := range []string{"0", "1", "3", "8"} {
		var resp server.QueryResponse
		doJSON(t, "GET", ts.URL+"/query?workers="+w+"&q="+url.QueryEscape(`//person/tel`), "", nil, http.StatusOK, &resp)
		if len(resp.Answers) != 2 {
			t.Fatalf("workers=%s: answers = %+v, want 2", w, resp.Answers)
		}
	}
	doJSON(t, "GET", ts.URL+"/query?workers=-1&q="+url.QueryEscape(`//a`), "", nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/query?workers=x&q="+url.QueryEscape(`//a`), "", nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/query?budget_ms=-1&q="+url.QueryEscape(`//a`), "", nil, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/query?budget_ms=x&q="+url.QueryEscape(`//a`), "", nil, http.StatusBadRequest, nil)
}

// TestQueryWorkersExplainPlan: explain surfaces the worker count that ran.
func TestQueryWorkersExplainPlan(t *testing.T) {
	ts, _ := newTestServer(t)
	integrateB(t, ts)
	var resp server.QueryResponse
	doJSON(t, "GET", ts.URL+"/query?explain=1&workers=3&q="+url.QueryEscape(`//person/tel`), "", nil, http.StatusOK, &resp)
	if resp.Plan == nil || resp.Plan.Workers != 3 {
		t.Fatalf("plan = %+v, want workers=3", resp.Plan)
	}
}

// TestQueryClientDisconnect: a request whose context is already canceled
// (the client hung up) aborts with the 499 nginx convention and is counted
// in the /stats query section.
func TestQueryClientDisconnect(t *testing.T) {
	db, err := core.OpenXML(strings.NewReader(bookA), core.Config{Schema: personDTD})
	if err != nil {
		t.Fatalf("OpenXML: %v", err)
	}
	h := server.New(db, server.Options{}).Handler()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/query?q="+url.QueryEscape(`//person/tel`), nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Fatalf("status = %d, want 499; body %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var stats server.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("bad stats JSON %q: %v", rec.Body.String(), err)
	}
	if stats.Query.Canceled < 1 {
		t.Fatalf("stats.query = %+v, want canceled >= 1", stats.Query)
	}
	if stats.Query.Started < 1 {
		t.Fatalf("stats.query = %+v, want started >= 1", stats.Query)
	}
}

// TestStatsQuerySection: /stats reports the query-concurrency counters
// after a cold evaluation plus repeats (cache hits leave started growing).
func TestStatsQuerySection(t *testing.T) {
	ts, _ := newTestServer(t)
	integrateB(t, ts)
	for i := 0; i < 3; i++ {
		doJSON(t, "GET", ts.URL+"/query?q="+url.QueryEscape(`//person/tel`), "", nil, http.StatusOK, nil)
	}
	var stats server.StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", "", nil, http.StatusOK, &stats)
	if stats.Query.Started < 3 {
		t.Fatalf("query.started = %d, want >= 3", stats.Query.Started)
	}
	if stats.Query.Active != 0 {
		t.Fatalf("query.active = %d, want 0", stats.Query.Active)
	}
	if stats.Query.CacheShards < 1 {
		t.Fatalf("query.cache_shards = %d, want >= 1", stats.Query.CacheShards)
	}
}

// Replication endpoints and the role machinery. A catalog-mode server is
// a primary: it ships committed write-ahead records (GET /dbs/{name}/wal,
// long-poll), serves bootstrap state (GET /dbs/{name}/snapshot) and
// reports positions (GET /replication). A replica server reuses the read
// endpoints over its follower catalog, while guardMutation turns every
// write verb into a 403 carrying the primary's address.
package server

import (
	"compress/flate"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/internal/xmlcodec"
)

const (
	// maxWALLimit caps one /wal page regardless of the requested limit.
	maxWALLimit = 4096
	// maxWALWait caps the long-poll wait a /wal request may ask for.
	maxWALWait = 30 * time.Second
)

// negotiateWire picks the replication wire for a request from its
// Accept header: the strtab-capable wal2 binary wire, the original wal1
// binary wire, or the JSON fallback every build speaks. wal2 MUST be
// tested first — the wal1 media type is a substring of wal2's, so a
// wal2 offer always also matches the wal1 check (that is what lets an
// old primary degrade a new follower to wal1).
func negotiateWire(r *http.Request) string {
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, replica.ContentTypeBinary2):
		return replica.WireBinary
	case strings.Contains(accept, replica.ContentTypeBinary):
		return replica.WireBinaryV1
	default:
		return replica.WireJSON
	}
}

// wireCounters are the server's binary-replication byte counters:
// payloadBytes is what the encoders produced, wireBytes what actually
// went on the wire (equal when uncompressed; the gap is the compression
// win /stats reports).
type wireCounters struct {
	pages, pagesCompressed         atomic.Int64
	snapshots, snapshotsCompressed atomic.Int64
	payloadBytes, wireBytes        atomic.Int64
}

// countingWriter counts bytes into an atomic sink as they pass through.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// compressIfOffered prepares the response writer for a wal2 binary
// body: when the requester offered deflate and compression is enabled,
// the returned writer compresses (Content-Encoding is set before any
// byte is written) and finish must be called after encoding to flush
// the compressor. Either way the writer pair feeds the server's
// payload/wire byte counters, so /stats can report the compression
// ratio actually achieved.
func (s *Server) compressIfOffered(w http.ResponseWriter, r *http.Request) (out io.Writer, finish func(), compressed bool) {
	wireW := &countingWriter{w: w, n: &s.wire.wireBytes}
	if s.opts.NoWireCompression ||
		!strings.Contains(r.Header.Get("Accept-Encoding"), replica.ContentEncodingDeflate) {
		return &countingWriter{w: wireW, n: &s.wire.payloadBytes}, func() {}, false
	}
	w.Header().Set("Content-Encoding", replica.ContentEncodingDeflate)
	// BestSpeed: the wire is latency-sensitive and the framed binary
	// payloads are already compact; the win is mostly repeated tags and
	// text, which the fastest level captures too.
	fw, _ := flate.NewWriter(wireW, flate.BestSpeed)
	return &countingWriter{w: fw, n: &s.wire.payloadBytes}, func() { fw.Close() }, true
}

// notePeer records the wire encoding served to a replication peer, keyed
// by remote host — the per-peer negotiation surface /replication and
// verbose /healthz report.
func (s *Server) notePeer(r *http.Request, encoding string) {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	s.peerMu.Lock()
	s.peers[host] = encoding
	s.peerMu.Unlock()
}

// peerEncodings snapshots the per-peer negotiated encodings (nil when no
// peer fetched yet, so the JSON field stays omitted).
func (s *Server) peerEncodings() map[string]string {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if len(s.peers) == 0 {
		return nil
	}
	out := make(map[string]string, len(s.peers))
	for k, v := range s.peers {
		out[k] = v
	}
	return out
}

// ReadOnlyError is the 403 body a replica answers mutations with: the
// error plus the primary's address, so clients can redirect the write.
type ReadOnlyError struct {
	Error   string `json:"error"`
	Primary string `json:"primary"`
}

// writeReadOnly rejects a mutating verb on a read replica (or a demoted
// ex-primary).
func (s *Server) writeReadOnly(w http.ResponseWriter, verb string) {
	primary := s.primaryHint()
	if primary != "" {
		// A redirect hint, not a redirect: replaying a POST body across
		// hosts is the client's call to make.
		w.Header().Set("Location", primary)
	}
	what := "a read replica"
	if s.role() == "demoted" {
		what = "a demoted ex-primary"
	}
	writeJSON(w, http.StatusForbidden, ReadOnlyError{
		Error:   fmt.Sprintf("%s: this node is %s; send writes to the primary", verb, what),
		Primary: primary,
	})
}

// guardMutation wraps a mutating per-database handler with the replica
// read-only check.
func (s *Server) guardMutation(h func(http.ResponseWriter, *http.Request, target)) func(http.ResponseWriter, *http.Request, target) {
	return func(w http.ResponseWriter, r *http.Request, t target) {
		if s.isReadOnly() {
			s.writeReadOnly(w, r.URL.Path)
			return
		}
		h(w, r, t)
	}
}

// role names what this server is: "standalone" (one bare database),
// "primary" (durable catalog, or a promoted replica), "replica"
// (follower catalog), or "demoted" (an ex-primary that stepped down
// after a replica was promoted over it).
func (s *Server) role() string {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	switch {
	case s.rep != nil && !s.promoted:
		return "replica"
	case s.rep != nil:
		return "primary"
	case s.cat != nil && s.demoted:
		return "demoted"
	case s.cat != nil:
		return "primary"
	default:
		return "standalone"
	}
}

// handleWAL serves one page of a database's committed op log — the
// primary half of log shipping. Parameters: since (position to read past,
// default 0), limit (records per page, capped), wait (long-poll
// milliseconds to hold an empty page open for, capped), epoch (the
// follower's cluster epoch; a value above this node's means this node
// was deposed — it steps down and answers 409). A position the log
// cannot serve incrementally (compacted away, or beyond the log) is
// 410 Gone: the follower must bootstrap from /snapshot.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request, t target) {
	if t.cdb == nil {
		writeError(w, http.StatusServiceUnavailable, "wal: log shipping requires a durable catalog (start the server with a data directory)")
		return
	}
	since, err := uintParam(r, "since", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "wal: %v", err)
		return
	}
	followerEpoch, err := uintParam(r, "epoch", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "wal: %v", err)
		return
	}
	if local := s.cat.Epoch(); followerEpoch > local {
		// The requester has witnessed a newer epoch than this node: a
		// replica was promoted over us. Step down rather than keep
		// shipping a log the cluster has moved past.
		s.stepDown(local, followerEpoch, "")
		writeError(w, http.StatusConflict, "wal: this node is at epoch %d, the cluster has moved to %d (stepping down)", local, followerEpoch)
		return
	}
	limit, err := intParam(r, "limit", 0)
	if err != nil || limit < 0 {
		writeError(w, http.StatusBadRequest, "wal: bad limit parameter")
		return
	}
	if limit > maxWALLimit {
		limit = maxWALLimit
	}
	waitMS, err := intParam(r, "wait", 0)
	if err != nil || waitMS < 0 {
		writeError(w, http.StatusBadRequest, "wal: bad wait parameter")
		return
	}
	wait := time.Duration(waitMS) * time.Millisecond
	if wait > maxWALWait {
		wait = maxWALWait
	}
	// The wire encoding decides how records are read: the wal2 binary
	// wire ships raw on-disk payload bytes (no decode, no re-encode) plus
	// the string-table prefix they assume; the wal1 binary wire and the
	// JSON wire need decoded records — an old binary follower cannot
	// resolve shared-dictionary (v3) payloads, so those are re-encoded
	// self-contained per record.
	wire := negotiateWire(r)
	rawWire := wire == replica.WireBinary
	var recs []catalog.WALRecord
	var raws []catalog.RawWALRecord
	var prefix []string
	if wait > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		if rawWire {
			raws, prefix, err = t.cdb.WaitRawOps(ctx, since, limit)
		} else {
			recs, err = t.cdb.WaitOps(ctx, since, limit)
		}
		cancel()
	} else if rawWire {
		raws, prefix, err = t.cdb.RawOpsSince(since, limit)
	} else {
		recs, err = t.cdb.OpsSince(since, limit)
	}
	switch {
	case errors.Is(err, catalog.ErrSeqGone):
		writeError(w, http.StatusGone, "wal: %v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "wal: %v", err)
		return
	}
	if recs == nil {
		recs = []catalog.WALRecord{}
	}
	// The (seq, digest) pair comes from one consistent snapshot, so a
	// follower reaching LastSeq can compare trees structurally.
	tree, seq := t.core.TreeSeq()
	page := replica.WALPage{
		Database: t.name,
		Since:    since,
		LastSeq:  seq,
		Digest:   replica.DigestString(tree),
		Epoch:    t.cdb.Epoch(),
		Records:  recs,
	}
	switch wire {
	case replica.WireBinary:
		out, finish, compressed := s.compressIfOffered(w, r)
		enc := replica.WireBinary
		if compressed {
			enc = replica.WireBinaryFlate
			s.wire.pagesCompressed.Add(1)
		}
		s.wire.pages.Add(1)
		s.notePeer(r, enc)
		w.Header().Set("Content-Type", replica.ContentTypeBinary2)
		// Headers are out once the first frame is written; a mid-stream
		// encode failure can only cut the connection, which the follower
		// detects as a truncated stream and retries.
		if err := replica.EncodeRawWALPage(out, &page, raws, prefix); err != nil {
			s.logf("wal: %s: streaming page since %d: %v", t.name, since, err)
		}
		finish()
		return
	case replica.WireBinaryV1:
		s.wire.pages.Add(1)
		s.notePeer(r, replica.WireBinaryV1)
		w.Header().Set("Content-Type", replica.ContentTypeBinary)
		out := &countingWriter{w: &countingWriter{w: w, n: &s.wire.wireBytes}, n: &s.wire.payloadBytes}
		if err := replica.EncodeWALPage(out, &page); err != nil {
			s.logf("wal: %s: streaming v1 page since %d: %v", t.name, since, err)
		}
		return
	}
	s.notePeer(r, replica.WireJSON)
	// Binary-logged records carry their documents only in decoded form;
	// materialize the XML string fields the JSON wire needs.
	for i := range page.Records {
		if err := page.Records[i].Op.EncodePortable(); err != nil {
			writeError(w, http.StatusInternalServerError, "wal: encoding record %d: %v", page.Records[i].Seq, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, page)
}

// handleSnapshot serves the database's full current state — the payload a
// follower bootstraps from, mirroring the v2 store snapshot format.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request, t target) {
	if t.cdb == nil {
		writeError(w, http.StatusServiceUnavailable, "snapshot: replication requires a durable catalog (start the server with a data directory)")
		return
	}
	// Read the epoch before the view: if a concurrent raise lands between
	// the two reads the payload understates the epoch, which a follower
	// tolerates (it refuses only snapshots BELOW its own epoch).
	epoch := t.cdb.Epoch()
	v := t.core.View()
	pending, err := core.EncodePending(v.Pending)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	payload := replica.SnapshotPayload{
		Database:      t.name,
		FormatVersion: store.FormatVersion,
		Seq:           v.Seq,
		Epoch:         epoch,
		Digest:        replica.DigestString(v.Tree),
		Integrations:  v.Integrations,
		Feedback:      v.Events,
		Pending:       pending,
	}
	if v.Schema != nil {
		payload.Schema = v.Schema.String()
	}
	switch negotiateWire(r) {
	case replica.WireBinary:
		out, finish, compressed := s.compressIfOffered(w, r)
		enc := replica.WireBinary
		if compressed {
			enc = replica.WireBinaryFlate
			s.wire.snapshotsCompressed.Add(1)
		}
		s.wire.snapshots.Add(1)
		s.notePeer(r, enc)
		w.Header().Set("Content-Type", replica.ContentTypeBinary2)
		if err := replica.EncodeSnapshotShared(out, &payload, v.Tree); err != nil {
			s.logf("snapshot: %s: streaming: %v", t.name, err)
		}
		finish()
		return
	case replica.WireBinaryV1:
		s.wire.snapshots.Add(1)
		s.notePeer(r, replica.WireBinaryV1)
		w.Header().Set("Content-Type", replica.ContentTypeBinary)
		out := &countingWriter{w: &countingWriter{w: w, n: &s.wire.wireBytes}, n: &s.wire.payloadBytes}
		if err := replica.EncodeSnapshot(out, &payload, v.Tree); err != nil {
			s.logf("snapshot: %s: streaming: %v", t.name, err)
		}
		return
	}
	s.notePeer(r, replica.WireJSON)
	// KeepTrivial matches the journal encoding: the round trip preserves
	// structure (pxml.Equal), which is what replay determinism needs.
	tree, err := xmlcodec.EncodeString(v.Tree, xmlcodec.EncodeOptions{KeepTrivial: true})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	payload.Tree = tree
	writeJSON(w, http.StatusOK, payload)
}

// replicaReplicationResponse is the /replication body on a replica: the
// follower's live status under its role tag.
type replicaReplicationResponse struct {
	Role string `json:"role"`
	replica.Status
}

// handleReplication reports the node's replication role and positions:
// on a primary (or standalone server) the per-database shipped positions
// a follower syncs against, on a replica the follower lag and sync
// counters.
func (s *Server) handleReplication(w http.ResponseWriter, r *http.Request) {
	if s.rep != nil && !s.isPromoted() {
		writeJSON(w, http.StatusOK, replicaReplicationResponse{Role: "replica", Status: s.rep.Status()})
		return
	}
	ps := replica.PrimaryStatus{Role: s.role(), Primary: s.primaryHint(), Databases: []replica.PrimaryDBStatus{}}
	if s.cat != nil {
		ps.Epoch = s.cat.Epoch()
		ps.Peers = s.peerEncodings()
		for _, db := range s.cat.List() {
			tree, seq := db.Core().TreeSeq()
			st := db.Stats()
			ps.Databases = append(ps.Databases, replica.PrimaryDBStatus{
				Name:        db.Name(),
				LastSeq:     seq,
				Digest:      replica.DigestString(tree),
				SnapshotSeq: st.SnapshotSeq,
				TailOps:     st.TailOps,
				Epoch:       st.Epoch,
			})
		}
	}
	writeJSON(w, http.StatusOK, ps)
}

// HealthDB is one database row of a verbose health report.
type HealthDB struct {
	Name string `json:"name"`
	// CommittedSeq is the newest durable op; AppliedSeq the op the
	// in-memory tree reflects; TailOps how many ops a recovery would
	// replay; RecoveredOps how many the last open actually replayed.
	CommittedSeq uint64 `json:"committed_seq"`
	AppliedSeq   uint64 `json:"applied_seq"`
	TailOps      uint64 `json:"tail_ops"`
	RecoveredOps int64  `json:"recovered_ops"`
	// StoreFormat is the on-disk snapshot format version; WALEncoding the
	// payload format of new log appends.
	StoreFormat int    `json:"store_format,omitempty"`
	WALEncoding string `json:"wal_encoding,omitempty"`
	// PrimarySeq and Lag are present on replicas.
	PrimarySeq uint64 `json:"primary_seq,omitempty"`
	Lag        uint64 `json:"lag,omitempty"`
	LastError  string `json:"last_error,omitempty"`
	// Ingest rows are present when the database runs an async ingest
	// queue: current depth vs capacity, and whether the drain goroutine is
	// active on this node (primaries and standalone servers only —
	// follower queues advance through replicated apply records).
	IngestDepth    int   `json:"ingest_depth,omitempty"`
	IngestCapacity int   `json:"ingest_capacity,omitempty"`
	IngestRunning  *bool `json:"ingest_running,omitempty"`
}

// HealthResponse is the /healthz body. The bare probe keeps its original
// one-field contract ({"status":"ok"}, always 200 while the process
// serves); ?verbose=1 adds the readiness report — role, per-database log
// positions, and on followers the replication lag.
type HealthResponse struct {
	Status  string `json:"status"`
	Role    string `json:"role,omitempty"`
	Primary string `json:"primary,omitempty"`
	// Epoch is the node's cluster epoch (catalog and replica modes).
	Epoch     *uint64 `json:"epoch,omitempty"`
	Connected *bool   `json:"connected,omitempty"`
	// WireEncoding is, on a replica, the encoding its last replication
	// fetch negotiated; Peers maps, on a primary, follower hosts to the
	// encoding each was last served.
	WireEncoding string            `json:"wire_encoding,omitempty"`
	Peers        map[string]string `json:"peers,omitempty"`
	Databases    []HealthDB        `json:"databases,omitempty"`
}

// handleHealthz is the liveness probe — O(1) by default on purpose, so
// orchestrators can poll it against arbitrarily large documents (world
// counting lives in /stats, where the cost is expected). verbose=1 adds
// per-database readiness detail, still without touching document sizes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	verbose := false
	switch v := r.URL.Query().Get("verbose"); v {
	case "", "0", "false":
	case "1", "true":
		verbose = true
	default:
		writeError(w, http.StatusBadRequest, "healthz: bad verbose parameter %q (0 | 1)", v)
		return
	}
	resp := HealthResponse{Status: "ok"}
	if !verbose {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp.Role = s.role()
	if s.cat != nil {
		epoch := s.cat.Epoch()
		resp.Epoch = &epoch
	}
	var lagByName map[string]replica.DBStatus
	if s.rep != nil && !s.isPromoted() {
		st := s.rep.Status()
		resp.Primary = st.Primary
		connected := st.Connected
		resp.Connected = &connected
		resp.WireEncoding = st.WireEncoding
		lagByName = make(map[string]replica.DBStatus, len(st.Databases))
		for _, d := range st.Databases {
			lagByName[d.Name] = d
		}
	} else if p := s.primaryHint(); p != "" {
		// A demoted ex-primary discloses where writes went.
		resp.Primary = p
	}
	resp.Databases = []HealthDB{}
	if s.cat != nil {
		resp.Peers = s.peerEncodings()
		for _, db := range s.cat.List() {
			st := db.Stats()
			row := HealthDB{
				Name:         db.Name(),
				CommittedSeq: st.WAL.LastSeq,
				AppliedSeq:   db.Core().AppliedSeq(),
				TailOps:      st.TailOps,
				RecoveredOps: st.RecoveredOps,
				StoreFormat:  st.StoreFormat,
				WALEncoding:  st.WAL.Encoding,
			}
			if d, ok := lagByName[db.Name()]; ok {
				row.PrimarySeq = d.PrimarySeq
				row.Lag = d.Lag
				row.LastError = d.LastError
			}
			if iq := db.Core().IngestStats(); iq.Enabled {
				running := db.Core().IngestRunning()
				row.IngestDepth = iq.Depth
				row.IngestCapacity = iq.Capacity
				row.IngestRunning = &running
			}
			resp.Databases = append(resp.Databases, row)
		}
	} else if s.db != nil {
		resp.Databases = append(resp.Databases, HealthDB{
			Name:       catalog.DefaultName,
			AppliedSeq: s.db.AppliedSeq(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// uintParam parses an unsigned integer query parameter.
func uintParam(r *http.Request, name string, def uint64) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s parameter %q", name, v)
	}
	return n, nil
}

// Promotion and step-down: the failover half of the replication story.
//
// POST /promote turns a replica server into the cluster's primary:
//
//  1. drain  — a best-effort final catch-up against the old primary
//     (skipped silently when it is already dead, which is the usual
//     reason anyone promotes);
//  2. fence  — the sync loops stop for good, then every database's
//     epoch is raised to (highest witnessed)+1 and the raise is made
//     durable (a snapshot manifest carrying the new epoch) BEFORE the
//     node accepts a single write, so a crash right after promotion
//     can never come back believing in the old epoch;
//  3. flip   — the role state swaps atomically: mutations stop 403ing,
//     /replication starts reporting "primary" at the new epoch, and
//     surviving replicas re-point through their membership loops;
//  4. notify — a background fencing goroutine tells the old primary to
//     step down (POST /stepdown with the new epoch and this node's
//     URL), retrying with backoff so an old primary that restarts
//     minutes later is still told where the cluster went. The epoch
//     checks on /wal and ApplyReplicated make this notification an
//     optimization, not a safety requirement: a stale primary's ships
//     are rejected (ErrStaleEpoch) whether or not it ever hears the
//     news.
//
// POST /stepdown is the receiving end: a primary told (with proof — a
// higher epoch) that the cluster moved on flips itself read-only and
// discloses the new primary to its clients and followers.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"
)

const (
	// promoteDrainTimeout bounds the best-effort final catch-up against
	// the (possibly dead) old primary before fencing.
	promoteDrainTimeout = 2 * time.Second
	// fence retry schedule: the old primary may be down right now and
	// restart much later; keep telling it for a while.
	fenceMinBackoff = 50 * time.Millisecond
	fenceMaxBackoff = 2 * time.Second
	fenceGiveUpAt   = 5 * time.Minute
)

// PromoteRequest is the optional /promote body.
type PromoteRequest struct {
	// AdvertiseURL is the base URL surviving replicas and redirected
	// clients should reach this node at. Empty: derived from the
	// request's Host header.
	AdvertiseURL string `json:"advertise_url,omitempty"`
}

// PromoteResponse reports a completed promotion.
type PromoteResponse struct {
	Role string `json:"role"`
	// Epoch is the new cluster epoch this node now commits under.
	Epoch uint64 `json:"epoch"`
	// OldPrimary is the node being fenced (told to step down).
	OldPrimary string `json:"old_primary,omitempty"`
	// AdvertiseURL is the address announced to the old primary's clients.
	AdvertiseURL string `json:"advertise_url,omitempty"`
}

// StepdownRequest is the /stepdown body: proof of a newer epoch plus
// where writes go now.
type StepdownRequest struct {
	Epoch   uint64 `json:"epoch"`
	Primary string `json:"primary,omitempty"`
}

// StepdownResponse reports a completed step-down.
type StepdownResponse struct {
	Role    string `json:"role"`
	Epoch   uint64 `json:"epoch"`
	Primary string `json:"primary,omitempty"`
}

// handlePromote promotes this replica server to primary.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.rep == nil {
		if s.cat != nil {
			writeError(w, http.StatusConflict, "promote: this node is already a primary")
			return
		}
		writeError(w, http.StatusServiceUnavailable, "promote: only a replica can be promoted (start the server with -replica-of)")
		return
	}
	var req PromoteRequest
	if err := readJSON(r, &req); err != nil && err != io.EOF {
		writeError(w, statusForBodyError(err, http.StatusBadRequest), "promote: bad request body: %v", err)
		return
	}
	advertise := req.AdvertiseURL
	if advertise == "" && r.Host != "" {
		advertise = "http://" + r.Host
	}
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.isPromoted() {
		// Idempotent: a retried promote reports the standing state.
		writeJSON(w, http.StatusOK, PromoteResponse{
			Role:  s.role(),
			Epoch: s.cat.Epoch(),
		})
		return
	}
	oldPrimary := s.rep.Primary()
	// Best-effort drain: if the old primary is still reachable, pull the
	// last of its committed log before fencing it off. Failure is the
	// expected case (promotion usually follows a primary death) and loses
	// nothing the follower had not already durably applied.
	drainCtx, cancel := context.WithTimeout(r.Context(), promoteDrainTimeout)
	if err := s.rep.WaitCaughtUp(drainCtx); err != nil {
		s.logf("promote: final drain from %s incomplete (continuing): %v", oldPrimary, err)
	}
	cancel()
	// From here the catalog stops following anyone, permanently.
	s.rep.StopSync()
	epoch := s.cat.Epoch() + 1
	if err := s.cat.RaiseEpoch(epoch); err != nil {
		// The fence is not durable; refusing the promotion is the only
		// safe answer (the caller can retry — StopSync is permanent, but
		// RaiseEpoch is idempotent).
		writeError(w, http.StatusInternalServerError, "promote: persisting epoch %d: %v", epoch, err)
		return
	}
	ctx, fenceCancel := context.WithCancel(context.Background())
	s.roleMu.Lock()
	s.promoted = true
	s.readOnly = false
	s.primary = ""
	s.fenceCancel = fenceCancel
	s.roleMu.Unlock()
	s.logf("promote: now primary at epoch %d (was following %s)", epoch, oldPrimary)
	// A primary owns its ingest queues: start draining whatever the
	// followed primary had accepted but not yet applied (no-ops when the
	// queue is disabled).
	for _, db := range s.cat.List() {
		db.Core().StartIngest()
	}
	if oldPrimary != "" {
		s.fenceWG.Add(1)
		go s.fenceOldPrimary(ctx, oldPrimary, epoch, advertise)
	}
	writeJSON(w, http.StatusOK, PromoteResponse{
		Role:         "primary",
		Epoch:        epoch,
		OldPrimary:   oldPrimary,
		AdvertiseURL: advertise,
	})
}

// fenceOldPrimary keeps telling the deposed primary to step down until
// it acknowledges, the retry budget runs out, or the server closes. The
// epoch checks make this advisory: a stale primary is rejected on every
// ship whether or not it hears the news — but hearing it turns its 403s
// into helpful redirects to the new primary.
func (s *Server) fenceOldPrimary(ctx context.Context, oldPrimary string, epoch uint64, advertise string) {
	defer s.fenceWG.Done()
	body, err := json.Marshal(StepdownRequest{Epoch: epoch, Primary: advertise})
	if err != nil {
		return
	}
	deadline := time.Now().Add(fenceGiveUpAt)
	backoff := fenceMinBackoff
	client := &http.Client{Timeout: 5 * time.Second}
	for time.Now().Before(deadline) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, oldPrimary+"/stepdown", bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode < http.StatusInternalServerError {
				// Delivered: the old primary either stepped down (200) or
				// refused with a definite answer (4xx — e.g. it was already
				// at a higher epoch, which a human must untangle).
				s.logf("promote: old primary %s acknowledged step-down to epoch %d (%s)", oldPrimary, epoch, resp.Status)
				return
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > fenceMaxBackoff {
			backoff = fenceMaxBackoff
		}
	}
	s.logf("promote: gave up fencing old primary %s (unreachable for %s); its ships stay rejected by epoch %d", oldPrimary, fenceGiveUpAt, epoch)
}

// handleStepdown demotes this primary after a replica was promoted over
// it. The request must prove a newer epoch; anything else is refused, so
// a stray or replayed step-down cannot take a healthy primary offline.
func (s *Server) handleStepdown(w http.ResponseWriter, r *http.Request) {
	if s.cat == nil || (s.rep != nil && !s.isPromoted()) {
		writeError(w, http.StatusServiceUnavailable, "stepdown: only a catalog-mode primary can step down")
		return
	}
	var req StepdownRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, statusForBodyError(err, http.StatusBadRequest), "stepdown: bad request body: %v", err)
		return
	}
	local := s.cat.Epoch()
	if req.Epoch <= local {
		if s.role() == "demoted" {
			// Already demoted (a retried fence): idempotent success.
			writeJSON(w, http.StatusOK, StepdownResponse{Role: "demoted", Epoch: local, Primary: s.primaryHint()})
			return
		}
		writeError(w, http.StatusConflict, "stepdown: refused — claimed epoch %d does not beat local epoch %d", req.Epoch, local)
		return
	}
	s.stepDown(local, req.Epoch, req.Primary)
	writeJSON(w, http.StatusOK, StepdownResponse{Role: "demoted", Epoch: local, Primary: req.Primary})
}

// stepDown flips a primary read-only after proof of a newer epoch. The
// local epoch is deliberately NOT raised: everything in this node's log
// past the promotion point was committed under the old epoch, and
// keeping the node there is exactly what makes those records (and any
// snapshot of them) detectably stale to the rest of the cluster.
func (s *Server) stepDown(local, seen uint64, newPrimary string) {
	s.roleMu.Lock()
	already := s.demoted
	s.demoted = true
	s.readOnly = true
	if newPrimary != "" {
		s.primary = newPrimary
	}
	s.roleMu.Unlock()
	if !already {
		// A demoted node must stop integrating queued sources: those
		// applies would be local mutations the new primary never sees.
		if s.cat != nil {
			for _, db := range s.cat.List() {
				db.Core().StopIngest()
			}
		}
		s.logf("stepdown: demoted at epoch %d (cluster moved to %d, primary %q)", local, seen, newPrimary)
	}
}

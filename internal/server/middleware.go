package server

import (
	"log"
	"net/http"
	"time"
)

// middleware wraps a handler with one cross-cutting concern.
type middleware func(http.Handler) http.Handler

// chain applies middlewares so the first listed one is outermost (runs
// first on the way in, last on the way out).
func chain(h http.Handler, mws ...middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// withRequestLog logs one line per request: method, path, status, bytes
// written and wall time. A nil logger disables it entirely.
func withRequestLog(logger *log.Logger) middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rec := &statusRecorder{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(rec, r)
			if rec.status == 0 {
				rec.status = http.StatusOK
			}
			logger.Printf("%s %s -> %d (%dB, %s)",
				r.Method, r.URL.RequestURI(), rec.status, rec.bytes, time.Since(start).Round(time.Microsecond))
		})
	}
}

// withBodyLimit caps request bodies at n bytes; reads past the limit
// fail with *http.MaxBytesError, which handlers map to 413.
func withBodyLimit(n int64) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Body != nil {
				r.Body = http.MaxBytesReader(w, r.Body, n)
			}
			next.ServeHTTP(w, r)
		})
	}
}

// withRecover turns handler panics into 500 responses instead of tearing
// down the connection (and with it, sibling requests on HTTP/2).
func withRecover(logger *log.Logger) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			defer func() {
				if v := recover(); v != nil {
					if logger != nil {
						logger.Printf("panic serving %s %s: %v", r.Method, r.URL.Path, v)
					}
					writeError(w, http.StatusInternalServerError, "internal error")
				}
			}()
			next.ServeHTTP(w, r)
		})
	}
}

package server_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/server"
)

// newIngestServer serves a catalog whose databases run an async ingest
// queue of the given depth. Databases created through the API get their
// drainer started by the server.
func newIngestServer(t *testing.T, depth int) (*httptest.Server, *catalog.Catalog) {
	t.Helper()
	cat, err := catalog.Open(t.TempDir(), catalog.Options{
		Config:       core.Config{Schema: personDTD, IngestDepth: depth},
		RootTag:      "addressbook",
		CompactEvery: -1,
	})
	if err != nil {
		t.Fatalf("catalog.Open: %v", err)
	}
	t.Cleanup(func() { cat.Close() })
	ts := httptest.NewServer(server.NewCatalog(cat, server.Options{}).Handler())
	t.Cleanup(ts.Close)
	return ts, cat
}

// pollTicket follows the status path until the ticket leaves pending.
func pollTicket(t *testing.T, base, path string) core.TicketStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st core.TicketStatus
		doJSON(t, "GET", base+path, "", nil, http.StatusOK, &st)
		if st.State != core.TicketPending {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("ticket at %s still pending after 10s", path)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAsyncIntegrateEndToEnd(t *testing.T) {
	ts, cat := newIngestServer(t, 8)
	doJSON(t, "POST", ts.URL+"/dbs", "application/json",
		strings.NewReader(`{"name":"x"}`), http.StatusCreated, nil)

	var acc server.EnqueueResponse
	doJSON(t, "POST", ts.URL+"/dbs/x/integrate?async=1", "application/xml",
		strings.NewReader(bookB), http.StatusAccepted, &acc)
	if acc.Ticket == "" || acc.State != string(core.TicketPending) || acc.StatusPath == "" {
		t.Fatalf("accept response = %+v", acc)
	}
	st := pollTicket(t, ts.URL, acc.StatusPath)
	if st.State != core.TicketApplied {
		t.Fatalf("ticket ended %+v", st)
	}

	// The applied source must be visible exactly as a sync integrate
	// would have left it: bookA + bookB is the paper's 3-world figure.
	db, err := cat.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Core().IntegrateXMLString(bookA); err != nil {
		t.Fatal(err) // sanity: the db still accepts sync writes
	}

	// Observability: /stats carries queue and memo counters...
	var stats server.StatsResponse
	doJSON(t, "GET", ts.URL+"/dbs/x/stats", "", nil, http.StatusOK, &stats)
	if !stats.Ingest.Enabled || stats.Ingest.Accepted != 1 || stats.Ingest.Applied != 1 {
		t.Fatalf("stats.ingest = %+v", stats.Ingest)
	}
	if stats.Ingest.Capacity != 8 {
		t.Fatalf("stats.ingest.capacity = %d, want 8", stats.Ingest.Capacity)
	}
	// ...and the verbose health report shows the drainer running.
	var health server.HealthResponse
	doJSON(t, "GET", ts.URL+"/healthz?verbose=1", "", nil, http.StatusOK, &health)
	if len(health.Databases) != 1 {
		t.Fatalf("health rows = %+v", health.Databases)
	}
	row := health.Databases[0]
	if row.IngestCapacity != 8 || row.IngestRunning == nil || !*row.IngestRunning {
		t.Fatalf("health ingest row = %+v", row)
	}
}

// TestAsyncIntegrateBackpressure: a full queue answers 429 with a
// Retry-After hint. The database is created out-of-band so no drainer
// runs and the queue fills deterministically.
func TestAsyncIntegrateBackpressure(t *testing.T) {
	const depth = 2
	ts, cat := newIngestServer(t, depth)
	if _, err := cat.Create("q"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < depth; i++ {
		doJSON(t, "POST", ts.URL+"/dbs/q/integrate?async=1", "application/xml",
			strings.NewReader(bookB), http.StatusAccepted, nil)
	}
	resp, err := http.Post(ts.URL+"/dbs/q/integrate?async=1", "application/xml", strings.NewReader(bookB))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status over capacity = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
}

func TestAsyncIntegrateDisabled(t *testing.T) {
	ts, _ := newIngestServer(t, 0)
	doJSON(t, "POST", ts.URL+"/dbs", "application/json",
		strings.NewReader(`{"name":"x"}`), http.StatusCreated, nil)
	resp, err := http.Post(ts.URL+"/dbs/x/integrate?async=1", "application/xml", strings.NewReader(bookB))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status with queue disabled = %d, want 503", resp.StatusCode)
	}
}

func TestAsyncIntegrateRejectsReplaceMode(t *testing.T) {
	ts, _ := newIngestServer(t, 4)
	doJSON(t, "POST", ts.URL+"/dbs", "application/json",
		strings.NewReader(`{"name":"x"}`), http.StatusCreated, nil)
	resp, err := http.Post(ts.URL+"/dbs/x/integrate?async=1&mode=replace", "application/xml", strings.NewReader(bookB))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("async replace = %d, want 400", resp.StatusCode)
	}
}

func TestIngestTicketUnknown(t *testing.T) {
	ts, _ := newIngestServer(t, 4)
	doJSON(t, "POST", ts.URL+"/dbs", "application/json",
		strings.NewReader(`{"name":"x"}`), http.StatusCreated, nil)
	resp, err := http.Get(ts.URL + "/dbs/x/ingest/t999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ticket = %d, want 404", resp.StatusCode)
	}
}

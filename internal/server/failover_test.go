package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/pxml"
	"repro/internal/replica"
)

// fastReplicaOptions tunes the follower loops for test latency.
func fastReplicaOptions(primary string) replica.Options {
	return replica.Options{
		Primary:         primary,
		Catalog:         catalog.Options{RootTag: "addressbook"},
		PollWait:        100 * time.Millisecond,
		MembershipEvery: 20 * time.Millisecond,
		MinBackoff:      10 * time.Millisecond,
		MaxBackoff:      100 * time.Millisecond,
	}
}

// postJSON posts a JSON (or XML) body and returns status plus body.
func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp.StatusCode, data
}

// failoverOps are the committed operations of the fault-injection run:
// distinguishable integrations plus a feedback judgment, so the replayed
// history exercises more than one op kind.
var failoverOps = []string{abookA, abookB, abookC,
	`<addressbook><person><nm>Rita</nm><tel>4444</tel></person></addressbook>`,
}

// TestFailoverPromoteAtEveryOpBoundary is the fault-injection property
// test: for EVERY op boundary k, the primary commits ops 1..k, the
// follower converges, the primary is killed, and the follower is
// promoted. The promoted node must hold exactly the committed prefix —
// no op lost, none doubled: same sequence number, a pxml.Equal tree,
// identical world count, and identical history lengths. It must then
// accept the remaining ops as the new primary, stamped with the raised
// epoch.
func TestFailoverPromoteAtEveryOpBoundary(t *testing.T) {
	for k := 0; k <= len(failoverOps); k++ {
		k := k
		t.Run(fmt.Sprintf("killed-after-%d-ops", k), func(t *testing.T) {
			t.Parallel()
			cat, ts := newPrimaryServer(t, catalog.Options{})
			pdb, err := cat.Get("x")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < k; i++ {
				if _, err := pdb.Core().IntegrateXMLString(failoverOps[i]); err != nil {
					t.Fatal(err)
				}
			}
			wantTree := pdb.Core().Tree()
			wantIntegrations := len(pdb.Core().IntegrationHistory())
			wantFeedback := len(pdb.Core().FeedbackHistory())

			rep, err := replica.Open(t.TempDir(), fastReplicaOptions(ts.URL))
			if err != nil {
				t.Fatal(err)
			}
			defer rep.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := rep.WaitCaughtUp(ctx); err != nil {
				t.Fatal(err)
			}
			srv := NewReplica(rep, Options{})
			defer srv.Close() // stop the post-promotion fencer goroutine
			rts := httptest.NewServer(srv.Handler())
			defer rts.Close()

			// Kill the primary: its listener dies mid-cluster, no clean
			// shutdown, no final handoff.
			ts.Close()

			status, body := postJSON(t, rts.URL+"/promote", `{}`)
			if status != http.StatusOK {
				t.Fatalf("promote: status %d: %s", status, body)
			}
			var pr PromoteResponse
			if err := json.Unmarshal(body, &pr); err != nil {
				t.Fatal(err)
			}
			if pr.Role != "primary" || pr.Epoch != 1 {
				t.Fatalf("promote response = %+v, want role primary epoch 1", pr)
			}

			fdb, err := rep.Catalog().Get("x")
			if err != nil {
				t.Fatal(err)
			}
			// No committed op lost, none doubled.
			if got := fdb.LastSeq(); got != uint64(k) {
				t.Fatalf("promoted node at seq %d, want exactly %d", got, k)
			}
			ftree := fdb.Core().Tree()
			if !pxml.Equal(ftree.Root(), wantTree.Root()) {
				t.Fatal("promoted tree is not pxml.Equal to the killed primary's")
			}
			if ftree.WorldCount().Cmp(wantTree.WorldCount()) != 0 {
				t.Fatalf("world counts differ: primary %s, promoted %s", wantTree.WorldCount(), ftree.WorldCount())
			}
			if got := len(fdb.Core().IntegrationHistory()); got != wantIntegrations {
				t.Fatalf("integration history: %d entries, want %d", got, wantIntegrations)
			}
			if got := len(fdb.Core().FeedbackHistory()); got != wantFeedback {
				t.Fatalf("feedback history: %d entries, want %d", got, wantFeedback)
			}
			if fdb.Epoch() != 1 {
				t.Fatalf("promoted db at epoch %d, want 1", fdb.Epoch())
			}

			// The promoted node is a real primary: the remaining ops land
			// over HTTP and are committed under the new epoch.
			for i := k; i < len(failoverOps); i++ {
				status, body := postJSON(t, rts.URL+"/dbs/x/integrate", failoverOps[i])
				if status != http.StatusOK {
					t.Fatalf("integrate op %d on promoted node: status %d: %s", i+1, status, body)
				}
			}
			if got := fdb.LastSeq(); got != uint64(len(failoverOps)) {
				t.Fatalf("after continuing: seq %d, want %d", got, len(failoverOps))
			}
			if k < len(failoverOps) {
				recs, err := fdb.OpsSince(uint64(k), len(failoverOps))
				if err != nil {
					t.Fatal(err)
				}
				for _, rec := range recs {
					if rec.Epoch != 1 {
						t.Fatalf("post-promotion record %d at epoch %d, want 1", rec.Seq, rec.Epoch)
					}
				}
			}
		})
	}
}

// swapHandler is an http.Handler whose target can be replaced at
// runtime, giving a "node" a stable URL across crash and restart.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) swap(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

var downHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "node down", http.StatusBadGateway)
})

// TestSplitBrainDeposedPrimaryFenced is the split-brain regression: the
// old primary crashes, a replica is promoted, then the old primary
// restarts at its old address still believing it leads. Its stale ships
// must be rejected with ErrStaleEpoch, the promotion fence must demote
// it, and a client writing to it must be redirected (403 + primary) to
// the new primary.
func TestSplitBrainDeposedPrimaryFenced(t *testing.T) {
	dirA := t.TempDir()
	catA, err := catalog.Open(dirA, catalog.Options{RootTag: "addressbook"})
	if err != nil {
		t.Fatal(err)
	}
	sw := &swapHandler{h: NewCatalog(catA, Options{}).Handler()}
	tsA := httptest.NewServer(sw)
	defer tsA.Close()
	dbA, err := catA.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dbA.Core().IntegrateXMLString(abookA); err != nil {
		t.Fatal(err)
	}

	rep, err := replica.Open(t.TempDir(), fastReplicaOptions(tsA.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rep.WaitCaughtUp(ctx); err != nil {
		t.Fatal(err)
	}
	srv := NewReplica(rep, Options{})
	defer srv.Close() // stop the fencer goroutine
	rts := httptest.NewServer(srv.Handler())
	defer rts.Close()

	// A crashes (stable URL now refuses work) and B is promoted. The
	// fence can't be delivered yet — A is down — so it keeps retrying in
	// the background.
	sw.swap(downHandler)
	if err := catA.Close(); err != nil {
		t.Fatal(err)
	}
	status, body := postJSON(t, rts.URL+"/promote", fmt.Sprintf(`{"advertise_url":%q}`, rts.URL))
	if status != http.StatusOK {
		t.Fatalf("promote: status %d: %s", status, body)
	}
	// Promote is idempotent: a retry reports the standing epoch.
	status, body = postJSON(t, rts.URL+"/promote", `{}`)
	var again PromoteResponse
	if status != http.StatusOK || json.Unmarshal(body, &again) != nil || again.Epoch != 1 {
		t.Fatalf("re-promote: status %d body %s, want epoch 1", status, body)
	}
	// The new primary commits past the old one.
	if status, body := postJSON(t, rts.URL+"/dbs/x/integrate", abookB); status != http.StatusOK {
		t.Fatalf("write on promoted node: status %d: %s", status, body)
	}

	// A restarts from its own disk at the same address, recovering as a
	// primary at the old epoch — classic split brain. It even accepts a
	// divergent local write.
	catA2, err := catalog.Open(dirA, catalog.Options{RootTag: "addressbook"})
	if err != nil {
		t.Fatal(err)
	}
	defer catA2.Close()
	dbA2, err := catA2.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	// Two divergent local writes: A moves to seq 3 while B sits at seq 2,
	// so A's tail holds a sequence number B has never seen.
	if _, err := dbA2.Core().IntegrateXMLString(abookC); err != nil {
		t.Fatal(err)
	}
	if _, err := dbA2.Core().IntegrateXMLString(abookA); err != nil {
		t.Fatal(err)
	}
	sw.swap(NewCatalog(catA2, Options{}).Handler())

	// The deposed primary's ship is live wire data from its /wal — and
	// the promoted node rejects it with ErrStaleEpoch: a fresh sequence
	// number claimed under a stale term.
	var page replica.WALPage
	getJSON(t, tsA.URL+"/dbs/x/wal?since=2", http.StatusOK, &page)
	if page.Epoch != 0 || len(page.Records) != 1 {
		t.Fatalf("stale primary page = epoch %d, %d record(s); want epoch 0, 1 record", page.Epoch, len(page.Records))
	}
	fdb, err := rep.Catalog().Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fdb.ApplyReplicated(page.Records[0]); !errors.Is(err, catalog.ErrStaleEpoch) {
		t.Fatalf("stale ship: err = %v, want ErrStaleEpoch", err)
	}

	// The promotion fence finds the restarted node and demotes it.
	deadline := time.Now().Add(30 * time.Second)
	var ps replica.PrimaryStatus
	for {
		getJSON(t, tsA.URL+"/replication", http.StatusOK, &ps)
		if ps.Role == "demoted" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old primary never demoted: %+v", ps)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if ps.Primary != rts.URL {
		t.Fatalf("demoted primary points at %q, want %q", ps.Primary, rts.URL)
	}
	if ps.Epoch != 0 {
		t.Fatalf("demoted primary at epoch %d, want 0 (kept, so its records stay detectably stale)", ps.Epoch)
	}

	// A client still writing to the old address is turned away with the
	// new primary's location — and following it succeeds.
	resp, err := http.Post(tsA.URL+"/dbs/x/integrate", "application/xml", bytes.NewReader([]byte(abookC)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("write to demoted primary: status %d, want 403; body %s", resp.StatusCode, raw)
	}
	var redirect struct {
		Primary string `json:"primary"`
	}
	if err := json.Unmarshal(raw, &redirect); err != nil || redirect.Primary == "" {
		t.Fatalf("403 body carries no primary: %s", raw)
	}
	if status, body := postJSON(t, redirect.Primary+"/dbs/x/integrate", abookC); status != http.StatusOK {
		t.Fatalf("redirected write: status %d: %s", status, body)
	}
	if got := fdb.LastSeq(); got != 3 {
		t.Fatalf("new primary at seq %d, want 3", got)
	}

	// Proof the fence held: everything the promoted node committed past
	// the shared prefix is its own (epoch 1); A's divergent op never
	// leaked in.
	recs, err := fdb.OpsSince(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Epoch != 1 {
			t.Fatalf("post-promotion record %d at epoch %d, want 1", rec.Seq, rec.Epoch)
		}
	}
}

package server_test

import (
	"net/http"
	"net/url"
	"testing"

	"repro/internal/server"
)

// TestQueryMethodParameter drives the method= parameter end to end: the
// default is the planner's auto choice, explicit methods are honored, and
// every method returns the same answer set on the Figure-2 document.
func TestQueryMethodParameter(t *testing.T) {
	ts, _ := newTestServer(t)
	integrateB(t, ts)
	q := url.QueryEscape(`//person[nm="John"]/tel`)

	var auto server.QueryResponse
	doJSON(t, "GET", ts.URL+"/query?q="+q, "", nil, http.StatusOK, &auto)
	if auto.Method == "" || auto.Method == "auto" {
		t.Fatalf("auto query reports method %q, want the resolved strategy", auto.Method)
	}

	for _, m := range []string{"auto", "exact", "enumerate", "sample"} {
		var resp server.QueryResponse
		doJSON(t, "GET", ts.URL+"/query?q="+q+"&method="+m, "", nil, http.StatusOK, &resp)
		if len(resp.Answers) != len(auto.Answers) {
			t.Fatalf("method %s: %d answers, auto had %d", m, len(resp.Answers), len(auto.Answers))
		}
		if m != "auto" && resp.Method != m {
			t.Fatalf("method %s: response says %q", m, resp.Method)
		}
	}
}

// TestQueryExplainParameter checks explain=1 attaches the evaluation plan
// and that the plan agrees with the executed method.
func TestQueryExplainParameter(t *testing.T) {
	ts, _ := newTestServer(t)
	integrateB(t, ts)
	q := url.QueryEscape(`//person[nm="John"]/tel`)

	var plain server.QueryResponse
	doJSON(t, "GET", ts.URL+"/query?q="+q, "", nil, http.StatusOK, &plain)
	if plain.Plan != nil {
		t.Fatalf("plan attached without explain=1")
	}

	var explained server.QueryResponse
	doJSON(t, "GET", ts.URL+"/query?q="+q+"&explain=1", "", nil, http.StatusOK, &explained)
	if explained.Plan == nil {
		t.Fatal("explain=1 returned no plan")
	}
	if string(explained.Plan.Method) != explained.Method {
		t.Fatalf("plan method %q != response method %q", explained.Plan.Method, explained.Method)
	}
	if !explained.Plan.Indexed {
		t.Fatal("server-side evaluation should be indexed")
	}
	if explained.Plan.Reason == "" || explained.Plan.EstimatedWorlds == "" {
		t.Fatalf("plan not explainable: %+v", explained.Plan)
	}

	// The second identical query must be served from the result cache.
	var cached server.QueryResponse
	doJSON(t, "GET", ts.URL+"/query?q="+q+"&explain=1", "", nil, http.StatusOK, &cached)
	if cached.Plan == nil || !cached.Plan.CacheHit {
		t.Fatalf("repeat query not served from the result cache: %+v", cached.Plan)
	}
}

// TestQueryParameterValidation pins the 400 contract for the new
// parameters: negative samples, unknown methods, bad explain values.
func TestQueryParameterValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	q := url.QueryEscape(`//person/nm`)
	for _, bad := range []string{
		"&samples=-5",
		"&samples=abc",
		"&method=fuzzy",
		"&explain=maybe",
	} {
		var apiErr struct {
			Error string `json:"error"`
		}
		doJSON(t, "GET", ts.URL+"/query?q="+q+bad, "", nil, http.StatusBadRequest, &apiErr)
		if apiErr.Error == "" {
			t.Fatalf("parameter %q: empty error body", bad)
		}
	}
}

// TestStatsIndexAndResultCache checks /stats surfaces index build work
// and result-cache hit rates.
func TestStatsIndexAndResultCache(t *testing.T) {
	ts, _ := newTestServer(t)
	integrateB(t, ts)
	q := url.QueryEscape(`//person[nm="John"]/tel`)
	var qr server.QueryResponse
	doJSON(t, "GET", ts.URL+"/query?q="+q, "", nil, http.StatusOK, &qr)
	doJSON(t, "GET", ts.URL+"/query?q="+q, "", nil, http.StatusOK, &qr)

	var st server.StatsResponse
	doJSON(t, "GET", ts.URL+"/stats", "", nil, http.StatusOK, &st)
	// Open built one index, the integrate swap another.
	if st.Index.Builds < 2 {
		t.Fatalf("index builds = %d, want >= 2", st.Index.Builds)
	}
	if st.Index.Tags == 0 || st.Index.Elements == 0 {
		t.Fatalf("index stats empty: %+v", st.Index)
	}
	if st.ResultCache.Hits < 1 || st.ResultCache.Misses < 1 {
		t.Fatalf("result cache counters = %+v, want at least one hit and one miss", st.ResultCache)
	}
	if st.ResultCache.Capacity == 0 {
		t.Fatalf("result cache capacity missing: %+v", st.ResultCache)
	}
}

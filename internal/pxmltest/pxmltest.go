// Package pxmltest provides shared fixtures and random document generators
// for testing the probabilistic XML machinery. It is imported only from
// tests, but lives as a regular package so that every test package can use
// the same generators.
package pxmltest

import (
	"math/rand"

	"repro/internal/pxml"
)

// Fig2Tree reproduces the paper's Figure 2: the integration of two address
// books, both containing a person named John, with phone numbers 1111 and
// 2222 respectively. It represents exactly three possible worlds:
//
//	p=0.3  one John with phone 1111
//	p=0.3  one John with phone 2222
//	p=0.4  two Johns, one with each phone
//
// (The paper draws the tree without committing to probabilities; the split
// used here keeps all three worlds distinguishable in tests.)
func Fig2Tree() *pxml.Tree {
	nm := func() *pxml.Node { return pxml.NewLeaf("nm", "John") }
	tel := func(v string) *pxml.Node { return pxml.NewLeaf("tel", v) }

	mergedPerson := pxml.NewElem("person", "",
		pxml.Certain(nm()),
		pxml.NewProb(
			pxml.NewPoss(0.5, tel("1111")),
			pxml.NewPoss(0.5, tel("2222")),
		),
	)
	separate1 := pxml.NewElem("person", "", pxml.Certain(nm()), pxml.Certain(tel("1111")))
	separate2 := pxml.NewElem("person", "", pxml.Certain(nm()), pxml.Certain(tel("2222")))

	book := pxml.NewElem("addressbook", "",
		pxml.NewProb(
			pxml.NewPoss(0.6, mergedPerson),
			pxml.NewPoss(0.4, separate1, separate2),
		),
	)
	return pxml.CertainTree(book)
}

// GenConfig bounds the shape of randomly generated documents.
type GenConfig struct {
	MaxDepth      int // element nesting depth
	MaxChoices    int // choice points per element
	MaxAlts       int // alternatives per choice point
	MaxElems      int // elements per alternative
	AllowEmptyAlt bool
}

// DefaultGenConfig keeps world counts small enough for exhaustive
// enumeration in property tests.
func DefaultGenConfig() GenConfig {
	return GenConfig{MaxDepth: 3, MaxChoices: 2, MaxAlts: 3, MaxElems: 2, AllowEmptyAlt: true}
}

var genTags = []string{"a", "b", "c", "movie", "title"}
var genTexts = []string{"", "x", "y", "John", "1111"}

// RandomTree generates a random valid probabilistic document. The same rng
// seed yields the same document.
func RandomTree(rng *rand.Rand, cfg GenConfig) *pxml.Tree {
	root := randomElem(rng, cfg, cfg.MaxDepth)
	return pxml.CertainTree(root)
}

func randomElem(rng *rand.Rand, cfg GenConfig, depth int) *pxml.Node {
	tag := genTags[rng.Intn(len(genTags))]
	text := genTexts[rng.Intn(len(genTexts))]
	if depth <= 0 {
		return pxml.NewLeaf(tag, text)
	}
	nChoices := rng.Intn(cfg.MaxChoices + 1)
	kids := make([]*pxml.Node, 0, nChoices)
	for i := 0; i < nChoices; i++ {
		kids = append(kids, randomProb(rng, cfg, depth-1))
	}
	return pxml.NewElem(tag, text, kids...)
}

func randomProb(rng *rand.Rand, cfg GenConfig, depth int) *pxml.Node {
	nAlts := 1 + rng.Intn(cfg.MaxAlts)
	weights := make([]float64, nAlts)
	sum := 0.0
	for i := range weights {
		weights[i] = 0.05 + rng.Float64()
		sum += weights[i]
	}
	poss := make([]*pxml.Node, nAlts)
	for i := range poss {
		minElems := 1
		if cfg.AllowEmptyAlt {
			minElems = 0
		}
		n := minElems
		if cfg.MaxElems > minElems {
			n += rng.Intn(cfg.MaxElems - minElems + 1)
		}
		elems := make([]*pxml.Node, n)
		for j := range elems {
			elems[j] = randomElem(rng, cfg, depth-1)
		}
		poss[i] = pxml.NewPoss(weights[i]/sum, elems...)
	}
	return pxml.NewProb(poss...)
}

// RandomCertainElem generates a random certain element tree (every choice
// point trivial), useful for integration tests on plain documents.
func RandomCertainElem(rng *rand.Rand, depth, fanout int) *pxml.Node {
	tag := genTags[rng.Intn(len(genTags))]
	if depth <= 0 {
		return pxml.NewLeaf(tag, genTexts[rng.Intn(len(genTexts))])
	}
	n := rng.Intn(fanout + 1)
	if n == 0 {
		return pxml.NewLeaf(tag, genTexts[rng.Intn(len(genTexts))])
	}
	kids := make([]*pxml.Node, n)
	for i := range kids {
		kids[i] = pxml.Certain(RandomCertainElem(rng, depth-1, fanout))
	}
	return pxml.NewElem(tag, "", kids...)
}

package integrate

import (
	"fmt"

	"repro/internal/pxml"
)

// matching is one consistent set of chosen edges with its prior weight.
type matching struct {
	chosen []int // indices into component.edges
	w      float64
}

// buildChoice turns one candidate component into a probability node whose
// alternatives are the component's consistent matchings (expanded over
// value-conflict variants of merged pairs), weighted and normalized.
// budget caps the per-tag item counts (nil = unconstrained).
func (it *integrator) buildChoice(c component, certA, certB []*pxml.Node, budget map[string]int) (*pxml.Node, error) {
	matchings, truncated, err := it.enumerateMatchings(c)
	if err != nil {
		return nil, err
	}
	if truncated {
		it.stats.truncatedComponents.Add(1)
	}
	it.stats.matchingsEnumerated.Add(int64(len(matchings)))

	// DTD pruning: a matching that leaves too many same-tag items in the
	// merged element, even under best-case choices elsewhere, is rejected.
	var kept []matching
	anyDTDPruned := false
	for _, m := range matchings {
		if it.violatesBudget(c, m, certA, certB, budget) {
			it.stats.matchingsPruned.Add(1)
			anyDTDPruned = true
			continue
		}
		kept = append(kept, m)
	}
	if len(kept) == 0 {
		if anyDTDPruned {
			return nil, fmt.Errorf("%w: schema rejects every matching of the <%s> group", ErrIncompatible, componentTag(c, certA))
		}
		return nil, fmt.Errorf("%w: in the <%s> group", ErrMustConflict, componentTag(c, certA))
	}

	// Fan out the recursive pair merges: every distinct pair matched by
	// any kept matching is computed (and memoized) up front, so the
	// expansion below only ever reads settled memo entries. Sequential
	// mode runs the same prefetch inline, which keeps the set of merges
	// performed — and therefore the Stats — identical across worker
	// counts.
	type pairKey struct{ i, j int }
	prefetched := make(map[pairKey]bool)
	var mergeTasks []func()
	for _, m := range kept {
		for _, ei := range m.chosen {
			e := c.edges[ei]
			k := pairKey{e.i, e.j}
			if prefetched[k] {
				continue
			}
			prefetched[k] = true
			xa, yb := certA[e.i], certB[e.j]
			mergeTasks = append(mergeTasks, func() { _, _ = it.mergePair(xa, yb) })
		}
	}
	it.pool.runAll(mergeTasks)

	// Expand matchings into possibilities. A matched pair may have several
	// merged variants (value conflicts); the cartesian product over pairs
	// multiplies out inside the matching's weight. Pairs that turn out to
	// be unmergeable (recursive schema violations) invalidate the matching.
	type possibility struct {
		elems []*pxml.Node
		w     float64
	}
	var poss []possibility
	total := 0.0
	anyIncompatible := false
	maxAlts := it.cfg.maxAlternatives()
	for _, m := range kept {
		matchedA := map[int]int{} // A index -> B index
		usedB := map[int]bool{}
		for _, ei := range m.chosen {
			matchedA[c.edges[ei].i] = c.edges[ei].j
			usedB[c.edges[ei].j] = true
		}
		// Build slots in deterministic order: A members first (merged or
		// original), then unmatched B members.
		type slot struct {
			fixed *pxml.Node
			alts  []weightedElem
		}
		slots := make([]slot, 0, len(c.aIdx)+len(c.bIdx))
		incompatible := false
		for _, i := range c.aIdx {
			if j, ok := matchedA[i]; ok {
				alts, err := it.mergePair(certA[i], certB[j])
				if err != nil {
					incompatible = true
					break
				}
				slots = append(slots, slot{alts: alts})
				continue
			}
			slots = append(slots, slot{fixed: certA[i]})
		}
		if incompatible {
			anyIncompatible = true
			it.stats.matchingsPruned.Add(1)
			continue
		}
		for _, j := range c.bIdx {
			if !usedB[j] {
				slots = append(slots, slot{fixed: certB[j]})
			}
		}
		// Cartesian expansion over slot alternatives.
		elems := make([]*pxml.Node, len(slots))
		var expand func(si int, w float64) error
		expand = func(si int, w float64) error {
			if si == len(slots) {
				if len(poss)+1 > maxAlts {
					return fmt.Errorf("%w: more than %d alternatives in the <%s> group",
						ErrExplosion, maxAlts, componentTag(c, certA))
				}
				cp := make([]*pxml.Node, len(elems))
				copy(cp, elems)
				poss = append(poss, possibility{elems: cp, w: w})
				total += w
				return nil
			}
			s := slots[si]
			if s.fixed != nil {
				elems[si] = s.fixed
				return expand(si+1, w)
			}
			for _, alt := range s.alts {
				elems[si] = alt.elem
				if err := expand(si+1, w*alt.w); err != nil {
					return err
				}
			}
			return nil
		}
		if err := expand(0, m.w); err != nil {
			if it.cfg.TruncateOnExplosion {
				it.stats.truncatedComponents.Add(1)
				break
			}
			return nil, err
		}
	}
	if len(poss) == 0 || total <= 0 {
		if anyIncompatible {
			return nil, fmt.Errorf("%w: every matching of the <%s> group fails recursively", ErrIncompatible, componentTag(c, certA))
		}
		return nil, fmt.Errorf("%w: in the <%s> group", ErrMustConflict, componentTag(c, certA))
	}
	it.stats.possibilitiesBuilt.Add(int64(len(poss)))
	nodes := make([]*pxml.Node, len(poss))
	for i, p := range poss {
		nodes[i] = pxml.NewPoss(p.w/total, p.elems...)
	}
	return pxml.NewProb(nodes...), nil
}

func componentTag(c component, certA []*pxml.Node) string {
	if len(c.aIdx) > 0 {
		return certA[c.aIdx[0]].Tag()
	}
	return "?"
}

// violatesBudget reports whether the matching's item counts exceed the
// component's per-tag budget.
func (it *integrator) violatesBudget(c component, m matching, certA, certB []*pxml.Node, budget map[string]int) bool {
	if budget == nil {
		return false
	}
	matchedPerTag := map[string]int{}
	for _, ei := range m.chosen {
		matchedPerTag[certA[c.edges[ei].i].Tag()]++
	}
	countPerTag := map[string]int{}
	for _, i := range c.aIdx {
		countPerTag[certA[i].Tag()]++
	}
	for _, j := range c.bIdx {
		countPerTag[certB[j].Tag()]++
	}
	for tag, allowed := range budget {
		items := countPerTag[tag] - matchedPerTag[tag]
		if items > allowed {
			return true
		}
	}
	return false
}

// enumerateMatchings lists every injective matching of the component's
// edges with weight Π_{e∈M} p(e) · Π_{e∉M} (1−p(e)), skipping zero-weight
// branches (a must edge left out). The empty matching is included (unless
// a must edge forces otherwise). Enumeration order is deterministic.
func (it *integrator) enumerateMatchings(c component) ([]matching, bool, error) {
	maxM := it.cfg.maxMatchings()
	var out []matching
	usedA := map[int]bool{}
	usedB := map[int]bool{}
	chosen := make([]int, 0, len(c.edges))
	truncated := false
	var rec func(ei int, w float64) error
	rec = func(ei int, w float64) error {
		if truncated {
			return nil
		}
		if ei == len(c.edges) {
			if len(out) >= maxM {
				if it.cfg.TruncateOnExplosion {
					truncated = true
					return nil
				}
				return fmt.Errorf("%w: component with %d edges exceeds %d matchings",
					ErrExplosion, len(c.edges), maxM)
			}
			cp := make([]int, len(chosen))
			copy(cp, chosen)
			out = append(out, matching{chosen: cp, w: w})
			return nil
		}
		e := c.edges[ei]
		// Include the edge if both endpoints are free.
		if !usedA[e.i] && !usedB[e.j] && e.p > 0 {
			usedA[e.i], usedB[e.j] = true, true
			chosen = append(chosen, ei)
			if err := rec(ei+1, w*e.p); err != nil {
				return err
			}
			chosen = chosen[:len(chosen)-1]
			usedA[e.i], usedB[e.j] = false, false
		}
		// Exclude the edge. A must edge contributes factor (1−1) = 0 when
		// excluded — a world in which deep-equal elements are distinct
		// rwos is impossible — so that branch is pruned outright.
		if e.must {
			return nil
		}
		return rec(ei+1, w*(1-e.p))
	}
	if err := rec(0, 1); err != nil {
		return nil, false, err
	}
	return out, truncated, nil
}

// Package integrate implements IMPrECISE's probabilistic data integration
// (paper §III): merging two XML documents into one probabilistic XML
// document that compactly represents every way their elements could refer
// to the same real-world objects (rwos).
//
// The process is recursive, starting from the roots of both sources. For
// each matched element pair the child sequences are integrated: "The
// Oracle" (package oracle) classifies every cross-source same-tag child
// pair as must-match, cannot-match or unknown; undecided pairs give rise to
// choice points enumerating all consistent matchings. DTD knowledge
// (package dtd) rejects impossible possibilities — e.g. a merged person
// keeping two phone numbers when the schema allows one — which is how the
// paper's Figure 2 result arises.
//
// Two structural properties keep the representation compact:
//
//   - The generic rule "no two siblings in one source refer to the same
//     rwo" restricts candidates to cross-source pairs.
//   - Independent groups of match decisions (connected components of the
//     candidate graph) become separate sibling choice points, so the node
//     count adds across groups while the world count multiplies — the
//     paper's argument for reporting #nodes rather than #worlds.
package integrate

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/dtd"
	"repro/internal/oracle"
	"repro/internal/pxml"
)

// ErrIncompatible is returned (wrapped) when two documents or elements
// cannot be integrated in any possible world, e.g. because the DTD rejects
// every matching of some mandatory-unique field.
var ErrIncompatible = errors.New("integrate: elements cannot be integrated in any world")

// ErrExplosion is returned (wrapped) when a component exceeds the
// configured matching or alternative budget and truncation is disabled.
var ErrExplosion = errors.New("integrate: possibility explosion exceeds configured budget")

// ErrMustConflict is returned (wrapped) when must-match decisions are
// mutually inconsistent (one element must-matches two siblings).
var ErrMustConflict = errors.New("integrate: conflicting must-match decisions")

// Config controls an integration run.
type Config struct {
	// Oracle decides element pair matches. Required.
	Oracle *oracle.Oracle
	// Schema provides cardinality knowledge for possibility reduction.
	// Optional; nil means no schema pruning.
	Schema *dtd.Schema
	// WeightA is the relative trust in source A when a matched pair has
	// conflicting text values; the A value gets probability WeightA and
	// the B value 1−WeightA. It must lie in the half-open interval (0,1]
	// — 1 means full trust in source A — or be zero, which means the
	// default 0.5. Integrate rejects negative or >1 weights.
	WeightA float64
	// Workers bounds the goroutines used to fan out component matching
	// enumeration and pair merges. Zero means runtime.GOMAXPROCS(0); 1
	// (or less) integrates sequentially. The result tree and Stats are
	// identical for every worker count.
	Workers int
	// MaxMatchingsPerComponent bounds the matchings enumerated for one
	// candidate component. Zero means the default (200000).
	MaxMatchingsPerComponent int
	// MaxAlternativesPerChoice bounds the possibility count of one choice
	// point after value-conflict expansion. Zero means the default
	// (1000000).
	MaxAlternativesPerChoice int
	// TruncateOnExplosion keeps the matchings enumerated so far (plus
	// renormalization) instead of failing when a budget is exceeded.
	TruncateOnExplosion bool
	// SkipNormalize leaves the raw integration result unnormalized
	// (duplicate alternatives unmerged). Mainly for diagnostics.
	SkipNormalize bool
	// DisableComponentFactorization turns off the independence
	// optimization and integrates each child tag group as a single
	// component. Exists for the ablation experiment (DESIGN E8); never
	// use it otherwise.
	DisableComponentFactorization bool
	// Memo, when non-nil, carries verdicts and pair merges across
	// integrations (see Memo). The result tree is pxml.Equal to a
	// memo-less (cold) run; only the per-call Stats change shape — work
	// served from the memo is counted in VerdictMemoHits/MergeMemoHits
	// instead of the compute counters. The caller owns invalidation
	// (Memo.Purge) and must not share one Memo across databases with
	// different oracles, schemas or trust weights.
	Memo *Memo
}

const (
	defaultMaxMatchings    = 200000
	defaultMaxAlternatives = 1000000
)

func (c Config) maxMatchings() int {
	if c.MaxMatchingsPerComponent > 0 {
		return c.MaxMatchingsPerComponent
	}
	return defaultMaxMatchings
}

func (c Config) maxAlternatives() int {
	if c.MaxAlternativesPerChoice > 0 {
		return c.MaxAlternativesPerChoice
	}
	return defaultMaxAlternatives
}

func (c Config) weightA() float64 {
	if c.WeightA > 0 {
		return c.WeightA
	}
	return 0.5
}

func (c Config) workers() int {
	switch {
	case c.Workers == 0:
		return runtime.GOMAXPROCS(0)
	case c.Workers < 1:
		return 1
	}
	return c.Workers
}

// Stats reports what the integration did; the paper's Table I and Figure 5
// are computed from the node counts of the result plus these counters.
type Stats struct {
	OracleCalls    int // distinct pairs put to the Oracle
	MustPairs      int // pairs decided must-match
	CannotPairs    int // pairs decided cannot-match
	UndecidedPairs int // pairs the Oracle could not decide absolutely

	Components          int // candidate components (choice points created)
	LargestComponent    int // edges in the largest component
	MatchingsEnumerated int // total matchings across components
	MatchingsPruned     int // matchings rejected by DTD knowledge
	PossibilitiesBuilt  int // alternatives after value-conflict expansion
	IncompatibleMerges  int // pair merges rejected recursively
	TruncatedComponents int // components cut off by budget (truncate mode)
	ValueConflicts      int // matched leaf pairs with conflicting text

	// VerdictMemoHits and MergeMemoHits count distinct pairs this call
	// resolved from the cross-call memo (Config.Memo) instead of
	// computing. The compute counters above only count work actually
	// performed by this call, so a memo hit never double-counts
	// OracleCalls or MatchingsEnumerated.
	VerdictMemoHits int
	MergeMemoHits   int
	// SplicedChildren counts certain child elements carried into the
	// result verbatim because the other source had no candidate for them
	// — the delta-integration path that makes a small source cost time
	// proportional to what it touches.
	SplicedChildren int
}

// Merge folds another run's counters into s — summing, with
// LargestComponent as a watermark — for callers aggregating the stats of
// a multi-source batch.
func (s *Stats) Merge(o Stats) {
	s.OracleCalls += o.OracleCalls
	s.MustPairs += o.MustPairs
	s.CannotPairs += o.CannotPairs
	s.UndecidedPairs += o.UndecidedPairs
	s.Components += o.Components
	if o.LargestComponent > s.LargestComponent {
		s.LargestComponent = o.LargestComponent
	}
	s.MatchingsEnumerated += o.MatchingsEnumerated
	s.MatchingsPruned += o.MatchingsPruned
	s.PossibilitiesBuilt += o.PossibilitiesBuilt
	s.IncompatibleMerges += o.IncompatibleMerges
	s.TruncatedComponents += o.TruncatedComponents
	s.ValueConflicts += o.ValueConflicts
	s.VerdictMemoHits += o.VerdictMemoHits
	s.MergeMemoHits += o.MergeMemoHits
	s.SplicedChildren += o.SplicedChildren
}

// Integrate merges two documents into one probabilistic document. Both
// inputs must have a certain root element with the same tag (the paper
// assumes schemas are already aligned). The inputs are not modified;
// subtrees of the inputs are shared into the result.
func Integrate(a, b *pxml.Tree, cfg Config) (*pxml.Tree, *Stats, error) {
	if cfg.Oracle == nil {
		return nil, nil, errors.New("integrate: Config.Oracle is required")
	}
	if cfg.WeightA < 0 || cfg.WeightA > 1 || math.IsNaN(cfg.WeightA) {
		return nil, nil, fmt.Errorf("integrate: Config.WeightA %g outside (0,1] (0 means the default 0.5)", cfg.WeightA)
	}
	rootA, err := certainRoot(a, "A")
	if err != nil {
		return nil, nil, err
	}
	rootB, err := certainRoot(b, "B")
	if err != nil {
		return nil, nil, err
	}
	if rootA.Tag() != rootB.Tag() {
		return nil, nil, fmt.Errorf("integrate: root tags differ: <%s> vs <%s> (align schemas first)", rootA.Tag(), rootB.Tag())
	}
	cfg.Memo.enforceCap()
	it := &integrator{
		cfg:       cfg,
		mergeMemo: newMemoTable[pair, mergeResult](),
		verdicts:  newMemoTable[pair, verdictResult](),
		shared:    cfg.Memo,
		pool:      newPool(cfg.workers()),
	}
	alts, err := it.mergePair(rootA, rootB)
	if err != nil {
		return nil, nil, fmt.Errorf("integrate: root elements: %w", err)
	}
	poss := make([]*pxml.Node, len(alts))
	for i, alt := range alts {
		poss[i] = pxml.NewPoss(alt.w, alt.elem)
	}
	tree := pxml.MustTree(pxml.NewProb(poss...))
	if !cfg.SkipNormalize {
		tree, err = tree.Normalize()
		if err != nil {
			return nil, nil, fmt.Errorf("integrate: normalize: %w", err)
		}
	}
	stats := it.stats.snapshot()
	return tree, &stats, nil
}

func certainRoot(t *pxml.Tree, label string) (*pxml.Node, error) {
	if t == nil {
		return nil, fmt.Errorf("integrate: source %s is nil", label)
	}
	elems := t.RootElements()
	if len(elems) != 1 {
		return nil, fmt.Errorf("integrate: source %s must have a single certain root element", label)
	}
	return elems[0], nil
}

// pair keys memo tables by the identity of the two source elements.
type pair struct{ a, b *pxml.Node }

// weightedElem is one alternative form of a merged element.
type weightedElem struct {
	elem *pxml.Node
	w    float64
}

type mergeResult struct {
	alts []weightedElem
	err  error
}

type verdictResult struct {
	v   oracle.Verdict
	err error
}

type integrator struct {
	cfg       Config
	stats     atomicStats
	mergeMemo *memoTable[pair, mergeResult]
	verdicts  *memoTable[pair, verdictResult]
	// shared is the optional cross-call memo (Config.Memo). The per-call
	// tables above stay in front of it: they key by pointer (no digest
	// computation on the per-call hot path) and keep the existing
	// guarantee that one call consults each pointer pair exactly once.
	shared *Memo
	pool   *pool
}

// decide consults the Oracle once per distinct pair, across all workers
// and — when a cross-call memo is attached — across integrations.
func (it *integrator) decide(a, b *pxml.Node) (oracle.Verdict, error) {
	r, _ := it.verdicts.do(pair{a, b}, func() verdictResult {
		compute := func() verdictResult {
			v, err := it.cfg.Oracle.Decide(a, b)
			return verdictResult{v: v, err: err}
		}
		var res verdictResult
		computed := true
		if it.shared != nil {
			res, computed = it.shared.verdicts.do(digestPair{a.Summary().Digest, b.Summary().Digest}, compute)
		} else {
			res = compute()
		}
		if !computed {
			// Served from the cross-call memo: the work was accounted by
			// the integration that performed it.
			it.stats.verdictMemoHits.Add(1)
			it.shared.hits.Add(1)
			return res
		}
		if it.shared != nil {
			it.shared.misses.Add(1)
		}
		if res.err != nil {
			return res
		}
		it.stats.oracleCalls.Add(1)
		switch res.v.Decision {
		case oracle.MustMatch:
			it.stats.mustPairs.Add(1)
		case oracle.CannotMatch:
			it.stats.cannotPairs.Add(1)
		default:
			it.stats.undecidedPairs.Add(1)
		}
		return res
	})
	return r.v, r.err
}

// mergePair integrates two elements that are assumed to refer to the same
// rwo. It returns the alternative merged forms (more than one when their
// text values conflict) with weights summing to 1, or ErrIncompatible when
// no world allows the merge. Results are memoized so a pair merged in many
// matchings is computed — and allocated — once, and its subtree shared;
// under parallel integration the memo also guarantees racing workers get
// the one result computed by whichever arrived first.
func (it *integrator) mergePair(x, y *pxml.Node) ([]weightedElem, error) {
	r, _ := it.mergeMemo.do(pair{x, y}, func() mergeResult {
		compute := func() mergeResult {
			alts, err := it.mergePairUncached(x, y)
			return mergeResult{alts: alts, err: err}
		}
		var res mergeResult
		computed := true
		if it.shared != nil {
			res, computed = it.shared.merges.do(digestPair{x.Summary().Digest, y.Summary().Digest}, compute)
		} else {
			res = compute()
		}
		if !computed {
			// The cached subtree (built by an earlier integration) is
			// shared into this result; none of its construction work is
			// re-counted in this call's stats.
			it.stats.mergeMemoHits.Add(1)
			it.shared.hits.Add(1)
			return res
		}
		if it.shared != nil {
			it.shared.misses.Add(1)
		}
		if res.err != nil && errors.Is(res.err, ErrIncompatible) {
			it.stats.incompatibleMerges.Add(1)
		}
		return res
	})
	return r.alts, r.err
}

func (it *integrator) mergePairUncached(x, y *pxml.Node) ([]weightedElem, error) {
	kids, err := it.integrateChildren(x, y)
	if err != nil {
		return nil, err
	}
	tx, ty := x.Text(), y.Text()
	switch {
	case tx == ty, ty == "":
		return []weightedElem{{elem: pxml.NewElem(x.Tag(), tx, kids...), w: 1}}, nil
	case tx == "":
		return []weightedElem{{elem: pxml.NewElem(x.Tag(), ty, kids...), w: 1}}, nil
	default:
		// Conflicting values. A domain reconciler may canonicalize them
		// ("Woo, John" and "John Woo" denote the same name); otherwise the
		// merged element's value is uncertain and both variants share the
		// merged children.
		if v, ok := it.cfg.Oracle.Reconcile(x.Tag(), tx, ty); ok {
			return []weightedElem{{elem: pxml.NewElem(x.Tag(), v, kids...), w: 1}}, nil
		}
		it.stats.valueConflicts.Add(1)
		wa := it.cfg.weightA()
		if wa == 1 {
			// Full trust in source A: the B variant would be a
			// zero-probability possibility, so it is not represented.
			return []weightedElem{{elem: pxml.NewElem(x.Tag(), tx, kids...), w: 1}}, nil
		}
		return []weightedElem{
			{elem: pxml.NewElem(x.Tag(), tx, kids...), w: wa},
			{elem: pxml.NewElem(x.Tag(), ty, kids...), w: 1 - wa},
		}, nil
	}
}

package integrate_test

import (
	"errors"
	"math"
	"math/big"
	"sort"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/integrate"
	"repro/internal/oracle"
	"repro/internal/pxml"
	"repro/internal/worlds"
	"repro/internal/xmlcodec"
)

func mustDecode(t *testing.T, src string) *pxml.Tree {
	t.Helper()
	tr, err := xmlcodec.DecodeString(src)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return tr
}

var personDTD = dtd.MustParse(`
	<!ELEMENT addressbook (person*)>
	<!ELEMENT person (nm, tel?)>
	<!ELEMENT nm (#PCDATA)>
	<!ELEMENT tel (#PCDATA)>
`)

const bookA = `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`
const bookB = `<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`

// TestFigure2 is the paper's running example: integrating two address
// books that both contain a person named John with different phone
// numbers, under a DTD that allows one phone per person, yields exactly
// the three possible worlds of Figure 2.
func TestFigure2(t *testing.T) {
	res, stats, err := integrate.Integrate(
		mustDecode(t, bookA), mustDecode(t, bookB),
		integrate.Config{Oracle: oracle.New(nil), Schema: personDTD},
	)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("result invalid: %v\n%s", err, res)
	}
	if got := res.WorldCount(); got.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("world count = %s, want 3\n%s", got, res)
	}
	ws, err := worlds.Collect(res, 10)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	probs := map[string]float64{}
	for _, w := range ws {
		var tels []string
		persons := 0
		pxml.Walk(w.Elements[0], func(n *pxml.Node) bool {
			if n.Kind() == pxml.KindElem {
				switch n.Tag() {
				case "person":
					persons++
				case "tel":
					tels = append(tels, n.Text())
				}
			}
			return true
		})
		sort.Strings(tels)
		key := strings.Join(tels, ",")
		probs[key] += w.P
		if key == "1111,2222" && persons != 2 {
			t.Fatalf("two-phone world must have two persons, got %d", persons)
		}
		if (key == "1111" || key == "2222") && persons != 1 {
			t.Fatalf("one-phone world must have one merged person, got %d", persons)
		}
	}
	// Prior 0.5 on the person match; tel value split 0.5/0.5.
	if math.Abs(probs["1111"]-0.25) > 1e-9 || math.Abs(probs["2222"]-0.25) > 1e-9 || math.Abs(probs["1111,2222"]-0.5) > 1e-9 {
		t.Fatalf("world probabilities = %v", probs)
	}
	if stats.UndecidedPairs != 2 { // person pair and tel pair
		t.Fatalf("undecided pairs = %d, want 2", stats.UndecidedPairs)
	}
	if stats.MustPairs != 1 { // the nm pair
		t.Fatalf("must pairs = %d, want 1", stats.MustPairs)
	}
	if stats.MatchingsPruned == 0 {
		t.Fatalf("the two-phone matching should have been pruned by the DTD")
	}
}

// Without schema knowledge the two-phones possibility survives: 4 worlds.
func TestFigure2WithoutDTD(t *testing.T) {
	res, _, err := integrate.Integrate(
		mustDecode(t, bookA), mustDecode(t, bookB),
		integrate.Config{Oracle: oracle.New(nil)},
	)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if got := res.WorldCount(); got.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("world count = %s, want 4 without DTD\n%s", got, res)
	}
}

func TestDeepEqualSourcesMergeToOneWorld(t *testing.T) {
	src := `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`
	res, stats, err := integrate.Integrate(
		mustDecode(t, src), mustDecode(t, src),
		integrate.Config{Oracle: oracle.New(nil), Schema: personDTD},
	)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if got := res.WorldCount(); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("identical sources should integrate certainly, got %s worlds\n%s", got, res)
	}
	if !res.IsCertain() {
		t.Fatalf("result should be certain")
	}
	if stats.MustPairs == 0 {
		t.Fatalf("deep-equal pairs should be must-matched")
	}
	// The merged book has exactly one person with one phone.
	book := res.RootElements()[0]
	persons := pxml.ElementChildren(book)
	if len(persons) != 1 {
		t.Fatalf("merged persons = %d, want 1", len(persons))
	}
	if pxml.CertainText(persons[0], "tel") != "1111" {
		t.Fatalf("merged phone lost:\n%s", res)
	}
}

func TestDisjointSourcesUnion(t *testing.T) {
	a := `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`
	b := `<addressbook><person><nm>Mary</nm><tel>2222</tel></person></addressbook>`
	never := oracle.NewRule("different-names", func(x, y *pxml.Node) oracle.Verdict {
		if x.Tag() == "person" && pxml.CertainText(x, "nm") != pxml.CertainText(y, "nm") {
			return oracle.Verdict{Decision: oracle.CannotMatch, Rule: "different-names"}
		}
		return oracle.Verdict{Decision: oracle.Unknown}
	})
	res, stats, err := integrate.Integrate(
		mustDecode(t, a), mustDecode(t, b),
		integrate.Config{Oracle: oracle.New([]oracle.Rule{never}), Schema: personDTD},
	)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if got := res.WorldCount(); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("cannot-match everywhere should yield one world, got %s", got)
	}
	persons := pxml.ElementChildren(res.RootElements()[0])
	if len(persons) != 2 {
		t.Fatalf("union should keep both persons, got %d", len(persons))
	}
	if stats.CannotPairs != 1 || stats.Components != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestMustConflictDetected(t *testing.T) {
	a := `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`
	// Source B has two persons deep-equal to A's John; they cannot both be
	// the same rwo as John (sibling distinctness), so must-match conflicts.
	b := `<addressbook>` +
		`<person><nm>John</nm><tel>1111</tel></person>` +
		`<person><nm>John</nm><tel>1111</tel></person>` +
		`</addressbook>`
	_, _, err := integrate.Integrate(
		mustDecode(t, a), mustDecode(t, b),
		integrate.Config{Oracle: oracle.New(nil), Schema: personDTD},
	)
	if !errors.Is(err, integrate.ErrMustConflict) {
		t.Fatalf("err = %v, want ErrMustConflict", err)
	}
}

func TestRootTagMismatch(t *testing.T) {
	_, _, err := integrate.Integrate(
		mustDecode(t, `<a/>`), mustDecode(t, `<b/>`),
		integrate.Config{Oracle: oracle.New(nil)},
	)
	if err == nil || !strings.Contains(err.Error(), "root tags differ") {
		t.Fatalf("err = %v", err)
	}
}

func TestNilConfigAndSources(t *testing.T) {
	if _, _, err := integrate.Integrate(mustDecode(t, `<a/>`), mustDecode(t, `<a/>`), integrate.Config{}); err == nil {
		t.Fatalf("missing oracle should error")
	}
	if _, _, err := integrate.Integrate(nil, mustDecode(t, `<a/>`), integrate.Config{Oracle: oracle.New(nil)}); err == nil {
		t.Fatalf("nil source should error")
	}
}

func TestRootValueConflict(t *testing.T) {
	res, stats, err := integrate.Integrate(
		mustDecode(t, `<note>hello</note>`), mustDecode(t, `<note>goodbye</note>`),
		integrate.Config{Oracle: oracle.New(nil), WeightA: 0.7},
	)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if got := res.WorldCount(); got.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("conflicting root text should give 2 worlds, got %s", got)
	}
	if stats.ValueConflicts != 1 {
		t.Fatalf("value conflicts = %d", stats.ValueConflicts)
	}
	// WeightA controls the split.
	root := res.Root()
	var pHello float64
	for _, poss := range root.Children() {
		if poss.Child(0).Text() == "hello" {
			pHello = poss.Prob()
		}
	}
	if math.Abs(pHello-0.7) > 1e-9 {
		t.Fatalf("P(hello) = %v, want 0.7", pHello)
	}
}

func TestEmptyTextTakesNonEmptySide(t *testing.T) {
	res, _, err := integrate.Integrate(
		mustDecode(t, `<note/>`), mustDecode(t, `<note>filled</note>`),
		integrate.Config{Oracle: oracle.New(nil)},
	)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if got := res.WorldCount(); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("empty-vs-filled text should be certain, got %s worlds", got)
	}
	if res.RootElements()[0].Text() != "filled" {
		t.Fatalf("text = %q", res.RootElements()[0].Text())
	}
}

func TestIncompatibleWhenSchemaRejectsEverything(t *testing.T) {
	// Both persons have a phone; the phones cannot match (rule), yet the
	// schema allows only one phone — so the persons cannot be merged. With
	// the person pair undecided, integration keeps only the two-person
	// world... unless the persons must match, in which case it fails.
	telDiffer := oracle.NewRule("tel-differ", func(x, y *pxml.Node) oracle.Verdict {
		if x.Tag() == "tel" {
			return oracle.Verdict{Decision: oracle.CannotMatch, Rule: "tel-differ"}
		}
		return oracle.Verdict{Decision: oracle.Unknown}
	})
	personsMust := oracle.NewRule("same-nm", func(x, y *pxml.Node) oracle.Verdict {
		if x.Tag() == "person" && pxml.CertainText(x, "nm") == pxml.CertainText(y, "nm") {
			return oracle.Verdict{Decision: oracle.MustMatch, P: 1, Rule: "same-nm"}
		}
		return oracle.Verdict{Decision: oracle.Unknown}
	})

	// Case 1: person match undecided -> only the distinct-person world.
	res, stats, err := integrate.Integrate(
		mustDecode(t, bookA), mustDecode(t, bookB),
		integrate.Config{Oracle: oracle.New([]oracle.Rule{telDiffer}), Schema: personDTD},
	)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if got := res.WorldCount(); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("world count = %s, want 1 (merge impossible)\n%s", got, res)
	}
	if stats.IncompatibleMerges == 0 {
		t.Fatalf("expected an incompatible merge, stats = %+v", stats)
	}
	persons := pxml.ElementChildren(res.RootElements()[0])
	if len(persons) != 2 {
		t.Fatalf("persons = %d, want 2", len(persons))
	}

	// Case 2: persons must match but cannot be merged -> error.
	_, _, err = integrate.Integrate(
		mustDecode(t, bookA), mustDecode(t, bookB),
		integrate.Config{Oracle: oracle.New([]oracle.Rule{telDiffer, personsMust}), Schema: personDTD},
	)
	if !errors.Is(err, integrate.ErrIncompatible) && !errors.Is(err, integrate.ErrMustConflict) {
		t.Fatalf("err = %v, want incompatibility", err)
	}
}

func TestExplosionGuardAndTruncation(t *testing.T) {
	// Ten same-tag items per source, all pairs undecided: far more
	// matchings than the tiny budget allows.
	var sb strings.Builder
	sb.WriteString("<bag>")
	for i := 0; i < 10; i++ {
		sb.WriteString("<item>")
		sb.WriteString(strings.Repeat("x", i+1))
		sb.WriteString("</item>")
	}
	sb.WriteString("</bag>")
	a := sb.String()
	b := strings.ReplaceAll(a, "x", "y")

	_, _, err := integrate.Integrate(
		mustDecode(t, a), mustDecode(t, b),
		integrate.Config{Oracle: oracle.New(nil), MaxMatchingsPerComponent: 50},
	)
	if !errors.Is(err, integrate.ErrExplosion) {
		t.Fatalf("err = %v, want ErrExplosion", err)
	}

	res, stats, err := integrate.Integrate(
		mustDecode(t, a), mustDecode(t, b),
		integrate.Config{Oracle: oracle.New(nil), MaxMatchingsPerComponent: 50, TruncateOnExplosion: true},
	)
	if err != nil {
		t.Fatalf("truncated integrate: %v", err)
	}
	if stats.TruncatedComponents == 0 {
		t.Fatalf("expected truncation, stats = %+v", stats)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("truncated result invalid: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *pxml.Tree {
		res, _, err := integrate.Integrate(
			mustDecode(t, bookA), mustDecode(t, bookB),
			integrate.Config{Oracle: oracle.New(nil), Schema: personDTD},
		)
		if err != nil {
			t.Fatalf("Integrate: %v", err)
		}
		return res
	}
	if !pxml.Equal(mk().Root(), mk().Root()) {
		t.Fatalf("integration is not deterministic")
	}
}

func TestUncertainInputPreserved(t *testing.T) {
	// Source A is itself probabilistic (uncertain phone). Integration with
	// a disjoint B keeps A's uncertainty intact.
	a := `<addressbook><person><nm>John</nm>
		<_prob><_poss p="0.5"><tel>1111</tel></_poss><_poss p="0.5"><tel>2222</tel></_poss></_prob>
	</person></addressbook>`
	b := `<addressbook><person><nm>Mary</nm><tel>3333</tel></person></addressbook>`
	never := oracle.NewRule("different-names", func(x, y *pxml.Node) oracle.Verdict {
		if x.Tag() == "person" && pxml.CertainText(x, "nm") != pxml.CertainText(y, "nm") {
			return oracle.Verdict{Decision: oracle.CannotMatch}
		}
		return oracle.Verdict{Decision: oracle.Unknown}
	})
	res, _, err := integrate.Integrate(
		mustDecode(t, a), mustDecode(t, b),
		integrate.Config{Oracle: oracle.New([]oracle.Rule{never}), Schema: personDTD},
	)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if got := res.WorldCount(); got.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("world count = %s, want 2 (John's phone stays uncertain)", got)
	}
}

func TestSubtreeSharingAcrossPossibilities(t *testing.T) {
	// Three candidate persons per side create matchings that repeat the
	// same unmatched elements; the physical representation must share them.
	a := `<addressbook>` +
		`<person><nm>P1</nm><tel>1</tel></person>` +
		`<person><nm>P2</nm><tel>2</tel></person>` +
		`<person><nm>P3</nm><tel>3</tel></person>` +
		`</addressbook>`
	b := strings.ReplaceAll(strings.ReplaceAll(a, "1", "4"), "2", "5")
	res, stats, err := integrate.Integrate(
		mustDecode(t, a), mustDecode(t, b),
		integrate.Config{Oracle: oracle.New(nil), Schema: personDTD},
	)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	s := res.CollectStats()
	if s.PhysicalNodes >= s.LogicalNodes {
		t.Fatalf("no sharing: physical %d >= logical %d", s.PhysicalNodes, s.LogicalNodes)
	}
	if stats.MatchingsEnumerated < 10 {
		t.Fatalf("expected many matchings, got %d", stats.MatchingsEnumerated)
	}
}

func TestWorldProbabilitiesSumToOne(t *testing.T) {
	res, _, err := integrate.Integrate(
		mustDecode(t, bookA), mustDecode(t, bookB),
		integrate.Config{Oracle: oracle.New(nil), Schema: personDTD},
	)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if total := worlds.TotalProbability(res); math.Abs(total-1) > 1e-9 {
		t.Fatalf("world probabilities sum to %v", total)
	}
}

func TestAblationFactorization(t *testing.T) {
	// Two independent groups (different names far apart) — with
	// factorization they become separate choice points; without, one big
	// component whose matchings multiply.
	a := `<addressbook>` +
		`<person><nm>John</nm><tel>1</tel></person>` +
		`<person><nm>Mary</nm><tel>2</tel></person>` +
		`</addressbook>`
	b := `<addressbook>` +
		`<person><nm>John</nm><tel>9</tel></person>` +
		`<person><nm>Mary</nm><tel>8</tel></person>` +
		`</addressbook>`
	sameName := oracle.NewRule("name-gate", func(x, y *pxml.Node) oracle.Verdict {
		if x.Tag() != "person" {
			return oracle.Verdict{Decision: oracle.Unknown}
		}
		if pxml.CertainText(x, "nm") != pxml.CertainText(y, "nm") {
			return oracle.Verdict{Decision: oracle.CannotMatch}
		}
		return oracle.Verdict{Decision: oracle.Unknown}
	})
	run := func(disable bool) (*pxml.Tree, *integrate.Stats) {
		res, st, err := integrate.Integrate(
			mustDecode(t, a), mustDecode(t, b),
			integrate.Config{
				Oracle:                        oracle.New([]oracle.Rule{sameName}),
				Schema:                        personDTD,
				DisableComponentFactorization: disable,
			},
		)
		if err != nil {
			t.Fatalf("Integrate(disable=%v): %v", disable, err)
		}
		return res, st
	}
	factored, fs := run(false)
	monolithic, ms := run(true)
	// Component counters include nested merges, so compare shapes: the
	// monolithic run has fewer, larger components.
	if ms.Components >= fs.Components {
		t.Fatalf("components: factored %d, monolithic %d", fs.Components, ms.Components)
	}
	if ms.LargestComponent <= fs.LargestComponent {
		t.Fatalf("largest component: factored %d, monolithic %d", fs.LargestComponent, ms.LargestComponent)
	}
	if factored.WorldCount().Cmp(monolithic.WorldCount()) != 0 {
		t.Fatalf("world counts differ: %s vs %s", factored.WorldCount(), monolithic.WorldCount())
	}
	if factored.NodeCount() >= monolithic.NodeCount() {
		t.Fatalf("factorization should reduce nodes: %d vs %d",
			factored.NodeCount(), monolithic.NodeCount())
	}
	// Same distribution over worlds. Element order may differ between the
	// two layouts, so canonicalize by sorting the per-person sketches.
	key := func(w worlds.World) string {
		var parts []string
		for _, p := range pxml.ElementChildren(w.Elements[0]) {
			parts = append(parts, pxml.Sketch(p))
		}
		sort.Strings(parts)
		return strings.Join(parts, "|")
	}
	pf := map[string]float64{}
	worlds.Enumerate(factored, func(w worlds.World) bool {
		pf[key(w)] += w.P
		return true
	})
	worlds.Enumerate(monolithic, func(w worlds.World) bool {
		pf[key(w)] -= w.P
		return true
	})
	for k, v := range pf {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("world probability mismatch %v for\n%s", v, k)
		}
	}
}

func TestSkipNormalize(t *testing.T) {
	res, _, err := integrate.Integrate(
		mustDecode(t, bookA), mustDecode(t, bookB),
		integrate.Config{Oracle: oracle.New(nil), Schema: personDTD, SkipNormalize: true},
	)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("raw result invalid: %v", err)
	}
	if got := res.WorldCount(); got.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("raw world count = %s", got)
	}
}

package integrate_test

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dtd"
	"repro/internal/integrate"
	"repro/internal/oracle"
	"repro/internal/pxml"
)

// integrateBoth runs the same integration sequentially (Workers = 1) and
// in parallel (Workers = NumCPU) and asserts the engine's determinism
// contract: identical normalized trees (pxml.Equal), identical Stats
// counters, and identical error outcomes. The -race runs of CI exercise
// the worker pool, memo tables and atomic counters at the same time.
func integrateBoth(t *testing.T, label string, a, b *pxml.Tree, cfg integrate.Config) {
	t.Helper()
	seqCfg, parCfg := cfg, cfg
	seqCfg.Workers = 1
	parCfg.Workers = runtime.NumCPU()
	if parCfg.Workers < 2 {
		parCfg.Workers = 2
	}
	resSeq, statsSeq, errSeq := integrate.Integrate(a, b, seqCfg)
	resPar, statsPar, errPar := integrate.Integrate(a, b, parCfg)
	if (errSeq == nil) != (errPar == nil) {
		t.Fatalf("%s: error divergence: sequential %v, parallel %v", label, errSeq, errPar)
	}
	if errSeq != nil {
		if errSeq.Error() != errPar.Error() {
			t.Fatalf("%s: error message divergence:\nsequential: %v\nparallel:   %v", label, errSeq, errPar)
		}
		return
	}
	if !pxml.Equal(resSeq.Root(), resPar.Root()) {
		t.Fatalf("%s: parallel result differs from sequential\nsequential:\n%s\nparallel:\n%s", label, resSeq, resPar)
	}
	if *statsSeq != *statsPar {
		t.Fatalf("%s: stats divergence:\nsequential: %+v\nparallel:   %+v", label, *statsSeq, *statsPar)
	}
}

// TestParallelEqualsSequentialMovies drives the determinism contract over
// the paper's synthetic movie scenarios, which produce many independent
// candidate components per integration.
func TestParallelEqualsSequentialMovies(t *testing.T) {
	schema := datagen.MovieDTD()
	cases := []struct {
		name string
		pair datagen.Pair
	}{
		{"table1", datagen.TableISources()},
		{"confusing12", datagen.Confusing(12, 7)},
		{"confusing24", datagen.Confusing(24, 3)},
		{"typical", datagen.Typical(6, 24, 3, 11)},
	}
	for _, tc := range cases {
		for _, set := range []oracle.RuleSet{oracle.SetTitle, oracle.SetGenreTitle, oracle.SetGenreTitleYear} {
			label := tc.name + "/" + set.String()
			integrateBoth(t, label, tc.pair.A.Tree, tc.pair.B.Tree, integrate.Config{
				Oracle: oracle.MovieOracle(set),
				Schema: schema,
			})
			integrateBoth(t, label+"/raw", tc.pair.A.Tree, tc.pair.B.Tree, integrate.Config{
				Oracle:        oracle.MovieOracle(set),
				Schema:        schema,
				SkipNormalize: true,
			})
		}
	}
}

// TestParallelEqualsSequentialRandom fuzzes the contract over random
// address books, where must-conflicts, schema pruning and value conflicts
// all fire; error outcomes must diverge in neither direction.
func TestParallelEqualsSequentialRandom(t *testing.T) {
	schema := dtd.MustParse(`
		<!ELEMENT addressbook (person*)>
		<!ELEMENT person (nm, tel?)>
		<!ELEMENT nm (#PCDATA)>
		<!ELEMENT tel (#PCDATA)>
	`)
	rng := rand.New(rand.NewSource(2026))
	for i := 0; i < 80; i++ {
		a, b := randomBook(rng), randomBook(rng)
		integrateBoth(t, "random", a, b, integrate.Config{
			Oracle:  oracle.New(nil),
			Schema:  schema,
			WeightA: 0.7,
		})
	}
}

// TestWorkerPanicReachesCaller pins the pool's panic contract: a panic in
// integration code — here a faulty Oracle rule — must surface on the
// goroutine that called Integrate (where e.g. the HTTP server's recovery
// middleware can turn it into a 500), not crash the process from a
// detached worker.
func TestWorkerPanicReachesCaller(t *testing.T) {
	a := mustDecode(t, `<addressbook><person><nm>A</nm></person><person><nm>B</nm></person></addressbook>`)
	b := mustDecode(t, `<addressbook><person><nm>C</nm></person><person><nm>D</nm></person></addressbook>`)
	boom := oracle.NewRule("boom", func(x, y *pxml.Node) oracle.Verdict { panic("boom") })
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want the worker's panic value", r)
		}
	}()
	_, _, _ = integrate.Integrate(a, b, integrate.Config{Oracle: oracle.New([]oracle.Rule{boom}), Workers: 4})
	t.Errorf("integration should have panicked")
}

// TestParallelTruncationDeterministic pins the budget-truncation path: a
// component over budget must truncate to the same result and Stats for
// any worker count.
func TestParallelTruncationDeterministic(t *testing.T) {
	pair := datagen.Confusing(18, 5)
	integrateBoth(t, "truncate", pair.A.Tree, pair.B.Tree, integrate.Config{
		Oracle:                   oracle.MovieOracle(oracle.SetTitle),
		Schema:                   datagen.MovieDTD(),
		MaxMatchingsPerComponent: 50,
		TruncateOnExplosion:      true,
	})
}

// Cross-call memoization. The per-call memo tables (parallel.go) die with
// their integration; under sustained ingest that means N integrations of
// overlapping sources ask the Oracle the same questions N times. A Memo
// promotes both tables — verdicts and pair merges — to database lifetime,
// keyed by the structural digests of the two elements instead of their
// pointers (node identity is per-construction-pass; digests are stable
// across calls and across the hash-consing builders).
//
// Soundness: a verdict/merge is a pure function of the two subtrees given
// a fixed oracle, schema and trust weight, all of which are per-database
// constants between invalidation points. The owning database purges the
// memo whenever that assumption could break (feedback, normalize,
// replace, snapshot load — the last may swap the schema). Keying by
// 64-bit digest accepts the same astronomically small collision odds the
// query result cache already does (a collision needs two distinct
// subtrees with equal FNV-based digests inside one memo lifetime).
//
// Concurrency: the underlying tables are compute-once, so two workers —
// even from the same integration — racing on one digest pair block on a
// single computation and share its result. That also keeps per-call Stats
// deterministic for every worker count: for any fixed memo state at call
// start, the set of digest pairs computed (vs served) by the call is
// fixed, whichever goroutine happens to run each compute.
package integrate

import "sync/atomic"

// DefaultMemoEntries bounds a Memo's total entry count (verdicts plus
// merges) when NewMemo is given no explicit cap.
const DefaultMemoEntries = 1 << 18

// Memo is a cross-call verdict and merge cache shared by every
// integration of one database. The zero value is not useful; use NewMemo.
type Memo struct {
	verdicts *memoTable[digestPair, verdictResult]
	merges   *memoTable[digestPair, mergeResult]
	max      int

	hits   atomic.Int64
	misses atomic.Int64
	purges atomic.Int64
}

// digestPair keys the shared tables: the structural digests of the A and
// B elements of a pair. Order matters (integration is not symmetric in
// its sources — trust weights, value-conflict ordering).
type digestPair struct{ a, b uint64 }

// NewMemo creates an empty memo holding at most maxEntries entries across
// both tables (<= 0 means DefaultMemoEntries). The cap is enforced
// between integrations: a call that overflows it completes with its full
// working set and the table is dropped before the next call starts.
func NewMemo(maxEntries int) *Memo {
	if maxEntries <= 0 {
		maxEntries = DefaultMemoEntries
	}
	return &Memo{
		verdicts: newMemoTable[digestPair, verdictResult](),
		merges:   newMemoTable[digestPair, mergeResult](),
		max:      maxEntries,
	}
}

// Purge drops every cached entry. The owning database calls it on any
// mutation that could invalidate cached decisions (feedback, normalize,
// replace, snapshot load). It must not run concurrently with an
// integration using the memo; the database's writer lock guarantees that.
func (m *Memo) Purge() {
	if m == nil {
		return
	}
	m.verdicts.purge()
	m.merges.purge()
	m.purges.Add(1)
}

// enforceCap drops the tables when they exceed the configured bound. It
// runs at integration start (under the writer lock), so a single call's
// working set is never evicted mid-flight.
func (m *Memo) enforceCap() {
	if m == nil {
		return
	}
	if m.verdicts.size()+m.merges.size() > m.max {
		m.verdicts.purge()
		m.merges.purge()
		m.purges.Add(1)
	}
}

// MemoStats is an observability snapshot of a Memo.
type MemoStats struct {
	// Entries is the current entry count across both tables.
	Entries int `json:"entries"`
	// Capacity is the configured entry cap.
	Capacity int `json:"capacity"`
	// Hits and Misses count lookups served from (vs inserted into) the
	// memo over its lifetime, across all integrations.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Purges counts whole-table drops (invalidations plus cap overflows).
	Purges int64 `json:"purges"`
	// HitRate is Hits/(Hits+Misses), 0 when no lookups happened.
	HitRate float64 `json:"hit_rate"`
}

// Stats reports the memo's counters.
func (m *Memo) Stats() MemoStats {
	if m == nil {
		return MemoStats{}
	}
	s := MemoStats{
		Entries:  m.verdicts.size() + m.merges.size(),
		Capacity: m.max,
		Hits:     m.hits.Load(),
		Misses:   m.misses.Load(),
		Purges:   m.purges.Load(),
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}

package integrate_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/integrate"
	"repro/internal/oracle"
	"repro/internal/pxml"
)

// wideBook builds an address book with n persons; overlap persons share
// names with wideBook(n, otherTel) so integrating two of them produces
// real oracle work per person.
func wideBook(n int, tel string) string {
	var b strings.Builder
	b.WriteString("<addressbook>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<person><nm>P%d</nm><tel>%s</tel></person>", i, tel)
	}
	b.WriteString("</addressbook>")
	return b.String()
}

// bookOracle decides person pairs by name: different names cannot match,
// equal names stay undecided (same name, different tel — a genuine
// choice). Without the key rule every cross pair is undecided and the
// whole book collapses into one enormous component.
func bookOracle() *oracle.Oracle {
	return oracle.New([]oracle.Rule{oracle.KeyField("person", "nm")})
}

// TestMemoSecondRunHitsWithoutDoubleCounting is the stats-merging
// regression pin: integrating the same pair twice through one shared memo
// must answer the second run entirely from the memo — VerdictMemoHits
// covering every decided pair, and crucially OracleCalls NOT re-counted
// (the bug class this pins: attributing memoized work to the hitting call
// would double-count every cross-call counter).
func TestMemoSecondRunHitsWithoutDoubleCounting(t *testing.T) {
	memo := integrate.NewMemo(0)
	cfg := integrate.Config{Oracle: bookOracle(), Schema: personDTD, Memo: memo}

	a1, b1 := mustDecode(t, wideBook(8, "1111")), mustDecode(t, wideBook(8, "2222"))
	res1, st1, err := integrate.Integrate(a1, b1, cfg)
	if err != nil {
		t.Fatalf("cold integrate: %v", err)
	}
	if st1.OracleCalls == 0 {
		t.Fatal("cold run made no oracle calls; test input too small")
	}

	a2, b2 := mustDecode(t, wideBook(8, "1111")), mustDecode(t, wideBook(8, "2222"))
	res2, st2, err := integrate.Integrate(a2, b2, cfg)
	if err != nil {
		t.Fatalf("warm integrate: %v", err)
	}
	if !pxml.Equal(res1.Root(), res2.Root()) {
		t.Fatal("warm result differs from cold result")
	}
	if res1.WorldCount().Cmp(res2.WorldCount()) != 0 {
		t.Fatalf("world counts differ: %s vs %s", res1.WorldCount(), res2.WorldCount())
	}
	// An identical rerun is answered at the root from the merge memo:
	// nothing is recomputed, so no compute counter moves.
	if st2.VerdictMemoHits+st2.MergeMemoHits == 0 {
		t.Fatalf("warm run hit no memo entries: %+v", st2)
	}
	if st2.OracleCalls != 0 {
		t.Fatalf("warm run re-counted %d oracle calls for memoized verdicts", st2.OracleCalls)
	}
	// Pair-classification counters attribute to the computing call only:
	// a back-to-back identical integration must not inflate them.
	if st2.MustPairs != 0 || st2.CannotPairs != 0 || st2.UndecidedPairs != 0 {
		t.Fatalf("warm run re-counted pair buckets: %+v", st2)
	}
	if st2.MatchingsEnumerated != 0 {
		t.Fatalf("warm run re-counted matchings: %+v", st2)
	}
	ms := memo.Stats()
	if ms.Hits == 0 || ms.Misses == 0 || ms.Entries == 0 {
		t.Fatalf("memo counters not tracking: %+v", ms)
	}

	// A third run with one extra person cannot be answered wholesale —
	// the root digests differ — but every repeated person pair is served
	// from the verdict memo, so only the new person's pairs hit the
	// oracle.
	grown := wideBook(8, "2222") // rebuilt with one more entry
	grown = strings.Replace(grown, "</addressbook>",
		"<person><nm>P8</nm><tel>2222</tel></person></addressbook>", 1)
	_, st3, err := integrate.Integrate(mustDecode(t, wideBook(8, "1111")), mustDecode(t, grown), cfg)
	if err != nil {
		t.Fatalf("grown integrate: %v", err)
	}
	if st3.VerdictMemoHits == 0 {
		t.Fatalf("grown run hit no verdict memo entries: %+v", st3)
	}
	if st3.OracleCalls == 0 || st3.OracleCalls >= st1.OracleCalls {
		t.Fatalf("grown run should decide only the new pairs: cold=%d grown=%d",
			st1.OracleCalls, st3.OracleCalls)
	}
}

// TestMemoDeterministicAcrossWorkers is the determinism property: for
// every worker count, both the cold and the memo-warm integration must
// produce pxml.Equal trees AND identical Stats. With a shared memo this
// requires compute-once attribution — a timing-dependent hit/miss split
// would make OracleCalls depend on scheduling.
func TestMemoDeterministicAcrossWorkers(t *testing.T) {
	type outcome struct {
		cold, warm integrate.Stats
	}
	var (
		refTree *pxml.Tree
		ref     *outcome
	)
	for _, workers := range []int{1, 2, 4, 8} {
		memo := integrate.NewMemo(0)
		cfg := integrate.Config{
			Oracle:  bookOracle(),
			Schema:  personDTD,
			Memo:    memo,
			Workers: workers,
		}
		res1, cold, err := integrate.Integrate(
			mustDecode(t, wideBook(12, "1111")), mustDecode(t, wideBook(12, "2222")), cfg)
		if err != nil {
			t.Fatalf("workers=%d cold: %v", workers, err)
		}
		res2, warm, err := integrate.Integrate(
			mustDecode(t, wideBook(12, "1111")), mustDecode(t, wideBook(12, "2222")), cfg)
		if err != nil {
			t.Fatalf("workers=%d warm: %v", workers, err)
		}
		if !pxml.Equal(res1.Root(), res2.Root()) {
			t.Fatalf("workers=%d: warm tree differs from cold tree", workers)
		}
		got := &outcome{cold: *cold, warm: *warm}
		if ref == nil {
			refTree, ref = res1, got
			continue
		}
		if !pxml.Equal(res1.Root(), refTree.Root()) {
			t.Fatalf("workers=%d: tree differs from workers=1 tree", workers)
		}
		if got.cold != ref.cold {
			t.Fatalf("workers=%d cold stats diverge:\n got %+v\nwant %+v", workers, got.cold, ref.cold)
		}
		if got.warm != ref.warm {
			t.Fatalf("workers=%d warm stats diverge:\n got %+v\nwant %+v", workers, got.warm, ref.warm)
		}
	}
}

// TestMemoEquivalentToNoMemo: the memo is an optimization, never a
// semantic change — with and without it, integration yields Equal trees.
func TestMemoEquivalentToNoMemo(t *testing.T) {
	plain := integrate.Config{Oracle: bookOracle(), Schema: personDTD}
	memod := plain
	memod.Memo = integrate.NewMemo(0)
	for _, pair := range [][2]string{
		{bookA, bookB},
		{wideBook(6, "1111"), wideBook(9, "2222")},
		{wideBook(3, "1111"), "<addressbook><person><nm>Q</nm></person></addressbook>"},
	} {
		r1, _, err := integrate.Integrate(mustDecode(t, pair[0]), mustDecode(t, pair[1]), plain)
		if err != nil {
			t.Fatalf("plain: %v", err)
		}
		r2, _, err := integrate.Integrate(mustDecode(t, pair[0]), mustDecode(t, pair[1]), memod)
		if err != nil {
			t.Fatalf("memo: %v", err)
		}
		if !pxml.Equal(r1.Root(), r2.Root()) {
			t.Fatalf("memoized result differs for %q + %q", pair[0], pair[1])
		}
		if r1.WorldCount().Cmp(r2.WorldCount()) != 0 {
			t.Fatalf("world counts differ: %s vs %s", r1.WorldCount(), r2.WorldCount())
		}
	}
}

// TestMemoCapPurges: a memo over its entry cap is dropped wholesale
// before the next integration, and the purge is counted.
func TestMemoCapPurges(t *testing.T) {
	memo := integrate.NewMemo(1) // absurdly small: any real run overflows
	cfg := integrate.Config{Oracle: bookOracle(), Schema: personDTD, Memo: memo}
	if _, _, err := integrate.Integrate(mustDecode(t, wideBook(4, "1111")), mustDecode(t, wideBook(4, "2222")), cfg); err != nil {
		t.Fatal(err)
	}
	if memo.Stats().Entries <= 1 {
		t.Fatalf("first run should overflow the cap: %+v", memo.Stats())
	}
	if _, _, err := integrate.Integrate(mustDecode(t, bookA), mustDecode(t, bookB), cfg); err != nil {
		t.Fatal(err)
	}
	ms := memo.Stats()
	if ms.Purges == 0 {
		t.Fatalf("over-cap memo was not purged: %+v", ms)
	}
}

// TestMemoSplicedChildrenCounted: sources touching a small slice of a
// wide document leave the untouched siblings spliced, and the counter
// proves the delta path ran.
func TestMemoSplicedChildrenCounted(t *testing.T) {
	cfg := integrate.Config{Oracle: bookOracle(), Schema: personDTD}
	// 10 persons on the A side, a source mentioning only one name: 9+ of
	// the A children are untouched by any candidate component.
	src := `<addressbook><person><nm>P0</nm><tel>9999</tel></person></addressbook>`
	_, st, err := integrate.Integrate(mustDecode(t, wideBook(10, "1111")), mustDecode(t, src), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.SplicedChildren == 0 {
		t.Fatalf("expected spliced children on a delta integration: %+v", st)
	}
}

package integrate_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/integrate"
	"repro/internal/oracle"
	"repro/internal/pxml"
	"repro/internal/worlds"
)

// randomBook generates a small random certain address book with names and
// phones drawn from tiny pools, so that cross-source collisions (and thus
// undecided pairs, must-matches and cannot-matches) all occur.
func randomBook(rng *rand.Rand) *pxml.Tree {
	names := []string{"John", "Mary", "Ada"}
	tels := []string{"1", "2", "3"}
	n := 1 + rng.Intn(3)
	persons := make([]*pxml.Node, n)
	for i := range persons {
		kids := []*pxml.Node{pxml.Certain(pxml.NewLeaf("nm", names[rng.Intn(len(names))]))}
		if rng.Intn(4) > 0 {
			kids = append(kids, pxml.Certain(pxml.NewLeaf("tel", tels[rng.Intn(len(tels))])))
		}
		persons[i] = pxml.NewElem("person", "", kids...)
	}
	return pxml.CertainTree(pxml.NewElem("addressbook", "", pxml.Certain(persons...)))
}

// leafValues collects tag→set-of-texts over a certain element tree.
func leafValues(elems []*pxml.Node, acc map[string]map[string]bool) {
	for _, e := range elems {
		pxml.Walk(e, func(n *pxml.Node) bool {
			if n.Kind() == pxml.KindElem && n.Text() != "" {
				if acc[n.Tag()] == nil {
					acc[n.Tag()] = map[string]bool{}
				}
				acc[n.Tag()][n.Text()] = true
			}
			return true
		})
	}
}

// TestIntegrationInvariants is the integration engine's property suite:
// over random source pairs, the result must validate, its world
// probabilities must sum to 1, every world must satisfy the schema, every
// leaf value in any world must stem from one of the sources, and the
// whole computation must be deterministic.
func TestIntegrationInvariants(t *testing.T) {
	schema := dtd.MustParse(`
		<!ELEMENT addressbook (person*)>
		<!ELEMENT person (nm, tel?)>
		<!ELEMENT nm (#PCDATA)>
		<!ELEMENT tel (#PCDATA)>
	`)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomBook(rng), randomBook(rng)
		cfg := integrate.Config{Oracle: oracle.New(nil), Schema: schema}
		res, _, err := integrate.Integrate(a, b, cfg)
		if errors.Is(err, integrate.ErrMustConflict) {
			// Duplicate persons within one source can deep-equal the same
			// counterpart; a legal outcome for random data.
			return true
		}
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.Validate() != nil {
			return false
		}
		// Probabilities over all worlds sum to 1.
		if wc := res.WorldCount(); wc.IsInt64() && wc.Int64() <= 3000 {
			if math.Abs(worlds.TotalProbability(res)-1) > 1e-6 {
				return false
			}
			// Schema holds in every world, and leaf values stem from the
			// sources.
			sourceVals := map[string]map[string]bool{}
			leafValues(a.RootElements(), sourceVals)
			leafValues(b.RootElements(), sourceVals)
			ok := true
			worlds.Enumerate(res, func(w worlds.World) bool {
				for _, e := range w.Elements {
					if schema.ValidateElement(e) != nil {
						ok = false
						return false
					}
				}
				vals := map[string]map[string]bool{}
				leafValues(w.Elements, vals)
				for tag, set := range vals {
					for v := range set {
						if !sourceVals[tag][v] {
							t.Logf("seed %d: world value %s=%q not in sources", seed, tag, v)
							ok = false
							return false
						}
					}
				}
				return true
			})
			if !ok {
				return false
			}
		}
		// Determinism.
		res2, _, err := integrate.Integrate(a, b, cfg)
		return err == nil && pxml.Equal(res.Root(), res2.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationNeverLosesCertainData checks that, with a rule
// forbidding matches between differently-named persons (so merged persons
// never get an uncertain name), every source name exists in every world
// and every phone number survives in at least one world. Without such a
// rule a merged person's name may itself become a choice — semantically
// correct, but then a name can be absent from some worlds.
func TestIntegrationNeverLosesCertainData(t *testing.T) {
	schema := dtd.MustParse(`
		<!ELEMENT addressbook (person*)>
		<!ELEMENT person (nm, tel?)>
		<!ELEMENT nm (#PCDATA)>
		<!ELEMENT tel (#PCDATA)>
	`)
	nameGate := oracle.NewRule("same-name-gate", func(x, y *pxml.Node) oracle.Verdict {
		if x.Tag() == "person" && pxml.CertainText(x, "nm") != pxml.CertainText(y, "nm") {
			return oracle.Verdict{Decision: oracle.CannotMatch, Rule: "same-name-gate"}
		}
		return oracle.Verdict{Decision: oracle.Unknown}
	})
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		a, b := randomBook(rng), randomBook(rng)
		res, _, err := integrate.Integrate(a, b, integrate.Config{Oracle: oracle.New([]oracle.Rule{nameGate}), Schema: schema})
		if errors.Is(err, integrate.ErrMustConflict) {
			continue
		}
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if wc := res.WorldCount(); !wc.IsInt64() || wc.Int64() > 3000 {
			continue
		}
		sourceTels := map[string]bool{}
		src := map[string]map[string]bool{}
		leafValues(a.RootElements(), src)
		leafValues(b.RootElements(), src)
		for v := range src["tel"] {
			sourceTels[v] = true
		}
		seenTels := map[string]bool{}
		worlds.Enumerate(res, func(w worlds.World) bool {
			vals := map[string]map[string]bool{}
			leafValues(w.Elements, vals)
			for v := range vals["tel"] {
				seenTels[v] = true
			}
			// Every source name must exist in every world: merging keeps
			// nm, and unmatched persons are carried over.
			for v := range src["nm"] {
				if !vals["nm"][v] {
					t.Fatalf("iteration %d: name %q missing from a world\n%s", i, v, res)
				}
			}
			return true
		})
		for v := range sourceTels {
			if !seenTels[v] {
				t.Fatalf("iteration %d: phone %q lost from all worlds", i, v)
			}
		}
	}
}

// TestIntegrateIdempotentOnCertainResult integrates a source with itself
// twice: A ⊕ A is certain and equals A (up to trivial grouping), and
// integrating the result with A again stays certain.
func TestIntegrateIdempotentOnCertainResult(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	schema := dtd.MustParse(`
		<!ELEMENT addressbook (person*)>
		<!ELEMENT person (nm, tel?)>
		<!ELEMENT nm (#PCDATA)>
		<!ELEMENT tel (#PCDATA)>
	`)
	for i := 0; i < 30; i++ {
		a := randomBook(rng)
		res, _, err := integrate.Integrate(a, a, integrate.Config{Oracle: oracle.New(nil), Schema: schema})
		if errors.Is(err, integrate.ErrMustConflict) {
			continue // duplicate siblings within the book
		}
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !res.IsCertain() {
			t.Fatalf("iteration %d: A ⊕ A not certain:\n%s", i, res)
		}
		if !pxml.DeepEqualElems(res.RootElements()[0], a.RootElements()[0]) {
			t.Fatalf("iteration %d: A ⊕ A ≠ A\nA:\n%s\nresult:\n%s", i, a, res)
		}
		res2, _, err := integrate.Integrate(res, a, integrate.Config{Oracle: oracle.New(nil), Schema: schema})
		if err != nil {
			t.Fatalf("iteration %d second round: %v", i, err)
		}
		if !res2.IsCertain() {
			t.Fatalf("iteration %d: (A ⊕ A) ⊕ A not certain", i)
		}
	}
}

// TestWeightASkewsValueConflicts drives the source-trust weight through a
// sweep — including the boundary WeightA = 1, full trust in source A —
// and checks the merged-value marginals follow it.
func TestWeightASkewsValueConflicts(t *testing.T) {
	a := mustDecode(t, `<note>alpha</note>`)
	b := mustDecode(t, `<note>beta</note>`)
	for _, wa := range []float64{0.1, 0.25, 0.5, 0.9, 1} {
		res, _, err := integrate.Integrate(a, b, integrate.Config{Oracle: oracle.New(nil), WeightA: wa})
		if err != nil {
			t.Fatalf("WeightA=%v: %v", wa, err)
		}
		pAlpha := 0.0
		worlds.Enumerate(res, func(w worlds.World) bool {
			if w.Elements[0].Text() == "alpha" {
				pAlpha += w.P
			}
			return true
		})
		if math.Abs(pAlpha-wa) > 1e-9 {
			t.Fatalf("WeightA=%v: P(alpha) = %v", wa, pAlpha)
		}
		if wa == 1 {
			if res.Validate() != nil || !res.IsCertain() {
				t.Fatalf("WeightA=1: result must be certain and valid:\n%s", res)
			}
		}
	}
}

// TestWeightAOutOfRangeRejected checks that invalid trust weights are an
// explicit error rather than being silently coerced to the default.
func TestWeightAOutOfRangeRejected(t *testing.T) {
	a := mustDecode(t, `<note>alpha</note>`)
	b := mustDecode(t, `<note>beta</note>`)
	for _, bad := range []float64{-0.5, -1e-9, 1.000001, 42, math.NaN()} {
		_, _, err := integrate.Integrate(a, b, integrate.Config{Oracle: oracle.New(nil), WeightA: bad})
		if err == nil {
			t.Fatalf("WeightA=%v: want error, got nil", bad)
		}
	}
}

// TestStatsAccounting cross-checks the reported statistics on a scenario
// with a known structure.
func TestStatsAccounting(t *testing.T) {
	a := mustDecode(t, `<addressbook>`+
		`<person><nm>John</nm><tel>1</tel></person>`+
		`<person><nm>Mary</nm><tel>2</tel></person>`+
		`</addressbook>`)
	b := mustDecode(t, `<addressbook>`+
		`<person><nm>John</nm><tel>1</tel></person>`+ // deep-equal to A's John
		`<person><nm>Zoe</nm><tel>9</tel></person>`+
		`</addressbook>`)
	res, stats, err := integrate.Integrate(a, b, integrate.Config{Oracle: oracle.New(nil), Schema: personDTD})
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	if stats.OracleCalls == 0 || stats.MustPairs == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.MustPairs+stats.CannotPairs+stats.UndecidedPairs != stats.OracleCalls {
		t.Fatalf("verdict counts don't add up: %+v", stats)
	}
	if stats.Components == 0 || stats.MatchingsEnumerated < stats.Components {
		t.Fatalf("component accounting: %+v", stats)
	}
	if stats.PossibilitiesBuilt < stats.Components {
		t.Fatalf("possibility accounting: %+v", stats)
	}
	_ = fmt.Sprintf("%v", res)
}

package integrate

import (
	"fmt"

	"repro/internal/dtd"
	"repro/internal/oracle"
	"repro/internal/pxml"
)

// edge is a candidate match between child i of source A and child j of
// source B (indices into the certain child lists).
type edge struct {
	i, j int
	p    float64
	must bool
}

// integrateChildren integrates the child sequences of two matched elements
// and returns the choice-point children of the merged element.
func (it *integrator) integrateChildren(x, y *pxml.Node) ([]*pxml.Node, error) {
	certA, uncA := splitChildren(x)
	certB, uncB := splitChildren(y)

	// Candidate pairs: cross-source, same tag, not ruled out. Within-source
	// siblings are never candidates (the paper's second generic rule). The
	// Oracle is consulted for every same-tag cross pair in a fan-out pass
	// first — verdicts are independent, and on wide child lists the
	// cross-product of rule evaluations dominates — then read back from the
	// memo in deterministic order. Sequential mode runs the same pass
	// inline, so both modes decide exactly the same pair set.
	type candidate struct{ i, j int }
	var cands []candidate
	for i, xa := range certA {
		for j, yb := range certB {
			if xa.Tag() == yb.Tag() {
				cands = append(cands, candidate{i, j})
			}
		}
	}
	decideTasks := make([]func(), len(cands))
	for ti, cand := range cands {
		xa, yb := certA[cand.i], certB[cand.j]
		decideTasks[ti] = func() { _, _ = it.decide(xa, yb) }
	}
	it.pool.runAll(decideTasks)
	var edges []edge
	for _, cand := range cands {
		v, err := it.decide(certA[cand.i], certB[cand.j])
		if err != nil {
			return nil, err
		}
		if v.Decision == oracle.CannotMatch {
			continue
		}
		edges = append(edges, edge{i: cand.i, j: cand.j, p: v.P, must: v.Decision == oracle.MustMatch})
	}

	comps := it.components(edges, len(certA))
	inCompA := make(map[int]int, len(certA)) // A index -> component index
	inCompB := make(map[int]int, len(certB))
	for ci, c := range comps {
		for _, i := range c.aIdx {
			inCompA[i] = ci
		}
		for _, j := range c.bIdx {
			inCompB[j] = ci
		}
	}

	// DTD budgets: for each tag with a bounded maximum under the parent,
	// how many items may all components of that tag plus the certain
	// singles produce in the best case. An infeasible combination (even
	// the best case exceeds a bound) makes the whole merge impossible.
	budget, err := it.tagBudgets(x.Tag(), certA, certB, uncA, uncB, comps, inCompA, inCompB)
	if err != nil {
		return nil, err
	}

	// Components are independent by construction (that is the paper's
	// compactness argument), so their choice points are built concurrently
	// and then emitted in component order. Errors are surfaced from the
	// lowest component index, keeping the reported failure deterministic.
	choices := make([]*pxml.Node, len(comps))
	choiceErrs := make([]error, len(comps))
	buildTasks := make([]func(), len(comps))
	for ci := range comps {
		buildTasks[ci] = func() {
			choices[ci], choiceErrs[ci] = it.buildChoice(comps[ci], certA, certB, budget[ci])
		}
	}
	it.pool.runAll(buildTasks)
	for _, err := range choiceErrs {
		if err != nil {
			return nil, err
		}
	}

	var out []*pxml.Node
	emitted := make([]bool, len(comps))
	for i, xa := range certA {
		ci, ok := inCompA[i]
		if !ok {
			// Untouched by the other source: spliced verbatim, no merge.
			it.stats.splicedChildren.Add(1)
			out = append(out, pxml.Certain(xa))
			continue
		}
		if emitted[ci] {
			continue
		}
		emitted[ci] = true
		out = append(out, choices[ci])
	}
	for j, yb := range certB {
		if _, ok := inCompB[j]; ok {
			continue
		}
		it.stats.splicedChildren.Add(1)
		out = append(out, pxml.Certain(yb))
	}
	// Genuine choice points of the inputs are preserved, not re-matched:
	// integration of probabilistic inputs keeps their uncertainty intact.
	out = append(out, uncA...)
	out = append(out, uncB...)
	return out, nil
}

// splitChildren separates an element's certainly-present child elements
// from its genuine choice points.
func splitChildren(elem *pxml.Node) (certain []*pxml.Node, uncertain []*pxml.Node) {
	for _, prob := range elem.Children() {
		if len(prob.Children()) == 1 {
			certain = append(certain, prob.Child(0).Children()...)
		} else {
			uncertain = append(uncertain, prob)
		}
	}
	return certain, uncertain
}

// component is a connected group of candidate edges; it becomes one choice
// point in the merged element.
type component struct {
	aIdx  []int // A-side member indices, ascending
	bIdx  []int // B-side member indices, ascending
	edges []edge
}

// components groups edges into connected components (or a single component
// when factorization is disabled for the ablation experiment). Components
// are ordered by their smallest A index; edge lists preserve discovery
// order, so the whole construction is deterministic.
func (it *integrator) components(edges []edge, nA int) []component {
	if len(edges) == 0 {
		return nil
	}
	if it.cfg.DisableComponentFactorization {
		c := component{edges: edges}
		seenA, seenB := map[int]bool{}, map[int]bool{}
		for _, e := range edges {
			if !seenA[e.i] {
				seenA[e.i] = true
				c.aIdx = append(c.aIdx, e.i)
			}
			if !seenB[e.j] {
				seenB[e.j] = true
				c.bIdx = append(c.bIdx, e.j)
			}
		}
		sortInts(c.aIdx)
		sortInts(c.bIdx)
		it.noteComponent(c)
		return []component{c}
	}
	// Union-find over node ids: A nodes are i, B nodes are nA+j.
	parent := map[int]int{}
	var find func(v int) int
	find = func(v int) int {
		p, ok := parent[v]
		if !ok || p == v {
			parent[v] = v
			return v
		}
		r := find(p)
		parent[v] = r
		return r
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, e := range edges {
		union(e.i, nA+e.j)
	}
	group := map[int]*component{}
	var order []int
	for _, e := range edges {
		r := find(e.i)
		c, ok := group[r]
		if !ok {
			c = &component{}
			group[r] = c
			order = append(order, r)
		}
		c.edges = append(c.edges, e)
	}
	out := make([]component, 0, len(order))
	for _, r := range order {
		c := group[r]
		seenA, seenB := map[int]bool{}, map[int]bool{}
		for _, e := range c.edges {
			if !seenA[e.i] {
				seenA[e.i] = true
				c.aIdx = append(c.aIdx, e.i)
			}
			if !seenB[e.j] {
				seenB[e.j] = true
				c.bIdx = append(c.bIdx, e.j)
			}
		}
		sortInts(c.aIdx)
		sortInts(c.bIdx)
		it.noteComponent(*c)
		out = append(out, *c)
	}
	return out
}

func (it *integrator) noteComponent(c component) {
	it.stats.components.Add(1)
	it.stats.noteLargest(len(c.edges))
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// tagBudgets computes, for every tag whose maximum occurrence under the
// parent is bounded, how many component items of that tag are still
// admissible: Max(tag) − certain singles − best-case contribution of the
// other members. The result maps component index and tag to the allowed
// item count for that component; absent entries mean unconstrained. It
// returns ErrIncompatible when even the best case exceeds a bound, which
// happens e.g. when two unmatchable phones meet a one-phone schema.
func (it *integrator) tagBudgets(parentTag string, certA, certB, uncA, uncB []*pxml.Node,
	comps []component, inCompA, inCompB map[int]int) (map[int]map[string]int, error) {
	if it.cfg.Schema == nil {
		return nil, nil
	}
	// Bounded tags among all prospective children.
	bounded := map[string]int{}
	noteTag := func(tag string) {
		if _, ok := bounded[tag]; ok {
			return
		}
		if max := it.cfg.Schema.MaxOccurs(parentTag, tag); max != dtd.Unbounded {
			bounded[tag] = max
		}
	}
	for _, xa := range certA {
		noteTag(xa.Tag())
	}
	for _, yb := range certB {
		noteTag(yb.Tag())
	}
	tagsOfComp := make([]map[string]bool, len(comps))
	for ci, c := range comps {
		tagsOfComp[ci] = map[string]bool{}
		for _, i := range c.aIdx {
			tagsOfComp[ci][certA[i].Tag()] = true
		}
	}
	if len(bounded) == 0 {
		return nil, nil
	}
	// Fixed contributions per tag: certain singles plus the best-case
	// (minimum) counts of preserved uncertain choice points.
	fixed := map[string]int{}
	for i, xa := range certA {
		if _, ok := inCompA[i]; !ok {
			fixed[xa.Tag()]++
		}
	}
	for j, yb := range certB {
		if _, ok := inCompB[j]; !ok {
			fixed[yb.Tag()]++
		}
	}
	for _, unc := range append(append([]*pxml.Node{}, uncA...), uncB...) {
		best := map[string]int{}
		first := true
		for _, poss := range unc.Children() {
			local := map[string]int{}
			for _, el := range poss.Children() {
				local[el.Tag()]++
			}
			if first {
				best = local
				first = false
				continue
			}
			for tag := range best {
				if local[tag] < best[tag] {
					best[tag] = local[tag]
				}
			}
			for tag := range local {
				if _, ok := best[tag]; !ok {
					best[tag] = 0
				}
			}
		}
		for tag, n := range best {
			fixed[tag] += n
		}
	}
	// Minimum items each component can produce per tag (maximal matching).
	minItems := make([]map[string]int, len(comps))
	for ci, c := range comps {
		minItems[ci] = componentMinItems(c, certA, certB)
	}
	// Feasibility: even the best case must respect every bound.
	for tag, max := range bounded {
		total := fixed[tag]
		for ci := range comps {
			total += minItems[ci][tag]
		}
		if total > max {
			return nil, fmt.Errorf("%w: element <%s> would keep %d <%s> children in every world, schema allows %d",
				ErrIncompatible, parentTag, total, tag, max)
		}
	}
	budgets := make(map[int]map[string]int)
	for ci := range comps {
		for tag := range tagsOfComp[ci] {
			max, ok := bounded[tag]
			if !ok {
				continue
			}
			allowed := max - fixed[tag]
			for cj := range comps {
				if cj == ci {
					continue
				}
				allowed -= minItems[cj][tag]
			}
			if budgets[ci] == nil {
				budgets[ci] = map[string]int{}
			}
			budgets[ci][tag] = allowed
		}
	}
	return budgets, nil
}

// componentMinItems returns the minimum number of resulting items per tag a
// component can produce: members minus the maximum matching size among
// edges of that tag.
func componentMinItems(c component, certA, certB []*pxml.Node) map[string]int {
	counts := map[string]int{}
	for _, i := range c.aIdx {
		counts[certA[i].Tag()]++
	}
	for _, j := range c.bIdx {
		counts[certB[j].Tag()]++
	}
	for tag := range counts {
		counts[tag] -= maxMatchingSize(c, tag, certA)
	}
	return counts
}

// maxMatchingSize computes the maximum bipartite matching among the
// component's edges whose endpoints have the given tag, via augmenting
// paths (components are small).
func maxMatchingSize(c component, tag string, certA []*pxml.Node) int {
	adj := map[int][]int{}
	for _, e := range c.edges {
		if certA[e.i].Tag() != tag {
			continue
		}
		adj[e.i] = append(adj[e.i], e.j)
	}
	matchB := map[int]int{} // B index -> A index
	var try func(i int, seen map[int]bool) bool
	try = func(i int, seen map[int]bool) bool {
		for _, j := range adj[i] {
			if seen[j] {
				continue
			}
			seen[j] = true
			if prev, ok := matchB[j]; !ok || try(prev, seen) {
				matchB[j] = i
				return true
			}
		}
		return false
	}
	size := 0
	for i := range adj {
		if try(i, map[int]bool{}) {
			size++
		}
	}
	return size
}

var _ = fmt.Sprintf // reserved for debug helpers

package integrate

import (
	"sync"
	"sync/atomic"
)

// This file holds the concurrency plumbing of the parallel integration
// engine. The paper's compactness argument (§III) — independent candidate
// components multiply world counts but only add node counts — also means
// component matchings can be enumerated and merged with no coordination:
// the only shared state is memoization (compute-once tables) and counters
// (atomics). Everything that orders the output (component order, matching
// enumeration, cartesian expansion) stays sequential, so the result tree
// and the Stats are identical for any worker count.

// memoTable is a concurrency-safe, compute-once memoization table. Each
// key's compute function runs exactly once even under contention; losers
// of the insert race block until the winner's result is ready and then
// share it. Under sequential integration it degenerates to a plain map
// lookup with negligible overhead.
type memoTable[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoCell[V]
}

type memoCell[V any] struct {
	once sync.Once
	v    V
}

func newMemoTable[K comparable, V any]() *memoTable[K, V] {
	return &memoTable[K, V]{m: make(map[K]*memoCell[V])}
}

// do returns the memoized value for k, computing it (exactly once across
// all goroutines) when absent. compute must not recurse onto the same key;
// the integration recursion descends strictly into subtrees, so it cannot.
// The second result reports whether THIS call ran the compute function —
// exactly one do call per key ever gets true, which is what lets per-call
// statistics attribute the work of a shared (cross-call) entry to the one
// integration that performed it.
func (t *memoTable[K, V]) do(k K, compute func() V) (V, bool) {
	t.mu.Lock()
	c, ok := t.m[k]
	if !ok {
		c = &memoCell[V]{}
		t.m[k] = c
	}
	t.mu.Unlock()
	computed := false
	c.once.Do(func() { c.v = compute(); computed = true })
	return c.v, computed
}

// len reports the number of cells (including in-flight computations).
func (t *memoTable[K, V]) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// purge drops every cell. It must not race with do calls that are still
// computing; callers purge only between integrations (under the
// database's writer lock).
func (t *memoTable[K, V]) purge() {
	t.mu.Lock()
	t.m = make(map[K]*memoCell[V])
	t.mu.Unlock()
}

// pool fans tasks out over a bounded number of workers. The capacity is
// Workers−1 because the goroutine submitting work is itself a worker, so
// Config.Workers = N yields at most N goroutines integrating at once. A
// nil pool runs everything inline (sequential mode).
type pool struct {
	sem chan struct{}
}

func newPool(workers int) *pool {
	if workers <= 1 {
		return nil
	}
	return &pool{sem: make(chan struct{}, workers-1)}
}

// runAll executes every task, spawning a goroutine per task while worker
// slots are free and running the task inline in the submitter otherwise.
// The inline fallback guarantees progress even when every slot is held by
// a blocked worker, so recursive fan-out (components spawning pair merges
// spawning deeper components) cannot deadlock. runAll returns once all
// tasks have completed; tasks must communicate through their captured
// result slots, not through return values. A panic in a spawned worker is
// re-raised on the submitting goroutine after the wait, so callers (e.g.
// the HTTP server's recovery middleware) observe it exactly as they would
// a sequential panic instead of the process crashing.
func (p *pool) runAll(tasks []func()) {
	if p == nil || len(tasks) <= 1 {
		for _, task := range tasks {
			task()
		}
		return
	}
	var wg sync.WaitGroup
	var panicVal atomic.Value
	for _, task := range tasks[:len(tasks)-1] {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(task func()) {
				defer wg.Done()
				defer func() { <-p.sem }()
				defer func() {
					if r := recover(); r != nil {
						panicVal.CompareAndSwap(nil, workerPanic{r})
					}
				}()
				task()
			}(task)
		default:
			task()
		}
	}
	// The submitter works too: the last task always runs inline.
	tasks[len(tasks)-1]()
	wg.Wait()
	if r := panicVal.Load(); r != nil {
		panic(r.(workerPanic).val)
	}
}

// workerPanic wraps a recovered worker panic value so it can live in an
// atomic.Value regardless of its dynamic type.
type workerPanic struct{ val any }

// atomicStats mirrors Stats with atomic counters so concurrent workers
// account without locking. Every increment happens inside a compute-once
// memo computation or a deterministic sequential section, so the totals
// are identical for any worker count.
type atomicStats struct {
	oracleCalls    atomic.Int64
	mustPairs      atomic.Int64
	cannotPairs    atomic.Int64
	undecidedPairs atomic.Int64

	components          atomic.Int64
	largestComponent    atomic.Int64
	matchingsEnumerated atomic.Int64
	matchingsPruned     atomic.Int64
	possibilitiesBuilt  atomic.Int64
	incompatibleMerges  atomic.Int64
	truncatedComponents atomic.Int64
	valueConflicts      atomic.Int64

	verdictMemoHits atomic.Int64
	mergeMemoHits   atomic.Int64
	splicedChildren atomic.Int64
}

func (a *atomicStats) snapshot() Stats {
	return Stats{
		OracleCalls:         int(a.oracleCalls.Load()),
		MustPairs:           int(a.mustPairs.Load()),
		CannotPairs:         int(a.cannotPairs.Load()),
		UndecidedPairs:      int(a.undecidedPairs.Load()),
		Components:          int(a.components.Load()),
		LargestComponent:    int(a.largestComponent.Load()),
		MatchingsEnumerated: int(a.matchingsEnumerated.Load()),
		MatchingsPruned:     int(a.matchingsPruned.Load()),
		PossibilitiesBuilt:  int(a.possibilitiesBuilt.Load()),
		IncompatibleMerges:  int(a.incompatibleMerges.Load()),
		TruncatedComponents: int(a.truncatedComponents.Load()),
		ValueConflicts:      int(a.valueConflicts.Load()),
		VerdictMemoHits:     int(a.verdictMemoHits.Load()),
		MergeMemoHits:       int(a.mergeMemoHits.Load()),
		SplicedChildren:     int(a.splicedChildren.Load()),
	}
}

// noteLargest raises the largest-component watermark to edges if greater.
func (a *atomicStats) noteLargest(edges int) {
	n := int64(edges)
	for {
		cur := a.largestComponent.Load()
		if n <= cur || a.largestComponent.CompareAndSwap(cur, n) {
			return
		}
	}
}

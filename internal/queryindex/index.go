// Package queryindex builds immutable per-tree indexes for the query
// planner. An Index is computed once when a document is installed in the
// database (alongside the copy-on-write tree swap) and then consulted on
// every query, so all the per-tree aggregation — which tags exist, how
// many worlds the largest subtree of each tag spans, how much probability
// mass each tag carries — happens off the per-query hot path.
//
// Indexes are immutable after Build and safe for concurrent use. They are
// tied to a document by its structural digest: a planner handed an index
// whose Digest differs from the tree's must ignore it.
package queryindex

import (
	"math/big"
	"sort"
	"time"

	"repro/internal/pxml"
)

// MaxPathSignatures caps the number of distinct root-to-element tag paths
// an index records; documents with more mark the path table truncated.
const MaxPathSignatures = 4096

// TagInfo aggregates everything the index knows about one element tag.
type TagInfo struct {
	// Occurrences is the number of distinct element nodes carrying the
	// tag (physical count — shared subtrees counted once).
	Occurrences int
	// MinDepth is the element depth of the shallowest occurrence; root
	// elements have depth 1.
	MinDepth int
	// MaxSubtreeWorlds is the largest possible-world count of any
	// occurrence's subtree — the planner's upper bound on the local
	// enumeration cost of anchoring a query at this tag. Read-only.
	MaxSubtreeWorlds *big.Int
	// ExpectedOccurrences is the expected number of logical occurrences
	// of the tag over all possible worlds — the tag's probability mass.
	ExpectedOccurrences float64
}

// Index is an immutable per-tree query index.
type Index struct {
	digest         uint64
	worlds         *big.Int
	tags           map[string]TagInfo
	paths          map[string]int
	pathsTruncated bool
	elements       int
	maxElemWorlds  *big.Int
	buildTime      time.Duration
}

// Build constructs the index for a document. Cost is proportional to the
// physical size of the document (plus the capped path enumeration), and
// it warms the document's node summaries as a side effect, so queries
// arriving after the swap find every per-node summary already cached.
func Build(t *pxml.Tree) *Index {
	start := time.Now()
	root := t.Root()
	sum := root.Summary()
	ix := &Index{
		digest:        sum.Digest,
		worlds:        new(big.Int).Set(sum.Worlds),
		tags:          make(map[string]TagInfo),
		paths:         make(map[string]int),
		maxElemWorlds: big.NewInt(1),
	}

	// One pass over distinct nodes: occurrences, world bounds, min depth.
	// Shared nodes can be reachable at several element depths (the BFS
	// order counts prob/poss wrappers, element depth does not), so a
	// node is re-expanded whenever it is reached at a strictly smaller
	// element depth — a shortest-path relaxation; counters are bumped on
	// the first visit only.
	type item struct {
		n     *pxml.Node
		depth int // element depth: number of enclosing elements incl. self
	}
	best := make(map[*pxml.Node]int) // minimal element depth seen so far
	queue := []item{{n: root, depth: 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		prev, visited := best[it.n]
		if visited && prev <= it.depth {
			continue
		}
		best[it.n] = it.depth
		depth := it.depth
		if it.n.Kind() == pxml.KindElem {
			depth++
			info, ok := ix.tags[it.n.Tag()]
			w := it.n.Summary().Worlds
			if !ok {
				info = TagInfo{MinDepth: depth, MaxSubtreeWorlds: w}
			}
			if depth < info.MinDepth {
				info.MinDepth = depth
			}
			if !visited {
				ix.elements++
				info.Occurrences++
				if w.Cmp(info.MaxSubtreeWorlds) > 0 {
					info.MaxSubtreeWorlds = w
				}
				if w.Cmp(ix.maxElemWorlds) > 0 {
					ix.maxElemWorlds = w
				}
			}
			ix.tags[it.n.Tag()] = info
		}
		for _, k := range it.n.Children() {
			if b, ok := best[k]; !ok || depth < b {
				queue = append(queue, item{n: k, depth: depth})
			}
		}
	}
	// MaxSubtreeWorlds entries alias node summaries; copy so the index
	// owns its numbers outright.
	for tag, info := range ix.tags {
		info.MaxSubtreeWorlds = new(big.Int).Set(info.MaxSubtreeWorlds)
		ix.tags[tag] = info
	}

	// Probability mass: expected logical occurrences per tag, computed
	// bottom-up with per-node memoization (exact under the tree-factorized
	// distribution).
	for tag, exp := range expectedCounts(root) {
		info := ix.tags[tag]
		info.ExpectedOccurrences = exp
		ix.tags[tag] = info
	}

	// Path signatures: distinct (element, root-path) combinations, capped.
	ix.collectPaths(root, "")

	ix.buildTime = time.Since(start)
	return ix
}

// expectedCounts returns, per tag, the expected number of logical element
// occurrences below n (given n exists), by linearity of expectation:
// alternatives contribute probability-weighted sums, independent siblings
// add.
func expectedCounts(root *pxml.Node) map[string]float64 {
	memo := make(map[*pxml.Node]map[string]float64)
	var rec func(n *pxml.Node) map[string]float64
	rec = func(n *pxml.Node) map[string]float64 {
		if m, ok := memo[n]; ok {
			return m
		}
		m := make(map[string]float64)
		switch n.Kind() {
		case pxml.KindProb:
			for _, poss := range n.Children() {
				w := poss.Prob()
				for tag, c := range rec(poss) {
					m[tag] += w * c
				}
			}
		default: // poss or elem: children independent, counts add
			if n.Kind() == pxml.KindElem {
				m[n.Tag()] = 1
			}
			for _, k := range n.Children() {
				for tag, c := range rec(k) {
					m[tag] += c
				}
			}
		}
		memo[n] = m
		return m
	}
	return rec(root)
}

type pathKey struct {
	n    *pxml.Node
	path string
}

// collectPaths records the distinct root-to-element tag paths, visiting
// each (node, incoming path) pair once and stopping at the signature cap.
func (ix *Index) collectPaths(root *pxml.Node, base string) {
	seen := make(map[pathKey]bool)
	var rec func(n *pxml.Node, path string)
	rec = func(n *pxml.Node, path string) {
		if ix.pathsTruncated {
			return
		}
		key := pathKey{n: n, path: path}
		if seen[key] {
			return
		}
		seen[key] = true
		if n.Kind() == pxml.KindElem {
			path = path + "/" + n.Tag()
			if _, ok := ix.paths[path]; !ok && len(ix.paths) >= MaxPathSignatures {
				ix.pathsTruncated = true
				return
			}
			ix.paths[path]++
		}
		for _, k := range n.Children() {
			rec(k, path)
		}
	}
	rec(root, base)
}

// Digest returns the structural digest of the indexed document.
func (ix *Index) Digest() uint64 { return ix.digest }

// Worlds returns the document's possible-world count (a private copy).
func (ix *Index) Worlds() *big.Int { return new(big.Int).Set(ix.worlds) }

// HasTag reports whether any element with the tag occurs in the document.
func (ix *Index) HasTag(tag string) bool {
	_, ok := ix.tags[tag]
	return ok
}

// Tag returns the aggregate information for a tag. The TagInfo's
// MaxSubtreeWorlds must be treated as read-only.
func (ix *Index) Tag(tag string) (TagInfo, bool) {
	info, ok := ix.tags[tag]
	return info, ok
}

// Tags returns all indexed tags in sorted order.
func (ix *Index) Tags() []string {
	out := make([]string, 0, len(ix.tags))
	for t := range ix.tags {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// NumTags returns the number of distinct element tags.
func (ix *Index) NumTags() int { return len(ix.tags) }

// Elements returns the number of distinct element nodes.
func (ix *Index) Elements() int { return ix.elements }

// MaxElementWorlds returns the largest subtree world count over all
// elements — the planner's anchor bound for wildcard steps. Read-only.
func (ix *Index) MaxElementWorlds() *big.Int { return ix.maxElemWorlds }

// Paths returns the recorded root-to-element tag paths in sorted order.
func (ix *Index) Paths() []string {
	out := make([]string, 0, len(ix.paths))
	for p := range ix.paths {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// PathCount returns the number of distinct (element, path) occurrences
// recorded for one path signature.
func (ix *Index) PathCount(path string) int { return ix.paths[path] }

// PathsTruncated reports whether the path table hit MaxPathSignatures.
func (ix *Index) PathsTruncated() bool { return ix.pathsTruncated }

// BuildDuration returns how long Build took.
func (ix *Index) BuildDuration() time.Duration { return ix.buildTime }

package queryindex_test

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/pxml"
	"repro/internal/pxmltest"
	"repro/internal/queryindex"
)

func TestBuildFig2(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	ix := queryindex.Build(tr)

	if ix.Digest() != tr.Digest() {
		t.Fatalf("index digest %#x != tree digest %#x", ix.Digest(), tr.Digest())
	}
	if ix.Worlds().Cmp(tr.WorldCount()) != 0 {
		t.Fatalf("index worlds %s != tree worlds %s", ix.Worlds(), tr.WorldCount())
	}
	for _, tag := range []string{"addressbook", "person", "nm", "tel"} {
		if !ix.HasTag(tag) {
			t.Fatalf("missing tag %q (have %v)", tag, ix.Tags())
		}
	}
	if ix.HasTag("movie") {
		t.Fatalf("index claims absent tag")
	}

	book, _ := ix.Tag("addressbook")
	if book.Occurrences != 1 || book.MinDepth != 1 {
		t.Fatalf("addressbook info = %+v", book)
	}
	// The addressbook subtree spans all 3 worlds; its world bound must
	// reflect that.
	if book.MaxSubtreeWorlds.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("addressbook MaxSubtreeWorlds = %s, want 3", book.MaxSubtreeWorlds)
	}

	// Expected persons: 0.6*1 + 0.4*2 = 1.4.
	person, _ := ix.Tag("person")
	if person.ExpectedOccurrences < 1.4-1e-9 || person.ExpectedOccurrences > 1.4+1e-9 {
		t.Fatalf("person ExpectedOccurrences = %g, want 1.4", person.ExpectedOccurrences)
	}
	if person.MinDepth != 2 {
		t.Fatalf("person MinDepth = %d, want 2", person.MinDepth)
	}

	// Path signatures include the full chain.
	found := false
	for _, p := range ix.Paths() {
		if p == "/addressbook/person/tel" {
			found = true
		}
	}
	if !found {
		t.Fatalf("paths missing /addressbook/person/tel: %v", ix.Paths())
	}
	if ix.PathsTruncated() {
		t.Fatalf("tiny document truncated paths")
	}
	if ix.Elements() == 0 || ix.NumTags() != 4 {
		t.Fatalf("elements=%d tags=%d", ix.Elements(), ix.NumTags())
	}
}

func TestBuildSharedSubtreesCountedOnce(t *testing.T) {
	leaf := pxml.NewLeaf("tel", "1111")
	person := pxml.NewElem("person", "", pxml.Certain(leaf))
	// The same person node appears under two alternatives.
	book := pxml.NewElem("addressbook", "",
		pxml.NewProb(
			pxml.NewPoss(0.5, person),
			pxml.NewPoss(0.5, person, person),
		),
	)
	ix := queryindex.Build(pxml.CertainTree(book))
	info, _ := ix.Tag("person")
	if info.Occurrences != 1 {
		t.Fatalf("shared person counted %d times physically, want 1", info.Occurrences)
	}
	// Expected occurrences weigh each logical occurrence: 0.5*1 + 0.5*2.
	if info.ExpectedOccurrences < 1.5-1e-9 || info.ExpectedOccurrences > 1.5+1e-9 {
		t.Fatalf("ExpectedOccurrences = %g, want 1.5", info.ExpectedOccurrences)
	}
}

func TestBuildRandomTreesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		tr := pxmltest.RandomTree(rng, pxmltest.DefaultGenConfig())
		ix := queryindex.Build(tr)
		if ix.Digest() != tr.Digest() {
			t.Fatalf("iter %d: digest mismatch", i)
		}
		if ix.Worlds().Cmp(tr.WorldCount()) != 0 {
			t.Fatalf("iter %d: worlds mismatch", i)
		}
		total := 0
		for _, tag := range ix.Tags() {
			info, _ := ix.Tag(tag)
			total += info.Occurrences
		}
		if total != ix.Elements() {
			t.Fatalf("iter %d: per-tag occurrences %d != elements %d", i, total, ix.Elements())
		}
	}
}

package catalog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
)

// testOp builds a distinguishable record (the Value field carries i).
func testOp(i int) core.Op {
	return core.Op{Kind: core.OpFeedback, Query: "//x", Value: string(rune('a' + i%26)), Correct: i%2 == 0}
}

// collect replays a log into a slice.
func collect(t *testing.T, dir string, after uint64) ([]WALRecord, *wal) {
	t.Helper()
	var got []WALRecord
	w, err := recoverWAL(dir, 0, after, 0, func(e WALRecord) error {
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatalf("recoverWAL: %v", err)
	}
	return got, w
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := recoverWAL(dir, 0, 0, 0, nil)
	if err != nil {
		t.Fatalf("recoverWAL (fresh): %v", err)
	}
	for i := 0; i < 10; i++ {
		seq, err := w.append(testOp(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq = %d", i, seq)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	got, w2 := collect(t, dir, 0)
	defer w2.close()
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) || e.Op.Value != testOp(i).Value {
			t.Fatalf("record %d = %+v", i, e)
		}
	}
	// Replay resumes correctly from a watermark.
	tail, w3 := collect(t, dir, 7)
	defer w3.close()
	if len(tail) != 3 || tail[0].Seq != 8 {
		t.Fatalf("tail replay = %+v", tail)
	}
	if w3.stats().LastSeq != 10 {
		t.Fatalf("LastSeq = %d", w3.stats().LastSeq)
	}
}

func TestWALRotationAndDropThrough(t *testing.T) {
	dir := t.TempDir()
	w, err := recoverWAL(dir, 64, 0, 0, nil) // tiny limit: every record rotates
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := w.append(testOp(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := w.stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, segments = %d", st.Segments)
	}
	// Everything up to 4 is snapshotted: segments fully below survive
	// only if they hold newer records.
	if _, err := w.dropThrough(4); err != nil {
		t.Fatal(err)
	}
	w.close()
	got, w2 := collect(t, dir, 4)
	defer w2.close()
	if len(got) != 2 || got[0].Seq != 5 || got[1].Seq != 6 {
		t.Fatalf("post-drop tail = %+v", got)
	}
	// Appending after recovery continues the numbering.
	seq, err := w2.append(testOp(7))
	if err != nil || seq != 7 {
		t.Fatalf("append after recovery: seq=%d err=%v", seq, err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _ := recoverWAL(dir, 0, 0, 0, nil)
	for i := 0; i < 3; i++ {
		if _, err := w.append(testOp(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.close()
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the last record in half: a torn tail, not corruption.
	if err := os.WriteFile(seg, data[:len(data)-len(data)/4], 0o644); err != nil {
		t.Fatal(err)
	}
	got, w2 := collect(t, dir, 0)
	defer w2.close()
	if len(got) != 2 {
		t.Fatalf("replayed %d records after torn tail, want 2", len(got))
	}
	// The file was physically truncated back to the committed prefix.
	info, _ := os.Stat(seg)
	var epochSeen uint64
	var tab codec.StrTab
	if _, _, err := replaySegment(seg, 1, true, 0, 0, &epochSeen, &tab, nil); err != nil {
		t.Fatalf("re-scan after truncation: %v", err)
	}
	if next, err := w2.append(testOp(9)); err != nil || next != 3 {
		t.Fatalf("append after truncation: seq=%d err=%v (file %d bytes)", next, err, info.Size())
	}
}

func TestWALMidLogCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	w, _ := recoverWAL(dir, 64, 0, 0, nil) // force multiple segments
	for i := 0; i < 4; i++ {
		if _, err := w.append(testOp(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.close()
	// Flip a payload byte in the FIRST segment: truncation cannot repair
	// committed history, so this must refuse to load.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderLen+2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = recoverWAL(dir, 64, 0, 0, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestWALFreshStartsAfterSnapshotSeq(t *testing.T) {
	// A snapshot at seq 41 with no (or a removed) log must number new
	// records from 42, or later recoveries would skip them.
	dir := t.TempDir()
	w, err := recoverWAL(dir, 0, 41, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.append(testOp(0))
	if err != nil || seq != 42 {
		t.Fatalf("seq = %d, err = %v, want 42", seq, err)
	}
	w.close()
	got, w2 := collect(t, dir, 41)
	defer w2.close()
	if len(got) != 1 || got[0].Seq != 42 {
		t.Fatalf("replay = %+v", got)
	}
}

func TestWALBehindSnapshotRepairSurvivesReopen(t *testing.T) {
	// A log whose newest record is older than the snapshot (tail removed
	// out of band) is repaired by dropping the covered segments and
	// resuming after the snapshot — and, critically, the repaired log
	// must open cleanly again: the repair must not leave a sequence gap.
	dir := t.TempDir()
	w, err := recoverWAL(dir, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := w.append(testOp(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.close()
	// Snapshot claims seq 5 > 2: first open repairs.
	w2, err := recoverWAL(dir, 0, 5, 0, nil)
	if err != nil {
		t.Fatalf("repair open: %v", err)
	}
	seq, err := w2.append(testOp(0))
	if err != nil || seq != 6 {
		t.Fatalf("append after repair: seq=%d err=%v, want 6", seq, err)
	}
	w2.close()
	// Second open of the repaired log: no gap, no ErrCorrupt.
	got, w3 := collect(t, dir, 5)
	defer w3.close()
	if len(got) != 1 || got[0].Seq != 6 {
		t.Fatalf("replay after repaired reopen = %+v", got)
	}
}

package catalog

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/pxml"
	"repro/internal/xmlcodec"
)

// mutateN performs a deterministic mix of journaled mutations so the log
// carries every op kind replication must ship.
func mutateAll(t *testing.T, db *core.Database) {
	t.Helper()
	if _, err := db.IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	if _, err := db.IntegrateXMLString(abB); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Feedback(`//person[nm="John"]/tel`, "2222", false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Normalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.IntegrateXMLString(abC); err != nil {
		t.Fatal(err)
	}
}

// TestOpsSincePaging covers the WAL read path: full reads, paging via
// limit, empty reads at the tip, and ErrSeqGone beyond the log.
func TestOpsSincePaging(t *testing.T) {
	cat, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	mutateAll(t, db.Core())
	last := db.LastSeq()
	if last != 5 {
		t.Fatalf("LastSeq = %d, want 5", last)
	}

	recs, err := db.OpsSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("OpsSince(0) returned %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
	kinds := []core.OpKind{core.OpIntegrate, core.OpIntegrate, core.OpFeedback, core.OpNormalize, core.OpIntegrate}
	for i, k := range kinds {
		if recs[i].Op.Kind != k {
			t.Fatalf("record %d kind %q, want %q", i, recs[i].Op.Kind, k)
		}
	}

	// Paged read: two at a time, resuming from the last seq seen.
	var paged []WALRecord
	after := uint64(0)
	for {
		page, err := db.OpsSince(after, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			break
		}
		if len(page) > 2 {
			t.Fatalf("page of %d records exceeds limit 2", len(page))
		}
		paged = append(paged, page...)
		after = page[len(page)-1].Seq
	}
	// Records decoded from the binary log carry freshly decoded trees, so
	// compare structurally rather than by reflect.DeepEqual.
	if len(paged) != len(recs) {
		t.Fatalf("paged read returned %d records, full read %d", len(paged), len(recs))
	}
	for i := range recs {
		if paged[i].Seq != recs[i].Seq || paged[i].Epoch != recs[i].Epoch || paged[i].Op.Kind != recs[i].Op.Kind {
			t.Fatalf("paged record %d = %+v, full read %+v", i, paged[i], recs[i])
		}
		if len(paged[i].Op.SourceTrees) != len(recs[i].Op.SourceTrees) {
			t.Fatalf("paged record %d carries %d trees, full read %d", i, len(paged[i].Op.SourceTrees), len(recs[i].Op.SourceTrees))
		}
		for j, tr := range recs[i].Op.SourceTrees {
			if !pxml.Equal(paged[i].Op.SourceTrees[j].Root(), tr.Root()) {
				t.Fatalf("paged record %d tree %d differs from full read", i, j)
			}
		}
	}

	if recs, err := db.OpsSince(last, 0); err != nil || len(recs) != 0 {
		t.Fatalf("OpsSince(tip) = %d records, err %v; want empty, nil", len(recs), err)
	}
	if _, err := db.OpsSince(last+1, 0); !errors.Is(err, ErrSeqGone) {
		t.Fatalf("OpsSince beyond the log returned %v, want ErrSeqGone", err)
	}
}

// TestRawOpsSinceMatchesDecoded pins the invariant the zero-re-encode
// binary wire rests on: RawOpsSince returns the exact on-disk payload
// bytes, in the log's own encoding, whose decode equals the structured
// page OpsSince serves — for binary and JSON logs alike.
func TestRawOpsSinceMatchesDecoded(t *testing.T) {
	for _, enc := range []string{EncodingBinary, EncodingJSON} {
		t.Run(enc, func(t *testing.T) {
			opts := testOptions()
			opts.WALEncoding = enc
			cat, err := Open(t.TempDir(), opts)
			if err != nil {
				t.Fatal(err)
			}
			defer cat.Close()
			db, err := cat.Create("x")
			if err != nil {
				t.Fatal(err)
			}
			mutateAll(t, db.Core())

			recs, err := db.OpsSince(2, 0)
			if err != nil {
				t.Fatal(err)
			}
			raws, prefix, err := db.RawOpsSince(2, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(raws) != len(recs) || len(raws) == 0 {
				t.Fatalf("%d raw records for %d decoded", len(raws), len(recs))
			}
			// A page starting mid-segment assumes the skipped records'
			// cumulative string table — exactly what the prefix carries.
			// Seeding a table from it and decoding in order is what the
			// binary wire's receiver does.
			var tab codec.StrTab
			if err := tab.Apply(0, prefix); err != nil {
				t.Fatal(err)
			}
			wantMarker := byte(0x00)
			if enc == EncodingJSON {
				wantMarker = '{'
			}
			for i := range raws {
				if raws[i].Seq != recs[i].Seq || raws[i].Epoch != recs[i].Epoch {
					t.Fatalf("raw %d header (%d,%d), decoded (%d,%d)",
						i, raws[i].Seq, raws[i].Epoch, recs[i].Seq, recs[i].Epoch)
				}
				if raws[i].Payload[0] != wantMarker {
					t.Fatalf("raw %d starts with %#x, want %#x (log encoding %s)",
						i, raws[i].Payload[0], wantMarker, enc)
				}
				dec, err := DecodeWALRecordShared(raws[i].Payload, &tab)
				if err != nil {
					t.Fatalf("raw %d does not decode: %v", i, err)
				}
				if dec.Seq != recs[i].Seq || dec.Op.Kind != recs[i].Op.Kind {
					t.Fatalf("raw %d decodes to (%d,%s), want (%d,%s)",
						i, dec.Seq, dec.Op.Kind, recs[i].Seq, recs[i].Op.Kind)
				}
			}

			// The long-poll form serves the same raw page.
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			waited, _, err := db.WaitRawOps(ctx, 2, 0)
			if err != nil || len(waited) != len(raws) {
				t.Fatalf("WaitRawOps = %d records (err %v), want %d", len(waited), err, len(raws))
			}
		})
	}
}

// TestOpsSinceAfterCompaction: once compaction drops the shipped
// segments, tailing from before them must fail with ErrSeqGone (the
// follower re-bootstraps), while tailing from the snapshot position
// still works.
func TestOpsSinceAfterCompaction(t *testing.T) {
	opts := testOptions()
	opts.SegmentBytes = 1 // rotate after every record
	cat, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	mutateAll(t, db.Core())
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.OpsSince(0, 0); !errors.Is(err, ErrSeqGone) {
		t.Fatalf("OpsSince(0) after compaction returned %v, want ErrSeqGone", err)
	}
	snap := db.Stats().SnapshotSeq
	if snap != db.LastSeq() {
		t.Fatalf("snapshot seq %d != last seq %d after compaction", snap, db.LastSeq())
	}
	if recs, err := db.OpsSince(snap, 0); err != nil || len(recs) != 0 {
		t.Fatalf("OpsSince(snapshot) = %d records, err %v", len(recs), err)
	}
}

// TestWaitOpsLongPoll: WaitOps blocks on an up-to-date log until the next
// commit lands, and returns an empty page on timeout.
func TestWaitOpsLongPoll(t *testing.T) {
	cat, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}

	// Timeout path: nothing commits, the poll comes back empty.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	recs, err := db.WaitOps(ctx, 0, 0)
	cancel()
	if err != nil || len(recs) != 0 {
		t.Fatalf("idle WaitOps = %d records, err %v; want empty, nil", len(recs), err)
	}

	// Wakeup path: a commit lands while the poll is parked.
	type result struct {
		recs []WALRecord
		err  error
	}
	got := make(chan result, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		recs, err := db.WaitOps(ctx, 0, 0)
		got <- result{recs, err}
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := db.Core().IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-got:
		if res.err != nil || len(res.recs) != 1 || res.recs[0].Seq != 1 {
			t.Fatalf("woken WaitOps = %+v, err %v", res.recs, res.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitOps did not wake on commit")
	}
}

// TestWALOversizedRecordRotation is the rotation edge case: one journaled
// op whose encoded payload exceeds the segment byte limit must still
// append (the limit is a rotation threshold, not a record cap), rotate
// the segment afterwards, and recover cleanly from the kill-copied disk
// state.
func TestWALOversizedRecordRotation(t *testing.T) {
	const segLimit = 256
	opts := testOptions()
	opts.SegmentBytes = segLimit
	data := t.TempDir()
	cat, err := Open(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	// A single integrate whose source alone is several times the segment
	// limit, so its WAL record cannot fit into a fresh segment.
	big := "<addressbook><person><nm>" + strings.Repeat("Johannes ", 200) + "</nm></person></addressbook>"
	if len(big) < 4*segLimit {
		t.Fatalf("test document too small to exceed the segment limit")
	}
	if _, err := db.Core().IntegrateXMLString(big); err != nil {
		t.Fatalf("oversized op failed to append: %v", err)
	}
	st := db.Stats()
	if st.WAL.LastSeq != 1 {
		t.Fatalf("oversized op journaled as seq %d, want 1", st.WAL.LastSeq)
	}
	if st.WAL.Rotations != 1 {
		t.Fatalf("oversized op caused %d rotations, want exactly 1 (rotate after append)", st.WAL.Rotations)
	}
	// The record must be readable back through the shipping path.
	recs, err := db.OpsSince(0, 0)
	if err != nil || len(recs) != 1 {
		t.Fatalf("OpsSince over oversized record: %d records, err %v", len(recs), err)
	}
	// Follow-up ops land in the fresh segment and keep the log dense.
	if _, err := db.Core().IntegrateXMLString(abB); err != nil {
		t.Fatal(err)
	}
	want := db.Core().Tree()

	// Kill: copy the disk state with no clean shutdown, reopen, compare.
	killed := t.TempDir()
	copyDir(t, data, killed)
	cat2, err := Open(killed, opts)
	if err != nil {
		t.Fatalf("recovery after oversized record: %v", err)
	}
	defer cat2.Close()
	db2, err := cat2.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if !pxml.Equal(db2.Core().Tree().Root(), want.Root()) {
		t.Fatal("recovered tree differs after oversized-record rotation")
	}
	if db2.LastSeq() != 2 {
		t.Fatalf("recovered LastSeq = %d, want 2", db2.LastSeq())
	}
	cat.Close()
}

// TestApplyReplicatedSequencing covers the follower apply contract:
// in-order applies succeed, re-delivered sequences are skipped without
// effect, and a gap is ErrReplicaGap.
func TestApplyReplicatedSequencing(t *testing.T) {
	primary, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pdb, err := primary.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	mutateAll(t, pdb.Core())
	recs, err := pdb.OpsSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}

	follower, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	empty, err := xmlcodec.DecodeString("<addressbook/>")
	if err != nil {
		t.Fatal(err)
	}
	fdb, err := follower.InstallSnapshot("x", BootstrapSnapshot{Seq: 0, Tree: empty})
	if err != nil {
		t.Fatal(err)
	}

	// A gap (skipping seq 1) must be rejected before anything applies.
	if _, err := fdb.ApplyReplicated(recs[1]); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("gap apply returned %v, want ErrReplicaGap", err)
	}
	for _, rec := range recs {
		applied, err := fdb.ApplyReplicated(rec)
		if err != nil {
			t.Fatalf("apply seq %d: %v", rec.Seq, err)
		}
		if !applied {
			t.Fatalf("apply seq %d reported skipped", rec.Seq)
		}
	}
	// Re-delivery of the whole stream is a no-op.
	before := fdb.Core().Tree()
	for _, rec := range recs {
		applied, err := fdb.ApplyReplicated(rec)
		if err != nil {
			t.Fatalf("re-apply seq %d: %v", rec.Seq, err)
		}
		if applied {
			t.Fatalf("re-apply seq %d was not skipped", rec.Seq)
		}
	}
	if fdb.Core().Tree() != before {
		t.Fatal("re-delivery mutated the tree")
	}
	assertConverged(t, pdb.Core(), fdb.Core())
}

// assertConverged checks the full acceptance bundle: structural tree
// equality, identical world counts, and identical session histories.
func assertConverged(t *testing.T, primary, follower *core.Database) {
	t.Helper()
	pt, ft := primary.Tree(), follower.Tree()
	if !pxml.Equal(pt.Root(), ft.Root()) {
		t.Fatal("follower tree is not pxml.Equal to the primary's")
	}
	if pt.WorldCount().Cmp(ft.WorldCount()) != 0 {
		t.Fatalf("world counts differ: primary %s, follower %s", pt.WorldCount(), ft.WorldCount())
	}
	// JSON form: time.Time's monotonic reading (present on the side that
	// called time.Now, absent after a wire round trip) must not count as
	// a diff.
	pfb, _ := json.Marshal(primary.FeedbackHistory())
	ffb, _ := json.Marshal(follower.FeedbackHistory())
	if string(pfb) != string(ffb) {
		t.Fatalf("feedback histories differ:\nprimary  %s\nfollower %s", pfb, ffb)
	}
	if len(primary.IntegrationHistory()) != len(follower.IntegrationHistory()) {
		t.Fatalf("integration history lengths differ: %d vs %d",
			len(primary.IntegrationHistory()), len(follower.IntegrationHistory()))
	}
}

// TestFollowerCrashRestartEveryBoundary kills the follower at every op
// boundary of the replication stream — after the journaled apply, before
// any acknowledgment reaches the primary — restarts it from disk, and
// re-delivers the stream from one op back (exactly what a reconnecting
// tailer does). At every boundary the restart must resume from the
// durable lastApplied, skip the re-delivered op, and converge to a
// pxml.Equal tree with identical world count and no double-applied
// feedback history.
func TestFollowerCrashRestartEveryBoundary(t *testing.T) {
	primary, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	pdb, err := primary.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	mutateAll(t, pdb.Core())
	recs, err := pdb.OpsSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for boundary := 0; boundary <= len(recs); boundary++ {
		t.Run(fmt.Sprintf("boundary=%d", boundary), func(t *testing.T) {
			dir := t.TempDir()
			follower, err := Open(dir, testOptions())
			if err != nil {
				t.Fatal(err)
			}
			empty, err := xmlcodec.DecodeString("<addressbook/>")
			if err != nil {
				t.Fatal(err)
			}
			fdb, err := follower.InstallSnapshot("x", BootstrapSnapshot{Seq: 0, Tree: empty})
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range recs[:boundary] {
				if _, err := fdb.ApplyReplicated(rec); err != nil {
					t.Fatalf("apply seq %d: %v", rec.Seq, err)
				}
			}
			// Kill between apply and ack: the catalog is abandoned without
			// compaction (testOptions disables it), so only the fsynced
			// WAL bytes survive — the exact disk state a kill -9 leaves.
			killed := t.TempDir()
			copyDir(t, dir, killed)
			follower.Close()

			restarted, err := Open(killed, testOptions())
			if err != nil {
				t.Fatalf("restart at boundary %d: %v", boundary, err)
			}
			defer restarted.Close()
			fdb2, err := restarted.Get("x")
			if err != nil {
				t.Fatal(err)
			}
			if got := fdb2.LastSeq(); got != uint64(boundary) {
				t.Fatalf("restarted lastApplied = %d, want %d", got, boundary)
			}
			// Re-deliver from one op before the boundary, as a reconnect
			// that never saw the ack would: the overlap must be skipped.
			resume := boundary - 1
			if resume < 0 {
				resume = 0
			}
			for _, rec := range recs[resume:] {
				applied, err := fdb2.ApplyReplicated(rec)
				if err != nil {
					t.Fatalf("resume apply seq %d: %v", rec.Seq, err)
				}
				if applied != (rec.Seq > uint64(boundary)) {
					t.Fatalf("seq %d applied=%v at boundary %d", rec.Seq, applied, boundary)
				}
			}
			assertConverged(t, pdb.Core(), fdb2.Core())
		})
	}
}

// TestInstallSnapshotResets: installing over an existing (diverged)
// database discards its state, log and all, and resumes numbering at the
// snapshot position.
func TestInstallSnapshotResets(t *testing.T) {
	cat, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	mutateAll(t, db.Core())

	want, err := xmlcodec.DecodeString(abC)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := cat.InstallSnapshot("x", BootstrapSnapshot{Seq: 42, Tree: want})
	if err != nil {
		t.Fatal(err)
	}
	if !pxml.Equal(db2.Core().Tree().Root(), want.Root()) {
		t.Fatal("installed tree differs from the snapshot")
	}
	if got := db2.LastSeq(); got != 42 {
		t.Fatalf("post-install LastSeq = %d, want the snapshot position 42", got)
	}
	if _, err := db2.OpsSince(0, 0); !errors.Is(err, ErrSeqGone) {
		t.Fatalf("pre-snapshot positions should be gone, got %v", err)
	}
	// The next mutation continues the primary numbering.
	if _, err := db2.Core().IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	if got := db2.LastSeq(); got != 43 {
		t.Fatalf("post-install mutation journaled as %d, want 43", got)
	}
	dirs, err := filepath.Glob(filepath.Join(cat.Dir(), "x", walDirName, "seg-*"))
	if err != nil || len(dirs) == 0 {
		t.Fatalf("expected fresh wal segments, got %v (err %v)", dirs, err)
	}
}

// Replication support: the catalog's write-ahead log doubles as a
// shipping log. A primary serves its committed records through OpsSince /
// WaitOps (the long-poll read path); a follower applies shipped records
// through ApplyReplicated, which re-journals each op into the follower's
// OWN write-ahead log at the same sequence before the tree swap — so a
// follower is crash-safe by exactly the machinery that makes a primary
// crash-safe, and its durable lastApplied position is simply its log's
// last committed sequence. InstallSnapshot bootstraps (or resets) a
// follower database from a primary state snapshot at a known log
// position, after which incremental tailing resumes from there.
package catalog

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dtd"
	"repro/internal/feedback"
	"repro/internal/integrate"
	"repro/internal/pxml"
	"repro/internal/store"
)

// ErrReplicaGap is returned by ApplyReplicated when the shipped sequence
// does not continue the follower's log: records were lost between primary
// and follower, and the follower must resynchronize from a snapshot.
var ErrReplicaGap = errors.New("catalog: replicated op does not continue the local log")

// ErrStaleEpoch is returned when a shipped record (or snapshot) carries
// a cluster epoch below the local one: the sender is a deposed primary
// still writing under its old term. Its records must never be applied —
// accepting them would fork history past the promotion point — and the
// sender should step down when it sees this error.
var ErrStaleEpoch = errors.New("catalog: record epoch below local epoch (stale primary)")

// LastSeq returns the sequence of the newest committed record in the
// database's write-ahead log — on a follower, the durable lastApplied
// position tailing resumes from.
func (d *DB) LastSeq() uint64 { return d.wal.stats().LastSeq }

// OpsSince returns up to limit committed records with sequence > after,
// oldest first (limit <= 0 means a default batch). It fails with
// ErrSeqGone when the range was compacted away or lies beyond the log;
// the caller must then resynchronize from a snapshot.
func (d *DB) OpsSince(after uint64, limit int) ([]WALRecord, error) {
	return d.wal.opsSince(after, limit)
}

// RawOpsSince is OpsSince without the decode: the same page of records
// as the exact payload bytes the log holds. The binary replication wire
// serves from this — shipping a record then costs a CRC check and a
// header peek, not a tree decode plus re-encode per page. The returned
// prefix is the interned-string table the first shipped record's strtab
// delta is based on (the cumulative deltas of the same-segment records
// before it); the wire ships it ahead of the page so the receiver can
// resolve string refs without holding per-peer decode state.
func (d *DB) RawOpsSince(after uint64, limit int) ([]RawWALRecord, []string, error) {
	return d.wal.rawOpsSince(after, limit)
}

// WaitOps is OpsSince with long-poll semantics: when no records past
// after exist yet, it blocks until one commits or ctx ends, and a timeout
// returns an empty page with no error (the normal idle long-poll result).
// Position errors (ErrSeqGone) are returned immediately.
func (d *DB) WaitOps(ctx context.Context, after uint64, limit int) ([]WALRecord, error) {
	for {
		// Take the commit signal before checking the log: a commit landing
		// between the check and the select then finds a fresh channel and
		// cannot be missed.
		ch := d.commitSignal()
		recs, err := d.OpsSince(after, limit)
		if err != nil || len(recs) > 0 {
			return recs, err
		}
		select {
		case <-ctx.Done():
			return nil, nil
		case <-ch:
		}
	}
}

// WaitRawOps is RawOpsSince with the same long-poll semantics as
// WaitOps.
func (d *DB) WaitRawOps(ctx context.Context, after uint64, limit int) ([]RawWALRecord, []string, error) {
	for {
		ch := d.commitSignal()
		recs, prefix, err := d.RawOpsSince(after, limit)
		if err != nil || len(recs) > 0 {
			return recs, prefix, err
		}
		select {
		case <-ctx.Done():
			return nil, nil, nil
		case <-ch:
		}
	}
}

// notifyCommit broadcasts a durable append to blocked WaitOps callers by
// closing the current signal channel and replacing it.
func (d *DB) notifyCommit() {
	d.commitMu.Lock()
	close(d.commitCh)
	d.commitCh = make(chan struct{})
	d.commitMu.Unlock()
}

// commitSignal returns a channel closed at the next durable append.
func (d *DB) commitSignal() <-chan struct{} {
	d.commitMu.Lock()
	defer d.commitMu.Unlock()
	return d.commitCh
}

// ApplyReplicated applies one record shipped from a primary at the
// primary's sequence and epoch. A sequence at or below the local log's
// last committed record is skipped (idempotent re-delivery after a
// reconnect); a sequence past lastApplied+1 is ErrReplicaGap. A record
// whose epoch is below the local epoch is ErrStaleEpoch — the sender is
// a deposed primary and nothing it ships may land here; a higher epoch
// raises the local one first, so the follower's log mirrors the
// primary's record for record, epochs included. The apply runs through
// core.ApplyOp, i.e. the same journaled-then-swap discipline as a local
// mutation: the op is durably appended to the follower's own write-ahead
// log — necessarily at the shipped sequence — before the tree swap
// exposes it, so a kill at any instant resumes from the durable
// lastApplied without double-applying. The returned bool reports whether
// the op was applied (false: skipped as already applied).
func (d *DB) ApplyReplicated(rec WALRecord) (bool, error) {
	d.replMu.Lock()
	defer d.replMu.Unlock()
	last := d.LastSeq()
	if rec.Seq <= last {
		return false, nil
	}
	if local := d.wal.currentEpoch(); rec.Epoch < local {
		return false, fmt.Errorf("%w: op %d shipped at epoch %d, local epoch is %d", ErrStaleEpoch, rec.Seq, rec.Epoch, local)
	}
	if rec.Seq != last+1 {
		return false, fmt.Errorf("%w: got sequence %d after %d", ErrReplicaGap, rec.Seq, last)
	}
	// Raise before the apply so the journal append underneath ApplyOp
	// stamps the shipped epoch.
	d.wal.raiseEpoch(rec.Epoch)
	if err := d.core.ApplyOp(rec.Op); err != nil {
		return false, fmt.Errorf("catalog: %s: applying replicated op %d: %w", d.name, rec.Seq, err)
	}
	if got := d.LastSeq(); got != rec.Seq {
		// A local (non-replicated) mutation slipped in between and stole
		// the sequence — the follower has diverged from the primary's
		// numbering and must resynchronize.
		return false, fmt.Errorf("%w: op shipped as %d journaled locally as %d", ErrReplicaGap, rec.Seq, got)
	}
	return true, nil
}

// BootstrapSnapshot is the state a follower installs to (re)join a
// primary: the document as of a primary log position, plus the schema and
// session histories that position reflects.
type BootstrapSnapshot struct {
	// Seq is the primary log sequence the tree corresponds to; tailing
	// resumes at Seq+1.
	Seq uint64
	// Epoch is the cluster epoch in force at Seq (0 for pre-epoch
	// primaries). Installing below the local epoch is refused.
	Epoch        uint64
	Tree         *pxml.Tree
	Schema       *dtd.Schema
	Integrations []integrate.Stats
	Feedback     []feedback.Event
	// Pending is the primary's ingest queue at Seq: sources accepted but
	// not yet integrated. Without it, an apply-queued record past Seq
	// would name tickets the follower cannot resolve.
	Pending []store.PendingDoc
	// Comment is stored in the snapshot manifest ("" gets a default).
	Comment string
}

// InstallSnapshot bootstraps (or resets) the named database from a
// primary snapshot: any existing local state — tree, write-ahead log,
// named snapshots — is discarded, the shipped state is persisted as the
// database's state snapshot at log position snap.Seq (v2 store format,
// durable before the database opens), and the database is reopened with a
// fresh log continuing at Seq+1. Used by followers joining a primary and
// recovering from divergence.
func (c *Catalog) InstallSnapshot(name string, snap BootstrapSnapshot) (*DB, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	if snap.Tree == nil {
		return nil, errors.New("catalog: nil snapshot tree")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("catalog: closed")
	}
	if old, ok := c.dbs[name]; ok {
		if e := old.Epoch(); snap.Epoch < e {
			// A snapshot from a deposed primary must never replace state
			// committed under a newer epoch.
			return nil, fmt.Errorf("%w: snapshot at epoch %d, local epoch is %d", ErrStaleEpoch, snap.Epoch, e)
		}
		delete(c.dbs, name)
		if err := old.close(false); err != nil {
			return nil, err
		}
	}
	dbDir := filepath.Join(c.dir, name)
	if err := os.RemoveAll(dbDir); err != nil {
		return nil, err
	}
	comment := snap.Comment
	if comment == "" {
		comment = "replication bootstrap of " + name
	}
	if _, err := store.SaveWith(filepath.Join(dbDir, stateDirName), snap.Tree, snap.Schema, store.SaveOptions{
		Comment:      comment,
		LogSeq:       snap.Seq,
		Epoch:        snap.Epoch,
		Integrations: snap.Integrations,
		Feedback:     snap.Feedback,
		Pending:      snap.Pending,
	}); err != nil {
		return nil, err
	}
	db, err := c.openDB(name, 0)
	if err != nil {
		return nil, err
	}
	c.dbs[name] = db
	return db, nil
}

//go:build unix

package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// acquireLock takes an advisory exclusive lock on <dir>/LOCK, so two
// processes (say, a running server and a `db` CLI invocation) cannot
// append to the same write-ahead logs concurrently. The lock dies with
// the process — a SIGKILL leaves nothing stale to clean up, which is
// exactly the recovery story the catalog promises.
func acquireLock(dir string) (release func(), err error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("catalog: data directory %s is locked by another process: %w", dir, err)
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}

package catalog

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

// frameBytes encodes one WAL record in the on-disk frame format
// ([len][crc32c][json]) exactly as append writes it — with Epoch
// omitempty, a record at epoch 0 round-trips byte-identically to a
// pre-epoch (v2) log, which is what makes the compat cases below real.
func frameBytes(t *testing.T, rec WALRecord) []byte {
	t.Helper()
	payload, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeaderLen:], payload)
	return frame
}

// writeSegment hand-writes a WAL segment from records, optionally
// chopping chop bytes off the tail (a torn final write).
func writeSegment(t *testing.T, dir string, recs []WALRecord, chop int) {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range recs {
		buf.Write(frameBytes(t, rec))
	}
	b := buf.Bytes()
	b = b[:len(b)-chop]
	if err := os.WriteFile(filepath.Join(dir, segName(recs[0].Seq)), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWALEpochCompat is the v2→v3 log-format table: epoch-less logs
// recover as epoch 0, mixed epochs replay in order, regressions are
// corruption, records below the manifest epoch are corruption, and a
// torn tail still truncates rather than rejects.
func TestWALEpochCompat(t *testing.T) {
	op := testOp(0)
	cases := []struct {
		name      string
		recs      []WALRecord
		chop      int
		snapEpoch uint64
		wantN     int    // records replayed (when no error)
		wantEpoch uint64 // recovered wal epoch (when no error)
		wantErr   bool
	}{
		{
			// A log written before epochs existed: no epoch key at all in
			// the JSON (omitempty at 0). Must recover as epoch 0.
			name:      "v2-epochless",
			recs:      []WALRecord{{Seq: 1, Op: op}, {Seq: 2, Op: op}},
			wantN:     2,
			wantEpoch: 0,
		},
		{
			// A log spanning a promotion: epochs step up mid-stream.
			name:      "mixed-epochs-in-order",
			recs:      []WALRecord{{Seq: 1, Op: op}, {Seq: 2, Epoch: 1, Op: op}, {Seq: 3, Epoch: 1, Op: op}, {Seq: 4, Epoch: 3, Op: op}},
			wantN:     4,
			wantEpoch: 3,
		},
		{
			// Epochs are a fencing token: they never go backwards along a
			// log. A regression is corruption, not data.
			name:    "epoch-regression",
			recs:    []WALRecord{{Seq: 1, Epoch: 2, Op: op}, {Seq: 2, Epoch: 1, Op: op}},
			wantErr: true,
		},
		{
			// The manifest pinned epoch 2; a live record claiming epoch 1
			// cannot be a continuation of that state.
			name:      "record-below-manifest-epoch",
			recs:      []WALRecord{{Seq: 1, Epoch: 1, Op: op}},
			snapEpoch: 2,
			wantErr:   true,
		},
		{
			// Torn tail semantics are unchanged by the epoch field: the
			// valid prefix replays, the torn frame is truncated away.
			name:      "torn-tail-truncates",
			recs:      []WALRecord{{Seq: 1, Epoch: 1, Op: op}, {Seq: 2, Epoch: 1, Op: op}},
			chop:      3,
			wantN:     1,
			wantEpoch: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeSegment(t, dir, tc.recs, tc.chop)
			var got []WALRecord
			w, err := recoverWAL(dir, 0, 0, tc.snapEpoch, func(e WALRecord) error {
				got = append(got, e)
				return nil
			})
			if tc.wantErr {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("recoverWAL = %v, want ErrCorrupt", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("recoverWAL: %v", err)
			}
			defer w.close()
			if len(got) != tc.wantN {
				t.Fatalf("replayed %d records, want %d", len(got), tc.wantN)
			}
			if e := w.currentEpoch(); e != tc.wantEpoch {
				t.Fatalf("recovered epoch %d, want %d", e, tc.wantEpoch)
			}
			// The log must keep accepting appends, stamped at the
			// recovered epoch.
			seq, err := w.append(testOp(9))
			if err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if want := uint64(tc.wantN) + 1; seq != want {
				t.Fatalf("append seq %d, want %d", seq, want)
			}
		})
	}
}

// TestManifestV2Compat: a snapshot manifest written by the previous
// release (format_version 2, no epoch key) still loads, pinning the
// database at epoch 0.
func TestManifestV2Compat(t *testing.T) {
	dir := t.TempDir()
	cat, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Core().IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	wantTree := db.Core().Tree()
	if err := cat.Close(); err != nil { // clean close compacts: WAL folded into the snapshot
		t.Fatal(err)
	}

	// Rewrite the snapshot as the previous release would have written it:
	// XML document payload, format_version 2, no epoch key.
	stateDir := filepath.Join(dir, "x", stateDirName)
	snap, err := store.Load(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveWith(stateDir, snap.Tree, snap.Schema, store.SaveOptions{
		Encoding:     store.EncodingXML,
		LogSeq:       snap.Manifest.LogSeq,
		Integrations: snap.Manifest.Integrations,
		Feedback:     snap.Manifest.Feedback,
	}); err != nil {
		t.Fatal(err)
	}
	mPath := filepath.Join(stateDir, "manifest.json")
	raw, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	m["format_version"] = 2
	delete(m, "epoch")
	raw, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	cat2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatalf("reopening with v2 manifest: %v", err)
	}
	defer cat2.Close()
	db2, err := cat2.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if db2.Epoch() != 0 {
		t.Fatalf("v2 manifest recovered at epoch %d, want 0", db2.Epoch())
	}
	if db2.Core().Tree().Digest() != wantTree.Digest() {
		t.Fatal("v2 manifest recovered a different tree")
	}
}

// TestRaiseEpochDurable: a raised epoch survives reopen (the promotion
// fence must not evaporate in a crash right after promote), and every
// subsequent append is stamped with it.
func TestRaiseEpochDurable(t *testing.T) {
	dir := t.TempDir()
	cat, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Core().IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	if err := cat.RaiseEpoch(7); err != nil {
		t.Fatal(err)
	}
	if cat.Epoch() != 7 || db.Epoch() != 7 {
		t.Fatalf("epochs after raise: catalog %d, db %d, want 7", cat.Epoch(), db.Epoch())
	}
	// Raising is monotonic: a lower value is a no-op, not a regression.
	if err := cat.RaiseEpoch(3); err != nil {
		t.Fatal(err)
	}
	if cat.Epoch() != 7 {
		t.Fatalf("epoch regressed to %d", cat.Epoch())
	}
	if _, err := db.Core().IntegrateXMLString(abB); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	cat2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()
	if cat2.Epoch() != 7 {
		t.Fatalf("reopened catalog at epoch %d, want 7", cat2.Epoch())
	}
	db2, err := cat2.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if db2.Epoch() != 7 {
		t.Fatalf("reopened db at epoch %d, want 7", db2.Epoch())
	}
	// New databases are born at the catalog's epoch, never behind it.
	y, err := cat2.Create("y")
	if err != nil {
		t.Fatal(err)
	}
	if y.Epoch() != 7 {
		t.Fatalf("new db born at epoch %d, want 7", y.Epoch())
	}
}

// opIntegrate builds a shippable integrate op from source XML.
func opIntegrate(t *testing.T, src string) core.Op {
	t.Helper()
	return core.Op{Kind: core.OpIntegrate, Sources: []string{src}}
}

// TestApplyReplicatedStaleEpoch: a shipped record from a lower epoch —
// the signature of a deposed primary — is refused with ErrStaleEpoch and
// leaves the local state untouched.
func TestApplyReplicatedStaleEpoch(t *testing.T) {
	cat, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.ApplyReplicated(WALRecord{Seq: 1, Op: opIntegrate(t, abA)}); err != nil {
		t.Fatal(err)
	}
	if err := db.RaiseEpoch(2); err != nil {
		t.Fatal(err)
	}
	before := db.Core().Tree().Digest()

	// Fresh seq, stale epoch: rejected, nothing applied.
	_, err = db.ApplyReplicated(WALRecord{Seq: 2, Epoch: 1, Op: opIntegrate(t, abB)})
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale record: err = %v, want ErrStaleEpoch", err)
	}
	if db.LastSeq() != 1 || db.Core().Tree().Digest() != before {
		t.Fatal("stale record mutated local state")
	}

	// An already-applied seq stays a dup-skip regardless of its epoch:
	// retransmits of genuinely old records are not an error.
	applied, err := db.ApplyReplicated(WALRecord{Seq: 1, Op: opIntegrate(t, abA)})
	if err != nil || applied {
		t.Fatalf("dup record: applied=%v err=%v, want skip", applied, err)
	}

	// A record at the local epoch (the new primary shipping) applies.
	if _, err := db.ApplyReplicated(WALRecord{Seq: 2, Epoch: 2, Op: opIntegrate(t, abB)}); err != nil {
		t.Fatalf("current-epoch record: %v", err)
	}
	if db.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", db.LastSeq())
	}
}

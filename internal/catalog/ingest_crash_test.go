package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pxml"
	"repro/internal/xmlcodec"
)

// TestCrashRecoveryQueueEveryByteOffset extends the every-byte crash
// property to the ingest queue's two record kinds. The log under test:
//
//	frame 1  integrate abA        (committed baseline, never cut)
//	frame 2  enqueue abB          (cut at every byte)
//	frame 3  apply-queued ticket  (cut at every byte)
//
// For every cut the recovered catalog must land on a consistent
// (tree, queue) pair — a torn enqueue loses the unacknowledged ticket, a
// torn apply leaves the ticket pending — and restarting the drainer from
// there must reach the committed post state without ever applying a
// source twice (exactly-once).
func TestCrashRecoveryQueueEveryByteOffset(t *testing.T) {
	base := t.TempDir()
	data := filepath.Join(base, "data")
	opts := testOptions()
	opts.Config.IngestDepth = 8
	cat, err := Open(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	cdb := db.Core()
	seg := filepath.Join(data, "x", walDirName, segName(1))

	if _, err := cdb.IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	preTree := cdb.Tree()
	size0 := segSize(t, seg)

	src, err := xmlcodec.DecodeString(abB)
	if err != nil {
		t.Fatal(err)
	}
	ticket, err := cdb.Enqueue([]*pxml.Tree{src})
	if err != nil {
		t.Fatal(err)
	}
	size1 := segSize(t, seg)
	if size1 <= size0 {
		t.Fatalf("enqueue wrote no bytes? %d -> %d", size0, size1)
	}

	cdb.StartIngest()
	waitTicketApplied(t, cdb, ticket)
	cdb.StopIngest()
	postTree := cdb.Tree()
	size2 := segSize(t, seg)
	if size2 <= size1 {
		t.Fatalf("apply wrote no bytes? %d -> %d", size1, size2)
	}
	// No clean shutdown: only the fsynced bytes exist.

	for cut := size0; cut <= size2; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			killed := t.TempDir()
			copyDir(t, data, killed)
			if err := os.Truncate(filepath.Join(killed, "x", walDirName, segName(1)), cut); err != nil {
				t.Fatal(err)
			}
			cat2, err := Open(killed, opts)
			if err != nil {
				t.Fatalf("recovery failed at cut %d: %v", cut, err)
			}
			defer cat2.Close()
			db2, err := cat2.Get("x")
			if err != nil {
				t.Fatal(err)
			}
			c2 := db2.Core()

			// What the cut leaves behind: a torn enqueue was never
			// acknowledged (ticket gone); a complete enqueue with a torn
			// apply leaves the ticket pending; the full log is applied.
			wantTree, wantPending := preTree, 0
			switch {
			case cut < size1:
				// torn enqueue: nothing accepted
			case cut < size2:
				wantPending = 1
			default:
				wantTree = postTree
			}
			if got := c2.IngestStats().Depth; got != wantPending {
				t.Fatalf("cut %d: %d pending entries, want %d", cut, got, wantPending)
			}
			if !pxml.Equal(c2.Tree().Root(), wantTree.Root()) {
				t.Fatalf("cut %d: recovered tree mismatch", cut)
			}

			// Resume the drainer: a pending ticket must complete, an
			// applied one must NOT re-apply (exactly-once).
			c2.StartIngest()
			defer c2.StopIngest()
			final := preTree
			if cut >= size1 {
				final = postTree
			}
			deadline := time.Now().Add(10 * time.Second)
			for c2.IngestStats().Depth > 0 {
				if time.Now().After(deadline) {
					t.Fatalf("cut %d: queue did not drain", cut)
				}
				time.Sleep(time.Millisecond)
			}
			if !pxml.Equal(c2.Tree().Root(), final.Root()) {
				t.Fatalf("cut %d: post-drain tree mismatch", cut)
			}
			if c2.Tree().WorldCount().Cmp(final.WorldCount()) != 0 {
				t.Fatalf("cut %d: post-drain world count %s != %s",
					cut, c2.Tree().WorldCount(), final.WorldCount())
			}
			// The recovered log keeps accepting work.
			if _, err := c2.IntegrateXMLString(abC); err != nil {
				t.Fatalf("cut %d: append after recovery: %v", cut, err)
			}
		})
	}
}

// TestQueueSurvivesCompaction: pending entries live in the snapshot
// manifest, so a compaction between accept and apply cannot strand the
// later apply record.
func TestQueueSurvivesCompaction(t *testing.T) {
	base := t.TempDir()
	data := filepath.Join(base, "data")
	opts := testOptions()
	opts.Config.IngestDepth = 8
	cat, err := Open(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	cdb := db.Core()
	if _, err := cdb.IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	src, err := xmlcodec.DecodeString(abB)
	if err != nil {
		t.Fatal(err)
	}
	ticket, err := cdb.Enqueue([]*pxml.Tree{src})
	if err != nil {
		t.Fatal(err)
	}
	// Compact with the entry still pending (no drainer running), then
	// reopen: the queue must come back from the manifest.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	cat2, err := Open(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()
	db2, err := cat2.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	c2 := db2.Core()
	if got := c2.IngestStats().Depth; got != 1 {
		t.Fatalf("pending entries after compaction round-trip: %d, want 1", got)
	}
	c2.StartIngest()
	defer c2.StopIngest()
	if st := waitTicketApplied(t, c2, ticket); st.State != core.TicketApplied {
		t.Fatalf("recovered ticket: %+v", st)
	}
}

func segSize(t *testing.T, seg string) int64 {
	t.Helper()
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func waitTicketApplied(t *testing.T, db *core.Database, ticket string) core.TicketStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := db.TicketStatus(ticket)
		if err != nil {
			t.Fatalf("ticket %s: %v", ticket, err)
		}
		if st.State != core.TicketPending {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("ticket %s still pending after 10s", ticket)
		}
		time.Sleep(time.Millisecond)
	}
}

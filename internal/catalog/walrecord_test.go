package catalog

import (
	"encoding/json"
	"fmt"
	"math/big"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/feedback"
	"repro/internal/integrate"
	"repro/internal/pxml"
	"repro/internal/xmlcodec"
)

// mustTree decodes marker XML into a tree or fails the test.
func mustTree(t *testing.T, xml string) *pxml.Tree {
	t.Helper()
	tree, err := xmlcodec.DecodeString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// sampleRecords builds one record per op kind, covering both tree
// representations (decoded arenas and XML strings).
func sampleRecords(t *testing.T) []WALRecord {
	t.Helper()
	when := time.Date(2026, 8, 8, 12, 30, 45, 123456789, time.FixedZone("X", 3600))
	return []WALRecord{
		{Seq: 1, Epoch: 0, Op: core.Op{Kind: core.OpIntegrate, SourceTrees: []*pxml.Tree{mustTree(t, abA)}}},
		{Seq: 2, Epoch: 1, Op: core.Op{Kind: core.OpIntegrate, Sources: []string{abA}}},
		{Seq: 3, Epoch: 1, Op: core.Op{Kind: core.OpBatch, SourceTrees: []*pxml.Tree{mustTree(t, abA), mustTree(t, abB)}}},
		{Seq: 4, Epoch: 2, Op: core.Op{Kind: core.OpFeedback, Query: "//person/tel", Value: "1111", Correct: true, When: when}},
		{Seq: 5, Epoch: 2, Op: core.Op{Kind: core.OpNormalize}},
		{Seq: 6, Epoch: 2, Op: core.Op{Kind: core.OpReplace, TreeValue: mustTree(t, abB)}},
		{Seq: 7, Epoch: 3, Op: core.Op{Kind: core.OpLoad, TreeValue: mustTree(t, abC), Schema: "<!ELEMENT addressbook (person*)>",
			Integrations: []integrate.Stats{{OracleCalls: 4, Components: 1}},
			Events:       []feedback.Event{{Query: "//q", Value: "v", PriorP: 0.5, WorldsBefore: big.NewInt(4), WorldsAfter: big.NewInt(2), When: when}}}},
	}
}

// opTree returns the tree an op carries in either representation.
func opTrees(t *testing.T, op core.Op) []*pxml.Tree {
	t.Helper()
	var out []*pxml.Tree
	out = append(out, op.SourceTrees...)
	for _, s := range op.Sources {
		out = append(out, mustTree(t, s))
	}
	if op.TreeValue != nil {
		out = append(out, op.TreeValue)
	} else if op.Tree != "" {
		out = append(out, mustTree(t, op.Tree))
	}
	return out
}

// TestWALRecordBinaryRoundTrip drives every op kind through the binary
// payload format and back, checking fields and documents survive.
func TestWALRecordBinaryRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords(t) {
		payload, err := EncodeWALRecord(rec)
		if err != nil {
			t.Fatalf("seq %d: encode: %v", rec.Seq, err)
		}
		if payload[0] != walBinaryMarker {
			t.Fatalf("seq %d: payload starts with %#x", rec.Seq, payload[0])
		}
		got, err := DecodeWALRecord(payload)
		if err != nil {
			t.Fatalf("seq %d: decode: %v", rec.Seq, err)
		}
		if got.Seq != rec.Seq || got.Epoch != rec.Epoch || got.Op.Kind != rec.Op.Kind {
			t.Fatalf("seq %d: round trip = %+v", rec.Seq, got)
		}
		wantTrees, gotTrees := opTrees(t, rec.Op), opTrees(t, got.Op)
		if len(wantTrees) != len(gotTrees) {
			t.Fatalf("seq %d: %d trees round-tripped to %d", rec.Seq, len(wantTrees), len(gotTrees))
		}
		for i := range wantTrees {
			if !pxml.Equal(wantTrees[i].Root(), gotTrees[i].Root()) {
				t.Fatalf("seq %d: tree %d differs after round trip", rec.Seq, i)
			}
		}
		switch rec.Op.Kind {
		case core.OpFeedback:
			if got.Op.Query != rec.Op.Query || got.Op.Value != rec.Op.Value || got.Op.Correct != rec.Op.Correct {
				t.Fatalf("seq %d: feedback fields = %+v", rec.Seq, got.Op)
			}
			if !got.Op.When.Equal(rec.Op.When) {
				t.Fatalf("seq %d: When %v != %v", rec.Seq, got.Op.When, rec.Op.When)
			}
		case core.OpLoad:
			if got.Op.Schema != rec.Op.Schema {
				t.Fatalf("seq %d: schema %q", rec.Seq, got.Op.Schema)
			}
			if len(got.Op.Integrations) != len(rec.Op.Integrations) || len(got.Op.Events) != len(rec.Op.Events) {
				t.Fatalf("seq %d: histories = %d/%d", rec.Seq, len(got.Op.Integrations), len(got.Op.Events))
			}
			if got.Op.Integrations[0].OracleCalls != 4 || got.Op.Events[0].WorldsBefore.Cmp(big.NewInt(4)) != 0 {
				t.Fatalf("seq %d: history contents = %+v %+v", rec.Seq, got.Op.Integrations[0], got.Op.Events[0])
			}
		}
	}
}

// TestWALRecordSharedRoundTrip drives every op kind through the v3
// shared-table format against one running table: the replayed StrTab
// decodes them in order, the table converges with the append side, the
// stream is smaller than its self-contained form, and a mid-table record
// replayed out of order is refused rather than misread.
func TestWALRecordSharedRoundTrip(t *testing.T) {
	var shared codec.SharedStrings
	recs := sampleRecords(t)
	var payloads [][]byte
	var sharedBytes, selfBytes int
	for _, rec := range recs {
		payload, err := EncodeWALRecordShared(rec, &shared)
		if err != nil {
			t.Fatalf("seq %d: encode shared: %v", rec.Seq, err)
		}
		if payload[0] != walBinaryMarker || payload[1] != walBinaryVersionShared {
			t.Fatalf("seq %d: header %#x %#x", rec.Seq, payload[0], payload[1])
		}
		payloads = append(payloads, payload)
		sharedBytes += len(payload)
		self, err := EncodeWALRecord(rec)
		if err != nil {
			t.Fatalf("seq %d: encode self-contained: %v", rec.Seq, err)
		}
		selfBytes += len(self)
	}
	var tab codec.StrTab
	for i, payload := range payloads {
		rec := recs[i]
		got, err := DecodeWALRecordShared(payload, &tab)
		if err != nil {
			t.Fatalf("seq %d: decode: %v", rec.Seq, err)
		}
		if got.Seq != rec.Seq || got.Epoch != rec.Epoch || got.Op.Kind != rec.Op.Kind {
			t.Fatalf("seq %d: round trip = %+v", rec.Seq, got)
		}
		wantTrees, gotTrees := opTrees(t, rec.Op), opTrees(t, got.Op)
		if len(wantTrees) != len(gotTrees) {
			t.Fatalf("seq %d: %d trees round-tripped to %d", rec.Seq, len(wantTrees), len(gotTrees))
		}
		for j := range wantTrees {
			if !pxml.Equal(wantTrees[j].Root(), gotTrees[j].Root()) {
				t.Fatalf("seq %d: tree %d differs after round trip", rec.Seq, j)
			}
		}
	}
	if tab.Len() != shared.Len() || tab.Len() == 0 {
		t.Fatalf("replayed table holds %d entries, append side %d", tab.Len(), shared.Len())
	}
	if sharedBytes >= selfBytes {
		t.Fatalf("shared stream is not smaller: %d vs %d self-contained bytes", sharedBytes, selfBytes)
	}
	// A record whose delta is based mid-table cannot decode against a
	// fresh table: desynchronization is an error, never a misread.
	var fresh codec.StrTab
	if _, err := DecodeWALRecordShared(payloads[len(payloads)-1], &fresh); err == nil {
		t.Fatal("mid-table record decoded against an empty table")
	}
}

// TestWALStrTabReseedAcrossReopen: recovery reseeds the append-side
// table from the live segment's replayed deltas, so appends after a
// reopen extend the same table the existing records reference.
func TestWALStrTabReseedAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := recoverWAL(dir, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	docs := []string{abA, abB, abC}
	treeOp := func(i int) core.Op {
		return core.Op{Kind: core.OpReplace, TreeValue: mustTree(t, docs[i%len(docs)])}
	}
	for i := 0; i < 3; i++ {
		if _, err := w.append(treeOp(i)); err != nil {
			t.Fatal(err)
		}
	}
	entries := w.stats().StrTabEntries
	if entries == 0 {
		t.Fatal("fresh appends interned no strings")
	}
	w.close()
	got, w2 := collect(t, dir, 0)
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	if reseeded := w2.stats().StrTabEntries; reseeded != entries {
		t.Fatalf("recovery reseeded %d strtab entries, append side left %d", reseeded, entries)
	}
	for i := 3; i < 6; i++ {
		if _, err := w2.append(treeOp(i)); err != nil {
			t.Fatal(err)
		}
	}
	w2.close()
	all, w3 := collect(t, dir, 0)
	defer w3.close()
	if len(all) != 6 {
		t.Fatalf("replayed %d records after reopen-append, want 6", len(all))
	}
	for i, e := range all {
		want := mustTree(t, docs[i%len(docs)])
		if e.Seq != uint64(i+1) || e.Op.TreeValue == nil || !pxml.Equal(e.Op.TreeValue.Root(), want.Root()) {
			t.Fatalf("record %d = %+v", i, e)
		}
	}
}

// TestWALRecordJSONDispatch: a JSON payload (first byte '{') decodes
// through the same entry point — the per-record format dispatch old logs
// rely on.
func TestWALRecordJSONDispatch(t *testing.T) {
	rec := WALRecord{Seq: 9, Epoch: 2, Op: core.Op{Kind: core.OpIntegrate, Sources: []string{abA}}}
	payload, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWALRecord(payload)
	if err != nil {
		t.Fatalf("decode JSON payload: %v", err)
	}
	if got.Seq != 9 || got.Epoch != 2 || len(got.Op.Sources) != 1 || got.Op.Sources[0] != abA {
		t.Fatalf("JSON dispatch = %+v", got)
	}
}

// TestWALRecordRejectsCorruption: every truncation and a sweep of bit
// flips of a binary payload must error, never panic or succeed silently
// wrong (flips inside a tree field are caught by the arena digest).
func TestWALRecordRejectsCorruption(t *testing.T) {
	rec := WALRecord{Seq: 3, Epoch: 1, Op: core.Op{Kind: core.OpBatch, SourceTrees: []*pxml.Tree{mustTree(t, abA), mustTree(t, abB)}}}
	payload, err := EncodeWALRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeWALRecord(payload[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	for i := 1; i < len(payload); i += 3 {
		mut := append([]byte(nil), payload...)
		mut[i] ^= 0x40
		got, err := DecodeWALRecord(mut)
		if err != nil {
			continue
		}
		// A surviving flip must not have corrupted a document: the decoded
		// trees must still be one of the originals or the header fields
		// differ visibly. Verify the trees validate at minimum.
		for _, tr := range got.Op.SourceTrees {
			if err := tr.Validate(); err != nil {
				t.Fatalf("flip at %d decoded an invalid tree: %v", i, err)
			}
		}
	}
}

// TestWALRecordImplausibleSourceCount: a forged source count larger than
// the remaining payload is rejected before any allocation.
func TestWALRecordImplausibleSourceCount(t *testing.T) {
	payload := []byte{walBinaryMarker, walBinaryVersion}
	payload = codec.AppendUvarint(payload, 1) // seq
	payload = codec.AppendUvarint(payload, 0) // epoch
	payload = append(payload, opKindCodes[core.OpIntegrate])
	payload = codec.AppendUvarint(payload, 1<<40) // sources
	if _, err := DecodeWALRecord(payload); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("forged source count: err = %v", err)
	}
}

// TestWALMixedEncodingLog: a log whose first records were appended as
// JSON (an old build) and whose tail is binary replays seamlessly — the
// dispatch is per record, not per segment.
func TestWALMixedEncodingLog(t *testing.T) {
	dir := t.TempDir()
	w, err := recoverWAL(dir, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.jsonAppends = true
	for i := 0; i < 3; i++ {
		if _, err := w.append(testOp(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.jsonAppends = false
	for i := 3; i < 6; i++ {
		if _, err := w.append(testOp(i)); err != nil {
			t.Fatal(err)
		}
	}
	if enc := w.stats().Encoding; enc != EncodingBinary {
		t.Fatalf("stats encoding %q", enc)
	}
	w.close()
	got, w2 := collect(t, dir, 0)
	defer w2.close()
	if len(got) != 6 {
		t.Fatalf("replayed %d records, want 6", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) || e.Op.Value != testOp(i).Value {
			t.Fatalf("record %d = %+v", i, e)
		}
	}
	// The read path (shipping) sees the same six records.
	recs, err := w2.opsSince(0, 0)
	if err != nil || len(recs) != 6 {
		t.Fatalf("opsSince over mixed log: %d records, err %v", len(recs), err)
	}
}

// FuzzDecodeWALRecord: arbitrary bytes must produce an error or a valid
// record — never a panic and never an unvalidated tree.
func FuzzDecodeWALRecord(f *testing.F) {
	rec := WALRecord{Seq: 1, Op: core.Op{Kind: core.OpIntegrate, Sources: []string{abA}}}
	tree, err := xmlcodec.DecodeString(abA)
	if err != nil {
		f.Fatal(err)
	}
	if payload, err := EncodeWALRecord(rec); err == nil {
		f.Add(payload)
	}
	if payload, err := EncodeWALRecord(WALRecord{Seq: 2, Epoch: 1, Op: core.Op{Kind: core.OpReplace, TreeValue: tree}}); err == nil {
		f.Add(payload)
	}
	if payload, err := json.Marshal(rec); err == nil {
		f.Add(payload)
	}
	f.Add([]byte{walBinaryMarker, walBinaryVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeWALRecord(data)
		if err != nil {
			return
		}
		for _, tr := range got.Op.SourceTrees {
			if err := tr.Validate(); err != nil {
				t.Fatalf("accepted record carries invalid source: %v", err)
			}
		}
		if got.Op.TreeValue != nil {
			if err := got.Op.TreeValue.Validate(); err != nil {
				t.Fatalf("accepted record carries invalid tree: %v", err)
			}
		}
	})
}

// TestWALRecordQueueRoundTrip: the v2 kinds — enqueue and apply-queued —
// and the v2 stats blob on integrate records survive the binary format.
func TestWALRecordQueueRoundTrip(t *testing.T) {
	stats := []integrate.Stats{{OracleCalls: 7, VerdictMemoHits: 3, SplicedChildren: 2}}
	recs := []WALRecord{
		{Seq: 10, Epoch: 2, Op: core.Op{Kind: core.OpEnqueue, Ticket: "t41",
			SourceTrees: []*pxml.Tree{mustTree(t, abA), mustTree(t, abB)}}},
		{Seq: 11, Epoch: 2, Op: core.Op{Kind: core.OpEnqueue, Ticket: "t42", Sources: []string{abC}}},
		{Seq: 12, Epoch: 2, Op: core.Op{Kind: core.OpApplyQueued, Tickets: []string{"t41", "t42"},
			Failed: []string{"t43"}, FailedErrors: []string{"root tag mismatch"}, Stats: stats}},
		{Seq: 13, Epoch: 2, Op: core.Op{Kind: core.OpApplyQueued, Failed: []string{"t44"},
			FailedErrors: []string{"boom"}}},
		{Seq: 14, Epoch: 3, Op: core.Op{Kind: core.OpIntegrate,
			SourceTrees: []*pxml.Tree{mustTree(t, abA)}, Stats: stats}},
	}
	for _, rec := range recs {
		payload, err := EncodeWALRecord(rec)
		if err != nil {
			t.Fatalf("seq %d: encode: %v", rec.Seq, err)
		}
		got, err := DecodeWALRecord(payload)
		if err != nil {
			t.Fatalf("seq %d: decode: %v", rec.Seq, err)
		}
		if got.Seq != rec.Seq || got.Op.Kind != rec.Op.Kind || got.Op.Ticket != rec.Op.Ticket {
			t.Fatalf("seq %d: round trip = %+v", rec.Seq, got)
		}
		wantTrees, gotTrees := opTrees(t, rec.Op), opTrees(t, got.Op)
		if len(wantTrees) != len(gotTrees) {
			t.Fatalf("seq %d: %d trees round-tripped to %d", rec.Seq, len(wantTrees), len(gotTrees))
		}
		for i := range wantTrees {
			if !pxml.Equal(wantTrees[i].Root(), gotTrees[i].Root()) {
				t.Fatalf("seq %d: tree %d differs", rec.Seq, i)
			}
		}
		if fmt.Sprint(got.Op.Tickets) != fmt.Sprint(rec.Op.Tickets) ||
			fmt.Sprint(got.Op.Failed) != fmt.Sprint(rec.Op.Failed) ||
			fmt.Sprint(got.Op.FailedErrors) != fmt.Sprint(rec.Op.FailedErrors) {
			t.Fatalf("seq %d: ticket lists = %+v", rec.Seq, got.Op)
		}
		if len(got.Op.Stats) != len(rec.Op.Stats) {
			t.Fatalf("seq %d: %d stats round-tripped to %d", rec.Seq, len(rec.Op.Stats), len(got.Op.Stats))
		}
		if len(rec.Op.Stats) > 0 && got.Op.Stats[0] != rec.Op.Stats[0] {
			t.Fatalf("seq %d: stats = %+v", rec.Seq, got.Op.Stats[0])
		}
		if seq, epoch, err := peekRecordHeader(payload); err != nil || seq != rec.Seq || epoch != rec.Epoch {
			t.Fatalf("seq %d: peek = %d/%d, %v", rec.Seq, seq, epoch, err)
		}
	}
}

// TestWALRecordDecodesV1Payload: a hand-built version-1 integrate record
// — no trailing stats blob, the layout pre-queue builds wrote — still
// decodes. Forward compatibility for existing data directories.
func TestWALRecordDecodesV1Payload(t *testing.T) {
	payload := []byte{walBinaryMarker, 1} // version 1
	payload = codec.AppendUvarint(payload, 21)
	payload = codec.AppendUvarint(payload, 4)
	payload = append(payload, opKindCodes[core.OpIntegrate])
	payload = codec.AppendUvarint(payload, 1)
	payload, err := appendTree(payload, mustTree(t, abA), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Note: no stats blob — v1 records end after the sources.
	got, err := DecodeWALRecord(payload)
	if err != nil {
		t.Fatalf("decode v1 payload: %v", err)
	}
	if got.Seq != 21 || got.Epoch != 4 || got.Op.Kind != core.OpIntegrate || len(got.Op.SourceTrees) != 1 {
		t.Fatalf("v1 decode = %+v", got)
	}
	if len(got.Op.Stats) != 0 {
		t.Fatalf("v1 record decoded phantom stats: %+v", got.Op.Stats)
	}
	if seq, epoch, err := peekRecordHeader(payload); err != nil || seq != 21 || epoch != 4 {
		t.Fatalf("peek v1 = %d/%d, %v", seq, epoch, err)
	}
}

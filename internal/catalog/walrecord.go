// Binary write-ahead-log record encoding. The outer frame — [4B length]
// [4B CRC-32C][payload] — is unchanged from the JSON log; only the
// payload format differs, and the first payload byte tells them apart:
// JSON payloads start with '{' (the json.Marshal output of a WALRecord),
// binary payloads start with 0x00. Old logs therefore recover unchanged,
// segments may freely mix both forms (a JSON-era log continued by a
// binary-era build), and torn-tail/epoch semantics are decided by the
// frame layer exactly as before.
//
// Binary payload layout (after the 0x00 marker):
//
//	[version 1B] [uvarint seq] [uvarint epoch] [op]
//	op    = [kind 1B] kind-specific fields
//	tree  = [repr 1B] [uvarint length][bytes]    repr 1 = pxml arena,
//	                                             repr 2 = marker XML
//
// Trees prefer the arena representation (exact float bits, no XML
// parse on replay) and fall back to XML when that is all the op carries.
// Rare history blobs (OpLoad integrations/events) stay JSON inside a
// length-prefixed field; they are not on any hot path.
package catalog

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/pxml"
)

const (
	// walBinaryMarker is the first payload byte of a binary record; the
	// JSON alternative is '{' (0x7B), so the two cannot collide.
	walBinaryMarker = 0x00
	// walBinaryVersion is the self-contained revision of the binary
	// record layout — what EncodeWALRecord emits and the v1 replication
	// wire re-encodes for older binary followers. v2 adds a per-source
	// stats blob to integrate/batch records (so replay and followers
	// reproduce memo-dependent counters exactly) and the
	// enqueue/apply-queued kinds of the async ingest queue.
	walBinaryVersion = 2
	// walBinaryVersionShared is the shared-strtab revision new appends
	// use: a strtab delta sits between the epoch and the op kind, and
	// tree fields may use the shared arena representation whose string
	// indices resolve against the segment-cumulative table the deltas
	// build. Decoding v3 therefore needs that table (or a record whose
	// delta is based at 0); see DecodeWALRecordShared.
	walBinaryVersionShared = 3
	// walBinaryMinVersion is the oldest payload revision still decoded.
	walBinaryMinVersion = 1
)

// Encoding names accepted by Options.WALEncoding.
const (
	EncodingBinary = "binary"
	EncodingJSON   = "json"
)

// Op kind codes (binary payloads only; JSON uses the string names).
var opKindCodes = map[core.OpKind]byte{
	core.OpIntegrate:   1,
	core.OpBatch:       2,
	core.OpFeedback:    3,
	core.OpNormalize:   4,
	core.OpReplace:     5,
	core.OpLoad:        6,
	core.OpEnqueue:     7,
	core.OpApplyQueued: 8,
}

var opKindNames = func() map[byte]core.OpKind {
	m := make(map[byte]core.OpKind, len(opKindCodes))
	for k, v := range opKindCodes {
		m[v] = k
	}
	return m
}()

const (
	treeReprArena = 1
	treeReprXML   = 2
	// treeReprArenaShared is a shared-table arena body
	// (pxml.BinaryVersionShared): its string indices resolve against the
	// record's cumulative strtab, so repeated tags across a segment's
	// records are spelled once. Only valid inside v3 records.
	treeReprArenaShared = 3
)

// EncodeWALRecord renders rec in the self-contained (v2) binary payload
// format. The same bytes are valid as an on-disk WAL payload and as a
// replication wire record frame payload, so a binary primary ships
// records without re-encoding per follower format.
func EncodeWALRecord(rec WALRecord) ([]byte, error) {
	dst := []byte{walBinaryMarker, walBinaryVersion}
	dst = codec.AppendUvarint(dst, rec.Seq)
	dst = codec.AppendUvarint(dst, rec.Epoch)
	return encodeOpBody(dst, &rec, nil)
}

// EncodeWALRecordShared renders rec in the shared-strtab (v3) format:
// tree strings intern into tab, and the entries added by this record
// travel as a delta between the epoch and the op kind. On error tab is
// rolled back to its pre-call length. The caller owns tab's lifecycle —
// reset it at segment boundaries so every segment's deltas rebuild the
// table from zero.
func EncodeWALRecordShared(rec WALRecord, tab *codec.SharedStrings) ([]byte, error) {
	base := tab.Len()
	body, err := encodeOpBody(nil, &rec, tab)
	if err != nil {
		tab.Truncate(base)
		return nil, err
	}
	dst := []byte{walBinaryMarker, walBinaryVersionShared}
	dst = codec.AppendUvarint(dst, rec.Seq)
	dst = codec.AppendUvarint(dst, rec.Epoch)
	dst = tab.AppendDelta(dst, base)
	return append(dst, body...), nil
}

// encodeOpBody appends the op kind byte and kind-specific fields. A nil
// tab encodes self-contained tree fields; otherwise trees intern into it.
func encodeOpBody(dst []byte, rec *WALRecord, tab *codec.SharedStrings) ([]byte, error) {
	kindCode, ok := opKindCodes[rec.Op.Kind]
	if !ok {
		return nil, fmt.Errorf("catalog: cannot encode op kind %q", rec.Op.Kind)
	}
	dst = append(dst, kindCode)
	op := &rec.Op
	var err error
	switch rec.Op.Kind {
	case core.OpIntegrate, core.OpBatch:
		n := len(op.SourceTrees)
		if n == 0 {
			n = len(op.Sources)
		}
		dst = codec.AppendUvarint(dst, uint64(n))
		for i := 0; i < n; i++ {
			var t *pxml.Tree
			var xml string
			if i < len(op.SourceTrees) && op.SourceTrees[i] != nil {
				t = op.SourceTrees[i]
			} else if i < len(op.Sources) {
				xml = op.Sources[i]
			}
			if dst, err = appendTree(dst, t, xml, tab); err != nil {
				return nil, fmt.Errorf("catalog: encoding source %d: %w", i+1, err)
			}
		}
		if dst, err = appendStatsBlob(dst, op); err != nil {
			return nil, err
		}
	case core.OpEnqueue:
		dst = codec.AppendString(dst, op.Ticket)
		n := len(op.SourceTrees)
		if n == 0 {
			n = len(op.Sources)
		}
		dst = codec.AppendUvarint(dst, uint64(n))
		for i := 0; i < n; i++ {
			var t *pxml.Tree
			var xml string
			if i < len(op.SourceTrees) && op.SourceTrees[i] != nil {
				t = op.SourceTrees[i]
			} else if i < len(op.Sources) {
				xml = op.Sources[i]
			}
			if dst, err = appendTree(dst, t, xml, tab); err != nil {
				return nil, fmt.Errorf("catalog: encoding enqueue source %d: %w", i+1, err)
			}
		}
	case core.OpApplyQueued:
		dst = appendStringList(dst, op.Tickets)
		dst = appendStringList(dst, op.Failed)
		dst = appendStringList(dst, op.FailedErrors)
		if dst, err = appendStatsBlob(dst, op); err != nil {
			return nil, err
		}
	case core.OpFeedback:
		dst = codec.AppendString(dst, op.Query)
		dst = codec.AppendString(dst, op.Value)
		if op.Correct {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		when, err := op.When.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("catalog: encoding feedback time: %w", err)
		}
		dst = codec.AppendBytes(dst, when)
	case core.OpNormalize:
	case core.OpReplace, core.OpLoad:
		if dst, err = appendTree(dst, op.TreeValue, op.Tree, tab); err != nil {
			return nil, fmt.Errorf("catalog: encoding %s tree: %w", op.Kind, err)
		}
		if op.Kind == core.OpLoad {
			dst = codec.AppendString(dst, op.Schema)
			ints, err := json.Marshal(op.Integrations)
			if err != nil {
				return nil, err
			}
			evs, err := json.Marshal(op.Events)
			if err != nil {
				return nil, err
			}
			dst = codec.AppendBytes(dst, ints)
			dst = codec.AppendBytes(dst, evs)
		}
	}
	return dst, nil
}

// appendStatsBlob appends the op's recorded integration stats as a
// length-prefixed JSON blob (cold field, one per record — not worth a
// bespoke binary layout).
func appendStatsBlob(dst []byte, op *core.Op) ([]byte, error) {
	if len(op.Stats) == 0 {
		return codec.AppendBytes(dst, nil), nil
	}
	blob, err := json.Marshal(op.Stats)
	if err != nil {
		return nil, fmt.Errorf("catalog: encoding integration stats: %w", err)
	}
	return codec.AppendBytes(dst, blob), nil
}

func readStatsBlob(r *codec.Reader, op *core.Op) error {
	blob := r.Bytes()
	if err := r.Err(); err != nil {
		return err
	}
	if len(blob) == 0 {
		return nil
	}
	if err := json.Unmarshal(blob, &op.Stats); err != nil {
		return fmt.Errorf("%w: bad integration stats: %v", codec.ErrInvalid, err)
	}
	return nil
}

// appendStringList appends a uvarint-counted list of strings.
func appendStringList(dst []byte, xs []string) []byte {
	dst = codec.AppendUvarint(dst, uint64(len(xs)))
	for _, s := range xs {
		dst = codec.AppendString(dst, s)
	}
	return dst
}

func readStringList(r *codec.Reader) ([]string, error) {
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	// A string field costs at least one byte (its length prefix).
	if n > uint64(r.Len())+1 {
		return nil, fmt.Errorf("%w: implausible list length %d", codec.ErrInvalid, n)
	}
	if n == 0 {
		return nil, nil
	}
	xs := make([]string, n)
	for i := range xs {
		xs[i] = r.String()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return xs, nil
}

// appendTree appends one tree field, preferring the decoded form. With a
// tab the arena body is shared-table (treeReprArenaShared); without, it
// is self-contained.
func appendTree(dst []byte, t *pxml.Tree, xml string, tab *codec.SharedStrings) ([]byte, error) {
	if t != nil {
		if tab != nil {
			dst = append(dst, treeReprArenaShared)
			return codec.AppendBytes(dst, t.AppendBinaryShared(nil, tab)), nil
		}
		dst = append(dst, treeReprArena)
		return codec.AppendBytes(dst, t.AppendBinary(nil)), nil
	}
	if xml == "" {
		return nil, fmt.Errorf("op carries no document")
	}
	dst = append(dst, treeReprXML)
	return codec.AppendString(dst, xml), nil
}

// readTree reads one tree field into the op's decoded or string slot.
// strs is the record's cumulative string table view; shared-repr trees
// resolve their indices against it.
func readTree(r *codec.Reader, strs []string) (*pxml.Tree, string, error) {
	switch repr := r.Byte(); repr {
	case treeReprArena, treeReprArenaShared:
		body := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, "", err
		}
		var t *pxml.Tree
		var err error
		if repr == treeReprArenaShared {
			t, err = pxml.DecodeArenaWith(body, pxml.DecodeArenaOptions{Strings: strs})
		} else {
			t, err = pxml.DecodeArena(body)
		}
		if err != nil {
			return nil, "", err
		}
		return t, "", nil
	case treeReprXML:
		s := r.String()
		if err := r.Err(); err != nil {
			return nil, "", err
		}
		return nil, s, nil
	default:
		if err := r.Err(); err != nil {
			return nil, "", err
		}
		return nil, "", fmt.Errorf("%w: unknown tree representation %d", codec.ErrInvalid, repr)
	}
}

// peekRecordHeader extracts (seq, epoch) from a record payload without
// decoding the op body: a few header bytes for binary payloads, a full
// decode for JSON-era ones (JSON has no fixed header, and such records
// are the cold minority on a binary log).
func peekRecordHeader(payload []byte) (seq, epoch uint64, err error) {
	if len(payload) == 0 || payload[0] != walBinaryMarker {
		rec, err := DecodeWALRecord(payload)
		if err != nil {
			return 0, 0, err
		}
		return rec.Seq, rec.Epoch, nil
	}
	r := codec.NewReader(payload[1:])
	if v := r.Byte(); r.Err() == nil && (v < walBinaryMinVersion || v > walBinaryVersionShared) {
		return 0, 0, fmt.Errorf("%w: unsupported binary record version %d", codec.ErrInvalid, v)
	}
	seq = r.Uvarint()
	epoch = r.Uvarint()
	if err := r.Err(); err != nil {
		return 0, 0, err
	}
	return seq, epoch, nil
}

// peekRecordDelta extracts a v3 record's strtab delta without decoding
// the op body — how the raw shipping path tracks table state across
// records it skips. shared is false for JSON, v1 and v2 payloads (they
// carry no delta).
func peekRecordDelta(payload []byte) (base uint64, entries []string, shared bool, err error) {
	if len(payload) < 2 || payload[0] != walBinaryMarker || payload[1] != walBinaryVersionShared {
		return 0, nil, false, nil
	}
	r := codec.NewReader(payload[1:])
	r.Byte()    // version
	r.Uvarint() // seq
	r.Uvarint() // epoch
	base, entries, err = codec.DecodeStrTabDelta(r, false)
	if err != nil {
		return 0, nil, false, err
	}
	return base, entries, true, nil
}

// DecodeWALRecord decodes one self-contained WAL payload of either
// format, dispatching on the first byte. A v3 payload is accepted only
// when its strtab delta is based at 0 (the first record of a segment or
// page); mid-table records need DecodeWALRecordShared.
func DecodeWALRecord(payload []byte) (WALRecord, error) {
	var tab codec.StrTab
	return DecodeWALRecordShared(payload, &tab)
}

// DecodeWALRecordShared decodes one WAL payload against the cumulative
// string table tab, which must hold the replayed state of every earlier
// v3 delta in the same segment or page. The record's own delta commits
// into tab only after the whole record decodes — a torn or corrupt
// record leaves tab exactly as it was, keeping replay's table in
// lockstep with the committed log. Arbitrary bytes return an error,
// never panic: the binary path runs entirely on the bounds-checked
// codec.Reader and pxml.DecodeArenaWith.
func DecodeWALRecordShared(payload []byte, tab *codec.StrTab) (WALRecord, error) {
	if len(payload) == 0 {
		return WALRecord{}, fmt.Errorf("%w: empty record payload", codec.ErrInvalid)
	}
	if payload[0] != walBinaryMarker {
		var rec WALRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return WALRecord{}, err
		}
		return rec, nil
	}
	r := codec.NewReader(payload[1:])
	version := r.Byte()
	if r.Err() == nil && (version < walBinaryMinVersion || version > walBinaryVersionShared) {
		return WALRecord{}, fmt.Errorf("%w: unsupported binary record version %d", codec.ErrInvalid, version)
	}
	var rec WALRecord
	rec.Seq = r.Uvarint()
	rec.Epoch = r.Uvarint()
	// The v3 delta is read up front but applied to tab only at the end;
	// until then the record decodes against a combined view.
	var delta struct {
		base    uint64
		entries []string
	}
	var strs []string
	if version >= walBinaryVersionShared {
		base, entries, err := codec.DecodeStrTabDelta(r, false)
		if err != nil {
			return WALRecord{}, err
		}
		switch {
		case base == 0:
			strs = entries
		case base == uint64(tab.Len()):
			strs = append(tab.Strings()[:base:base], entries...)
		default:
			return WALRecord{}, fmt.Errorf("%w: record %d strtab delta based at %d, table holds %d entries", codec.ErrInvalid, rec.Seq, base, tab.Len())
		}
		delta.base, delta.entries = base, entries
	}
	kind, ok := opKindNames[r.Byte()]
	if err := r.Err(); err != nil {
		return WALRecord{}, err
	}
	if !ok {
		return WALRecord{}, fmt.Errorf("%w: unknown op kind code", codec.ErrInvalid)
	}
	op := &rec.Op
	op.Kind = kind
	switch kind {
	case core.OpIntegrate, core.OpBatch:
		n := r.Uvarint()
		if err := r.Err(); err != nil {
			return WALRecord{}, err
		}
		// A tree field costs at least two bytes (repr + length).
		if n == 0 || n > uint64(r.Len())/2+1 {
			return WALRecord{}, fmt.Errorf("%w: implausible source count %d", codec.ErrInvalid, n)
		}
		for i := uint64(0); i < n; i++ {
			t, xml, err := readTree(r, strs)
			if err != nil {
				return WALRecord{}, fmt.Errorf("record %d source %d: %w", rec.Seq, i+1, err)
			}
			if t != nil {
				op.SourceTrees = append(op.SourceTrees, t)
			} else {
				op.Sources = append(op.Sources, xml)
			}
		}
		if len(op.SourceTrees) > 0 && len(op.Sources) > 0 {
			return WALRecord{}, fmt.Errorf("%w: record %d mixes tree representations", codec.ErrInvalid, rec.Seq)
		}
		if version >= 2 {
			if err := readStatsBlob(r, op); err != nil {
				return WALRecord{}, err
			}
		}
	case core.OpEnqueue:
		op.Ticket = r.String()
		n := r.Uvarint()
		if err := r.Err(); err != nil {
			return WALRecord{}, err
		}
		if n == 0 || n > uint64(r.Len())/2+1 {
			return WALRecord{}, fmt.Errorf("%w: implausible source count %d", codec.ErrInvalid, n)
		}
		for i := uint64(0); i < n; i++ {
			t, xml, err := readTree(r, strs)
			if err != nil {
				return WALRecord{}, fmt.Errorf("record %d source %d: %w", rec.Seq, i+1, err)
			}
			if t != nil {
				op.SourceTrees = append(op.SourceTrees, t)
			} else {
				op.Sources = append(op.Sources, xml)
			}
		}
		if len(op.SourceTrees) > 0 && len(op.Sources) > 0 {
			return WALRecord{}, fmt.Errorf("%w: record %d mixes tree representations", codec.ErrInvalid, rec.Seq)
		}
	case core.OpApplyQueued:
		var err error
		if op.Tickets, err = readStringList(r); err != nil {
			return WALRecord{}, fmt.Errorf("record %d tickets: %w", rec.Seq, err)
		}
		if op.Failed, err = readStringList(r); err != nil {
			return WALRecord{}, fmt.Errorf("record %d failed tickets: %w", rec.Seq, err)
		}
		if op.FailedErrors, err = readStringList(r); err != nil {
			return WALRecord{}, fmt.Errorf("record %d failure reasons: %w", rec.Seq, err)
		}
		if err := readStatsBlob(r, op); err != nil {
			return WALRecord{}, err
		}
	case core.OpFeedback:
		op.Query = r.String()
		op.Value = r.String()
		op.Correct = r.Byte() == 1
		when := r.Bytes()
		if err := r.Err(); err != nil {
			return WALRecord{}, err
		}
		var ts time.Time
		if err := ts.UnmarshalBinary(when); err != nil {
			return WALRecord{}, fmt.Errorf("%w: bad feedback time: %v", codec.ErrInvalid, err)
		}
		op.When = ts
	case core.OpNormalize:
	case core.OpReplace, core.OpLoad:
		t, xml, err := readTree(r, strs)
		if err != nil {
			return WALRecord{}, fmt.Errorf("record %d tree: %w", rec.Seq, err)
		}
		op.TreeValue, op.Tree = t, xml
		if kind == core.OpLoad {
			op.Schema = r.String()
			ints := r.Bytes()
			evs := r.Bytes()
			if err := r.Err(); err != nil {
				return WALRecord{}, err
			}
			if len(ints) > 0 {
				if err := json.Unmarshal(ints, &op.Integrations); err != nil {
					return WALRecord{}, fmt.Errorf("%w: bad integrations history: %v", codec.ErrInvalid, err)
				}
			}
			if len(evs) > 0 {
				if err := json.Unmarshal(evs, &op.Events); err != nil {
					return WALRecord{}, fmt.Errorf("%w: bad feedback history: %v", codec.ErrInvalid, err)
				}
			}
		}
	}
	if err := r.Finish(); err != nil {
		return WALRecord{}, err
	}
	// The record decoded in full: commit its delta so the next record in
	// the segment/page decodes against the extended table. (Apply cannot
	// fail here — the base was validated against tab above.)
	if version >= walBinaryVersionShared {
		if err := tab.Apply(delta.base, delta.entries); err != nil {
			return WALRecord{}, err
		}
	}
	return rec, nil
}

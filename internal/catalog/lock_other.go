//go:build !unix

package catalog

// acquireLock is a no-op where flock is unavailable; single-process use
// is then the operator's responsibility.
func acquireLock(dir string) (release func(), err error) {
	return func() {}, nil
}

package catalog

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/pxml"
)

const (
	abA = `<addressbook><person><nm>John</nm><tel>1111</tel></person></addressbook>`
	abB = `<addressbook><person><nm>John</nm><tel>2222</tel></person></addressbook>`
	abC = `<addressbook><person><nm>Mary</nm><tel>3333</tel></person></addressbook>`
)

func testOptions() Options {
	return Options{RootTag: "addressbook", CompactEvery: -1}
}

// copyDir clones a directory tree — the disk state a crash would leave
// behind, inspectable without touching the original.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, in)
		return err
	})
	if err != nil {
		t.Fatalf("copyDir: %v", err)
	}
}

// TestKillRestartRoundTrip is the acceptance scenario: integrate several
// sources and record feedback into a named database, kill the process
// without any clean shutdown (the on-disk state is copied as-is), reopen
// the catalog, and get a bit-identical tree with intact histories.
func TestKillRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	cat, err := Open(data, testOptions())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	db, err := cat.Create("movies")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	cdb := db.Core()
	for _, src := range []string{abA, abB, abC} {
		if _, err := cdb.IntegrateXMLString(src); err != nil {
			t.Fatalf("integrate: %v", err)
		}
	}
	if _, err := cdb.Feedback(`//person[nm="John"]/tel`, "2222", false); err != nil {
		t.Fatalf("feedback: %v", err)
	}
	wantTree := cdb.Tree()
	wantWorlds := cdb.WorldCount()
	wantInts := cdb.IntegrationHistory()
	wantEvs := cdb.FeedbackHistory()
	if len(wantInts) != 3 || len(wantEvs) != 1 {
		t.Fatalf("precondition: %d integrations, %d events", len(wantInts), len(wantEvs))
	}

	// SIGKILL-equivalent: no Close, no flush — only what each op fsynced.
	killed := filepath.Join(dir, "killed")
	copyDir(t, data, killed)

	cat2, err := Open(killed, testOptions())
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer cat2.Close()
	db2, err := cat2.Get("movies")
	if err != nil {
		t.Fatalf("Get after kill: %v", err)
	}
	c2 := db2.Core()
	if !pxml.Equal(c2.Tree().Root(), wantTree.Root()) {
		t.Fatalf("recovered tree differs:\n%s\nvs\n%s", c2.Tree(), wantTree)
	}
	if c2.WorldCount().Cmp(wantWorlds) != 0 {
		t.Fatalf("recovered worlds = %s, want %s", c2.WorldCount(), wantWorlds)
	}
	gotInts := c2.IntegrationHistory()
	if len(gotInts) != len(wantInts) {
		t.Fatalf("recovered %d integrations, want %d", len(gotInts), len(wantInts))
	}
	for i := range gotInts {
		if gotInts[i] != wantInts[i] {
			t.Fatalf("integration %d stats differ: %+v vs %+v", i, gotInts[i], wantInts[i])
		}
	}
	gotEvs := c2.FeedbackHistory()
	if len(gotEvs) != 1 {
		t.Fatalf("recovered %d feedback events", len(gotEvs))
	}
	if gotEvs[0].Value != "2222" || !gotEvs[0].When.Equal(wantEvs[0].When) ||
		gotEvs[0].WorldsAfter.Cmp(wantEvs[0].WorldsAfter) != 0 {
		t.Fatalf("recovered event = %+v, want %+v", gotEvs[0], wantEvs[0])
	}
	if st := db2.Stats(); st.RecoveredOps != 4 {
		t.Fatalf("RecoveredOps = %d, want 4", st.RecoveredOps)
	}
	cat.Close()
}

// TestCompactionThenTailReplay proves the two-phase recovery: a snapshot
// plus a write-ahead tail beyond it.
func TestCompactionThenTailReplay(t *testing.T) {
	dir := t.TempDir()
	cat, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	cdb := db.Core()
	if _, err := cdb.IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	if _, err := cdb.IntegrateXMLString(abB); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := db.Stats()
	if st.SnapshotSeq != 2 || st.TailOps != 0 || st.Compactions != 1 {
		t.Fatalf("post-compaction stats = %+v", st)
	}
	// One more op lands in the tail, after the snapshot.
	if _, err := cdb.IntegrateXMLString(abC); err != nil {
		t.Fatal(err)
	}
	want := cdb.Tree()
	killed := t.TempDir()
	copyDir(t, dir, killed)
	cat2, err := Open(killed, testOptions())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer cat2.Close()
	db2, err := cat2.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if !pxml.Equal(db2.Core().Tree().Root(), want.Root()) {
		t.Fatalf("snapshot+tail recovery differs")
	}
	if st := db2.Stats(); st.RecoveredOps != 1 {
		t.Fatalf("RecoveredOps = %d, want 1 (only the tail)", st.RecoveredOps)
	}
	if len(db2.Core().IntegrationHistory()) != 3 {
		t.Fatalf("history lost through compaction: %d", len(db2.Core().IntegrationHistory()))
	}
	cat.Close()
}

// TestBackgroundCompaction exercises the automatic trigger.
func TestBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.CompactEvery = 2
	cat, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{abA, abB, abC} {
		if _, err := db.Core().IntegrateXMLString(src); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never ran: %+v", db.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCatalogCreateGetDropSemantics(t *testing.T) {
	cat, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if _, err := cat.Create("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Create("a"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`, ".hidden", "/abs", "LOCK"} {
		if _, err := cat.Create(bad); !errors.Is(err, ErrBadName) {
			t.Fatalf("Create(%q): %v, want ErrBadName", bad, err)
		}
	}
	if _, err := cat.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
	if _, err := cat.Create("b"); err != nil {
		t.Fatal(err)
	}
	if names := cat.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if err := cat.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Drop("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
	if _, err := os.Stat(filepath.Join(cat.Dir(), "a")); !os.IsNotExist(err) {
		t.Fatalf("dropped directory survives: %v", err)
	}
	// Default materializes on demand and is stable.
	d1, err := cat.Default()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := cat.Default()
	if err != nil || d1 != d2 {
		t.Fatalf("Default not stable: %v", err)
	}
}

func TestDataDirSingleProcessLock(t *testing.T) {
	dir := t.TempDir()
	cat, err := Open(dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOptions()); err == nil {
		t.Fatalf("second open of a locked data directory should fail")
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	cat2, err := Open(dir, testOptions())
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	cat2.Close()
}

func TestNamedSnapshotsConstrained(t *testing.T) {
	cat, err := Open(t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Core().IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SaveNamed("exp1", "before"); err != nil {
		t.Fatalf("SaveNamed: %v", err)
	}
	for _, bad := range []string{"../escape", "/etc/passwd", `a\b`, ".."} {
		if _, err := db.SaveNamed(bad, ""); !errors.Is(err, ErrBadName) {
			t.Fatalf("SaveNamed(%q): %v, want ErrBadName", bad, err)
		}
		if _, err := db.LoadNamed(bad); !errors.Is(err, ErrBadName) {
			t.Fatalf("LoadNamed(%q): %v, want ErrBadName", bad, err)
		}
	}
	if _, err := db.Core().IntegrateXMLString(abB); err != nil {
		t.Fatal(err)
	}
	snap, err := db.LoadNamed("exp1")
	if err != nil {
		t.Fatalf("LoadNamed: %v", err)
	}
	if !pxml.Equal(db.Core().Tree().Root(), snap.Tree.Root()) {
		t.Fatalf("restore mismatch")
	}
	// The restore itself was journaled: a kill right now recovers the
	// restored state, not the pre-restore one.
	killed := t.TempDir()
	copyDir(t, cat.Dir(), killed)
	cat2, err := Open(killed, testOptions())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer cat2.Close()
	db2, err := cat2.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if !pxml.Equal(db2.Core().Tree().Root(), snap.Tree.Root()) {
		t.Fatalf("journaled load lost on recovery")
	}
}

package catalog

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pxml"
	"repro/internal/store"
)

// TestCrashRecoveryEveryByteOffset is the crash-safety property test: a
// write killed at EVERY byte offset of the write-ahead segment must
// recover to either the pre-op or the post-op state — atomically, and
// never with an error, because the valid prefix is always intact and the
// torn suffix is truncated, not rejected.
//
// Construction: op 1 (integrate A) establishes the pre-state; op 2
// (integrate B) appends one more frame. For every cut point inside op 2's
// frame the on-disk state is cloned, the segment truncated to the cut,
// and the catalog reopened.
func TestCrashRecoveryEveryByteOffset(t *testing.T) {
	base := t.TempDir()
	data := filepath.Join(base, "data")
	cat, err := Open(data, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	cdb := db.Core()
	seg := filepath.Join(data, "x", walDirName, segName(1))

	if _, err := cdb.IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	preTree := cdb.Tree()
	preInfo, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	sizePre := preInfo.Size()

	if _, err := cdb.IntegrateXMLString(abB); err != nil {
		t.Fatal(err)
	}
	postTree := cdb.Tree()
	postInfo, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	sizePost := postInfo.Size()
	if sizePost <= sizePre {
		t.Fatalf("op 2 wrote no bytes? %d -> %d", sizePre, sizePost)
	}
	// No clean shutdown: the live catalog is abandoned, only the fsynced
	// bytes exist. (Closing it here would compact and change the disk.)

	runEveryByteCut(t, data, sizePre, sizePost, preTree, postTree)
}

// runEveryByteCut clones data, truncates the segment to every offset in
// [sizePre, sizePost], and verifies recovery lands on exactly the pre-op
// or post-op tree and keeps accepting appends.
func runEveryByteCut(t *testing.T, data string, sizePre, sizePost int64, preTree, postTree *pxml.Tree) {
	t.Helper()
	runEveryByteCutSeg(t, data, filepath.Join("x", walDirName, segName(1)), sizePre, sizePost, preTree, postTree)
}

// runEveryByteCutSeg is runEveryByteCut over an arbitrary segment file
// (relative to the data dir) — the post-compaction harness cuts a later
// segment than the first.
func runEveryByteCutSeg(t *testing.T, data, segRel string, sizePre, sizePost int64, preTree, postTree *pxml.Tree) {
	t.Helper()
	for cut := sizePre; cut <= sizePost; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			killed := t.TempDir()
			copyDir(t, data, killed)
			if err := os.Truncate(filepath.Join(killed, segRel), cut); err != nil {
				t.Fatal(err)
			}
			cat2, err := Open(killed, testOptions())
			if err != nil {
				t.Fatalf("recovery failed at cut %d: %v", cut, err)
			}
			defer cat2.Close()
			db2, err := cat2.Get("x")
			if err != nil {
				t.Fatal(err)
			}
			got := db2.Core().Tree()
			want, label := preTree, "pre-op"
			if cut == sizePost {
				want, label = postTree, "post-op"
			}
			if !pxml.Equal(got.Root(), want.Root()) {
				t.Fatalf("cut %d: recovered tree is not the %s state", cut, label)
			}
			if got.WorldCount().Cmp(want.WorldCount()) != 0 {
				t.Fatalf("cut %d: world count %s != %s", cut, got.WorldCount(), want.WorldCount())
			}
			// A committed op must also be appendable-after: the log keeps
			// accepting writes from the recovered position.
			if _, err := db2.Core().IntegrateXMLString(abC); err != nil {
				t.Fatalf("cut %d: append after recovery: %v", cut, err)
			}
		})
	}
}

// TestCrashRecoveryMixedEncodingEveryByteOffset reruns the crash-safety
// property over a mixed-format log: op 1 journaled as JSON (the log an
// older build left behind), op 2 appended in binary by this build. Every
// cut inside the binary frame must recover to the JSON-committed pre
// state; the full frame to the post state.
func TestCrashRecoveryMixedEncodingEveryByteOffset(t *testing.T) {
	base := t.TempDir()
	data := filepath.Join(base, "data")
	opts := testOptions()
	opts.WALEncoding = EncodingJSON
	cat, err := Open(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	cdb := db.Core()
	seg := filepath.Join(data, "x", walDirName, segName(1))

	if _, err := cdb.IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	preTree := cdb.Tree()
	preInfo, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}

	// The binary-era build continues the same log: flip the append format
	// in place, exactly what reopening with the default encoding does.
	db.wal.jsonAppends = false
	if _, err := cdb.IntegrateXMLString(abB); err != nil {
		t.Fatal(err)
	}
	postTree := cdb.Tree()
	postInfo, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	runEveryByteCut(t, data, preInfo.Size(), postInfo.Size(), preTree, postTree)
}

// TestCrashRecoveryCompactedV5EveryByteOffset reruns the crash-safety
// property over the current on-disk generation: op 1 is compacted into a
// v5 snapshot (strtab frame + shared-arena document, mmap'd on reopen),
// and op 2 lands as a strtab-bearing v3 record in the surviving log.
// Every cut inside op 2's frame must recover the mmap-loaded snapshot
// state exactly; the full frame, the post-op state.
func TestCrashRecoveryCompactedV5EveryByteOffset(t *testing.T) {
	base := t.TempDir()
	data := filepath.Join(base, "data")
	cat, err := Open(data, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	db, err := cat.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	cdb := db.Core()
	if _, err := cdb.IntegrateXMLString(abA); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	m, err := store.ReadManifest(filepath.Join(data, "x", stateDirName))
	if err != nil {
		t.Fatal(err)
	}
	if m.FormatVersion != store.FormatVersion {
		t.Fatalf("compaction wrote format v%d, want v%d", m.FormatVersion, store.FormatVersion)
	}
	preTree := cdb.Tree()

	// The segment op 2 lands in may not exist yet (compaction dropped the
	// covered log): snapshot sizes before, integrate, diff after.
	walDir := filepath.Join(data, "x", walDirName)
	sizes := func() map[string]int64 {
		out := map[string]int64{}
		ents, err := os.ReadDir(walDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			info, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			out[e.Name()] = info.Size()
		}
		return out
	}
	before := sizes()
	if _, err := cdb.IntegrateXMLString(abB); err != nil {
		t.Fatal(err)
	}
	postTree := cdb.Tree()
	var segRel string
	var sizePre, sizePost int64
	for name, sz := range sizes() {
		if before[name] != sz {
			if segRel != "" {
				t.Fatalf("op 2 grew two segments: %s and %s", segRel, name)
			}
			segRel = filepath.Join("x", walDirName, name)
			sizePre, sizePost = before[name], sz
		}
	}
	if segRel == "" || sizePost <= sizePre {
		t.Fatalf("op 2 wrote no bytes (before %v, after %v)", before, sizes())
	}
	runEveryByteCutSeg(t, data, segRel, sizePre, sizePost, preTree, postTree)
}

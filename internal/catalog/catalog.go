// Package catalog turns the single in-memory core.Database into a
// durable multi-database engine — the role a real deployment needs the
// moment one process serves more than one collection (the paper's
// prototype leaned on MonetDB/XQuery for exactly this). A Catalog owns a
// data directory of named databases:
//
//	<data>/<name>/state/          snapshot written by compaction (store v2)
//	<data>/<name>/wal/seg-*.log   per-database write-ahead op log
//	<data>/<name>/snapshots/<n>/  user-named snapshots (/save, /load)
//
// Every mutation a database commits is first recorded in its write-ahead
// log (CRC-framed, fsynced — see wal.go) via the core journal hook, so a
// crash at any instant loses nothing committed: opening the catalog loads
// each database's latest snapshot and deterministically replays the log
// tail beyond it. A background compactor periodically folds the log into
// a fresh snapshot and drops the obsolete segments.
package catalog

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/xmlcodec"
)

const (
	stateDirName     = "state"
	snapshotsDirName = "snapshots"

	// DefaultName is the database legacy single-database clients land on.
	DefaultName = "default"
	// DefaultCompactEvery triggers compaction after this many journaled
	// ops since the last snapshot.
	DefaultCompactEvery = 64
)

// ErrNotFound is returned when a named database does not exist.
var ErrNotFound = errors.New("catalog: database not found")

// ErrExists is returned when creating a database that already exists.
var ErrExists = errors.New("catalog: database already exists")

// ErrBadName is returned for database or snapshot names that are empty or
// would escape the data directory.
var ErrBadName = errors.New("catalog: invalid name")

// Options configure a Catalog.
type Options struct {
	// Config is the core configuration every database is opened with
	// (schema knowledge, oracle rules, query defaults, caches). A schema
	// stored in a database's snapshot overrides Config.Schema on
	// recovery, mirroring core.LoadSnapshot.
	Config core.Config
	// RootTag is the root element of a freshly created database's empty
	// document ("db" when empty). The initial document is pinned into the
	// database's first snapshot at creation, so changing RootTag later
	// only affects databases created afterwards.
	RootTag string
	// SegmentBytes rotates write-ahead segments (0 means
	// DefaultSegmentBytes).
	SegmentBytes int64
	// CompactEvery is the number of journaled ops between background
	// compactions (0 means DefaultCompactEvery; negative disables all
	// automatic compaction, including the final one at Close — only
	// explicit DB.Compact calls write snapshots then).
	CompactEvery int
	// WALEncoding selects the payload format of new write-ahead appends:
	// EncodingBinary (the default, also chosen by "") or EncodingJSON, the
	// escape hatch for data dirs that must stay readable by pre-binary
	// builds. Reading is always format-agnostic — recovery dispatches per
	// record — so the setting can change between opens of the same dir.
	WALEncoding string
	// DisableWALStrTab pins binary appends to the self-contained v2
	// record layout instead of the shared-string-table v3 one — the
	// escape hatch for data dirs that must stay readable by pre-strtab
	// builds, and the bench baseline. Reading handles both regardless.
	DisableWALStrTab bool
	// DisableMMap forces snapshot loads onto the read-whole-file path
	// instead of mmap (store.LoadOptions.DisableMMap).
	DisableMMap bool
	// Logger receives recovery and compaction notes; nil disables.
	Logger *log.Logger
}

// Catalog is a data directory of named, durable databases.
type Catalog struct {
	dir    string
	opts   Options
	unlock func() // releases the data-directory flock

	mu     sync.Mutex
	dbs    map[string]*DB
	closed bool
	// epoch is the highest cluster epoch this catalog has witnessed; new
	// databases are seeded with it so every database in the catalog always
	// commits under the same fencing term.
	epoch uint64
}

// DB is one named database: a core.Database wired to its write-ahead log
// and compactor.
type DB struct {
	name string
	dir  string
	core *core.Database
	wal  *wal
	opts Options

	// replMu serializes replicated applies (ApplyReplicated), so a
	// follower's stream keeps its sequence check and journal append
	// atomic with respect to other replicated ops.
	replMu sync.Mutex
	// commitMu guards commitCh, the broadcast channel long-poll tailers
	// (WaitOps) block on; it is closed and replaced on every durable
	// append.
	commitMu sync.Mutex
	commitCh chan struct{}

	// compactMu serializes compactions (manual and background).
	compactMu sync.Mutex
	// opsSinceCompact triggers the background compactor.
	opsSinceCompact atomic.Int64
	compactCh       chan struct{}
	done            chan struct{}
	wg              sync.WaitGroup

	compactions   atomic.Int64
	snapshotSeq   atomic.Uint64 // journal seq the state/ snapshot reflects
	snapshotEpoch atomic.Uint64 // epoch the state/ snapshot manifest carries
	storeFormat   atomic.Int64  // format version of the state/ snapshot
	recoveredOps  int64         // ops replayed at open (immutable after)
}

// Open opens (creating if needed) the catalog rooted at dir, recovering
// every database found inside: latest snapshot, then the write-ahead
// tail, truncating torn records.
func Open(dir string, opts Options) (*Catalog, error) {
	if opts.RootTag == "" {
		opts.RootTag = "db"
	}
	if opts.CompactEvery == 0 {
		opts.CompactEvery = DefaultCompactEvery
	}
	switch opts.WALEncoding {
	case "", EncodingBinary, EncodingJSON:
	default:
		return nil, fmt.Errorf("catalog: unknown WAL encoding %q (want %q or %q)", opts.WALEncoding, EncodingBinary, EncodingJSON)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// One process per data directory: concurrent appenders would corrupt
	// the logs. The advisory lock dies with the process, so a kill never
	// blocks the next open.
	unlock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	c := &Catalog{dir: dir, opts: opts, unlock: unlock, dbs: map[string]*DB{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		unlock()
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() || validateName(e.Name()) != nil {
			continue
		}
		db, err := c.openDB(e.Name(), 0)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("catalog: recovering %q: %w", e.Name(), err)
		}
		c.dbs[e.Name()] = db
		if e := db.Epoch(); e > c.epoch {
			c.epoch = e
		}
	}
	return c, nil
}

// Dir returns the catalog's data directory.
func (c *Catalog) Dir() string { return c.dir }

// validateName admits simple path-safe names: no separators, no dot
// navigation, not empty, not absurdly long.
func validateName(name string) error {
	if name == "" || len(name) > 128 || name == "." || name == ".." ||
		name != filepath.Base(name) || strings.ContainsAny(name, `/\`) ||
		strings.HasPrefix(name, ".") || name == "LOCK" {
		// "LOCK" is the catalog's own flock file at the top of the data
		// directory; as a database name it would collide with it.
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return nil
}

// openDB recovers (or freshly initializes) one database directory.
// seedEpoch is the cluster epoch a freshly created database starts in
// (pinned into its initial manifest); an existing database's epoch comes
// from its own manifest and log instead.
func (c *Catalog) openDB(name string, seedEpoch uint64) (*DB, error) {
	dbDir := filepath.Join(c.dir, name)
	if err := os.MkdirAll(dbDir, 0o755); err != nil {
		return nil, err
	}
	cfg := c.opts.Config
	var (
		cdb        *core.Database
		after      uint64
		snapEpoch  uint64
		snapFormat = store.FormatVersion
		snapshot   = filepath.Join(dbDir, stateDirName)
	)
	_, statErr := os.Stat(filepath.Join(snapshot, "manifest.json"))
	if statErr != nil && !os.IsNotExist(statErr) {
		return nil, statErr
	}
	if statErr == nil {
		snap, err := store.LoadWith(snapshot, store.LoadOptions{DisableMMap: c.opts.DisableMMap})
		if err != nil {
			return nil, err
		}
		if snap.Schema != nil {
			cfg.Schema = snap.Schema
		}
		cdb, err = core.Open(snap.Tree, cfg)
		if err != nil {
			return nil, err
		}
		cdb.RestoreHistories(snap.Manifest.Integrations, snap.Manifest.Feedback)
		// The queue must be in place before the tail replays: an
		// apply-queued record names tickets whose sources live either in
		// enqueue records past the snapshot or — once compaction truncated
		// those — in the manifest's pending list restored here.
		pending, err := core.DecodePending(snap.Manifest.Pending)
		if err != nil {
			return nil, err
		}
		cdb.RestorePending(pending)
		after = snap.Manifest.LogSeq
		snapEpoch = snap.Manifest.Epoch
		snapFormat = snap.Manifest.FormatVersion
	} else {
		empty, err := xmlcodec.DecodeString("<" + c.opts.RootTag + "/>")
		if err != nil {
			return nil, fmt.Errorf("catalog: bad root tag %q: %w", c.opts.RootTag, err)
		}
		cdb, err = core.Open(empty, cfg)
		if err != nil {
			return nil, err
		}
		// Pin the initial document on disk (snapshot at log position 0)
		// so recovery never depends on the RootTag option staying stable
		// across restarts.
		if _, err := store.SaveWith(snapshot, empty, cfg.Schema, store.SaveOptions{
			Comment: "initial state of " + name,
			Epoch:   seedEpoch,
		}); err != nil {
			return nil, err
		}
		snapEpoch = seedEpoch
	}
	recovered := int64(0)
	w, err := recoverWAL(filepath.Join(dbDir, walDirName), c.opts.SegmentBytes, after, snapEpoch, func(e WALRecord) error {
		recovered++
		return cdb.ApplyOp(e.Op)
	})
	if err != nil {
		return nil, err
	}
	w.jsonAppends = c.opts.WALEncoding == EncodingJSON
	w.strtabDisabled = c.opts.DisableWALStrTab
	d := &DB{
		name:         name,
		dir:          dbDir,
		core:         cdb,
		wal:          w,
		opts:         c.opts,
		commitCh:     make(chan struct{}),
		compactCh:    make(chan struct{}, 1),
		done:         make(chan struct{}),
		recoveredOps: recovered,
	}
	d.snapshotSeq.Store(after)
	d.snapshotEpoch.Store(snapEpoch)
	d.storeFormat.Store(int64(snapFormat))
	// The watermark the journal resumes from: everything on disk is now
	// reflected in the tree.
	last := w.stats().LastSeq
	cdb.SetJournal(d, last)
	d.opsSinceCompact.Store(int64(last - d.snapshotSeq.Load()))
	if recovered > 0 && c.opts.Logger != nil {
		c.opts.Logger.Printf("catalog: %s: recovered %d op(s) from the write-ahead log (seq %d)", name, recovered, last)
	}
	d.wg.Add(1)
	go d.compactLoop()
	return d, nil
}

// Record implements core.Journal: append the op durably, wake long-poll
// tailers, then poke the compactor when the log tail has grown enough.
func (d *DB) Record(op core.Op) (uint64, error) {
	seq, err := d.wal.append(op)
	if err != nil {
		return 0, err
	}
	d.notifyCommit()
	if d.opts.CompactEvery > 0 && d.opsSinceCompact.Add(1) >= int64(d.opts.CompactEvery) {
		select {
		case d.compactCh <- struct{}{}:
		default:
		}
	}
	return seq, nil
}

// compactLoop is the background compactor goroutine.
func (d *DB) compactLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.done:
			return
		case <-d.compactCh:
			if err := d.Compact(); err != nil && d.opts.Logger != nil {
				d.opts.Logger.Printf("catalog: %s: compaction: %v", d.name, err)
			}
		}
	}
}

// Compact folds the committed log into a fresh snapshot and drops the
// now-redundant segments. Safe to call at any time; concurrent mutations
// keep committing to the log while the snapshot is written.
func (d *DB) Compact() error {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	// Read the epoch before the view: if a promotion raises it mid-save
	// the manifest understates the epoch, which recovery repairs (it takes
	// the max of manifest and log), whereas overstating could fence out
	// records legitimately committed under the older epoch.
	epoch := d.wal.currentEpoch()
	v := d.core.View()
	if v.Seq <= d.snapshotSeq.Load() && epoch <= d.snapshotEpoch.Load() {
		// Nothing journaled and no epoch raise since the last snapshot
		// (the initial one written at creation covers sequence 0).
		return nil
	}
	pending, err := core.EncodePending(v.Pending)
	if err != nil {
		return err
	}
	_, err = store.SaveWith(filepath.Join(d.dir, stateDirName), v.Tree, v.Schema, store.SaveOptions{
		Comment:      fmt.Sprintf("compaction of %s", d.name),
		LogSeq:       v.Seq,
		Epoch:        epoch,
		Integrations: v.Integrations,
		Feedback:     v.Events,
		Pending:      pending,
	})
	if err != nil {
		return err
	}
	d.snapshotSeq.Store(v.Seq)
	d.snapshotEpoch.Store(epoch)
	d.storeFormat.Store(store.FormatVersion)
	d.compactions.Add(1)
	d.opsSinceCompact.Store(0)
	_, err = d.wal.dropThrough(v.Seq)
	return err
}

// close stops the compactor and releases the log. With compact, a final
// compaction makes the next open replay-free; failures are non-fatal
// (recovery replays the tail instead). Callers skip it when compaction
// is disabled (inspection tools rely on a close that never rewrites
// state) or when the directory is about to be deleted anyway.
func (d *DB) close(compact bool) error {
	// Stop the ingest drainer (if one is running) before the final
	// compaction, so the snapshot captures a quiesced queue.
	d.core.StopIngest()
	close(d.done)
	d.wg.Wait()
	if compact && d.opts.CompactEvery > 0 {
		if err := d.Compact(); err != nil && d.opts.Logger != nil {
			d.opts.Logger.Printf("catalog: %s: final compaction: %v", d.name, err)
		}
	}
	return d.wal.close()
}

// Name returns the database's name.
func (d *DB) Name() string { return d.name }

// Epoch reports the cluster epoch this database commits under.
func (d *DB) Epoch() uint64 { return d.wal.currentEpoch() }

// RaiseEpoch lifts the database's epoch to e and durably persists the
// raise (a snapshot manifest carrying the new epoch) before returning,
// so a promoted node can never be re-fenced backwards by a crash.
// Epochs only rise; e at or below the current epoch is a no-op.
func (d *DB) RaiseEpoch(e uint64) error {
	if !d.wal.raiseEpoch(e) {
		return nil
	}
	return d.Compact()
}

// Core returns the underlying core.Database. All mutations performed on
// it are journaled through the catalog's write-ahead log.
func (d *DB) Core() *core.Database { return d.core }

// Stats reports the durability counters of this database.
type DBStats struct {
	WAL WALStats `json:"wal"`
	// Epoch is the cluster epoch new commits are stamped with.
	Epoch uint64 `json:"epoch"`
	// SnapshotSeq is the journal sequence the on-disk snapshot reflects;
	// TailOps is how many committed ops recovery would replay right now.
	SnapshotSeq  uint64 `json:"snapshot_seq"`
	TailOps      uint64 `json:"tail_ops"`
	Compactions  int64  `json:"compactions"`
	RecoveredOps int64  `json:"recovered_ops"`
	// StoreFormat is the snapshot format version currently on disk; an
	// old directory advances to store.FormatVersion at its next
	// compaction.
	StoreFormat int `json:"store_format"`
	// CompactEvery is the configured ops-between-compactions knob
	// (negative: automatic compaction disabled).
	CompactEvery int `json:"compact_every"`
}

// Stats reports the database's write-ahead-log and compaction counters.
func (d *DB) Stats() DBStats {
	ws := d.wal.stats()
	snap := d.snapshotSeq.Load()
	tail := uint64(0)
	if ws.LastSeq > snap {
		tail = ws.LastSeq - snap
	}
	return DBStats{
		WAL:          ws,
		Epoch:        ws.Epoch,
		SnapshotSeq:  snap,
		TailOps:      tail,
		Compactions:  d.compactions.Load(),
		RecoveredOps: d.recoveredOps,
		StoreFormat:  int(d.storeFormat.Load()),
		CompactEvery: d.opts.CompactEvery,
	}
}

// SaveNamed persists the database's current state as a user-named
// snapshot under <db>/snapshots/<snapName>, rejecting names that would
// escape it.
func (d *DB) SaveNamed(snapName, comment string) (store.Manifest, error) {
	if snapName == "" {
		snapName = DefaultName
	}
	if err := validateName(snapName); err != nil {
		return store.Manifest{}, err
	}
	return d.core.SaveSnapshot(filepath.Join(d.dir, snapshotsDirName, snapName), comment)
}

// LoadNamed restores a snapshot previously written by SaveNamed. The
// restore itself is journaled (an OpLoad record), so it survives a crash
// like any other mutation.
func (d *DB) LoadNamed(snapName string) (*store.Snapshot, error) {
	if snapName == "" {
		snapName = DefaultName
	}
	if err := validateName(snapName); err != nil {
		return nil, err
	}
	return d.core.LoadSnapshot(filepath.Join(d.dir, snapshotsDirName, snapName))
}

// Create makes a new, empty database. Its initial document is pinned to
// disk immediately (a snapshot at log position 0), so recovery never
// depends on catalog options staying stable.
func (c *Catalog) Create(name string) (*DB, error) {
	if err := validateName(name); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("catalog: closed")
	}
	if _, ok := c.dbs[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	db, err := c.openDB(name, c.epochLocked())
	if err != nil {
		return nil, err
	}
	c.dbs[name] = db
	return db, nil
}

// epochLocked computes the catalog's cluster epoch: the highest epoch
// witnessed by any database or raised via RaiseEpoch. Callers hold c.mu.
func (c *Catalog) epochLocked() uint64 {
	e := c.epoch
	for _, db := range c.dbs {
		if de := db.Epoch(); de > e {
			e = de
		}
	}
	return e
}

// Epoch reports the catalog's cluster epoch — the highest epoch any of
// its databases commits under.
func (c *Catalog) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epochLocked()
}

// RaiseEpoch lifts every database (and the catalog itself, so databases
// created later inherit it) to epoch e, durably persisting each raise
// before returning. This is the fencing half of promotion: once it
// returns, nothing committed under a lower epoch can ever be accepted
// here again. Epochs only rise; e at or below the current epoch of a
// database leaves that database untouched.
func (c *Catalog) RaiseEpoch(e uint64) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("catalog: closed")
	}
	if e > c.epoch {
		c.epoch = e
	}
	dbs := make([]*DB, 0, len(c.dbs))
	for _, db := range c.dbs {
		dbs = append(dbs, db)
	}
	c.mu.Unlock()
	for _, db := range dbs {
		if err := db.RaiseEpoch(e); err != nil {
			return fmt.Errorf("catalog: raising epoch of %s: %w", db.name, err)
		}
	}
	return nil
}

// Get returns a database by name.
func (c *Catalog) Get(name string) (*DB, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	db, ok := c.dbs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return db, nil
}

// Default returns the catalog's default database, creating it on first
// use — the landing spot for legacy single-database clients.
func (c *Catalog) Default() (*DB, error) {
	c.mu.Lock()
	if db, ok := c.dbs[DefaultName]; ok {
		c.mu.Unlock()
		return db, nil
	}
	c.mu.Unlock()
	db, err := c.Create(DefaultName)
	if errors.Is(err, ErrExists) {
		return c.Get(DefaultName)
	}
	return db, err
}

// Names returns the database names, sorted.
func (c *Catalog) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.dbs))
	for n := range c.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// List returns every database, sorted by name.
func (c *Catalog) List() []*DB {
	c.mu.Lock()
	defer c.mu.Unlock()
	dbs := make([]*DB, 0, len(c.dbs))
	for _, db := range c.dbs {
		dbs = append(dbs, db)
	}
	sort.Slice(dbs, func(i, j int) bool { return dbs[i].name < dbs[j].name })
	return dbs
}

// Drop closes a database and deletes its directory — log, snapshots and
// all. Irreversible.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	db, ok := c.dbs[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(c.dbs, name)
	c.mu.Unlock()
	// No final compaction: everything written would be deleted two lines
	// later anyway.
	if err := db.close(false); err != nil {
		return err
	}
	if err := os.RemoveAll(db.dir); err != nil {
		return err
	}
	return syncDir(c.dir)
}

// Close stops every database's compactor (running one final compaction
// each) and releases the logs. The catalog is unusable afterwards.
func (c *Catalog) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	dbs := make([]*DB, 0, len(c.dbs))
	for _, db := range c.dbs {
		dbs = append(dbs, db)
	}
	c.mu.Unlock()
	var first error
	for _, db := range dbs {
		if err := db.close(true); err != nil && first == nil {
			first = err
		}
	}
	c.unlock()
	return first
}

// The write-ahead op log: an append-only sequence of CRC-framed,
// fsynced records split across segment files. Each record is one
// core.Op plus its sequence number; recovery replays the intact prefix
// and truncates a torn tail in place.
//
// On-disk layout (little endian):
//
//	segment file  wal/seg-<first-seq, 16 hex digits>.log
//	record frame  [4B payload length][4B CRC-32C of payload][payload]
//	payload       binary record (first byte 0x00; see walrecord.go) or
//	              JSON {"seq": N, "epoch": E, "op": {...}} (first byte '{')
//
// New appends default to the binary payload (Options.WALEncoding "json"
// keeps writing JSON); the read path dispatches per record on the first
// payload byte, so logs written by older builds — and logs that switch
// encodings mid-segment — recover unchanged.
//
// A record is committed iff its full frame is on disk and the CRC
// matches. The last segment may end in a torn frame (the write the crash
// interrupted); recovery truncates the file back to the last committed
// record. A bad frame anywhere else — or a committed frame with an
// out-of-order sequence — is corruption and refuses to load.
//
// The epoch is the cluster term the record was committed under. It is
// omitted when zero, which is exactly how pre-epoch (format v2) logs
// read back: every record decodes as epoch 0. Epochs may only rise
// along the log; a committed record with a lower epoch than its
// predecessor is corruption, because promotion only ever increments the
// epoch and fences the old one before new appends happen.
package catalog

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"repro/internal/codec"
	"repro/internal/core"
)

// ErrCorrupt is returned when the write-ahead log fails an integrity
// check that truncation cannot repair (a bad record that is not the torn
// tail of the last segment).
var ErrCorrupt = errors.New("catalog: write-ahead log corrupt")

// ErrSeqGone is returned by the read path when the records just past the
// requested position are no longer on disk (compaction folded them into
// the snapshot) — or when the position lies beyond the committed log, so
// the caller's idea of the sequence has diverged from this log's. Either
// way incremental tailing is impossible: the caller must resynchronize
// from a snapshot.
var ErrSeqGone = errors.New("catalog: requested log position unavailable")

const (
	walDirName = "wal"
	segPrefix  = "seg-"
	segSuffix  = ".log"
	// frameHeaderLen is the fixed per-record overhead.
	frameHeaderLen = 8
	// maxRecordBytes bounds a single record; a length field beyond it is
	// treated as garbage, not an allocation request.
	maxRecordBytes = 256 << 20

	// defaultReadBatch bounds one opsSince page when the caller passes no
	// limit, so a far-behind follower streams the backlog in chunks
	// instead of one giant response.
	defaultReadBatch = 512

	// DefaultSegmentBytes rotates segments at 4 MiB, keeping individual
	// files small enough that compaction reclaims space promptly.
	DefaultSegmentBytes = 4 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WALRecord is one committed write-ahead-log record: a journaled op,
// the sequence the log assigned it, and the cluster epoch it was
// committed under. It is both the on-disk JSON payload of a frame and
// the unit the replication read path (OpsSince) hands to followers,
// which re-journal it at the same sequence and epoch.
type WALRecord struct {
	Seq   uint64  `json:"seq"`
	Epoch uint64  `json:"epoch,omitempty"`
	Op    core.Op `json:"op"`
}

// WALStats are the log's observability counters (served under /stats).
type WALStats struct {
	// LastSeq is the sequence of the newest committed record (0 when the
	// log is empty).
	LastSeq uint64 `json:"last_seq"`
	// Epoch is the cluster epoch new appends are stamped with.
	Epoch uint64 `json:"epoch"`
	// Segments is the number of live segment files.
	Segments int `json:"segments"`
	// SizeBytes is the total size of the live segments.
	SizeBytes int64 `json:"size_bytes"`
	// Appends and AppendedBytes count records written by this process.
	Appends       int64 `json:"appends"`
	AppendedBytes int64 `json:"appended_bytes"`
	// Rotations counts segment rollovers by this process.
	Rotations int64 `json:"rotations"`
	// SegmentLimitBytes is the configured rotation threshold — the
	// -wal-segment-bytes knob as the log actually runs it.
	SegmentLimitBytes int64 `json:"segment_limit_bytes"`
	// Encoding is the payload format new appends use ("binary" or
	// "json"); records already on disk may be either.
	Encoding string `json:"encoding"`
	// StrTabEntries is the size of the append-side interned string table
	// for the active segment (0 when strtab records are disabled or the
	// segment is fresh).
	StrTabEntries int `json:"strtab_entries,omitempty"`
}

// wal is an open write-ahead log positioned to append.
type wal struct {
	dir      string
	segLimit int64
	// jsonAppends makes append write JSON payloads (the escape hatch for
	// data dirs that must stay readable by pre-binary builds). The read
	// path always accepts both.
	jsonAppends bool
	// strtabDisabled makes binary appends use the self-contained v2
	// record layout instead of v3 — the knob benchmarks and cautious
	// operators use to compare, and the implicit mode under jsonAppends.
	strtabDisabled bool

	mu       sync.Mutex
	f        *os.File // active (last) segment
	fileSize int64
	nextSeq  uint64
	// epoch stamps every append; raised by promotion (raiseEpoch) and by
	// replicated records from a newer primary, never lowered.
	epoch uint64
	// segStarts holds the first sequence of every live segment, sorted;
	// the last entry is the active segment.
	segStarts []uint64
	// sizeBelow is the total size of the non-active segments.
	sizeBelow int64

	appends       int64
	appendedBytes int64
	rotations     int64

	// tab is the append-side string table for the active segment. Every
	// v3 record's delta extends it; rotation resets it so each segment's
	// deltas rebuild the table from zero, and recovery reseeds it by
	// replaying the reopened last segment.
	tab codec.SharedStrings
}

func segName(start uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hexpart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexpart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listSegments returns the live segment start sequences in order.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var starts []uint64
	for _, e := range entries {
		if s, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			starts = append(starts, s)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// recoverWAL opens (creating if needed) the log under dir, replays every
// committed record with sequence > after through fn in order, truncates a
// torn tail, and returns the log positioned to append. A replay error
// from fn aborts recovery. snapEpoch is the epoch recorded in the
// snapshot manifest (0 for pre-epoch snapshots); the recovered log's
// epoch is the maximum of snapEpoch and the last committed record's
// epoch, so a node resumes appending in the newest epoch it ever
// witnessed. Records past the snapshot position carrying an epoch below
// snapEpoch — or any epoch regression along the log — refuse to load.
func recoverWAL(dir string, segLimit int64, after uint64, snapEpoch uint64, fn func(WALRecord) error) (*wal, error) {
	if segLimit <= 0 {
		segLimit = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	starts, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w := &wal{dir: dir, segLimit: segLimit, segStarts: starts, epoch: snapEpoch}
	// Fresh log: create the first segment, numbering records after the
	// snapshot (after+1), so replay watermarks stay monotonic.
	if len(starts) == 0 {
		return w, w.openSegmentLocked(after + 1)
	}
	next := starts[0]
	// epochSeen is the high-water epoch across the whole log; epochs may
	// only rise record to record (segment boundaries included).
	var epochSeen uint64
	// replayTab replays each segment's strtab deltas; after the loop it
	// holds the last segment's cumulative table, which seeds the append
	// side so the next record's delta continues where the log left off.
	var replayTab codec.StrTab
	for i, start := range starts {
		if start != next {
			return nil, fmt.Errorf("%w: segment %s does not continue at sequence %d", ErrCorrupt, segName(start), next)
		}
		last := i == len(starts)-1
		n, size, err := replaySegment(filepath.Join(dir, segName(start)), start, last, after, snapEpoch, &epochSeen, &replayTab, fn)
		if err != nil {
			return nil, err
		}
		next = start + n
		if last {
			w.fileSize = size
		} else {
			w.sizeBelow += size
		}
	}
	w.nextSeq = next
	if epochSeen > w.epoch {
		w.epoch = epochSeen
	}
	if next <= after {
		// The log ends at or before the snapshot (its tail segments were
		// removed out of band). Every record on disk is covered by the
		// snapshot, so drop the old segments outright — leaving them
		// would put a sequence gap in front of the fresh segment and
		// fail the dense-continuation check at the next open — and
		// resume numbering after the snapshot so future records are
		// replayed, not skipped.
		for _, start := range w.segStarts {
			if err := os.Remove(filepath.Join(dir, segName(start))); err != nil {
				return nil, err
			}
		}
		if err := syncDir(dir); err != nil {
			return nil, err
		}
		w.segStarts = nil
		w.sizeBelow = 0
		w.fileSize = 0
		w.nextSeq = after + 1
		return w, w.openSegmentLocked(after + 1)
	}
	// Reopen the last segment for appending (replaySegment truncated any
	// torn tail already). The append-side table resumes from the
	// segment's committed deltas, so the next v3 record's base matches
	// what a future recovery will have replayed.
	for _, s := range replayTab.Strings() {
		w.tab.Intern(s)
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(starts[len(starts)-1])), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w.f = f
	return w, nil
}

// replaySegment scans one segment file, invoking fn for every committed
// record with sequence > after. It verifies the sequence numbering is
// dense starting at start and that epochs never regress (epochSeen is
// the running high-water mark, carried across segments by the caller).
// For the last segment a bad frame is treated as the torn tail and
// truncated away; anywhere else it is corruption. It returns the number
// of committed records and the (post-truncation) file size.
func replaySegment(path string, start uint64, isLast bool, after uint64, snapEpoch uint64, epochSeen *uint64, tab *codec.StrTab, fn func(WALRecord) error) (records uint64, size int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	// Strtab deltas are segment-scoped: every segment rebuilds from zero.
	tab.Reset()
	off := 0
	torn := func(reason string) (uint64, int64, error) {
		if !isLast {
			return 0, 0, fmt.Errorf("%w: %s at offset %d of %s (not the log tail)", ErrCorrupt, reason, off, filepath.Base(path))
		}
		if err := os.Truncate(path, int64(off)); err != nil {
			return 0, 0, fmt.Errorf("catalog: truncating torn tail of %s: %w", filepath.Base(path), err)
		}
		return records, int64(off), nil
	}
	seq := start
	for off < len(data) {
		if len(data)-off < frameHeaderLen {
			return torn("short frame header")
		}
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 || length > maxRecordBytes {
			return torn("implausible record length")
		}
		if len(data)-off-frameHeaderLen < int(length) {
			return torn("short record payload")
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+int(length)]
		if crc32.Checksum(payload, crcTable) != sum {
			return torn("checksum mismatch")
		}
		// A torn record commits nothing to tab (DecodeWALRecordShared
		// applies the delta only after a full decode), so the reseeded
		// append table always matches what this replay accepted.
		e, err := DecodeWALRecordShared(payload, tab)
		if err != nil {
			return torn("undecodable record")
		}
		if e.Seq != seq {
			return 0, 0, fmt.Errorf("%w: record sequence %d where %d expected in %s", ErrCorrupt, e.Seq, seq, filepath.Base(path))
		}
		if e.Epoch < *epochSeen {
			return 0, 0, fmt.Errorf("%w: record %d regresses from epoch %d to %d in %s", ErrCorrupt, e.Seq, *epochSeen, e.Epoch, filepath.Base(path))
		}
		*epochSeen = e.Epoch
		if e.Seq > after {
			// Records past the snapshot position must be at least as new as
			// the manifest epoch: the manifest is only ever written after
			// the epoch it names was already stamping appends.
			if e.Epoch < snapEpoch {
				return 0, 0, fmt.Errorf("%w: record %d at epoch %d predates manifest epoch %d in %s", ErrCorrupt, e.Seq, e.Epoch, snapEpoch, filepath.Base(path))
			}
			if fn != nil {
				if err := fn(e); err != nil {
					return 0, 0, fmt.Errorf("catalog: replaying op %d: %w", e.Seq, err)
				}
			}
		}
		seq++
		records++
		off += frameHeaderLen + int(length)
	}
	return records, int64(off), nil
}

// openSegmentLocked starts a fresh segment whose first record will carry
// seq. Callers hold mu (or have exclusive access during recovery).
func (w *wal) openSegmentLocked(seq uint64) error {
	path := filepath.Join(w.dir, segName(seq))
	// O_APPEND matters beyond convention: after a failed append the file
	// is truncated back to the last committed record, and only append
	// mode guarantees the next write lands at that new end instead of at
	// the stale fd offset (which would leave a zero-filled hole that
	// recovery misreads as the torn tail).
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	// The segment must itself survive a crash before anything in it can.
	// On failure the just-created file must go too: appends continue in
	// the old segment, and an orphan whose name does not continue the
	// sequence would fail the dense-continuation check at the next open.
	if err := f.Sync(); err != nil {
		f.Close()
		_ = os.Remove(path)
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		_ = os.Remove(path)
		return err
	}
	if w.f != nil {
		w.f.Close()
		w.sizeBelow += w.fileSize
	}
	w.f = f
	w.fileSize = 0
	w.segStarts = append(w.segStarts, seq)
	if w.nextSeq == 0 {
		w.nextSeq = seq
	}
	return nil
}

// append frames, writes and fsyncs one op, returning its sequence. The
// record is durable when append returns nil.
func (w *wal) append(op core.Op) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	seq := w.nextSeq
	rec := WALRecord{Seq: seq, Epoch: w.epoch, Op: op}
	// Any failure past the encode must roll the interning table back to
	// its pre-record length: the delta the failed record carried never
	// became durable, so the next record's base must not account for it.
	prevTabLen := w.tab.Len()
	var payload []byte
	var err error
	switch {
	case w.jsonAppends:
		// rec holds a private copy of op, so materializing the XML string
		// fields for JSON never mutates the caller's op.
		if err = rec.Op.EncodePortable(); err != nil {
			return 0, err
		}
		payload, err = json.Marshal(rec)
	case w.strtabDisabled:
		payload, err = EncodeWALRecord(rec)
	default:
		payload, err = EncodeWALRecordShared(rec, &w.tab)
	}
	if err != nil {
		w.tab.Truncate(prevTabLen)
		return 0, err
	}
	if len(payload) > maxRecordBytes {
		w.tab.Truncate(prevTabLen)
		return 0, fmt.Errorf("catalog: op record of %d bytes exceeds the %d byte limit", len(payload), maxRecordBytes)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeaderLen:], payload)
	if _, err := w.f.Write(frame); err != nil {
		// Claw the partial frame back so the in-memory offset stays true;
		// if even that fails recovery will truncate the torn tail.
		_ = w.f.Truncate(w.fileSize)
		w.tab.Truncate(prevTabLen)
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		// The frame may be fully written (just not durable). It must not
		// linger: the next append would reuse seq and a later recovery
		// would reject the duplicate as corruption rather than a torn
		// tail. Truncate back to the last committed record.
		_ = w.f.Truncate(w.fileSize)
		w.tab.Truncate(prevTabLen)
		return 0, err
	}
	w.fileSize += int64(len(frame))
	w.nextSeq++
	w.appends++
	w.appendedBytes += int64(len(frame))
	if w.fileSize >= w.segLimit {
		if err := w.openSegmentLocked(w.nextSeq); err != nil {
			// Rotation failure is not fatal: the active segment keeps
			// accepting appends beyond the soft limit.
			return seq, nil
		}
		w.rotations++
		// A fresh segment starts a fresh table: its first record's delta
		// is based at 0, keeping every segment self-contained.
		w.tab.Reset()
	}
	return seq, nil
}

// dropThrough removes segments whose records all have sequence <= seq
// (after a snapshot made them redundant). The active segment is never
// removed. Returns the number of segments deleted.
func (w *wal) dropThrough(seq uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := 0
	for len(w.segStarts) > 1 && w.segStarts[1] <= seq+1 {
		path := filepath.Join(w.dir, segName(w.segStarts[0]))
		info, _ := os.Stat(path)
		if err := os.Remove(path); err != nil {
			return removed, err
		}
		if info != nil {
			w.sizeBelow -= info.Size()
		}
		w.segStarts = w.segStarts[1:]
		removed++
	}
	if removed > 0 {
		if err := syncDir(w.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// RawWALRecord is one committed log record in its on-disk form: the
// position and epoch (peeked from the payload header) plus the exact
// payload bytes inside the CRC envelope. The raw form is what the
// binary replication wire ships — a record travels from the primary's
// disk to the follower without an intermediate decode/re-encode — and
// DecodeWALRecord turns Payload back into a WALRecord on the other end.
type RawWALRecord struct {
	Seq     uint64
	Epoch   uint64
	Payload []byte
}

// opsSince returns up to limit committed records with sequence > after,
// in order, decoded. It is rawOpsSince plus a record decode — the JSON
// wire and local callers need the structured form. The strtab prefix
// rawOpsSince reports seeds the decode table, so a page starting
// mid-segment resolves shared records exactly as a follower would.
func (w *wal) opsSince(after uint64, limit int) ([]WALRecord, error) {
	raws, prefix, err := w.rawOpsSince(after, limit)
	if err != nil || raws == nil {
		return nil, err
	}
	var tab codec.StrTab
	if err := tab.Apply(0, prefix); err != nil {
		return nil, err
	}
	out := make([]WALRecord, len(raws))
	for i := range raws {
		rec, err := DecodeWALRecordShared(raws[i].Payload, &tab)
		if err != nil {
			return nil, fmt.Errorf("%w: undecodable record %d: %v", ErrCorrupt, raws[i].Seq, err)
		}
		out[i] = rec
	}
	return out, nil
}

// rawOpsSince is the primary half of log shipping: up to limit committed
// records with sequence > after, in order, as raw payload bytes, plus
// the strtab prefix — the cumulative string table built by the records
// of the first contributing segment that the page skips (seq <= after).
// A consumer seeds its decode table with the prefix; the shipped
// records' own embedded deltas carry it forward from there, including
// across segment boundaries (a base-0 delta resets it). The prefix is
// empty when the page starts at a segment boundary or holds no v3
// records. It fails with ErrSeqGone when the range is not incrementally
// servable: the records were compacted away, or after lies beyond the
// committed log. Only the log geometry is snapshotted under mu; the
// disk reads run unlocked, so a follower catching up through gigabytes
// of log never stalls appends. That is safe because closed segments are
// immutable and the active segment's committed prefix (fileSize at
// snapshot time) never changes — any integrity failure inside those
// bounds is ErrCorrupt, never a torn tail. A segment deleted between
// snapshot and read (compaction racing us) reports ErrSeqGone, exactly
// as if compaction had won the race outright.
func (w *wal) rawOpsSince(after uint64, limit int) ([]RawWALRecord, []string, error) {
	if limit <= 0 {
		limit = defaultReadBatch
	}
	w.mu.Lock()
	next := w.nextSeq
	starts := append([]uint64(nil), w.segStarts...)
	activeSize := w.fileSize
	w.mu.Unlock()
	last := next - 1
	if after >= last {
		if after > last {
			return nil, nil, fmt.Errorf("%w: position %d is beyond the committed log (last %d)", ErrSeqGone, after, last)
		}
		return nil, nil, nil
	}
	if len(starts) == 0 || starts[0] > after+1 {
		oldest := next
		if len(starts) > 0 {
			oldest = starts[0]
		}
		return nil, nil, fmt.Errorf("%w: records after %d were compacted away (oldest on disk is %d)", ErrSeqGone, after, oldest)
	}
	var out []RawWALRecord
	var prefix []string
	var prefixTab codec.StrTab
	for i, start := range starts {
		end := next // the last snapshotted segment covers [start, next)
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		if end <= after+1 {
			continue
		}
		committed := int64(-1) // whole file
		if i == len(starts)-1 {
			committed = activeSize
		}
		var scanErr error
		err := readSegment(filepath.Join(w.dir, segName(start)), start, committed, func(e RawWALRecord) bool {
			if e.Seq > after {
				if len(out) == 0 {
					// First shipped record: freeze the skipped records'
					// cumulative table as the page prefix.
					prefix = append([]string(nil), prefixTab.Strings()...)
				}
				out = append(out, e)
			} else {
				// Skipped record: its delta still advances the table the
				// first shipped record's base refers to.
				base, entries, shared, err := peekRecordDelta(e.Payload)
				if err == nil && shared {
					err = prefixTab.Apply(base, entries)
				}
				if err != nil {
					scanErr = fmt.Errorf("%w: bad strtab delta at record %d: %v", ErrCorrupt, e.Seq, err)
					return false
				}
			}
			return len(out) < limit
		})
		if err == nil {
			err = scanErr
		}
		if err != nil {
			if os.IsNotExist(err) {
				return nil, nil, fmt.Errorf("%w: records after %d were compacted away concurrently", ErrSeqGone, after)
			}
			return nil, nil, err
		}
		if len(out) >= limit {
			break
		}
	}
	return out, prefix, nil
}

// readSegment scans the committed frames of one segment in order, calling
// fn per raw record until it returns false. committed >= 0 bounds the
// scan to that prefix (the durable part of the active segment); -1 scans
// the whole file. Unlike replaySegment this never truncates: every byte
// in range is supposed to be committed, so any bad frame is ErrCorrupt.
// Records are verified by CRC and a header peek, not a full decode —
// shipping payloads stay exactly the bytes on disk. The handed-out
// payload slices alias the segment read buffer; callers may retain them
// (the buffer is fresh per call and never mutated).
func readSegment(path string, start uint64, committed int64, fn func(RawWALRecord) bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if committed >= 0 && int64(len(data)) > committed {
		data = data[:committed]
	}
	off := 0
	seq := start
	for off < len(data) {
		if len(data)-off < frameHeaderLen {
			return fmt.Errorf("%w: short frame header at offset %d of %s", ErrCorrupt, off, filepath.Base(path))
		}
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 || length > maxRecordBytes || len(data)-off-frameHeaderLen < int(length) {
			return fmt.Errorf("%w: bad frame at offset %d of %s", ErrCorrupt, off, filepath.Base(path))
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+int(length)]
		if crc32.Checksum(payload, crcTable) != sum {
			return fmt.Errorf("%w: checksum mismatch at offset %d of %s", ErrCorrupt, off, filepath.Base(path))
		}
		rseq, epoch, err := peekRecordHeader(payload)
		if err != nil {
			return fmt.Errorf("%w: undecodable record at offset %d of %s", ErrCorrupt, off, filepath.Base(path))
		}
		if rseq != seq {
			return fmt.Errorf("%w: record sequence %d where %d expected in %s", ErrCorrupt, rseq, seq, filepath.Base(path))
		}
		if !fn(RawWALRecord{Seq: rseq, Epoch: epoch, Payload: payload}) {
			return nil
		}
		seq++
		off += frameHeaderLen + int(length)
	}
	return nil
}

// encodingName reports the payload format new appends use. Callers hold
// mu (jsonAppends is only ever set before the log serves traffic, but the
// stats path reads it under the lock for tidiness).
func (w *wal) encodingName() string {
	if w.jsonAppends {
		return EncodingJSON
	}
	return EncodingBinary
}

// currentEpoch reports the epoch new appends are stamped with.
func (w *wal) currentEpoch() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// raiseEpoch lifts the append epoch to e. Epochs are fencing tokens:
// they only ever rise, so a stale caller (e below the current epoch) is
// a no-op. Reports whether the epoch changed.
func (w *wal) raiseEpoch(e uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if e <= w.epoch {
		return false
	}
	w.epoch = e
	return true
}

// stats snapshots the counters.
func (w *wal) stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		LastSeq:           w.nextSeq - 1,
		Epoch:             w.epoch,
		Segments:          len(w.segStarts),
		SizeBytes:         w.sizeBelow + w.fileSize,
		Appends:           w.appends,
		AppendedBytes:     w.appendedBytes,
		Rotations:         w.rotations,
		SegmentLimitBytes: w.segLimit,
		Encoding:          w.encodingName(),
		StrTabEntries:     w.tab.Len(),
	}
}

// close releases the active segment handle. Appends after close fail.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// syncDir fsyncs a directory so renames and unlinks inside it survive
// power loss (mirrors store.syncDir; kept private to each package).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems refuse fsync on directories (EINVAL); that is a
	// durability gap we cannot close, not an error to fail on.
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}

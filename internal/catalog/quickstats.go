// Manifest-only catalog inspection: listing N databases costs N manifest
// reads and directory stats, never a snapshot decode or a WAL replay.
// This is how `imprecise db list`/`db stats` answer by default — a
// corrupt document payload or a log needing repair does not block an
// operator from seeing what is on disk.
package catalog

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/store"
)

// QuickStat is the manifest-only view of one database directory: what
// the latest snapshot recorded plus the raw size of the log tail. It
// reflects the last compaction, not the live tip — ops journaled since
// the snapshot are visible only as WAL bytes.
type QuickStat struct {
	Name string `json:"name"`
	// HasSnapshot is false for a directory with no manifest yet (created
	// but never compacted); the manifest-derived fields are then zero.
	HasSnapshot   bool      `json:"has_snapshot"`
	FormatVersion int       `json:"format_version,omitempty"`
	LogicalNodes  int64     `json:"logical_nodes"`
	Worlds        string    `json:"worlds,omitempty"`
	SnapshotSeq   uint64    `json:"snapshot_seq"`
	Epoch         uint64    `json:"epoch"`
	SavedAt       time.Time `json:"saved_at,omitzero"`
	Integrations  int       `json:"integrations"`
	Feedback      int       `json:"feedback_events"`
	// WALSegments and WALBytes size the un-compacted tail without
	// decoding it.
	WALSegments int   `json:"wal_segments"`
	WALBytes    int64 `json:"wal_bytes"`
}

// QuickStats reads the manifest-level stats of every database under a
// catalog data directory without opening the catalog: no lock, no
// document decode, no WAL replay. The directory need not exist (an
// empty listing results), but a present-and-unreadable manifest is an
// error — silence there would hide corruption from the one command
// meant to see it.
func QuickStats(dir string) ([]QuickStat, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []QuickStat
	for _, e := range entries {
		if !e.IsDir() || validateName(e.Name()) != nil {
			continue
		}
		qs := QuickStat{Name: e.Name()}
		m, err := store.ReadManifest(filepath.Join(dir, e.Name(), stateDirName))
		switch {
		case err == nil:
			qs.HasSnapshot = true
			qs.FormatVersion = m.FormatVersion
			qs.LogicalNodes = m.LogicalNodes
			qs.Worlds = m.Worlds
			qs.SnapshotSeq = m.LogSeq
			qs.Epoch = m.Epoch
			qs.SavedAt = m.SavedAt
			qs.Integrations = len(m.Integrations)
			qs.Feedback = len(m.Feedback)
		case errors.Is(err, fs.ErrNotExist):
			// Created but never compacted: only the log exists.
		default:
			return nil, fmt.Errorf("catalog: %s: %w", e.Name(), err)
		}
		segs, err := os.ReadDir(filepath.Join(dir, e.Name(), walDirName))
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("catalog: %s: %w", e.Name(), err)
		}
		for _, s := range segs {
			info, err := s.Info()
			if err != nil {
				return nil, fmt.Errorf("catalog: %s: %w", e.Name(), err)
			}
			qs.WALSegments++
			qs.WALBytes += info.Size()
		}
		out = append(out, qs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ReadQuickStat reads one database's manifest-only stats; ErrNotFound
// if no such directory exists under dir.
func ReadQuickStat(dir, name string) (QuickStat, error) {
	if err := validateName(name); err != nil {
		return QuickStat{}, err
	}
	if _, err := os.Stat(filepath.Join(dir, name)); errors.Is(err, fs.ErrNotExist) {
		return QuickStat{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	all, err := QuickStats(dir)
	if err != nil {
		return QuickStat{}, err
	}
	for _, qs := range all {
		if qs.Name == name {
			return qs, nil
		}
	}
	return QuickStat{}, fmt.Errorf("%w: %q", ErrNotFound, name)
}

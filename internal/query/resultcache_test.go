package query

import (
	"sync"
	"testing"
)

func cachedResult(vals ...string) Result {
	answers := make([]Answer, len(vals))
	for i, v := range vals {
		answers[i] = Answer{Value: v, P: 0.5}
	}
	return newResult(answers, MethodExact, 0, &Plan{Method: MethodExact})
}

func TestResultCacheHitMiss(t *testing.T) {
	c := NewResultCache(4)
	if _, ok := c.Get(1, "//a", Options{}); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(1, "//a", Options{}, cachedResult("x"))
	res, ok := c.Get(1, "//a", Options{})
	if !ok || len(res.Answers) != 1 || res.Answers[0].Value != "x" {
		t.Fatalf("get = %v, %v", res, ok)
	}
	// Different digest, query text, or options are distinct entries.
	if _, ok := c.Get(2, "//a", Options{}); ok {
		t.Fatal("digest not part of the key")
	}
	if _, ok := c.Get(1, "//b", Options{}); ok {
		t.Fatal("query text not part of the key")
	}
	if _, ok := c.Get(1, "//a", Options{Method: MethodSample}); ok {
		t.Fatal("method not part of the key")
	}
	if _, ok := c.Get(1, "//a", Options{Seed: SeedPtr(7)}); ok {
		t.Fatal("seed not part of the key")
	}
	// Spelled-out defaults share the entry with the zero options.
	if _, ok := c.Get(1, "//a", Options{Samples: 20000, EnumWorldLimit: 100000}); !ok {
		t.Fatal("canonicalized defaults missed")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Size != 1 || st.Capacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestResultCacheEvictionLRU(t *testing.T) {
	c := NewResultCache(2)
	c.Put(1, "a", Options{}, cachedResult("a"))
	c.Put(1, "b", Options{}, cachedResult("b"))
	c.Get(1, "a", Options{}) // refresh a
	c.Put(1, "c", Options{}, cachedResult("c"))
	if _, ok := c.Get(1, "b", Options{}); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := c.Get(1, "a", Options{}); !ok {
		t.Fatal("recently used entry evicted")
	}
	if st := c.Stats(); st.Size != 2 {
		t.Fatalf("size = %d, want 2", st.Size)
	}
}

func TestResultCachePurge(t *testing.T) {
	c := NewResultCache(0)
	if c.Stats().Capacity != DefaultResultCacheCapacity {
		t.Fatalf("default capacity = %d", c.Stats().Capacity)
	}
	c.Put(1, "a", Options{}, cachedResult("a"))
	c.Purge()
	if _, ok := c.Get(1, "a", Options{}); ok {
		t.Fatal("entry survived purge")
	}
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("size after purge = %d", st.Size)
	}
}

// TestResultCachePutIfGeneration pins the swap-race guard: a Put whose
// caller observed a pre-purge generation is dropped, so slow evaluations
// straddling a tree swap cannot re-insert entries for retired documents.
func TestResultCachePutIfGeneration(t *testing.T) {
	c := NewResultCache(4)
	gen := c.Generation()
	if !c.PutIfGeneration(gen, 1, "a", Options{}, cachedResult("a")) {
		t.Fatal("put with current generation rejected")
	}
	c.Purge() // a tree swap retires digest 1
	if c.PutIfGeneration(gen, 1, "b", Options{}, cachedResult("b")) {
		t.Fatal("put with stale generation accepted")
	}
	if _, ok := c.Get(1, "b", Options{}); ok {
		t.Fatal("stale-generation entry visible")
	}
	if !c.PutIfGeneration(c.Generation(), 1, "c", Options{}, cachedResult("c")) {
		t.Fatal("put with refreshed generation rejected")
	}
}

func TestResultCacheConcurrent(t *testing.T) {
	c := NewResultCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := string(rune('a' + (g+i)%16))
				if _, ok := c.Get(uint64(i%3), key, Options{}); !ok {
					c.Put(uint64(i%3), key, Options{}, cachedResult(key))
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestResultPLookup(t *testing.T) {
	r := cachedResult("a", "b", "c")
	if r.P("b") != 0.5 || r.P("zz") != 0 {
		t.Fatalf("P lookup wrong: %g %g", r.P("b"), r.P("zz"))
	}
	// Copies share the lazily built map and agree with the original.
	cp := r
	if cp.P("c") != 0.5 {
		t.Fatal("copied result P lookup broken")
	}
	// Literal results (no lookup) still work via linear scan.
	lit := Result{Answers: []Answer{{Value: "x", P: 0.25}}}
	if lit.P("x") != 0.25 || lit.P("y") != 0 {
		t.Fatal("literal result P broken")
	}
}

package query_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/pxml"
	"repro/internal/pxmltest"
	"repro/internal/query"
	"repro/internal/queryindex"
	"repro/internal/xmlcodec"
)

func mustTreeFromXML(t *testing.T, src string) *pxml.Tree {
	t.Helper()
	tr, err := xmlcodec.DecodeString(src)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEvalIndexedAutoChoosesExactOnFig2(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	idx := queryindex.Build(tr)
	q := query.MustCompile(`//person[nm="John"]/tel`)

	res, err := query.EvalIndexed(tr, q, query.Options{}, idx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("planned result carries no plan")
	}
	if res.Plan.Method != res.Method {
		t.Fatalf("plan method %q != result method %q", res.Plan.Method, res.Method)
	}
	if res.Method != query.MethodExact {
		t.Fatalf("auto chose %q on a 3-world document, want exact", res.Method)
	}
	if !res.Plan.Indexed {
		t.Fatal("plan does not report the index")
	}
	// Answers match the unplanned reference engine.
	ref, err := query.Eval(tr, q, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertAnswersClose(t, res.Answers, ref.Answers, 1e-9)
}

func TestEvalIndexedAutoBitIdenticalToExplicit(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	idx := queryindex.Build(tr)
	for _, src := range []string{
		`//person[nm="John"]/tel`,
		`//person/nm`,
		`//tel`,
		`/addressbook/person[tel="1111"]/nm`,
	} {
		q := query.MustCompile(src)
		auto, err := query.EvalIndexed(tr, q, query.Options{}, idx)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		explicit, err := query.EvalIndexed(tr, q, query.Options{Method: auto.Method}, idx)
		if err != nil {
			t.Fatalf("%s: explicit %q: %v", src, auto.Method, err)
		}
		if !reflect.DeepEqual(auto.Answers, explicit.Answers) {
			t.Fatalf("%s: auto (%q) answers differ from explicit run:\n%v\n%v",
				src, auto.Method, auto.Answers, explicit.Answers)
		}
	}
}

func TestEvalIndexedEmptyByIndex(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	idx := queryindex.Build(tr)
	q := query.MustCompile(`//movie/title`)
	res, err := query.EvalIndexed(tr, q, query.Options{}, idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 || res.Answers == nil {
		t.Fatalf("want empty non-nil answers, got %#v", res.Answers)
	}
	if res.Plan == nil || !res.Plan.EmptyByIndex {
		t.Fatalf("plan = %+v, want EmptyByIndex", res.Plan)
	}
	if res.Plan.PrunedFraction != 1 {
		t.Fatalf("pruned fraction = %g, want 1", res.Plan.PrunedFraction)
	}
	// The shortcut result equals actually running the chosen method.
	explicit, err := query.EvalIndexed(tr, q, query.Options{Method: res.Method}, idx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Answers, explicit.Answers) {
		t.Fatalf("shortcut empty %#v != explicit %#v", res.Answers, explicit.Answers)
	}
}

func TestEvalIndexedStaleIndexIgnored(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	other := pxmltest.Fig2Tree() // equal tree: digest matches, index valid
	idx := queryindex.Build(other)
	q := query.MustCompile(`//person/tel`)
	res, err := query.EvalIndexed(tr, q, query.Options{}, idx)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Indexed {
		t.Fatal("digest-equal index not used")
	}

	// A genuinely different document must not be planned with this index.
	small := mustTreeFromXML(t, `<library><book><isbn>1</isbn></book></library>`)
	res2, err := query.EvalIndexed(small, q, query.Options{}, idx)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Plan.Indexed {
		t.Fatal("stale index (digest mismatch) was used for planning")
	}
}

func TestEvalIndexedExplicitMethodErrors(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	idx := queryindex.Build(tr)
	// text() as first step is not exactly evaluable; an explicit exact
	// request must surface the error rather than silently falling back.
	q := query.MustCompile(`//person/tel`)
	_, err := query.EvalIndexed(tr, q, query.Options{Method: "bogus"}, idx)
	if !errors.Is(err, query.ErrBadOptions) {
		t.Fatalf("bogus method error = %v, want ErrBadOptions", err)
	}
	_, err = query.EvalIndexed(tr, q, query.Options{Samples: -1}, idx)
	if !errors.Is(err, query.ErrBadOptions) {
		t.Fatalf("negative samples error = %v, want ErrBadOptions", err)
	}
}

func assertAnswersClose(t *testing.T, got, want []query.Answer, tol float64) {
	t.Helper()
	gm := map[string]float64{}
	for _, a := range got {
		gm[a.Value] = a.P
	}
	wm := map[string]float64{}
	for _, a := range want {
		wm[a.Value] = a.P
	}
	if len(gm) != len(wm) {
		t.Fatalf("answer sets differ: %v vs %v", got, want)
	}
	for v, p := range wm {
		if d := gm[v] - p; d > tol || d < -tol {
			t.Fatalf("answer %q: %g vs %g", v, gm[v], p)
		}
	}
}

package query_test

import (
	"strings"
	"testing"

	"repro/internal/query"
)

func TestCompileValidQueries(t *testing.T) {
	valid := []string{
		`/addressbook/person/nm`,
		`//movie/title`,
		`//movie[.//genre="Horror"]/title`,
		`//movie[some $d in .//director satisfies contains($d,"John")]/title`,
		`//movie[year="1995" and .//genre]/title`,
		`//movie[title="Jaws" or title="Jaws 2"]/title`,
		`//movie[not(.//genre="Horror")]/title`,
		`//person/*`,
		`//person/nm/text()`,
		`/catalog//movie[contains(title, "Mission")]/year`,
		`//movie[genre]/title`,
		`//movie[./year = "1995"]/title`,
		`//movie[(genre="A" or genre="B") and year="1"]/title`,
		`//a[some $v in b satisfies $v = "x"]`,
		`//movie[contains(., "Jaws")]`,
		`//movie[contains(./title, 'Jaws')]/title`,
		`//movie[year=1995]/title`,
	}
	for _, src := range valid {
		if _, err := query.Compile(src); err != nil {
			t.Errorf("Compile(%q): %v", src, err)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{``, "must start with"},
		{`movie/title`, "must start with"},
		{`//`, "expected step name"},
		{`//movie/`, "expected step name"},
		{`//movie[`, "expected path"},
		{`//movie[]`, "expected path"},
		{`//movie[title=]`, "expected literal"},
		{`//movie[title="unterminated]`, "unterminated string"},
		{`//movie]`, "unexpected"},
		{`//movie[contains(title)]`, "expected ,"},
		{`//movie[contains(title, "x"]`, "expected )"},
		{`//movie[some $d in satisfies contains($d,"x")]`, "expected 'satisfies'"},
		{`//movie[some $d title satisfies contains($d,"x")]`, "expected 'in'"},
		{`//movie[some $d in .//d contains($d,"x")]`, "expected 'satisfies'"},
		{`//movie[some $d in .//d satisfies contains($e,"x")]`, "unknown variable"},
		{`//movie[some $d in .//d satisfies $e = "x"]`, "unknown variable"},
		{`//movie[some $d in .//d satisfies nope]`, "expected contains"},
		{`//movie[not title]`, "expected ("},
		{`//movie[not(title]`, "expected )"},
		{`//text()/a`, "text() cannot be the first step"},
		{`//a/text()/b`, "text() must be the last step"},
		{`/text()`, "text() cannot be the first step"},
		{`//movie[$x = "1"]`, "expected path"},
		{`//movie[#]`, "unexpected character"},
		{`//movie[some $ in x satisfies $x="1"]`, "empty variable"},
	}
	for _, tc := range cases {
		_, err := query.Compile(tc.src)
		if err == nil {
			t.Errorf("Compile(%q): expected error containing %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Compile(%q) error %q, want substring %q", tc.src, err.Error(), tc.want)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	query.MustCompile(`not a query`)
}

func TestQueryStringRoundTrip(t *testing.T) {
	src := `//movie[.//genre="Horror"]/title`
	q := query.MustCompile(src)
	if q.String() != src {
		t.Fatalf("String() = %q", q.String())
	}
}

func TestPredStringForms(t *testing.T) {
	q := query.MustCompile(`//m[a="1" and (contains(b,"2") or not(c))]/t`)
	s := q.Steps[0].Preds[0].String()
	for _, want := range []string{"a", "contains", "not", "and", "or"} {
		if !strings.Contains(s, want) {
			t.Fatalf("pred string %q missing %q", s, want)
		}
	}
}

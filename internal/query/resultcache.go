package query

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
)

// DefaultResultCacheCapacity is the capacity of a ResultCache built with
// NewResultCache(0).
const DefaultResultCacheCapacity = 512

// resultCacheShards is the lock-striping width of a sharded ResultCache.
// Caches too small to give each shard a useful slice of capacity (fewer
// than minShardedCapacity entries) stay unsharded, which also preserves
// exact global LRU order for tiny caches.
const (
	resultCacheShards  = 16
	minShardedCapacity = resultCacheShards * 4
)

// ResultCacheStats reports the effectiveness of a ResultCache.
type ResultCacheStats struct {
	// Hits and Misses count lookups answered from the cache vs. lookups
	// that led to an evaluation. Under Do, concurrent identical cold
	// queries record exactly one miss (the leader's); the others record
	// Collapses instead.
	Hits, Misses int64
	// Collapses counts Do callers that waited on an identical in-flight
	// evaluation instead of running their own (singleflight).
	Collapses int64
	// Size is the number of cached results; Capacity the maximum before
	// least-recently-used eviction.
	Size, Capacity int
	// Shards is the lock-striping width (1 for tiny caches).
	Shards int
}

// resultKey identifies one cached evaluation: the document content (by
// structural digest), the query text, and the canonicalized options. A
// mutation swaps in a tree with a different digest, so stale results can
// never be served — invalidation is by tree identity, not by time.
type resultKey struct {
	digest uint64
	src    string
	opts   string
}

// optionsKey canonicalizes options into the cache key: defaults are
// resolved first, so Options{} and an explicitly spelled-out default hit
// the same entry. Workers and the budget fields are deliberately excluded:
// answers are bit-identical for every worker count, and budgets only
// decide whether an evaluation completes — so queries differing only in
// those share one entry (and one singleflight execution).
func optionsKey(o Options) string {
	local := o.LocalWorldLimit
	if local <= 0 {
		local = DefaultLocalWorldLimit
	}
	return fmt.Sprintf("m=%s;l=%d;e=%d;n=%d;s=%d", o.method(), local, o.enumLimit(), o.samples(), o.seed())
}

// ResultCache is a fixed-capacity, concurrency-safe LRU cache of fully
// evaluated query results, keyed by (tree digest, query text, options).
// Evaluation is deterministic — sampling is seeded — so a cached Result
// may be returned verbatim; its Answers must be treated as read-only.
// It complements the compiled-query Cache: that one skips parsing, this
// one skips evaluation entirely for repeated queries over an unchanged
// document.
//
// Internally the cache is striped over resultCacheShards independent LRU
// shards (each with its own lock), so concurrent readers on different
// keys no longer serialize on one mutex; and Do adds singleflight: N
// concurrent identical cold queries run one evaluation while N−1 wait for
// its result.
type ResultCache struct {
	cap    int
	shards []resultShard

	// genMu orders Purge against PutIfGeneration across all shards: a
	// conditional put holds the read side while it checks gen and
	// inserts, so a purge (write side) can never interleave between the
	// check and the insert.
	genMu sync.RWMutex
	gen   uint64

	// flightMu guards the in-flight evaluation table behind Do.
	flightMu sync.Mutex
	flights  map[resultKey]*flightCall

	hits, misses, collapses atomic.Int64
}

type resultShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[resultKey]*list.Element
}

type resultEntry struct {
	key resultKey
	res Result
}

// flightCall is one in-flight evaluation: waiters block on done and then
// read res/err, which the leader writes before closing the channel.
type flightCall struct {
	done chan struct{}
	res  Result
	err  error
}

// NewResultCache builds a result cache holding at most capacity entries;
// capacity <= 0 means DefaultResultCacheCapacity.
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = DefaultResultCacheCapacity
	}
	shards := 1
	if capacity >= minShardedCapacity {
		shards = resultCacheShards
	}
	c := &ResultCache{
		cap:     capacity,
		shards:  make([]resultShard, shards),
		flights: make(map[resultKey]*flightCall),
	}
	per := capacity / shards
	for i := range c.shards {
		c.shards[i] = resultShard{
			cap:   per,
			ll:    list.New(),
			byKey: make(map[resultKey]*list.Element, per),
		}
	}
	return c
}

// shardFor picks the shard of a key by hashing all three key parts — the
// digest alone would put every query over one document in one shard.
func (c *ResultCache) shardFor(key resultKey) *resultShard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	h := fnv.New64a()
	io.WriteString(h, key.src)
	io.WriteString(h, key.opts)
	return &c.shards[(h.Sum64()^key.digest)%uint64(len(c.shards))]
}

// lookup returns the cached result for key, refreshing its LRU position.
func (c *ResultCache) lookup(key resultKey) (Result, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		s.ll.MoveToFront(el)
		return el.Value.(*resultEntry).res, true
	}
	return Result{}, false
}

// Get returns the cached result for the (document, query, options)
// triple, if present.
func (c *ResultCache) Get(digest uint64, src string, opts Options) (Result, bool) {
	key := resultKey{digest: digest, src: src, opts: optionsKey(opts)}
	res, ok := c.lookup(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return res, ok
}

// Put stores an evaluation result. Storing the same key twice keeps the
// newer value (the two are identical by determinism anyway).
func (c *ResultCache) Put(digest uint64, src string, opts Options, res Result) {
	key := resultKey{digest: digest, src: src, opts: optionsKey(opts)}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(key, res)
}

func (s *resultShard) putLocked(key resultKey, res Result) {
	if el, ok := s.byKey[key]; ok {
		el.Value.(*resultEntry).res = res
		s.ll.MoveToFront(el)
		return
	}
	s.byKey[key] = s.ll.PushFront(&resultEntry{key: key, res: res})
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.byKey, oldest.Value.(*resultEntry).key)
	}
}

// Generation returns the purge generation. A caller that snapshots the
// generation before reading the document it evaluates against can hand
// the value to PutIfGeneration to avoid re-inserting an entry for a
// document that has since been retired by a purge.
func (c *ResultCache) Generation() uint64 {
	c.genMu.RLock()
	defer c.genMu.RUnlock()
	return c.gen
}

// PutIfGeneration stores the result only if no Purge intervened since the
// caller observed gen — the check and the insertion are atomic under the
// generation lock, so a slow evaluation that straddles a tree swap can
// never occupy capacity with an entry for the retired document.
func (c *ResultCache) PutIfGeneration(gen uint64, digest uint64, src string, opts Options, res Result) bool {
	c.genMu.RLock()
	defer c.genMu.RUnlock()
	if c.gen != gen {
		return false
	}
	key := resultKey{digest: digest, src: src, opts: optionsKey(opts)}
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(key, res)
	return true
}

// Purge empties the cache, keeping the hit/miss counters. The database
// calls it on every tree swap: digests already make stale hits
// impossible, purging just stops dead entries from occupying capacity.
func (c *ResultCache) Purge() {
	c.genMu.Lock()
	defer c.genMu.Unlock()
	c.gen++
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		clear(s.byKey)
		s.mu.Unlock()
	}
}

// Do returns the cached result for the triple or computes it by calling
// fn — at most once across concurrent identical callers (singleflight):
// the first cold caller leads the evaluation, later identical callers
// wait for its result instead of burning their own. gen gates the insert
// exactly like PutIfGeneration.
//
// A waiter whose own ctx is canceled stops waiting with ctx.Err(). A
// leader error that is caller-specific — cancellation or budget
// exhaustion — is not adopted by waiters; one of them retries as the new
// leader, so one impatient client cannot fail everyone else's query.
// Deterministic errors (bad query, inapplicable method) are shared.
//
// The second result reports how the call was served: from cache, by
// executing fn, or by collapsing onto another caller's execution.
func (c *ResultCache) Do(ctx context.Context, gen uint64, digest uint64, src string, opts Options, fn func() (Result, error)) (Result, DoOutcome, error) {
	key := resultKey{digest: digest, src: src, opts: optionsKey(opts)}
	for {
		if res, ok := c.lookup(key); ok {
			c.hits.Add(1)
			return res, DoHit, nil
		}
		c.flightMu.Lock()
		if call, ok := c.flights[key]; ok {
			c.flightMu.Unlock()
			c.collapses.Add(1)
			var done <-chan struct{}
			if ctx != nil {
				done = ctx.Done()
			}
			select {
			case <-call.done:
			case <-done:
				return Result{}, DoShared, ctx.Err()
			}
			if call.err == nil {
				return call.res, DoShared, nil
			}
			if errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded) ||
				errors.Is(call.err, ErrBudgetExhausted) {
				continue
			}
			return Result{}, DoShared, call.err
		}
		call := &flightCall{done: make(chan struct{})}
		c.flights[key] = call
		c.flightMu.Unlock()
		c.misses.Add(1)

		completed := false
		func() {
			defer func() {
				if !completed && call.err == nil {
					// fn panicked; the panic propagates to this caller,
					// while waiters get an error (not cancel-like, so
					// they do not retry into the same panic).
					call.err = errors.New("query: evaluation panicked")
				}
				c.flightMu.Lock()
				delete(c.flights, key)
				c.flightMu.Unlock()
				close(call.done)
			}()
			call.res, call.err = fn()
			if call.err == nil {
				// Insert before releasing waiters and retiring the
				// flight, so no identical caller can slip between the
				// flight's end and the entry's visibility.
				c.PutIfGeneration(gen, digest, src, opts, call.res)
			}
			completed = true
		}()
		return call.res, DoExecuted, call.err
	}
}

// DoOutcome reports how ResultCache.Do served a call.
type DoOutcome int

const (
	// DoHit: served from the cache.
	DoHit DoOutcome = iota
	// DoExecuted: this caller ran the evaluation.
	DoExecuted
	// DoShared: this caller waited on an identical in-flight evaluation.
	DoShared
)

// Stats returns a snapshot of the cache counters.
func (c *ResultCache) Stats() ResultCacheStats {
	size := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		size += s.ll.Len()
		s.mu.Unlock()
	}
	return ResultCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Collapses: c.collapses.Load(),
		Size:      size,
		Capacity:  c.cap,
		Shards:    len(c.shards),
	}
}

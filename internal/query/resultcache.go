package query

import (
	"container/list"
	"fmt"
	"sync"
)

// DefaultResultCacheCapacity is the capacity of a ResultCache built with
// NewResultCache(0).
const DefaultResultCacheCapacity = 512

// ResultCacheStats reports the effectiveness of a ResultCache.
type ResultCacheStats struct {
	// Hits and Misses count Get calls answered from / not in the cache.
	Hits, Misses int64
	// Size is the number of cached results; Capacity the maximum before
	// least-recently-used eviction.
	Size, Capacity int
}

// resultKey identifies one cached evaluation: the document content (by
// structural digest), the query text, and the canonicalized options. A
// mutation swaps in a tree with a different digest, so stale results can
// never be served — invalidation is by tree identity, not by time.
type resultKey struct {
	digest uint64
	src    string
	opts   string
}

// optionsKey canonicalizes options into the cache key: defaults are
// resolved first, so Options{} and an explicitly spelled-out default hit
// the same entry.
func optionsKey(o Options) string {
	local := o.LocalWorldLimit
	if local <= 0 {
		local = DefaultLocalWorldLimit
	}
	return fmt.Sprintf("m=%s;l=%d;e=%d;n=%d;s=%d", o.method(), local, o.enumLimit(), o.samples(), o.seed())
}

// ResultCache is a fixed-capacity, concurrency-safe LRU cache of fully
// evaluated query results, keyed by (tree digest, query text, options).
// Evaluation is deterministic — sampling is seeded — so a cached Result
// may be returned verbatim; its Answers must be treated as read-only.
// It complements the compiled-query Cache: that one skips parsing, this
// one skips evaluation entirely for repeated queries over an unchanged
// document.
type ResultCache struct {
	mu           sync.Mutex
	cap          int
	gen          uint64     // bumped by Purge; see PutIfGeneration
	ll           *list.List // front = most recently used
	byKey        map[resultKey]*list.Element
	hits, misses int64
}

type resultEntry struct {
	key resultKey
	res Result
}

// NewResultCache builds a result cache holding at most capacity entries;
// capacity <= 0 means DefaultResultCacheCapacity.
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = DefaultResultCacheCapacity
	}
	return &ResultCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[resultKey]*list.Element, capacity),
	}
}

// Get returns the cached result for the (document, query, options)
// triple, if present.
func (c *ResultCache) Get(digest uint64, src string, opts Options) (Result, bool) {
	key := resultKey{digest: digest, src: src, opts: optionsKey(opts)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*resultEntry).res, true
	}
	c.misses++
	return Result{}, false
}

// Put stores an evaluation result. Storing the same key twice keeps the
// newer value (the two are identical by determinism anyway).
func (c *ResultCache) Put(digest uint64, src string, opts Options, res Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(digest, src, opts, res)
}

func (c *ResultCache) putLocked(digest uint64, src string, opts Options, res Result) {
	key := resultKey{digest: digest, src: src, opts: optionsKey(opts)}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*resultEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&resultEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*resultEntry).key)
	}
}

// Generation returns the purge generation. A caller that snapshots the
// generation before reading the document it evaluates against can hand
// the value to PutIfGeneration to avoid re-inserting an entry for a
// document that has since been retired by a purge.
func (c *ResultCache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// PutIfGeneration stores the result only if no Purge intervened since the
// caller observed gen — the check and the insertion are atomic under the
// cache lock, so a slow evaluation that straddles a tree swap can never
// occupy capacity with an entry for the retired document.
func (c *ResultCache) PutIfGeneration(gen uint64, digest uint64, src string, opts Options, res Result) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return false
	}
	c.putLocked(digest, src, opts, res)
	return true
}

// Purge empties the cache, keeping the hit/miss counters. The database
// calls it on every tree swap: digests already make stale hits
// impossible, purging just stops dead entries from occupying capacity.
func (c *ResultCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.ll.Init()
	clear(c.byKey)
}

// Stats returns a snapshot of the cache counters.
func (c *ResultCache) Stats() ResultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ResultCacheStats{Hits: c.hits, Misses: c.misses, Size: c.ll.Len(), Capacity: c.cap}
}

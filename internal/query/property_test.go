package query_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/integrate"
	"repro/internal/oracle"
	"repro/internal/pxml"
	"repro/internal/pxmltest"
	"repro/internal/query"
	"repro/internal/queryindex"
)

// propertyQueries is the query pool the property tests sweep; it covers
// child and descendant axes, predicates, wildcards, text() and absent
// tags over both the movie-catalog and the random-tree tag vocabulary.
var propertyQueries = []string{
	`//movie/title`,
	`//movie[year="1975"]/title`,
	`//movie[.//genre="Horror"]/title`,
	`//movie/director`,
	`/catalog/movie/title`,
	`//title/text()`,
	`//*[title]/year`,
	`//nosuchtag/title`,
	`//a/b`,
	`//a[b="x"]/c`,
	`//movie[title="Jaws"]/year`,
}

// propertyTrees builds the document corpus: integrated datagen catalogs
// (genuinely uncertain movie documents) plus random probabilistic trees.
func propertyTrees(t testing.TB) []*pxml.Tree {
	t.Helper()
	var trees []*pxml.Tree
	for seed := int64(1); seed <= 3; seed++ {
		pair := datagen.Typical(3, 5, 2, seed)
		res, _, err := integrate.Integrate(pair.A.Tree, pair.B.Tree, integrate.Config{
			Oracle: oracle.MovieOracle(oracle.SetTitle),
			Schema: datagen.MovieDTD(),
		})
		if err != nil {
			t.Fatalf("integrate seed %d: %v", seed, err)
		}
		trees = append(trees, res)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 6; i++ {
		trees = append(trees, pxmltest.RandomTree(rng, pxmltest.DefaultGenConfig()))
	}
	return trees
}

// TestPropertyEvaluatorsAgree asserts, over the whole corpus, that exact
// and enumerate produce the same distribution, that sampling converges to
// it within Monte-Carlo tolerance, and that the planner's auto choice is
// the method the result reports.
func TestPropertyEvaluatorsAgree(t *testing.T) {
	const samples = 4000
	// 4 sigma on p(1-p)/n at p=0.5: comfortably above noise, far below
	// any genuine disagreement.
	const sampleTol = 0.04
	for ti, tree := range propertyTrees(t) {
		idx := queryindex.Build(tree)
		for _, src := range propertyQueries {
			q := query.MustCompile(src)

			enum, enumErr := query.EvalEnumerate(tree, q, 200000)
			if enumErr != nil {
				t.Fatalf("tree %d %s: enumerate: %v", ti, src, enumErr)
			}

			exact, exactErr := query.EvalExact(tree, q, 0)
			if exactErr == nil {
				assertAnswersWithin(t, ti, src, "exact-vs-enumerate", exact, enum, 1e-9)
			} else if !errors.Is(exactErr, query.ErrNotExact) {
				t.Fatalf("tree %d %s: exact: %v", ti, src, exactErr)
			}

			sampled := query.EvalSample(tree, q, samples, 7)
			assertAnswersWithin(t, ti, src, "sample-vs-enumerate", sampled, enum, sampleTol)

			auto, err := query.EvalIndexed(tree, q, query.Options{Samples: samples, Seed: query.SeedPtr(7)}, idx)
			if err != nil {
				t.Fatalf("tree %d %s: auto: %v", ti, src, err)
			}
			if auto.Plan == nil {
				t.Fatalf("tree %d %s: auto result has no plan", ti, src)
			}
			if auto.Plan.Method != auto.Method {
				t.Fatalf("tree %d %s: plan method %q != result method %q",
					ti, src, auto.Plan.Method, auto.Method)
			}
			assertAnswersWithin(t, ti, src, "auto-vs-enumerate", auto.Answers, enum, sampleTol)
		}
	}
}

// TestPropertyAutoBitIdentical asserts the issue's determinism criterion:
// MethodAuto returns bit-identical answers to explicitly requesting the
// method it selected, over the full corpus and query pool.
func TestPropertyAutoBitIdentical(t *testing.T) {
	for ti, tree := range propertyTrees(t) {
		idx := queryindex.Build(tree)
		for _, src := range propertyQueries {
			q := query.MustCompile(src)
			opts := query.Options{Samples: 500, Seed: query.SeedPtr(11)}
			auto, err := query.EvalIndexed(tree, q, opts, idx)
			if err != nil {
				t.Fatalf("tree %d %s: auto: %v", ti, src, err)
			}
			expOpts := opts
			expOpts.Method = auto.Method
			explicit, err := query.EvalIndexed(tree, q, expOpts, idx)
			if err != nil {
				t.Fatalf("tree %d %s: explicit %q: %v", ti, src, auto.Method, err)
			}
			if !reflect.DeepEqual(auto.Answers, explicit.Answers) {
				t.Fatalf("tree %d %s: auto (%q) not bit-identical to explicit run:\nauto:     %v\nexplicit: %v",
					ti, src, auto.Method, auto.Answers, explicit.Answers)
			}
			if auto.SampledWorlds != explicit.SampledWorlds {
				t.Fatalf("tree %d %s: sampled-world counts differ: %d vs %d",
					ti, src, auto.SampledWorlds, explicit.SampledWorlds)
			}
			// The same holds without an index (ladder mode).
			autoNoIdx, err := query.EvalIndexed(tree, q, opts, nil)
			if err != nil {
				t.Fatalf("tree %d %s: unindexed auto: %v", ti, src, err)
			}
			expOpts.Method = autoNoIdx.Method
			explicitNoIdx, err := query.EvalIndexed(tree, q, expOpts, nil)
			if err != nil {
				t.Fatalf("tree %d %s: unindexed explicit: %v", ti, src, err)
			}
			if !reflect.DeepEqual(autoNoIdx.Answers, explicitNoIdx.Answers) {
				t.Fatalf("tree %d %s: unindexed auto (%q) not bit-identical",
					ti, src, autoNoIdx.Method)
			}
		}
	}
}

// assertAnswersWithin compares two answer sets as value->probability maps.
func assertAnswersWithin(t *testing.T, tree int, src, what string, got, want []query.Answer, tol float64) {
	t.Helper()
	gm := answersMap(got)
	wm := answersMap(want)
	for v, p := range wm {
		if d := gm[v] - p; d > tol || d < -tol {
			t.Fatalf("tree %d %s [%s]: value %q: got %g want %g (tol %g)", tree, src, what, v, gm[v], p, tol)
		}
	}
	for v, p := range gm {
		if _, ok := wm[v]; !ok && p > tol {
			t.Fatalf("tree %d %s [%s]: spurious value %q p=%g", tree, src, what, v, p)
		}
	}
}

func answersMap(answers []query.Answer) map[string]float64 {
	m := make(map[string]float64, len(answers))
	for _, a := range answers {
		m[a.Value] = a.P
	}
	return m
}

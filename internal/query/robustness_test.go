package query_test

import (
	"math/rand"
	"testing"

	"repro/internal/query"
)

// TestCompileNeverPanics feeds the parser random byte soup assembled from
// query-language fragments: it must either compile or return an error —
// never panic.
func TestCompileNeverPanics(t *testing.T) {
	fragments := []string{
		"/", "//", "[", "]", "(", ")", "=", ",", "*", ".", "$", `"`, "'",
		"movie", "title", "contains", "some", "in", "satisfies", "and",
		"or", "not", "text()", `"lit"`, "$v", " ", "1995", "@id", "-",
	}
	rng := rand.New(rand.NewSource(2026))
	for i := 0; i < 5000; i++ {
		var src string
		n := 1 + rng.Intn(12)
		for j := 0; j < n; j++ {
			src += fragments[rng.Intn(len(fragments))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Compile(%q) panicked: %v", src, r)
				}
			}()
			q, err := query.Compile(src)
			if err == nil && q == nil {
				t.Fatalf("Compile(%q) returned nil without error", src)
			}
		}()
	}
}

// TestCompileRandomBytesNeverPanics is the rawest robustness check.
func TestCompileRandomBytesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(40))
		for j := range buf {
			buf[j] = byte(rng.Intn(256))
		}
		src := string(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Compile(%q) panicked: %v", src, r)
				}
			}()
			_, _ = query.Compile(src)
		}()
	}
}

// TestCompiledQueriesEvaluateSafely: whatever compiles must also evaluate
// without panicking on an arbitrary document.
func TestCompiledQueriesEvaluateSafely(t *testing.T) {
	tr := decode(t, `<movie><title>Jaws</title><year>1975</year></movie>`)
	fragments := []string{
		"/movie", "//title", "//*", "/movie/title",
		`//movie[title="Jaws"]`, `//movie[contains(title,"J")]/year`,
		`//movie[not(year="1976")]/title/text()`,
		`//movie[some $t in title satisfies contains($t,"a")]`,
	}
	for _, src := range fragments {
		q, err := query.Compile(src)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		if _, err := query.Eval(tr, q, query.Options{}); err != nil {
			t.Fatalf("Eval(%q): %v", src, err)
		}
		if _, err := query.ExpectedCount(tr, q, 0); err != nil {
			t.Fatalf("ExpectedCount(%q): %v", src, err)
		}
	}
}

package query

import (
	"fmt"
	"math/big"

	"repro/internal/pxml"
	"repro/internal/worlds"
)

// CountWorld returns the number of result nodes the query selects in one
// certain world (occurrences, not distinct values).
func CountWorld(q *Query, rootElems []*pxml.Node) int {
	n := 0
	for _, r := range rootElems {
		evalFrom(q, r, stateSet(1), func(string) { n++ })
	}
	return n
}

// ExpectedCount returns the expected number of result nodes over all
// possible worlds: Σ_w P(w)·|results(w)|. By linearity of expectation this
// decomposes exactly over the layered tree — mutually exclusive
// alternatives contribute weighted sums, independent siblings add — with
// local enumeration only inside anchor subtrees (predicate scopes), so it
// works on documents whose world count is astronomically large.
func ExpectedCount(t *pxml.Tree, q *Query, localLimit int) (float64, error) {
	if localLimit <= 0 {
		localLimit = DefaultLocalWorldLimit
	}
	if len(q.Steps) == 0 || q.Steps[0].IsText {
		return 0, fmt.Errorf("%w: unsupported query shape", ErrNotExact)
	}
	e := &countEval{
		ev: &exactEval{
			q:          q,
			anchorIdx:  anchorIndex(q),
			localLimit: localLimit,
			localMemo:  make(map[localKey]map[string]float64),
			failMemo:   make(map[failKey]float64),
		},
		memo: make(map[localKey]float64),
	}
	return e.count(t.Root(), stateSet(1))
}

type countEval struct {
	ev   *exactEval
	memo map[localKey]float64
}

func (e *countEval) count(n *pxml.Node, states stateSet) (float64, error) {
	if states == 0 {
		return 0, nil
	}
	key := localKey{e: n, s: states}
	if c, ok := e.memo[key]; ok {
		return c, nil
	}
	var c float64
	var err error
	switch n.Kind() {
	case pxml.KindProb:
		for _, poss := range n.Children() {
			pc, perr := e.count(poss, states)
			if perr != nil {
				return 0, perr
			}
			c += poss.Prob() * pc
		}
	case pxml.KindPoss:
		for _, el := range n.Children() {
			ec, eerr := e.count(el, states)
			if eerr != nil {
				return 0, eerr
			}
			c += ec
		}
	default: // element
		next, hit := e.ev.advance(n, states)
		if hit {
			c, err = e.localCount(n, states)
			if err != nil {
				return 0, err
			}
		} else {
			for _, k := range n.Children() {
				kc, kerr := e.count(k, next)
				if kerr != nil {
					return 0, kerr
				}
				c += kc
			}
		}
	}
	e.memo[key] = c
	return c, nil
}

// localCount enumerates an anchor subtree's worlds and returns the
// conditional expected result count.
func (e *countEval) localCount(elem *pxml.Node, states stateSet) (float64, error) {
	sub := pxml.CertainTree(elem)
	wc := sub.WorldCount()
	if !wc.IsInt64() || wc.Cmp(big.NewInt(int64(e.ev.localLimit))) > 0 {
		return 0, fmt.Errorf("%w: anchor subtree <%s> has %s local worlds (limit %d)",
			ErrNotExact, elem.Tag(), wc.String(), e.ev.localLimit)
	}
	total := 0.0
	worlds.Enumerate(sub, func(w worlds.World) bool {
		n := 0
		for _, el := range w.Elements {
			evalFrom(e.ev.q, el, states, func(string) { n++ })
		}
		total += w.P * float64(n)
		return true
	})
	return total, nil
}

// ExpectedCountEnumerate computes the expected result count by full world
// enumeration; the test oracle for ExpectedCount.
func ExpectedCountEnumerate(t *pxml.Tree, q *Query, maxWorlds int) (float64, error) {
	wc := t.WorldCount()
	if maxWorlds > 0 && wc.Cmp(big.NewInt(int64(maxWorlds))) > 0 {
		return 0, fmt.Errorf("%w: %s > %d", worlds.ErrTooManyWorlds, wc.String(), maxWorlds)
	}
	total := 0.0
	worlds.Enumerate(t, func(w worlds.World) bool {
		total += w.P * float64(CountWorld(q, w.Elements))
		return true
	})
	return total, nil
}

package query

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitReturnsSameQuery(t *testing.T) {
	c := NewCache(4)
	q1, err := c.Compile(`//person/nm`)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	q2, err := c.Compile(`//person/nm`)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if q1 != q2 {
		t.Fatalf("cache returned a fresh compilation on hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Size != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / size 1", s)
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := NewCache(4)
	for i := 0; i < 2; i++ {
		if _, err := c.Compile(`not a query`); err == nil {
			t.Fatalf("bad query should error")
		}
	}
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 2 || s.Size != 0 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses / size 0", s)
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewCache(2)
	mustCompile := func(src string) *Query {
		t.Helper()
		q, err := c.Compile(src)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		return q
	}
	a := mustCompile(`//a`)
	mustCompile(`//b`)
	mustCompile(`//a`) // refresh a: b is now the LRU entry
	mustCompile(`//c`) // evicts b
	if got := mustCompile(`//a`); got != a {
		t.Fatalf("a was evicted but should have been refreshed")
	}
	s := c.Stats()
	if s.Size != 2 {
		t.Fatalf("size = %d, want capacity 2", s.Size)
	}
	before := c.Stats().Misses
	mustCompile(`//b`) // must re-parse after eviction
	if c.Stats().Misses != before+1 {
		t.Fatalf("evicted entry served from cache")
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache(4)
	if _, err := c.Compile(`//a`); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	c.Purge()
	if s := c.Stats(); s.Size != 0 || s.Misses != 1 {
		t.Fatalf("stats after purge = %+v", s)
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	if got := NewCache(0).Stats().Capacity; got != DefaultCacheCapacity {
		t.Fatalf("capacity = %d, want %d", got, DefaultCacheCapacity)
	}
}

// TestCacheLostRaceCountsAsHit is the regression test for the
// double-counted parse race: every goroutine that loses the insert race is
// served the winner's entry and must therefore count as a hit, so
// Hits+Misses matches the Compile call count and Misses the number of
// cache-populating parses.
func TestCacheLostRaceCountsAsHit(t *testing.T) {
	const n = 8
	var inWindow sync.WaitGroup
	inWindow.Add(n)
	compileRaceHook = func(string) {
		// Hold every Compile call inside the race window (miss recorded,
		// nothing inserted yet) until all n are there, so exactly one
		// wins the insert and n−1 lose.
		inWindow.Done()
		inWindow.Wait()
	}
	defer func() { compileRaceHook = nil }()

	c := NewCache(4)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Compile(`//person/nm`); err != nil {
				t.Errorf("Compile: %v", err)
			}
		}()
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != n {
		t.Fatalf("hits+misses = %d, want %d calls: %+v", s.Hits+s.Misses, n, s)
	}
	if s.Misses != 1 || s.Hits != n-1 {
		t.Fatalf("stats = %+v, want exactly 1 miss and %d hits", s, n-1)
	}
	if s.Size != 1 {
		t.Fatalf("size = %d, want 1", s.Size)
	}
}

func TestCacheConcurrentCompile(t *testing.T) {
	c := NewCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				src := fmt.Sprintf(`//tag%d`, i%12) // 12 queries > 8 slots: constant eviction
				if _, err := c.Compile(src); err != nil {
					t.Errorf("Compile(%q): %v", src, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats(); s.Size > 8 {
		t.Fatalf("size %d exceeds capacity", s.Size)
	}
}

package query

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file holds the concurrency plumbing of parallel query evaluation.
// The fan-out units are chosen so that workers never share mutable state:
// exact evaluation parallelizes (a) anchor-subtree local enumerations,
// which are pure functions of (element, state set), and (b) the per-value
// failure computations, which read shared memo tables built beforehand and
// write only per-value scratch memos; sampling parallelizes fixed-size
// sample chunks with chunk-derived RNGs. Everything that orders or merges
// results stays sequential, so answers are bit-identical for any worker
// count — the same recipe the parallel integration engine (PR 2) proved on
// the write path.

// ExecStats reports how one evaluation actually ran: the resolved worker
// count, how the fan-out units were scheduled, and how much work the
// budget metered. Attached to every Result produced by EvalIndexed.
type ExecStats struct {
	// Workers is the resolved fan-out width (Options.Workers, with 0
	// resolved to GOMAXPROCS).
	Workers int
	// PooledTasks / InlineTasks count fan-out units that ran on a pool
	// goroutine vs. inline on the submitter because every worker slot was
	// busy — a high inline share means the pool was saturated.
	PooledTasks, InlineTasks int64
	// NodeVisits is the budget meter reading: node visits plus enumerated
	// worlds plus drawn samples.
	NodeVisits int64
}

// workers resolves Options.Workers: 0 means one worker per CPU.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// taskPool fans independent tasks out over a bounded number of goroutines.
// The semaphore capacity is workers−1 because the submitting goroutine is
// itself a worker; when every slot is busy the submitter runs the task
// inline, so progress never waits on a free slot. A nil pool runs
// everything inline in submission order (sequential mode).
type taskPool struct {
	sem    chan struct{}
	pooled atomic.Int64
	inline atomic.Int64
}

func newTaskPool(workers int) *taskPool {
	if workers <= 1 {
		return nil
	}
	return &taskPool{sem: make(chan struct{}, workers-1)}
}

// runAll executes every task and returns once all have completed. Tasks
// communicate through captured result slots, not return values. A panic in
// a spawned worker is re-raised on the submitting goroutine after the
// wait, so callers observe it exactly as a sequential panic.
func (p *taskPool) runAll(tasks []func()) {
	if p == nil || len(tasks) <= 1 {
		for _, task := range tasks {
			task()
		}
		return
	}
	var wg sync.WaitGroup
	var panicVal atomic.Value
	for _, task := range tasks[:len(tasks)-1] {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			p.pooled.Add(1)
			go func(task func()) {
				defer wg.Done()
				defer func() { <-p.sem }()
				defer func() {
					if r := recover(); r != nil {
						panicVal.CompareAndSwap(nil, workerPanic{r})
					}
				}()
				task()
			}(task)
		default:
			p.inline.Add(1)
			task()
		}
	}
	// The submitter works too: the last task always runs inline.
	tasks[len(tasks)-1]()
	wg.Wait()
	if r := panicVal.Load(); r != nil {
		panic(r.(workerPanic).val)
	}
}

// counts reports how many tasks ran pooled vs. inline-on-saturation.
func (p *taskPool) counts() (pooled, inline int64) {
	if p == nil {
		return 0, 0
	}
	return p.pooled.Load(), p.inline.Load()
}

// workerPanic wraps a recovered worker panic value so it can live in an
// atomic.Value regardless of its dynamic type.
type workerPanic struct{ val any }

// mixSeed derives the RNG seed of sample chunk i from the user seed with a
// splitmix64 finalizer. Chunk streams are statistically independent yet a
// pure function of (seed, chunk), which is what keeps `seed=` reproducible
// across worker counts: the chunk layout is fixed by the sample count, and
// workers only decide who runs which chunk.
func mixSeed(seed int64, chunk int) int64 {
	z := uint64(seed) + uint64(chunk+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

package query

import (
	"errors"
	"fmt"
	"math/big"
	"sort"

	"repro/internal/pxml"
	"repro/internal/worlds"
)

// ErrNotExact is returned when the exact evaluator cannot handle the
// query/document combination within its limits; callers should fall back
// to Enumerate or Sample.
var ErrNotExact = errors.New("query: exact evaluation not applicable")

// DefaultLocalWorldLimit bounds the possible worlds enumerated inside one
// anchor subtree by the exact evaluator.
const DefaultLocalWorldLimit = 100000

// EvalExact computes exact answer probabilities by compositional
// propagation over the layered tree.
//
// The algorithm picks an "anchor" step: the highest step carrying
// predicates (or the result step if none). Above the anchor, probabilities
// compose freely: alternatives of a choice point are mutually exclusive
// (probabilities add) and sibling choice points are independent (failure
// probabilities multiply). At an anchor match the evaluator switches to
// exhaustive local enumeration of that element's subtree, which captures
// every correlation between predicate events and answer values — at a cost
// bounded by localLimit possible worlds per anchor subtree (ErrNotExact
// beyond that).
func EvalExact(t *pxml.Tree, q *Query, localLimit int) ([]Answer, error) {
	if localLimit <= 0 {
		localLimit = DefaultLocalWorldLimit
	}
	if len(q.Steps) == 0 {
		return nil, fmt.Errorf("%w: empty query", ErrNotExact)
	}
	if q.Steps[0].IsText {
		return nil, fmt.Errorf("%w: text() cannot be the first step", ErrNotExact)
	}
	e := &exactEval{
		q:          q,
		anchorIdx:  anchorIndex(q),
		localLimit: localLimit,
		localMemo:  make(map[localKey]map[string]float64),
		failMemo:   make(map[failKey]float64),
	}
	// Pass 1: discover all candidate answer values.
	values := make(map[string]bool)
	if err := e.collectValues(t.Root(), stateSet(1), values); err != nil {
		return nil, err
	}
	// Pass 2: per value, compute 1 − P(no such answer).
	answers := make([]Answer, 0, len(values))
	for v := range values {
		fail, err := e.fail(t.Root(), stateSet(1), v)
		if err != nil {
			return nil, err
		}
		if p := 1 - fail; p > 1e-12 {
			answers = append(answers, Answer{Value: v, P: p})
		}
	}
	sortAnswers(answers)
	return answers, nil
}

// anchorIndex returns the index of the highest predicated step, or the
// last element step when no step has predicates.
func anchorIndex(q *Query) int {
	for i, s := range q.Steps {
		if len(s.Preds) > 0 {
			return i
		}
	}
	last := len(q.Steps) - 1
	if q.Steps[last].IsText && last > 0 {
		return last - 1
	}
	return last
}

type localKey struct {
	e *pxml.Node
	s stateSet
}

type failKey struct {
	n *pxml.Node
	s stateSet
	v string
}

type exactEval struct {
	q          *Query
	anchorIdx  int
	localLimit int
	localMemo  map[localKey]map[string]float64
	failMemo   map[failKey]float64
}

// advance computes the transition of the global NFA at an element: the
// next state set for its children and whether the element hits the anchor
// step (which switches evaluation to local enumeration).
func (e *exactEval) advance(elem *pxml.Node, states stateSet) (next stateSet, anchorHit bool) {
	for i := 0; i <= e.anchorIdx; i++ {
		if !states.has(i) {
			continue
		}
		step := e.q.Steps[i]
		if step.Desc {
			next = next.add(i)
		}
		// Above the anchor, steps carry no predicates by construction, so
		// a name match suffices.
		if !stepMatches(step, elem) {
			continue
		}
		if i == e.anchorIdx {
			anchorHit = true
			continue
		}
		next = next.add(i + 1)
	}
	return next, anchorHit
}

// localEval enumerates the possible worlds of one anchor element's subtree
// and returns, per answer value, the probability that the remaining query
// (from the given state set) produces that value — conditioned on the
// element existing.
func (e *exactEval) localEval(elem *pxml.Node, states stateSet) (map[string]float64, error) {
	key := localKey{e: elem, s: states}
	if m, ok := e.localMemo[key]; ok {
		return m, nil
	}
	sub := pxml.CertainTree(elem)
	wc := sub.WorldCount()
	if !wc.IsInt64() || wc.Cmp(big.NewInt(int64(e.localLimit))) > 0 {
		return nil, fmt.Errorf("%w: anchor subtree <%s> has %s local worlds (limit %d)",
			ErrNotExact, elem.Tag(), wc.String(), e.localLimit)
	}
	out := make(map[string]float64)
	worlds.Enumerate(sub, func(w worlds.World) bool {
		seen := make(map[string]bool)
		for _, el := range w.Elements {
			evalFrom(e.q, el, states, func(v string) { seen[v] = true })
		}
		for v := range seen {
			out[v] += w.P
		}
		return true
	})
	e.localMemo[key] = out
	return out, nil
}

// collectValues gathers every value any anchor subtree can produce.
func (e *exactEval) collectValues(n *pxml.Node, states stateSet, acc map[string]bool) error {
	switch n.Kind() {
	case pxml.KindProb, pxml.KindPoss:
		for _, k := range n.Children() {
			if err := e.collectValues(k, states, acc); err != nil {
				return err
			}
		}
		return nil
	default: // element
		next, hit := e.advance(n, states)
		if hit {
			m, err := e.localEval(n, states)
			if err != nil {
				return err
			}
			for v := range m {
				acc[v] = true
			}
			return nil
		}
		if next == 0 {
			return nil
		}
		for _, k := range n.Children() {
			if err := e.collectValues(k, next, acc); err != nil {
				return err
			}
		}
		return nil
	}
}

// fail returns P(no answer with value v arises in the subtree of n), given
// the NFA state set at n.
func (e *exactEval) fail(n *pxml.Node, states stateSet, v string) (float64, error) {
	if states == 0 {
		return 1, nil
	}
	key := failKey{n: n, s: states, v: v}
	if f, ok := e.failMemo[key]; ok {
		return f, nil
	}
	var f float64
	var err error
	switch n.Kind() {
	case pxml.KindProb:
		// Alternatives are mutually exclusive: failure probabilities add,
		// weighted.
		f = 0
		for _, poss := range n.Children() {
			pf, perr := e.fail(poss, states, v)
			if perr != nil {
				return 0, perr
			}
			f += poss.Prob() * pf
		}
	case pxml.KindPoss:
		// Contents are independent: failures multiply.
		f = 1
		for _, el := range n.Children() {
			ef, eerr := e.fail(el, states, v)
			if eerr != nil {
				return 0, eerr
			}
			f *= ef
			if f == 0 {
				break
			}
		}
	default: // element
		next, hit := e.advance(n, states)
		if hit {
			var m map[string]float64
			m, err = e.localEval(n, states)
			if err != nil {
				return 0, err
			}
			f = 1 - m[v]
		} else {
			f = 1
			for _, k := range n.Children() {
				kf, kerr := e.fail(k, next, v)
				if kerr != nil {
					return 0, kerr
				}
				f *= kf
				if f == 0 {
					break
				}
			}
		}
	}
	e.failMemo[key] = f
	return f, nil
}

func sortAnswers(answers []Answer) {
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].P != answers[j].P {
			return answers[i].P > answers[j].P
		}
		return answers[i].Value < answers[j].Value
	})
}

package query

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/pxml"
	"repro/internal/worlds"
)

// ErrNotExact is returned when the exact evaluator cannot handle the
// query/document combination within its limits; callers should fall back
// to Enumerate or Sample.
var ErrNotExact = errors.New("query: exact evaluation not applicable")

// DefaultLocalWorldLimit bounds the possible worlds enumerated inside one
// anchor subtree by the exact evaluator.
const DefaultLocalWorldLimit = 100000

// EvalExact computes exact answer probabilities by compositional
// propagation over the layered tree.
//
// The algorithm picks an "anchor" step: the highest step carrying
// predicates (or the result step if none). Above the anchor, probabilities
// compose freely: alternatives of a choice point are mutually exclusive
// (probabilities add) and sibling choice points are independent (failure
// probabilities multiply). At an anchor match the evaluator switches to
// exhaustive local enumeration of that element's subtree, which captures
// every correlation between predicate events and answer values — at a cost
// bounded by localLimit possible worlds per anchor subtree (ErrNotExact
// beyond that).
func EvalExact(t *pxml.Tree, q *Query, localLimit int) ([]Answer, error) {
	if localLimit <= 0 {
		localLimit = DefaultLocalWorldLimit
	}
	if len(q.Steps) == 0 {
		return nil, fmt.Errorf("%w: empty query", ErrNotExact)
	}
	if q.Steps[0].IsText {
		return nil, fmt.Errorf("%w: text() cannot be the first step", ErrNotExact)
	}
	e := &exactEval{
		q:          q,
		anchorIdx:  anchorIndex(q),
		localLimit: localLimit,
		localMemo:  make(map[localKey]map[string]float64),
		failMemo:   make(map[failKey]float64),
	}
	// Pass 1: discover all candidate answer values.
	values := make(map[string]bool)
	if err := e.collectValues(t.Root(), stateSet(1), values); err != nil {
		return nil, err
	}
	// Pass 2: per value, compute 1 − P(no such answer).
	answers := make([]Answer, 0, len(values))
	for v := range values {
		fail, err := e.fail(t.Root(), stateSet(1), v, e.failMemo)
		if err != nil {
			return nil, err
		}
		if p := 1 - fail; p > 1e-12 {
			answers = append(answers, Answer{Value: v, P: p})
		}
	}
	sortAnswers(answers)
	return answers, nil
}

// anchorIndex returns the index of the highest predicated step, or the
// last element step when no step has predicates.
func anchorIndex(q *Query) int {
	for i, s := range q.Steps {
		if len(s.Preds) > 0 {
			return i
		}
	}
	last := len(q.Steps) - 1
	if q.Steps[last].IsText && last > 0 {
		return last - 1
	}
	return last
}

type localKey struct {
	e *pxml.Node
	s stateSet
}

type failKey struct {
	n *pxml.Node
	s stateSet
	v string
}

type exactEval struct {
	q          *Query
	anchorIdx  int
	localLimit int
	localMemo  map[localKey]map[string]float64
	failMemo   map[failKey]float64

	// Planned-mode accelerators (nil in the legacy two-pass evaluator).
	//
	// valueSets records, per (node, state set), the set of answer values
	// the subtree can produce; the per-value failure pass then skips
	// value-free subtrees in O(1) instead of re-walking them, which turns
	// the O(values × nodes) second pass into O(nodes + values × depth) on
	// selective documents. Mathematically the skipped subtree's failure
	// probability is exactly 1, so short-circuiting only removes
	// accumulated floating-point dust from Σpᵢ≈1 sums.
	valueSets map[localKey]map[string]bool
	// need[i] is what a subtree must contain for the step chain i..last
	// to complete inside it (required tags and a Bloom mask of required
	// equality literals); subtrees that cannot satisfy any pending chain
	// are pruned without a visit.
	need []stepNeed
	// visited/prunedSubtrees count discovery-pass work for plan stats.
	visited        int
	prunedSubtrees int

	// budget meters node visits and enumerated worlds and carries
	// cancellation; nil in the legacy evaluator.
	budget *budget
	// sealed marks the transition to the (possibly parallel) failure
	// pass: every localEval from then on must be a memo hit, because the
	// discovery pass has visited a superset of the (node, state set)
	// pairs the failure pass can reach. The guard turns a violated
	// invariant into an error instead of a data race.
	sealed bool
	// pooledTasks/inlineTasks aggregate worker-pool scheduling counts for
	// ExecStats.
	pooledTasks, inlineTasks int64
}

// advance computes the transition of the global NFA at an element: the
// next state set for its children and whether the element hits the anchor
// step (which switches evaluation to local enumeration).
func (e *exactEval) advance(elem *pxml.Node, states stateSet) (next stateSet, anchorHit bool) {
	for i := 0; i <= e.anchorIdx; i++ {
		if !states.has(i) {
			continue
		}
		step := e.q.Steps[i]
		if step.Desc {
			next = next.add(i)
		}
		// Above the anchor, steps carry no predicates by construction, so
		// a name match suffices.
		if !stepMatches(step, elem) {
			continue
		}
		if i == e.anchorIdx {
			anchorHit = true
			continue
		}
		next = next.add(i + 1)
	}
	return next, anchorHit
}

// localEval enumerates the possible worlds of one anchor element's subtree
// and returns, per answer value, the probability that the remaining query
// (from the given state set) produces that value — conditioned on the
// element existing.
func (e *exactEval) localEval(elem *pxml.Node, states stateSet) (map[string]float64, error) {
	key := localKey{e: elem, s: states}
	if m, ok := e.localMemo[key]; ok {
		return m, nil
	}
	if e.sealed {
		// The failure pass only reaches anchor hits the discovery pass
		// already enumerated; a miss here would mean concurrent writes to
		// the shared memo. See evalExactPlanned.
		return nil, fmt.Errorf("%w: internal: local memo miss after discovery (<%s>, states %#x)",
			ErrNotExact, elem.Tag(), states)
	}
	out, err := e.localEvalRaw(elem, states)
	if err != nil {
		return nil, err
	}
	e.localMemo[key] = out
	return out, nil
}

// localEvalRaw is localEval without the memo: a pure function of
// (element, state set), safe to run concurrently for distinct keys — the
// parallel precompute phase calls it from pool workers and merges the
// results into the memo sequentially afterwards.
func (e *exactEval) localEvalRaw(elem *pxml.Node, states stateSet) (map[string]float64, error) {
	sub := pxml.CertainTree(elem)
	wc := sub.WorldCount()
	if !wc.IsInt64() || wc.Cmp(big.NewInt(int64(e.localLimit))) > 0 {
		return nil, fmt.Errorf("%w: anchor subtree <%s> has %s local worlds (limit %d)",
			ErrNotExact, elem.Tag(), wc.String(), e.localLimit)
	}
	out := make(map[string]float64)
	var stepErr error
	worlds.Enumerate(sub, func(w worlds.World) bool {
		if stepErr = e.budget.step(); stepErr != nil {
			return false
		}
		seen := make(map[string]bool)
		for _, el := range w.Elements {
			evalFrom(e.q, el, states, func(v string) { seen[v] = true })
		}
		for v := range seen {
			out[v] += w.P
		}
		return true
	})
	if stepErr != nil {
		return nil, stepErr
	}
	return out, nil
}

// collectValues gathers every value any anchor subtree can produce.
func (e *exactEval) collectValues(n *pxml.Node, states stateSet, acc map[string]bool) error {
	switch n.Kind() {
	case pxml.KindProb, pxml.KindPoss:
		for _, k := range n.Children() {
			if err := e.collectValues(k, states, acc); err != nil {
				return err
			}
		}
		return nil
	default: // element
		next, hit := e.advance(n, states)
		if hit {
			m, err := e.localEval(n, states)
			if err != nil {
				return err
			}
			for v := range m {
				acc[v] = true
			}
			return nil
		}
		if next == 0 {
			return nil
		}
		for _, k := range n.Children() {
			if err := e.collectValues(k, next, acc); err != nil {
				return err
			}
		}
		return nil
	}
}

// stepNeed is the static requirement the chain from one step to the last
// imposes on any subtree completing it.
type stepNeed struct {
	// tags are the concrete element tags of steps i..last: any complete
	// match starting at step i assigns every later step to an element
	// inside the same subtree, so a subtree lacking one of the tags
	// cannot contribute an answer through state i.
	tags map[string]bool
	// litMask is the combined Bloom mask of all positively required
	// equality literals (conjoined [path = "lit"] predicates with
	// space-free literals) of steps i..last. A space-free literal can
	// only match as a single element's own text, so a subtree whose
	// summary TextBloom misses any of these bits cannot satisfy the
	// predicates and contributes exactly nothing.
	litMask uint64
}

// stepNeeds computes the per-step chain requirements, shared backwards:
// need[i] accumulates tags and literal masks of steps i..last.
func stepNeeds(q *Query) []stepNeed {
	need := make([]stepNeed, len(q.Steps))
	var tags map[string]bool
	var mask uint64
	for i := len(q.Steps) - 1; i >= 0; i-- {
		s := q.Steps[i]
		lits := requiredEqLiterals(s)
		if !s.IsText && s.Name != "*" || len(lits) > 0 {
			m := make(map[string]bool, len(tags)+1)
			for t := range tags {
				m[t] = true
			}
			if !s.IsText && s.Name != "*" {
				m[s.Name] = true
			}
			tags = m
			for _, lit := range lits {
				mask |= pxml.TextBloomBits(lit)
			}
		}
		if tags == nil {
			tags = map[string]bool{}
		}
		need[i] = stepNeed{tags: tags, litMask: mask}
	}
	return need
}

// requiredEqLiterals collects the space-free equality literals a step's
// predicates positively require: conjuncts of the form [path = "lit"].
// Literals under not(…) or or(…) are not required and contribute nothing.
func requiredEqLiterals(s Step) []string {
	var out []string
	var rec func(p Pred)
	rec = func(p Pred) {
		switch p := p.(type) {
		case PredExists:
			if eq, ok := p.Cond.(CondEq); ok && eq.Lit != "" && !strings.ContainsRune(eq.Lit, ' ') {
				out = append(out, eq.Lit)
			}
		case PredAnd:
			rec(p.A)
			rec(p.B)
		}
	}
	for _, p := range s.Preds {
		rec(p)
	}
	return out
}

// canMatch reports whether the subtree of n can possibly complete any
// pending step chain, judged by its cached summary (tag set and text
// fingerprint). Always true in legacy mode (no needs computed).
func (e *exactEval) canMatch(n *pxml.Node, states stateSet) bool {
	if e.need == nil {
		return true
	}
	sum := n.Summary()
	for i := 0; i <= e.anchorIdx; i++ {
		if !states.has(i) {
			continue
		}
		nd := e.need[i]
		if sum.TextBloom&nd.litMask != nd.litMask {
			continue
		}
		ok := true
		for t := range nd.tags {
			if !sum.Tags.Has(t) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// values is the planned-mode discovery pass: it returns the set of answer
// values the subtree of n can produce given the pending states, memoized
// per (node, state set) so the failure pass can consult it in O(1). A nil
// set means "no values".
func (e *exactEval) values(n *pxml.Node, states stateSet) (map[string]bool, error) {
	if states == 0 {
		return nil, nil
	}
	key := localKey{e: n, s: states}
	if vs, ok := e.valueSets[key]; ok {
		return vs, nil
	}
	e.visited++
	if err := e.budget.step(); err != nil {
		return nil, err
	}
	if !e.canMatch(n, states) {
		e.prunedSubtrees++
		e.valueSets[key] = nil
		return nil, nil
	}
	var vs map[string]bool
	merge := func(kvs map[string]bool) {
		if len(kvs) == 0 {
			return
		}
		if vs == nil {
			// Share the child's set until a second contributor forces a
			// private union — chains of wrapper nodes then share one set.
			vs = kvs
			return
		}
		if mapsShareStorage(vs, kvs) {
			return
		}
		merged := make(map[string]bool, len(vs)+len(kvs))
		for v := range vs {
			merged[v] = true
		}
		for v := range kvs {
			merged[v] = true
		}
		vs = merged
	}
	switch n.Kind() {
	case pxml.KindProb, pxml.KindPoss:
		for _, k := range n.Children() {
			kvs, err := e.values(k, states)
			if err != nil {
				return nil, err
			}
			merge(kvs)
		}
	default: // element
		next, hit := e.advance(n, states)
		if hit {
			m, err := e.localEval(n, states)
			if err != nil {
				return nil, err
			}
			if len(m) > 0 {
				vs = make(map[string]bool, len(m))
				for v := range m {
					vs[v] = true
				}
			}
		} else if next != 0 {
			for _, k := range n.Children() {
				kvs, err := e.values(k, next)
				if err != nil {
					return nil, err
				}
				merge(kvs)
			}
		}
	}
	e.valueSets[key] = vs
	return vs, nil
}

// mapsShareStorage reports whether b adds nothing to a because the two
// sets are the same size and b ⊆ a (the common shared-child case).
func mapsShareStorage(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range b {
		if !a[v] {
			return false
		}
	}
	return true
}

// fail returns P(no answer with value v arises in the subtree of n), given
// the NFA state set at n. The memoization table is a parameter so that the
// parallel failure pass can give every value its own scratch memo: entries
// are keyed per value anyway, so a private map computes the exact same
// floats as a shared one, while letting per-value computations run on
// separate goroutines with no coordination (they only read the immutable
// valueSets/localMemo tables built by the discovery pass).
func (e *exactEval) fail(n *pxml.Node, states stateSet, v string, memo map[failKey]float64) (float64, error) {
	if states == 0 {
		return 1, nil
	}
	if e.valueSets != nil {
		// Planned mode: the discovery pass has already recorded which
		// values this subtree can produce; a subtree that cannot produce
		// v fails with probability exactly 1.
		if vs, ok := e.valueSets[localKey{e: n, s: states}]; ok && !vs[v] {
			return 1, nil
		}
	}
	key := failKey{n: n, s: states, v: v}
	if f, ok := memo[key]; ok {
		return f, nil
	}
	if err := e.budget.step(); err != nil {
		return 0, err
	}
	var f float64
	var err error
	switch n.Kind() {
	case pxml.KindProb:
		// Alternatives are mutually exclusive: failure probabilities add,
		// weighted.
		f = 0
		for _, poss := range n.Children() {
			pf, perr := e.fail(poss, states, v, memo)
			if perr != nil {
				return 0, perr
			}
			f += poss.Prob() * pf
		}
	case pxml.KindPoss:
		// Contents are independent: failures multiply.
		f = 1
		for _, el := range n.Children() {
			ef, eerr := e.fail(el, states, v, memo)
			if eerr != nil {
				return 0, eerr
			}
			f *= ef
			if f == 0 {
				break
			}
		}
	default: // element
		next, hit := e.advance(n, states)
		if hit {
			var m map[string]float64
			m, err = e.localEval(n, states)
			if err != nil {
				return 0, err
			}
			f = 1 - m[v]
		} else {
			f = 1
			for _, k := range n.Children() {
				kf, kerr := e.fail(k, next, v, memo)
				if kerr != nil {
					return 0, kerr
				}
				f *= kf
				if f == 0 {
					break
				}
			}
		}
	}
	memo[key] = f
	return f, nil
}

// collectAnchors mirrors the values() walk — the same advance transitions,
// the same canMatch pruning, the same per-(node, state set) dedup — but
// collects anchor hits in document order instead of evaluating them. It
// touches no counters, so the discovery pass that follows still reports
// visit statistics identical to a sequential run.
func (e *exactEval) collectAnchors(n *pxml.Node, states stateSet, seen map[localKey]bool, out *[]localKey) {
	if states == 0 {
		return
	}
	key := localKey{e: n, s: states}
	if seen[key] {
		return
	}
	seen[key] = true
	if !e.canMatch(n, states) {
		return
	}
	switch n.Kind() {
	case pxml.KindProb, pxml.KindPoss:
		for _, k := range n.Children() {
			e.collectAnchors(k, states, seen, out)
		}
	default: // element
		next, hit := e.advance(n, states)
		if hit {
			*out = append(*out, key)
			return
		}
		if next == 0 {
			return
		}
		for _, k := range n.Children() {
			e.collectAnchors(k, next, seen, out)
		}
	}
}

// precomputeLocal runs every anchor-subtree local enumeration the
// discovery pass will need, fanned out over the pool. Each enumeration is
// a pure function of its (element, state set) key writing into a private
// map; the memo merge afterwards is sequential, so the discovery pass sees
// exactly the maps a sequential run would have computed. On error the
// lowest-indexed failure wins, matching the walk order a sequential run
// reports.
func (e *exactEval) precomputeLocal(root *pxml.Node, workers int) error {
	var anchors []localKey
	e.collectAnchors(root, stateSet(1), make(map[localKey]bool), &anchors)
	if len(anchors) == 0 {
		return nil
	}
	results := make([]map[string]float64, len(anchors))
	errs := make([]error, len(anchors))
	tasks := make([]func(), len(anchors))
	for i := range anchors {
		i := i
		tasks[i] = func() {
			results[i], errs[i] = e.localEvalRaw(anchors[i].e, anchors[i].s)
		}
	}
	pool := newTaskPool(workers)
	pool.runAll(tasks)
	pooled, inline := pool.counts()
	e.pooledTasks += pooled
	e.inlineTasks += inline
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i, key := range anchors {
		e.localMemo[key] = results[i]
	}
	return nil
}

// evalExactPlanned is the planner's exact executor: the same compositional
// semantics as EvalExact, restructured around a single value-discovery
// pass that memoizes per-subtree value sets (plus summary-based tag
// pruning), so the per-value failure pass touches only subtrees that can
// actually produce the value. It returns the evaluator alongside the
// answers so the planner can report pruning statistics.
//
// With workers > 1 the two expensive stages fan out over a bounded pool,
// bracketing the sequential discovery pass: first every anchor-subtree
// local enumeration runs concurrently (precomputeLocal), then — after
// discovery has fixed the value set and the memo tables — the per-value
// failure computations run concurrently, each with a private scratch memo.
// Both fan-out units are independent by construction and all float
// summation orders are fixed per value, so the answers are bit-identical
// to a sequential run for every worker count.
func evalExactPlanned(t *pxml.Tree, q *Query, localLimit, workers int, b *budget) ([]Answer, *exactEval, error) {
	if localLimit <= 0 {
		localLimit = DefaultLocalWorldLimit
	}
	if workers <= 0 {
		workers = 1
	}
	if len(q.Steps) == 0 {
		return nil, nil, fmt.Errorf("%w: empty query", ErrNotExact)
	}
	if q.Steps[0].IsText {
		return nil, nil, fmt.Errorf("%w: text() cannot be the first step", ErrNotExact)
	}
	e := &exactEval{
		q:          q,
		anchorIdx:  anchorIndex(q),
		localLimit: localLimit,
		localMemo:  make(map[localKey]map[string]float64),
		failMemo:   make(map[failKey]float64),
		valueSets:  make(map[localKey]map[string]bool),
		need:       stepNeeds(q),
		budget:     b,
	}
	if workers > 1 {
		if err := e.precomputeLocal(t.Root(), workers); err != nil {
			return nil, e, err
		}
	}
	values, err := e.values(t.Root(), stateSet(1))
	if err != nil {
		return nil, e, err
	}
	// Fix the fan-out order: per-value results land in slots, so answer
	// assembly does not depend on scheduling (or map iteration) order.
	vals := make([]string, 0, len(values))
	for v := range values {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	e.sealed = true
	root := t.Root()
	ps := make([]float64, len(vals))
	errs := make([]error, len(vals))
	tasks := make([]func(), len(vals))
	for i := range vals {
		i := i
		tasks[i] = func() {
			f, ferr := e.fail(root, stateSet(1), vals[i], make(map[failKey]float64))
			ps[i], errs[i] = 1-f, ferr
		}
	}
	pool := newTaskPool(workers)
	pool.runAll(tasks)
	pooled, inline := pool.counts()
	e.pooledTasks += pooled
	e.inlineTasks += inline
	for _, err := range errs {
		if err != nil {
			return nil, e, err
		}
	}
	answers := make([]Answer, 0, len(vals))
	for i, v := range vals {
		if p := ps[i]; p > 1e-12 {
			answers = append(answers, Answer{Value: v, P: p})
		}
	}
	sortAnswers(answers)
	return answers, e, nil
}

func sortAnswers(answers []Answer) {
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].P != answers[j].P {
			return answers[i].P > answers[j].P
		}
		return answers[i].Value < answers[j].Value
	})
}

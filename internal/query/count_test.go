package query_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pxmltest"
	"repro/internal/query"
)

func TestCountWorldOnCertainDoc(t *testing.T) {
	tr := decode(t, catalog)
	cases := []struct {
		q    string
		want int
	}{
		{`//movie`, 4},
		{`//movie/title`, 4},
		{`//genre`, 4},
		{`//movie[.//genre="Horror"]/title`, 2},
		{`//nothing`, 0},
	}
	for _, tc := range cases {
		if got := query.CountWorld(query.MustCompile(tc.q), tr.RootElements()); got != tc.want {
			t.Errorf("CountWorld(%s) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestExpectedCountFig2(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	// Merged world (p=0.6): one phone; separate world (p=0.4): two.
	got, err := query.ExpectedCount(tr, query.MustCompile(`//person/tel`), 0)
	if err != nil {
		t.Fatalf("ExpectedCount: %v", err)
	}
	if math.Abs(got-1.4) > 1e-9 {
		t.Fatalf("E[#tel] = %v, want 1.4", got)
	}
	// Persons: 1 or 2.
	got, err = query.ExpectedCount(tr, query.MustCompile(`//person`), 0)
	if err != nil {
		t.Fatalf("ExpectedCount: %v", err)
	}
	if math.Abs(got-(0.6*1+0.4*2)) > 1e-9 {
		t.Fatalf("E[#person] = %v, want 1.4", got)
	}
	// Predicated count: persons with phone 1111 exist with P 0.7, one at
	// a time.
	got, err = query.ExpectedCount(tr, query.MustCompile(`//person[tel="1111"]`), 0)
	if err != nil {
		t.Fatalf("ExpectedCount: %v", err)
	}
	if math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("E[#person with 1111] = %v, want 0.7", got)
	}
}

func TestExpectedCountMatchesEnumeration(t *testing.T) {
	queries := []*query.Query{
		query.MustCompile(`//a`),
		query.MustCompile(`//movie/title`),
		query.MustCompile(`//movie[title]/title`),
		query.MustCompile(`//a//b`),
		query.MustCompile(`//c[a="x"]/b`),
		query.MustCompile(`//*`),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := pxmltest.RandomTree(rng, pxmltest.DefaultGenConfig())
		if wc := tr.WorldCount(); !wc.IsInt64() || wc.Int64() > 1500 {
			return true
		}
		for _, q := range queries {
			exact, err := query.ExpectedCount(tr, q, 0)
			if err != nil {
				return false
			}
			enum, err := query.ExpectedCountEnumerate(tr, q, 5000)
			if err != nil {
				return false
			}
			if math.Abs(exact-enum) > 1e-9 {
				t.Logf("seed %d query %s: exact %v enum %v", seed, q, exact, enum)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedCountScalesBeyondEnumeration(t *testing.T) {
	// Build a document with 2^40 worlds: 40 independent optional items.
	xml := `<bag>`
	for i := 0; i < 40; i++ {
		xml += `<_prob><_poss p="0.5"><item>x</item></_poss><_poss p="0.5"/></_prob>`
	}
	xml += `</bag>`
	tr := decode(t, xml)
	if tr.WorldCount().BitLen() < 40 {
		t.Fatalf("world count = %s", tr.WorldCount())
	}
	got, err := query.ExpectedCount(tr, query.MustCompile(`//item`), 0)
	if err != nil {
		t.Fatalf("ExpectedCount: %v", err)
	}
	if math.Abs(got-20) > 1e-9 {
		t.Fatalf("E[#item] = %v, want 20", got)
	}
}

func TestExpectedCountErrors(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	// Anchor subtree too large for the local budget.
	_, err := query.ExpectedCount(tr, query.MustCompile(`//addressbook[person]/person`), 1)
	if err == nil {
		t.Fatalf("expected local-limit error")
	}
	// Enumeration refuses oversized documents.
	if _, err := query.ExpectedCountEnumerate(tr, query.MustCompile(`//person`), 1); err == nil {
		t.Fatalf("expected world-limit error")
	}
}

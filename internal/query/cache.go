package query

import (
	"container/list"
	"sync"
)

// DefaultCacheCapacity is the compiled-query capacity of a Cache built
// with NewCache(0).
const DefaultCacheCapacity = 256

// CacheStats reports the effectiveness of a Cache.
type CacheStats struct {
	// Hits and Misses count Compile calls answered from / not in the
	// cache. Parse failures count as misses and are never cached. A call
	// that loses a concurrent parse race on the same string counts as a
	// hit — it is served the winner's entry — so Misses equals the number
	// of parses that populated the cache (plus failed parses), even under
	// contention.
	Hits, Misses int64
	// Size is the number of compiled queries currently cached; Capacity
	// the maximum before least-recently-used eviction.
	Size, Capacity int
}

// Cache is a fixed-capacity, concurrency-safe LRU cache of compiled
// queries. Query compilation is pure (a Query is immutable once built),
// so a cached *Query may be shared freely between goroutines; the cache
// sits in front of Compile on the serving hot path, where the same query
// strings arrive over and over.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List               // front = most recently used
	byText map[string]*list.Element // query text -> entry
	hits   int64
	misses int64
}

type cacheEntry struct {
	src string
	q   *Query
}

// compileRaceHook, when non-nil, runs after a Compile call has recorded
// its miss and released the lock, before it parses. Tests use it to hold
// several goroutines inside the lost-parse-race window deterministically.
var compileRaceHook func(src string)

// NewCache builds a compiled-query cache holding at most capacity
// entries; capacity <= 0 means DefaultCacheCapacity.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		cap:    capacity,
		ll:     list.New(),
		byText: make(map[string]*list.Element, capacity),
	}
}

// Compile returns the compiled form of src, parsing it only if no cached
// compilation exists. Errors are returned verbatim and not cached.
func (c *Cache) Compile(src string) (*Query, error) {
	c.mu.Lock()
	if el, ok := c.byText[src]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		q := el.Value.(*cacheEntry).q
		c.mu.Unlock()
		return q, nil
	}
	c.misses++
	c.mu.Unlock()

	if h := compileRaceHook; h != nil {
		h(src)
	}

	// Parse outside the lock: compilation is pure, so two goroutines
	// racing on the same uncached string merely both parse it once.
	q, err := Compile(src)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byText[src]; ok {
		// Lost the race; keep the first insertion and reclassify the miss
		// recorded above as a hit — this call was served from the cache
		// after all, and without the correction Hits+Misses would
		// over-report the number of parses under contention.
		c.misses--
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).q, nil
	}
	c.byText[src] = c.ll.PushFront(&cacheEntry{src: src, q: q})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byText, oldest.Value.(*cacheEntry).src)
	}
	return q, nil
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: c.ll.Len(), Capacity: c.cap}
}

// Purge empties the cache, keeping the hit/miss counters.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.byText)
}

package query

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestResultCacheSingleflight: N concurrent identical cold queries execute
// the evaluation exactly once. The leader is gated on a channel until every
// waiter has joined the flight, so the collapse is deterministic, not a
// timing accident. Accounting must pin misses==1 (the one execution) and
// collapses==N-1 (the waiters).
func TestResultCacheSingleflight(t *testing.T) {
	c := NewResultCache(8)
	const waiters = 7

	var execs atomic.Int64
	release := make(chan struct{})
	fn := func() (Result, error) {
		execs.Add(1)
		<-release
		return Result{Method: MethodExact}, nil
	}

	var wg sync.WaitGroup
	outcomes := make([]DoOutcome, waiters+1)
	errs := make([]error, waiters+1)
	start := make(chan struct{})
	for i := 0; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i > 0 {
				<-start // leader enters first
			}
			_, outcomes[i], errs[i] = c.Do(context.Background(), c.Generation(), 1, "//a", Options{}, fn)
		}(i)
	}
	// Goroutine 0 is the leader: wait for its flight to register, let the
	// waiters in, and only release the leader once every waiter is counted
	// as a collapse — so the single-execution outcome is deterministic.
	for {
		c.flightMu.Lock()
		n := len(c.flights)
		c.flightMu.Unlock()
		if n == 1 {
			break
		}
		runtime.Gosched()
	}
	close(start)
	for c.Stats().Collapses < waiters {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("evaluation ran %d times, want 1", got)
	}
	var executed, shared int
	for i, o := range outcomes {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		switch o {
		case DoExecuted:
			executed++
		case DoShared:
			shared++
		default:
			t.Fatalf("caller %d: unexpected outcome %v", i, o)
		}
	}
	if executed != 1 || shared != waiters {
		t.Fatalf("executed=%d shared=%d, want 1/%d", executed, shared, waiters)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Collapses != int64(waiters) || st.Hits != 0 {
		t.Fatalf("stats = %+v, want misses=1 collapses=%d hits=0", st, waiters)
	}

	// The flight retired after publishing: a late identical query is a hit.
	if _, outcome, err := c.Do(context.Background(), c.Generation(), 1, "//a", Options{}, fn); err != nil || outcome != DoHit {
		t.Fatalf("late caller: outcome=%v err=%v, want DoHit", outcome, err)
	}
}

// TestResultCacheSingleflightLeaderCanceled: when the leader aborts with a
// cancellation-class error, a waiter does not inherit the failure — it
// retries as the new leader and succeeds.
func TestResultCacheSingleflightLeaderCanceled(t *testing.T) {
	c := NewResultCache(8)
	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})
	var calls atomic.Int64
	waiterDone := make(chan error, 1)

	go func() {
		_, _, err := c.Do(context.Background(), c.Generation(), 2, "//b", Options{}, func() (Result, error) {
			calls.Add(1)
			close(leaderIn)
			<-leaderOut
			return Result{}, context.Canceled
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want context.Canceled", err)
		}
	}()
	<-leaderIn
	go func() {
		_, _, err := c.Do(context.Background(), c.Generation(), 2, "//b", Options{}, func() (Result, error) {
			calls.Add(1)
			return Result{Method: MethodExact}, nil
		})
		waiterDone <- err
	}()
	// Wait until the second caller is a registered waiter, then release
	// the leader to fail.
	for c.Stats().Collapses < 1 {
		runtime.Gosched()
	}
	close(leaderOut)
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter err = %v, want retry success", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("evaluation ran %d times, want 2 (leader + retry)", got)
	}
}

// TestResultCacheSingleflightWaiterCanceled: a waiter whose own context is
// canceled stops waiting and reports its ctx error without disturbing the
// leader.
func TestResultCacheSingleflightWaiterCanceled(t *testing.T) {
	c := NewResultCache(8)
	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), c.Generation(), 3, "//c", Options{}, func() (Result, error) {
			close(leaderIn)
			<-leaderOut
			return Result{Method: MethodExact}, nil
		})
		leaderDone <- err
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, outcome, err := c.Do(ctx, c.Generation(), 3, "//c", Options{}, func() (Result, error) {
		t.Error("canceled waiter must not execute")
		return Result{}, nil
	})
	if !errors.Is(err, context.Canceled) || outcome != DoShared {
		t.Fatalf("waiter: outcome=%v err=%v, want DoShared/context.Canceled", outcome, err)
	}
	close(leaderOut)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v", err)
	}
}

// TestResultCacheSharded: large caches split into shards; small ones keep a
// single shard so the global-LRU eviction order tests stay meaningful.
func TestResultCacheSharded(t *testing.T) {
	if st := NewResultCache(256).Stats(); st.Shards != resultCacheShards {
		t.Fatalf("capacity 256: shards = %d, want %d", st.Shards, resultCacheShards)
	}
	if st := NewResultCache(8).Stats(); st.Shards != 1 {
		t.Fatalf("capacity 8: shards = %d, want 1", st.Shards)
	}

	// Fill a sharded cache across many keys: entries land in different
	// shards and remain retrievable; total size respects capacity.
	c := NewResultCache(minShardedCapacity)
	for i := 0; i < minShardedCapacity; i++ {
		c.Put(uint64(i), "//q", Options{}, Result{Method: MethodExact})
	}
	found := 0
	for i := 0; i < minShardedCapacity; i++ {
		if _, ok := c.Get(uint64(i), "//q", Options{}); ok {
			found++
		}
	}
	st := c.Stats()
	if st.Size > st.Capacity {
		t.Fatalf("size %d exceeds capacity %d", st.Size, st.Capacity)
	}
	if found != st.Size {
		t.Fatalf("found %d entries, stats size %d", found, st.Size)
	}
	if found < minShardedCapacity/2 {
		t.Fatalf("only %d of %d entries retained across shards", found, minShardedCapacity)
	}
}

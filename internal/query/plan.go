package query

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"repro/internal/pxml"
	"repro/internal/queryindex"
	"repro/internal/worlds"
)

// Plan explains how the engine decided to evaluate a query: the chosen
// strategy, the cost estimates it was based on, and how much of the
// document the index let the planner rule out. It is attached to every
// Result produced by EvalIndexed and surfaced by the `explain=1` query
// parameter.
type Plan struct {
	// Method is the strategy the planner chose (and the executor ran —
	// the engine guarantees the two agree).
	Method Method `json:"method"`
	// Indexed reports whether a per-tree index informed the plan.
	Indexed bool `json:"indexed"`
	// Reason is a human-readable account of the choice.
	Reason string `json:"reason"`
	// EstimatedWorlds is the document's possible-world count.
	EstimatedWorlds string `json:"estimated_worlds"`
	// AnchorTag is the tag of the query's anchor step ("*" for wildcard).
	AnchorTag string `json:"anchor_tag,omitempty"`
	// AnchorWorldBound is the planner's upper bound on any anchor
	// subtree's local world count (empty without an index).
	AnchorWorldBound string `json:"anchor_world_bound,omitempty"`
	// PrunedFraction estimates the fraction of document elements the
	// evaluation never has to visit (from index tag occurrences).
	PrunedFraction float64 `json:"pruned_fraction"`
	// EmptyByIndex is set when the index proved the result empty (a
	// required tag does not occur in the document) and evaluation was
	// skipped entirely.
	EmptyByIndex bool `json:"empty_by_index,omitempty"`
	// CacheHit is set by the database layer when the result was served
	// from the result cache.
	CacheHit bool `json:"cache_hit"`
	// Workers is the resolved fan-out width the executor ran with
	// (Options.Workers with 0 resolved to GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// BudgetExhausted is set when evaluation aborted on a per-query
	// budget (Options.TimeBudget / Options.MaxNodeVisits); the result
	// carrying it is partial and arrives alongside ErrBudgetExhausted.
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
}

// queryTags collects the concrete element tags a query mentions: step
// names plus predicate path names. Wildcards and text() contribute
// nothing. The bool reports whether a wildcard step occurs.
func queryTags(q *Query) (map[string]bool, bool) {
	tags := make(map[string]bool)
	wildcard := false
	var addSteps func(steps []Step)
	var addPred func(p Pred)
	addSteps = func(steps []Step) {
		for _, s := range steps {
			if s.IsText {
				continue
			}
			if s.Name == "*" {
				wildcard = true
			} else {
				tags[s.Name] = true
			}
			for _, p := range s.Preds {
				addPred(p)
			}
		}
	}
	addPred = func(p Pred) {
		switch p := p.(type) {
		case PredExists:
			addSteps(p.Path.Steps)
		case PredAnd:
			addPred(p.A)
			addPred(p.B)
		case PredOr:
			addPred(p.A)
			addPred(p.B)
		case PredNot:
			addPred(p.P)
		}
	}
	addSteps(q.Steps)
	return tags, wildcard
}

// requiredStepTags returns the concrete tags of the main step chain only —
// each must occur in the document for the query to have any answer.
func requiredStepTags(q *Query) []string {
	var out []string
	for _, s := range q.Steps {
		if !s.IsText && s.Name != "*" {
			out = append(out, s.Name)
		}
	}
	return out
}

// planAuto builds the cost-based plan for MethodAuto over an indexed
// document. The choice is a prediction, not a trial run: the anchor world
// bound is a true upper bound (max subtree world count over all elements
// of the anchor tag), so a predicted exact evaluation cannot fail its
// local-enumeration budget at runtime.
func planAuto(t *pxml.Tree, q *Query, opts Options, idx *queryindex.Index) Plan {
	pl := Plan{
		Method:          MethodAuto,
		Indexed:         idx != nil,
		EstimatedWorlds: t.Summary().Worlds.String(),
	}
	localLimit := opts.LocalWorldLimit
	if localLimit <= 0 {
		localLimit = DefaultLocalWorldLimit
	}
	exactable := len(q.Steps) > 0 && !q.Steps[0].IsText
	anchorTag := ""
	if exactable {
		s := q.Steps[anchorIndex(q)]
		anchorTag = s.Name
		pl.AnchorTag = anchorTag
	}

	if idx == nil {
		pl.Reason = "no index: try exact, fall back to enumeration or sampling"
		return pl
	}

	// Index-proven empty result: a concrete step tag absent from the
	// document means no possible world can produce an answer.
	for _, tag := range requiredStepTags(q) {
		if !idx.HasTag(tag) {
			pl.EmptyByIndex = true
			pl.PrunedFraction = 1
			if exactable {
				pl.Method = MethodExact
			} else if idx.Worlds().Cmp(big.NewInt(int64(opts.enumLimit()))) <= 0 {
				pl.Method = MethodEnumerate
			} else {
				pl.Method = MethodSample
			}
			pl.Reason = fmt.Sprintf("index: tag %q does not occur in the document; result is empty", tag)
			return pl
		}
	}

	pl.PrunedFraction = estimatePruned(q, idx)

	if exactable {
		var bound *big.Int
		if anchorTag == "*" {
			bound = idx.MaxElementWorlds()
		} else if info, ok := idx.Tag(anchorTag); ok {
			bound = info.MaxSubtreeWorlds
		}
		if bound != nil {
			pl.AnchorWorldBound = bound.String()
			if bound.IsInt64() && bound.Cmp(big.NewInt(int64(localLimit))) <= 0 {
				pl.Method = MethodExact
				pl.Reason = fmt.Sprintf("anchor <%s> subtrees span at most %s local worlds (limit %d): exact",
					anchorTag, bound, localLimit)
				return pl
			}
			pl.Reason = fmt.Sprintf("anchor <%s> subtrees may span %s local worlds (limit %d): exact too costly",
				anchorTag, bound, localLimit)
		}
	} else {
		pl.Reason = "query shape rules out compositional evaluation"
	}

	enumLimit := big.NewInt(int64(opts.enumLimit()))
	if idx.Worlds().Cmp(enumLimit) <= 0 {
		pl.Method = MethodEnumerate
		pl.Reason += fmt.Sprintf("; %s worlds fit the enumeration budget %s", pl.EstimatedWorlds, enumLimit)
		return pl
	}
	pl.Method = MethodSample
	pl.Reason += fmt.Sprintf("; %s worlds exceed the enumeration budget %s: Monte-Carlo sampling",
		pl.EstimatedWorlds, enumLimit)
	return pl
}

// estimatePruned estimates, from index tag occurrences, the fraction of
// document elements evaluation can skip: elements whose tag the query
// never mentions are only ever traversed, not matched, and the
// summary-pruned executor skips whole subtrees without any matching tag
// below. Wildcard queries prune nothing.
func estimatePruned(q *Query, idx *queryindex.Index) float64 {
	tags, wildcard := queryTags(q)
	if wildcard || idx.Elements() == 0 {
		return 0
	}
	relevant := 0
	for tag := range tags {
		if info, ok := idx.Tag(tag); ok {
			relevant += info.Occurrences
		}
	}
	f := 1 - float64(relevant)/float64(idx.Elements())
	if f < 0 {
		return 0
	}
	return f
}

// EvalIndexed is the planned query engine: it chooses an evaluation
// strategy from the per-tree index (or the legacy ladder without one),
// executes exactly the chosen method, and attaches the explainable Plan
// to the result. Auto evaluation is deterministic: it returns bit-
// identical answers to explicitly requesting the method the plan names.
// An index whose digest does not match the tree is ignored, so callers
// can never be served a plan computed against a stale document.
func EvalIndexed(t *pxml.Tree, q *Query, opts Options, idx *queryindex.Index) (Result, error) {
	return EvalIndexedCtx(context.Background(), t, q, opts, idx)
}

// EvalIndexedCtx is EvalIndexed with cancellation and budgets: evaluation
// aborts with ctx.Err() when the context is canceled (checked on an
// amortized schedule inside the executors' hot loops) and with
// ErrBudgetExhausted when Options.TimeBudget or Options.MaxNodeVisits runs
// out. On a budget abort the returned Result still carries the Plan, with
// BudgetExhausted set, so `explain` can show what was attempted.
// Options.Workers fans the exact and sampling executors out over a bounded
// worker pool; answers are bit-identical for every worker count.
func EvalIndexedCtx(ctx context.Context, t *pxml.Tree, q *Query, opts Options, idx *queryindex.Index) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if idx != nil && idx.Digest() != t.Digest() {
		idx = nil
	}
	b := newBudget(ctx, opts)
	workers := opts.workers()

	if m := opts.method(); m != MethodAuto {
		pl := Plan{
			Method:          m,
			Indexed:         idx != nil,
			Reason:          fmt.Sprintf("method %q requested explicitly", m),
			EstimatedWorlds: t.Summary().Worlds.String(),
		}
		if idx != nil {
			pl.PrunedFraction = estimatePruned(q, idx)
		}
		return executePlanned(t, q, opts, m, pl, workers, b)
	}

	pl := planAuto(t, q, opts, idx)
	if pl.EmptyByIndex {
		sampled := 0
		if pl.Method == MethodSample {
			sampled = opts.samples()
		}
		return newResult(make([]Answer, 0), pl.Method, sampled, &pl), nil
	}
	if idx == nil {
		return executeLadder(t, q, opts, pl, workers, b)
	}
	return executePlanned(t, q, opts, pl.Method, pl, workers, b)
}

// failedResult wraps an executor error: budget aborts keep the Plan (with
// BudgetExhausted set) attached to the empty result so front ends can
// still explain what happened; other errors return a bare Result.
func failedResult(pl Plan, m Method, err error) (Result, error) {
	if errors.Is(err, ErrBudgetExhausted) {
		pl.Method = m
		pl.BudgetExhausted = true
		return newResult(nil, m, 0, &pl), err
	}
	return Result{}, err
}

// executePlanned runs exactly the given method with the planned executor.
func executePlanned(t *pxml.Tree, q *Query, opts Options, m Method, pl Plan, workers int, b *budget) (Result, error) {
	pl.Method = m
	pl.Workers = workers
	switch m {
	case MethodExact:
		answers, e, err := evalExactPlanned(t, q, opts.LocalWorldLimit, workers, b)
		if err != nil {
			return failedResult(pl, m, err)
		}
		if e.visited > 0 {
			// Refine the estimate with what the discovery pass saw.
			pl.Reason += fmt.Sprintf(" (discovery pruned %d of %d subtree visits)", e.prunedSubtrees, e.visited)
		}
		res := newResult(answers, MethodExact, 0, &pl)
		res.Exec = ExecStats{Workers: workers, PooledTasks: e.pooledTasks, InlineTasks: e.inlineTasks, NodeVisits: b.spent()}
		return res, nil
	case MethodEnumerate:
		answers, err := evalEnumerate(t, q, opts.enumLimit(), b)
		if err != nil {
			return failedResult(pl, m, err)
		}
		res := newResult(answers, MethodEnumerate, 0, &pl)
		res.Exec = ExecStats{Workers: workers, NodeVisits: b.spent()}
		return res, nil
	case MethodSample:
		var ex ExecStats
		answers, err := evalSampleWorkers(t, q, opts.samples(), opts.seed(), workers, b, &ex)
		if err != nil {
			return failedResult(pl, m, err)
		}
		ex.Workers, ex.NodeVisits = workers, b.spent()
		res := newResult(answers, MethodSample, opts.samples(), &pl)
		res.Exec = ex
		return res, nil
	default:
		return Result{}, fmt.Errorf("%w: unknown method %q", ErrBadOptions, m)
	}
}

// executeLadder is the unindexed auto path: try exact, fall back to
// enumeration, then sampling — the planner records which rung ran so the
// reported plan always matches the executed method.
func executeLadder(t *pxml.Tree, q *Query, opts Options, pl Plan, workers int, b *budget) (Result, error) {
	pl.Workers = workers
	answers, e, err := evalExactPlanned(t, q, opts.LocalWorldLimit, workers, b)
	if err == nil {
		pl.Method = MethodExact
		pl.Reason = "exact evaluation applicable"
		if e.visited > 0 {
			pl.Reason += fmt.Sprintf(" (discovery pruned %d of %d subtree visits)", e.prunedSubtrees, e.visited)
		}
		res := newResult(answers, MethodExact, 0, &pl)
		res.Exec = ExecStats{Workers: workers, PooledTasks: e.pooledTasks, InlineTasks: e.inlineTasks, NodeVisits: b.spent()}
		return res, nil
	}
	if !errors.Is(err, ErrNotExact) {
		return failedResult(pl, MethodExact, err)
	}
	exactErr := err
	if t.WorldCount().Cmp(big.NewInt(int64(opts.enumLimit()))) <= 0 {
		answers, err := evalEnumerate(t, q, opts.enumLimit(), b)
		if err == nil {
			pl.Method = MethodEnumerate
			pl.Reason = fmt.Sprintf("%v; %s worlds fit the enumeration budget", exactErr, pl.EstimatedWorlds)
			res := newResult(answers, MethodEnumerate, 0, &pl)
			res.Exec = ExecStats{Workers: workers, NodeVisits: b.spent()}
			return res, nil
		}
		if !errors.Is(err, worlds.ErrTooManyWorlds) {
			return failedResult(pl, MethodEnumerate, err)
		}
	}
	pl.Method = MethodSample
	pl.Reason = fmt.Sprintf("%v; %s worlds exceed the enumeration budget: Monte-Carlo sampling",
		exactErr, pl.EstimatedWorlds)
	var ex ExecStats
	sampled, err := evalSampleWorkers(t, q, opts.samples(), opts.seed(), workers, b, &ex)
	if err != nil {
		return failedResult(pl, MethodSample, err)
	}
	ex.Workers, ex.NodeVisits = workers, b.spent()
	res := newResult(sampled, MethodSample, opts.samples(), &pl)
	res.Exec = ex
	return res, nil
}

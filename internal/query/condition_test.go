package query_test

import (
	"errors"
	"math"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/pxml"
	"repro/internal/pxmltest"
	"repro/internal/query"
	"repro/internal/worlds"
)

func TestConditionAbsentRemovesWorlds(t *testing.T) {
	tr := pxmltest.Fig2Tree() // worlds: {1111}=0.3, {2222}=0.3, both=0.4
	q := query.MustCompile(`//person/tel`)
	nt, p, err := query.ConditionAbsent(tr, q, "2222", 0)
	if err != nil {
		t.Fatalf("ConditionAbsent: %v", err)
	}
	if math.Abs(p-0.3) > 1e-9 {
		t.Fatalf("prior P(no 2222) = %v, want 0.3", p)
	}
	if err := nt.Validate(); err != nil {
		t.Fatalf("conditioned tree invalid: %v", err)
	}
	// Only the {1111} world survives, with probability 1.
	if got := nt.WorldCount(); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("worlds after = %s, want 1\n%s", got, nt)
	}
	res, err := query.Eval(nt, q, query.Options{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if math.Abs(res.P("1111")-1) > 1e-9 || res.P("2222") != 0 {
		t.Fatalf("answers after feedback = %v", res.Answers)
	}
}

func TestConditionAbsentRenormalizesSurvivors(t *testing.T) {
	// Reject an answer that only some worlds produce; survivors keep
	// their relative probabilities.
	tr := pxmltest.Fig2Tree()
	q := query.MustCompile(`//addressbook[person/tel="2222" and person/tel="1111"]/person/nm`)
	// This query matches only the two-person world (the merged person has
	// a single phone in each world).
	nt, p, err := query.ConditionAbsent(tr, q, "John", 0)
	if err != nil {
		t.Fatalf("ConditionAbsent: %v", err)
	}
	if math.Abs(p-0.6) > 1e-9 {
		t.Fatalf("prior = %v, want 0.6 (merged-person worlds)", p)
	}
	res, err := query.Eval(nt, query.MustCompile(`//person/tel`), query.Options{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	// Survivors: {1111} and {2222} at 0.5 each.
	if math.Abs(res.P("1111")-0.5) > 1e-9 || math.Abs(res.P("2222")-0.5) > 1e-9 {
		t.Fatalf("answers = %v", res.Answers)
	}
}

func TestConditionAbsentContradiction(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	q := query.MustCompile(`//person/nm`)
	_, _, err := query.ConditionAbsent(tr, q, "John", 0)
	if !errors.Is(err, query.ErrContradiction) {
		t.Fatalf("err = %v, want ErrContradiction (John exists in every world)", err)
	}
}

func TestConditionPresent(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	q := query.MustCompile(`//person/tel`)
	nt, p, err := query.ConditionPresent(tr, q, "2222", 0)
	if err != nil {
		t.Fatalf("ConditionPresent: %v", err)
	}
	if math.Abs(p-0.7) > 1e-9 {
		t.Fatalf("prior P(2222 present) = %v, want 0.7", p)
	}
	res, err := query.Eval(nt, q, query.Options{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if math.Abs(res.P("2222")-1) > 1e-9 {
		t.Fatalf("P(2222) after confirm = %v", res.P("2222"))
	}
	// 1111 survives only in the both-phones world: 0.4/0.7.
	if math.Abs(res.P("1111")-0.4/0.7) > 1e-9 {
		t.Fatalf("P(1111) after confirm = %v, want %v", res.P("1111"), 0.4/0.7)
	}
}

func TestConditionPresentContradiction(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	_, _, err := query.ConditionPresent(tr, query.MustCompile(`//person/tel`), "9999", 0)
	if !errors.Is(err, query.ErrContradiction) {
		t.Fatalf("err = %v", err)
	}
}

func TestConditionPresentWorldLimit(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	_, _, err := query.ConditionPresent(tr, query.MustCompile(`//person/tel`), "1111", 2)
	if !errors.Is(err, query.ErrTooComplex) {
		t.Fatalf("err = %v, want ErrTooComplex", err)
	}
}

// Property: conditioning on absence must equal brute-force world filtering.
func TestConditionAbsentMatchesWorldFiltering(t *testing.T) {
	queries := []*query.Query{
		query.MustCompile(`//a`),
		query.MustCompile(`//movie/title`),
		query.MustCompile(`//movie[title]/title`),
		query.MustCompile(`//a//b`),
		query.MustCompile(`//c[a="x"]/b`),
	}
	rng := rand.New(rand.NewSource(13))
	cfg := pxmltest.DefaultGenConfig()
	checked := 0
	for i := 0; i < 80 && checked < 60; i++ {
		tr := pxmltest.RandomTree(rng, cfg)
		if wc := tr.WorldCount(); !wc.IsInt64() || wc.Int64() > 500 {
			continue
		}
		for _, q := range queries {
			// Pick a value the query can produce.
			full, err := query.EvalEnumerate(tr, q, 1000)
			if err != nil || len(full) == 0 {
				continue
			}
			value := full[0].Value
			if full[0].P >= 1-1e-12 {
				if len(full) > 1 {
					value = full[len(full)-1].Value
				}
				if value == full[0].Value && full[0].P >= 1-1e-12 {
					continue // all answers certain; conditioning contradicts
				}
			}
			nt, prior, err := query.ConditionAbsent(tr, q, value, 0)
			if errors.Is(err, query.ErrContradiction) {
				continue
			}
			if err != nil {
				t.Fatalf("doc %d ConditionAbsent(%s,%q): %v", i, q, value, err)
			}
			// Brute force: filter worlds without the value, renormalize,
			// evaluate a probe query; compare marginals.
			probe := query.MustCompile(`//*`)
			want := map[string]float64{}
			total := 0.0
			worlds.Enumerate(tr, func(w worlds.World) bool {
				if !query.EvalWorld(q, w.Elements)[value] {
					total += w.P
					for v := range query.EvalWorld(probe, w.Elements) {
						want[v] += w.P
					}
				}
				return true
			})
			if math.Abs(prior-total) > 1e-9 {
				t.Fatalf("doc %d %s: prior %v, brute force %v", i, q, prior, total)
			}
			got, err := query.EvalEnumerate(nt, probe, 5000)
			if err != nil {
				t.Fatalf("probe: %v", err)
			}
			gm := map[string]float64{}
			for _, a := range got {
				gm[a.Value] = a.P
			}
			for v, p := range want {
				if math.Abs(gm[v]-p/total) > 1e-9 {
					t.Fatalf("doc %d cond(%s,%q): P(%q) = %v, want %v\ntree:\n%s", i, q, value, v, gm[v], p/total, tr)
				}
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("too few checks: %d", checked)
	}
}

func TestConditionedTreesStayValid(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	cfg := pxmltest.DefaultGenConfig()
	q := query.MustCompile(`//movie/title`)
	for i := 0; i < 40; i++ {
		tr := pxmltest.RandomTree(rng, cfg)
		if wc := tr.WorldCount(); !wc.IsInt64() || wc.Int64() > 300 {
			continue
		}
		full, err := query.EvalEnumerate(tr, q, 1000)
		if err != nil || len(full) == 0 || full[len(full)-1].P >= 1-1e-12 {
			continue
		}
		nt, _, err := query.ConditionAbsent(tr, q, full[len(full)-1].Value, 0)
		if errors.Is(err, query.ErrContradiction) {
			continue
		}
		if err != nil {
			t.Fatalf("ConditionAbsent: %v", err)
		}
		if err := nt.Validate(); err != nil {
			t.Fatalf("conditioned tree invalid: %v", err)
		}
		if math.Abs(worlds.TotalProbability(nt)-1) > 1e-6 {
			t.Fatalf("conditioned probabilities do not sum to 1")
		}
	}
}

func TestConditionAbsentPreservesSharingWherePossible(t *testing.T) {
	tr := pxmltest.Fig2Tree()
	nt, _, err := query.ConditionAbsent(tr, query.MustCompile(`//person/tel`), "2222", 0)
	if err != nil {
		t.Fatalf("ConditionAbsent: %v", err)
	}
	// The nm leaf is untouched by conditioning; it must be the same node.
	var found bool
	pxml.WalkUnique(nt.Root(), func(n *pxml.Node) bool {
		if n.Kind() == pxml.KindElem && n.Tag() == "nm" {
			found = true
		}
		return true
	})
	if !found {
		t.Fatalf("nm leaf lost")
	}
}

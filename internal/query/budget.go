package query

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrBudgetExhausted marks an evaluation aborted by a per-query resource
// ceiling (Options.TimeBudget or Options.MaxNodeVisits). The partially
// attached Plan carries BudgetExhausted so `explain` can surface it.
var ErrBudgetExhausted = errors.New("query: budget exhausted")

// budget threads cancellation and per-query resource ceilings through the
// evaluators. One budget is shared by every goroutine of a parallel
// evaluation: the visit meter is atomic, and the context/deadline checks
// are amortized to every budgetCheckInterval steps so the hot path costs
// one atomic add per node visit. A nil budget meters nothing (legacy
// entry points).
type budget struct {
	ctx       context.Context
	deadline  time.Time // zero = no wall-clock ceiling
	maxVisits int64     // 0 = no visit ceiling
	visits    atomic.Int64
}

const budgetCheckInterval = 256

// newBudget builds the shared meter for one evaluation. ctx may be nil.
func newBudget(ctx context.Context, opts Options) *budget {
	b := &budget{ctx: ctx, maxVisits: opts.MaxNodeVisits}
	if opts.TimeBudget > 0 {
		b.deadline = time.Now().Add(opts.TimeBudget)
	}
	return b
}

// step records one unit of evaluation work — a node visit, an enumerated
// world, or a drawn sample — and reports whether the query must abort.
// The first step always runs the full check, so a context canceled before
// evaluation or an already-expired deadline aborts immediately and
// deterministically.
func (b *budget) step() error {
	if b == nil {
		return nil
	}
	v := b.visits.Add(1)
	if b.maxVisits > 0 && v > b.maxVisits {
		return fmt.Errorf("%w: node-visit budget %d exceeded", ErrBudgetExhausted, b.maxVisits)
	}
	if v != 1 && v%budgetCheckInterval != 0 {
		return nil
	}
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			return err
		}
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		return fmt.Errorf("%w: wall-clock budget exceeded", ErrBudgetExhausted)
	}
	return nil
}

// spent reports the meter reading (0 for a nil budget).
func (b *budget) spent() int64 {
	if b == nil {
		return 0
	}
	return b.visits.Load()
}

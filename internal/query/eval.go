package query

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"

	"repro/internal/pxml"
	"repro/internal/worlds"
)

// Answer is one amalgamated query answer: a distinct result value with the
// probability that at least one possible world produces it — the paper's
// ranked answers ("'Jaws' and 'Jaws 2' with an equal rank of 97%").
type Answer struct {
	Value string
	P     float64
}

// Method names the evaluation strategy that produced a result.
type Method string

const (
	// MethodExact is compositional exact evaluation.
	MethodExact Method = "exact"
	// MethodEnumerate is exhaustive world enumeration.
	MethodEnumerate Method = "enumerate"
	// MethodSample is Monte-Carlo estimation.
	MethodSample Method = "sample"
)

// Result is a ranked, probability-annotated answer sequence.
type Result struct {
	Answers []Answer
	Method  Method
	// SampledWorlds is the number of Monte-Carlo samples (MethodSample).
	SampledWorlds int
}

// Top returns the first n answers (fewer if there are not that many).
func (r Result) Top(n int) []Answer {
	if n > len(r.Answers) {
		n = len(r.Answers)
	}
	return r.Answers[:n]
}

// P returns the probability of a given answer value, or 0.
func (r Result) P(value string) float64 {
	for _, a := range r.Answers {
		if a.Value == value {
			return a.P
		}
	}
	return 0
}

// Options configure evaluation.
type Options struct {
	// LocalWorldLimit bounds per-anchor local enumeration in the exact
	// evaluator (default DefaultLocalWorldLimit).
	LocalWorldLimit int
	// EnumWorldLimit bounds full-world enumeration (default 100000).
	EnumWorldLimit int
	// Samples is the Monte-Carlo sample count (default 20000).
	Samples int
	// Seed seeds the Monte-Carlo sampler. Nil means the default seed 1;
	// pointing at any value — including 0 — requests exactly that seed.
	// Build it with SeedPtr.
	Seed *int64
}

// SeedPtr returns a pointer to v for Options.Seed, which is a pointer so
// that seed 0 is distinguishable from "use the default".
func SeedPtr(v int64) *int64 { return &v }

const (
	defaultEnumWorldLimit = 100000
	defaultSamples        = 20000
)

func (o Options) enumLimit() int {
	if o.EnumWorldLimit > 0 {
		return o.EnumWorldLimit
	}
	return defaultEnumWorldLimit
}

func (o Options) samples() int {
	if o.Samples > 0 {
		return o.Samples
	}
	return defaultSamples
}

func (o Options) seed() int64 {
	if o.Seed != nil {
		return *o.Seed
	}
	return 1
}

// Eval answers the query with the best available strategy: exact
// evaluation when applicable, exhaustive enumeration when the world count
// is small enough, Monte-Carlo sampling otherwise.
func Eval(t *pxml.Tree, q *Query, opts Options) (Result, error) {
	answers, err := EvalExact(t, q, opts.LocalWorldLimit)
	if err == nil {
		return Result{Answers: answers, Method: MethodExact}, nil
	}
	if !errors.Is(err, ErrNotExact) {
		return Result{}, err
	}
	if t.WorldCount().Cmp(big.NewInt(int64(opts.enumLimit()))) <= 0 {
		answers, err := EvalEnumerate(t, q, opts.enumLimit())
		if err == nil {
			return Result{Answers: answers, Method: MethodEnumerate}, nil
		}
		if !errors.Is(err, worlds.ErrTooManyWorlds) {
			return Result{}, err
		}
	}
	answers = EvalSample(t, q, opts.samples(), opts.seed())
	return Result{Answers: answers, Method: MethodSample, SampledWorlds: opts.samples()}, nil
}

// EvalEnumerate computes answer probabilities by full possible-world
// enumeration — exponential, but exact and assumption-free; the ground
// truth the other evaluators are tested against.
func EvalEnumerate(t *pxml.Tree, q *Query, maxWorlds int) ([]Answer, error) {
	wc := t.WorldCount()
	if maxWorlds > 0 && wc.Cmp(big.NewInt(int64(maxWorlds))) > 0 {
		return nil, fmt.Errorf("%w: %s > %d", worlds.ErrTooManyWorlds, wc.String(), maxWorlds)
	}
	acc := make(map[string]float64)
	worlds.Enumerate(t, func(w worlds.World) bool {
		for v := range EvalWorld(q, w.Elements) {
			acc[v] += w.P
		}
		return true
	})
	return mapToAnswers(acc), nil
}

// EvalSample estimates answer probabilities from n sampled worlds using
// the given seed. The estimate's standard error is ≈ sqrt(p(1−p)/n).
func EvalSample(t *pxml.Tree, q *Query, n int, seed int64) []Answer {
	if n <= 0 {
		n = defaultSamples
	}
	rng := rand.New(rand.NewSource(seed))
	acc := make(map[string]float64)
	inc := 1 / float64(n)
	for i := 0; i < n; i++ {
		w := worlds.Sample(t, rng)
		for v := range EvalWorld(q, w.Elements) {
			acc[v] += inc
		}
	}
	return mapToAnswers(acc)
}

func mapToAnswers(acc map[string]float64) []Answer {
	answers := make([]Answer, 0, len(acc))
	for v, p := range acc {
		if p > 1e-12 {
			answers = append(answers, Answer{Value: v, P: p})
		}
	}
	sortAnswers(answers)
	return answers
}

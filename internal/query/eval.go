package query

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"time"

	"repro/internal/pxml"
	"repro/internal/worlds"
)

// Answer is one amalgamated query answer: a distinct result value with the
// probability that at least one possible world produces it — the paper's
// ranked answers ("'Jaws' and 'Jaws 2' with an equal rank of 97%").
type Answer struct {
	Value string
	P     float64
}

// Method names the evaluation strategy that produced a result.
type Method string

const (
	// MethodExact is compositional exact evaluation.
	MethodExact Method = "exact"
	// MethodEnumerate is exhaustive world enumeration.
	MethodEnumerate Method = "enumerate"
	// MethodSample is Monte-Carlo estimation.
	MethodSample Method = "sample"
	// MethodAuto lets the planner choose the strategy (the default).
	MethodAuto Method = "auto"
)

// Result is a ranked, probability-annotated answer sequence.
type Result struct {
	Answers []Answer
	Method  Method
	// SampledWorlds is the number of Monte-Carlo samples (MethodSample).
	SampledWorlds int
	// Plan explains how the engine chose the strategy. Nil when the
	// result was produced without the planner (legacy Eval paths).
	Plan *Plan
	// Exec reports how the evaluation ran (worker fan-out, pool
	// saturation, budget meter). Zero for legacy paths and cache hits
	// served without re-execution.
	Exec ExecStats

	// lookup is the lazily built value -> probability map behind P.
	// It is a pointer so that copies of the Result share one map build.
	lookup *valueLookup
}

type valueLookup struct {
	once sync.Once
	m    map[string]float64
}

// newResult assembles a Result with a lazy value-lookup attached.
func newResult(answers []Answer, method Method, sampled int, plan *Plan) Result {
	return Result{
		Answers:       answers,
		Method:        method,
		SampledWorlds: sampled,
		Plan:          plan,
		lookup:        &valueLookup{},
	}
}

// Top returns the first n answers (fewer if there are not that many).
func (r Result) Top(n int) []Answer {
	if n > len(r.Answers) {
		n = len(r.Answers)
	}
	return r.Answers[:n]
}

// P returns the probability of a given answer value, or 0. The first
// lookup on a large answer set builds a value map once, so top-k
// post-processing that probes many values stays linear instead of
// quadratic; results constructed literally (no lookup attached) fall back
// to a linear scan.
func (r Result) P(value string) float64 {
	if r.lookup == nil {
		for _, a := range r.Answers {
			if a.Value == value {
				return a.P
			}
		}
		return 0
	}
	r.lookup.once.Do(func() {
		m := make(map[string]float64, len(r.Answers))
		for _, a := range r.Answers {
			if _, dup := m[a.Value]; !dup {
				m[a.Value] = a.P
			}
		}
		r.lookup.m = m
	})
	return r.lookup.m[value]
}

// Options configure evaluation.
type Options struct {
	// Method selects the evaluation strategy. Empty or MethodAuto lets
	// the engine choose (cost-based when an index is available, the
	// exact→enumerate→sample ladder otherwise); an explicit method is
	// used verbatim and its applicability errors surface to the caller.
	Method Method
	// LocalWorldLimit bounds per-anchor local enumeration in the exact
	// evaluator (default DefaultLocalWorldLimit). Negative values are
	// rejected by Validate.
	LocalWorldLimit int
	// EnumWorldLimit bounds full-world enumeration (default 100000).
	// Negative values are rejected by Validate.
	EnumWorldLimit int
	// Samples is the Monte-Carlo sample count (default 20000). Negative
	// values are rejected by Validate.
	Samples int
	// Seed seeds the Monte-Carlo sampler. Nil means the default seed 1;
	// pointing at any value — including 0 — requests exactly that seed.
	// Build it with SeedPtr.
	Seed *int64
	// Workers caps the goroutines one evaluation may fan out over (exact
	// local enumeration and per-value failure passes, sampling chunks).
	// 0 means GOMAXPROCS; 1 is fully sequential. Answers are bit-identical
	// for every worker count, so Workers is not part of the result-cache
	// key. Negative values are rejected by Validate. Honored by the
	// planned engine (EvalIndexed); the reference Eval stays sequential.
	Workers int
	// TimeBudget bounds evaluation wall-clock time; 0 means unlimited.
	// Exhaustion surfaces as ErrBudgetExhausted with Plan.BudgetExhausted
	// set. Negative values are rejected by Validate.
	TimeBudget time.Duration
	// MaxNodeVisits bounds evaluation work, metered in node visits plus
	// enumerated worlds plus drawn samples; 0 means unlimited. Negative
	// values are rejected by Validate.
	MaxNodeVisits int64
}

// SeedPtr returns a pointer to v for Options.Seed, which is a pointer so
// that seed 0 is distinguishable from "use the default".
func SeedPtr(v int64) *int64 { return &v }

const (
	defaultEnumWorldLimit = 100000
	defaultSamples        = 20000
)

// ErrBadOptions marks option validation failures; front ends map it to a
// usage error (HTTP 400 / CLI usage message).
var ErrBadOptions = errors.New("query: invalid options")

// Validate rejects nonsensical options. Zero values always mean "use the
// default"; negative budgets used to be silently coerced to the default,
// which hid caller bugs — they are now explicit errors.
func (o Options) Validate() error {
	if o.Samples < 0 {
		return fmt.Errorf("%w: Samples must be >= 0 (0 means default %d), got %d",
			ErrBadOptions, defaultSamples, o.Samples)
	}
	if o.EnumWorldLimit < 0 {
		return fmt.Errorf("%w: EnumWorldLimit must be >= 0 (0 means default %d), got %d",
			ErrBadOptions, defaultEnumWorldLimit, o.EnumWorldLimit)
	}
	if o.LocalWorldLimit < 0 {
		return fmt.Errorf("%w: LocalWorldLimit must be >= 0 (0 means default %d), got %d",
			ErrBadOptions, DefaultLocalWorldLimit, o.LocalWorldLimit)
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: Workers must be >= 0 (0 means one per CPU), got %d",
			ErrBadOptions, o.Workers)
	}
	if o.TimeBudget < 0 {
		return fmt.Errorf("%w: TimeBudget must be >= 0 (0 means unlimited), got %s",
			ErrBadOptions, o.TimeBudget)
	}
	if o.MaxNodeVisits < 0 {
		return fmt.Errorf("%w: MaxNodeVisits must be >= 0 (0 means unlimited), got %d",
			ErrBadOptions, o.MaxNodeVisits)
	}
	switch o.Method {
	case "", MethodAuto, MethodExact, MethodEnumerate, MethodSample:
		return nil
	default:
		return fmt.Errorf("%w: unknown method %q (auto | exact | enumerate | sample)",
			ErrBadOptions, o.Method)
	}
}

func (o Options) method() Method {
	if o.Method == "" {
		return MethodAuto
	}
	return o.Method
}

func (o Options) enumLimit() int {
	if o.EnumWorldLimit > 0 {
		return o.EnumWorldLimit
	}
	return defaultEnumWorldLimit
}

func (o Options) samples() int {
	if o.Samples > 0 {
		return o.Samples
	}
	return defaultSamples
}

func (o Options) seed() int64 {
	if o.Seed != nil {
		return *o.Seed
	}
	return 1
}

// Eval answers the query without a prebuilt index: exact evaluation when
// applicable, exhaustive enumeration when the world count is small
// enough, Monte-Carlo sampling otherwise. An explicit Options.Method is
// honored verbatim. This is the reference (unplanned) engine; servers
// evaluate through EvalIndexed, which plans against a per-tree index and
// uses the value-set-accelerated exact executor.
func Eval(t *pxml.Tree, q *Query, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	switch opts.method() {
	case MethodExact:
		answers, err := EvalExact(t, q, opts.LocalWorldLimit)
		if err != nil {
			return Result{}, err
		}
		return newResult(answers, MethodExact, 0, nil), nil
	case MethodEnumerate:
		answers, err := EvalEnumerate(t, q, opts.enumLimit())
		if err != nil {
			return Result{}, err
		}
		return newResult(answers, MethodEnumerate, 0, nil), nil
	case MethodSample:
		answers := EvalSample(t, q, opts.samples(), opts.seed())
		return newResult(answers, MethodSample, opts.samples(), nil), nil
	}
	answers, err := EvalExact(t, q, opts.LocalWorldLimit)
	if err == nil {
		return newResult(answers, MethodExact, 0, nil), nil
	}
	if !errors.Is(err, ErrNotExact) {
		return Result{}, err
	}
	if t.WorldCount().Cmp(big.NewInt(int64(opts.enumLimit()))) <= 0 {
		answers, err := EvalEnumerate(t, q, opts.enumLimit())
		if err == nil {
			return newResult(answers, MethodEnumerate, 0, nil), nil
		}
		if !errors.Is(err, worlds.ErrTooManyWorlds) {
			return Result{}, err
		}
	}
	answers = EvalSample(t, q, opts.samples(), opts.seed())
	return newResult(answers, MethodSample, opts.samples(), nil), nil
}

// EvalEnumerate computes answer probabilities by full possible-world
// enumeration — exponential, but exact and assumption-free; the ground
// truth the other evaluators are tested against.
func EvalEnumerate(t *pxml.Tree, q *Query, maxWorlds int) ([]Answer, error) {
	return evalEnumerate(t, q, maxWorlds, nil)
}

// evalEnumerate is EvalEnumerate with the budget meter the planned engine
// threads through: one step per enumerated world, so cancellation and
// budgets interrupt even exponential enumerations promptly.
func evalEnumerate(t *pxml.Tree, q *Query, maxWorlds int, b *budget) ([]Answer, error) {
	wc := t.WorldCount()
	if maxWorlds > 0 && wc.Cmp(big.NewInt(int64(maxWorlds))) > 0 {
		return nil, fmt.Errorf("%w: %s > %d", worlds.ErrTooManyWorlds, wc.String(), maxWorlds)
	}
	acc := make(map[string]float64)
	var stepErr error
	worlds.Enumerate(t, func(w worlds.World) bool {
		if stepErr = b.step(); stepErr != nil {
			return false
		}
		for v := range EvalWorld(q, w.Elements) {
			acc[v] += w.P
		}
		return true
	})
	if stepErr != nil {
		return nil, stepErr
	}
	return mapToAnswers(acc), nil
}

// sampleChunkSize fixes the sample-stream chunk layout. It is a format
// constant of sorts: changing it changes which RNG substream draws which
// sample, and therefore the (deterministic) estimates for a given seed.
const sampleChunkSize = 512

// EvalSample estimates answer probabilities from n sampled worlds using
// the given seed. The estimate's standard error is ≈ sqrt(p(1−p)/n).
//
// The sample stream is organized as fixed chunks of sampleChunkSize worlds
// whose RNGs derive from (seed, chunk index) via mixSeed, and per-chunk
// estimates merge in chunk order — so the result for a given (n, seed) is
// bit-identical no matter how many workers run the chunks.
func EvalSample(t *pxml.Tree, q *Query, n int, seed int64) []Answer {
	answers, _ := evalSampleWorkers(t, q, n, seed, 1, nil, nil)
	return answers
}

// evalSampleWorkers runs the chunked sampler with a worker-pool fan-out.
// Each chunk owns its RNG and accumulator map; chunks are merged
// sequentially in chunk order, so every per-value float sum happens in the
// same order regardless of which worker ran which chunk.
func evalSampleWorkers(t *pxml.Tree, q *Query, n int, seed int64, workers int, b *budget, ex *ExecStats) ([]Answer, error) {
	if n <= 0 {
		n = defaultSamples
	}
	chunks := (n + sampleChunkSize - 1) / sampleChunkSize
	accs := make([]map[string]float64, chunks)
	errs := make([]error, chunks)
	inc := 1 / float64(n)
	tasks := make([]func(), chunks)
	for ci := range tasks {
		ci := ci
		tasks[ci] = func() {
			count := sampleChunkSize
			if rem := n - ci*sampleChunkSize; rem < count {
				count = rem
			}
			rng := rand.New(rand.NewSource(mixSeed(seed, ci)))
			acc := make(map[string]float64)
			for i := 0; i < count; i++ {
				if err := b.step(); err != nil {
					errs[ci] = err
					return
				}
				w := worlds.Sample(t, rng)
				for v := range EvalWorld(q, w.Elements) {
					acc[v] += inc
				}
			}
			accs[ci] = acc
		}
	}
	pool := newTaskPool(workers)
	pool.runAll(tasks)
	if ex != nil {
		ex.PooledTasks, ex.InlineTasks = pool.counts()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	acc := make(map[string]float64)
	for _, m := range accs {
		for v, p := range m {
			acc[v] += p
		}
	}
	return mapToAnswers(acc), nil
}

func mapToAnswers(acc map[string]float64) []Answer {
	answers := make([]Answer, 0, len(acc))
	for v, p := range acc {
		if p > 1e-12 {
			answers = append(answers, Answer{Value: v, P: p})
		}
	}
	sortAnswers(answers)
	return answers
}

package query

import "testing"

// TestSeedZeroRequestable pins the Options.Seed contract: nil means the
// default seed 1, while an explicit pointer — including to 0, which the
// old int64 field silently coerced to the default — is honored exactly.
func TestSeedZeroRequestable(t *testing.T) {
	if got := (Options{}).seed(); got != 1 {
		t.Fatalf("default seed = %d, want 1", got)
	}
	if got := (Options{Seed: SeedPtr(0)}).seed(); got != 0 {
		t.Fatalf("explicit seed 0 = %d, want 0", got)
	}
	if got := (Options{Seed: SeedPtr(-7)}).seed(); got != -7 {
		t.Fatalf("explicit seed -7 = %d, want -7", got)
	}
}
